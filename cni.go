// Package cni is a from-scratch reproduction of "CNI: A
// High-Performance Network Interface for Workstation Clusters"
// (Sarkar & Bailey, HPDC 1996) as a simulation library: the CNI
// network adaptor board (Message Cache, Application Device Channels,
// PATHFINDER packet classification, Application Interrupt Handlers),
// the baseline standard interface, the ATM interconnect, the
// lazy-release-consistency DSM that runs on top, the paper's three
// benchmark applications, and generators for every table and figure of
// its evaluation.
//
// The building blocks live in internal packages; this package is the
// public surface. A minimal session:
//
//	cfg := cni.DefaultConfig()                       // Table 1 machine, CNI board
//	app := cni.NewJacobi(256, 10)                    // a workload
//	c, res, err := cni.RunApp(&cfg, 8, app)          // 8-node cluster
//	if err != nil { ... }                            // bad config / node count
//	fmt.Println(res.Time, res.HitRatio)              // cycles, MC hit %
//	_ = app.Verify(c)                                // against sequential reference
//
// or, to regenerate the paper's artifacts — in parallel across
// GOMAXPROCS workers, with bit-identical output to a sequential run:
//
//	outs, err := cni.RunExperimentSuite(ctx, cni.Experiments(), cni.ExpOptions{Quick: true})
package cni

import (
	"context"

	"cni/internal/adc"
	"cni/internal/apps"
	"cni/internal/apps/spmat"
	"cni/internal/cluster"
	"cni/internal/collective"
	"cni/internal/config"
	"cni/internal/dsm"
	"cni/internal/experiments"
	"cni/internal/kv"
	"cni/internal/msgpass"
	"cni/internal/pathfinder"
	"cni/internal/rpc"
	"cni/internal/sim"
	"cni/internal/tenant"
	"cni/internal/trace"
	"cni/internal/workload"
)

// Time is the simulation clock: CPU cycles at Config.CPUFreqMHz.
type Time = sim.Time

// Config is the full machine description (Table 1 of the paper plus
// the documented calibration constants).
type Config = config.Config

// NICKind selects the network interface model.
type NICKind = config.NICKind

// The registered interface models: the two the paper compares plus the
// OSIRIS-class baseline the CNI derives from.
const (
	NICStandard = config.NICStandard
	NICCNI      = config.NICCNI
	NICOsiris   = config.NICOsiris
)

// NICKinds lists every registered interface model in registration
// order; NICKindNames lists their command-line names ("standard",
// "cni", "osiris"); NICKindByName resolves such a name back to its
// kind.
func NICKinds() []NICKind                       { return config.Kinds() }
func NICKindNames() []string                    { return config.KindNames() }
func NICKindByName(name string) (NICKind, bool) { return config.KindByName(name) }

// ConfigFor returns the default configuration for the given interface.
// It is the single source of truth for configuration defaults: every
// registered interface shares every Table 1 parameter and calibration
// constant and differs only in the NIC selector and the four
// board-feature knobs only the CNI has — ReceiveCaching,
// TransmitCaching, ConsistencySnooping (the Message Cache and its bus
// snooper) and NICCollectives (the board-resident collective engine).
func ConfigFor(kind NICKind) Config { return config.ForNIC(kind) }

// DefaultConfig returns the Table 1 machine with the CNI board:
// ConfigFor(NICCNI).
func DefaultConfig() Config { return config.ForNIC(NICCNI) }

// StandardConfig returns the Table 1 machine with the baseline
// standard interface: ConfigFor(NICStandard).
func StandardConfig() Config { return config.ForNIC(NICStandard) }

// The registered fabric topologies (Config.Topology): the paper's
// single output-queued banyan switch, a k-ary Clos/fat-tree, and a 3D
// torus. The multi-switch fabrics lift the 32-port scaling ceiling.
const (
	TopoSingle = config.TopoSingle
	TopoClos   = config.TopoClos
	TopoTorus  = config.TopoTorus
)

// TopoNames lists the command-line names of the registered topologies.
func TopoNames() []string { return config.TopoNames() }

// The registered DSM ownership organizations (Config.DSMOwnership):
// the fixed-distribution central manager the DSM has always used, and
// the dynamic distributed manager — per-page probable-owner chains
// with request forwarding and ownership migration on write faults, in
// the style of Li & Hudak's IVY — which spreads the manager-role
// message load off the static homes and the node-0 synchronization
// manager.
const (
	DSMCentral     = config.DSMCentral
	DSMDistributed = config.DSMDistributed
)

// DSMOwnershipNames lists the command-line names of the registered
// ownership organizations ("central", "distributed").
func DSMOwnershipNames() []string { return config.DSMOwnershipNames() }

// DSMStats is the cluster-level aggregation of the DSM protocol's
// activity on Result.DSM: fault/fetch/invalidation totals, the
// manager-role message load and its per-node hotspot, and the
// distributed organization's forwarding and migration counters.
type DSMStats = cluster.DSMStats

// ChainHist is the probable-owner forwarding-chain length histogram
// inside DSMStats: bucket i counts fetches forwarded i times.
type ChainHist = dsm.ChainHist

// Cluster is a simulated workstation cluster; Result is the outcome of
// one run (wall time, overhead breakdown, hit ratio, traffic).
type (
	Cluster = cluster.Cluster
	Result  = cluster.Result
	Setup   = cluster.Setup
	AppBody = cluster.App
)

// Worker is the application-facing DSM interface (shared memory
// accessors, locks, barriers, bag of tasks); Globals describes the
// shared region.
type (
	Worker  = dsm.Worker
	Globals = dsm.Globals
)

// TraceLog is the bounded protocol-event log returned by
// Cluster.EnableTrace.
type TraceLog = trace.Log

// NewCluster builds an n-node cluster. setup allocates the shared
// region; pass nil for a cluster without DSM data. It returns an error
// when cfg is invalid or n exceeds what the selected topology (see
// Config.Topology) can address.
func NewCluster(cfg *Config, n int, setup Setup) (*Cluster, error) {
	return cluster.New(cfg, n, setup)
}

// App is one benchmark application (workload + verification).
type App = apps.App

// MatrixGen describes a synthetic sparse SPD matrix for Cholesky.
type MatrixGen = spmat.Gen

// NewJacobi returns the coarse-grained grid relaxation workload.
func NewJacobi(side, iters int) App { return apps.NewJacobi(side, iters) }

// NewWater returns the medium-grained molecular dynamics workload.
func NewWater(molecules, steps int) App { return apps.NewWater(molecules, steps) }

// NewCholesky returns the fine-grained sparse factorization workload.
func NewCholesky(gen MatrixGen) App { return apps.NewCholesky(gen) }

// BCSSTK14 and BCSSTK15 are the synthetic stand-ins for the paper's
// Harwell-Boeing inputs; SmallMatrix scales down for quick runs.
func BCSSTK14() MatrixGen         { return spmat.BCSSTK14() }
func BCSSTK15() MatrixGen         { return spmat.BCSSTK15() }
func SmallMatrix(n int) MatrixGen { return spmat.Small(n) }

// RunApp executes app on an n-node cluster described by cfg. An
// invalid configuration or a node count the selected topology cannot
// address is an error (the same conditions NewCluster reports).
func RunApp(cfg *Config, n int, app App) (*Cluster, *Result, error) {
	return apps.Execute(cfg, n, app)
}

// --- evaluation artifacts ---

// ExpOptions scales the experiment suite and configures the parallel
// harness (Jobs worker count, Progress callback); Figure, ExpTable and
// ExpSpec mirror the paper's artifacts. ExpProgress is one progress
// event of a running suite and ExpRunner the shared worker pool +
// memoization table experiments execute on.
type (
	ExpOptions  = experiments.Options
	ExpProgress = experiments.Progress
	ExpRunner   = experiments.Runner
	Figure      = experiments.Figure
	ExpTable    = experiments.Table
	ExpSpec     = experiments.Spec
	Series      = experiments.Series
)

// Experiments lists every table and figure of the paper's evaluation,
// in paper order.
func Experiments() []ExpSpec { return experiments.All() }

// FindExperiment returns the artifact with the given id ("T1".."T5",
// "F2".."F14", "FB1", "FC1", "FR1", "FS1", "FT1", "FD1").
func FindExperiment(id string) (ExpSpec, bool) { return experiments.Find(id) }

// RunExperimentCtx executes one artifact with context cancellation and
// renders it as text. The artifact's independent simulation points fan
// across o.Jobs workers (GOMAXPROCS when 0) and identical points run
// once; the rendered output is bit-identical at every worker count.
// Cancellation aborts outstanding points and returns ctx's error; a
// panic inside the model surfaces as an error instead of crashing.
func RunExperimentCtx(ctx context.Context, s ExpSpec, o ExpOptions) (string, error) {
	return experiments.RunSpec(ctx, s, o)
}

// RunExperimentSuite executes every given artifact on one shared
// worker pool: each artifact's points run concurrently and points
// shared between artifacts (FR1's lossless baselines, F13's
// default-cache point, ...) execute once. Outputs return in spec
// order, bit-identical to running each spec alone. The first error
// (including ctx cancellation) is returned alongside whatever outputs
// completed.
func RunExperimentSuite(ctx context.Context, specs []ExpSpec, o ExpOptions) ([]string, error) {
	return experiments.RunSuite(ctx, specs, o)
}

// NewExperimentRunner starts a shared experiment worker pool for
// callers that want to stream artifacts as they finish (see
// cmd/experiments); most callers want RunExperimentSuite. Close it
// when done.
func NewExperimentRunner(ctx context.Context, o ExpOptions) *ExpRunner {
	return experiments.NewRunner(ctx, o)
}

// --- microbenchmarks ---

// Metric selects what a Probe measures; Probe describes one
// microbenchmark measurement for Measure.
type (
	Metric = experiments.Metric
	Probe  = experiments.Probe
)

// The metrics Measure accepts.
const (
	MetricLatency    = experiments.MetricLatency    // app-to-app latency, ns
	MetricBandwidth  = experiments.MetricBandwidth  // streaming bandwidth, MB/s
	MetricCollective = experiments.MetricCollective // per-episode collective latency, ns
)

// Measure runs one microbenchmark probe against the given interface
// and reports the measured value in the metric's unit (nanoseconds for
// MetricLatency and MetricCollective, MB/s for MetricBandwidth):
//
//	lat, _ := cni.Measure(cni.NICCNI, cni.Probe{Metric: cni.MetricLatency, Size: 4096})
//	bw, _  := cni.Measure(cni.NICCNI, cni.Probe{Metric: cni.MetricBandwidth, Size: 256})
//	bar, _ := cni.Measure(cni.NICCNI, cni.Probe{Metric: cni.MetricCollective, Nodes: 8, Op: "barrier"})
//
// Probe.Tweak, if non-nil, adjusts the configuration before the run
// (ablations: disable transmit caching, force interrupts, software
// classification, fault injection, ...).
func Measure(kind NICKind, p Probe) (float64, error) {
	return experiments.Measure(kind, p)
}

// LatencyReduction reports the CNI's percentage latency reduction over
// the standard interface at the given message size (the paper's
// headline is ~33% at a 4 KB page).
func LatencyReduction(size int) float64 { return experiments.LatencyReduction(size) }

// --- board-level building blocks ---
//
// The pieces below expose the CNI board's mechanisms directly for
// programs that want to use the interface without the DSM: PATHFINDER
// patterns and Application Device Channels.

// Pattern is a PATHFINDER classification pattern: an ordered
// conjunction of (offset, mask, value) field comparisons; PatternField
// is one comparison and PatternValue the routing target of a match.
type (
	Pattern      = pathfinder.Pattern
	PatternField = pathfinder.Field
	PatternValue = pathfinder.Value
)

// NewClassifier returns an empty PATHFINDER instance.
func NewClassifier() *pathfinder.Classifier { return pathfinder.New() }

// Channel is an Application Device Channel (the transmit/receive/free
// queue triplet); Descriptor names one buffer in a queue, and Region a
// kernel-registered window the channel may address.
type (
	Channel    = adc.Channel
	Descriptor = adc.Descriptor
	Region     = adc.Region
)

// NewChannelManager returns a board-side channel table allowing up to
// maxOpen channels with queueCap-entry queues.
func NewChannelManager(maxOpen, queueCap int) *adc.Manager {
	return adc.NewManager(maxOpen, queueCap)
}

// ChannelManagerOptions sizes a board-side channel table, the
// options-struct form of NewChannelManager's positional arguments.
type ChannelManagerOptions struct {
	// MaxOpen caps concurrently open channels (the board's channel
	// table size).
	MaxOpen int
	// QueueCap is the per-queue descriptor capacity, rounded up to a
	// power of two.
	QueueCap int
}

// NewChannelManagerOpts is NewChannelManager with an options struct,
// consistent with the rest of the public surface (ExpOptions, Probe,
// RPCSpec).
func NewChannelManagerOpts(o ChannelManagerOptions) *adc.Manager {
	return adc.NewManager(o.MaxOpen, o.QueueCap)
}

// --- message passing ---

// Fabric is a message-passing cluster (the paper's "message passing
// paradigm" on the same boards and interconnect); Endpoint is one
// node's interface — tagged send/receive, Active Messages that run on
// the CNI board, and message-built collectives. MPPacket is a matched
// message and AMContext the handler-side reply path.
type (
	Fabric    = msgpass.Fabric
	Endpoint  = msgpass.Endpoint
	MPPacket  = msgpass.Packet
	AMContext = msgpass.AMContext
	AMHandler = msgpass.AMHandler
)

// NewFabric builds an n-node message-passing cluster. It returns an
// error when cfg is invalid or n exceeds what the selected topology
// can address.
func NewFabric(cfg *Config, n int) (*Fabric, error) { return msgpass.NewFabric(cfg, n) }

// --- collectives ---

// ReduceOp is the combining operator of the collective engine's reduce
// and all-reduce (a fixed enumeration — the combining runs in board
// firmware on the CNI, which cannot be shipped host closures);
// CollStats are one node's collective-engine counters and CollHist the
// log2 episode-latency histogram inside them.
type (
	ReduceOp  = collective.ReduceOp
	CollStats = collective.Stats
	CollHist  = collective.Hist
)

// The collective combining operators.
const (
	ReduceSum  = collective.OpSum
	ReduceProd = collective.OpProd
	ReduceMin  = collective.OpMin
	ReduceMax  = collective.OpMax
)

// CollTopo selects the collective schedule; the two topologies the
// engine implements.
type CollTopo = config.CollTopo

const (
	CollDissemination = config.CollDissemination
	CollBinomial      = config.CollBinomial
)

// --- request serving ---

// RPCSpec describes one synthetic request-serving run: server and
// client node counts, open-loop (Poisson or fixed-rate arrivals) or
// closed-loop (think time) traffic, request/response sizes, per-request
// deadlines and the server's admission policy. RPCReport is the
// outcome — sustained throughput plus exact latency percentiles.
// RPCStats are the aggregate RPC counters and RPCLatencies the exact
// latency samples behind the percentiles.
type (
	RPCSpec      = workload.Spec
	RPCReport    = workload.Report
	RPCStats     = rpc.Stats
	RPCLatencies = rpc.Latencies
)

// RPCPolicy selects what a server does when admission control trips:
// shed the request immediately or park it until buffers free up.
type RPCPolicy = rpc.Policy

const (
	RPCShed  = rpc.Shed
	RPCDelay = rpc.Delay
)

// RunRPC executes one synthetic serving run on a fresh
// Servers+Clients-node cluster under cfg. The run is a pure function
// of (cfg, spec): bit-identical latency histograms on every execution.
//
//	cfg := cni.DefaultConfig()
//	rep := cni.RunRPC(&cfg, cni.RPCSpec{
//		Clients: 4, Open: true, Poisson: true, Rate: 10000,
//		Requests: 300, ReqBytes: 128, RespBytes: 1024,
//	})
//	fmt.Println(rep.Sustained, rep.P99)
func RunRPC(cfg *Config, s RPCSpec) *RPCReport { return workload.Run(cfg, s) }

// RPCBenchPoint is one machine-readable point of the FS1 serving
// sweep; BenchRPC runs the sweep under every interface and returns the
// points in a fixed order (see cmd/experiments -benchjson).
type RPCBenchPoint = experiments.BenchPoint

func BenchRPC(o ExpOptions) []RPCBenchPoint { return experiments.BenchRPC(o) }

// SimBenchPoint is one leg of the simulator's own performance
// benchmark (kernel events/sec over representative workloads);
// BenchSim runs the legs and returns them in a fixed order (see
// cmd/experiments -benchjson, which writes BENCH_sim.json).
type SimBenchPoint = experiments.SimBenchPoint

func BenchSim(o ExpOptions) []SimBenchPoint { return experiments.BenchSim(o) }

// BenchLeg1024 is the speedup-gate leg of the simulator benchmark: the
// FT1-style 1024-node all-to-all run whose kernel events/sec the
// BENCH_sim.json trajectory tracks across revisions.
const BenchLeg1024 = experiments.BenchLeg1024

// --- key-value serving ---

// KVSpec describes one multi-tenant key-value serving run over the
// ADC transport: servers pre-populated with a sharded key space (key
// mod Servers), clients replaying aggregated open-loop Poisson arrival
// streams with Zipf key popularity, and per-tenant QoS contracts.
// KVTenant is one tenant's traffic and contract; KVReport the outcome,
// including the GET latency split between host-served responses and
// GETs answered by the CNI's NIC-resident response cache. KVStats are
// the aggregate client/server/cache counters and TenantClass/
// TenantStats the per-tenant contract and accounting.
type (
	KVSpec      = workload.KVSpec
	KVTenant    = workload.KVTenant
	KVReport    = workload.KVReport
	KVStats     = kv.Stats
	KVOutcome   = kv.Outcome
	TenantClass = tenant.Class
	TenantStats = tenant.Stats
)

// The KV request outcomes.
const (
	KVOK        = kv.OK
	KVNotFound  = kv.NotFound
	KVRejected  = kv.Rejected
	KVThrottled = kv.Throttled
	KVExpired   = kv.Expired
)

// RunKV executes one multi-tenant KV serving run on a fresh
// Servers+Clients-node cluster under cfg. Whether the serving boards
// keep a NIC-resident response cache is the config's business
// (Config.NICResponseCache, CNI only); the offered workload is
// identical either way. The run is a pure function of (cfg, spec).
//
//	cfg := cni.DefaultConfig()
//	rep := cni.RunKV(&cfg, cni.KVSpec{
//		Servers: 1, Clients: 2, ZipfS: 1.1,
//		Tenants: []cni.KVTenant{
//			{Class: cni.TenantClass{Priority: 0}, Rate: 4000, Requests: 200, GetFrac: 1},
//			{Class: cni.TenantClass{Priority: 1, Rate: 5000, Burst: 16}, Rate: 40000, Requests: 1000, GetFrac: 0.5},
//		},
//		Isolation: true,
//	})
//	fmt.Println(rep.P99, rep.HitRatio)
func RunKV(cfg *Config, s KVSpec) *KVReport { return workload.RunKV(cfg, s) }

// KVBenchPoint is one machine-readable point of the FS2 serving study;
// BenchKV runs the study's goodput points under every interface with
// isolation off and on and returns them in a fixed order (see
// cmd/experiments -benchjson).
type KVBenchPoint = experiments.KVBenchPoint

func BenchKV(o ExpOptions) []KVBenchPoint { return experiments.BenchKV(o) }

package cni_test

import (
	"context"
	"strings"
	"testing"

	"cni"
)

func TestPublicAPIQuickstart(t *testing.T) {
	cfg := cni.DefaultConfig()
	c, err := cni.NewCluster(&cfg, 2, func(g *cni.Globals) { g.Alloc(64) })
	if err != nil {
		t.Fatal(err)
	}
	res := c.Run(func(w *cni.Worker) {
		w.Lock(0)
		w.WriteU64(0, w.ReadU64(0)+uint64(w.Node())+1)
		w.Unlock(0)
		w.Barrier(0)
	})
	if got := c.ReadU64(0); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if res.Time <= 0 {
		t.Fatal("no simulated time elapsed")
	}
}

func TestPublicAPIApps(t *testing.T) {
	for _, app := range []cni.App{
		cni.NewJacobi(32, 2),
		cni.NewWater(16, 1),
		cni.NewCholesky(cni.SmallMatrix(64)),
	} {
		cfg := cni.DefaultConfig()
		c, res, err := cni.RunApp(&cfg, 2, app)
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		if err := app.Verify(c); err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		if res.Time <= 0 {
			t.Fatalf("%s: no time", app.Name())
		}
	}
}

func TestPublicAPIConfigs(t *testing.T) {
	if cni.DefaultConfig().NIC != cni.NICCNI {
		t.Fatal("DefaultConfig is not CNI")
	}
	if cni.StandardConfig().NIC != cni.NICStandard {
		t.Fatal("StandardConfig is not standard")
	}
	if cni.ConfigFor(cni.NICStandard).NIC != cni.NICStandard {
		t.Fatal("ConfigFor broken")
	}
	if cni.BCSSTK14().N != 1806 || cni.BCSSTK15().N != 3948 {
		t.Fatal("matrix generators mis-sized")
	}
}

func TestPublicAPIExperimentRegistry(t *testing.T) {
	specs := cni.Experiments()
	if len(specs) != 25 {
		t.Fatalf("%d experiments, want 25 (T1-T5, F2-F14, FB1, FC1, FR1, FS1, FT1, FD1, FS2)", len(specs))
	}
	spec, ok := cni.FindExperiment("T1")
	if !ok {
		t.Fatal("T1 missing")
	}
	out, err := cni.RunExperimentCtx(context.Background(), spec, cni.ExpOptions{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "166 MHz") {
		t.Fatalf("T1 output:\n%s", out)
	}
}

func TestPublicAPILatency(t *testing.T) {
	lat := func(kind cni.NICKind, tweak func(*cni.Config)) float64 {
		v, err := cni.Measure(kind, cni.Probe{Metric: cni.MetricLatency, Size: 1024, Tweak: tweak})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	c := lat(cni.NICCNI, nil)
	o := lat(cni.NICOsiris, nil)
	s := lat(cni.NICStandard, nil)
	if c <= 0 || o <= c || s <= o {
		t.Fatalf("latencies: cni=%g osiris=%g std=%g, want cni < osiris < std", c, o, s)
	}
	tweaked := lat(cni.NICCNI, func(cf *cni.Config) {
		cf.TransmitCaching = false
	})
	if tweaked <= c {
		t.Fatal("disabling transmit caching must cost latency")
	}
}

func TestPublicAPIRPC(t *testing.T) {
	spec := cni.RPCSpec{Clients: 2, Open: true, Poisson: true, Rate: 8000,
		Requests: 40, ReqBytes: 128, RespBytes: 512, Seed: 5, Policy: cni.RPCDelay}
	cfg := cni.DefaultConfig()
	rep := cni.RunRPC(&cfg, spec)
	if rep.Stats.Completed != 80 || rep.Sustained <= 0 || rep.P99 <= 0 {
		t.Fatalf("rpc run: completed=%d sustained=%g p99=%d",
			rep.Stats.Completed, rep.Sustained, rep.P99)
	}
	points := cni.BenchRPC(cni.ExpOptions{Quick: true})
	if len(points) == 0 || points[0].NIC != "cni" || points[0].Sustained <= 0 {
		t.Fatalf("bench points: %+v", points)
	}
}

func TestPublicAPIKV(t *testing.T) {
	spec := cni.KVSpec{
		Servers: 1, Clients: 2, Seed: 3, Keys: 128, ZipfS: 1.1,
		Tenants: []cni.KVTenant{
			{Class: cni.TenantClass{Priority: 0}, Rate: 4000, Requests: 40, GetFrac: 1},
			{Class: cni.TenantClass{Priority: 1, Rate: 5000, Burst: 8}, Rate: 20000, Requests: 80, GetFrac: 0.5},
		},
		Isolation: true,
	}
	cfg := cni.DefaultConfig()
	rep := cni.RunKV(&cfg, spec)
	if rep.Stats.Issued != 240 || rep.P99 <= 0 {
		t.Fatalf("kv run: issued=%d p99=%d", rep.Stats.Issued, rep.P99)
	}
	if rep.Stats.BoardServed == 0 {
		t.Fatal("CNI board never served a repeat GET")
	}
	if len(rep.Tenants) != 2 || rep.Tenants[1].Throttled == 0 {
		t.Fatalf("tenant accounting: %+v", rep.Tenants)
	}
	points := cni.BenchKV(cni.ExpOptions{Quick: true})
	if len(points) != 6 || points[0].NIC != "cni" || points[0].Isolation {
		t.Fatalf("kv bench points: %+v", points)
	}
	for _, p := range points {
		if p.NIC == "cni" && p.Isolation && (p.HitRatio <= 0 || p.Goodput <= 0) {
			t.Fatalf("cni isolated point: %+v", p)
		}
	}
}

func TestPublicAPIRunExperimentCtx(t *testing.T) {
	spec, _ := cni.FindExperiment("T1")
	o := cni.ExpOptions{Quick: true, Jobs: 2}
	out, err := cni.RunExperimentCtx(context.Background(), spec, o)
	if err != nil {
		t.Fatal(err)
	}
	again, err := cni.RunExperimentCtx(context.Background(), spec, o)
	if err != nil {
		t.Fatal(err)
	}
	if out != again {
		t.Fatal("RunExperimentCtx output not reproducible")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec2, _ := cni.FindExperiment("F2")
	if _, err := cni.RunExperimentCtx(ctx, spec2, o); err == nil {
		t.Fatal("pre-canceled context produced no error")
	}
}

func TestPublicAPIRunExperimentSuite(t *testing.T) {
	var specs []cni.ExpSpec
	for _, id := range []string{"T1", "F14"} {
		s, ok := cni.FindExperiment(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		specs = append(specs, s)
	}
	o := cni.ExpOptions{Quick: true, Jobs: 4}
	outs, err := cni.RunExperimentSuite(context.Background(), specs, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("%d outputs", len(outs))
	}
	for i, s := range specs {
		alone, err := cni.RunExperimentCtx(context.Background(), s, o)
		if err != nil {
			t.Fatal(err)
		}
		if outs[i] != alone {
			t.Fatalf("%s: suite output differs from standalone run", s.ID)
		}
	}
}

func TestPublicAPIMeasure(t *testing.T) {
	lat, err := cni.Measure(cni.NICCNI, cni.Probe{Metric: cni.MetricLatency, Size: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatalf("latency probe: %g ns", lat)
	}
	bw, err := cni.Measure(cni.NICCNI, cni.Probe{Metric: cni.MetricBandwidth, Size: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if bw <= 0 || bw > 78 {
		t.Fatalf("bandwidth probe: %g MB/s against a 622 Mb/s link", bw)
	}
	coll, err := cni.Measure(cni.NICCNI, cni.Probe{Metric: cni.MetricCollective, Nodes: 4, Op: "barrier"})
	if err != nil {
		t.Fatal(err)
	}
	if coll <= 0 {
		t.Fatalf("collective probe: %g ns", coll)
	}
	if _, err := cni.Measure(cni.NICCNI, cni.Probe{Metric: cni.MetricBandwidth}); err == nil {
		t.Fatal("zero-size bandwidth probe accepted")
	}
}

func TestPublicAPIClassifierAndChannels(t *testing.T) {
	pf := cni.NewClassifier()
	pat := cni.Pattern{{Offset: 0, Mask: 0xffffffff, Value: 7}}
	if err := pf.Program(pat, 9); err != nil {
		t.Fatal(err)
	}
	hdr := []byte{0, 0, 0, 7}
	if v, _, ok := pf.Classify(hdr); !ok || v != 9 {
		t.Fatalf("classify = %d, %v", v, ok)
	}
	mgr := cni.NewChannelManager(2, 8)
	ch, err := mgr.Open(0, 1, cni.Region{Base: 0x1000, Len: 0x1000})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.PostTransmit(cni.Descriptor{VAddr: 0x1000, Len: 64}); err != nil {
		t.Fatal(err)
	}
}

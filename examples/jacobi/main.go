// Jacobi: run the paper's coarse-grained benchmark across cluster
// sizes on both interfaces and print the speedup curves of Figure 2.
//
//	go run ./examples/jacobi [-size 128] [-iters 10]
package main

import (
	"flag"
	"fmt"
	"log"

	"cni"
)

func main() {
	size := flag.Int("size", 128, "grid side")
	iters := flag.Int("iters", 10, "relaxation iterations")
	flag.Parse()

	cfgCNI := cni.DefaultConfig()
	_, seq, err := cni.RunApp(&cfgCNI, 1, cni.NewJacobi(*size, *iters))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jacobi %dx%d, %d iterations; 1-node time %d cycles\n\n",
		*size, *size, *iters, seq.Time)
	fmt.Printf("%6s  %12s  %12s  %10s\n", "procs", "CNI-speedup", "Std-speedup", "hit-ratio")
	for _, p := range []int{2, 4, 8, 16, 32} {
		cfg := cni.DefaultConfig()
		app := cni.NewJacobi(*size, *iters)
		c, res, err := cni.RunApp(&cfg, p, app)
		if err != nil {
			log.Fatal(err)
		}
		if err := app.Verify(c); err != nil {
			panic(err)
		}
		std := cni.StandardConfig()
		_, sres, err := cni.RunApp(&std, p, cni.NewJacobi(*size, *iters))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d  %12.2f  %12.2f  %9.1f%%\n", p,
			float64(seq.Time)/float64(res.Time),
			float64(seq.Time)/float64(sres.Time),
			res.HitRatio)
	}
}

// Messaging: the message-passing paradigm on the CNI — tagged
// send/receive, Active Messages running on the board, collectives, and
// the bandwidth/latency profile of both interfaces.
//
//	go run ./examples/messaging
package main

import (
	"fmt"

	"cni"
)

func main() {
	// Ping-pong and an all-reduce on a 4-node CNI fabric.
	cfg := cni.DefaultConfig()
	f, err := cni.NewFabric(&cfg, 4)
	if err != nil {
		panic(err)
	}
	sums := make([]float64, 4)
	end := f.Run(func(ep *cni.Endpoint) {
		// A remote counter via Active Messages: handler runs on the
		// receiving board, not its host CPU.
		hits := uint64(0)
		ep.RegisterAM(1, func(c cni.AMContext, args []uint64) {
			hits += args[0]
			c.Reply(2, hits)
		})
		ep.RegisterAM(2, func(c cni.AMContext, args []uint64) {})
		if ep.Node() != 0 {
			ep.SendAM(0, 1, uint64(ep.Node()))
		}

		// Neighbor exchange with tagged messages.
		right := (ep.Node() + 1) % ep.Nodes()
		ep.Send(right, 100, 2048)
		ep.Recv(100)

		// Collective: global sum of ranks, combined by the boards.
		sums[ep.Node()] = ep.AllReduceF64(float64(ep.Node()), cni.ReduceSum)
	})
	fmt.Printf("4-node fabric: allreduce sum = %v (want 6), wall %d cycles\n", sums[0], end)
	fmt.Printf("board AIH runs on node 0: %d (active messages stayed off the host)\n\n",
		f.Boards[0].Stats.AIHRuns)

	// The paper's framing: bandwidth was already solved, latency wasn't.
	fmt.Printf("%8s  %16s  %16s\n", "size", "CNI", "standard")
	for _, size := range []int{256, 1024, 4096} {
		c, _ := cni.Measure(cni.NICCNI, cni.Probe{Metric: cni.MetricBandwidth, Size: size})
		s, _ := cni.Measure(cni.NICStandard, cni.Probe{Metric: cni.MetricBandwidth, Size: size})
		fmt.Printf("%7dB  %11.1f MB/s  %11.1f MB/s\n", size, c, s)
	}
	fmt.Println("\n(622 Mb/s link ceiling is ~77.8 MB/s; at page size both interfaces")
	fmt.Println("approach it — the CNI's win is latency and small-message rate.)")
}

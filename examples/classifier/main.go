// Classifier: program the PATHFINDER the way the CNI's connection
// setup does — one shared protocol field, one branch per channel, a
// handler pattern for the on-board consistency protocol — and push
// descriptors through an Application Device Channel.
//
//	go run ./examples/classifier
package main

import (
	"encoding/binary"
	"fmt"

	"cni"
)

// header builds a 16-byte packet header: protocol id, channel, opcode.
func header(proto, channel, op uint32) []byte {
	h := make([]byte, 16)
	binary.BigEndian.PutUint32(h[0:], proto)
	binary.BigEndian.PutUint32(h[4:], channel)
	binary.BigEndian.PutUint32(h[8:], op)
	return h
}

func field(off int, v uint32) cni.PatternField {
	return cni.PatternField{Offset: off, Mask: 0xffffffff, Value: v}
}

func main() {
	pf := cni.NewClassifier()

	// Demultiplex protocol 0x0DC to per-application channels; channel 2
	// additionally routes its "barrier" opcode to an Application
	// Interrupt Handler instead of the application.
	const protoDSM = 0x0DC
	for ch := uint32(0); ch < 4; ch++ {
		pat := cni.Pattern{field(0, protoDSM), field(4, ch)}
		if err := pf.Program(pat, cni.PatternValue(100+ch)); err != nil {
			panic(err)
		}
	}
	aih := cni.Pattern{field(0, protoDSM), field(4, 2), field(8, 7 /* barrier op */)}
	_ = aih // the more specific pattern loses: first-programmed wins, as in hardware
	fmt.Println("programmed 4 channel patterns sharing one protocol-field node")

	for ch := uint32(0); ch < 4; ch++ {
		v, tests, ok := pf.Classify(header(protoDSM, ch, 1))
		fmt.Printf("  packet for channel %d -> target %d (matched=%v, %d field tests)\n",
			ch, v, ok, tests)
	}
	if _, _, ok := pf.Classify(header(0xBAD, 0, 0)); !ok {
		fmt.Println("  foreign protocol rejected (no match)")
	}

	// Fragmented packet: only the first cell carries the header; the
	// rest route through transient per-VCI flow state.
	v, _, _ := pf.Classify(header(protoDSM, 1, 1))
	pf.InstallFragmentFlow(42, v)
	for cell := 2; cell <= 4; cell++ {
		got, ok := pf.ClassifyFragment(42)
		fmt.Printf("  fragment cell %d on VCI 42 -> target %d (flow hit=%v)\n", cell, got, ok)
	}
	pf.RemoveFragmentFlow(42)

	// An Application Device Channel: protection is verified only when a
	// buffer is placed on a queue, never on the fast path.
	mgr := cni.NewChannelManager(8, 32)
	ch, err := mgr.Open(0 /* owner */, 0x42 /* vci */, cni.Region{Base: 0x10000, Len: 0x8000})
	if err != nil {
		panic(err)
	}
	if err := ch.PostTransmit(cni.Descriptor{VAddr: 0x10000, Len: 4096}); err != nil {
		panic(err)
	}
	fmt.Println("\nADC: in-region transmit accepted")
	if err := ch.PostTransmit(cni.Descriptor{VAddr: 0xdead0000, Len: 64}); err != nil {
		fmt.Printf("ADC: out-of-region transmit rejected: %v\n", err)
	}
	d, _ := ch.Transmit.Pop() // the board's transmit processor side
	fmt.Printf("ADC: board dequeued buffer %#x+%d\n", d.VAddr, d.Len)
}

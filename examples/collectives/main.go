// Collectives: barrier, reduce, broadcast and all-reduce executing as
// Application Interrupt Handlers on the CNI board — contributions are
// combined in board memory by the receive processor and forwarded
// along the schedule without crossing the host bus — versus the
// standard interface running the identical schedule through host
// interrupts and kernel handlers.
//
//	go run ./examples/collectives
package main

import (
	"fmt"

	"cni"
)

func main() {
	// An 8-node fabric with the board-combined collectives (the
	// default configuration enables them).
	cfg := cni.DefaultConfig()
	f, err := cni.NewFabric(&cfg, 8)
	if err != nil {
		panic(err)
	}
	var stats cni.CollStats
	sum := make([]float64, 8)
	f.Run(func(ep *cni.Endpoint) {
		// Global sum of ranks: O(log N) rounds, combined on the boards.
		sum[ep.Node()] = ep.AllReduceF64(float64(ep.Node()), cni.ReduceSum)

		// Reduce to a root, then broadcast the result back out.
		m := ep.ReduceF64(0, float64(ep.Node()+1), cni.ReduceMax)
		if ep.Node() == 0 && m != 8 {
			panic("reduce")
		}
		ep.BroadcastF64(0, m)

		ep.Barrier(0)
		if ep.Node() == 0 {
			stats = ep.CollStats()
		}
	})
	fmt.Printf("8-node all-reduce sum of ranks = %v (want 28)\n", sum[0])
	fmt.Printf("node 0 engine stats: %d episodes, %d arrivals combined on the board, %d on the host\n",
		stats.Episodes, stats.BoardCombined, stats.HostHandled)
	fmt.Printf("board 0: AIHRuns=%d HostHandlers=%d (collective traffic never reached the host)\n\n",
		f.Boards[0].Stats.AIHRuns, f.Boards[0].Stats.HostHandlers)

	// The FC1 comparison: the same O(log N) schedule on both
	// interfaces, plus the linear ring the engine replaces.
	fmt.Printf("%6s  %13s  %13s  %15s\n", "nodes", "CNI barrier", "std barrier", "std ring a-r")
	for _, n := range []int{2, 4, 8, 16, 32} {
		c, _ := cni.Measure(cni.NICCNI, cni.Probe{Metric: cni.MetricCollective, Nodes: n, Op: "barrier"})
		s, _ := cni.Measure(cni.NICStandard, cni.Probe{Metric: cni.MetricCollective, Nodes: n, Op: "barrier"})
		r, _ := cni.Measure(cni.NICStandard, cni.Probe{Metric: cni.MetricCollective, Nodes: n, Op: "allreduce-ring"})
		fmt.Printf("%6d  %10.2f us  %10.2f us  %12.2f us\n",
			n, c/1000, s/1000, r/1000)
	}
	fmt.Println("\n(the board-combined barrier grows with log N alone; the host-handled")
	fmt.Println("schedule pays an interrupt plus kernel handler every hop, and the ring")
	fmt.Println("baseline grows linearly with N.)")
}

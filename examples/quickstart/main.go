// Quickstart: build a two-node cluster with the CNI interface, share a
// counter through the DSM, and measure the headline microbenchmark.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"cni"
)

func main() {
	// A 4-node cluster on the paper's Table 1 machine, CNI boards.
	cfg := cni.DefaultConfig()
	cluster, err := cni.NewCluster(&cfg, 4, func(g *cni.Globals) {
		g.Alloc(64) // one page of shared words
	})
	if err != nil {
		panic(err)
	}

	// Every node increments a lock-protected shared counter 10 times.
	res := cluster.Run(func(w *cni.Worker) {
		for i := 0; i < 10; i++ {
			w.Lock(0)
			w.WriteU64(0, w.ReadU64(0)+1)
			w.Unlock(0)
		}
		w.Barrier(0)
	})

	fmt.Printf("counter        = %d (want 40)\n", cluster.ReadU64(0))
	fmt.Printf("virtual time   = %d cycles (%.2f ms at %d MHz)\n",
		res.Time, float64(res.Time)/float64(cfg.CPUFreqMHz)/1000, cfg.CPUFreqMHz)
	fmt.Printf("hit ratio      = %.1f%%\n", res.HitRatio)
	fmt.Printf("messages       = %d (%d bytes on the wire)\n",
		res.Net.Messages, res.Net.WireBytes)

	// The paper's headline: node-to-node latency, CNI vs standard.
	for _, size := range []int{64, 1024, 4096} {
		c, _ := cni.Measure(cni.NICCNI, cni.Probe{Metric: cni.MetricLatency, Size: size})
		s, _ := cni.Measure(cni.NICStandard, cni.Probe{Metric: cni.MetricLatency, Size: size})
		fmt.Printf("latency %5dB: cni %6.1f us, standard %6.1f us (-%.0f%%)\n",
			size, c/1000, s/1000, 100*(s-c)/s)
	}
}

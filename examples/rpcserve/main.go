// Rpcserve: the request-serving layer over Application Device
// Channels — open-loop Poisson clients drive a server node whose
// admission control keys off the ADC free-queue depth, on both
// interfaces, at a load past the standard interface's saturation
// point.
//
//	go run ./examples/rpcserve
package main

import (
	"fmt"

	"cni"
)

func main() {
	spec := cni.RPCSpec{
		Servers: 1, Clients: 4, Seed: 7,
		Open: true, Poisson: true, Rate: 10000,
		Requests: 300, ReqBytes: 128, RespBytes: 1024,
		Service: 1000, Policy: cni.RPCDelay,
	}

	fmt.Printf("4 clients x 10000 req/s against one server, both interfaces:\n\n")
	for _, kind := range []cni.NICKind{cni.NICCNI, cni.NICStandard} {
		cfg := cni.ConfigFor(kind)
		rep := cni.RunRPC(&cfg, spec)
		fmt.Printf("%v:\n  %d/%d completed, sustained %.0f of %.0f offered req/s\n"+
			"  latency p50 %d  p99 %d  p999 %d cycles\n"+
			"  free-queue dry %d times, %d requests parked (peak %d)\n\n",
			kind, rep.Stats.Completed, rep.Stats.Issued, rep.Sustained, rep.Offered,
			rep.P50, rep.P99, rep.P999,
			rep.Stats.FreeDry, rep.Stats.Delayed, rep.Stats.ParkedPeak)
	}

	fmt.Println("(the standard interface pays an interrupt plus kernel receive and")
	fmt.Println("send paths per request and saturates around 22.7k req/s; the CNI")
	fmt.Println("polls under load, dequeues from a user-space queue, and answers hot")
	fmt.Println("responses from the Message Cache, so its tail stays flat.)")
}

// Lowlatency: explore the node-to-node latency of Figure 14 and the
// contribution of each CNI mechanism, by toggling the design knobs.
//
//	go run ./examples/lowlatency
package main

import (
	"fmt"

	"cni"
)

// latency measures warmed node-to-node latency in nanoseconds, with
// an optional configuration tweak (ablations).
func latency(kind cni.NICKind, size int, tweak func(*cni.Config)) float64 {
	v, err := cni.Measure(kind, cni.Probe{Metric: cni.MetricLatency, Size: size, Tweak: tweak})
	if err != nil {
		panic(err)
	}
	return v
}

func measure(label string, size int, tweak func(*cni.Config)) {
	// Rebuild the experiment with a tweaked configuration by going
	// through the library's config: run a fresh latency measurement per
	// variant.
	fmt.Printf("  %-34s %8.1f us\n", label, latency(cni.NICCNI, size, tweak)/1000)
}

func main() {
	const size = 4096
	fmt.Printf("4 KB page transfer latency (warmed):\n")
	s := latency(cni.NICStandard, size, nil)
	c := latency(cni.NICCNI, size, nil)
	fmt.Printf("  %-34s %8.1f us\n", "standard interface", s/1000)
	fmt.Printf("  %-34s %8.1f us  (-%.0f%%)\n", "CNI (all mechanisms)", c/1000,
		100*(s-c)/s)

	fmt.Printf("\nCNI with one mechanism removed:\n")
	measure("no transmit caching", size, func(c *cni.Config) { c.TransmitCaching = false })
	measure("pure interrupts (no polling)", size, func(c *cni.Config) { c.PureInterrupt = true })
	measure("software packet classification", size, func(c *cni.Config) { c.UseSoftwareClassifer = true })

	fmt.Printf("\nmythical unrestricted ATM cell size (Table 5's what-if):\n")
	measure("CNI, unlimited cells", size, func(c *cni.Config) { c.UnrestrictedCell = true })

	fmt.Printf("\nlatency vs message size:\n")
	for sz := 0; sz <= 4096; sz += 1024 {
		fmt.Printf("  %4d B: cni %7.1f us   standard %7.1f us\n", sz,
			latency(cni.NICCNI, sz, nil)/1000,
			latency(cni.NICStandard, sz, nil)/1000)
	}
}

// Lowlatency: explore the node-to-node latency of Figure 14 and the
// contribution of each CNI mechanism, by toggling the design knobs.
//
//	go run ./examples/lowlatency
package main

import (
	"fmt"

	"cni"
)

func measure(label string, size int, tweak func(*cni.Config)) {
	// Rebuild the experiment with a tweaked configuration by going
	// through the library's config: run a fresh latency measurement per
	// variant.
	c := cni.MeasureLatencyWith(cni.NICCNI, size, tweak)
	fmt.Printf("  %-34s %8.1f us\n", label, float64(c)/1000)
}

func main() {
	const size = 4096
	fmt.Printf("4 KB page transfer latency (warmed):\n")
	s := cni.MeasureLatency(cni.NICStandard, size)
	c := cni.MeasureLatency(cni.NICCNI, size)
	fmt.Printf("  %-34s %8.1f us\n", "standard interface", float64(s)/1000)
	fmt.Printf("  %-34s %8.1f us  (-%.0f%%)\n", "CNI (all mechanisms)", float64(c)/1000,
		100*float64(s-c)/float64(s))

	fmt.Printf("\nCNI with one mechanism removed:\n")
	measure("no transmit caching", size, func(c *cni.Config) { c.TransmitCaching = false })
	measure("pure interrupts (no polling)", size, func(c *cni.Config) { c.PureInterrupt = true })
	measure("software packet classification", size, func(c *cni.Config) { c.UseSoftwareClassifer = true })

	fmt.Printf("\nmythical unrestricted ATM cell size (Table 5's what-if):\n")
	measure("CNI, unlimited cells", size, func(c *cni.Config) { c.UnrestrictedCell = true })

	fmt.Printf("\nlatency vs message size:\n")
	for sz := 0; sz <= 4096; sz += 1024 {
		fmt.Printf("  %4d B: cni %7.1f us   standard %7.1f us\n", sz,
			float64(cni.MeasureLatency(cni.NICCNI, sz))/1000,
			float64(cni.MeasureLatency(cni.NICStandard, sz))/1000)
	}
}

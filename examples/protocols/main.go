// Protocols: measure the paper's protocol choice. The CNI evaluation
// runs a lazy *invalidate* release consistency protocol "because it
// has been shown that invalidate protocols work best in low overhead
// environments"; this program runs the same workloads under the
// eager-update alternative (homes push diffs to every copy holder) and
// prints the comparison.
//
//	go run ./examples/protocols
package main

import (
	"fmt"
	"log"

	"cni"
)

func run(update bool, mk func() cni.App, procs int) *cni.Result {
	cfg := cni.DefaultConfig()
	cfg.UpdateProtocol = update
	_, res, err := cni.RunApp(&cfg, procs, mk())
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	workloads := []struct {
		name  string
		make  func() cni.App
		procs int
	}{
		{"jacobi-128 (coarse)", func() cni.App { return cni.NewJacobi(128, 8) }, 8},
		{"water-64 (medium)", func() cni.App { return cni.NewWater(64, 2) }, 8},
		{"cholesky-256 (fine)", func() cni.App { return cni.NewCholesky(cni.SmallMatrix(256)) }, 8},
	}
	fmt.Printf("%-22s %14s %14s %9s %12s\n",
		"workload", "invalidate", "update", "ratio", "upd-msgs")
	for _, wl := range workloads {
		inv := run(false, wl.make, wl.procs)
		upd := run(true, wl.make, wl.procs)
		fmt.Printf("%-22s %11d cy %11d cy %8.2fx %12d\n",
			wl.name, inv.Time, upd.Time,
			float64(upd.Time)/float64(inv.Time),
			int64(upd.Net.Messages)-int64(inv.Net.Messages))
	}
	fmt.Println("\nratio > 1 means the invalidate protocol wins (the paper's choice);")
	fmt.Println("upd-msgs is the message-count delta of the eager pushes (negative")
	fmt.Println("when pushes eliminate more refetches than they add - stable")
	fmt.Println("producer/consumer patterns like Jacobi's boundary exchange).")
}

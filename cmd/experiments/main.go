// Command experiments regenerates the tables and figures of the CNI
// paper's evaluation.
//
// Usage:
//
//	experiments [-quick] [-only T2,F14] [-procs 1,2,4,8] [-j N] [-shards N] [-progress=false]
//
// Without flags it runs the full paper-scale suite (minutes); -quick
// shrinks the inputs to run in seconds. Output is plain text, one
// artifact after another, in paper order.
//
// The suite runs on the parallel harness: every artifact's independent
// simulation points fan across -j workers (default GOMAXPROCS) on one
// shared pool, points common to several artifacts execute once, and
// the rendered output is bit-identical to a sequential (-j 1) run.
// Progress (points done / planned, current artifact) streams to stderr
// while the run is live; Ctrl-C cancels the suite promptly.
//
// -shards N additionally splits each simulation point across N
// conservative-parallel kernel shards — a second, orthogonal axis of
// parallelism that is also bit-identical at any count. The two axes
// share the machine: jobs x shards is capped at GOMAXPROCS by reducing
// jobs, never shards (the effective split is printed at startup). DSM
// points clamp to the single kernel; serving and fabric points shard.
//
// -cpuprofile FILE and -memprofile FILE write pprof profiles of the
// run (CPU over the whole run, live heap at exit) for digging into
// where the harness and the kernels spend their time.
//
// With -benchjson FILE it instead runs the FS1 request-serving sweep
// and the FS2 KV-serving goodput points and writes a machine-readable
// summary (sustained throughput and p50/p99 per FS1 operating point;
// goodput, victim p99 and cache hit ratio per FS2 point) for
// trajectory tracking, plus BENCH_sim.json in the same directory — the
// simulator's own wall time and kernel events/sec over fixed
// representative legs:
//
//	experiments -quick -benchjson BENCH_rpc.json
//
// Regenerating either file replaces its current points but preserves
// the committed history of past revisions' numbers.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"cni"
)

// writeBenchJSON runs the FS1 serving sweep and the FS2 KV goodput
// points and writes them as a machine-readable summary for trajectory
// tracking across revisions, preserving the file's committed history
// the way BENCH_sim.json does. Alongside it (same directory) it writes
// BENCH_sim.json: the simulator's own wall time and kernel events/sec
// over fixed representative legs.
func writeBenchJSON(path string, o cni.ExpOptions) error {
	doc := rpcBenchDoc{Experiment: "FS1+FS2", Quick: o.Quick,
		Points: cni.BenchRPC(o), KVPoints: cni.BenchKV(o)}
	// A regeneration replaces the current points but preserves the
	// committed history. A file from before the history format (FS1
	// points only) becomes the trajectory's first era.
	if old, err := os.ReadFile(path); err == nil {
		var prev rpcBenchDoc
		if json.Unmarshal(old, &prev) == nil && len(prev.Points) > 0 {
			doc.History = prev.History
			if len(prev.History) == 0 && len(prev.KVPoints) == 0 {
				doc.History = []rpcBenchEra{{
					Label:  "FS1-only baseline, before the KV serving study",
					Quick:  prev.Quick,
					Points: prev.Points,
				}}
			}
		}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return err
	}
	simPath := filepath.Join(filepath.Dir(path), "BENCH_sim.json")
	simDoc := simBenchDoc{Experiment: "sim", Quick: o.Quick, Points: cni.BenchSim(o)}
	// A regeneration replaces the current points but preserves the
	// committed history: the trajectory of past revisions' numbers that
	// the pre/post comparison below is anchored on.
	if old, err := os.ReadFile(simPath); err == nil {
		var prev simBenchDoc
		if json.Unmarshal(old, &prev) == nil {
			simDoc.History = prev.History
		}
	}
	printSimSpeedup(simDoc)
	b, err = json.MarshalIndent(simDoc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(simPath, append(b, '\n'), 0o644)
}

// rpcBenchDoc is the BENCH_rpc.json layout: the run's own FS1 and FS2
// points plus the preserved history of earlier revisions' points.
type rpcBenchDoc struct {
	Experiment string              `json:"experiment"`
	Quick      bool                `json:"quick"`
	Points     []cni.RPCBenchPoint `json:"points"`
	KVPoints   []cni.KVBenchPoint  `json:"kv_points,omitempty"`
	History    []rpcBenchEra       `json:"history,omitempty"`
}

// rpcBenchEra is one committed trajectory entry of BENCH_rpc.json.
type rpcBenchEra struct {
	Label    string              `json:"label"`
	Quick    bool                `json:"quick"`
	Points   []cni.RPCBenchPoint `json:"points"`
	KVPoints []cni.KVBenchPoint  `json:"kv_points,omitempty"`
}

// simBenchDoc is the BENCH_sim.json layout: the run's own points plus
// the preserved history of earlier revisions' points.
type simBenchDoc struct {
	Experiment string              `json:"experiment"`
	Quick      bool                `json:"quick"`
	Points     []cni.SimBenchPoint `json:"points"`
	History    []simBenchEra       `json:"history,omitempty"`
}

// simBenchEra is one committed trajectory entry: the points a past
// revision measured, labeled with what that revision was.
type simBenchEra struct {
	Label  string              `json:"label"`
	Quick  bool                `json:"quick"`
	Points []cni.SimBenchPoint `json:"points"`
}

// printSimSpeedup emits the before/after kernel-throughput line for the
// speedup-gate leg: the committed pre-calendar baseline (history entry
// 0), the live reference-heap run, and the current calendar run.
func printSimSpeedup(doc simBenchDoc) {
	find := func(points []cni.SimBenchPoint, leg string) (cni.SimBenchPoint, bool) {
		for _, p := range points {
			if p.Leg == leg {
				return p, true
			}
		}
		return cni.SimBenchPoint{}, false
	}
	post, ok := find(doc.Points, cni.BenchLeg1024)
	if !ok {
		return
	}
	line := fmt.Sprintf("sim kernel %s: post=%.0f events/s (calendar)", cni.BenchLeg1024, post.EventsPerS)
	if ref, ok := find(doc.Points, cni.BenchLeg1024+"-refheap"); ok && ref.EventsPerS > 0 {
		line += fmt.Sprintf(", refheap=%.0f events/s (%.2fx)", ref.EventsPerS, post.EventsPerS/ref.EventsPerS)
	}
	if len(doc.History) > 0 {
		if pre, ok := find(doc.History[0].Points, cni.BenchLeg1024); ok && pre.EventsPerS > 0 {
			line += fmt.Sprintf(", pre=%.0f events/s (%s, %.2fx)",
				pre.EventsPerS, doc.History[0].Label, post.EventsPerS/pre.EventsPerS)
		}
	}
	fmt.Fprintln(os.Stderr, line)
	// The sharded legs: the same sweep split across kernel shards,
	// reported as speedup over the single kernel. On a one-core runner
	// these measure the windowing overhead instead of parallelism.
	shardLine := ""
	for _, n := range []int{1, 2, 4, 8} {
		if p, ok := find(doc.Points, fmt.Sprintf("%s-shards%d", cni.BenchLeg1024, n)); ok && p.EventsPerS > 0 {
			if shardLine == "" {
				shardLine = "sim kernel sharded:"
			}
			shardLine += fmt.Sprintf(" shards%d=%.0f events/s (%.2fx)", n, p.EventsPerS, p.EventsPerS/post.EventsPerS)
		}
	}
	if shardLine != "" {
		fmt.Fprintln(os.Stderr, shardLine)
	}
}

// progressPrinter renders the live points-done line on stderr. It is
// called from harness worker goroutines, so it locks.
type progressPrinter struct {
	mu      sync.Mutex
	live    bool // a progress line is on screen
	enabled bool
}

func (p *progressPrinter) update(ev cni.ExpProgress) {
	if !p.enabled {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(os.Stderr, "\r  %d/%d points [%s] ", ev.Done, ev.Total, ev.Spec)
	p.live = true
}

// clear erases the progress line so artifact output starts clean.
func (p *progressPrinter) clear() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.live {
		fmt.Fprintf(os.Stderr, "\r%*s\r", 40, "")
		p.live = false
	}
}

func main() {
	quick := flag.Bool("quick", false, "scaled-down inputs (seconds instead of minutes)")
	only := flag.String("only", "", "comma-separated artifact ids to run (e.g. T2,F14)")
	procs := flag.String("procs", "", "override processor counts for scaling figures (e.g. 1,2,4,8)")
	jobs := flag.Int("j", 0, "simulation workers (0 = GOMAXPROCS; results identical at any value)")
	progress := flag.Bool("progress", true, "stream live point counts to stderr")
	benchjson := flag.String("benchjson", "", "write the FS1 serving benchmark summary as JSON to this file (e.g. BENCH_rpc.json) and exit")
	shards := flag.Int("shards", 0, "kernel shards per simulation point (0 = single kernel; results identical at any count)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at exit to this file")
	flag.Parse()

	// run returns an exit code instead of calling os.Exit so the
	// profile writers below always get to flush.
	code := run(*quick, *only, *procs, *jobs, *shards, *progress, *benchjson, *cpuprofile)
	if *cpuprofile != "" {
		pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
			code = 1
		} else {
			runtime.GC() // materialize the live-heap picture
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: -memprofile: %v\n", err)
				code = 1
			}
			f.Close()
		}
	}
	os.Exit(code)
}

func run(quick bool, only, procsCSV string, jobs, shards int, progress bool, benchjson, cpuprofile string) int {
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -cpuprofile: %v\n", err)
			return 2
		}
	}
	if shards < 0 {
		fmt.Fprintf(os.Stderr, "experiments: -shards must be >= 0\n")
		return 2
	}

	printer := &progressPrinter{enabled: progress}
	o := cni.ExpOptions{Quick: quick, Jobs: jobs, Shards: shards, Progress: printer.update}
	o, parallelism := o.EffectiveParallelism()
	fmt.Fprintf(os.Stderr, "experiments: %s\n", parallelism)
	if benchjson != "" {
		if err := writeBenchJSON(benchjson, o); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: -benchjson: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "experiments: wrote %s\n", benchjson)
		return 0
	}
	if procsCSV != "" {
		for _, s := range strings.Split(procsCSV, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || p < 1 || p > 32 {
				fmt.Fprintf(os.Stderr, "experiments: bad -procs entry %q\n", s)
				return 2
			}
			o.Procs = append(o.Procs, p)
		}
	}

	specs := cni.Experiments()
	if only != "" {
		var keep []cni.ExpSpec
		for _, id := range strings.Split(only, ",") {
			id = strings.TrimSpace(id)
			spec, ok := cni.FindExperiment(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown artifact %q\n", id)
				return 2
			}
			keep = append(keep, spec)
		}
		specs = keep
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// One shared pool for the whole suite: points common to several
	// artifacts run once, and every artifact's points interleave across
	// the workers. Results stream out in paper order as each artifact's
	// final point lands.
	runner := cni.NewExperimentRunner(ctx, o)
	defer runner.Close()

	type outcome struct {
		out  string
		err  error
		took time.Duration
	}
	results := make([]chan outcome, len(specs))
	start := time.Now()
	for i, spec := range specs {
		results[i] = make(chan outcome, 1)
		go func(i int, spec cni.ExpSpec) {
			t0 := time.Now()
			out, err := runner.RunSpec(spec, o)
			results[i] <- outcome{out: out, err: err, took: time.Since(t0)}
		}(i, spec)
	}

	failed := false
	for i, spec := range specs {
		r := <-results[i]
		printer.clear()
		if r.err != nil {
			if ctx.Err() != nil {
				fmt.Fprintf(os.Stderr, "experiments: canceled: %v\n", ctx.Err())
				return 1
			}
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", spec.ID, r.err)
			failed = true
			continue
		}
		fmt.Print(r.out)
		fmt.Printf("  [%s ready after %.1fs]\n\n", spec.ID, r.took.Seconds())
	}
	printer.clear()
	if failed {
		return 1
	}
	_, total := runner.Counts()
	fmt.Fprintf(os.Stderr, "experiments: %d artifacts, %d points run, %d reused from memo, %.1fs\n",
		len(specs), total, runner.MemoHits(), time.Since(start).Seconds())
	return 0
}

// Command experiments regenerates the tables and figures of the CNI
// paper's evaluation.
//
// Usage:
//
//	experiments [-quick] [-only T2,F14] [-procs 1,2,4,8]
//
// Without flags it runs the full paper-scale suite (minutes); -quick
// shrinks the inputs to run in seconds. Output is plain text, one
// artifact after another, in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cni"
)

func main() {
	quick := flag.Bool("quick", false, "scaled-down inputs (seconds instead of minutes)")
	only := flag.String("only", "", "comma-separated artifact ids to run (e.g. T2,F14)")
	procs := flag.String("procs", "", "override processor counts for scaling figures (e.g. 1,2,4,8)")
	flag.Parse()

	o := cni.ExpOptions{Quick: *quick}
	if *procs != "" {
		for _, s := range strings.Split(*procs, ",") {
			p, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || p < 1 || p > 32 {
				fmt.Fprintf(os.Stderr, "experiments: bad -procs entry %q\n", s)
				os.Exit(2)
			}
			o.Procs = append(o.Procs, p)
		}
	}

	var want map[string]bool
	if *only != "" {
		want = map[string]bool{}
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			if _, ok := cni.FindExperiment(id); !ok {
				fmt.Fprintf(os.Stderr, "experiments: unknown artifact %q\n", id)
				os.Exit(2)
			}
			want[id] = true
		}
	}

	for _, spec := range cni.Experiments() {
		if want != nil && !want[spec.ID] {
			continue
		}
		start := time.Now()
		out := cni.RunExperiment(spec, o)
		fmt.Print(out)
		fmt.Printf("  [%s in %.1fs]\n\n", spec.ID, time.Since(start).Seconds())
	}
}

// Command cnisim runs one benchmark application on the simulated
// cluster and prints the paper's metrics for it.
//
// Usage:
//
//	cnisim -app jacobi -size 256 -procs 8 -nic cni
//	cnisim -app water -size 216 -procs 8 -nic standard
//	cnisim -app jacobi -size 128 -procs 4 -nic osiris
//	cnisim -app cholesky -matrix bcsstk14 -procs 8 -pagesize 4096
//
// With -verify the result is checked against the sequential reference.
//
// -dsm selects the DSM ownership organization: the fixed-distribution
// central manager (the default) or the dynamic distributed manager
// with per-page probable-owner chains, which migrates page ownership
// to writers and rotates the synchronization managers:
//
//	cnisim -app cholesky -matrix small64 -procs 8 -dsm distributed
//
// -topo selects the fabric: the paper's single output-queued banyan
// switch (the default, capped at 32 nodes), a k-ary Clos/fat-tree, or
// a 3D torus; the multi-switch fabrics scale to 1024+ nodes and size
// their geometry automatically unless pinned with -closradix or
// -torusdims:
//
//	cnisim -app jacobi -size 256 -procs 128 -topo clos
//	cnisim -app jacobi -size 256 -procs 64 -topo torus -torusdims 4x4x4
//
// -shards N splits the simulation across N conservative-parallel
// kernel shards advancing in lock-stepped lookahead windows. Results
// are bit-identical at any shard count — only wall clock changes. Runs
// whose model needs zero-lookahead cross-node access (DSM page copies)
// clamp back to the single kernel and say so on stderr; -trace also
// forces the single kernel, since the protocol trace is one globally
// ordered stream. In -experiment mode the point workers and the kernel
// shards share the machine: jobs x shards is capped at GOMAXPROCS by
// reducing jobs, never shards:
//
//	cnisim -rpc -nic cni -shards 4
//	cnisim -experiment FT1 -quick -shards 2
//
// With -experiment it instead regenerates one or more of the paper's
// evaluation artifacts on the parallel harness:
//
//	cnisim -experiment F14 -quick -j 4
//
// fanning the artifact's independent simulation points across -j
// workers with live progress on stderr; output is bit-identical to a
// sequential run.
//
// With -rpc it runs the synthetic request-serving workload instead:
// open-loop Poisson clients (or closed-loop with -closed) drive server
// nodes through the RPC layer and the run reports sustained throughput
// plus exact latency percentiles:
//
//	cnisim -rpc -nic cni -rate 10000 -clients 4 -reqsize 128 -respsize 1024
//	cnisim -rpc -nic standard -rate 10000 -clients 4
//
// With -kv it runs the multi-tenant key-value serving workload:
// open-loop clients draw keys from a Zipf popularity law and drive
// GET/SET traffic at sharded servers; on the CNI, repeat GETs are
// answered by the board from responses pinned in the Message Cache
// (turn the cache off with -niccache=false to ablate). -tenants adds
// traffic classes (tenant i has priority i), -isolation switches on
// per-tenant device channels, token buckets and priority scheduling,
// and -contract caps each tenant above tenant 0 at a bucket rate:
//
//	cnisim -kv -nic cni -zipf 1.1 -rate 20000 -requests 500
//	cnisim -kv -nic cni -tenants 2 -isolation -contract 5000 -deadline 100000
//	cnisim -kv -nic osiris -zipf 1.3 -getfrac 0.95
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"cni"
)

// runExperiments is the -experiment mode: regenerate the named
// artifacts with the parallel harness and live progress.
func runExperiments(ids string, quick bool, jobs, shards int) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var specs []cni.ExpSpec
	for _, id := range strings.Split(ids, ",") {
		id = strings.TrimSpace(id)
		spec, ok := cni.FindExperiment(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "cnisim: unknown experiment %q (T1-T5, F2-F14, FB1, FC1, FR1, FS1, FT1, FD1)\n", id)
			os.Exit(2)
		}
		specs = append(specs, spec)
	}
	o := cni.ExpOptions{Quick: quick, Jobs: jobs, Shards: shards, Progress: func(ev cni.ExpProgress) {
		fmt.Fprintf(os.Stderr, "\r  %d/%d points [%s] ", ev.Done, ev.Total, ev.Spec)
	}}
	o, parallelism := o.EffectiveParallelism()
	fmt.Fprintf(os.Stderr, "cnisim: %s\n", parallelism)
	outs, err := cni.RunExperimentSuite(ctx, specs, o)
	fmt.Fprintf(os.Stderr, "\r%*s\r", 40, "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "cnisim: %v\n", err)
		os.Exit(1)
	}
	for _, out := range outs {
		fmt.Println(out)
	}
}

// shardNote annotates a report header with the requested shard count.
// The default single-kernel output stays byte-for-byte what it always
// was; the annotation appears only when -shards asked for the parallel
// driver (whose simulated results are identical anyway).
func shardNote(shards int) string {
	if shards <= 0 {
		return ""
	}
	return fmt.Sprintf(", %d kernel shard(s)", shards)
}

func main() {
	appName := flag.String("app", "jacobi", "jacobi | water | cholesky")
	size := flag.Int("size", 128, "grid side (jacobi) or molecule count (water)")
	iters := flag.Int("iters", 10, "iterations (jacobi) or steps (water)")
	matrix := flag.String("matrix", "bcsstk14", "bcsstk14 | bcsstk15 | small<N> (cholesky)")
	procs := flag.Int("procs", 8, "number of workstation nodes (32 max on -topo single)")
	nicName := flag.String("nic", "cni", "cni | osiris | standard")
	dsmName := flag.String("dsm", "", "DSM ownership: central | distributed (default central)")
	topoName := flag.String("topo", "", "fabric topology: single | clos | torus (default single)")
	closRadix := flag.Int("closradix", 0, "fat-tree switch radix, even >= 4 (0 = auto-size for -procs)")
	torusDims := flag.String("torusdims", "", "torus extents as XxYxZ, e.g. 4x4x4 (default auto-size)")
	pageSize := flag.Int("pagesize", 0, "shared page size in bytes (default 2048)")
	cacheSize := flag.Int("cachesize", 0, "Message Cache size in bytes (default 32768)")
	unrestricted := flag.Bool("unrestricted-cell", false, "mythical ATM with unlimited cell size (Table 5)")
	verify := flag.Bool("verify", false, "check the result against the sequential reference")
	traceN := flag.Int("trace", 0, "print the first N protocol events")
	shards := flag.Int("shards", 0, "split the simulation across N parallel kernel shards, bit-identical at any count (0 = single kernel)")
	loss := flag.Float64("loss", 0, "cell loss probability per link (0 disables)")
	corrupt := flag.Float64("corrupt", 0, "cell corruption probability per link")
	dup := flag.Float64("dup", 0, "cell duplication probability per link")
	reorder := flag.Int("reorder", 0, "max cells a delivery may slip behind later traffic")
	faultSeed := flag.Uint64("faultseed", 1, "seed of the deterministic fault injector")
	experiment := flag.String("experiment", "", "regenerate evaluation artifacts instead (e.g. F14 or T2,FC1)")
	quick := flag.Bool("quick", false, "scaled-down experiment inputs (-experiment mode)")
	jobs := flag.Int("j", 0, "experiment workers, 0 = GOMAXPROCS (-experiment mode)")
	rpcMode := flag.Bool("rpc", false, "run the synthetic request-serving workload instead")
	rate := flag.Float64("rate", 10000, "per-client offered load in req/s (-rpc open loop)")
	clients := flag.Int("clients", 4, "client nodes (-rpc mode)")
	servers := flag.Int("servers", 1, "server nodes (-rpc mode)")
	reqSize := flag.Int("reqsize", 128, "request bytes (-rpc mode)")
	respSize := flag.Int("respsize", 1024, "response bytes (-rpc mode)")
	requests := flag.Int("requests", 400, "requests per client (-rpc mode)")
	closed := flag.Bool("closed", false, "closed loop: blocking calls with -think instead of scheduled arrivals (-rpc mode)")
	think := flag.Int64("think", 0, "mean think time between closed-loop calls, cycles (-rpc mode)")
	fixed := flag.Bool("fixed", false, "fixed-rate arrivals/think times instead of Poisson (-rpc mode)")
	deadline := flag.Int64("deadline", 0, "per-request deadline in cycles, 0 = none (-rpc mode)")
	policy := flag.String("policy", "delay", "admission policy at exhaustion: shed | delay (-rpc mode)")
	seed := flag.Uint64("seed", 7, "traffic generator seed (-rpc mode)")
	kvMode := flag.Bool("kv", false, "run the multi-tenant key-value serving workload instead")
	tenants := flag.Int("tenants", 1, "tenant count; tenant i has priority i (-kv mode)")
	zipf := flag.Float64("zipf", 1.1, "Zipf key-popularity skew (-kv mode)")
	keys := flag.Int("keys", 1024, "key-space size (-kv mode)")
	getFrac := flag.Float64("getfrac", 0.9, "GET fraction of each tenant's stream (-kv mode)")
	nicCache := flag.Bool("niccache", true, "NIC-resident response cache, CNI only (-kv mode)")
	isolation := flag.Bool("isolation", false, "per-tenant channels, token buckets and priority scheduling (-kv mode)")
	contract := flag.Float64("contract", 0, "token-bucket rate contract in req/s for tenants above tenant 0, 0 = none (-kv mode)")
	flag.Parse()

	if *experiment != "" {
		runExperiments(*experiment, *quick, *jobs, *shards)
		return
	}

	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "cnisim: -shards must be >= 0\n")
		os.Exit(2)
	}
	if *traceN > 0 && *shards != 0 {
		// The protocol trace is one globally ordered event stream; the
		// sharded driver has no single kernel clock to order it on.
		fmt.Fprintln(os.Stderr, "cnisim: -trace needs the single ordered kernel; running with -shards 0")
		*shards = 0
	}

	kind, ok := cni.NICKindByName(*nicName)
	if !ok {
		fmt.Fprintf(os.Stderr, "cnisim: unknown -nic %q (%s)\n",
			*nicName, strings.Join(cni.NICKindNames(), " | "))
		os.Exit(2)
	}
	cfg := cni.ConfigFor(kind)
	if *dsmName != "" {
		cfg.DSMOwnership = *dsmName
	}
	if *pageSize > 0 {
		cfg.PageBytes = *pageSize
	}
	if *cacheSize > 0 {
		cfg.MessageCacheByte = *cacheSize
	}
	cfg.UnrestrictedCell = *unrestricted
	if *topoName != "" {
		cfg.Topology = *topoName
	}
	cfg.ClosRadix = *closRadix
	if *torusDims != "" {
		var d [3]int
		if _, err := fmt.Sscanf(*torusDims, "%dx%dx%d", &d[0], &d[1], &d[2]); err != nil {
			fmt.Fprintf(os.Stderr, "cnisim: bad -torusdims %q (want XxYxZ, e.g. 4x4x4)\n", *torusDims)
			os.Exit(2)
		}
		cfg.TorusDims = d
	}
	if !*nicCache {
		cfg.NICResponseCache = false
	}
	cfg.CellLossRate = *loss
	cfg.CellCorruptRate = *corrupt
	cfg.CellDupRate = *dup
	cfg.ReorderWindow = *reorder
	cfg.FaultSeed = *faultSeed
	cfg.SimShards = *shards
	if err := cfg.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "cnisim: bad configuration: %v\n", err)
		os.Exit(2)
	}

	if *kvMode {
		spec := cni.KVSpec{
			Servers:    *servers,
			Clients:    *clients,
			Seed:       *seed,
			Keys:       *keys,
			ZipfS:      *zipf,
			SetBytes:   *reqSize,
			ValueBytes: *respSize,
			Deadline:   cni.Time(*deadline),
			Isolation:  *isolation,
		}
		for i := 0; i < *tenants; i++ {
			t := cni.KVTenant{
				Class:    cni.TenantClass{Name: fmt.Sprintf("t%d", i), Priority: i},
				Rate:     *rate,
				Requests: *requests,
				GetFrac:  *getFrac,
			}
			if i > 0 && *contract > 0 {
				t.Class.Rate = *contract
				t.Class.Burst = 16
			}
			spec.Tenants = append(spec.Tenants, t)
		}
		switch *policy {
		case "shed":
			spec.Policy = cni.RPCShed
		case "delay":
			spec.Policy = cni.RPCDelay
		default:
			fmt.Fprintf(os.Stderr, "cnisim: unknown -policy %q (shed | delay)\n", *policy)
			os.Exit(2)
		}
		if err := spec.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "cnisim: %v\n", err)
			os.Exit(2)
		}
		cache := "off"
		if cfg.NICResponseCache {
			cache = "on"
		}
		qos := "shared FIFO"
		if *isolation {
			qos = "isolated tenants"
		}
		rep := cni.RunKV(&cfg, spec)
		fmt.Printf("kv serving: %d server(s), %d client(s) x %s interface, %d tenant(s), zipf s=%g, nic cache %s, %s%s\n",
			*servers, *clients, *nicName, *tenants, *zipf, cache, qos, shardNote(*shards))
		fmt.Printf("  %s\n", strings.ReplaceAll(rep.String(), "\n", "\n  "))
		return
	}

	if *rpcMode {
		spec := cni.RPCSpec{
			Servers:   *servers,
			Clients:   *clients,
			Seed:      *seed,
			Open:      !*closed,
			Poisson:   !*fixed,
			Rate:      *rate,
			Think:     cni.Time(*think),
			Requests:  *requests,
			ReqBytes:  *reqSize,
			RespBytes: *respSize,
			Deadline:  cni.Time(*deadline),
		}
		switch *policy {
		case "shed":
			spec.Policy = cni.RPCShed
		case "delay":
			spec.Policy = cni.RPCDelay
		default:
			fmt.Fprintf(os.Stderr, "cnisim: unknown -policy %q (shed | delay)\n", *policy)
			os.Exit(2)
		}
		if err := spec.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "cnisim: %v\n", err)
			os.Exit(2)
		}
		loop := "open loop"
		if *closed {
			loop = "closed loop"
		}
		rep := cni.RunRPC(&cfg, spec)
		fmt.Printf("rpc serving: %d server(s), %d client(s) x %s interface, %s%s\n",
			*servers, *clients, *nicName, loop, shardNote(*shards))
		fmt.Printf("  %s\n", strings.ReplaceAll(rep.String(), "\n", "\n  "))
		return
	}

	var app cni.App
	switch *appName {
	case "jacobi":
		app = cni.NewJacobi(*size, *iters)
	case "water":
		app = cni.NewWater(*size, *iters)
	case "cholesky":
		var gen cni.MatrixGen
		switch {
		case *matrix == "bcsstk14":
			gen = cni.BCSSTK14()
		case *matrix == "bcsstk15":
			gen = cni.BCSSTK15()
		default:
			var n int
			if _, err := fmt.Sscanf(*matrix, "small%d", &n); err != nil || n < 8 {
				fmt.Fprintf(os.Stderr, "cnisim: unknown -matrix %q\n", *matrix)
				os.Exit(2)
			}
			gen = cni.SmallMatrix(n)
		}
		app = cni.NewCholesky(gen)
	default:
		fmt.Fprintf(os.Stderr, "cnisim: unknown -app %q\n", *appName)
		os.Exit(2)
	}

	c, err := cni.NewCluster(&cfg, *procs, app.Setup)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cnisim: %v\n", err)
		os.Exit(2)
	}
	if *shards > 0 {
		if c.ShardClamp != "" {
			fmt.Fprintf(os.Stderr, "cnisim: -shards %d clamped to the single kernel: %s\n",
				*shards, c.ShardClamp)
		} else {
			fmt.Fprintf(os.Stderr, "cnisim: simulating on %d parallel kernel shard(s)\n", c.Shards())
		}
	}
	var tl *cni.TraceLog
	if *traceN > 0 {
		tl = c.EnableTrace(*traceN)
	}
	app.Init(c)
	res := c.Run(app.Body)
	cyclesToMS := func(cy int64) float64 { return float64(cy) / float64(cfg.CPUFreqMHz) / 1000 }
	fmt.Printf("%s on %d x %s interface\n", app.Name(), *procs, *nicName)
	fmt.Printf("  wall time          %12d cycles (%.3f ms at %d MHz)\n",
		res.Time, cyclesToMS(int64(res.Time)), cfg.CPUFreqMHz)
	fmt.Printf("  synch overhead     %12d cycles (per-node average)\n", res.AvgOverhead)
	fmt.Printf("  synch delay        %12d cycles\n", res.AvgDelay)
	fmt.Printf("  computation        %12d cycles\n", res.AvgComputation)
	fmt.Printf("  network cache hit  %11.2f%%\n", res.HitRatio)
	fmt.Printf("  messages           %12d   data %d B   wire %d B   cells %d\n",
		res.Net.Messages, res.Net.DataBytes, res.Net.WireBytes, res.Net.Cells)
	if cfg.TopologyOrDefault() != cni.TopoSingle {
		fmt.Printf("  fabric             %s\n", c.Net.Topology().Describe())
		fmt.Printf("  routing            %12d switch hops   port waits %d cycles   link waits %d cycles\n",
			res.Net.HopCount, res.Net.PortWaits, res.Net.LinkWaits)
	}
	if res.Coll.Episodes > 0 {
		fmt.Printf("  collectives        %12d episodes   board-combined %d   host-handled %d   mean %.0f cycles\n",
			res.Coll.Episodes, res.Coll.BoardCombined, res.Coll.HostHandled, res.Coll.Latency.Mean())
	}
	ownWhere := "host interrupt path"
	if c.Nodes[0].Board.ProtocolStateOnBoard() {
		ownWhere = "board-resident AIHs"
	}
	fmt.Printf("  dsm %-11s    %12d faults   %d invalidations   manager msgs %d (hottest node %d: %d)   %s\n",
		cfg.DSMOwnershipOrDefault(), res.DSM.Faults, res.DSM.Invalidations,
		res.DSM.ManagerMsgs, res.DSM.MaxManagerNode, res.DSM.MaxManagerMsgs, ownWhere)
	if cfg.DSMOwnershipOrDefault() == cni.DSMDistributed {
		fmt.Printf("  ownership chains   %12d forwards   %d migrations   mean chain %.2f hops\n",
			res.DSM.Forwards, res.DSM.Migrations, res.DSM.MeanChain())
	}
	if cfg.FaultsEnabled() {
		ft := res.Net.Faults
		fmt.Printf("  faults injected    %12d dropped   %d corrupted   %d duped   %d delayed (seed %d)\n",
			ft.CellsDropped, ft.CellsCorrupted, ft.CellsDuped, ft.PacketsDelayed, cfg.FaultSeed)
		fmt.Printf("  reliability        %12d retransmits   %d timeouts   %d naks   %d acks   %d dup-discards\n",
			res.Rel.Retransmits, res.Rel.Timeouts, res.Rel.NaksSent, res.Rel.AcksSent, res.Rel.DupDiscards)
		fmt.Printf("  retained           %12d B peak on board   window peak %d   retransmit cost %d cycles\n",
			res.Rel.RetainedBytes, res.Rel.MaxWindow, res.Rel.RetxCycles)
	}
	if *verify {
		if err := app.Verify(c); err != nil {
			fmt.Fprintf(os.Stderr, "cnisim: VERIFY FAILED: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("  verify             OK (matches sequential reference)")
	}
	if tl != nil {
		kept, dropped := len(tl.Events()), tl.Dropped()
		fmt.Printf("\nprotocol trace (%d of %d events, %d dropped):\n%s",
			kept, kept+dropped, dropped, tl.String())
	}
}

package cni_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benches for the design choices DESIGN.md calls out. The
// benches run the quick-scale workloads so `go test -bench=.` finishes
// in minutes; the full paper-scale artifacts come from
// `go run ./cmd/experiments`.
//
// Simulation is deterministic, so these measure the *simulator's* real
// cost per reproduced artifact; the simulated results themselves are
// reported through b.ReportMetric (speedups, hit ratios, reductions).

import (
	"context"
	"runtime"
	"testing"

	"cni"
)

var quickOpts = cni.ExpOptions{Quick: true, Procs: []int{1, 2, 4, 8}}

// benchSpec runs one registry artifact per iteration.
func benchSpec(b *testing.B, id string) {
	spec, ok := cni.FindExperiment(id)
	if !ok {
		b.Fatalf("unknown artifact %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err := cni.RunExperimentCtx(context.Background(), spec, quickOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(out) == 0 {
			b.Fatal("empty artifact")
		}
	}
}

func BenchmarkTable1Parameters(b *testing.B)         { benchSpec(b, "T1") }
func BenchmarkFigure2JacobiSmall(b *testing.B)       { benchSpec(b, "F2") }
func BenchmarkFigure3JacobiMedium(b *testing.B)      { benchSpec(b, "F3") }
func BenchmarkFigure4JacobiLarge(b *testing.B)       { benchSpec(b, "F4") }
func BenchmarkFigure5JacobiPageSize(b *testing.B)    { benchSpec(b, "F5") }
func BenchmarkTable2JacobiOverhead(b *testing.B)     { benchSpec(b, "T2") }
func BenchmarkFigure6Water64(b *testing.B)           { benchSpec(b, "F6") }
func BenchmarkFigure7Water216(b *testing.B)          { benchSpec(b, "F7") }
func BenchmarkFigure8Water343(b *testing.B)          { benchSpec(b, "F8") }
func BenchmarkFigure9WaterPageSize(b *testing.B)     { benchSpec(b, "F9") }
func BenchmarkTable3WaterOverhead(b *testing.B)      { benchSpec(b, "T3") }
func BenchmarkFigure10Cholesky14(b *testing.B)       { benchSpec(b, "F10") }
func BenchmarkFigure11Cholesky15(b *testing.B)       { benchSpec(b, "F11") }
func BenchmarkFigure12CholeskyPageSize(b *testing.B) { benchSpec(b, "F12") }
func BenchmarkTable4CholeskyOverhead(b *testing.B)   { benchSpec(b, "T4") }
func BenchmarkFigure13CacheSize(b *testing.B)        { benchSpec(b, "F13") }
func BenchmarkFigure14Latency(b *testing.B)          { benchSpec(b, "F14") }
func BenchmarkTable5UnrestrictedCell(b *testing.B)   { benchSpec(b, "T5") }
func BenchmarkFigureFC1Collectives(b *testing.B)     { benchSpec(b, "FC1") }

// --- full-suite benches: the parallel harness's headline ---
//
// BenchmarkSuiteQuickSequential is the seed's behavior: every artifact
// generated one after another, every point run inline, no sharing.
// BenchmarkSuiteQuickParallel runs the same suite on one shared pool
// (GOMAXPROCS workers, memoization across artifacts) and produces
// byte-identical output; on a 4+ core machine it is the >=3x
// wall-clock win the harness exists for (compare ns/op), and even on
// one core the memoized cross-artifact points are pure savings.

func suiteSpecs(b *testing.B) []cni.ExpSpec {
	specs := cni.Experiments()
	if len(specs) == 0 {
		b.Fatal("empty registry")
	}
	return specs
}

func BenchmarkSuiteQuickSequential(b *testing.B) {
	specs := suiteSpecs(b)
	for i := 0; i < b.N; i++ {
		for _, s := range specs {
			out, err := cni.RunExperimentCtx(context.Background(), s, quickOpts)
			if err != nil {
				b.Fatal(err)
			}
			if len(out) == 0 {
				b.Fatal("empty artifact")
			}
		}
	}
}

func BenchmarkSuiteQuickParallel(b *testing.B) {
	specs := suiteSpecs(b)
	o := quickOpts
	o.Jobs = runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		outs, err := cni.RunExperimentSuite(context.Background(), specs, o)
		if err != nil {
			b.Fatal(err)
		}
		if len(outs) != len(specs) {
			b.Fatalf("%d outputs", len(outs))
		}
	}
	b.ReportMetric(float64(o.Jobs), "workers")
}

// BenchmarkHeadlineLatencyReduction reports the paper's headline
// number (~33% lower latency at a 4 KB page) as a metric.
func BenchmarkHeadlineLatencyReduction(b *testing.B) {
	var red float64
	for i := 0; i < b.N; i++ {
		red = cni.LatencyReduction(4096)
	}
	b.ReportMetric(red, "%reduction@4KB")
}

// --- application benches: one simulated run per iteration ---

func benchApp(b *testing.B, kind cni.NICKind, mk func() cni.App, procs int) *cni.Result {
	var last *cni.Result
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := cni.ConfigFor(kind)
		var err error
		_, last, err = cni.RunApp(&cfg, procs, mk())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(last.Time), "simcycles")
	b.ReportMetric(last.HitRatio, "hit%")
	return last
}

func BenchmarkJacobi128x8CNI(b *testing.B) {
	benchApp(b, cni.NICCNI, func() cni.App { return cni.NewJacobi(128, 6) }, 8)
}

func BenchmarkJacobi128x8Standard(b *testing.B) {
	benchApp(b, cni.NICStandard, func() cni.App { return cni.NewJacobi(128, 6) }, 8)
}

func BenchmarkWater64x8CNI(b *testing.B) {
	benchApp(b, cni.NICCNI, func() cni.App { return cni.NewWater(64, 2) }, 8)
}

func BenchmarkCholeskySmall256x8CNI(b *testing.B) {
	benchApp(b, cni.NICCNI, func() cni.App { return cni.NewCholesky(cni.SmallMatrix(256)) }, 8)
}

// --- ablation benches (DESIGN.md section 6) ---

// ablate runs quick Jacobi with a config tweak and reports the
// simulated time so tweaks can be compared.
func ablate(b *testing.B, tweak func(*cni.Config)) {
	var last *cni.Result
	for i := 0; i < b.N; i++ {
		cfg := cni.DefaultConfig()
		if tweak != nil {
			tweak(&cfg)
		}
		var err error
		_, last, err = cni.RunApp(&cfg, 8, cni.NewJacobi(128, 6))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(last.Time), "simcycles")
	b.ReportMetric(last.HitRatio, "hit%")
}

func BenchmarkAblationBaselineCNI(b *testing.B) { ablate(b, nil) }

func BenchmarkAblationMessageCacheOff(b *testing.B) {
	ablate(b, func(c *cni.Config) { c.TransmitCaching = false; c.ReceiveCaching = false })
}

func BenchmarkAblationMessageCacheTiny(b *testing.B) {
	ablate(b, func(c *cni.Config) { c.MessageCacheByte = 8 << 10 })
}

func BenchmarkAblationReceiveCachingOff(b *testing.B) {
	ablate(b, func(c *cni.Config) { c.ReceiveCaching = false })
}

func BenchmarkAblationSnoopingOff(b *testing.B) {
	ablate(b, func(c *cni.Config) { c.ConsistencySnooping = false })
}

func BenchmarkAblationPureInterrupt(b *testing.B) {
	ablate(b, func(c *cni.Config) { c.PureInterrupt = true })
}

func BenchmarkAblationSoftwareClassifier(b *testing.B) {
	ablate(b, func(c *cni.Config) { c.UseSoftwareClassifer = true })
}

func BenchmarkAblationUnrestrictedCell(b *testing.B) {
	ablate(b, func(c *cni.Config) { c.UnrestrictedCell = true })
}

func BenchmarkAblationCellSize(b *testing.B) {
	// Larger (non-standard) cells: fragmentation overhead shrinks.
	ablate(b, func(c *cni.Config) { c.CellBytes = 256 + 5; c.CellPayloadBytes = 256 })
}

func BenchmarkAblationUpdateProtocol(b *testing.B) {
	// The paper chose the invalidate protocol "because it has been
	// shown that invalidate protocols work best in low overhead
	// environments"; this measures the eager-update alternative.
	ablate(b, func(c *cni.Config) { c.UpdateProtocol = true })
}

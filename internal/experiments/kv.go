package experiments

import (
	"fmt"

	"cni/internal/config"
	"cni/internal/rpc"
	"cni/internal/sim"
	"cni/internal/tenant"
	"cni/internal/workload"
)

// This file produces FS2, the multi-tenant key-value serving study:
// what the CNI's board-side machinery buys a memcached-style service.
// Two tenants share each server under an aggregated open-loop arrival
// stream — a well-behaved tenant at modest load and an aggressor
// offering several times the server's capacity, half of it SETs so the
// host path cannot be cached away. The sweep crosses the three
// interfaces with Zipf key skew s ∈ {0.9, 1.1, 1.3} and tenant
// isolation on/off, and reports:
//
//   - victim tail latency and total goodput with isolation (per-tenant
//     device channels, token buckets, strict/weighted scheduling at the
//     enqueue-time protection point) versus the shared-FIFO ablation;
//   - GET latency split by who served it: on the CNI, repeat GETs whose
//     responses are pinned in the Message Cache are answered by the
//     board filter with no DMA, no interrupt and no host involvement,
//     so their tail sits below the host-served tail; OSIRIS and the
//     standard interface always pay the host path.
//
// Acceptance (panics otherwise): on the CNI the board serves a
// non-trivial share of GETs and its hit tail beats the host tail at
// every skew; isolation never lowers any interface's victim on-time
// fraction; and on the CNI isolation must answer every victim request
// within its deadline with a p99 at least 2x under the shared-FIFO
// ablation. OSIRIS and the standard interface get no on-time
// guarantee: the flood's per-message host cost saturates their hosts
// whether or not the enqueue-time scheduler is fair, which is exactly
// the overhead argument the CNI makes.

// FS2Skews is the Zipf key-popularity sweep.
var FS2Skews = []float64{0.9, 1.1, 1.3}

// fs2Spec fixes the workload shape of one FS2 point: everything but
// the interface, the skew and the isolation switch is constant.
func fs2Spec(o Options, s float64, iso bool) workload.KVSpec {
	sp := workload.KVSpec{
		Servers: 1,
		Clients: 2,
		Seed:    9,
		Keys:    512,
		ZipfS:   s,

		SetBytes:   64,
		ValueBytes: 512,
		// Responses count toward goodput only when they arrive within
		// 100k cycles (~0.6 ms); under the shared-FIFO ablation the
		// backlog pushes most of them past it.
		Deadline: 100000,

		Tenants: []workload.KVTenant{
			// The well-behaved tenant: uncontracted rate, top priority.
			{Class: tenant.Class{Name: "victim", Priority: 0},
				Rate: 4000, Requests: 60, GetFrac: 1.0},
			// The aggressor: several times the server's capacity, half
			// SETs; its contract caps it at 5000 req/s when isolation is
			// on.
			{Class: tenant.Class{Name: "aggressor", Priority: 1, Rate: 5000, Burst: 16},
				Rate: 40000, Requests: 500, GetFrac: 0.5},
		},
		Isolation: iso,

		ServiceGet: 2000,
		ServiceSet: 2500,
		WorkQueue:  64,
		FreeBufs:   32,
		Policy:     rpc.Delay,
	}
	if o.Quick {
		sp.Tenants[0].Requests = 30
		sp.Tenants[1].Requests = 250
	}
	return sp
}

// fs2Run is the outcome of one FS2 point.
type fs2Run struct {
	VictimP99    sim.Time
	VictimOnTime float64 // fraction of victim requests answered by deadline
	Goodput      float64

	HitRatio         float64
	HitP99, HostP99  sim.Time
	Hits, HostServed uint64
}

// fs2Point submits one serving run at (kind, skew, isolation),
// verifying every victim request was either answered or shed by
// deadline expiry (the victim is never throttled — it has no rate
// contract — and the Delay policy rejects nothing).
func (o Options) fs2Point(kind config.NICKind, s float64, iso bool) Future[fs2Run] {
	cfg := config.ForNIC(kind)
	cfg.SimShards = o.Shards
	sp := fs2Spec(o, s, iso)
	key := pointKey{cfg: cfg, n: sp.Servers + sp.Clients,
		what: fmt.Sprintf("fs2/s%g/iso%v", s, iso)}
	return submitPoint(o, key, func() fs2Run {
		c := cfg
		rep := workload.RunKV(&c, sp)
		wantVictim := uint64(sp.Clients * sp.Tenants[0].Requests)
		vt := rep.Tenants[0]
		if vt.Completed+vt.Expired != wantVictim || vt.Throttled != 0 || vt.Rejected != 0 {
			panic(fmt.Sprintf("experiments: FS2 on %v s=%g iso=%v: victim outcomes %+v do not cover %d requests",
				kind, s, iso, vt, wantVictim))
		}
		return fs2Run{
			VictimP99:    rep.TenantLat[0].Percentile(99),
			VictimOnTime: float64(vt.OnTime) / float64(wantVictim),
			Goodput:      rep.Goodput,
			HitRatio:     rep.HitRatio,
			HitP99:       rep.HitLat.Percentile(99),
			HostP99:      rep.HostLat.Percentile(99),
			Hits:         rep.Stats.HitLat.Count,
			HostServed:   rep.Stats.HostLat.Count,
		}
	})
}

// FigureKV produces FS2: victim p99 and goodput with isolation on/off,
// and the board-served vs host-served GET tail, versus Zipf skew for
// every interface.
func FigureKV(o Options) Figure {
	f := Figure{ID: "FS2",
		Title:  "Multi-tenant KV serving: NIC response cache and tenant isolation under overload",
		XLabel: "Zipf skew s", YLabel: "latency (cycles) / req/s / ratio"}
	type cell struct{ iso, shared Future[fs2Run] }
	points := make([][]cell, len(sweepKinds))
	for i, kind := range sweepKinds {
		for _, s := range FS2Skews {
			points[i] = append(points[i], cell{
				iso:    o.fs2Point(kind, s, true),
				shared: o.fs2Point(kind, s, false),
			})
		}
	}
	for i, kind := range sweepKinds {
		label := kind.Display()
		visoP99 := Series{Label: label + "-victim-p99-isolated"}
		vshP99 := Series{Label: label + "-victim-p99-shared"}
		vIsoOT := Series{Label: label + "-victim-ontime-isolated"}
		vShOT := Series{Label: label + "-victim-ontime-shared"}
		gIso := Series{Label: label + "-goodput-isolated"}
		gSh := Series{Label: label + "-goodput-shared"}
		hostP99 := Series{Label: label + "-get-host-p99"}
		hitP99 := Series{Label: label + "-get-hit-p99"}
		hitRatio := Series{Label: label + "-hit-ratio"}
		for j, s := range FS2Skews {
			iso := points[i][j].iso.Wait()
			shared := points[i][j].shared.Wait()
			visoP99.X = append(visoP99.X, s)
			visoP99.Y = append(visoP99.Y, float64(iso.VictimP99))
			vshP99.X = append(vshP99.X, s)
			vshP99.Y = append(vshP99.Y, float64(shared.VictimP99))
			vIsoOT.X = append(vIsoOT.X, s)
			vIsoOT.Y = append(vIsoOT.Y, iso.VictimOnTime)
			vShOT.X = append(vShOT.X, s)
			vShOT.Y = append(vShOT.Y, shared.VictimOnTime)
			gIso.X = append(gIso.X, s)
			gIso.Y = append(gIso.Y, iso.Goodput)
			gSh.X = append(gSh.X, s)
			gSh.Y = append(gSh.Y, shared.Goodput)
			hostP99.X = append(hostP99.X, s)
			hostP99.Y = append(hostP99.Y, float64(iso.HostP99))
			hitP99.X = append(hitP99.X, s)
			hitP99.Y = append(hitP99.Y, float64(iso.HitP99))
			hitRatio.X = append(hitRatio.X, s)
			hitRatio.Y = append(hitRatio.Y, iso.HitRatio)

			// Acceptance: isolation must never leave the victim worse off,
			// and on the CNI it must actually deliver — every victim
			// request on time and the tail 2x under the shared ablation.
			// OSIRIS and the standard interface get no such guarantee:
			// the flood's per-message host cost saturates them whether or
			// not the enqueue-time scheduler is fair, which is the point.
			if iso.VictimOnTime < shared.VictimOnTime {
				panic(fmt.Sprintf("experiments: FS2 on %v s=%g: victim on-time fraction %.3f with isolation below %.3f without",
					kind, s, iso.VictimOnTime, shared.VictimOnTime))
			}
			if kind == config.NICCNI {
				if 2*iso.VictimP99 >= shared.VictimP99 {
					panic(fmt.Sprintf("experiments: FS2 CNI s=%g: isolated victim p99 %d not 2x below shared %d",
						s, iso.VictimP99, shared.VictimP99))
				}
				if iso.VictimOnTime != 1 {
					panic(fmt.Sprintf("experiments: FS2 CNI s=%g: isolation served only %.3f of the victim's requests on time",
						s, iso.VictimOnTime))
				}
				if shared.VictimOnTime >= iso.VictimOnTime {
					panic(fmt.Sprintf("experiments: FS2 CNI s=%g: shared-FIFO victim on-time fraction %.3f not below isolated %.3f",
						s, shared.VictimOnTime, iso.VictimOnTime))
				}
				if iso.Hits == 0 || iso.HostServed == 0 {
					panic(fmt.Sprintf("experiments: FS2 CNI s=%g: hit/host GET split %d/%d — the response cache never engaged",
						s, iso.Hits, iso.HostServed))
				}
				if iso.HitP99 >= iso.HostP99 {
					panic(fmt.Sprintf("experiments: FS2 CNI s=%g: board-served p99 %d not below host-served p99 %d",
						s, iso.HitP99, iso.HostP99))
				}
			} else if iso.Hits != 0 {
				panic(fmt.Sprintf("experiments: FS2 on %v s=%g: %d board-served GETs on an interface with no board cache",
					kind, s, iso.Hits))
			}
		}
		f.Series = append(f.Series, visoP99, vshP99, vIsoOT, vShOT, gIso, gSh, hostP99)
		if kind == config.NICCNI {
			f.Series = append(f.Series, hitP99, hitRatio)
		}
	}
	return f
}

// KVBenchPoint is one machine-readable point of the FS2 serving study,
// emitted by cmd/experiments -benchjson for trajectory tracking.
type KVBenchPoint struct {
	NIC       string  `json:"nic"`
	Isolation bool    `json:"isolation"`
	ZipfS     float64 `json:"zipf_s"`
	Goodput   float64 `json:"goodput_req_per_s"`
	VictimP99 int64   `json:"victim_p99_cycles"`
	HitRatio  float64 `json:"hit_ratio"`
}

// BenchKV runs the FS2 goodput points at the middle skew and returns
// them in a fixed order (interface major, isolation minor), bit
// identical run to run.
func BenchKV(o Options) []KVBenchPoint {
	const s = 1.1
	futs := make([][2]Future[fs2Run], len(sweepKinds))
	for i, kind := range sweepKinds {
		futs[i] = [2]Future[fs2Run]{o.fs2Point(kind, s, false), o.fs2Point(kind, s, true)}
	}
	var out []KVBenchPoint
	for i, kind := range sweepKinds {
		for j, iso := range []bool{false, true} {
			r := futs[i][j].Wait()
			out = append(out, KVBenchPoint{
				NIC:       kind.String(),
				Isolation: iso,
				ZipfS:     s,
				Goodput:   r.Goodput,
				VictimP99: int64(r.VictimP99),
				HitRatio:  r.HitRatio,
			})
		}
	}
	return out
}

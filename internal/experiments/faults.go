package experiments

import (
	"fmt"

	"cni/internal/apps"
	"cni/internal/config"
	"cni/internal/memsys"
	"cni/internal/nic"
	"cni/internal/sim"
)

// This file produces FR1, an experiment beyond the paper's figures:
// resilience of the two interfaces under deterministic cell loss. The
// fabric drops cells at rates 0, 1e-6 .. 1e-3; both interfaces run the
// identical go-back-N recovery protocol, but the CNI runs it in board
// firmware (retained PDUs, no DMA on retransmit, no host involvement)
// while the standard interface runs it in the kernel (host timer
// interrupt, kernel resend path, fresh DMA per retransmit). FR1 plots,
// per interface, the slowdown of a round trip, a Jacobi DSM run and an
// all-reduce stream relative to the lossless fabric, plus the raw
// retransmit counts of a fixed message-pumping stress leg — and it
// panics unless every workload still produces its lossless results.
//
// The lossless (rate 0) legs are keyed identically to the baselines
// other artifacts measure — F14's 4 KB latency, FC1's 4-node
// all-reduce — so under a shared Runner FR1's re-verification of the
// lossless fabric costs nothing extra.

// FaultRates is the cell-loss sweep of FR1.
var FaultRates = []float64{0, 1e-6, 1e-5, 1e-4, 1e-3}

// faultCfg arms the injector at the given cell-loss rate.
func faultCfg(rate float64) func(*config.Config) {
	return func(c *config.Config) {
		c.FaultSeed = 1
		c.CellLossRate = rate
	}
}

// fr1Run is the outcome of one FR1 Jacobi point.
type fr1Run struct {
	Time sim.Time
	Rel  nic.RelStats
}

// fr1JacobiPoint submits a Jacobi-under-loss run: the workload runs,
// verifies its numerical result against the sequential reference, and
// reports the run time plus the cluster-wide reliability counters.
func (o Options) fr1JacobiPoint(kind config.NICKind, rate float64) Future[fr1Run] {
	size, iters, nodes := 128, 6, 8
	if o.Quick {
		size, iters, nodes = 64, 4, 4
	}
	cfg := config.ForNIC(kind)
	faultCfg(rate)(&cfg)
	cfg.SimShards = o.Shards // clamped (DSM pages), keeps the clamp path hot
	key := pointKey{cfg: cfg, n: nodes, what: fmt.Sprintf("fr1jacobi/%dx%d", size, iters)}
	return submitPoint(o, key, func() fr1Run {
		c := cfg
		app := apps.NewJacobi(size, iters)
		cl, res := apps.MustExecute(&c, nodes, app)
		if err := app.Verify(cl); err != nil {
			panic(fmt.Sprintf("experiments: FR1 jacobi wrong under %v loss on %v: %v", rate, kind, err))
		}
		return fr1Run{Time: res.Time, Rel: res.Rel}
	})
}

// fr1StressPoint submits the stress leg: it pumps enough sequenced
// messages point to point that the expected number of injected cell
// faults is well above zero at every nonzero rate — the leg that
// proves the retransmit machinery actually fires even at 1e-6 — and
// checks exactly-once in-order delivery.
func (o Options) fr1StressPoint(kind config.NICKind, rate float64) Future[nic.RelStats] {
	const size = 8192
	cfg := config.ForNIC(kind)
	faultCfg(rate)(&cfg)
	cells := float64(cfg.Cells(size))
	wantFaults := 12.0
	if o.Quick {
		wantFaults = 6
	}
	n := 100
	if rate > 0 {
		n = int(wantFaults/(rate*cells)) + 1
		if n < 100 {
			n = 100
		}
		if n > 120_000 {
			n = 120_000
		}
	}
	key := pointKey{cfg: cfg, n: 2, what: fmt.Sprintf("fr1stress/%d", n)}
	return submitPoint(o, key, func() nic.RelStats { return fr1Stress(cfg, kind, rate, n) })
}

func fr1Stress(cfg config.Config, kind config.NICKind, rate float64, n int) nic.RelStats {
	const size = 8192
	k := sim.NewKernel()
	net := mustNet(k, &cfg, 2)
	src := nic.NewBoard(k, &cfg, 0, net, memsys.New(&cfg))
	dst := nic.NewBoard(k, &cfg, 1, net, memsys.New(&cfg))
	delivered := 0
	ordered := true
	dst.Register(microOp, true, func(at sim.Time, m *nic.Message) {
		if m.Aux != uint32(delivered) {
			ordered = false
		}
		delivered++
	})
	pace := cfg.SerializeCycles(size)
	k.Spawn("pump", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			src.Send(p, &nic.Message{From: 0, To: 1, Op: microOp, Aux: uint32(i), Size: size})
			p.Advance(pace)
			p.Sync()
		}
	})
	k.Run()
	if delivered != n || !ordered {
		panic(fmt.Sprintf("experiments: FR1 stress on %v at %v loss: %d/%d delivered, ordered=%v",
			kind, rate, delivered, n, ordered))
	}
	rel := src.Stats.Rel
	rel.Merge(dst.Stats.Rel)
	if rate > 0 && rel.Retransmits == 0 {
		panic(fmt.Sprintf("experiments: FR1 stress on %v at %v loss injected faults but retransmitted nothing (faults: %+v)",
			kind, rate, net.Stats.Faults))
	}
	return rel
}

// FigureFaults produces FR1: per-interface slowdown of round-trip
// latency, Jacobi completion and all-reduce latency versus cell-loss
// rate, plus the stress leg's retransmit counts.
func FigureFaults(o Options) Figure {
	f := Figure{ID: "FR1",
		Title:  "Resilience under cell loss: slowdown vs loss rate (go-back-N on board vs on host)",
		XLabel: "Cell loss rate", YLabel: "Slowdown vs lossless / retransmits"}
	// Plan every point of every interface up front so the whole figure
	// fans across the worker pool at once.
	type ratePoints struct {
		lat    Future[int64]
		jac    Future[fr1Run]
		red    Future[int64]
		stress Future[nic.RelStats]
	}
	type kindPoints struct {
		rtt0  Future[int64]
		jac0  Future[fr1Run]
		red0  Future[int64]
		rates []ratePoints
	}
	points := make([]kindPoints, len(sweepKinds))
	for i, kind := range sweepKinds {
		points[i] = kindPoints{
			rtt0: o.latencyPoint(kind, 4096, nil),
			jac0: o.fr1JacobiPoint(kind, 0),
			red0: o.collectivePoint(kind, 4, "allreduce", nil),
		}
		for _, rate := range FaultRates {
			points[i].rates = append(points[i].rates, ratePoints{
				lat:    o.latencyPoint(kind, 4096, faultCfg(rate)),
				jac:    o.fr1JacobiPoint(kind, rate),
				red:    o.collectivePoint(kind, 4, "allreduce", faultCfg(rate)),
				stress: o.fr1StressPoint(kind, rate),
			})
		}
	}
	for i, kind := range sweepKinds {
		label := kind.Display()
		rtt := Series{Label: label + "-rtt-slowdown"}
		jac := Series{Label: label + "-jacobi-slowdown"}
		red := Series{Label: label + "-allreduce-slowdown"}
		rtx := Series{Label: label + "-retransmits"}

		rtt0 := points[i].rtt0.Wait()
		jac0 := points[i].jac0.Wait().Time
		red0 := points[i].red0.Wait()
		for j, rate := range FaultRates {
			pt := points[i].rates[j]
			lat := pt.lat.Wait()
			jr := pt.jac.Wait()
			rl := pt.red.Wait()
			srel := pt.stress.Wait()
			if rate == 0 && (jr.Rel != (nic.RelStats{}) || srel.Retransmits != 0) {
				panic("experiments: FR1 reliability counters moved on the lossless fabric")
			}

			rtt.X = append(rtt.X, rate)
			rtt.Y = append(rtt.Y, float64(lat)/float64(rtt0))
			jac.X = append(jac.X, rate)
			jac.Y = append(jac.Y, float64(jr.Time)/float64(jac0))
			red.X = append(red.X, rate)
			red.Y = append(red.Y, float64(rl)/float64(red0))
			rtx.X = append(rtx.X, rate)
			rtx.Y = append(rtx.Y, float64(srel.Retransmits))
		}
		f.Series = append(f.Series, rtt, jac, red, rtx)
	}
	return f
}

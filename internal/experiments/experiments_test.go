package experiments

import (
	"strconv"
	"strings"
	"testing"

	"cni/internal/apps/spmat"
	"cni/internal/config"
)

var quick = Options{Quick: true, Procs: []int{1, 2, 4}}

func TestLatencyReductionMatchesHeadline(t *testing.T) {
	// "the communication latency is lower for the CNI architecture by
	// as much as 33%" at a 4 KB page transfer.
	red := LatencyReduction(4096)
	if red < 25 || red > 45 {
		t.Fatalf("latency reduction at 4KB = %.1f%%, want ~33%% (25-45)", red)
	}
}

func TestLatencyMonotoneAndOrdered(t *testing.T) {
	var prevC, prevS int64
	for _, size := range []int{0, 512, 1024, 2048, 4096} {
		c := MeasureLatency(config.NICCNI, size, nil)
		s := MeasureLatency(config.NICStandard, size, nil)
		if c >= s {
			t.Fatalf("size %d: CNI %d ns >= standard %d ns", size, c, s)
		}
		if c < prevC || s < prevS {
			t.Fatalf("latency not monotone in size at %d", size)
		}
		prevC, prevS = c, s
	}
}

func TestLatencyScaleIsPlausible(t *testing.T) {
	// 4 KB on the standard interface: the paper's figure tops out
	// around 200 (us); the model should be within a loose band of
	// 100-400 us, and far above the 0-byte latency.
	s := MeasureLatency(config.NICStandard, 4096, nil)
	if s < 100_000 || s > 400_000 {
		t.Fatalf("standard 4KB latency = %d ns, want 100-400 us", s)
	}
	s0 := MeasureLatency(config.NICStandard, 0, nil)
	if s0 >= s/2 {
		t.Fatalf("0-byte latency %d ns implausibly close to 4KB latency %d ns", s0, s)
	}
}

func TestFigureFC1Shape(t *testing.T) {
	f := FigureCollective(Options{Quick: true})
	if len(f.Series) != 5 {
		t.Fatalf("%d series", len(f.Series))
	}
	byLabel := map[string]Series{}
	for _, s := range f.Series {
		byLabel[s.Label] = s
	}
	cniB, stdB := byLabel["CNI-barrier"], byLabel["Standard-barrier"]
	cniA, stdA := byLabel["CNI-allreduce"], byLabel["Standard-allreduce"]
	for i, x := range cniB.X {
		// The acceptance bar is strictly-faster at >=8 nodes; the model
		// in fact wins at every node count.
		if cniB.Y[i] >= stdB.Y[i] {
			t.Fatalf("n=%v: CNI barrier %.2f us >= standard %.2f us", x, cniB.Y[i], stdB.Y[i])
		}
		if cniA.Y[i] >= stdA.Y[i] {
			t.Fatalf("n=%v: CNI allreduce %.2f us >= standard %.2f us", x, cniA.Y[i], stdA.Y[i])
		}
		if i > 0 && cniB.Y[i] <= cniB.Y[i-1] {
			t.Fatalf("CNI barrier latency not increasing with n at %v", x)
		}
	}
	// The log N schedule must beat the linear ring once N is large
	// enough even on the host; at the quick sweep's top (8 nodes) the
	// engine on the CNI must beat the ring outright.
	ring := byLabel["Standard-allreduce-ring"]
	last := len(ring.Y) - 1
	if cniA.Y[last] >= ring.Y[last] {
		t.Fatalf("CNI allreduce %.2f us >= ring %.2f us at n=%v", cniA.Y[last], ring.Y[last], ring.X[last])
	}
}

func TestScalingFigureShape(t *testing.T) {
	f := FigureScaling("F2", "quick jacobi", JacobiMaker(128, quick), quick)
	if len(f.Series) != 3 {
		t.Fatalf("%d series", len(f.Series))
	}
	cni, std, hit := f.Series[0], f.Series[1], f.Series[2]
	last := len(cni.Y) - 1
	if cni.Y[0] < 0.95 || cni.Y[0] > 1.05 {
		t.Fatalf("1-proc CNI speedup = %v, want ~1", cni.Y[0])
	}
	if cni.Y[last] <= 1 {
		t.Fatalf("CNI speedup at %v procs = %v, want > 1", cni.X[last], cni.Y[last])
	}
	// CNI never loses to standard on any point.
	for i := range cni.Y {
		if cni.Y[i] < std.Y[i]*0.999 {
			t.Fatalf("CNI speedup %v below standard %v at %v procs", cni.Y[i], std.Y[i], cni.X[i])
		}
	}
	// Jacobi's hit ratio is high once warmed; quick mode runs only 6
	// iterations so cold misses still weigh in.
	if hit.Y[last] < 55 {
		t.Fatalf("Jacobi hit ratio = %v, want high", hit.Y[last])
	}
}

func TestOverheadTableShape(t *testing.T) {
	tb := TableOverhead("T2", "quick jacobi overheads", JacobiMaker(128, quick), quick)
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	get := func(row, col int) int64 {
		v, err := strconv.ParseInt(tb.Rows[row][col], 10, 64)
		if err != nil {
			t.Fatalf("cell (%d,%d) = %q", row, col, tb.Rows[row][col])
		}
		return v
	}
	// Paper's shape: CNI has lower synch overhead and lower synch
	// delay; computation is essentially equal; totals favor CNI.
	if get(0, 1) >= get(0, 2) {
		t.Fatalf("CNI synch overhead %d not below standard %d", get(0, 1), get(0, 2))
	}
	if get(1, 1) > get(1, 2) {
		t.Fatalf("CNI synch delay %d above standard %d", get(1, 1), get(1, 2))
	}
	if get(3, 1) >= get(3, 2) {
		t.Fatalf("CNI total %d not below standard %d", get(3, 1), get(3, 2))
	}
	compA, compB := float64(get(2, 1)), float64(get(2, 2))
	if compA/compB > 1.1 || compB/compA > 1.1 {
		t.Fatalf("computation differs too much: %v vs %v", compA, compB)
	}
}

func TestUnrestrictedCellImproves(t *testing.T) {
	tb := TableUnrestrictedCell(quick)
	if len(tb.Rows) != 3 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v <= 0 {
			t.Fatalf("%s: unrestricted cells made things worse (%v%%)", row[0], v)
		}
		if v > 60 {
			t.Fatalf("%s: improvement %v%% implausibly large", row[0], v)
		}
	}
}

func TestCacheSizeFigureShape(t *testing.T) {
	f := FigureCacheSize(quick)
	if len(f.Series) != 3 {
		t.Fatalf("%d series", len(f.Series))
	}
	for _, s := range f.Series {
		if len(s.Y) != len(cacheSizes(true)) {
			t.Fatalf("series %s has %d points", s.Label, len(s.Y))
		}
		// Hit ratio must not collapse as the cache grows: allow small
		// wiggle, require the largest cache to be within a whisker of
		// the best.
		best := 0.0
		for _, y := range s.Y {
			if y > best {
				best = y
			}
		}
		if s.Y[len(s.Y)-1] < best-5 {
			t.Fatalf("series %s: hit ratio at max cache %v far below best %v",
				s.Label, s.Y[len(s.Y)-1], best)
		}
	}
}

func TestPageSizeFigureShape(t *testing.T) {
	f := FigurePageSize("F5", "quick jacobi page size", JacobiMaker(128, quick), quick)
	if len(f.Series) != 2 {
		t.Fatalf("%d series", len(f.Series))
	}
	for i := range f.Series[0].Y {
		if f.Series[0].Y[i] < f.Series[1].Y[i]*0.999 {
			t.Fatalf("CNI below standard at page size %v", f.Series[0].X[i])
		}
	}
}

func TestTableT1MatchesPaper(t *testing.T) {
	tb := TableT1()
	joined := ""
	for _, r := range tb.Rows {
		joined += r[0] + "=" + r[1] + ";"
	}
	for _, want := range []string{"166 MHz", "32 KB", "25 MHz", "33 MHz", "500 ns"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("T1 missing %q: %s", want, joined)
		}
	}
}

func TestRegistryCoversEveryArtifact(t *testing.T) {
	want := []string{"T1", "F2", "F3", "F4", "F5", "T2", "F6", "F7", "F8", "F9",
		"T3", "F10", "F11", "F12", "T4", "F13", "F14", "T5", "FB1", "FC1", "FR1", "FS1", "FT1", "FD1", "FS2"}
	specs := All()
	if len(specs) != len(want) {
		t.Fatalf("%d specs, want %d", len(specs), len(want))
	}
	for i, id := range want {
		if specs[i].ID != id {
			t.Fatalf("spec %d = %s, want %s", i, specs[i].ID, id)
		}
		if (specs[i].Figure == nil) == (specs[i].Table == nil) {
			t.Fatalf("spec %s must have exactly one generator", id)
		}
	}
	if _, ok := Find("F13"); !ok {
		t.Fatal("Find(F13) failed")
	}
	if _, ok := Find("F99"); ok {
		t.Fatal("Find(F99) succeeded")
	}
}

func TestRenderers(t *testing.T) {
	tb := Table{ID: "TX", Title: "demo", Columns: []string{"a", "bb"},
		Rows: [][]string{{"1", "2"}, {"333", "4"}}}
	s := RenderTable(tb)
	if !strings.Contains(s, "TX: demo") || !strings.Contains(s, "333") {
		t.Fatalf("table render:\n%s", s)
	}
	f := Figure{ID: "FX", Title: "demo", XLabel: "x",
		Series: []Series{{Label: "s1", X: []float64{1, 2}, Y: []float64{3, 4.5}}}}
	r := RenderFigure(f)
	if !strings.Contains(r, "FX: demo") || !strings.Contains(r, "4.50") {
		t.Fatalf("figure render:\n%s", r)
	}
}

func TestCholeskyScalingQuickShape(t *testing.T) {
	f := FigureScaling("F10", "quick cholesky", CholeskyMaker(spmat.BCSSTK14(), quick), quick)
	cni, std := f.Series[0], f.Series[1]
	last := len(cni.Y) - 1
	if cni.Y[last] < std.Y[last]*0.999 {
		t.Fatalf("CNI cholesky speedup %v below standard %v", cni.Y[last], std.Y[last])
	}
}

func TestBandwidthApproachesLinkRate(t *testing.T) {
	// At page-sized messages both interfaces should approach (and never
	// exceed) the 622 Mb/s link: ~77 MB/s.
	for _, kind := range []config.NICKind{config.NICCNI, config.NICStandard} {
		bw := MeasureBandwidth(kind, 4096, nil)
		if bw > 78 {
			t.Fatalf("%v: bandwidth %.1f MB/s exceeds the link rate", kind, bw)
		}
		if bw < 35 {
			t.Fatalf("%v: bandwidth %.1f MB/s implausibly low for 4KB messages", kind, bw)
		}
	}
}

func TestSmallMessageBandwidthGap(t *testing.T) {
	// At small messages the standard interface's per-message costs cap
	// throughput; the CNI must be clearly faster.
	cni := MeasureBandwidth(config.NICCNI, 256, nil)
	std := MeasureBandwidth(config.NICStandard, 256, nil)
	if cni <= std {
		t.Fatalf("small-message bandwidth: cni %.2f <= std %.2f MB/s", cni, std)
	}
}

func TestFigureFR1Shape(t *testing.T) {
	f := FigureFaults(Options{Quick: true})
	if want := 4 * len(sweepKinds); len(f.Series) != want {
		t.Fatalf("%d series, want %d", len(f.Series), want)
	}
	byLabel := map[string]Series{}
	for _, s := range f.Series {
		byLabel[s.Label] = s
	}
	for _, kind := range []string{"CNI", "Osiris", "Standard"} {
		for _, metric := range []string{"rtt-slowdown", "jacobi-slowdown", "allreduce-slowdown"} {
			s := byLabel[kind+"-"+metric]
			if len(s.Y) != len(FaultRates) {
				t.Fatalf("%s-%s has %d points, want %d", kind, metric, len(s.Y), len(FaultRates))
			}
			// The lossless point is the baseline by construction.
			if s.Y[0] < 0.999 || s.Y[0] > 1.001 {
				t.Fatalf("%s-%s lossless slowdown = %v, want 1", kind, metric, s.Y[0])
			}
			for i, y := range s.Y {
				if y < 0.999 {
					t.Fatalf("%s-%s at rate %v: slowdown %v below 1", kind, metric, s.X[i], y)
				}
			}
		}
		rtx := byLabel[kind+"-retransmits"]
		if rtx.Y[0] != 0 {
			t.Fatalf("%s retransmitted on the lossless fabric", kind)
		}
		for i := 1; i < len(rtx.Y); i++ {
			if rtx.Y[i] == 0 {
				t.Fatalf("%s: zero retransmits at loss rate %v", kind, rtx.X[i])
			}
		}
	}
	// The headline: at the highest loss rate the standard interface,
	// which pays a host interrupt and a fresh DMA per recovery, slows
	// down at least as much as the CNI, whose firmware retransmits from
	// board memory.
	last := len(FaultRates) - 1
	cni := byLabel["CNI-jacobi-slowdown"].Y[last]
	std := byLabel["Standard-jacobi-slowdown"].Y[last]
	if cni > std*1.05 {
		t.Fatalf("CNI jacobi slowdown %v far above standard %v at 1e-3 loss", cni, std)
	}
}

func TestOsirisLatencyBetween(t *testing.T) {
	// The acceptance bar for the third model: OSIRIS saves the kernel
	// send/receive paths through its user-level queues but still pays an
	// interrupt and a DMA per message, so its latency lands strictly
	// between the CNI and the standard interface.
	for _, size := range []int{1024, 4096} {
		c := MeasureLatency(config.NICCNI, size, nil)
		o := MeasureLatency(config.NICOsiris, size, nil)
		s := MeasureLatency(config.NICStandard, size, nil)
		if !(c < o && o < s) {
			t.Fatalf("size %d: want cni < osiris < standard, got %d / %d / %d ns", size, c, o, s)
		}
	}
}

func TestFigureBandwidthShape(t *testing.T) {
	f := FigureBandwidth(Options{Quick: true})
	if len(f.Series) != len(sweepKinds) {
		t.Fatalf("%d series", len(f.Series))
	}
	byLabel := map[string]Series{}
	for _, s := range f.Series {
		byLabel[s.Label] = s
	}
	cni, os, std := byLabel["CNI"], byLabel["Osiris"], byLabel["Standard"]
	last := len(cni.Y) - 1
	// At page-sized messages everyone approaches (never exceeds) the
	// 622 Mb/s link rate; at the smallest size the per-message host
	// costs order the interfaces.
	for _, s := range []Series{cni, os, std} {
		if s.Y[last] > 78 || s.Y[last] < 35 {
			t.Fatalf("%s: 4KB bandwidth %.1f MB/s outside 35-78", s.Label, s.Y[last])
		}
	}
	if !(cni.Y[0] > os.Y[0] && os.Y[0] > std.Y[0]) {
		t.Fatalf("small-message bandwidth not ordered: cni %.2f, osiris %.2f, std %.2f",
			cni.Y[0], os.Y[0], std.Y[0])
	}
}

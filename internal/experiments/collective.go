package experiments

import (
	"cni/internal/collective"
	"cni/internal/config"
	"cni/internal/msgpass"
	"cni/internal/sim"
)

// This file produces FC1, an experiment beyond the paper's figures:
// collective operation latency versus node count, comparing the CNI
// executing the combining schedule in board memory (AIH handlers on
// the receive processor) against the standard interface running the
// identical schedule through host interrupts and kernel handlers. A
// third curve runs the pre-engine linear ring all-reduce on the
// standard interface — the O(N) baseline the O(log N) schedule
// replaces.

// collIters is how many episodes each measurement averages over. Every
// episode after the first is identical (the simulator is
// deterministic), so a short run suffices.
const collIters = 16

// MeasureCollective returns the mean per-episode latency in
// nanoseconds of the given collective on n nodes. op is "barrier",
// "allreduce", or "allreduce-ring".
func MeasureCollective(kind config.NICKind, n int, op string) int64 {
	return measureCollectiveCfg(kind, n, op, nil)
}

// measureCollectiveCfg is MeasureCollective with a config mutator
// (experiment FR1 injects fabric faults through it).
func measureCollectiveCfg(kind config.NICKind, n int, op string, mutate func(*config.Config)) int64 {
	cfg := config.ForNIC(kind)
	if mutate != nil {
		mutate(&cfg)
	}
	return measureCollectiveWithCfg(cfg, n, op)
}

// collectivePoint submits one collective measurement as a harness
// point.
func (o Options) collectivePoint(kind config.NICKind, n int, op string, mutate func(*config.Config)) Future[int64] {
	cfg := config.ForNIC(kind)
	if mutate != nil {
		mutate(&cfg)
	}
	key := pointKey{cfg: cfg, n: n, what: "collective/" + op}
	return submitPoint(o, key, func() int64 { return measureCollectiveWithCfg(cfg, n, op) })
}

func measureCollectiveWithCfg(cfg config.Config, n int, op string) int64 {
	f := mustFabric(&cfg, n)
	var stats collective.Stats
	var ringCycles int64
	f.Run(func(ep *msgpass.Endpoint) {
		switch op {
		case "barrier":
			for i := 0; i < collIters; i++ {
				ep.Barrier(0)
			}
		case "allreduce":
			for i := 0; i < collIters; i++ {
				ep.AllReduceF64(float64(ep.Node()), msgpass.OpSum)
			}
		case "allreduce-ring":
			p := ep.Proc()
			p.Sync()
			t0 := p.Local()
			for i := 0; i < collIters; i++ {
				ep.AllReduceF64Ring(i*1000, float64(ep.Node()),
					func(a, b float64) float64 { return a + b })
			}
			p.Sync()
			if ep.Node() == 0 {
				ringCycles = int64(p.Local() - t0)
			}
		default:
			panic("experiments: unknown collective op " + op)
		}
		if ep.Node() == 0 {
			stats = ep.CollStats()
		}
	})
	if op == "allreduce-ring" {
		return cfg.CyclesToNS(sim.Time(ringCycles / collIters))
	}
	return cfg.CyclesToNS(sim.Time(stats.Latency.Sum / stats.Latency.Count))
}

// collNodes is the node-count sweep of FC1.
func collNodes(quick bool) []int {
	if quick {
		return []int{2, 4, 8}
	}
	return []int{2, 4, 8, 16, 32}
}

// FigureCollective produces FC1: barrier and all-reduce latency versus
// node count for both interfaces, plus the ring baseline.
func FigureCollective(o Options) Figure {
	f := Figure{ID: "FC1",
		Title:  "Collective operation latency: NIC-combining vs host-handled",
		XLabel: "No of nodes", YLabel: "Latency (us)"}
	series := []struct {
		label string
		kind  config.NICKind
		op    string
	}{
		{"CNI-barrier", config.NICCNI, "barrier"},
		{"Standard-barrier", config.NICStandard, "barrier"},
		{"CNI-allreduce", config.NICCNI, "allreduce"},
		{"Standard-allreduce", config.NICStandard, "allreduce"},
		{"Standard-allreduce-ring", config.NICStandard, "allreduce-ring"},
	}
	nodes := collNodes(o.Quick)
	points := make([][]Future[int64], len(series))
	for i, sp := range series {
		points[i] = make([]Future[int64], len(nodes))
		for j, n := range nodes {
			points[i][j] = o.collectivePoint(sp.kind, n, sp.op, nil)
		}
	}
	for i, sp := range series {
		s := Series{Label: sp.label}
		for j, n := range nodes {
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, float64(points[i][j].Wait())/1000)
		}
		f.Series = append(f.Series, s)
	}
	return f
}

package experiments

import (
	"context"
	"testing"

	"cni/internal/cluster"
	"cni/internal/config"
	"cni/internal/dsm"
	"cni/internal/workload"
)

// TestShardSuiteParity is the golden parity gate of the sharded kernel:
// the full suite, rendered with every simulation point split across
// conservative-parallel shards, must be byte-identical to the
// sequential single-kernel path at every shard count. Under -short
// (CI's -race leg) one shard count covers the full suite; the long run
// sweeps 1, 2 and 8.
func TestShardSuiteParity(t *testing.T) {
	specs := All()
	base := make([]string, len(specs))
	for i, s := range specs {
		base[i] = renderSequential(s, parityOpts)
	}
	counts := []int{1, 2, 8}
	if testing.Short() {
		counts = []int{4}
	}
	for _, shards := range counts {
		o := parityOpts
		o.Shards = shards
		o.Jobs = 2
		outs, err := RunSuite(context.Background(), specs, o)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		for i, s := range specs {
			if outs[i] != base[i] {
				t.Errorf("%s at shards=%d: output differs from single kernel\n--- single kernel ---\n%s\n--- shards=%d ---\n%s",
					s.ID, shards, base[i], shards, outs[i])
			}
		}
	}
}

// TestShardClusterClampAndSpread pins the cluster layer's sharding
// decision: a message-carried serving run spreads its nodes across the
// requested shards, while a DSM run (shared pages, zero-lookahead page
// copies) clamps back to the single kernel and says why.
func TestShardClusterClampAndSpread(t *testing.T) {
	cfg := config.ForNIC(config.NICCNI)
	cfg.SimShards = 4
	c, err := cluster.New(&cfg, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c.SS == nil || c.Shards() != 4 || c.ShardClamp != "" {
		t.Fatalf("serving cluster: SS=%v shards=%d clamp=%q, want 4 shards unclamped",
			c.SS != nil, c.Shards(), c.ShardClamp)
	}

	dsmCfg := config.ForNIC(config.NICCNI)
	dsmCfg.SimShards = 4
	d, err := cluster.New(&dsmCfg, 8, func(g *dsm.Globals) { g.Alloc(1024) })
	if err != nil {
		t.Fatal(err)
	}
	if d.SS != nil || d.Shards() != 1 || d.ShardClamp == "" {
		t.Fatalf("DSM cluster: SS=%v shards=%d clamp=%q, want single kernel with a recorded reason",
			d.SS != nil, d.Shards(), d.ShardClamp)
	}
}

// TestShardWorkloadParity runs the RPC serving workload — the cluster
// path with live cross-shard request/response traffic, admission
// control and exact latency samples — sharded and unsharded, and
// requires identical results down to the percentile samples.
func TestShardWorkloadParity(t *testing.T) {
	spec := workload.Spec{
		Servers: 1, Clients: 4, Seed: 7,
		Open: true, Poisson: true, Rate: 10000, Requests: 120,
		ReqBytes: 128, RespBytes: 1024, Service: 1000,
		WorkQueue: 64, FreeBufs: 64,
	}
	run := func(shards int) (uint64, float64, [3]int64) {
		cfg := config.ForNIC(config.NICCNI)
		cfg.SimShards = shards
		rep := workload.Run(&cfg, spec)
		return rep.Stats.Completed, rep.Sustained,
			[3]int64{int64(rep.P50), int64(rep.P99), int64(rep.Res.Time)}
	}
	wc, ws, wp := run(0)
	for _, shards := range []int{1, 2, 5} {
		gc, gs, gp := run(shards)
		if gc != wc || gs != ws || gp != wp {
			t.Fatalf("shards=%d: completed=%d sustained=%g p50/p99/time=%v, want %d %g %v",
				shards, gc, gs, gp, wc, ws, wp)
		}
	}
}

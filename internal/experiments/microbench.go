package experiments

import (
	"fmt"

	"cni/internal/config"
	"cni/internal/memsys"
	"cni/internal/nic"
	"cni/internal/sim"
)

// This file reproduces Figure 14: best-possible node-to-node latency
// of the CNI (100% network cache hit ratio) versus the standard
// interface, as a function of message size. The measurement is
// application to application: from the moment the sending program
// decides to transmit to the moment the receiving program holds the
// data.

const microOp = 0x4242

// latencyCfg builds the fully-mutated Config of one latency point; it
// doubles as the point's memoization identity.
func latencyCfg(kind config.NICKind, mutate func(*config.Config)) config.Config {
	cfg := config.ForNIC(kind)
	// The paper's best-case measurement has the receiving application
	// in its poll loop; widen the hybrid's poll window so the warmed
	// rounds stay in polling mode while the fabric drains between
	// rounds. (The standard interface always interrupts regardless.)
	cfg.PollSwitchRate = 1200
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

// MeasureLatency returns the warmed node-to-node latency in
// nanoseconds for one message of the given size. The buffer is sent
// several times first so the CNI's Message Cache is bound (the
// "assuming a 100% network cache hit ratio" condition of Section 3.3)
// and the arrivals are frequent enough that the hybrid receive path is
// in polling mode.
func MeasureLatency(kind config.NICKind, size int, mutate func(*config.Config)) int64 {
	cfg := latencyCfg(kind, mutate)
	return measureLatencyCfg(cfg, size)
}

// latencyPoint submits one latency measurement as a harness point.
func (o Options) latencyPoint(kind config.NICKind, size int, mutate func(*config.Config)) Future[int64] {
	cfg := latencyCfg(kind, mutate)
	key := pointKey{cfg: cfg, n: 2, what: fmt.Sprintf("latency/%d", size)}
	return submitPoint(o, key, func() int64 { return measureLatencyCfg(cfg, size) })
}

// measureLatencyCfg is the measurement proper: one two-node fabric,
// warmed rounds, last round timed.
func measureLatencyCfg(cfg config.Config, size int) int64 {
	k := sim.NewKernel()
	net := mustNet(k, &cfg, 2)
	memA := memsys.New(&cfg)
	memB := memsys.New(&cfg)
	src := nic.NewBoard(k, &cfg, 0, net, memA)
	dst := nic.NewBoard(k, &cfg, 1, net, memB)
	src.MapPages(0x10000, 1<<16)
	dst.MapPages(0x40000, 1<<16)

	var sent []sim.Time
	var got []sim.Time
	// The receiving application pays its receive-queue pop (zero on a
	// kernel-mediated board, where the kernel hands the data over).
	recvCost := dst.RecvDequeueCost()
	dst.Register(microOp, false, func(at sim.Time, m *nic.Message) {
		got = append(got, at+recvCost)
	})

	const rounds = 5
	// Rounds are spaced far enough apart that links, ports and DMA
	// engines are idle again; the measured round sees no queueing.
	gap := cfg.NSToCycles(500_000)
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < rounds; i++ {
			p.Sync()
			sent = append(sent, p.Local())
			m := &nic.Message{
				From: 0, To: 1, Op: microOp,
				Size:    nic.HeaderBytes + size,
				VAddr:   0x10000,
				CacheTx: true,
			}
			if size > 0 {
				m.DeliverVAddr = 0x40000
				m.DeliverBytes = size
			}
			src.Send(p, m)
			p.Advance(gap)
		}
	})
	k.Run()
	if len(got) != rounds {
		panic(fmt.Sprintf("experiments: %d of %d pings arrived", len(got), rounds))
	}
	// The last round is fully warmed.
	return cfg.CyclesToNS(got[rounds-1] - sent[rounds-1])
}

// FigureLatency reproduces Figure 14, extended with the OSIRIS-class
// baseline as the paper's natural third point of comparison.
func FigureLatency(o Options) Figure {
	f := Figure{ID: "F14", Title: "Node-to-node latency for the CNI, OSIRIS and standard network interface",
		XLabel: "Message (bytes)", YLabel: "Latency (us)"}
	step := 256
	if o.Quick {
		step = 1024
	}
	var sizes []int
	for size := 0; size <= 4096; size += step {
		sizes = append(sizes, size)
	}
	futs := make([][]Future[int64], len(sweepKinds))
	for i, kind := range sweepKinds {
		futs[i] = make([]Future[int64], len(sizes))
		for j, size := range sizes {
			futs[i][j] = o.latencyPoint(kind, size, nil)
		}
	}
	for i, kind := range sweepKinds {
		s := Series{Label: kind.Display()}
		for j, size := range sizes {
			s.X = append(s.X, float64(size))
			s.Y = append(s.Y, float64(futs[i][j].Wait())/1000)
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// LatencyReduction reports the CNI's percentage latency reduction over
// the standard interface at the given message size (the paper's
// headline is ~33% at a 4 KB page).
func LatencyReduction(size int) float64 {
	c := MeasureLatency(config.NICCNI, size, nil)
	s := MeasureLatency(config.NICStandard, size, nil)
	return 100 * float64(s-c) / float64(s)
}

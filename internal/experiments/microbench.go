package experiments

import (
	"fmt"

	"cni/internal/atm"
	"cni/internal/config"
	"cni/internal/memsys"
	"cni/internal/nic"
	"cni/internal/sim"
)

// This file reproduces Figure 14: best-possible node-to-node latency
// of the CNI (100% network cache hit ratio) versus the standard
// interface, as a function of message size. The measurement is
// application to application: from the moment the sending program
// decides to transmit to the moment the receiving program holds the
// data.

const microOp = 0x4242

// latencyCfg builds the fully-mutated Config of one latency point; it
// doubles as the point's memoization identity.
func latencyCfg(kind config.NICKind, mutate func(*config.Config)) config.Config {
	cfg := config.ForNIC(kind)
	// The paper's best-case measurement has the receiving application
	// in its poll loop; widen the hybrid's poll window so the warmed
	// rounds stay in polling mode while the fabric drains between
	// rounds. (The standard interface always interrupts regardless.)
	cfg.PollSwitchRate = 1200
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

// MeasureLatency returns the warmed node-to-node latency in
// nanoseconds for one message of the given size. The buffer is sent
// several times first so the CNI's Message Cache is bound (the
// "assuming a 100% network cache hit ratio" condition of Section 3.3)
// and the arrivals are frequent enough that the hybrid receive path is
// in polling mode.
func MeasureLatency(kind config.NICKind, size int, mutate func(*config.Config)) int64 {
	cfg := latencyCfg(kind, mutate)
	return measureLatencyCfg(cfg, size)
}

// latencyPoint submits one latency measurement as a harness point.
func (o Options) latencyPoint(kind config.NICKind, size int, mutate func(*config.Config)) Future[int64] {
	cfg := latencyCfg(kind, mutate)
	key := pointKey{cfg: cfg, n: 2, what: fmt.Sprintf("latency/%d", size)}
	return submitPoint(o, key, func() int64 { return measureLatencyCfg(cfg, size) })
}

// measureLatencyCfg is the measurement proper: one two-node fabric,
// warmed rounds, last round timed.
func measureLatencyCfg(cfg config.Config, size int) int64 {
	k := sim.NewKernel()
	net := atm.New(k, &cfg, 2)
	memA := memsys.New(&cfg)
	memB := memsys.New(&cfg)
	src := nic.NewBoard(k, &cfg, 0, net, memA)
	dst := nic.NewBoard(k, &cfg, 1, net, memB)
	src.MapPages(0x10000, 1<<16)
	dst.MapPages(0x40000, 1<<16)

	var sent []sim.Time
	var got []sim.Time
	recvCost := sim.Time(0)
	if cfg.NIC == config.NICCNI {
		recvCost = cfg.NSToCycles(cfg.ADCRecvNS)
	}
	dst.Register(microOp, false, func(at sim.Time, m *nic.Message) {
		got = append(got, at+recvCost)
	})

	const rounds = 5
	// Rounds are spaced far enough apart that links, ports and DMA
	// engines are idle again; the measured round sees no queueing.
	gap := cfg.NSToCycles(500_000)
	k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < rounds; i++ {
			p.Sync()
			sent = append(sent, p.Local())
			m := &nic.Message{
				From: 0, To: 1, Op: microOp,
				Size:    nic.HeaderBytes + size,
				VAddr:   0x10000,
				CacheTx: true,
			}
			if size > 0 {
				m.DeliverVAddr = 0x40000
				m.DeliverBytes = size
			}
			src.Send(p, m)
			p.Advance(gap)
		}
	})
	k.Run()
	if len(got) != rounds {
		panic(fmt.Sprintf("experiments: %d of %d pings arrived", len(got), rounds))
	}
	// The last round is fully warmed.
	return cfg.CyclesToNS(got[rounds-1] - sent[rounds-1])
}

// FigureLatency reproduces Figure 14.
func FigureLatency(o Options) Figure {
	f := Figure{ID: "F14", Title: "Node-to-node latency for the CNI and standard network interface",
		XLabel: "Message (bytes)", YLabel: "Latency (us)"}
	step := 256
	if o.Quick {
		step = 1024
	}
	var sizes []int
	for size := 0; size <= 4096; size += step {
		sizes = append(sizes, size)
	}
	cniF := make([]Future[int64], len(sizes))
	stdF := make([]Future[int64], len(sizes))
	for i, size := range sizes {
		cniF[i] = o.latencyPoint(config.NICCNI, size, nil)
		stdF[i] = o.latencyPoint(config.NICStandard, size, nil)
	}
	var cni, std Series
	cni.Label, std.Label = "CNI", "Standard"
	for i, size := range sizes {
		cni.X = append(cni.X, float64(size))
		cni.Y = append(cni.Y, float64(cniF[i].Wait())/1000)
		std.X = append(std.X, float64(size))
		std.Y = append(std.Y, float64(stdF[i].Wait())/1000)
	}
	f.Series = []Series{cni, std}
	return f
}

// LatencyReduction reports the CNI's percentage latency reduction over
// the standard interface at the given message size (the paper's
// headline is ~33% at a 4 KB page).
func LatencyReduction(size int) float64 {
	c := MeasureLatency(config.NICCNI, size, nil)
	s := MeasureLatency(config.NICStandard, size, nil)
	return 100 * float64(s-c) / float64(s)
}

package experiments

// FD1: centralized versus distributed DSM ownership at scale. The
// paper's DSM (like the home-based LRC codes it descends from) pins
// every page's manager at a static home and all synchronization
// metadata at node 0; past a few dozen nodes those fixed managers
// become the hotspot. The distributed organization
// (Config.DSMOwnership = "distributed") migrates page ownership to
// writers along probable-owner chains and rotates the barrier
// manager, spreading the manager-role load.
//
// The artifact sweeps the three applications over 64-256 nodes (8-16
// quick) on a Clos fabric — the single banyan cannot address these
// counts — under every interface x ownership combination and reports
// two series per cell:
//
//   - speedup: wall time relative to the same configuration's run at
//     the smallest node count (self-relative scaling, the shape that
//     shows where the manager serializes);
//   - mgrmax: the hottest node's manager-role message count
//     (Result.DSM.MaxManagerMsgs) — page requests and diffs served in
//     an owner role plus lock/barrier/task traffic served in a manager
//     role. This is the load the distributed organization exists to
//     spread.
//
// NICCollectives is disabled in these configs so the CNI pays the same
// manager-path barriers as the other interfaces: the board's combining
// engine would hide exactly the hotspot this artifact measures.
// Points run on the parallel harness and render bit-identically at
// any -j.

import (
	"fmt"

	"cni/internal/apps"
	"cni/internal/apps/spmat"
	"cni/internal/cluster"
	"cni/internal/config"
)

// fd1Sizes is the node-count sweep.
func fd1Sizes(quick bool) []int {
	if quick {
		return []int{8, 16}
	}
	return []int{64, 128, 256}
}

// fd1Ownerships is the comparison axis.
var fd1Ownerships = []string{config.DSMCentral, config.DSMDistributed}

// fd1Workloads sizes the three applications for the node counts of the
// sweep: Jacobi's interior rows and Water's molecule count must reach
// the top node count or trailing nodes idle.
func fd1Workloads(quick bool) []struct {
	label string
	make  AppMaker
} {
	if quick {
		return []struct {
			label string
			make  AppMaker
		}{
			{"jacobi", AppMaker{Sig: "jacobi/64x4", New: func() apps.App { return apps.NewJacobi(64, 4) }}},
			{"water", AppMaker{Sig: "water/32x1", New: func() apps.App { return apps.NewWater(32, 1) }}},
			{"cholesky", AppMaker{Sig: "cholesky/small-128", New: func() apps.App { return apps.NewCholesky(spmat.Small(128)) }}},
		}
	}
	gen := spmat.BCSSTK14()
	return []struct {
		label string
		make  AppMaker
	}{
		{"jacobi", AppMaker{Sig: "jacobi/512x4", New: func() apps.App { return apps.NewJacobi(512, 4) }}},
		{"water", AppMaker{Sig: "water/256x1", New: func() apps.App { return apps.NewWater(256, 1) }}},
		{"cholesky", AppMaker{Sig: fmt.Sprintf("cholesky/%s-%d-%d", gen.Name, gen.N, gen.Seed),
			New: func() apps.App { return apps.NewCholesky(gen) }}},
	}
}

// fd1Mutate pins one sweep cell's config: Clos fabric for the node
// counts, host-path barriers (see the package comment), and the
// ownership organization under test.
func fd1Mutate(ownership string) func(*config.Config) {
	return func(c *config.Config) {
		c.Topology = config.TopoClos
		c.NICCollectives = false
		c.DSMOwnership = ownership
	}
}

// FigureDSMOwnership reproduces FD1: 2 series (speedup, hottest-node
// manager load) per app x interface x ownership cell over the
// node-count sweep.
func FigureDSMOwnership(o Options) Figure {
	f := Figure{ID: "FD1",
		Title:  "DSM ownership organization: scaling and manager hotspot, centralized vs distributed",
		XLabel: "Nodes", YLabel: "Speedup vs smallest size / hottest-node manager msgs"}
	sizes := fd1Sizes(o.Quick)
	workloads := fd1Workloads(o.Quick)
	futs := map[string]Future[*cluster.Result]{}
	cell := func(app string, kind config.NICKind, ownership string, n int) string {
		return fmt.Sprintf("%s/%s/%s/%d", app, kind, ownership, n)
	}
	for _, wl := range workloads {
		for _, kind := range sweepKinds {
			for _, ownership := range fd1Ownerships {
				for _, n := range sizes {
					futs[cell(wl.label, kind, ownership, n)] =
						o.appPoint(wl.make, kind, n, fd1Mutate(ownership))
				}
			}
		}
	}
	top := sizes[len(sizes)-1]
	for _, wl := range workloads {
		for _, kind := range sweepKinds {
			for _, ownership := range fd1Ownerships {
				base := futs[cell(wl.label, kind, ownership, sizes[0])].Wait()
				sp := Series{Label: fmt.Sprintf("%s-%s-%s-speedup", wl.label, kind.Display(), ownership)}
				mg := Series{Label: fmt.Sprintf("%s-%s-%s-mgrmax", wl.label, kind.Display(), ownership)}
				for _, n := range sizes {
					res := futs[cell(wl.label, kind, ownership, n)].Wait()
					sp.X = append(sp.X, float64(n))
					sp.Y = append(sp.Y, float64(base.Time)/float64(res.Time))
					mg.X = append(mg.X, float64(n))
					mg.Y = append(mg.Y, float64(res.DSM.MaxManagerMsgs))
				}
				f.Series = append(f.Series, sp, mg)
			}
			// Sanity at the top size. The centralized organization never
			// forwards or migrates. The apps then split by access
			// pattern, and the assertions follow it: Jacobi is
			// barrier-bound (remote accesses are boundary *reads*, so no
			// write fault ever migrates a page) and rotating the barrier
			// manager must cut the hottest node's load; Cholesky's bag of
			// tasks writes columns wherever they land, so its distributed
			// run must actually migrate ownership and chase chains; Water
			// hashes its per-molecule locks over all nodes in both modes,
			// so no inequality is asserted for it.
			cen := futs[cell(wl.label, kind, config.DSMCentral, top)].Wait()
			dis := futs[cell(wl.label, kind, config.DSMDistributed, top)].Wait()
			if cen.DSM.Forwards != 0 || cen.DSM.Migrations != 0 {
				panic(fmt.Sprintf("experiments: fd1 %s/%s central run forwarded %d / migrated %d",
					wl.label, kind, cen.DSM.Forwards, cen.DSM.Migrations))
			}
			switch wl.label {
			case "jacobi":
				if dis.DSM.MaxManagerMsgs >= cen.DSM.MaxManagerMsgs {
					panic(fmt.Sprintf("experiments: fd1 %s/%s/%d distributed hottest node %d msgs (node %d) did not beat central %d msgs (node %d)",
						wl.label, kind, top,
						dis.DSM.MaxManagerMsgs, dis.DSM.MaxManagerNode,
						cen.DSM.MaxManagerMsgs, cen.DSM.MaxManagerNode))
				}
			case "cholesky":
				if dis.DSM.Migrations == 0 || dis.DSM.Forwards == 0 {
					panic(fmt.Sprintf("experiments: fd1 %s/%s/%d distributed run migrated %d / forwarded %d, want both > 0",
						wl.label, kind, top, dis.DSM.Migrations, dis.DSM.Forwards))
				}
			}
		}
	}
	return f
}

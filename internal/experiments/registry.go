package experiments

import "cni/internal/apps/spmat"

// Spec names one reproducible artifact of the paper. Exactly one of
// Figure/Table is set.
type Spec struct {
	ID     string
	Title  string
	Figure func(Options) Figure
	Table  func(Options) Table
}

// All returns every table and figure of the evaluation, in paper
// order.
func All() []Spec {
	return []Spec{
		{ID: "T1", Title: "Simulation parameters",
			Table: func(Options) Table { return TableT1() }},
		{ID: "F2", Title: "Jacobi 128x128 scaling",
			Figure: func(o Options) Figure {
				return FigureScaling("F2", "Performance Results for Jacobi with 128x128 matrix", JacobiMaker(128, o), o)
			}},
		{ID: "F3", Title: "Jacobi 256x256 scaling",
			Figure: func(o Options) Figure {
				return FigureScaling("F3", "Performance Results for Jacobi with 256x256 matrix", JacobiMaker(256, o), o)
			}},
		{ID: "F4", Title: "Jacobi 1024x1024 scaling",
			Figure: func(o Options) Figure {
				return FigureScaling("F4", "Performance Results for Jacobi with 1024x1024 matrix", JacobiMaker(1024, o), o)
			}},
		{ID: "F5", Title: "Jacobi page-size sensitivity",
			Figure: func(o Options) Figure {
				return FigurePageSize("F5", "Page Size Sensitivity for 8-processor Jacobi with 1024x1024 matrix", JacobiMaker(1024, o), o)
			}},
		{ID: "T2", Title: "Jacobi overhead breakdown",
			Table: func(o Options) Table {
				return TableOverhead("T2", "Overhead for 8-processor Jacobi with 1024x1024 matrix", JacobiMaker(1024, o), o)
			}},
		{ID: "F6", Title: "Water 64 molecules scaling",
			Figure: func(o Options) Figure {
				return FigureScaling("F6", "Performance Results for Water with 64 molecules", WaterMaker(64, o), o)
			}},
		{ID: "F7", Title: "Water 216 molecules scaling",
			Figure: func(o Options) Figure {
				return FigureScaling("F7", "Performance Results for Water with 216 molecules", WaterMaker(216, o), o)
			}},
		{ID: "F8", Title: "Water 343 molecules scaling",
			Figure: func(o Options) Figure {
				return FigureScaling("F8", "Performance Results for Water with 343 molecules", WaterMaker(343, o), o)
			}},
		{ID: "F9", Title: "Water page-size sensitivity",
			Figure: func(o Options) Figure {
				return FigurePageSize("F9", "Page Size Sensitivity for 8-processor Water with 216 molecules", WaterMaker(216, o), o)
			}},
		{ID: "T3", Title: "Water overhead breakdown",
			Table: func(o Options) Table {
				return TableOverhead("T3", "Overhead for 8-processor Water with 216 molecules", WaterMaker(216, o), o)
			}},
		{ID: "F10", Title: "Cholesky bcsstk14 scaling",
			Figure: func(o Options) Figure {
				return FigureScaling("F10", "Performance Results for Cholesky with matrix bcsstk14", CholeskyMaker(spmat.BCSSTK14(), o), o)
			}},
		{ID: "F11", Title: "Cholesky bcsstk15 scaling",
			Figure: func(o Options) Figure {
				return FigureScaling("F11", "Performance Results for Cholesky with matrix bcsstk15", CholeskyMaker(spmat.BCSSTK15(), o), o)
			}},
		{ID: "F12", Title: "Cholesky page-size sensitivity",
			Figure: func(o Options) Figure {
				return FigurePageSize("F12", "Page Size Sensitivity for 8-processor Cholesky with matrix bcsstk14", CholeskyMaker(spmat.BCSSTK14(), o), o)
			}},
		{ID: "T4", Title: "Cholesky overhead breakdown",
			Table: func(o Options) Table {
				return TableOverhead("T4", "Overhead for 8-processor Cholesky with matrix bcsstk14", CholeskyMaker(spmat.BCSSTK14(), o), o)
			}},
		{ID: "F13", Title: "Hit ratio vs Message Cache size",
			Figure: func(o Options) Figure { return FigureCacheSize(o) }},
		{ID: "F14", Title: "Node-to-node latency microbenchmark",
			Figure: func(o Options) Figure { return FigureLatency(o) }},
		{ID: "T5", Title: "Unrestricted ATM cell size",
			Table: func(o Options) Table { return TableUnrestrictedCell(o) }},
		{ID: "FB1", Title: "Streaming bandwidth microbenchmark",
			Figure: func(o Options) Figure { return FigureBandwidth(o) }},
		{ID: "FC1", Title: "Collective latency vs node count",
			Figure: func(o Options) Figure { return FigureCollective(o) }},
		{ID: "FR1", Title: "Resilience under cell loss",
			Figure: func(o Options) Figure { return FigureFaults(o) }},
		{ID: "FS1", Title: "Request serving throughput-latency",
			Figure: func(o Options) Figure { return FigureRPC(o) }},
		{ID: "FT1", Title: "Multi-switch fabric topology sweep",
			Figure: func(o Options) Figure { return FigureTopology(o) }},
		{ID: "FD1", Title: "DSM ownership: centralized vs distributed manager",
			Figure: func(o Options) Figure { return FigureDSMOwnership(o) }},
		{ID: "FS2", Title: "Multi-tenant KV serving: NIC response cache and isolation",
			Figure: func(o Options) Figure { return FigureKV(o) }},
	}
}

// Find returns the spec with the given ID.
func Find(id string) (Spec, bool) {
	for _, s := range All() {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

package experiments

import (
	"fmt"

	"cni/internal/config"
	"cni/internal/msgpass"
	"cni/internal/sim"
)

// bandwidthCfg builds the fully-mutated Config of one bandwidth point.
func bandwidthCfg(kind config.NICKind, mutate func(*config.Config)) config.Config {
	cfg := config.ForNIC(kind)
	cfg.PollSwitchRate = 1200 // streaming receiver sits in its poll loop
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

// MeasureBandwidth streams messages of the given size from node 0 to
// node 1 (same buffer every time, so the CNI's Message Cache is hot)
// and returns the achieved application-to-application bandwidth in
// megabytes per second of simulated time.
//
// The paper's premise (Section 1) is that contemporary interfaces
// already delivered high bandwidth and latency was the open problem:
// at page-sized messages both interfaces approach the 622 Mb/s link
// rate, while at small messages the standard interface's per-message
// kernel and interrupt costs cap its throughput well below the CNI's.
func MeasureBandwidth(kind config.NICKind, size int, mutate func(*config.Config)) float64 {
	return measureBandwidthCfg(bandwidthCfg(kind, mutate), size)
}

// bandwidthPoint submits one bandwidth measurement as a harness point.
func (o Options) bandwidthPoint(kind config.NICKind, size int, mutate func(*config.Config)) Future[float64] {
	cfg := bandwidthCfg(kind, mutate)
	key := pointKey{cfg: cfg, n: 2, what: fmt.Sprintf("bandwidth/%d", size)}
	return submitPoint(o, key, func() float64 { return measureBandwidthCfg(cfg, size) })
}

// FigureBandwidth produces FB1, an artifact beyond the paper's
// figures: achieved application-to-application bandwidth versus
// message size for all three interfaces. At page-sized messages every
// interface approaches the 622 Mb/s link rate; at small messages the
// per-message host costs separate them — the kernel send/receive paths
// and interrupts cap the standard interface, the OSIRIS baseline's
// interrupts cap it below the CNI, and the CNI's ADC enqueue/dequeue
// plus polling keep its curve highest.
func FigureBandwidth(o Options) Figure {
	f := Figure{ID: "FB1",
		Title:  "Streaming bandwidth for the CNI, OSIRIS and standard network interface",
		XLabel: "Message (bytes)", YLabel: "Bandwidth (MB/s)"}
	sizes := []int{64, 128, 256, 512, 1024, 2048, 4096}
	if o.Quick {
		sizes = []int{64, 256, 1024, 4096}
	}
	futs := make([][]Future[float64], len(sweepKinds))
	for i, kind := range sweepKinds {
		futs[i] = make([]Future[float64], len(sizes))
		for j, size := range sizes {
			futs[i][j] = o.bandwidthPoint(kind, size, nil)
		}
	}
	for i, kind := range sweepKinds {
		s := Series{Label: kind.Display()}
		for j, size := range sizes {
			s.X = append(s.X, float64(size))
			s.Y = append(s.Y, futs[i][j].Wait())
		}
		f.Series = append(f.Series, s)
	}
	return f
}

func measureBandwidthCfg(cfg config.Config, size int) float64 {
	const messages = 64
	f := mustFabric(&cfg, 2)
	var start, end sim.Time
	f.Run(func(ep *msgpass.Endpoint) {
		if ep.Node() == 0 {
			// Warm the transmit path, then stream.
			ep.Send(1, 1, size)
			ep.Recv(3)
			ep.Proc().Sync()
			start = ep.Proc().Local()
			for i := 0; i < messages; i++ {
				ep.Send(1, 2, size)
			}
			ep.Recv(4) // receiver's completion signal
		} else {
			ep.Recv(1)
			ep.Send(0, 3, 0)
			for i := 0; i < messages; i++ {
				ep.Recv(2)
			}
			ep.Proc().Sync()
			end = ep.Proc().Local()
			ep.Send(0, 4, 0)
		}
	})
	bytes := float64(messages * size)
	seconds := float64(cfg.CyclesToNS(end-start)) / 1e9
	return bytes / seconds / 1e6
}

package experiments

// The parallel experiment harness. Every artifact of the evaluation is
// assembled from *points*: fully independent cluster simulations (one
// (Config, n, workload) run each), each owning its seeded RNG and
// simulator state. The generators in this package submit their points
// to a Runner and join the resulting futures in point order, so the
// rendered output is bit-identical whether the points execute on one
// worker or on GOMAXPROCS workers in any interleaving.
//
// The Runner also memoizes: identical points shared between artifacts
// (the lossless baselines FR1 re-verifies, the default-cache F13 point
// that equals F2's, ...) execute once and every consumer joins the
// same future. Config contains only comparable fields, so a point is
// keyed directly by its fully-mutated Config plus the node count and a
// point-kind tag — no fingerprinting or serialization involved.

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"cni/internal/config"
)

// Progress is one progress event of a Runner: how many points have
// completed out of those planned so far, and which artifact the event
// belongs to. Total grows as generators plan work, so Done/Total is a
// live fraction, not a fixed denominator. The callback receiving these
// events is invoked from worker goroutines and must be safe for
// concurrent use.
type Progress struct {
	Spec  string // artifact being generated ("F2"); "" for direct calls
	Done  int    // points completed so far
	Total int    // points submitted so far (deduplicated)
}

// pointKey names one independent simulation point. Config has only
// comparable fields, so the struct is usable as a map key as-is; two
// points with equal keys are the same deterministic computation.
type pointKey struct {
	cfg  config.Config
	n    int    // cluster/fabric node count
	what string // point kind + workload identity, e.g. "app/jacobi/128x6"
}

// canceled wraps a context error for transport through panic/recover
// from a generator goroutine back to RunSpec.
type canceled struct{ err error }

// future is the pending result of one point. Exactly one of val /
// panicval is meaningful once done is closed.
type future struct {
	done     chan struct{}
	val      any
	panicval any // non-nil: the point panicked (or was canceled); rethrown by wait
}

func (f *future) resolve(v any) {
	f.val = v
	close(f.done)
}

func (f *future) resolvePanic(p any) {
	f.panicval = p
	close(f.done)
}

// wait blocks until the point has run and returns its value,
// re-panicking if the point itself panicked or the run was canceled.
func (f *future) wait() any {
	<-f.done
	if f.panicval != nil {
		panic(f.panicval)
	}
	return f.val
}

// Future is the typed pending result of one submitted point.
type Future[T any] struct{ f *future }

// Wait blocks until the point has executed and returns its result.
func (x Future[T]) Wait() T { return x.f.wait().(T) }

// task is one queued point execution.
type task struct {
	spec string
	f    *future
	run  func() any
}

// Runner executes simulation points on a pool of workers with
// memoization. A single Runner may be shared across many artifacts
// (RunSuite does) so that points common to several figures run once.
// All methods are safe for concurrent use.
type Runner struct {
	ctx      context.Context
	jobs     int
	progress func(Progress)

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*task
	memo   map[pointKey]*future
	closed bool
	done   int
	total  int
	hits   int // memo hits: points some artifact asked for that were already planned

	wg sync.WaitGroup
}

// NewRunner starts a Runner with o.Jobs workers (GOMAXPROCS when
// o.Jobs <= 0) that reports to o.Progress and aborts outstanding
// points when ctx is canceled. Call Close when done with it.
func NewRunner(ctx context.Context, o Options) *Runner {
	if ctx == nil {
		ctx = context.Background()
	}
	jobs := o.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	r := &Runner{
		ctx:      ctx,
		jobs:     jobs,
		progress: o.Progress,
		memo:     map[pointKey]*future{},
	}
	r.cond = sync.NewCond(&r.mu)
	r.wg.Add(jobs)
	for i := 0; i < jobs; i++ {
		go r.worker()
	}
	// Wake the workers when the context dies so queued points resolve
	// promptly instead of waiting for a submission.
	if ctx.Done() != nil {
		context.AfterFunc(ctx, func() {
			r.mu.Lock()
			r.cond.Broadcast()
			r.mu.Unlock()
		})
	}
	return r
}

// Jobs reports the worker count.
func (r *Runner) Jobs() int { return r.jobs }

// Counts reports how many points have completed and how many distinct
// points have been submitted so far.
func (r *Runner) Counts() (done, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done, r.total
}

// MemoHits reports how many point requests were served from the memo
// table instead of executing again (identical points shared between
// artifacts, or re-requested within one).
func (r *Runner) MemoHits() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.hits
}

// Close stops the workers after the queue drains (or immediately once
// the context is canceled) and waits for them to exit. Futures still
// queued resolve as canceled.
func (r *Runner) Close() {
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	r.wg.Wait()
}

// submit enqueues one point, deduplicating against the memo table.
func (r *Runner) submit(spec string, key pointKey, run func() any) *future {
	r.mu.Lock()
	if f, ok := r.memo[key]; ok {
		r.hits++
		r.mu.Unlock()
		return f
	}
	f := &future{done: make(chan struct{})}
	r.memo[key] = f
	r.total++
	ev := Progress{Spec: spec, Done: r.done, Total: r.total}
	if r.closed || r.ctx.Err() != nil {
		// Submission after Close or cancellation: the workers may
		// already have drained and exited, so resolve as canceled here
		// rather than leave a future no one will ever run.
		err := r.ctx.Err()
		if err == nil {
			err = context.Canceled
		}
		r.mu.Unlock()
		f.resolvePanic(canceled{err})
		return f
	}
	r.queue = append(r.queue, &task{spec: spec, f: f, run: run})
	r.cond.Signal()
	r.mu.Unlock()
	if r.progress != nil {
		r.progress(ev)
	}
	return f
}

// worker is one pool goroutine: pop, execute (capturing panics into
// the future), count, repeat.
func (r *Runner) worker() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.closed && r.ctx.Err() == nil {
			r.cond.Wait()
		}
		if len(r.queue) == 0 && (r.closed || r.ctx.Err() != nil) {
			r.mu.Unlock()
			return
		}
		if len(r.queue) == 0 {
			r.mu.Unlock()
			continue
		}
		t := r.queue[0]
		r.queue = r.queue[1:]
		r.mu.Unlock()

		if err := r.ctx.Err(); err != nil {
			t.f.resolvePanic(canceled{err})
			r.countDone(t.spec)
			continue
		}
		r.execute(t)
		r.countDone(t.spec)
	}
}

// execute runs one point, converting a panic inside the model into a
// resolved-with-panic future so a worker never crashes the process.
func (r *Runner) execute(t *task) {
	defer func() {
		if p := recover(); p != nil {
			t.f.resolvePanic(p)
		}
	}()
	t.f.resolve(t.run())
}

func (r *Runner) countDone(spec string) {
	r.mu.Lock()
	r.done++
	ev := Progress{Spec: spec, Done: r.done, Total: r.total}
	r.mu.Unlock()
	if r.progress != nil {
		r.progress(ev)
	}
}

// submitPoint routes a point either to o's Runner or — when the
// generator was called directly without one (the legacy sequential
// path) — runs it inline, preserving the seed's synchronous semantics
// including undisturbed panic propagation.
func submitPoint[T any](o Options, key pointKey, run func() T) Future[T] {
	if o.runner == nil {
		f := &future{done: make(chan struct{})}
		f.resolve(run())
		return Future[T]{f}
	}
	return Future[T]{o.runner.submit(o.spec, key, func() any { return run() })}
}

// RunSpec executes one artifact on a fresh Runner with o.Jobs workers,
// honoring ctx. The rendered text is bit-identical to the sequential
// path; a panic anywhere in the model surfaces as an error rather
// than crashing, and cancellation returns ctx's error promptly.
func RunSpec(ctx context.Context, s Spec, o Options) (string, error) {
	r := NewRunner(ctx, o)
	defer r.Close()
	return r.RunSpec(s, o)
}

// RunSpec executes one artifact against this runner (sharing its
// workers and memo table with any other artifacts run on it).
func (r *Runner) RunSpec(s Spec, o Options) (out string, err error) {
	o.runner = r
	o.spec = s.ID
	defer func() {
		p := recover()
		switch p := p.(type) {
		case nil:
		case canceled:
			err = p.err
		default:
			err = fmt.Errorf("experiments: %s failed: %v", s.ID, p)
		}
	}()
	if s.Figure != nil {
		return RenderFigure(s.Figure(o)), nil
	}
	if s.Table != nil {
		return RenderTable(s.Table(o)), nil
	}
	return "", fmt.Errorf("experiments: spec %s has no generator", s.ID)
}

// RunSuite executes every spec on one shared Runner: each artifact's
// generator runs concurrently, feeding the worker pool, and points
// shared between artifacts are computed once. Outputs come back in
// spec order and are bit-identical to running each spec sequentially.
// The first error (cancellation included) is returned alongside
// whatever outputs completed.
func RunSuite(ctx context.Context, specs []Spec, o Options) ([]string, error) {
	r := NewRunner(ctx, o)
	defer r.Close()
	outs := make([]string, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, s := range specs {
		wg.Add(1)
		go func(i int, s Spec) {
			defer wg.Done()
			outs[i], errs[i] = r.RunSpec(s, o)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return outs, err
		}
	}
	return outs, nil
}

package experiments

import (
	"testing"

	"cni/internal/config"
	"cni/internal/sim"
)

// TestBenchSimLegs regenerates every BENCH_sim.json leg and checks the
// invariants the trajectory file relies on: fixed leg set and order,
// non-trivial deterministic event counts, throughput recorded, and the
// two engines executing the speedup-gate leg with the identical event
// count (same simulation, different scheduler).
func TestBenchSimLegs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the 1024-node leg twice")
	}
	points := BenchSim(Options{Quick: true})
	want := []string{
		"jacobi-8node-cni",
		"ft1-clos-permutation-64",
		"ft1-torus-alltoall-64",
		BenchLeg1024,
		BenchLeg1024 + "-refheap",
		BenchLeg1024 + "-shards1",
		BenchLeg1024 + "-shards2",
		BenchLeg1024 + "-shards4",
		BenchLeg1024 + "-shards8",
	}
	if len(points) != len(want) {
		t.Fatalf("BenchSim returned %d legs, want %d", len(points), len(want))
	}
	byLeg := map[string]SimBenchPoint{}
	for i, p := range points {
		if p.Leg != want[i] {
			t.Errorf("leg %d is %q, want %q", i, p.Leg, want[i])
		}
		if p.Events == 0 {
			t.Errorf("leg %q executed no events", p.Leg)
		}
		if p.EventsPerS <= 0 {
			t.Errorf("leg %q has no throughput (%.0f)", p.Leg, p.EventsPerS)
		}
		byLeg[p.Leg] = p
	}
	cal, ref := byLeg[BenchLeg1024], byLeg[BenchLeg1024+"-refheap"]
	if cal.Engine != string(sim.EngineCalendar) || ref.Engine != string(sim.EngineHeap) {
		t.Fatalf("engine tags: calendar leg %q, refheap leg %q", cal.Engine, ref.Engine)
	}
	if cal.Events != ref.Events {
		t.Fatalf("engines disagree on the 1024-node leg: calendar executed %d events, heap %d",
			cal.Events, ref.Events)
	}
	for _, s := range []string{"-shards1", "-shards2", "-shards4", "-shards8"} {
		if p := byLeg[BenchLeg1024+s]; p.Events != cal.Events {
			t.Fatalf("sharded leg %q executed %d events, unsharded leg %d: the shard count leaked into the simulation",
				p.Leg, p.Events, cal.Events)
		}
	}
}

// TestFT1EngineEquivalence re-checks, at experiment level, that the
// simulated result of an FT1 leg is independent of the kernel engine:
// identical mean latency and identical event count.
func TestFT1EngineEquivalence(t *testing.T) {
	cfg := ft1Cfg(config.NICCNI, config.TopoTorus)
	rounds := ft1Rounds("alltoall", 64, true)
	calLat, calEv := ft1RunEngine(cfg, 64, "alltoall", rounds, sim.EngineCalendar)
	refLat, refEv := ft1RunEngine(cfg, 64, "alltoall", rounds, sim.EngineHeap)
	if calLat != refLat || calEv != refEv {
		t.Fatalf("engines diverge: calendar (lat=%v events=%d), heap (lat=%v events=%d)",
			calLat, calEv, refLat, refEv)
	}
}

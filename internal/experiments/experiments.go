// Package experiments regenerates every table and figure of the CNI
// paper's evaluation (Section 3). Each generator runs the relevant
// workloads on the simulated cluster and returns the same rows or
// series the paper reports; cmd/experiments renders them and
// EXPERIMENTS.md records the paper-versus-measured comparison.
//
// Every artifact decomposes into independent simulation points (one
// cluster run each). Generators submit their points to a Runner
// (runner.go) and join the futures in point order, so the suite can
// fan points across GOMAXPROCS workers — and deduplicate points shared
// between artifacts — while rendering bit-identical output to a
// one-worker run.
//
// Absolute numbers are not expected to match the 1996 testbed — the
// substrate is a model — but the shapes are: who wins, by roughly what
// factor, and where the curves bend.
package experiments

import (
	"fmt"
	"runtime"
	"strings"

	"cni/internal/apps"
	"cni/internal/apps/spmat"
	"cni/internal/cluster"
	"cni/internal/config"
	"cni/internal/sim"
)

// sweepKinds lists the interfaces the F-series microbenchmark sweeps
// (latency, bandwidth, faults, serving) render, in the evaluation's
// comparison order: the CNI first, then the OSIRIS-class ADC baseline
// it derives from, then the standard kernel-mediated interface last.
// Series labels come from the config registry (NICKind.Display), and
// all kind-specific behavior is asked of the board's datapath — the
// sweep only enumerates which registered models to run.
var sweepKinds = []config.NICKind{config.NICCNI, config.NICOsiris, config.NICStandard}

// Series is one labeled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is one reproduced figure.
type Figure struct {
	ID     string // "F2" ... "F14"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Table is one reproduced table.
type Table struct {
	ID      string // "T1" ... "T5"
	Title   string
	Columns []string
	Rows    [][]string
}

// Options scale the experiments. Quick shrinks the inputs so the whole
// suite runs in seconds (bench and CI mode); the full sizes are the
// paper's.
type Options struct {
	Quick bool
	// Procs overrides the processor counts swept in scaling figures.
	Procs []int
	// Jobs is the number of workers the parallel harness fans
	// simulation points across; 0 means GOMAXPROCS. It changes only
	// wall-clock time, never results: output is bit-identical at every
	// worker count.
	Jobs int
	// Progress, if non-nil, receives point-completion events. It is
	// called from worker goroutines and must be safe for concurrent
	// use.
	Progress func(Progress)

	// Shards splits each simulation point across this many
	// conservative-parallel kernel shards (Config.SimShards). Like
	// Jobs it changes only wall-clock time, never results: rendered
	// output is bit-identical at every shard count (the shard-parity
	// golden test pins this). Runs whose model cannot shard (DSM page
	// traffic) clamp back to a single kernel.
	Shards int

	// Set by Runner.RunSpec: the pool points are submitted to and the
	// artifact being generated. When nil, points run inline at the
	// call site (the legacy synchronous path).
	runner *Runner
	spec   string
}

// EffectiveParallelism resolves the jobs x shards budget against
// GOMAXPROCS: the point workers times the per-point shard goroutines
// are kept within the core count by reducing Jobs, never Shards
// (either change is invisible in the results — output is bit-identical
// at any jobs and any shards — but the shard count is typically the
// user's explicit request while Jobs defaults to "all cores").
// It returns the clamped options plus a printable summary line.
func (o Options) EffectiveParallelism() (Options, string) {
	procs := runtime.GOMAXPROCS(0)
	jobs := o.Jobs
	if jobs <= 0 {
		jobs = procs
	}
	shards := o.Shards
	if shards < 1 {
		shards = 1
	}
	if jobs*shards > procs {
		jobs = procs / shards
		if jobs < 1 {
			jobs = 1
		}
	}
	o.Jobs = jobs
	kernel := "single kernel per point"
	if o.Shards >= 1 {
		kernel = fmt.Sprintf("%d kernel shard(s) per point", shards)
	}
	return o, fmt.Sprintf("parallelism: %d point worker(s) x %s, GOMAXPROCS %d", jobs, kernel, procs)
}

func (o Options) procs() []int {
	if len(o.Procs) > 0 {
		return o.Procs
	}
	if o.Quick {
		return []int{1, 2, 4, 8}
	}
	return []int{1, 2, 4, 8, 16, 24, 32}
}

// AppMaker builds fresh instances of one benchmark application
// configuration; every simulated run needs its own instance. Sig
// uniquely names the application plus its input sizes so the harness
// can key runs for memoization.
type AppMaker struct {
	Sig string
	New func() apps.App
}

// jacobiSize picks the grid and iteration count. The hit ratio needs
// several iterations past the cold start to reach its steady state
// (the paper runs to convergence).
func jacobiSize(size int, quick bool) (int, int) {
	if quick {
		if size > 128 {
			size = 128
		}
		return size, 6
	}
	return size, 10
}

// JacobiMaker returns the Jacobi workload for figures F2-F5/T2.
func JacobiMaker(size int, o Options) AppMaker {
	r, iters := jacobiSize(size, o.Quick)
	return AppMaker{
		Sig: fmt.Sprintf("jacobi/%dx%d", r, iters),
		New: func() apps.App { return apps.NewJacobi(r, iters) },
	}
}

// WaterMaker returns the Water workload for figures F6-F9/T3.
func WaterMaker(mols int, o Options) AppMaker {
	if o.Quick && mols > 32 {
		mols = 32
	}
	return AppMaker{
		Sig: fmt.Sprintf("water/%dx2", mols),
		New: func() apps.App { return apps.NewWater(mols, 2) },
	}
}

// CholeskyMaker returns the Cholesky workload for F10-F12/T4.
func CholeskyMaker(gen spmat.Gen, o Options) AppMaker {
	if o.Quick {
		gen = spmat.Small(128)
	}
	return AppMaker{
		Sig: fmt.Sprintf("cholesky/%s-%d-%d", gen.Name, gen.N, gen.Seed),
		New: func() apps.App { return apps.NewCholesky(gen) },
	}
}

// appPoint submits one workload run on n nodes with the given
// interface as a harness point and returns its future.
func (o Options) appPoint(mk AppMaker, kind config.NICKind, n int, mutate func(*config.Config)) Future[*cluster.Result] {
	cfg := config.ForNIC(kind)
	if mutate != nil {
		mutate(&cfg)
	}
	// DSM workloads clamp back to one kernel inside cluster.New (page
	// transfers have zero lookahead); carrying the request through
	// anyway keeps the clamp path exercised by every suite run.
	cfg.SimShards = o.Shards
	key := pointKey{cfg: cfg, n: n, what: "app/" + mk.Sig}
	return submitPoint(o, key, func() *cluster.Result {
		c := cfg // each run owns its Config copy
		app := mk.New()
		_, res := apps.MustExecute(&c, n, app)
		return res
	})
}

// TableT1 renders the simulation parameters (Table 1).
func TableT1() Table {
	cfg := config.Default()
	t := Table{ID: "T1", Title: "Simulation Parameters", Columns: []string{"Parameter", "Value"}}
	for _, line := range strings.Split(strings.TrimSpace(cfg.Table1()), "\n") {
		k := strings.TrimSpace(line[:34])
		v := strings.TrimSpace(line[34:])
		t.Rows = append(t.Rows, []string{k, v})
	}
	return t
}

// FigureScaling reproduces the speedup + network-cache-hit-ratio
// figures (F2-F4 Jacobi, F6-F8 Water, F10-F11 Cholesky): CNI and
// standard speedups over the 1-processor run, plus the CNI hit ratio.
func FigureScaling(id, title string, mk AppMaker, o Options) Figure {
	f := Figure{ID: id, Title: title, XLabel: "No of processors", YLabel: "Speedup / Hit ratio (%)"}
	seqF := o.appPoint(mk, config.NICCNI, 1, nil)
	type pointPair struct {
		cni, std Future[*cluster.Result]
	}
	procs := o.procs()
	points := make([]pointPair, len(procs))
	for i, p := range procs {
		points[i] = pointPair{
			cni: o.appPoint(mk, config.NICCNI, p, nil),
			std: o.appPoint(mk, config.NICStandard, p, nil),
		}
	}
	seq := seqF.Wait()
	var cniS, stdS, hitS Series
	cniS.Label, stdS.Label, hitS.Label = "CNI-speedup", "Standard-speedup", "Network Cache Hit Ratio"
	for i, p := range procs {
		x := float64(p)
		cni := points[i].cni.Wait()
		std := points[i].std.Wait()
		cniS.X = append(cniS.X, x)
		cniS.Y = append(cniS.Y, float64(seq.Time)/float64(cni.Time))
		stdS.X = append(stdS.X, x)
		stdS.Y = append(stdS.Y, float64(seq.Time)/float64(std.Time))
		hitS.X = append(hitS.X, x)
		hitS.Y = append(hitS.Y, cni.HitRatio)
	}
	f.Series = []Series{cniS, stdS, hitS}
	return f
}

// pageSizes is the sweep of F5/F9/F12.
func pageSizes(quick bool) []int {
	if quick {
		return []int{1024, 2048, 4096}
	}
	return []int{1024, 2048, 4096, 8192, 16384}
}

// FigurePageSize reproduces the page-size sensitivity figures (F5, F9,
// F12): 8-processor execution-time-derived speedup versus shared page
// size for both interfaces.
func FigurePageSize(id, title string, mk AppMaker, o Options) Figure {
	f := Figure{ID: id, Title: title, XLabel: "Page Size (bytes)", YLabel: "Speedup"}
	n := 8
	if o.Quick {
		n = 4
	}
	type pointTriple struct {
		seq, cni, std Future[*cluster.Result]
	}
	sizes := pageSizes(o.Quick)
	points := make([]pointTriple, len(sizes))
	for i, ps := range sizes {
		mutate := func(c *config.Config) { c.PageBytes = ps }
		points[i] = pointTriple{
			seq: o.appPoint(mk, config.NICCNI, 1, mutate),
			cni: o.appPoint(mk, config.NICCNI, n, mutate),
			std: o.appPoint(mk, config.NICStandard, n, mutate),
		}
	}
	var cniS, stdS Series
	cniS.Label, stdS.Label = "CNI", "Standard"
	for i, ps := range sizes {
		seq := points[i].seq.Wait()
		cni := points[i].cni.Wait()
		std := points[i].std.Wait()
		cniS.X = append(cniS.X, float64(ps))
		cniS.Y = append(cniS.Y, float64(seq.Time)/float64(cni.Time))
		stdS.X = append(stdS.X, float64(ps))
		stdS.Y = append(stdS.Y, float64(seq.Time)/float64(std.Time))
	}
	f.Series = []Series{cniS, stdS}
	return f
}

// TableOverhead reproduces the overhead-breakdown tables (T2 Jacobi,
// T3 Water, T4 Cholesky): synchronization overhead, synchronization
// delay, computation and total, in cycles, for both interfaces on 8
// processors.
func TableOverhead(id, title string, mk AppMaker, o Options) Table {
	n := 8
	if o.Quick {
		n = 4
	}
	cniF := o.appPoint(mk, config.NICCNI, n, nil)
	stdF := o.appPoint(mk, config.NICStandard, n, nil)
	cni, std := cniF.Wait(), stdF.Wait()
	row := func(name string, a, b sim.Time) []string {
		return []string{name, fmt.Sprintf("%d", a), fmt.Sprintf("%d", b)}
	}
	return Table{
		ID: id, Title: title,
		Columns: []string{"Category", "Time-CNI (cycles)", "Time-standard (cycles)"},
		Rows: [][]string{
			row("Synch overhead", cni.AvgOverhead, std.AvgOverhead),
			row("Synch delay", cni.AvgDelay, std.AvgDelay),
			row("Computation", cni.AvgComputation, std.AvgComputation),
			row("Total", cni.Time, std.Time),
		},
	}
}

// cacheSizes is the sweep of F13.
func cacheSizes(quick bool) []int {
	if quick {
		return []int{8 << 10, 32 << 10, 128 << 10}
	}
	return []int{8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10, 1 << 20}
}

// FigureCacheSize reproduces F13: network cache hit ratio of the
// 8-processor applications versus Message Cache size.
func FigureCacheSize(o Options) Figure {
	f := Figure{ID: "F13", Title: "Network Cache Hit Ratios vs Message Cache size (8 processors)",
		XLabel: "Message Cache Size (KB)", YLabel: "Network Cache Hit Ratio (%)"}
	n := 8
	if o.Quick {
		n = 4
	}
	workloads := []struct {
		label string
		make  AppMaker
	}{
		{"Jacobi", JacobiMaker(1024, o)},
		{"Water", WaterMaker(216, o)},
		{"Cholesky", CholeskyMaker(spmat.BCSSTK14(), o)},
	}
	sizes := cacheSizes(o.Quick)
	points := make([][]Future[*cluster.Result], len(workloads))
	for i, wl := range workloads {
		points[i] = make([]Future[*cluster.Result], len(sizes))
		for j, sz := range sizes {
			sz := sz
			points[i][j] = o.appPoint(wl.make, config.NICCNI, n,
				func(c *config.Config) { c.MessageCacheByte = sz })
		}
	}
	for i, wl := range workloads {
		s := Series{Label: wl.label}
		for j, sz := range sizes {
			res := points[i][j].Wait()
			s.X = append(s.X, float64(sz>>10))
			s.Y = append(s.Y, res.HitRatio)
		}
		f.Series = append(f.Series, s)
	}
	return f
}

// TableUnrestrictedCell reproduces Table 5: percentage improvement in
// execution time when the ATM cell size is unrestricted (no
// fragmentation/reassembly), for the three 8-processor applications.
func TableUnrestrictedCell(o Options) Table {
	n := 8
	if o.Quick {
		n = 4
	}
	workloads := []struct {
		label string
		make  AppMaker
	}{
		{"Jacobi with 1024x1024 matrix", JacobiMaker(1024, o)},
		{"Water with 343 molecules", WaterMaker(343, o)},
		{"Cholesky with matrix bcsstk14", CholeskyMaker(spmat.BCSSTK14(), o)},
	}
	t := Table{ID: "T5", Title: "Performance Improvements using ATM with unrestricted cell size",
		Columns: []string{fmt.Sprintf("%d-processor Applications", n), "%age Improvement"}}
	type pointPair struct {
		base, unr Future[*cluster.Result]
	}
	points := make([]pointPair, len(workloads))
	for i, wl := range workloads {
		points[i] = pointPair{
			base: o.appPoint(wl.make, config.NICCNI, n, nil),
			unr:  o.appPoint(wl.make, config.NICCNI, n, func(c *config.Config) { c.UnrestrictedCell = true }),
		}
	}
	for i, wl := range workloads {
		base := points[i].base.Wait()
		unr := points[i].unr.Wait()
		imp := 100 * (float64(base.Time) - float64(unr.Time)) / float64(base.Time)
		t.Rows = append(t.Rows, []string{wl.label, fmt.Sprintf("%.2f", imp)})
	}
	return t
}

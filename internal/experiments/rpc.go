package experiments

import (
	"fmt"

	"cni/internal/config"
	"cni/internal/rpc"
	"cni/internal/sim"
	"cni/internal/workload"
)

// This file produces FS1, an experiment beyond the paper's figures:
// throughput–latency curves for a request-serving workload. Open-loop
// Poisson clients drive one server node at rising offered load; the
// server admits requests against its ADC free-queue depth (Delay
// policy, so nothing is shed and queueing shows up where it belongs —
// in the tail). The paper's claim, restated for serving: because the
// CNI notifies by polling under load, dequeues by popping a user-space
// queue, and answers hot responses straight from the Message Cache,
// the per-request host cost stays near the ADC enqueue/dequeue cost,
// while the standard interface pays an interrupt plus the kernel
// receive and send paths per request — so as offered load rises the
// standard interface saturates first and its p99 explodes while the
// CNI's curve stays flat. FS1 plots sustained throughput, p50 and p99
// versus offered load for both interfaces, and panics unless the CNI
// sustains strictly more at strictly lower p99 at the top rate.

// FS1Rates is the per-client offered-load sweep, requests/second.
var FS1Rates = []float64{2500, 5000, 10000, 20000}

// fs1Spec fixes the workload shape of one FS1 point: everything but
// the offered rate is constant across the sweep.
func fs1Spec(o Options, rate float64) workload.Spec {
	s := workload.Spec{
		Servers:   1,
		Clients:   4,
		Seed:      7,
		Open:      true,
		Poisson:   true,
		Rate:      rate,
		Requests:  400,
		ReqBytes:  128,
		RespBytes: 1024,
		Service:   1000,
		WorkQueue: 64,
		FreeBufs:  64,
		Policy:    rpc.Delay,
	}
	if o.Quick {
		s.Clients = 2
		s.Requests = 150
	}
	return s
}

// fs1Run is the outcome of one FS1 point.
type fs1Run struct {
	Sustained float64
	P50, P99  sim.Time
}

// fs1Point submits one serving run: the workload executes under the
// given interface at the given per-client rate, verifies the Delay
// policy completed every request, and reports sustained throughput
// plus exact percentiles.
func (o Options) fs1Point(kind config.NICKind, rate float64) Future[fs1Run] {
	cfg := config.ForNIC(kind)
	cfg.SimShards = o.Shards
	s := fs1Spec(o, rate)
	key := pointKey{cfg: cfg, n: s.Servers + s.Clients,
		what: fmt.Sprintf("fs1/%gx%d/%d", rate, s.Clients, s.Requests)}
	return submitPoint(o, key, func() fs1Run {
		c := cfg
		rep := workload.Run(&c, s)
		if want := uint64(s.Clients * s.Requests); rep.Stats.Completed != want {
			panic(fmt.Sprintf("experiments: FS1 on %v at %g req/s completed %d of %d under the Delay policy",
				kind, rate, rep.Stats.Completed, want))
		}
		return fs1Run{Sustained: rep.Sustained, P50: rep.P50, P99: rep.P99}
	})
}

// BenchPoint is one machine-readable point of the FS1 serving sweep,
// emitted by cmd/experiments -benchjson for trajectory tracking.
type BenchPoint struct {
	NIC       string  `json:"nic"`
	Offered   float64 `json:"offered_req_per_s"`
	Sustained float64 `json:"sustained_req_per_s"`
	P50       int64   `json:"p50_cycles"`
	P99       int64   `json:"p99_cycles"`
}

// BenchRPC runs the FS1 sweep and returns its points in a fixed order
// (interface major, rate minor), so the emitted JSON is bit-identical
// run to run like every other artifact.
func BenchRPC(o Options) []BenchPoint {
	clients := fs1Spec(o, 0).Clients
	futs := make([][]Future[fs1Run], len(sweepKinds))
	for i, kind := range sweepKinds {
		for _, rate := range FS1Rates {
			futs[i] = append(futs[i], o.fs1Point(kind, rate))
		}
	}
	var out []BenchPoint
	for i, kind := range sweepKinds {
		for j, rate := range FS1Rates {
			r := futs[i][j].Wait()
			out = append(out, BenchPoint{
				NIC:       kind.String(),
				Offered:   rate * float64(clients),
				Sustained: r.Sustained,
				P50:       int64(r.P50),
				P99:       int64(r.P99),
			})
		}
	}
	return out
}

// FigureRPC produces FS1: sustained throughput, p50 and p99 latency
// versus total offered load for every interface.
func FigureRPC(o Options) Figure {
	f := Figure{ID: "FS1",
		Title:  "Request serving: sustained throughput and latency percentiles vs offered load",
		XLabel: "Offered load (req/s)", YLabel: "req/s / latency (cycles)"}
	// Plan every point of every interface up front so the whole figure
	// fans across the worker pool at once.
	points := make([][]Future[fs1Run], len(sweepKinds))
	for i, kind := range sweepKinds {
		for _, rate := range FS1Rates {
			points[i] = append(points[i], o.fs1Point(kind, rate))
		}
	}
	clients := fs1Spec(o, 0).Clients
	runs := make([][]fs1Run, len(sweepKinds))
	for i, kind := range sweepKinds {
		label := kind.Display()
		tput := Series{Label: label + "-throughput"}
		p50 := Series{Label: label + "-p50"}
		p99 := Series{Label: label + "-p99"}
		for j, rate := range FS1Rates {
			r := points[i][j].Wait()
			runs[i] = append(runs[i], r)
			offered := rate * float64(clients)
			tput.X = append(tput.X, offered)
			tput.Y = append(tput.Y, r.Sustained)
			p50.X = append(p50.X, offered)
			p50.Y = append(p50.Y, float64(r.P50))
			p99.X = append(p99.X, offered)
			p99.Y = append(p99.Y, float64(r.P99))
		}
		f.Series = append(f.Series, tput, p50, p99)
	}
	// The acceptance property of the serving study: at the highest
	// offered load the CNI (first sweep kind) sustains strictly more at
	// a strictly lower p99 than the standard interface (last sweep
	// kind).
	top := len(FS1Rates) - 1
	cni, std := runs[0][top], runs[len(runs)-1][top]
	if cni.Sustained <= std.Sustained || cni.P99 >= std.P99 {
		panic(fmt.Sprintf("experiments: FS1 at top load: CNI %.0f req/s p99 %d vs standard %.0f req/s p99 %d — CNI must sustain more at lower p99",
			cni.Sustained, cni.P99, std.Sustained, std.P99))
	}
	return f
}

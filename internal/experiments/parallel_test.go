package experiments

import (
	"context"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cni/internal/config"
)

// parityOpts keeps the parity run fast: quick inputs, two processor
// counts in the scaling sweeps.
var parityOpts = Options{Quick: true, Procs: []int{1, 4}}

// renderSequential produces an artifact through the legacy inline path
// (no runner): the exact code path the seed shipped.
func renderSequential(s Spec, o Options) string {
	if s.Figure != nil {
		return RenderFigure(s.Figure(o))
	}
	return RenderTable(s.Table(o))
}

// TestParallelSuiteParity is the golden parity gate of the harness:
// for every registered artifact, the parallel suite's rendered output
// must be byte-identical to the sequential path. The suite runs on one
// shared 4-worker pool (memoization and cross-artifact interleaving
// fully active), the sequential reference inline with no pool at all.
func TestParallelSuiteParity(t *testing.T) {
	specs := All()
	par := parityOpts
	par.Jobs = 4
	outs, err := RunSuite(context.Background(), specs, par)
	if err != nil {
		t.Fatalf("parallel suite: %v", err)
	}
	for i, s := range specs {
		seq := renderSequential(s, parityOpts)
		if outs[i] != seq {
			t.Errorf("%s: parallel output differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
				s.ID, seq, outs[i])
		}
	}
}

// TestRunSpecMatchesSequential covers the single-artifact entry point
// at several worker counts: byte-identical output regardless of Jobs.
func TestRunSpecMatchesSequential(t *testing.T) {
	spec, _ := Find("F2")
	want := renderSequential(spec, parityOpts)
	for _, jobs := range []int{1, 2, 8} {
		o := parityOpts
		o.Jobs = jobs
		got, err := RunSpec(context.Background(), spec, o)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if got != want {
			t.Fatalf("jobs=%d: output differs from sequential", jobs)
		}
	}
}

// TestSuiteMemoization verifies identical points shared between
// artifacts execute once: running F2 twice on one runner plans no new
// points the second time, and the cross-artifact sharing FR1 depends
// on (its lossless baselines are F14/FC1 points) actually hits.
func TestSuiteMemoization(t *testing.T) {
	o := parityOpts
	o.Jobs = 2
	r := NewRunner(context.Background(), o)
	defer r.Close()
	spec, _ := Find("F2")
	first, err := r.RunSpec(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	_, planned := r.Counts()
	hits := r.MemoHits()
	second, err := r.RunSpec(spec, o)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Fatal("memoized rerun rendered different output")
	}
	_, planned2 := r.Counts()
	if planned2 != planned {
		t.Fatalf("second identical run planned %d new points", planned2-planned)
	}
	if r.MemoHits() <= hits {
		t.Fatal("second identical run registered no memo hits")
	}
}

// TestSuiteCancellation cancels mid-suite and requires a prompt error
// return with no goroutine leaks: every worker and generator goroutine
// must wind down once RunSuite returns.
func TestSuiteCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var fired atomic.Bool
	o := parityOpts
	o.Jobs = 2
	o.Progress = func(ev Progress) {
		// Cancel as soon as the pool has something in flight.
		if ev.Done >= 2 && fired.CompareAndSwap(false, true) {
			cancel()
		}
	}
	start := time.Now()
	_, err := RunSuite(ctx, All(), o)
	if err == nil {
		t.Fatal("canceled suite returned no error")
	}
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if took := time.Since(start); took > 30*time.Second {
		t.Fatalf("canceled suite took %v to return", took)
	}
	// Workers and generator goroutines must exit; give the scheduler a
	// moment to reap them.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after cancel", before, runtime.NumGoroutine())
}

// TestRunSpecPanicBecomesError routes a model panic through the
// harness as an error instead of crashing the process.
func TestRunSpecPanicBecomesError(t *testing.T) {
	bad := Spec{ID: "FX", Title: "explodes",
		Figure: func(o Options) Figure { panic("boom") }}
	_, err := RunSpec(context.Background(), bad, Options{Jobs: 2})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want wrapped panic", err)
	}
	empty := Spec{ID: "FY", Title: "no generator"}
	if _, err := RunSpec(context.Background(), empty, Options{Jobs: 1}); err == nil {
		t.Fatal("spec without generator returned no error")
	}
}

// TestMeasureUnifiedEntryPoint checks the consolidated Measure against
// the legacy entry points it wraps, and its argument validation.
func TestMeasureUnifiedEntryPoint(t *testing.T) {
	lat, err := Measure(config.NICCNI, Probe{Metric: MetricLatency, Size: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if want := MeasureLatency(config.NICCNI, 1024, nil); int64(lat) != want {
		t.Fatalf("Measure latency %v != MeasureLatency %v", lat, want)
	}
	tweak := func(c *config.Config) { c.TransmitCaching = false }
	latT, err := Measure(config.NICCNI, Probe{Metric: MetricLatency, Size: 1024, Tweak: tweak})
	if err != nil {
		t.Fatal(err)
	}
	if want := MeasureLatency(config.NICCNI, 1024, tweak); int64(latT) != want {
		t.Fatalf("Measure tweaked latency %v != MeasureLatencyWith %v", latT, want)
	}
	bw, err := Measure(config.NICStandard, Probe{Metric: MetricBandwidth, Size: 256})
	if err != nil {
		t.Fatal(err)
	}
	if want := MeasureBandwidth(config.NICStandard, 256, nil); bw != want {
		t.Fatalf("Measure bandwidth %v != MeasureBandwidth %v", bw, want)
	}
	coll, err := Measure(config.NICCNI, Probe{Metric: MetricCollective, Nodes: 4, Op: "allreduce"})
	if err != nil {
		t.Fatal(err)
	}
	if want := MeasureCollective(config.NICCNI, 4, "allreduce"); int64(coll) != want {
		t.Fatalf("Measure collective %v != MeasureCollective %v", coll, want)
	}
	// Defaults: collective with zero Nodes/Op is a 2-node barrier.
	def, err := Measure(config.NICCNI, Probe{Metric: MetricCollective})
	if err != nil {
		t.Fatal(err)
	}
	if want := MeasureCollective(config.NICCNI, 2, "barrier"); int64(def) != want {
		t.Fatalf("Measure default collective %v != 2-node barrier %v", def, want)
	}
	for _, bad := range []Probe{
		{Metric: MetricLatency, Size: -1},
		{Metric: MetricLatency, Nodes: 5},
		{Metric: MetricBandwidth},
		{Metric: MetricCollective, Op: "gather"},
		{Metric: MetricCollective, Nodes: 1},
		{Metric: Metric(99)},
	} {
		if _, err := Measure(config.NICCNI, bad); err == nil {
			t.Fatalf("probe %+v accepted", bad)
		}
	}
}

// TestProgressAccounting checks the live counters: totals grow
// monotonically, done ends equal to total, and the final counts agree
// with the runner's.
func TestProgressAccounting(t *testing.T) {
	var events atomic.Int64
	var maxDone atomic.Int64
	o := parityOpts
	o.Jobs = 2
	o.Progress = func(ev Progress) {
		events.Add(1)
		if ev.Done > int(maxDone.Load()) {
			maxDone.Store(int64(ev.Done))
		}
		if ev.Done > ev.Total {
			t.Errorf("done %d > total %d", ev.Done, ev.Total)
		}
	}
	spec, _ := Find("T5")
	r := NewRunner(context.Background(), o)
	defer r.Close()
	if _, err := r.RunSpec(spec, o); err != nil {
		t.Fatal(err)
	}
	done, total := r.Counts()
	if done != total {
		t.Fatalf("finished artifact left %d/%d points", done, total)
	}
	if events.Load() == 0 || int(maxDone.Load()) != done {
		t.Fatalf("progress saw %d events, max done %d, want done %d",
			events.Load(), maxDone.Load(), done)
	}
}

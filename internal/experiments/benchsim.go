package experiments

// BenchSim measures the simulator's own performance — wall time and
// kernel events per second over a fixed set of representative legs —
// for trajectory tracking across revisions (cmd/experiments -benchjson
// writes it to BENCH_sim.json). The simulated results of each leg are
// deterministic; the wall-clock numbers of course are not.

import (
	"time"

	"cni/internal/apps"
	"cni/internal/config"
)

// SimBenchPoint is one machine-readable leg of the simulator
// benchmark.
type SimBenchPoint struct {
	Leg        string  `json:"leg"`
	Events     uint64  `json:"events"`
	WallMS     float64 `json:"wall_ms"`
	EventsPerS float64 `json:"events_per_s"`
}

// BenchSim runs the benchmark legs sequentially (so legs do not steal
// cores from each other) and returns the points in a fixed order: a
// DSM application on the paper's machine, then board-level traffic on
// each multi-switch fabric.
func BenchSim(o Options) []SimBenchPoint {
	legs := []struct {
		name string
		run  func() uint64 // returns kernel events executed
	}{
		{"jacobi-8node-cni", func() uint64 {
			cfg := config.ForNIC(config.NICCNI)
			c, _ := apps.Execute(&cfg, 8, apps.NewJacobi(64, 6))
			return c.K.Executed()
		}},
		{"ft1-clos-permutation-64", func() uint64 {
			cfg := ft1Cfg(config.NICCNI, config.TopoClos)
			_, events := ft1Run(cfg, 64, "permutation", ft1Rounds("permutation", 64, true))
			return events
		}},
		{"ft1-torus-alltoall-64", func() uint64 {
			cfg := ft1Cfg(config.NICCNI, config.TopoTorus)
			_, events := ft1Run(cfg, 64, "alltoall", ft1Rounds("alltoall", 64, true))
			return events
		}},
	}
	var out []SimBenchPoint
	for _, leg := range legs {
		start := time.Now()
		events := leg.run()
		wall := time.Since(start)
		p := SimBenchPoint{Leg: leg.name, Events: events, WallMS: float64(wall.Nanoseconds()) / 1e6}
		if wall > 0 {
			p.EventsPerS = float64(events) / wall.Seconds()
		}
		out = append(out, p)
	}
	return out
}

package experiments

// BenchSim measures the simulator's own performance — wall time and
// kernel events per second over a fixed set of representative legs —
// for trajectory tracking across revisions (cmd/experiments -benchjson
// writes it to BENCH_sim.json). The simulated results of each leg are
// deterministic; the wall-clock numbers of course are not.

import (
	"time"

	"cni/internal/apps"
	"cni/internal/config"
	"cni/internal/sim"
)

// SimBenchPoint is one machine-readable leg of the simulator
// benchmark. Engine names the kernel scheduler the leg ran on when the
// leg exists specifically to compare engines; it is empty for legs
// that simply run the default.
type SimBenchPoint struct {
	Leg        string  `json:"leg"`
	Engine     string  `json:"engine,omitempty"`
	Events     uint64  `json:"events"`
	WallMS     float64 `json:"wall_ms"`
	EventsPerS float64 `json:"events_per_s"`
}

// BenchLeg1024 is the FT1-style 1024-node leg's name: the trajectory
// point the calendar-kernel speedup is judged on (see BENCH_sim.json).
const BenchLeg1024 = "ft1-torus-alltoall-1024"

// BenchSim runs the benchmark legs sequentially (so legs do not steal
// cores from each other) and returns the points in a fixed order: a
// DSM application on the paper's machine, then board-level traffic on
// each multi-switch fabric.
func BenchSim(o Options) []SimBenchPoint {
	ft1Leg := func(topo, pattern string, n, shards int, engine sim.Engine) func() uint64 {
		return func() uint64 {
			cfg := ft1Cfg(config.NICCNI, topo)
			cfg.SimShards = shards
			_, events := ft1RunEngine(cfg, n, pattern, ft1Rounds(pattern, n, true), engine)
			return events
		}
	}
	legs := []struct {
		name   string
		engine sim.Engine // empty: default engine, not an engine-comparison leg
		run    func() uint64
	}{
		{"jacobi-8node-cni", "", func() uint64 {
			cfg := config.ForNIC(config.NICCNI)
			c, _ := apps.MustExecute(&cfg, 8, apps.NewJacobi(64, 6))
			return c.Executed()
		}},
		{"ft1-clos-permutation-64", "", ft1Leg(config.TopoClos, "permutation", 64, 0, sim.EngineCalendar)},
		{"ft1-torus-alltoall-64", "", ft1Leg(config.TopoTorus, "alltoall", 64, 0, sim.EngineCalendar)},
		// The speedup-gate leg, on both engines: the calendar point is
		// the trajectory the repo tracks, the reference-heap point
		// isolates the kernel engine's share of it on identical
		// surrounding code.
		{BenchLeg1024, sim.EngineCalendar, ft1Leg(config.TopoTorus, "alltoall", 1024, 0, sim.EngineCalendar)},
		{BenchLeg1024 + "-refheap", sim.EngineHeap, ft1Leg(config.TopoTorus, "alltoall", 1024, 0, sim.EngineHeap)},
		// The gate leg again as parallel shards: the wall-clock
		// trajectory of the sharded driver. Results are bit-identical to
		// the unsharded leg at every count (TestShardSuiteParity); on a
		// single-core host these measure the windowing overhead instead
		// of a speedup. shards1 runs the sharded machinery with one
		// shard, separating driver overhead from parallelism.
		{BenchLeg1024 + "-shards1", sim.EngineCalendar, ft1Leg(config.TopoTorus, "alltoall", 1024, 1, sim.EngineCalendar)},
		{BenchLeg1024 + "-shards2", sim.EngineCalendar, ft1Leg(config.TopoTorus, "alltoall", 1024, 2, sim.EngineCalendar)},
		{BenchLeg1024 + "-shards4", sim.EngineCalendar, ft1Leg(config.TopoTorus, "alltoall", 1024, 4, sim.EngineCalendar)},
		{BenchLeg1024 + "-shards8", sim.EngineCalendar, ft1Leg(config.TopoTorus, "alltoall", 1024, 8, sim.EngineCalendar)},
	}
	var out []SimBenchPoint
	for _, leg := range legs {
		start := time.Now()
		events := leg.run()
		wall := time.Since(start)
		p := SimBenchPoint{Leg: leg.name, Engine: string(leg.engine), Events: events, WallMS: float64(wall.Nanoseconds()) / 1e6}
		if wall > 0 {
			p.EventsPerS = float64(events) / wall.Seconds()
		}
		out = append(out, p)
	}
	return out
}

package experiments

// The unified microbenchmark entry point. The package grew three
// parallel Measure* functions (latency, bandwidth, collective) with
// slightly different signatures; Measure subsumes them behind one
// Probe description so new metrics slot in without another top-level
// function. The old entry points remain as thin wrappers.

import (
	"fmt"

	"cni/internal/config"
)

// Metric selects what a Probe measures.
type Metric int

const (
	// MetricLatency is the warmed application-to-application latency of
	// one message of Probe.Size bytes, in nanoseconds (Figure 14's
	// microbenchmark; 100% Message Cache hit ratio on the CNI).
	MetricLatency Metric = iota
	// MetricBandwidth is the achieved streaming bandwidth of
	// Probe.Size-byte messages, in MB/s of simulated time.
	MetricBandwidth
	// MetricCollective is the mean per-episode latency of collective
	// Probe.Op on Probe.Nodes nodes, in nanoseconds (FC1's
	// microbenchmark).
	MetricCollective
)

// String implements fmt.Stringer.
func (m Metric) String() string {
	switch m {
	case MetricLatency:
		return "latency"
	case MetricBandwidth:
		return "bandwidth"
	case MetricCollective:
		return "collective"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Probe describes one microbenchmark measurement for Measure.
type Probe struct {
	// Metric selects the measurement.
	Metric Metric
	// Size is the message size in bytes (MetricLatency and
	// MetricBandwidth; latency admits 0 for an empty message,
	// bandwidth requires a positive size).
	Size int
	// Nodes is the fabric size for MetricCollective; 0 defaults to 2.
	Nodes int
	// Op is the collective operation for MetricCollective: "barrier",
	// "allreduce" or "allreduce-ring"; "" defaults to "barrier".
	Op string
	// Tweak, if non-nil, adjusts the configuration before the run
	// (ablations: disable transmit caching, force interrupts, inject
	// faults, ...).
	Tweak func(*config.Config)
}

// collectiveOps are the operations MetricCollective accepts.
var collectiveOps = map[string]bool{"barrier": true, "allreduce": true, "allreduce-ring": true}

// Measure runs one microbenchmark probe against the given interface
// and returns the measured value in the metric's unit (ns for
// MetricLatency and MetricCollective, MB/s for MetricBandwidth).
func Measure(kind config.NICKind, p Probe) (float64, error) {
	switch p.Metric {
	case MetricLatency:
		if p.Size < 0 {
			return 0, fmt.Errorf("experiments: latency probe with negative size %d", p.Size)
		}
		if p.Nodes != 0 && p.Nodes != 2 {
			return 0, fmt.Errorf("experiments: latency probe is point-to-point, got Nodes=%d", p.Nodes)
		}
		return float64(MeasureLatency(kind, p.Size, p.Tweak)), nil
	case MetricBandwidth:
		if p.Size <= 0 {
			return 0, fmt.Errorf("experiments: bandwidth probe needs a positive Size, got %d", p.Size)
		}
		if p.Nodes != 0 && p.Nodes != 2 {
			return 0, fmt.Errorf("experiments: bandwidth probe is point-to-point, got Nodes=%d", p.Nodes)
		}
		return MeasureBandwidth(kind, p.Size, p.Tweak), nil
	case MetricCollective:
		op := p.Op
		if op == "" {
			op = "barrier"
		}
		if !collectiveOps[op] {
			return 0, fmt.Errorf("experiments: unknown collective op %q", op)
		}
		n := p.Nodes
		if n == 0 {
			n = 2
		}
		if n < 2 {
			return 0, fmt.Errorf("experiments: collective probe needs at least 2 nodes, got %d", n)
		}
		return float64(measureCollectiveCfg(kind, n, op, p.Tweak)), nil
	default:
		return 0, fmt.Errorf("experiments: unknown metric %v", p.Metric)
	}
}

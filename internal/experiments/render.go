package experiments

import (
	"fmt"
	"strings"
)

// RenderTable formats a table as aligned plain text.
func RenderTable(t Table) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			fmt.Fprintf(&b, "  %-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i == 0 {
			b.WriteString("  ")
		} else {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// RenderFigure formats a figure as an aligned data listing: one row
// per X value, one column per series — the form the plots in the paper
// can be redrawn from.
func RenderFigure(f Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", f.ID, f.Title)
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Label)
	}
	// Collect the union of X values in first-series order (all series
	// share X in our generators, but stay safe).
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	t := Table{Columns: cols}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = fmt.Sprintf("%.2f", s.Y[i])
					break
				}
			}
			row = append(row, cell)
		}
		t.Rows = append(t.Rows, row)
	}
	// Reuse the table body renderer without the header line.
	body := RenderTable(t)
	body = body[strings.Index(body, "\n")+1:]
	b.WriteString(body)
	return b.String()
}

func trimFloat(x float64) string {
	if x == float64(int64(x)) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

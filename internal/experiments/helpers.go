package experiments

import (
	"cni/internal/atm"
	"cni/internal/config"
	"cni/internal/msgpass"
	"cni/internal/sim"
)

// Experiment points run known-good configs, so a construction failure
// is a programming error; the harness converts panics into errors.

func mustNet(k *sim.Kernel, cfg *config.Config, n int) *atm.Network {
	net, err := atm.New(k, cfg, n)
	if err != nil {
		panic(err)
	}
	return net
}

func mustFabric(cfg *config.Config, n int) *msgpass.Fabric {
	f, err := msgpass.NewFabric(cfg, n)
	if err != nil {
		panic(err)
	}
	return f
}

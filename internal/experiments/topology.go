package experiments

// FT1: the three interface models on multi-switch fabrics. The paper's
// single 32-port banyan caps the cluster at 32 nodes; the topology
// layer (internal/topo) lifts that, so this artifact sweeps 128-1024
// nodes on a Clos/fat-tree and a 3D torus under three adversarial
// traffic patterns and reports the mean application-to-application
// delivery latency:
//
//   - permutation: node i streams to node (i + n/2) % n — on the
//     fat-tree every flow crosses the core, on the torus every flow
//     spans the diameter-scale distance;
//   - incast: every node streams to node 0 — the hot-receiver pattern
//     that serializes on the destination's delivery port regardless of
//     topology (bisection bandwidth cannot help);
//   - alltoall: shifted-permutation rounds (node i sends round r to
//     (i + 1 + r % (n-1)) % n), the uniform load that exercises the
//     whole fabric. Rounds are capped (ft1Rounds) to bound runtime at
//     1024 nodes; at small n it is a true all-to-all.
//
// Each point is a board-level run (no DSM): every node's generator
// paces fixed-size messages at link serialization rate, receive
// handlers run on the board (AIH) and timestamp arrival. Points run on
// the parallel harness and render bit-identically at any -j.

import (
	"fmt"

	"cni/internal/atm"
	"cni/internal/config"
	"cni/internal/memsys"
	"cni/internal/nic"
	"cni/internal/sim"
)

const (
	ft1Op    = 0x4654 // "FT"
	ft1Bytes = 1024   // payload per message
)

// ft1Topos lists the multi-switch fabrics the sweep compares. The
// single switch cannot address these node counts.
var ft1Topos = []string{config.TopoClos, config.TopoTorus}

var ft1Patterns = []string{"permutation", "incast", "alltoall"}

func ft1Sizes(quick bool) []int {
	if quick {
		return []int{32, 64}
	}
	return []int{128, 256, 512, 1024}
}

// ft1Rounds is the number of messages each node generates.
func ft1Rounds(pattern string, n int, quick bool) int {
	switch pattern {
	case "permutation":
		if quick {
			return 2
		}
		return 4
	case "incast":
		return 2
	default: // alltoall: capped shifted-permutation rounds
		cap := 32
		if quick {
			cap = 8
		}
		if n-1 < cap {
			return n - 1
		}
		return cap
	}
}

// ft1Dst returns node's destination in round r, or -1 for none.
func ft1Dst(pattern string, node, r, n int) int {
	switch pattern {
	case "permutation":
		return (node + n/2) % n
	case "incast":
		if node == 0 {
			return -1
		}
		return 0
	default: // alltoall
		return (node + 1 + r%(n-1)) % n
	}
}

func ft1Cfg(kind config.NICKind, topoName string) config.Config {
	cfg := config.ForNIC(kind)
	cfg.Topology = topoName
	return cfg
}

// ft1Point submits one (interface, topology, pattern, size) cell.
func (o Options) ft1Point(kind config.NICKind, topoName, pattern string, n int, quick bool) Future[float64] {
	cfg := ft1Cfg(kind, topoName)
	cfg.SimShards = o.Shards
	rounds := ft1Rounds(pattern, n, quick)
	key := pointKey{cfg: cfg, n: n, what: fmt.Sprintf("ft1/%s/%d", pattern, rounds)}
	return submitPoint(o, key, func() float64 {
		us, _ := ft1Run(cfg, n, pattern, rounds)
		return us
	})
}

// ft1Run is the measurement proper: mean delivery latency in
// microseconds over every message of the pattern, plus the kernel
// event count (the sim-throughput denominator BenchSim reports).
func ft1Run(cfg config.Config, n int, pattern string, rounds int) (float64, uint64) {
	return ft1RunEngine(cfg, n, pattern, rounds, sim.EngineCalendar)
}

// ft1RunEngine is ft1Run on an explicit kernel engine. BenchSim uses it
// to run the same leg on the calendar queue and on the reference heap,
// which both isolates the engine's contribution to simulator throughput
// and re-proves on every benchmark run that the simulated result does
// not depend on the engine.
func ft1RunEngine(cfg config.Config, n int, pattern string, rounds int, engine sim.Engine) (float64, uint64) {
	net, ss, k := mustFt1Net(cfg, n, engine)
	boards := make([]*nic.Board, n)
	// Latency accumulators are per receiving node and folded in node
	// order after the run: the per-node sums are integers, so the fold
	// is order-independent and the mean is bit-identical to a single
	// shared accumulator — while staying race-free when shards run
	// windows in parallel.
	totals := make([]sim.Time, n)
	counts := make([]uint64, n)
	for i := 0; i < n; i++ {
		i := i
		b := nic.NewBoard(net.NodeKernel(i), &cfg, i, net, memsys.New(&cfg))
		b.MapPages(0x10000, 1<<16)
		b.MapPages(0x40000, 1<<16)
		b.Register(ft1Op, true, func(at sim.Time, m *nic.Message) {
			totals[i] += at - m.Payload.(sim.Time)
			counts[i]++
		})
		boards[i] = b
	}
	// Pace each generator at the link serialization rate of one
	// message, so offered load saturates the injection link without
	// unbounded in-flight buildup.
	pace := cfg.SerializeCycles(nic.HeaderBytes + ft1Bytes)
	for i := 0; i < n; i++ {
		i := i
		net.NodeKernel(i).Spawn(fmt.Sprintf("gen%d", i), func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				dst := ft1Dst(pattern, i, r, n)
				if dst < 0 || dst == i {
					p.Advance(pace)
					continue
				}
				p.Sync()
				boards[i].Send(p, &nic.Message{
					From: i, To: dst, Op: ft1Op,
					Size:         nic.HeaderBytes + ft1Bytes,
					VAddr:        0x10000,
					CacheTx:      true,
					DeliverVAddr: 0x40000,
					DeliverBytes: ft1Bytes,
					Payload:      p.Local(),
				})
				p.Advance(pace)
			}
		})
	}
	var executed uint64
	if ss != nil {
		ss.Run()
		executed = ss.Executed()
	} else {
		k.Run()
		executed = k.Executed()
	}
	net.Finish()
	var total sim.Time
	var count uint64
	for i := 0; i < n; i++ {
		total += totals[i]
		count += counts[i]
	}
	if count == 0 {
		panic(fmt.Sprintf("experiments: ft1 %s/%d delivered no messages", pattern, n))
	}
	// cycles / MHz = microseconds.
	return float64(total) / float64(count) / float64(cfg.CPUFreqMHz), executed
}

// mustFt1Net builds the fabric for one board-level run: sharded when
// cfg.SimShards asks for it (>= 1; 1 exercises the sharded driver on a
// single shard), the plain single kernel otherwise (ss is nil and k
// the kernel in that case).
func mustFt1Net(cfg config.Config, n int, engine sim.Engine) (*atm.Network, *sim.ShardSet, *sim.Kernel) {
	if cfg.SimShards >= 1 {
		net, ss, err := atm.NewSharded(&cfg, n, cfg.SimShards, engine)
		if err != nil {
			panic(fmt.Sprintf("experiments: %v", err))
		}
		return net, ss, nil
	}
	k := sim.NewKernelWith(engine)
	return mustNet(k, &cfg, n), nil, k
}

// FigureTopology reproduces FT1: 18 series (2 fabrics x 3 patterns x
// 3 interfaces) over the node-count sweep.
func FigureTopology(o Options) Figure {
	f := Figure{ID: "FT1",
		Title:  "Fabric topology sweep: mean delivery latency on Clos and torus fabrics",
		XLabel: "Nodes", YLabel: "Mean latency (us)"}
	sizes := ft1Sizes(o.Quick)
	futs := map[string]Future[float64]{}
	cell := func(topo, pattern string, kind config.NICKind, n int) string {
		return fmt.Sprintf("%s/%s/%s/%d", topo, pattern, kind, n)
	}
	for _, topo := range ft1Topos {
		for _, pattern := range ft1Patterns {
			for _, kind := range sweepKinds {
				for _, n := range sizes {
					futs[cell(topo, pattern, kind, n)] = o.ft1Point(kind, topo, pattern, n, o.Quick)
				}
			}
		}
	}
	top := sizes[len(sizes)-1]
	for _, topo := range ft1Topos {
		for _, pattern := range ft1Patterns {
			for _, kind := range sweepKinds {
				s := Series{Label: fmt.Sprintf("%s-%s-%s", topo, pattern, kind.Display())}
				for _, n := range sizes {
					s.X = append(s.X, float64(n))
					s.Y = append(s.Y, futs[cell(topo, pattern, kind, n)].Wait())
				}
				f.Series = append(f.Series, s)
			}
			// Sanity: at the top size the hot receiver must queue at
			// least as badly as the contention-free permutation.
			for _, kind := range sweepKinds {
				in := futs[cell(topo, "incast", kind, top)].Wait()
				perm := futs[cell(topo, "permutation", kind, top)].Wait()
				if in < perm {
					panic(fmt.Sprintf("experiments: ft1 %s/%s incast %.2fus beat permutation %.2fus",
						topo, kind, in, perm))
				}
			}
		}
	}
	return f
}

// Package pathfinder implements the PATHFINDER pattern-based packet
// classifier (Bailey et al., OSDI 1994) that the CNI board uses to
// demultiplex incoming packets to the right Application Device Channel
// or Application Interrupt Handler (Section 2.1 of the CNI paper).
//
// A pattern is a sequence of field comparisons (offset, mask, value)
// against the packet header. Patterns are compiled into a shared
// decision DAG: patterns with a common prefix of comparisons share
// nodes, so the match work for n similar patterns is far below n full
// scans — this is the property that let PATHFINDER run at line rate in
// hardware. Classify reports the number of field tests performed so
// callers can model hardware (constant-ish) or software (per-test)
// classification cost.
//
// PATHFINDER's second key feature is fragment handling: only a
// packet's first cell carries the protocol header, so a successful
// match installs transient per-VCI state that routes the remaining
// cells of the packet without re-classification.
package pathfinder

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Value is the opaque routing target a pattern maps to (an ADC channel
// number, an AIH handler id, ...).
type Value uint64

// Field is one comparison: load the 32-bit big-endian word at Offset
// bytes into the header, AND it with Mask, compare with Value.
type Field struct {
	Offset int
	Mask   uint32
	Value  uint32
}

// Pattern is an ordered conjunction of Fields. The order is the order
// tests are wired into the DAG; patterns intended to share prefix nodes
// should list their common fields first (as the on-board channel setup
// code does: protocol id, then channel id, then operation).
type Pattern []Field

func (p Pattern) String() string {
	s := ""
	for i, f := range p {
		if i > 0 {
			s += " & "
		}
		s += fmt.Sprintf("[%d]&%#x==%#x", f.Offset, f.Mask, f.Value&f.Mask)
	}
	return s
}

// test is a DAG node: every pattern passing through it compares the
// same (offset, mask) and branches on the masked value.
type test struct {
	offset   int
	mask     uint32
	branches map[uint32]*node
}

// node is a point between tests: either a leaf, or a set of candidate
// tests to try in programming order.
type node struct {
	leaf  bool
	value Value
	tests []*test
}

// Stats counts classifier activity.
type Stats struct {
	Programmed   int
	Classified   uint64
	FieldTests   uint64
	Misses       uint64
	FragHits     uint64
	FragInstalls uint64
}

// Classifier is one PATHFINDER instance (one per board).
type Classifier struct {
	root  node
	frags map[uint32]Value
	Stats Stats
}

// New returns an empty classifier.
func New() *Classifier {
	return &Classifier{frags: make(map[uint32]Value)}
}

// ErrEmptyPattern is returned when programming a pattern with no fields.
var ErrEmptyPattern = errors.New("pathfinder: empty pattern")

// ErrDuplicate is returned when a pattern identical to an existing one
// is programmed with a different value.
var ErrDuplicate = errors.New("pathfinder: pattern already programmed")

// Program wires pat into the DAG, routing matches to v. Patterns
// programmed earlier win ties on overlapping matches.
func (c *Classifier) Program(pat Pattern, v Value) error {
	if len(pat) == 0 {
		return ErrEmptyPattern
	}
	n := &c.root
	for _, f := range pat {
		var tt *test
		for _, cand := range n.tests {
			if cand.offset == f.Offset && cand.mask == f.Mask {
				tt = cand
				break
			}
		}
		if tt == nil {
			tt = &test{offset: f.Offset, mask: f.Mask, branches: make(map[uint32]*node)}
			n.tests = append(n.tests, tt)
		}
		next := tt.branches[f.Value&f.Mask]
		if next == nil {
			next = &node{}
			tt.branches[f.Value&f.Mask] = next
		}
		n = next
	}
	if n.leaf && n.value != v {
		return ErrDuplicate
	}
	if !n.leaf {
		c.Stats.Programmed++
	}
	n.leaf = true
	n.value = v
	return nil
}

// Unprogram removes pat's leaf. It returns false if pat was never
// programmed. Shared interior nodes remain (the hardware reclaims them
// lazily; so do we — correctness does not depend on reclamation).
func (c *Classifier) Unprogram(pat Pattern) bool {
	n := &c.root
	for _, f := range pat {
		var tt *test
		for _, cand := range n.tests {
			if cand.offset == f.Offset && cand.mask == f.Mask {
				tt = cand
				break
			}
		}
		if tt == nil {
			return false
		}
		next := tt.branches[f.Value&f.Mask]
		if next == nil {
			return false
		}
		n = next
	}
	if !n.leaf {
		return false
	}
	n.leaf = false
	c.Stats.Programmed--
	return true
}

// word loads the 32-bit big-endian word at off, zero-padded past the
// end of the header (matching what the hardware sees on short cells).
func word(hdr []byte, off int) uint32 {
	var buf [4]byte
	for i := 0; i < 4; i++ {
		if off+i >= 0 && off+i < len(hdr) {
			buf[i] = hdr[off+i]
		}
	}
	return binary.BigEndian.Uint32(buf[:])
}

// Classify matches hdr against the DAG and returns the programmed
// value, the number of field tests performed, and whether anything
// matched. The search tries tests in programming order and follows the
// first branch whose subtree produces a match, so earlier-programmed
// patterns win overlaps.
func (c *Classifier) Classify(hdr []byte) (Value, int, bool) {
	c.Stats.Classified++
	tests := 0
	v, ok := classify(&c.root, hdr, &tests)
	c.Stats.FieldTests += uint64(tests)
	if !ok {
		c.Stats.Misses++
	}
	return v, tests, ok
}

func classify(n *node, hdr []byte, tests *int) (Value, bool) {
	if n.leaf {
		return n.value, true
	}
	for _, tt := range n.tests {
		*tests++
		next := tt.branches[word(hdr, tt.offset)&tt.mask]
		if next == nil {
			continue
		}
		if v, ok := classify(next, hdr, tests); ok {
			return v, ok
		}
	}
	return 0, false
}

// InstallFragmentFlow records that the remaining cells of the packet on
// vci route to v without header classification.
func (c *Classifier) InstallFragmentFlow(vci uint32, v Value) {
	c.frags[vci] = v
	c.Stats.FragInstalls++
}

// ClassifyFragment routes a non-first cell by its VCI flow state.
func (c *Classifier) ClassifyFragment(vci uint32) (Value, bool) {
	v, ok := c.frags[vci]
	if ok {
		c.Stats.FragHits++
	}
	return v, ok
}

// RemoveFragmentFlow tears down the per-packet flow state once the last
// cell has been routed.
func (c *Classifier) RemoveFragmentFlow(vci uint32) {
	delete(c.frags, vci)
}

// FragmentFlows reports how many transient flows are installed.
func (c *Classifier) FragmentFlows() int { return len(c.frags) }

package pathfinder

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// hdr builds a header with the given big-endian 32-bit words.
func hdr(words ...uint32) []byte {
	b := make([]byte, 4*len(words))
	for i, w := range words {
		binary.BigEndian.PutUint32(b[4*i:], w)
	}
	return b
}

func fullWord(off int, v uint32) Field {
	return Field{Offset: off, Mask: 0xffffffff, Value: v}
}

func TestProgramAndClassify(t *testing.T) {
	c := New()
	if err := c.Program(Pattern{fullWord(0, 0xAA), fullWord(4, 1)}, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.Program(Pattern{fullWord(0, 0xAA), fullWord(4, 2)}, 200); err != nil {
		t.Fatal(err)
	}
	v, _, ok := c.Classify(hdr(0xAA, 1))
	if !ok || v != 100 {
		t.Fatalf("got %d,%v want 100", v, ok)
	}
	v, _, ok = c.Classify(hdr(0xAA, 2))
	if !ok || v != 200 {
		t.Fatalf("got %d,%v want 200", v, ok)
	}
	if _, _, ok := c.Classify(hdr(0xAA, 3)); ok {
		t.Fatal("unprogrammed channel matched")
	}
	if _, _, ok := c.Classify(hdr(0xBB, 1)); ok {
		t.Fatal("wrong protocol matched")
	}
}

func TestPrefixSharingReducesTests(t *testing.T) {
	// 64 patterns sharing the first field: classification of any of
	// them must do ~2 field tests (one shared prefix test + one branch),
	// not 64.
	c := New()
	for i := uint32(0); i < 64; i++ {
		if err := c.Program(Pattern{fullWord(0, 0xAA), fullWord(4, i)}, Value(i)); err != nil {
			t.Fatal(err)
		}
	}
	v, tests, ok := c.Classify(hdr(0xAA, 37))
	if !ok || v != 37 {
		t.Fatalf("got %d,%v", v, ok)
	}
	if tests > 3 {
		t.Fatalf("classification took %d field tests; prefix sharing broken", tests)
	}
}

func TestMaskedMatch(t *testing.T) {
	c := New()
	// Match only the low byte of the second word.
	p := Pattern{{Offset: 4, Mask: 0x000000ff, Value: 0x42}}
	if err := c.Program(p, 7); err != nil {
		t.Fatal(err)
	}
	if v, _, ok := c.Classify(hdr(0xdeadbeef, 0xffffff42)); !ok || v != 7 {
		t.Fatalf("masked match failed: %d %v", v, ok)
	}
	if _, _, ok := c.Classify(hdr(0xdeadbeef, 0xffffff43)); ok {
		t.Fatal("masked mismatch matched")
	}
}

func TestFirstProgrammedWinsOverlap(t *testing.T) {
	c := New()
	// General pattern programmed first, specific second: the general one
	// wins because PATHFINDER tries patterns in programming order.
	if err := c.Program(Pattern{fullWord(0, 1)}, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Program(Pattern{{Offset: 0, Mask: 0xff, Value: 1}, fullWord(4, 9)}, 2); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := c.Classify(hdr(1, 9)); v != 1 {
		t.Fatalf("overlap resolved to %d, want first-programmed 1", v)
	}
}

func TestEmptyPatternRejected(t *testing.T) {
	c := New()
	if err := c.Program(nil, 1); err != ErrEmptyPattern {
		t.Fatalf("err = %v, want ErrEmptyPattern", err)
	}
}

func TestDuplicateConflictRejected(t *testing.T) {
	c := New()
	p := Pattern{fullWord(0, 5)}
	if err := c.Program(p, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Program(p, 1); err != nil {
		t.Fatalf("re-programming same value should be idempotent: %v", err)
	}
	if err := c.Program(p, 2); err != ErrDuplicate {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

func TestUnprogram(t *testing.T) {
	c := New()
	p := Pattern{fullWord(0, 0xAA), fullWord(4, 1)}
	q := Pattern{fullWord(0, 0xAA), fullWord(4, 2)}
	c.Program(p, 1)
	c.Program(q, 2)
	if !c.Unprogram(p) {
		t.Fatal("Unprogram returned false for a programmed pattern")
	}
	if _, _, ok := c.Classify(hdr(0xAA, 1)); ok {
		t.Fatal("unprogrammed pattern still matches")
	}
	if v, _, ok := c.Classify(hdr(0xAA, 2)); !ok || v != 2 {
		t.Fatal("sibling pattern damaged by Unprogram")
	}
	if c.Unprogram(p) {
		t.Fatal("double Unprogram returned true")
	}
	if c.Unprogram(Pattern{fullWord(8, 1)}) {
		t.Fatal("Unprogram of never-programmed pattern returned true")
	}
	if c.Stats.Programmed != 1 {
		t.Fatalf("Programmed = %d, want 1", c.Stats.Programmed)
	}
}

func TestShortHeaderZeroPadded(t *testing.T) {
	c := New()
	c.Program(Pattern{fullWord(8, 0)}, 3)
	// Header is only 4 bytes; offset 8 reads zeros.
	if v, _, ok := c.Classify(hdr(0x11)); !ok || v != 3 {
		t.Fatalf("short header match failed: %d %v", v, ok)
	}
}

func TestFragmentFlow(t *testing.T) {
	c := New()
	c.Program(Pattern{fullWord(0, 0xAA)}, 9)
	v, _, ok := c.Classify(hdr(0xAA))
	if !ok {
		t.Fatal("first cell did not classify")
	}
	c.InstallFragmentFlow(77, v)
	if got, ok := c.ClassifyFragment(77); !ok || got != 9 {
		t.Fatalf("fragment lookup = %d,%v", got, ok)
	}
	if _, ok := c.ClassifyFragment(78); ok {
		t.Fatal("unknown VCI matched a fragment flow")
	}
	c.RemoveFragmentFlow(77)
	if _, ok := c.ClassifyFragment(77); ok {
		t.Fatal("removed flow still matches")
	}
	if c.FragmentFlows() != 0 {
		t.Fatalf("FragmentFlows = %d, want 0", c.FragmentFlows())
	}
	if c.Stats.FragInstalls != 1 || c.Stats.FragHits != 1 {
		t.Fatalf("frag stats = %+v", c.Stats)
	}
}

func TestStats(t *testing.T) {
	c := New()
	c.Program(Pattern{fullWord(0, 1)}, 1)
	c.Classify(hdr(1))
	c.Classify(hdr(2))
	if c.Stats.Classified != 2 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	if c.Stats.FieldTests == 0 {
		t.Fatal("field tests not counted")
	}
}

func TestClassifyRoundTripProperty(t *testing.T) {
	// Property: any programmed (proto, chan) pair classifies back to its
	// own value; any pair not programmed does not match.
	f := func(pairs []uint16, probe uint16) bool {
		c := New()
		want := map[uint32]Value{}
		for i, p := range pairs {
			key := uint32(p) % 256
			if _, dup := want[key]; dup {
				continue
			}
			want[key] = Value(i + 1)
			if err := c.Program(Pattern{fullWord(0, 0x5050), fullWord(4, key)}, Value(i+1)); err != nil {
				return false
			}
		}
		k := uint32(probe) % 256
		v, _, ok := c.Classify(hdr(0x5050, k))
		expect, programmed := want[k]
		if programmed != ok {
			return false
		}
		return !ok || v == expect
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPatternString(t *testing.T) {
	p := Pattern{fullWord(0, 0xAA), {Offset: 4, Mask: 0xff, Value: 0x12}}
	s := p.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}

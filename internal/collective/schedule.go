package collective

// Schedules are pure functions of (rank, root, size) so that every node
// — and, on the CNI, every board — derives the identical communication
// pattern independently: there is no central coordinator to talk to,
// which is the point of offloading the collective in the first place.

// ispow2 reports whether n is a positive power of two.
func ispow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// DissemRounds returns the number of dissemination rounds for an n-node
// collective: ceil(log2 n), and 0 for a single node.
func DissemRounds(n int) int {
	r := 0
	for d := 1; d < n; d *= 2 {
		r++
	}
	return r
}

// DissemTo returns the node rank signals in dissemination round round.
func DissemTo(rank, round, n int) int {
	return (rank + 1<<round) % n
}

// DissemFrom returns the node rank combines from in round round.
func DissemFrom(rank, round, n int) int {
	d := 1 << round
	return ((rank-d)%n + n) % n
}

// TreeParent returns rank's parent in the binomial tree rooted at root,
// or -1 for the root itself. The tree is defined on relative ranks
// rr = (rank-root) mod n: a node's parent clears rr's lowest set bit.
func TreeParent(rank, root, n int) int {
	rr := (rank - root + n) % n
	if rr == 0 {
		return -1
	}
	return (rr&(rr-1) + root) % n
}

// TreeChildren returns rank's children in the binomial tree rooted at
// root, in ascending relative-rank order (the order subtree results are
// folded, so the reduction is associativity-deterministic).
func TreeChildren(rank, root, n int) []int {
	rr := (rank - root + n) % n
	var kids []int
	for mask := 1; mask < n; mask <<= 1 {
		if rr&mask != 0 {
			break
		}
		if c := rr + mask; c < n {
			kids = append(kids, (c+root)%n)
		}
	}
	return kids
}

// useDissem decides whether an episode runs the dissemination schedule
// (symmetric, no root) or the binomial tree. Rooted kinds are always
// trees. The dissemination all-reduce combines each contribution
// exactly once only when n is a power of two; otherwise it would
// double-count, so general n falls back to the tree.
func useDissem(kind Kind, dissemination bool, n int) bool {
	switch kind {
	case KindBarrier:
		return dissemination
	case KindAllReduce:
		return dissemination && ispow2(n)
	default:
		return false
	}
}

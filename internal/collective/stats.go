package collective

import (
	"fmt"
	"math/bits"
	"strings"

	"cni/internal/sim"
)

// Hist is a log2 latency histogram. It is a plain comparable value (no
// pointers, fixed-size bucket array) so whole Stats structs can be
// compared with == in determinism tests.
type Hist struct {
	Count   uint64
	Sum     uint64 // total cycles, for the mean
	Buckets [20]uint64
}

// Add records one latency sample in cycles.
func (h *Hist) Add(c sim.Time) {
	if c < 0 {
		c = 0
	}
	h.Count++
	h.Sum += uint64(c)
	i := bits.Len64(uint64(c))
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
}

// Merge folds o into h.
func (h *Hist) Merge(o Hist) {
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean reports the mean sample in cycles (0 when empty).
func (h Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// String renders the occupied buckets, e.g. "4k:12 8k:3" meaning 12
// samples in [4096,8192) cycles.
func (h Hist) String() string {
	var b strings.Builder
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		lo := uint64(0)
		if i > 0 {
			lo = 1 << (i - 1)
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		switch {
		case lo >= 1<<20:
			fmt.Fprintf(&b, "%dM:%d", lo>>20, c)
		case lo >= 1<<10:
			fmt.Fprintf(&b, "%dk:%d", lo>>10, c)
		default:
			fmt.Fprintf(&b, "%d:%d", lo, c)
		}
	}
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}

// Stats counts one node's collective activity. Comparable with == (see
// Hist).
type Stats struct {
	// Episodes is the number of collectives this node entered.
	Episodes uint64
	// BoardCombined counts contributions combined by an Application
	// Interrupt Handler in board memory — traffic that never crossed
	// the host bus.
	BoardCombined uint64
	// HostHandled counts contributions processed by host protocol code
	// (the standard interface, or a CNI with NICCollectives off).
	HostHandled uint64
	// Msgs is the number of schedule messages this node transmitted.
	Msgs uint64
	// Latency samples enter-to-release time per episode, in CPU cycles.
	Latency Hist
}

// Merge folds o into s (cluster-wide aggregation).
func (s *Stats) Merge(o Stats) {
	s.Episodes += o.Episodes
	s.BoardCombined += o.BoardCombined
	s.HostHandled += o.HostHandled
	s.Msgs += o.Msgs
	s.Latency.Merge(o.Latency)
}

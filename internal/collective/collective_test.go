package collective_test

import (
	"math"
	"testing"

	"cni/internal/collective"
	"cni/internal/config"
	"cni/internal/msgpass"
	"cni/internal/sim"
)

// configs returns the three interface modes the engine distinguishes:
// AIH combining on the board, the same CNI with collectives forced onto
// the host, and the standard interface.
func configs(topo config.CollTopo) map[string]config.Config {
	cni := config.Default()
	cni.CollTopology = topo
	cniHost := cni
	cniHost.NICCollectives = false
	std := config.Standard()
	std.CollTopology = topo
	return map[string]config.Config{"cni": cni, "cni-host": cniHost, "standard": std}
}

var topos = map[string]config.CollTopo{
	"dissemination": config.CollDissemination,
	"binomial":      config.CollBinomial,
}

func TestBarrierSynchronizesAllSizes(t *testing.T) {
	for tname, topo := range topos {
		for cname, cfg := range configs(topo) {
			for _, n := range []int{1, 2, 3, 5, 6, 7, 8, 12} {
				c := cfg
				f := mustFabric(&c, n)
				phase := make([]int, n)
				ok := true
				f.Run(func(ep *msgpass.Endpoint) {
					for it := 0; it < 4; it++ {
						ep.Compute(sim.Time(700 * (ep.Node() + 1)))
						phase[ep.Node()] = it
						ep.Barrier(0)
						for i := 0; i < n; i++ {
							if phase[i] != it {
								ok = false
							}
						}
						ep.Barrier(0)
					}
				})
				if !ok {
					t.Fatalf("%s/%s n=%d: barrier let a node run ahead", tname, cname, n)
				}
			}
		}
	}
}

func TestAllReduceValues(t *testing.T) {
	for tname, topo := range topos {
		for cname, cfg := range configs(topo) {
			for _, n := range []int{1, 2, 3, 4, 5, 7, 8, 16} {
				c := cfg
				f := mustFabric(&c, n)
				sums := make([]float64, n)
				maxs := make([]float64, n)
				f.Run(func(ep *msgpass.Endpoint) {
					v := float64(ep.Node() + 1)
					sums[ep.Node()] = ep.AllReduceF64(v, msgpass.OpSum)
					maxs[ep.Node()] = ep.AllReduceF64(v, msgpass.OpMax)
				})
				wantSum := float64(n*(n+1)) / 2
				for i := 0; i < n; i++ {
					if sums[i] != wantSum {
						t.Fatalf("%s/%s n=%d node %d: sum = %v, want %v", tname, cname, n, i, sums[i], wantSum)
					}
					if maxs[i] != float64(n) {
						t.Fatalf("%s/%s n=%d node %d: max = %v, want %v", tname, cname, n, i, maxs[i], float64(n))
					}
				}
			}
		}
	}
}

func TestReduceAndBroadcast(t *testing.T) {
	for cname, cfg := range configs(config.CollDissemination) {
		for _, n := range []int{1, 3, 4, 6} {
			for root := 0; root < n; root++ {
				c := cfg
				f := mustFabric(&c, n)
				var reduced float64
				bcast := make([]float64, n)
				f.Run(func(ep *msgpass.Endpoint) {
					r := ep.ReduceF64(root, float64(ep.Node()+1), msgpass.OpProd)
					if ep.Node() == root {
						reduced = r
					}
					bcast[ep.Node()] = ep.BroadcastF64(root, float64(100+root))
				})
				wantProd := 1.0
				for i := 1; i <= n; i++ {
					wantProd *= float64(i)
				}
				if reduced != wantProd {
					t.Fatalf("%s n=%d root=%d: reduce prod = %v, want %v", cname, n, root, reduced, wantProd)
				}
				for i := 0; i < n; i++ {
					if bcast[i] != float64(100+root) {
						t.Fatalf("%s n=%d root=%d node %d: broadcast = %v", cname, n, root, i, bcast[i])
					}
				}
			}
		}
	}
}

// TestNICHostBitIdentical pins the property FC1's comparison rests on:
// the NIC and host paths run the identical schedule, so floating-point
// reductions — where the fold order matters in the last ulp — give
// bit-identical results on every interface mode.
func TestNICHostBitIdentical(t *testing.T) {
	for tname, topo := range topos {
		for _, n := range []int{2, 3, 4, 7, 8} {
			var ref []uint64
			var refName string
			for cname, cfg := range configs(topo) {
				c := cfg
				f := mustFabric(&c, n)
				got := make([]uint64, n)
				f.Run(func(ep *msgpass.Endpoint) {
					// Values chosen so that a+b+c rounds differently from
					// a different association order.
					v := 0.1 + 1.0/float64(3*(ep.Node()+1))
					got[ep.Node()] = math.Float64bits(ep.AllReduceF64(v, msgpass.OpSum))
				})
				if ref == nil {
					ref, refName = got, cname
					continue
				}
				for i := 0; i < n; i++ {
					if got[i] != ref[i] {
						t.Fatalf("%s n=%d node %d: %s result %x != %s result %x",
							tname, n, i, cname, got[i], refName, ref[i])
					}
				}
			}
		}
	}
}

// TestBackToBackEpisodes races consecutive episodes: with staggered
// compute, a fast node's round-0 contribution to episode k+1 reaches a
// slow node still inside episode k, exercising the parking path.
func TestBackToBackEpisodes(t *testing.T) {
	for tname, topo := range topos {
		for cname, cfg := range configs(topo) {
			for _, n := range []int{3, 4, 8} {
				c := cfg
				f := mustFabric(&c, n)
				bad := -1.0
				f.Run(func(ep *msgpass.Endpoint) {
					for it := 0; it < 12; it++ {
						// No barrier between iterations: the only ordering
						// is the engine's own sequencing.
						ep.Compute(sim.Time(500 * ((ep.Node() + it) % n)))
						got := ep.AllReduceF64(float64(it), msgpass.OpSum)
						if got != float64(it*n) {
							bad = got
						}
					}
				})
				if bad >= 0 {
					t.Fatalf("%s/%s n=%d: cross-episode contamination, got %v", tname, cname, n, bad)
				}
			}
		}
	}
}

// TestAccounting pins where the work lands: AIH runs on the CNI with
// NICCollectives, host handlers otherwise.
func TestAccounting(t *testing.T) {
	run := func(cfg config.Config, n int) (*msgpass.Fabric, []collective.Stats) {
		f := mustFabric(&cfg, n)
		stats := make([]collective.Stats, n)
		f.Run(func(ep *msgpass.Endpoint) {
			for i := 0; i < 3; i++ {
				ep.Barrier(0)
				ep.AllReduceF64(1, msgpass.OpSum)
			}
			stats[ep.Node()] = ep.CollStats()
		})
		return f, stats
	}

	f, stats := run(config.Default(), 4)
	for i, s := range stats {
		if s.Episodes != 6 || s.Latency.Count != 6 {
			t.Fatalf("cni node %d: episodes=%d latency samples=%d, want 6", i, s.Episodes, s.Latency.Count)
		}
		if s.BoardCombined == 0 || s.HostHandled != 0 {
			t.Fatalf("cni node %d: BoardCombined=%d HostHandled=%d, want board-only", i, s.BoardCombined, s.HostHandled)
		}
		if f.Boards[i].Stats.AIHRuns == 0 || f.Boards[i].Stats.HostHandlers != 0 {
			t.Fatalf("cni board %d: AIHRuns=%d HostHandlers=%d, want AIH-only", i, f.Boards[i].Stats.AIHRuns, f.Boards[i].Stats.HostHandlers)
		}
	}

	f, stats = run(config.Standard(), 4)
	for i, s := range stats {
		if s.BoardCombined != 0 || s.HostHandled == 0 {
			t.Fatalf("standard node %d: BoardCombined=%d HostHandled=%d, want host-only", i, s.BoardCombined, s.HostHandled)
		}
		if f.Boards[i].Stats.AIHRuns != 0 || f.Boards[i].Stats.HostHandlers == 0 {
			t.Fatalf("standard board %d: AIHRuns=%d HostHandlers=%d, want host-only", i, f.Boards[i].Stats.AIHRuns, f.Boards[i].Stats.HostHandlers)
		}
	}
}

func TestSingleNodeCompletesImmediately(t *testing.T) {
	for _, cfg := range configs(config.CollDissemination) {
		c := cfg
		f := mustFabric(&c, 1)
		var sum float64
		var stats collective.Stats
		f.Run(func(ep *msgpass.Endpoint) {
			ep.Barrier(0)
			sum = ep.AllReduceF64(42, msgpass.OpSum)
			stats = ep.CollStats()
		})
		if sum != 42 {
			t.Fatalf("single-node allreduce = %v", sum)
		}
		if stats.Msgs != 0 {
			t.Fatalf("single-node collective sent %d messages", stats.Msgs)
		}
	}
}

// TestMismatchedProgramOrderPanics: the SPMD discipline is enforced,
// not silently mis-combined.
func TestMismatchedProgramOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched collective kinds did not panic")
		}
	}()
	cfg := config.Default()
	f := mustFabric(&cfg, 2)
	f.Run(func(ep *msgpass.Endpoint) {
		if ep.Node() == 0 {
			ep.Barrier(0)
		} else {
			ep.AllReduceF64(1, msgpass.OpSum)
		}
	})
}

func TestScheduleHelpers(t *testing.T) {
	if got := collective.DissemRounds(1); got != 0 {
		t.Fatalf("DissemRounds(1) = %d", got)
	}
	if got := collective.DissemRounds(5); got != 3 {
		t.Fatalf("DissemRounds(5) = %d", got)
	}
	// Every non-root node's parent must list it as a child, and the tree
	// must cover all n nodes exactly once.
	for _, n := range []int{1, 2, 3, 6, 8, 13} {
		for root := 0; root < n; root++ {
			seen := map[int]bool{root: true}
			for rank := 0; rank < n; rank++ {
				for _, c := range collective.TreeChildren(rank, root, n) {
					if seen[c] {
						t.Fatalf("n=%d root=%d: node %d has two parents", n, root, c)
					}
					seen[c] = true
					if p := collective.TreeParent(c, root, n); p != rank {
						t.Fatalf("n=%d root=%d: child %d of %d has parent %d", n, root, c, rank, p)
					}
				}
			}
			if len(seen) != n {
				t.Fatalf("n=%d root=%d: tree covers %d nodes", n, root, len(seen))
			}
		}
	}
}

// mustFabric builds a fabric the test knows is valid.
func mustFabric(cfg *config.Config, n int) *msgpass.Fabric {
	f, err := msgpass.NewFabric(cfg, n)
	if err != nil {
		panic(err)
	}
	return f
}

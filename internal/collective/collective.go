// Package collective is a collective-operations engine — barrier,
// broadcast, reduce, all-reduce — that runs its combining logic where
// the network interface allows. On the CNI with Config.NICCollectives
// set, every schedule message is classified by PATHFINDER into an
// Application Interrupt Handler: arriving contributions are combined in
// board memory by the receive processor and forwarded along the
// schedule without crossing the host bus or waking the host CPU — the
// NIC-based collective protocol of Yu et al. (PAPERS.md) expressed in
// the CNI's AIH mechanism. On the standard interface (or with the knob
// off) the *identical* schedule runs through host interrupts and host
// protocol handlers, so the two interfaces can be compared on exactly
// the same communication pattern (experiment FC1).
//
// Two schedules are provided: a dissemination exchange (shortest
// critical path, ceil(log2 n) rounds) and a binomial tree (reduce up,
// broadcast down). Rooted operations always use the tree; barriers
// follow Config.CollTopology; the dissemination all-reduce is only
// algebraically valid for power-of-two node counts and falls back to
// the tree otherwise.
//
// Nodes must issue their collectives in the same program order (the
// SPMD discipline): episodes match across the cluster by a per-node
// sequence number, and a kind or root mismatch between the arrivals of
// one episode panics rather than mis-combining.
package collective

import (
	"fmt"

	"cni/internal/config"
	"cni/internal/nic"
	"cni/internal/pathfinder"
	"cni/internal/sim"
	"cni/internal/trace"
)

// Protocol operations. Contributions travel "up" the schedule (or
// around the dissemination exchange); results travel back "down" a
// tree. One PATHFINDER pattern is programmed per (operation, kind)
// pair — the patterns share the op test as a DAG prefix, so a board
// serving every collective kind still classifies in near-constant
// work.
const (
	opContrib uint32 = 0x500
	opResult  uint32 = 0x501
)

// Kind is the collective operation type. It is carried in the header's
// Aux word so the classifier, not the handler, demultiplexes it.
type Kind int

const (
	KindBarrier Kind = iota
	KindBroadcast
	KindReduce
	KindAllReduce
	kindCount
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindBarrier:
		return "barrier"
	case KindBroadcast:
		return "broadcast"
	case KindReduce:
		return "reduce"
	case KindAllReduce:
		return "all-reduce"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ReduceOp is the combining operator. It is a fixed enumeration, not a
// closure: the handler runs in board firmware, which can apply a named
// operator but cannot be shipped arbitrary host code.
type ReduceOp int

const (
	OpSum ReduceOp = iota
	OpProd
	OpMin
	OpMax
)

// String implements fmt.Stringer.
func (o ReduceOp) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpProd:
		return "prod"
	case OpMin:
		return "min"
	case OpMax:
		return "max"
	default:
		return fmt.Sprintf("ReduceOp(%d)", int(o))
	}
}

func (o ReduceOp) apply(a, b float64) float64 {
	switch o {
	case OpSum:
		return a + b
	case OpProd:
		return a * b
	case OpMin:
		if b < a {
			return b
		}
		return a
	case OpMax:
		if b > a {
			return b
		}
		return a
	default:
		panic(fmt.Sprintf("collective: unknown ReduceOp %d", int(o)))
	}
}

// Done is invoked (in board or kernel-event context) when a node's
// episode releases: val is the collective result (the fold for reduce
// at its root and for all-reduce, the root's value for broadcast,
// meaningless for barrier) and payload the merged opaque payload.
type Done func(at sim.Time, val float64, payload any)

// contrib is the engine's wire message (nic.Message payload).
type contrib struct {
	kind    Kind
	seq     uint64
	root    int
	from    int
	round   int // dissemination round; -1 on tree edges
	val     float64
	payload any
	result  bool // downward tree result rather than a contribution
}

// Engine is the cluster-wide collective engine: one Node per board, all
// sharing the configuration and kernel.
type Engine struct {
	cfg   *config.Config
	k     *sim.Kernel
	nodes []*Node
	log   *trace.Log
}

// NewEngine returns an engine for the cluster described by cfg.
func NewEngine(cfg *config.Config, k *sim.Kernel) *Engine {
	return &Engine{cfg: cfg, k: k}
}

// EnableTrace routes episode events into l.
func (e *Engine) EnableTrace(l *trace.Log) { e.log = l }

// Size reports how many nodes are attached.
func (e *Engine) Size() int { return len(e.nodes) }

// Node returns the engine node for rank i.
func (e *Engine) Node(i int) *Node { return e.nodes[i] }

// Attach registers the engine's protocol on b and returns the per-node
// handle. Boards must be attached in rank order, before the simulation
// starts.
func (e *Engine) Attach(b *nic.Board) *Node {
	if b.Node() != len(e.nodes) {
		panic(fmt.Sprintf("collective: attach node %d out of order (have %d)", b.Node(), len(e.nodes)))
	}
	n := &Node{
		eng:   e,
		node:  b.Node(),
		board: b,
		eps:   make(map[uint64]*episode),
		aih:   e.cfg.NICCollectives && b.HandlersOnBoard(),
	}
	// One pattern per (op, kind): the kind lives in the Aux word at
	// header offset 12, so the board demultiplexes collective kinds
	// without the handler inspecting the message.
	for k := Kind(0); k < kindCount; k++ {
		f := []pathfinder.Field{{Offset: 12, Mask: 0xff000000, Value: uint32(k) << 24}}
		b.RegisterPattern(opContrib, f, n.aih, n.onMessage)
		b.RegisterPattern(opResult, f, n.aih, n.onMessage)
	}
	e.nodes = append(e.nodes, n)
	return n
}

// Node is one rank's collective engine state. On the CNI it models the
// episode table in board memory; on the standard interface the same
// table lives in the host protocol layer.
type Node struct {
	eng   *Engine
	node  int
	board *nic.Board
	aih   bool // handlers run on the board (CNI + NICCollectives)

	seq         uint64 // last locally-begun episode
	doneThrough uint64 // highest completed episode (bug guard)
	eps         map[uint64]*episode

	// Payload hooks: merge combines two opaque payloads (it must be
	// commutative and associative, and idempotent when barriers ride
	// the dissemination schedule on a non-power-of-two cluster, where
	// the same contribution can be merged through more than one path);
	// bytes reports a payload's wire size for timing.
	merge func(a, b any) any
	bytes func(p any) int

	Stats Stats
}

// episode is one collective instance in flight at one node.
type episode struct {
	kind Kind
	seq  uint64
	root int

	began     bool
	completed bool
	startAt   sim.Time
	op        ReduceOp
	val       float64
	payload   any
	done      Done

	// Dissemination state.
	dissem bool
	round  int              // next round to combine
	sent0  bool             // round-0 contribution transmitted
	got    map[int]*contrib // round -> parked contribution

	// Tree state.
	parent   int
	children []int
	kids     map[int]*contrib // child rank -> parked contribution
	upSent   bool
	downSent bool

	resultReady   bool
	resultVal     float64
	resultPayload any
}

// SetPayload installs the opaque-payload hooks (see Node fields).
func (n *Node) SetPayload(merge func(a, b any) any, bytes func(p any) int) {
	n.merge, n.bytes = merge, bytes
}

// Board exposes the node's board (tests, stats).
func (n *Node) Board() *nic.Board { return n.board }

// Begin enters the node into its next collective episode without
// blocking: done fires when the episode releases locally. The caller
// must be running on p (host context). All nodes must call Begin with
// the same kind/root/op sequence; val and payload are this rank's
// contribution.
//
// The host-side cost is one descriptor enqueue on the CNI (the board
// runs the schedule from there) or the protocol setup path on the
// standard interface (whose kernel also pays per forwarded message —
// see send).
func (n *Node) Begin(p *sim.Proc, kind Kind, root int, val float64, op ReduceOp, payload any, done Done) {
	cfg := n.eng.cfg
	if root < 0 || root >= len(n.eng.nodes) {
		panic(fmt.Sprintf("collective: root %d of %d nodes", root, len(n.eng.nodes)))
	}
	if n.board.UserLevelQueues() {
		p.Advance(cfg.NSToCycles(cfg.ADCSendNS))
	} else {
		p.Advance(cfg.NSToCycles(cfg.HostProtocolNS))
	}
	p.Sync()

	n.seq++
	ep := n.episode(kind, n.seq, root)
	if ep.began {
		panic(fmt.Sprintf("collective: node %d began episode %d twice", n.node, ep.seq))
	}
	ep.began = true
	ep.startAt = p.Local()
	ep.op = op
	ep.val = val
	ep.payload = payload
	ep.done = done
	n.Stats.Episodes++
	n.eng.log.Addf(p.Local(), n.node, "coll", "%s seq=%d begin root=%d", kind, ep.seq, root)
	n.step(ep, p.Local())
}

// episode returns the live episode for seq, creating it from the
// message or Begin parameters when this is the first sight of it. An
// episode created by an early arrival parks contributions until the
// local Begin.
func (n *Node) episode(kind Kind, seq uint64, root int) *episode {
	if ep := n.eps[seq]; ep != nil {
		if ep.kind != kind || ep.root != root {
			panic(fmt.Sprintf("collective: node %d episode %d mismatch: %s/root=%d vs %s/root=%d (collectives must be issued in the same order on every node)",
				n.node, seq, ep.kind, ep.root, kind, root))
		}
		return ep
	}
	if seq <= n.doneThrough {
		panic(fmt.Sprintf("collective: node %d message for completed episode %d", n.node, seq))
	}
	size := len(n.eng.nodes)
	ep := &episode{kind: kind, seq: seq, root: root, parent: -1}
	ep.dissem = useDissem(kind, n.eng.cfg.CollTopology == config.CollDissemination, size)
	if ep.dissem {
		ep.got = make(map[int]*contrib)
	} else {
		ep.parent = TreeParent(n.node, root, size)
		ep.children = TreeChildren(n.node, root, size)
		ep.kids = make(map[int]*contrib)
	}
	n.eps[seq] = ep
	return ep
}

// onMessage is the protocol handler — an Application Interrupt Handler
// on the CNI (receive-processor context, host asleep), a host handler
// behind an interrupt or poll otherwise.
func (n *Node) onMessage(at sim.Time, m *nic.Message) {
	c := m.Payload.(*contrib)
	if n.aih {
		n.Stats.BoardCombined++
	} else {
		n.Stats.HostHandled++
		if !n.board.ProtocolCharged() {
			// On a CNI with collectives left on the host, the protocol
			// code itself still runs on the host CPU (the other boards'
			// receive paths charge this inside nic).
			cost := n.eng.cfg.NSToCycles(n.eng.cfg.HostProtocolNS)
			n.board.PenalizeHost(cost)
			at += cost
		}
	}
	ep := n.episode(c.kind, c.seq, c.root)
	if c.result {
		ep.resultReady = true
		ep.resultVal = c.val
		ep.resultPayload = c.payload
	} else if ep.dissem {
		ep.got[c.round] = c
	} else {
		ep.kids[c.from] = c
	}
	n.step(ep, at)
}

// step advances the episode's schedule as far as the parked state
// allows; it is called after every local Begin and every arrival.
func (n *Node) step(ep *episode, at sim.Time) {
	if ep.completed {
		return
	}
	if ep.dissem {
		n.stepDissem(ep, at)
	} else if ep.kind == KindBroadcast {
		n.stepBroadcast(ep, at)
	} else {
		n.stepUpDown(ep, at)
	}
}

// stepDissem runs the dissemination exchange: in round r the node sends
// its accumulated contribution to rank+2^r and combines the one from
// rank-2^r. Combining is strictly in round order, so the fold order —
// and therefore the floating-point result — is a pure function of the
// schedule, identical on NIC and host paths.
func (n *Node) stepDissem(ep *episode, at sim.Time) {
	if !ep.began {
		return // contributions park until the local enter
	}
	size := len(n.eng.nodes)
	rounds := DissemRounds(size)
	if !ep.sent0 && rounds > 0 {
		ep.sent0 = true
		n.send(at, DissemTo(n.node, 0, size), ep, 0, ep.val, ep.payload, false)
	}
	for ep.round < rounds {
		c := ep.got[ep.round]
		if c == nil {
			return
		}
		delete(ep.got, ep.round)
		ep.val = ep.op.apply(ep.val, c.val)
		ep.payload = n.mergePayload(ep.payload, c.payload)
		ep.round++
		if ep.round < rounds {
			n.send(at, DissemTo(n.node, ep.round, size), ep, ep.round, ep.val, ep.payload, false)
		}
	}
	n.complete(ep, at)
}

// stepBroadcast runs the downward tree only: the root's value flows to
// the children; an interior board forwards before (and regardless of
// whether) its own host has entered the episode.
func (n *Node) stepBroadcast(ep *episode, at sim.Time) {
	if n.node == ep.root && ep.began && !ep.resultReady {
		ep.resultReady = true
		ep.resultVal = ep.val
		ep.resultPayload = ep.payload
	}
	if ep.resultReady && !ep.downSent {
		ep.downSent = true
		for _, c := range ep.children {
			n.send(at, c, ep, -1, ep.resultVal, ep.resultPayload, true)
		}
	}
	if ep.resultReady && ep.began {
		n.complete(ep, at)
	}
}

// stepUpDown runs the tree reduction (and, for barrier and all-reduce,
// the broadcast back down). Child contributions are parked and folded
// only once all have arrived — own value first, then children in
// ascending relative rank — so the fold order is deterministic no
// matter the arrival order, and NIC and host runs produce bit-identical
// floating-point results.
func (n *Node) stepUpDown(ep *episode, at sim.Time) {
	if !ep.upSent && ep.began {
		for _, c := range ep.children {
			if ep.kids[c] == nil {
				return
			}
		}
		acc, pay := ep.val, ep.payload
		for _, c := range ep.children {
			k := ep.kids[c]
			acc = ep.op.apply(acc, k.val)
			pay = n.mergePayload(pay, k.payload)
		}
		ep.val, ep.payload = acc, pay
		ep.upSent = true
		if ep.parent >= 0 {
			n.send(at, ep.parent, ep, -1, acc, pay, false)
			if ep.kind == KindReduce {
				// Off-root ranks are done once their subtree is folded
				// away; only the root holds the result.
				ep.resultVal, ep.resultPayload = acc, pay
				n.complete(ep, at)
				return
			}
		} else {
			ep.resultReady = true
			ep.resultVal, ep.resultPayload = acc, pay
			if ep.kind == KindReduce {
				n.complete(ep, at)
				return
			}
		}
	}
	if ep.resultReady && !ep.downSent {
		ep.downSent = true
		for _, c := range ep.children {
			n.send(at, c, ep, -1, ep.resultVal, ep.resultPayload, true)
		}
	}
	if ep.resultReady && ep.began {
		n.complete(ep, at)
	}
}

// complete releases the episode locally: record the latency, retire the
// state, and fire the continuation.
func (n *Node) complete(ep *episode, at sim.Time) {
	if ep.completed {
		return
	}
	ep.completed = true
	n.Stats.Latency.Add(at - ep.startAt)
	delete(n.eps, ep.seq)
	if ep.seq > n.doneThrough {
		n.doneThrough = ep.seq
	}
	n.eng.log.Addf(at, n.node, "coll", "%s seq=%d done val=%g lat=%d", ep.kind, ep.seq, ep.resultValue(), at-ep.startAt)
	if ep.done != nil {
		ep.done(at, ep.resultValue(), ep.resultOrAcc())
	}
}

func (ep *episode) resultValue() float64 {
	if ep.dissem {
		return ep.val
	}
	return ep.resultVal
}

func (ep *episode) resultOrAcc() any {
	if ep.dissem {
		return ep.payload
	}
	return ep.resultPayload
}

// send transmits one schedule message from board/handler context. On
// the CNI this is free for the host (the board forwards out of its own
// memory); on the standard interface nic.Board.SendAt charges the
// kernel send path to the host CPU, which is exactly the asymmetry FC1
// measures.
func (n *Node) send(at sim.Time, to int, ep *episode, round int, val float64, payload any, result bool) {
	op := opContrib
	if result {
		op = opResult
	}
	c := &contrib{
		kind: ep.kind, seq: ep.seq, root: ep.root, from: n.node,
		round: round, val: val, payload: payload, result: result,
	}
	n.Stats.Msgs++
	n.board.SendAt(at, &nic.Message{
		From: n.node, To: to, Op: op,
		Aux:     aux(ep.kind, ep.seq),
		Size:    nic.HeaderBytes + 16 + n.payloadBytes(payload),
		Payload: c,
	})
}

// aux packs the classifier's second word: kind in the top byte (what
// the per-kind patterns match) and the low bits of the sequence number
// for wire-level debugging.
func aux(k Kind, seq uint64) uint32 {
	return uint32(k)<<24 | uint32(seq&0xffffff)
}

func (n *Node) mergePayload(a, b any) any {
	if b == nil {
		return a
	}
	if a == nil {
		return b
	}
	if n.merge == nil {
		panic(fmt.Sprintf("collective: node %d payload without a merge hook", n.node))
	}
	return n.merge(a, b)
}

func (n *Node) payloadBytes(p any) int {
	if p == nil || n.bytes == nil {
		return 0
	}
	return n.bytes(p)
}

// --- Blocking wrappers (message-passing applications) ---

// Barrier blocks p until every node has entered the barrier.
func (n *Node) Barrier(p *sim.Proc) {
	n.run(p, KindBarrier, 0, 0, OpSum)
}

// AllReduce combines one float64 per node with op and returns the
// result on every node.
func (n *Node) AllReduce(p *sim.Proc, v float64, op ReduceOp) float64 {
	return n.run(p, KindAllReduce, 0, v, op)
}

// Reduce combines one float64 per node with op; the result is
// meaningful only at root (other ranks see their subtree's partial
// fold).
func (n *Node) Reduce(p *sim.Proc, root int, v float64, op ReduceOp) float64 {
	return n.run(p, KindReduce, root, v, op)
}

// Broadcast distributes root's v to every node.
func (n *Node) Broadcast(p *sim.Proc, root int, v float64) float64 {
	return n.run(p, KindBroadcast, root, v, OpSum)
}

// run is Begin + block-until-release. On the CNI the host learns of the
// release by finding the completion descriptor on its next poll and
// dequeues it at user level; on an interrupt-driven interface the
// waking handler already paid the notification, and boards with
// user-level queues still pay the receive-queue pop.
func (n *Node) run(p *sim.Proc, kind Kind, root int, v float64, op ReduceOp) float64 {
	wake := n.board.WakeDelay()
	var res float64
	n.Begin(p, kind, root, v, op, nil, func(at sim.Time, val float64, _ any) {
		res = val
		p.WakeAt(at + wake)
	})
	p.Block()
	if deq := n.board.RecvDequeueCost(); deq > 0 {
		p.Advance(deq)
	}
	p.Sync()
	return res
}

package apps

import (
	"testing"

	"cni/internal/apps/spmat"
	"cni/internal/config"
)

func BenchmarkCholeskyProf(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := config.Default()
		app := NewCholesky(spmat.BCSSTK14())
		MustExecute(&cfg, 8, app)
	}
}

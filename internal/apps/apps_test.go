package apps

import (
	"testing"

	"cni/internal/apps/spmat"
	"cni/internal/config"
)

func checkApp(t *testing.T, app App, kind config.NICKind, n int) int64 {
	t.Helper()
	cfg := config.ForNIC(kind)
	c, res := MustExecute(&cfg, n, app)
	if err := app.Verify(c); err != nil {
		t.Fatalf("%s on %d %v nodes: %v", app.Name(), n, kind, err)
	}
	if res.Time <= 0 {
		t.Fatalf("%s: no time elapsed", app.Name())
	}
	return int64(res.Time)
}

func TestJacobiCorrectAcrossNodeCounts(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		checkApp(t, NewJacobi(32, 4), config.NICCNI, n)
	}
}

func TestJacobiCorrectOnStandardNIC(t *testing.T) {
	checkApp(t, NewJacobi(32, 3), config.NICStandard, 4)
}

func TestJacobiSpeedsUp(t *testing.T) {
	t1 := checkApp(t, NewJacobi(128, 4), config.NICCNI, 1)
	t4 := checkApp(t, NewJacobi(128, 4), config.NICCNI, 4)
	if t4 >= t1 {
		t.Fatalf("4-node Jacobi (%d) not faster than 1-node (%d)", t4, t1)
	}
	speedup := float64(t1) / float64(t4)
	if speedup < 1.5 {
		t.Fatalf("4-node speedup %.2f implausibly low for a coarse-grained app", speedup)
	}
}

func TestJacobiCNIBeatsStandard(t *testing.T) {
	cni := checkApp(t, NewJacobi(128, 4), config.NICCNI, 4)
	std := checkApp(t, NewJacobi(128, 4), config.NICStandard, 4)
	if cni >= std {
		t.Fatalf("CNI Jacobi (%d) not faster than standard (%d)", cni, std)
	}
}

func TestJacobiDeterministic(t *testing.T) {
	a := checkApp(t, NewJacobi(32, 3), config.NICCNI, 4)
	b := checkApp(t, NewJacobi(32, 3), config.NICCNI, 4)
	if a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}

func TestWaterCorrectAcrossNodeCounts(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		checkApp(t, NewWater(24, 2), config.NICCNI, n)
	}
}

func TestWaterCorrectOnStandardNIC(t *testing.T) {
	checkApp(t, NewWater(24, 2), config.NICStandard, 3)
}

func TestWaterOddAndEvenMoleculeCounts(t *testing.T) {
	// The half-shell pairing has an even-M corner case; exercise both.
	checkApp(t, NewWater(16, 2), config.NICCNI, 2)
	checkApp(t, NewWater(17, 2), config.NICCNI, 2)
}

func TestWaterSpeedsUp(t *testing.T) {
	t1 := checkApp(t, NewWater(64, 2), config.NICCNI, 1)
	t4 := checkApp(t, NewWater(64, 2), config.NICCNI, 4)
	if float64(t1)/float64(t4) < 1.3 {
		t.Fatalf("4-node Water speedup %.2f too low", float64(t1)/float64(t4))
	}
}

func TestCholeskyCorrectAcrossNodeCounts(t *testing.T) {
	app := NewCholesky(spmat.Small(96))
	for _, n := range []int{1, 2, 4} {
		checkApp(t, NewCholesky(spmat.Small(96)), config.NICCNI, n)
	}
	_ = app
}

func TestCholeskyCorrectOnStandardNIC(t *testing.T) {
	checkApp(t, NewCholesky(spmat.Small(96)), config.NICStandard, 3)
}

func TestCholeskyDeterministic(t *testing.T) {
	a := checkApp(t, NewCholesky(spmat.Small(80)), config.NICCNI, 4)
	b := checkApp(t, NewCholesky(spmat.Small(80)), config.NICCNI, 4)
	if a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}

func TestCholeskySupernodeTasksCoverMatrix(t *testing.T) {
	ch := NewCholesky(spmat.Small(128))
	if ch.Supernodes() < 2 || ch.Supernodes() > ch.Sy.N {
		t.Fatalf("supernodes = %d of %d columns", ch.Supernodes(), ch.Sy.N)
	}
	covered := 0
	for s := 0; s < ch.Supernodes(); s++ {
		lo, hi := ch.colsOf(s)
		covered += int(hi - lo)
	}
	if covered != ch.Sy.N {
		t.Fatalf("supernodes cover %d of %d columns", covered, ch.Sy.N)
	}
}

func TestCholeskyUsesTaskBagAndLocks(t *testing.T) {
	cfg := config.Default()
	app := NewCholesky(spmat.Small(96))
	c, _ := MustExecute(&cfg, 4, app)
	if err := app.Verify(c); err != nil {
		t.Fatal(err)
	}
	var tasks, locks uint64
	for _, n := range c.Nodes {
		tasks += n.R.Stats.TasksTaken
		locks += n.R.Stats.LockOps
	}
	if tasks != uint64(app.Supernodes()) {
		t.Fatalf("tasks taken = %d, want %d", tasks, app.Supernodes())
	}
	if locks == 0 {
		t.Fatal("no column locks taken")
	}
}

func TestAppNames(t *testing.T) {
	if NewJacobi(128, 5).Name() != "jacobi-128x128" {
		t.Fatal("jacobi name")
	}
	if NewWater(216, 2).Name() != "water-216" {
		t.Fatal("water name")
	}
	if NewCholesky(spmat.Small(64)).Name() != "cholesky-small64" {
		t.Fatal("cholesky name")
	}
}

func TestCholeskyScheduleMathCloses(t *testing.T) {
	// Sequentially replay the fan-out schedule: every dependency
	// counter must reach exactly zero (no lost or duplicated units).
	ch := NewCholesky(spmat.BCSSTK14())
	cnt := append([]int64(nil), ch.nmod0...)
	var ready []int
	for s, c := range cnt {
		if c == 0 {
			ready = append(ready, s)
		}
	}
	done := 0
	for len(ready) > 0 {
		s := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		done++
		head, end := ch.colsOf(s)
		dec := map[int32]int64{}
		for j := head; j < end; j++ {
			for p := ch.Sy.ColPtr[j] + 1; p < ch.Sy.ColPtr[j+1]; p++ {
				si := ch.Sy.Super[ch.Sy.RowIdx[p]]
				if si < head || si >= end {
					dec[si]++
				}
			}
		}
		for si, d := range dec {
			idx := ch.headIdx[si]
			cnt[idx] -= d
			if cnt[idx] == 0 {
				ready = append(ready, idx)
			}
			if cnt[idx] < 0 {
				t.Fatalf("supernode %d counter went negative", idx)
			}
		}
	}
	if done != len(ch.heads) {
		t.Fatalf("schedule completed %d of %d supernodes", done, len(ch.heads))
	}
}

func TestCholeskyOracleAtScale(t *testing.T) {
	// Regression for the in-flight-notice race: a reply to an old page
	// request must not clear requirements noticed after the request.
	// The oracle cross-checks every shared dependency counter.
	if testing.Short() {
		t.Skip("several seconds")
	}
	cfg := config.Default()
	app := NewCholesky(spmat.Small(512))
	app.EnableOracle()
	c, _ := MustExecute(&cfg, 8, app)
	if err := app.Verify(c); err != nil {
		t.Fatal(err)
	}
}

func TestWaterConservesMomentum(t *testing.T) {
	// Forces are pairwise antisymmetric and initial velocities zero, so
	// total momentum must stay (numerically) zero — a physics invariant
	// that breaks if any force contribution is lost or double-applied
	// on its way through the locks.
	app := NewWater(32, 3)
	cfg := config.Default()
	c, _ := MustExecute(&cfg, 4, app)
	if err := app.Verify(c); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3; k++ {
		sum, mag := 0.0, 0.0
		for m := 0; m < app.M; m++ {
			v := c.ReadF64(app.base + m*molWords + 3 + k)
			sum += v
			if v < 0 {
				mag -= v
			} else {
				mag += v
			}
		}
		// Cancellation is exact in value but not in summation order;
		// the residual must be tiny relative to the momentum magnitude.
		tol := 1e-9 * (1 + mag)
		if sum > tol || sum < -tol {
			t.Fatalf("total momentum component %d = %g (magnitude %g), want ~0", k, sum, mag)
		}
	}
}

func TestJacobiPageSizeSensitivityShape(t *testing.T) {
	// The paper's F5 claim: the CNI is less sensitive to page size than
	// the standard interface. Compare the relative spread of execution
	// times across page sizes.
	spread := func(kind config.NICKind) float64 {
		lo, hi := int64(1<<62), int64(0)
		for _, ps := range []int{1024, 2048, 4096} {
			cfg := config.ForNIC(kind)
			cfg.PageBytes = ps
			_, res := MustExecute(&cfg, 4, NewJacobi(128, 6))
			v := int64(res.Time)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		return float64(hi-lo) / float64(lo)
	}
	cniSpread := spread(config.NICCNI)
	stdSpread := spread(config.NICStandard)
	if cniSpread > stdSpread*1.2 {
		t.Fatalf("CNI page-size spread %.3f worse than standard %.3f", cniSpread, stdSpread)
	}
}

func TestCholeskyHitRatioGrowsWithMessageCache(t *testing.T) {
	// F13's Cholesky story at small scale: a larger Message Cache holds
	// more of the factor's pages, so the hit ratio must not fall as the
	// cache grows and should clearly rise from tiny to large.
	ratios := []float64{}
	for _, sz := range []int{4 << 10, 32 << 10, 256 << 10} {
		cfg := config.Default()
		cfg.MessageCacheByte = sz
		app := NewCholesky(spmat.Small(192))
		_, res := MustExecute(&cfg, 4, app)
		ratios = append(ratios, res.HitRatio)
	}
	if ratios[2] < ratios[0] {
		t.Fatalf("hit ratio fell as the cache grew: %v", ratios)
	}
	if ratios[2] < 30 {
		t.Fatalf("large-cache hit ratio %v implausibly low", ratios[2])
	}
}

func TestJacobiEveryKindDeterministic(t *testing.T) {
	// The cross-kind acceptance gate: every registered interface model
	// runs Jacobi on 4 nodes to a verified result, bit-identical across
	// two same-seed runs; and the kinds are genuinely different models
	// (the CNI is the fastest, and no two kinds tie exactly).
	times := map[config.NICKind]int64{}
	for _, kind := range config.Kinds() {
		a := checkApp(t, NewJacobi(32, 4), kind, 4)
		b := checkApp(t, NewJacobi(32, 4), kind, 4)
		if a != b {
			t.Fatalf("%v: non-deterministic: %d vs %d", kind, a, b)
		}
		times[kind] = a
	}
	for _, kind := range config.Kinds() {
		if kind != config.NICCNI && times[config.NICCNI] >= times[kind] {
			t.Errorf("CNI Jacobi (%d) not faster than %v (%d)",
				times[config.NICCNI], kind, times[kind])
		}
	}
	if times[config.NICOsiris] == times[config.NICStandard] {
		t.Error("OSIRIS and standard produced identical times — models not distinct")
	}
}

package apps

import (
	"testing"

	"cni/internal/apps/spmat"
	"cni/internal/config"
)

func TestCholeskyOracleUpdateProtocol(t *testing.T) {
	// Regression for the eager-update write-ordering hazard: a push
	// sent before the home saw this node's own diff must not roll the
	// node's write back. The oracle cross-checks every shared
	// dependency counter against ground truth.
	cfg := config.Default()
	cfg.UpdateProtocol = true
	app := NewCholesky(spmat.Small(256))
	app.EnableOracle()
	c, _ := MustExecute(&cfg, 8, app)
	if err := app.Verify(c); err != nil {
		t.Fatal(err)
	}
}

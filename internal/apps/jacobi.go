package apps

import (
	"fmt"
	"math"

	"cni/internal/cluster"
	"cni/internal/dsm"
)

// Jacobi is the coarse-grained benchmark: iterative relaxation on an
// R x R grid with fixed boundary values, "each point in the strip
// iteratively calculated from the values of its neighbors" with two
// major synchronization points per iteration (Section 3.1). The
// update is the classic in-place red-black sweep: the red half-sweep
// recomputes points with even parity from their (black) neighbors,
// a barrier, then the black half-sweep, then a barrier. Rows are
// block-partitioned; a node's communication is its neighbors' boundary
// rows, the repeated page transfers the Message Cache absorbs.
type Jacobi struct {
	R     int // grid side (paper: 128, 256, 1024)
	Iters int

	// FlopCycles is the computation charge per relaxed point on top of
	// the memory-system costs of its five accesses.
	FlopCycles int64

	grid int // word base of the grid
}

// NewJacobi returns a Jacobi instance of side r. The per-point charge
// models the five-point update on an in-order 166 MHz pipeline: three
// FP adds, one multiply, the address arithmetic and loop control —
// the FP work dominates the cache-hit cost of the loads, which keeps
// the speedup curve from being driven purely by L2-fit effects.
func NewJacobi(r, iters int) *Jacobi {
	return &Jacobi{R: r, Iters: iters, FlopCycles: 40}
}

// Name implements App.
func (j *Jacobi) Name() string { return fmt.Sprintf("jacobi-%dx%d", j.R, j.R) }

// Setup allocates the grid and aligns page homes with the row
// partitioning (the owner of a row is the home of its pages).
func (j *Jacobi) Setup(g *dsm.Globals) {
	j.grid = g.Alloc(j.R * j.R)
	pageWords := g.PageWords()
	r := j.R
	g.SetHomeOf(func(page int32, n int) int {
		row := (int(page)*pageWords - j.grid) / r
		if row < 0 {
			row = 0
		}
		if row >= r {
			row = r - 1
		}
		return j.rowOwner(row, n)
	})
}

// rowOwner block-partitions interior rows 1..R-2 over n nodes.
func (j *Jacobi) rowOwner(row, n int) int {
	if row < 1 {
		row = 1
	}
	if row > j.R-2 {
		row = j.R - 2
	}
	interior := j.R - 2
	owner := (row - 1) * n / interior
	if owner >= n {
		owner = n - 1
	}
	return owner
}

// boundaryVal gives the fixed boundary value at (r, c).
func boundaryVal(r, c int) float64 {
	return math.Sin(float64(r)*0.1) + math.Cos(float64(c)*0.1)
}

// Init preloads the boundary and zero interior.
func (j *Jacobi) Init(c *cluster.Cluster) {
	r := j.R
	for i := 0; i < r; i++ {
		for k := 0; k < r; k++ {
			if i == 0 || k == 0 || i == r-1 || k == r-1 {
				c.PreloadF64(j.grid+i*r+k, boundaryVal(i, k))
			}
		}
	}
}

// rowRange returns this node's interior row range [lo, hi).
func (j *Jacobi) rowRange(node, n int) (int, int) {
	interior := j.R - 2
	lo := 1 + node*interior/n
	hi := 1 + (node+1)*interior/n
	return lo, hi
}

// sweep relaxes the points of one color in this node's rows.
func (j *Jacobi) sweep(w *dsm.Worker, lo, hi, color int) {
	r := j.R
	for row := lo; row < hi; row++ {
		base := j.grid + row*r
		start := 1 + (row+color+1)%2
		for col := start; col < r-1; col += 2 {
			v := 0.25 * (w.ReadF64(base+col-1) +
				w.ReadF64(base+col+1) +
				w.ReadF64(base-r+col) +
				w.ReadF64(base+r+col))
			w.WriteF64(base+col, v)
			w.Compute(j.FlopCycles)
		}
	}
}

// Body implements App: red half-sweep, barrier, black half-sweep,
// barrier — the two synchronization points per iteration.
func (j *Jacobi) Body(w *dsm.Worker) {
	lo, hi := j.rowRange(w.Node(), w.Nodes())
	for it := 0; it < j.Iters; it++ {
		j.sweep(w, lo, hi, 0)
		w.Barrier(2 * it)
		j.sweep(w, lo, hi, 1)
		w.Barrier(2*it + 1)
	}
}

// Verify recomputes the red-black relaxation sequentially and
// compares. Red-black sweeps are order-independent within a color, so
// the parallel result matches bit for bit.
func (j *Jacobi) Verify(c *cluster.Cluster) error {
	r := j.R
	a := make([]float64, r*r)
	for i := 0; i < r; i++ {
		for k := 0; k < r; k++ {
			if i == 0 || k == 0 || i == r-1 || k == r-1 {
				a[i*r+k] = boundaryVal(i, k)
			}
		}
	}
	for it := 0; it < j.Iters; it++ {
		for color := 0; color < 2; color++ {
			for i := 1; i < r-1; i++ {
				start := 1 + (i+color+1)%2
				for k := start; k < r-1; k += 2 {
					a[i*r+k] = 0.25 * (a[i*r+k-1] + a[i*r+k+1] + a[(i-1)*r+k] + a[(i+1)*r+k])
				}
			}
		}
	}
	for i := 0; i < r; i++ {
		for k := 0; k < r; k++ {
			got := c.ReadF64(j.grid + i*r + k)
			want := a[i*r+k]
			if got != want {
				return fmt.Errorf("jacobi: (%d,%d) = %g, want %g", i, k, got, want)
			}
		}
	}
	return nil
}

// Package apps implements the three distributed-shared-memory
// benchmark applications of the CNI paper's evaluation, spanning the
// granularity spectrum exactly as Section 3.1 describes:
//
//   - Jacobi — coarse-grained iterative relaxation on a square grid,
//     two synchronization points per iteration, high computation-to-
//     communication ratio;
//   - Water — medium-grained molecular dynamics in the style of the
//     SPLASH code, with the paper's modification of postponing
//     molecule updates to the end of each step, synchronized by
//     per-molecule locks and barriers;
//   - Cholesky — fine-grained supernodal sparse Cholesky
//     factorization, columns/supernodes handed out through a bag of
//     tasks and guarded by column locks, with heavy page migration.
//
// Every application is an App: it sizes the shared region, preloads
// the initial data image, runs the SPMD body, and verifies its result
// against a sequential reference.
package apps

import (
	"cni/internal/cluster"
	"cni/internal/config"
	"cni/internal/dsm"
)

// App is one benchmark application.
type App interface {
	// Name identifies the app and its input, e.g. "jacobi-1024".
	Name() string
	// Setup allocates the shared region; runs before the cluster wires.
	Setup(g *dsm.Globals)
	// Init preloads the initial memory image (untimed).
	Init(c *cluster.Cluster)
	// Body is the SPMD program every node runs.
	Body(w *dsm.Worker)
	// Verify checks the shared result against a sequential reference.
	Verify(c *cluster.Cluster) error
}

// Execute builds an n-node cluster for app and runs it end to end,
// returning the cluster (for Verify and post-mortem reads) and the
// run's metrics. An invalid configuration or a node count the selected
// topology cannot address is an error, mirroring cluster.New — config
// and node count are user input.
func Execute(cfg *config.Config, n int, app App) (*cluster.Cluster, *cluster.Result, error) {
	c, err := cluster.New(cfg, n, app.Setup)
	if err != nil {
		return nil, nil, err
	}
	app.Init(c)
	res := c.Run(app.Body)
	return c, res, nil
}

// MustExecute is Execute for callers whose configs are constructed
// from ForNIC defaults rather than user input (the experiment
// generators): a construction failure there is a programming error, so
// it panics.
func MustExecute(cfg *config.Config, n int, app App) (*cluster.Cluster, *cluster.Result) {
	c, res, err := Execute(cfg, n, app)
	if err != nil {
		panic(err)
	}
	return c, res
}

// NewClusterForDebug builds the cluster without running it (testing
// aid so instrumentation can be installed between Setup and Run).
func NewClusterForDebug(cfg *config.Config, n int, app App) *cluster.Cluster {
	c, err := cluster.New(cfg, n, app.Setup)
	if err != nil {
		panic(err)
	}
	return c
}

package apps

import (
	"fmt"
	"math"

	"cni/internal/cluster"
	"cni/internal/dsm"
)

// Water is the medium-grained benchmark, a SPLASH-style molecular
// dynamics step: O(n^2) pairwise short-range forces with a cutoff,
// computed by the half-shell method, with the paper's modification
// ([3] in the paper) of postponing molecule updates to the end of the
// iteration — each node accumulates force contributions privately and
// applies them under per-molecule locks, then barriers, then the owner
// integrates its own molecules. Run for 2 steps like the paper.
type Water struct {
	M     int // molecules (paper: 64, 216, 343)
	Steps int

	// PairCycles is the computation charge per evaluated pair;
	// IntegrateCycles per molecule integration.
	PairCycles      int64
	IntegrateCycles int64

	base int // word base of the molecule array
}

// molWords is the shared footprint of one molecule: position(3),
// velocity(3), force(3) and the remaining state of the SPLASH record
// (rounded to 24 words = 192 bytes).
const molWords = 24

// Cutoff radius squared for the force computation.
const waterCutoff2 = 6.25

// NewWater returns a Water instance with m molecules.
func NewWater(m, steps int) *Water {
	// A SPLASH Water pair interaction is a few hundred FLOPs (3x3 atom
	// distances, the potential and its gradient); the predictor-
	// corrector integration is likewise heavy.
	return &Water{M: m, Steps: steps, PairCycles: 700, IntegrateCycles: 400}
}

// Name implements App.
func (wa *Water) Name() string { return fmt.Sprintf("water-%d", wa.M) }

// Setup allocates the molecule array; the default block home
// distribution aligns homes with molecule ownership.
func (wa *Water) Setup(g *dsm.Globals) {
	wa.base = g.Alloc(wa.M * molWords)
}

// initPos places molecule i on a jittered cubic lattice.
func initPos(i int) (float64, float64, float64) {
	side := 1
	for side*side*side < i+1 {
		side++
	}
	x := i % side
	y := (i / side) % side
	z := i / (side * side)
	j := func(k int) float64 { return 0.1 * math.Sin(float64(i*7+k*13)) }
	return 1.8*float64(x) + j(0), 1.8*float64(y) + j(1), 1.8*float64(z) + j(2)
}

// Init preloads lattice positions and zero velocities/forces.
func (wa *Water) Init(c *cluster.Cluster) {
	for i := 0; i < wa.M; i++ {
		x, y, z := initPos(i)
		b := wa.base + i*molWords
		c.PreloadF64(b+0, x)
		c.PreloadF64(b+1, y)
		c.PreloadF64(b+2, z)
	}
}

// ownerOf block-partitions molecules over n nodes.
func (wa *Water) ownerOf(m, n int) int {
	o := m * n / wa.M
	if o >= n {
		o = n - 1
	}
	return o
}

// molRange is this node's owned molecule range [lo, hi).
func (wa *Water) molRange(node, n int) (int, int) {
	lo := node * wa.M / n
	hi := (node + 1) * wa.M / n
	return lo, hi
}

// ljForce computes the pair force between positions, zero beyond the
// cutoff.
func ljForce(xi, yi, zi, xj, yj, zj float64) (fx, fy, fz float64) {
	dx, dy, dz := xi-xj, yi-yj, zi-zj
	r2 := dx*dx + dy*dy + dz*dz
	if r2 >= waterCutoff2 || r2 == 0 {
		return 0, 0, 0
	}
	inv := 1.0 / r2
	inv3 := inv * inv * inv
	f := 24 * inv * (2*inv3*inv3 - inv3) * 1e-3
	return f * dx, f * dy, f * dz
}

// Body implements App.
func (wa *Water) Body(w *dsm.Worker) {
	node, n := w.Node(), w.Nodes()
	lo, hi := wa.molRange(node, n)
	acc := make([]float64, 3*wa.M) // private force accumulators
	touched := make([]bool, wa.M)

	bid := 0
	for step := 0; step < wa.Steps; step++ {
		// Phase 1: half-shell pair forces for owned molecules.
		for i := lo; i < hi; i++ {
			bi := wa.base + i*molWords
			xi := w.ReadF64(bi + 0)
			yi := w.ReadF64(bi + 1)
			zi := w.ReadF64(bi + 2)
			for d := 1; d <= wa.M/2; d++ {
				jm := (i + d) % wa.M
				if wa.M%2 == 0 && d == wa.M/2 && i >= wa.M/2 {
					break // each even-M antipodal pair counted once
				}
				bj := wa.base + jm*molWords
				fx, fy, fz := ljForce(xi, yi, zi,
					w.ReadF64(bj+0), w.ReadF64(bj+1), w.ReadF64(bj+2))
				w.Compute(wa.PairCycles)
				if fx == 0 && fy == 0 && fz == 0 {
					continue
				}
				acc[3*i+0] += fx
				acc[3*i+1] += fy
				acc[3*i+2] += fz
				acc[3*jm+0] -= fx
				acc[3*jm+1] -= fy
				acc[3*jm+2] -= fz
				touched[i] = true
				touched[jm] = true
			}
		}
		// Phase 2: postponed updates under per-molecule locks.
		for m := 0; m < wa.M; m++ {
			if !touched[m] {
				continue
			}
			bf := wa.base + m*molWords + 6
			w.Lock(m)
			w.WriteF64(bf+0, w.ReadF64(bf+0)+acc[3*m+0])
			w.WriteF64(bf+1, w.ReadF64(bf+1)+acc[3*m+1])
			w.WriteF64(bf+2, w.ReadF64(bf+2)+acc[3*m+2])
			w.Unlock(m)
			acc[3*m+0], acc[3*m+1], acc[3*m+2] = 0, 0, 0
			touched[m] = false
		}
		w.Barrier(bid)
		bid++
		// Phase 3: owners integrate their molecules.
		const dt = 0.005
		for m := lo; m < hi; m++ {
			b := wa.base + m*molWords
			for c := 0; c < 3; c++ {
				v := w.ReadF64(b+3+c) + dt*w.ReadF64(b+6+c)
				w.WriteF64(b+3+c, v)
				w.WriteF64(b+0+c, w.ReadF64(b+0+c)+dt*v)
				w.WriteF64(b+6+c, 0)
			}
			w.Compute(wa.IntegrateCycles)
		}
		w.Barrier(bid)
		bid++
	}
}

// Verify runs the same dynamics sequentially and compares positions
// (tolerantly: the parallel force accumulation order differs).
func (wa *Water) Verify(c *cluster.Cluster) error {
	pos := make([]float64, 3*wa.M)
	vel := make([]float64, 3*wa.M)
	force := make([]float64, 3*wa.M)
	for i := 0; i < wa.M; i++ {
		pos[3*i], pos[3*i+1], pos[3*i+2] = initPos(i)
	}
	for step := 0; step < wa.Steps; step++ {
		for i := 0; i < wa.M; i++ {
			for d := 1; d <= wa.M/2; d++ {
				jm := (i + d) % wa.M
				if wa.M%2 == 0 && d == wa.M/2 && i >= wa.M/2 {
					break
				}
				fx, fy, fz := ljForce(pos[3*i], pos[3*i+1], pos[3*i+2],
					pos[3*jm], pos[3*jm+1], pos[3*jm+2])
				force[3*i] += fx
				force[3*i+1] += fy
				force[3*i+2] += fz
				force[3*jm] -= fx
				force[3*jm+1] -= fy
				force[3*jm+2] -= fz
			}
		}
		const dt = 0.005
		for m := 0; m < wa.M; m++ {
			for k := 0; k < 3; k++ {
				vel[3*m+k] += dt * force[3*m+k]
				pos[3*m+k] += dt * vel[3*m+k]
				force[3*m+k] = 0
			}
		}
	}
	for m := 0; m < wa.M; m++ {
		b := wa.base + m*molWords
		for k := 0; k < 3; k++ {
			got := c.ReadF64(b + k)
			want := pos[3*m+k]
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				return fmt.Errorf("water: molecule %d coord %d = %.15g, want %.15g", m, k, got, want)
			}
		}
	}
	return nil
}

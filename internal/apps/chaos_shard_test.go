package apps

import (
	"fmt"
	"reflect"
	"testing"

	"cni/internal/atm"
	"cni/internal/config"
	"cni/internal/memsys"
	"cni/internal/nic"
	"cni/internal/sim"
)

// Chaos regression for the sharded kernel: board-level all-to-all
// traffic — the full NIC datapath with go-back-N reliability — on the
// multi-switch fabrics, under cell loss and reordering, must produce
// the identical run at every shard count: same per-node delivery
// trace, same fabric statistics, same reliability counters, from the
// same fault seed.

const chaosShardOp = 0x5353 // "SS"

// chaosShardRun drives paced all-to-all board traffic over a faulty
// fabric and returns the per-node arrival traces plus the folded
// fabric and reliability statistics. shards == 0 runs the plain
// single-kernel path.
func chaosShardRun(t *testing.T, topo string, shards int) ([][]sim.Time, atm.Stats, nic.RelStats) {
	t.Helper()
	cfg := config.ForNIC(config.NICCNI)
	cfg.Topology = topo
	cfg.FaultSeed = 2
	cfg.CellLossRate = 1e-3
	cfg.ReorderWindow = 3
	const n = 16
	const rounds = 12

	var net *atm.Network
	var ss *sim.ShardSet
	var err error
	if shards == 0 {
		k := sim.NewKernel()
		net, err = atm.New(k, &cfg, n)
	} else {
		net, ss, err = atm.NewSharded(&cfg, n, shards, sim.EngineCalendar)
	}
	if err != nil {
		t.Fatal(err)
	}

	boards := make([]*nic.Board, n)
	got := make([][]sim.Time, n)
	for i := 0; i < n; i++ {
		i := i
		b := nic.NewBoard(net.NodeKernel(i), &cfg, i, net, memsys.New(&cfg))
		b.MapPages(0x10000, 1<<16)
		b.Register(chaosShardOp, true, func(at sim.Time, m *nic.Message) {
			got[i] = append(got[i], at)
		})
		boards[i] = b
	}
	pace := cfg.SerializeCycles(nic.HeaderBytes + 512)
	for i := 0; i < n; i++ {
		i := i
		net.NodeKernel(i).Spawn(fmt.Sprintf("gen%d", i), func(p *sim.Proc) {
			for r := 0; r < rounds; r++ {
				dst := (i + 1 + r%(n-1)) % n
				if dst == i {
					p.Advance(pace)
					continue
				}
				p.Sync()
				boards[i].Send(p, &nic.Message{
					From: i, To: dst, Op: chaosShardOp,
					Size: nic.HeaderBytes + 512, VAddr: 0x10000, CacheTx: true,
				})
				p.Advance(pace)
			}
		})
	}
	if ss != nil {
		ss.Run()
	} else {
		net.NodeKernel(0).Run()
	}
	net.Finish()
	var rel nic.RelStats
	for i := 0; i < n; i++ {
		rel.Merge(boards[i].Stats.Rel)
	}
	return got, net.Stats, rel
}

// TestChaosShardedFabricBitIdentical is the sharded chaos gate on both
// multi-switch topologies: the lossy, reordering run is bit-identical
// between the plain kernel and shard counts 1 and 4 — and the faults
// genuinely fired, so the parity covers the retransmit machinery, not
// just clean traffic.
func TestChaosShardedFabricBitIdentical(t *testing.T) {
	for _, topo := range []string{config.TopoTorus, config.TopoClos} {
		t.Run(topo, func(t *testing.T) {
			wantTrace, wantNet, wantRel := chaosShardRun(t, topo, 0)
			if wantNet.Faults.CellsDropped == 0 {
				t.Fatalf("%s: no cells dropped — the chaos leg is not exercising faults", topo)
			}
			if wantRel.Retransmits == 0 {
				t.Fatalf("%s: drops occurred but nothing was retransmitted (%+v)", topo, wantRel)
			}
			for _, shards := range []int{1, 4} {
				gotTrace, gotNet, gotRel := chaosShardRun(t, topo, shards)
				if !reflect.DeepEqual(gotTrace, wantTrace) {
					t.Fatalf("%s shards=%d: delivery traces diverge from the plain kernel", topo, shards)
				}
				if gotNet != wantNet {
					t.Fatalf("%s shards=%d: fabric stats diverge:\n got %+v\nwant %+v", topo, shards, gotNet, wantNet)
				}
				if gotRel != wantRel {
					t.Fatalf("%s shards=%d: reliability stats diverge:\n got %+v\nwant %+v", topo, shards, gotRel, wantRel)
				}
			}
		})
	}
}

package apps

import (
	"math"
	"testing"

	"cni/internal/cluster"
	"cni/internal/config"
	"cni/internal/msgpass"
)

// Chaos regression: the full application stack — Jacobi over the DSM,
// and the FC1 collectives over msgpass — run on a fabric dropping one
// cell in ten thousand, across several fault seeds and both
// interfaces. The reliability layer must make the loss invisible to
// the computation: every run produces exactly the results of the
// lossless fabric, and the same seed reproduces bit-identical
// statistics.

const chaosLoss = 1e-4

func chaosJacobi(t *testing.T, kind config.NICKind, seed uint64, rate float64) *cluster.Result {
	t.Helper()
	cfg := config.ForNIC(kind)
	cfg.FaultSeed = seed
	cfg.CellLossRate = rate
	// Large enough that ~1e5 cells cross the fabric per run, so 1e-4
	// loss injects faults on every seed.
	app := NewJacobi(128, 6)
	c, res := MustExecute(&cfg, 4, app)
	if err := app.Verify(c); err != nil {
		t.Fatalf("%v seed %d loss %v: jacobi diverged from the sequential reference: %v",
			kind, seed, rate, err)
	}
	return res
}

func TestChaosJacobiSurvivesCellLoss(t *testing.T) {
	for _, kind := range []config.NICKind{config.NICCNI, config.NICStandard} {
		for _, seed := range []uint64{1, 2, 3} {
			res := chaosJacobi(t, kind, seed, chaosLoss)
			if res.Net.Faults.CellsDropped > 0 && res.Rel.Retransmits == 0 &&
				res.Rel.DupDiscards == 0 && res.Rel.DropsSeen == 0 {
				t.Fatalf("%v seed %d: cells were dropped but the reliability layer saw nothing", kind, seed)
			}
		}
	}
}

func TestChaosJacobiRecoversFromRealDrops(t *testing.T) {
	// The 1e-4 sweep above may legitimately see zero faults on this
	// workload's few thousand cells; this leg runs hot enough that
	// drops are certain, so the recovery machinery is provably on the
	// path the verified result came through.
	for _, kind := range []config.NICKind{config.NICCNI, config.NICStandard} {
		res := chaosJacobi(t, kind, 1, 1e-3)
		if res.Net.Faults.CellsDropped == 0 {
			t.Fatalf("%v: no cells dropped at 1e-3 loss", kind)
		}
		if res.Rel.Retransmits == 0 {
			t.Fatalf("%v: drops occurred but nothing was retransmitted (%+v)", kind, res.Rel)
		}
	}
}

func TestChaosJacobiSameSeedBitIdentical(t *testing.T) {
	a := chaosJacobi(t, config.NICCNI, 2, chaosLoss)
	b := chaosJacobi(t, config.NICCNI, 2, chaosLoss)
	if a.Time != b.Time {
		t.Fatalf("wall time %d vs %d across identical lossy runs", a.Time, b.Time)
	}
	if a.Net != b.Net {
		t.Fatalf("fabric stats differ across identical lossy runs:\n%+v\nvs\n%+v", a.Net, b.Net)
	}
	if a.Rel != b.Rel {
		t.Fatalf("reliability stats differ across identical lossy runs:\n%+v\nvs\n%+v", a.Rel, b.Rel)
	}
	for i := range a.PerNode {
		if a.PerNode[i] != b.PerNode[i] {
			t.Fatalf("node %d stats differ across identical lossy runs", i)
		}
	}
}

// chaosJacobiTopo is chaosJacobi on an explicit fabric topology; the
// 8-node run lands on a 2x2x2 torus, so most routes cross several
// switch edges and the injector draws on intermediate links too.
func chaosJacobiTopo(t *testing.T, topology string, seed uint64, rate float64) *cluster.Result {
	t.Helper()
	cfg := config.ForNIC(config.NICCNI)
	cfg.Topology = topology
	cfg.FaultSeed = seed
	cfg.CellLossRate = rate
	app := NewJacobi(128, 6)
	c, res := MustExecute(&cfg, 8, app)
	if err := app.Verify(c); err != nil {
		t.Fatalf("%s seed %d loss %v: jacobi diverged from the sequential reference: %v",
			topology, seed, rate, err)
	}
	return res
}

func TestChaosTorusJacobiSameSeedBitIdentical(t *testing.T) {
	// Fault injection on multi-hop torus routes: losses genuinely land
	// on intermediate fabric edges (not just the injection link), the
	// application still verifies, and the same seed reproduces the
	// whole run bit-identically.
	a := chaosJacobiTopo(t, config.TopoTorus, 2, 1e-3)
	b := chaosJacobiTopo(t, config.TopoTorus, 2, 1e-3)
	if a.Net.Faults.CellsDropped == 0 {
		t.Fatal("no cells dropped at 1e-3 loss on the torus")
	}
	if a.Net.HopCount <= a.Net.Messages {
		t.Fatalf("torus routes were not multi-hop: %d hops over %d messages",
			a.Net.HopCount, a.Net.Messages)
	}
	if a.Time != b.Time {
		t.Fatalf("wall time %d vs %d across identical lossy torus runs", a.Time, b.Time)
	}
	if a.Net != b.Net {
		t.Fatalf("fabric stats differ across identical lossy torus runs:\n%+v\nvs\n%+v", a.Net, b.Net)
	}
	if a.Rel != b.Rel {
		t.Fatalf("reliability stats differ across identical lossy torus runs:\n%+v\nvs\n%+v", a.Rel, b.Rel)
	}
	for i := range a.PerNode {
		if a.PerNode[i] != b.PerNode[i] {
			t.Fatalf("node %d stats differ across identical lossy torus runs", i)
		}
	}
}

func TestChaosCollectivesSurviveCellLoss(t *testing.T) {
	const n = 4
	const episodes = 16
	want := 0.0
	for i := 0; i < n; i++ {
		want += float64(i) * 1.5
	}
	for _, kind := range []config.NICKind{config.NICCNI, config.NICStandard} {
		for _, seed := range []uint64{1, 2, 3} {
			cfg := config.ForNIC(kind)
			cfg.FaultSeed = seed
			cfg.CellLossRate = chaosLoss
			f, ferr := msgpass.NewFabric(&cfg, n)
			if ferr != nil {
				panic(ferr)
			}
			bad := false
			f.Run(func(ep *msgpass.Endpoint) {
				for i := 0; i < episodes; i++ {
					got := ep.AllReduceF64(float64(ep.Node())*1.5, msgpass.OpSum)
					if math.Abs(got-want) > 1e-12 {
						bad = true
					}
					ep.Barrier(i)
				}
			})
			if bad {
				t.Fatalf("%v seed %d: all-reduce under loss disagrees with lossless value %v", kind, seed, want)
			}
		}
	}
}

// Package spmat provides the sparse-matrix substrate for the Cholesky
// benchmark: a deterministic generator of symmetric positive definite
// matrices shaped like the Harwell-Boeing structural engineering
// matrices the paper uses (bcsstk14, bcsstk15), a symbolic Cholesky
// factorization (elimination tree and fill-in), and a sequential
// numeric factorization used as the correctness reference for the
// parallel DSM version.
//
// The real bcsstk files are not redistributable here, so BCSSTK14 and
// BCSSTK15 are synthetic stand-ins matched in order and nonzero count
// (1806/~32.6k and 3948/~60.9k stored entries): banded skeletons with
// clustered off-band blocks, the profile structure that gives these
// problems their supernodal character. DESIGN.md records this
// substitution.
package spmat

import (
	"fmt"
	"math"
	"sort"

	"cni/internal/sim"
)

// Sym is a sparse symmetric matrix in lower-triangular CSC form:
// column j's stored entries are the rows >= j.
type Sym struct {
	N      int
	ColPtr []int32 // len N+1
	RowIdx []int32 // len nnz, sorted within each column, first entry is j
	Val    []float64
	Name   string
}

// NNZ reports the stored (lower triangle) nonzero count.
func (s *Sym) NNZ() int { return len(s.RowIdx) }

// Col returns the row indices and values of column j.
func (s *Sym) Col(j int) ([]int32, []float64) {
	lo, hi := s.ColPtr[j], s.ColPtr[j+1]
	return s.RowIdx[lo:hi], s.Val[lo:hi]
}

// Gen describes a synthetic structural-engineering-style matrix.
type Gen struct {
	Name     string
	N        int
	Band     int     // half bandwidth of the dense-ish band
	BandFill float64 // fraction of band positions present
	Blocks   int     // number of off-band coupling blocks
	BlockDim int     // rows/cols per coupling block
	Seed     uint64
}

// BCSSTK14 is the stand-in for the 1806-node roof of the Omni Coliseum
// (bcsstk14: n=1806, ~32.6k stored nonzeros).
func BCSSTK14() Gen {
	return Gen{Name: "bcsstk14", N: 1806, Band: 40, BandFill: 0.85, Blocks: 60, BlockDim: 6, Seed: 14}
}

// BCSSTK15 is the stand-in for the 3948-node offshore platform module
// (bcsstk15: n=3948, ~60.9k stored nonzeros... the generator targets
// the same order and a comparable profile).
func BCSSTK15() Gen {
	return Gen{Name: "bcsstk15", N: 3948, Band: 52, BandFill: 0.62, Blocks: 130, BlockDim: 6, Seed: 15}
}

// Small returns a small matrix for tests and -quick runs.
func Small(n int) Gen {
	return Gen{Name: fmt.Sprintf("small%d", n), N: n, Band: 8, BandFill: 0.5, Blocks: n / 32, BlockDim: 3, Seed: uint64(n)}
}

// Build generates the matrix. The result is symmetric positive
// definite by construction (strict diagonal dominance).
func (g Gen) Build() *Sym {
	rng := sim.NewRNG(g.Seed*0x9e37 + 12345)
	cols := make([]map[int32]float64, g.N)
	for j := range cols {
		cols[j] = map[int32]float64{int32(j): 0} // diagonal placeholder
	}
	put := func(i, j int32, v float64) {
		if i == j {
			return
		}
		if i < j {
			i, j = j, i
		}
		if int(i) >= g.N {
			return
		}
		cols[j][i] = v
	}
	// Dense-ish band: the discretized elements along the structure.
	for j := 0; j < g.N; j++ {
		for d := 1; d <= g.Band; d++ {
			i := j + d
			if i >= g.N {
				break
			}
			if rng.Float64() < g.BandFill/(1+float64(d)/16) {
				put(int32(i), int32(j), -1+2*rng.Float64())
			}
		}
	}
	// Off-band coupling blocks: braces and ties between distant nodes.
	for b := 0; b < g.Blocks; b++ {
		r0 := rng.Intn(g.N)
		c0 := rng.Intn(g.N)
		for x := 0; x < g.BlockDim; x++ {
			for y := 0; y < g.BlockDim; y++ {
				put(int32(r0+x), int32(c0+y), -1+2*rng.Float64())
			}
		}
	}
	// Assemble CSC (sorted, so every downstream float accumulation is
	// order-deterministic) and make the result diagonally dominant.
	sorted := make([][]int32, g.N)
	for j := 0; j < g.N; j++ {
		rows := make([]int32, 0, len(cols[j]))
		for i := range cols[j] {
			rows = append(rows, i)
		}
		sort.Slice(rows, func(a, b int) bool { return rows[a] < rows[b] })
		sorted[j] = rows
	}
	rowSum := make([]float64, g.N)
	for j := 0; j < g.N; j++ {
		for _, i := range sorted[j] {
			if i != int32(j) {
				av := math.Abs(cols[j][i])
				rowSum[j] += av
				rowSum[i] += av
			}
		}
	}
	s := &Sym{N: g.N, Name: g.Name}
	s.ColPtr = make([]int32, g.N+1)
	for j := 0; j < g.N; j++ {
		s.ColPtr[j] = int32(len(s.RowIdx))
		for _, i := range sorted[j] {
			v := cols[j][i]
			if i == int32(j) {
				v = rowSum[j]*1.1 + 4 // strict dominance -> SPD
			}
			s.RowIdx = append(s.RowIdx, i)
			s.Val = append(s.Val, v)
		}
	}
	s.ColPtr[g.N] = int32(len(s.RowIdx))
	return s
}

// Symbolic is the result of symbolic factorization: the structure of
// the Cholesky factor L (with fill-in) and the elimination tree.
type Symbolic struct {
	N      int
	Parent []int32 // elimination tree; -1 at roots
	ColPtr []int32 // L's column pointers
	RowIdx []int32 // L's row indices, sorted, first entry of column j is j
	// Super[j] is the first column of the supernode containing j:
	// maximal runs of columns with nested structure.
	Super []int32
}

// NNZ reports the nonzero count of L.
func (sy *Symbolic) NNZ() int { return len(sy.RowIdx) }

// Col returns the row indices of L's column j.
func (sy *Symbolic) Col(j int) []int32 {
	return sy.RowIdx[sy.ColPtr[j]:sy.ColPtr[j+1]]
}

// Analyze computes the elimination tree and the full fill pattern of
// the Cholesky factor (classic row-merge symbolic factorization), then
// identifies supernodes.
func Analyze(a *Sym) *Symbolic {
	n := a.N
	sy := &Symbolic{N: n}
	sy.Parent = make([]int32, n)

	// Column structures of L, built column by column: struct(L_j) =
	// struct(A_j) U union of children's structs (minus their heads).
	structs := make([][]int32, n)
	children := make([][]int32, n)
	for j := 0; j < n; j++ {
		rows, _ := a.Col(j)
		set := map[int32]bool{}
		for _, i := range rows {
			if i >= int32(j) {
				set[i] = true
			}
		}
		for _, c := range children[j] {
			for _, i := range structs[c] {
				if i > int32(j) {
					set[i] = true
				}
			}
		}
		set[int32(j)] = true
		col := make([]int32, 0, len(set))
		for i := range set {
			col = append(col, i)
		}
		sort.Slice(col, func(x, y int) bool { return col[x] < col[y] })
		structs[j] = col
		sy.Parent[j] = -1
		if len(col) > 1 {
			p := col[1] // first off-diagonal row = etree parent
			sy.Parent[j] = p
			children[p] = append(children[p], int32(j))
		}
	}
	sy.ColPtr = make([]int32, n+1)
	for j := 0; j < n; j++ {
		sy.ColPtr[j] = int32(len(sy.RowIdx))
		sy.RowIdx = append(sy.RowIdx, structs[j]...)
	}
	sy.ColPtr[n] = int32(len(sy.RowIdx))

	// Supernodes: column j joins j-1's supernode when parent(j-1) == j
	// and struct(j) == struct(j-1) minus its head.
	sy.Super = make([]int32, n)
	for j := 0; j < n; j++ {
		sy.Super[j] = int32(j)
		if j == 0 {
			continue
		}
		prev := structs[j-1]
		cur := structs[j]
		if sy.Parent[j-1] == int32(j) && len(prev) == len(cur)+1 {
			same := true
			for k := 1; k < len(prev); k++ {
				if prev[k] != cur[k-1] {
					same = false
					break
				}
			}
			if same {
				sy.Super[j] = sy.Super[j-1]
			}
		}
	}
	return sy
}

// Factor computes the numeric Cholesky factor sequentially (left-
// looking, full fill structure) and returns L's values aligned with
// sy.RowIdx. It is the reference the parallel DSM factorization is
// checked against.
func Factor(a *Sym, sy *Symbolic) []float64 {
	n := a.N
	lval := make([]float64, sy.NNZ())
	// Scatter A into L's structure.
	pos := make(map[int64]int32, sy.NNZ())
	key := func(i, j int32) int64 { return int64(j)<<32 | int64(i) }
	for j := 0; j < n; j++ {
		for p := sy.ColPtr[j]; p < sy.ColPtr[j+1]; p++ {
			pos[key(sy.RowIdx[p], int32(j))] = p
		}
		rows, vals := a.Col(j)
		for k, i := range rows {
			lval[pos[key(i, int32(j))]] = vals[k]
		}
	}
	// Right-looking factorization over the fill structure.
	for j := 0; j < n; j++ {
		d := lval[sy.ColPtr[j]]
		if d <= 0 {
			panic(fmt.Sprintf("spmat: matrix %s not positive definite at column %d (pivot %g)", a.Name, j, d))
		}
		d = math.Sqrt(d)
		lval[sy.ColPtr[j]] = d
		for p := sy.ColPtr[j] + 1; p < sy.ColPtr[j+1]; p++ {
			lval[p] /= d
		}
		// Update every column i in struct(j) with the outer product.
		for p := sy.ColPtr[j] + 1; p < sy.ColPtr[j+1]; p++ {
			i := sy.RowIdx[p]
			lij := lval[p]
			for q := p; q < sy.ColPtr[j+1]; q++ {
				r := sy.RowIdx[q]
				t, ok := pos[key(r, i)]
				if !ok {
					panic(fmt.Sprintf("spmat: fill pattern missing (%d,%d)", r, i))
				}
				lval[t] -= lij * lval[q]
			}
		}
	}
	return lval
}

package spmat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBuildIsSymmetricLowerCSC(t *testing.T) {
	s := Small(128).Build()
	if s.N != 128 {
		t.Fatalf("N = %d", s.N)
	}
	for j := 0; j < s.N; j++ {
		rows, _ := s.Col(j)
		if len(rows) == 0 || rows[0] != int32(j) {
			t.Fatalf("column %d does not start at its diagonal", j)
		}
		for k := 1; k < len(rows); k++ {
			if rows[k] <= rows[k-1] {
				t.Fatalf("column %d rows not strictly ascending", j)
			}
			if rows[k] >= int32(s.N) {
				t.Fatalf("column %d row %d out of range", j, rows[k])
			}
		}
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	a := BCSSTK14().Build()
	b := BCSSTK14().Build()
	if a.NNZ() != b.NNZ() {
		t.Fatal("generator not deterministic")
	}
	for i := range a.Val {
		if a.Val[i] != b.Val[i] || a.RowIdx[i] != b.RowIdx[i] {
			t.Fatal("generator not deterministic")
		}
	}
}

func TestBCSSTKShapesMatchPaper(t *testing.T) {
	a14 := BCSSTK14().Build()
	if a14.N != 1806 {
		t.Fatalf("bcsstk14 order = %d, want 1806", a14.N)
	}
	// Target ~32.6k stored nonzeros; accept a generous band since the
	// generator is stochastic in structure.
	if a14.NNZ() < 20_000 || a14.NNZ() > 45_000 {
		t.Fatalf("bcsstk14 nnz = %d, want ~32.6k", a14.NNZ())
	}
	a15 := BCSSTK15().Build()
	if a15.N != 3948 {
		t.Fatalf("bcsstk15 order = %d, want 3948", a15.N)
	}
	if a15.NNZ() < 40_000 || a15.NNZ() > 90_000 {
		t.Fatalf("bcsstk15 nnz = %d, want ~61k", a15.NNZ())
	}
	if a15.NNZ() <= a14.NNZ() {
		t.Fatal("bcsstk15 must be denser than bcsstk14")
	}
}

func TestAnalyzeSupersetsA(t *testing.T) {
	a := Small(200).Build()
	sy := Analyze(a)
	if sy.NNZ() < a.NNZ() {
		t.Fatalf("L nnz %d < A nnz %d: fill cannot shrink", sy.NNZ(), a.NNZ())
	}
	for j := 0; j < a.N; j++ {
		lrows := sy.Col(j)
		if lrows[0] != int32(j) {
			t.Fatalf("L column %d missing diagonal", j)
		}
		set := map[int32]bool{}
		for _, i := range lrows {
			set[i] = true
		}
		arows, _ := a.Col(j)
		for _, i := range arows {
			if !set[i] {
				t.Fatalf("L column %d lost A entry at row %d", j, i)
			}
		}
	}
}

func TestEliminationTreeShape(t *testing.T) {
	a := Small(200).Build()
	sy := Analyze(a)
	roots := 0
	for j := 0; j < a.N; j++ {
		p := sy.Parent[j]
		if p == -1 {
			roots++
			continue
		}
		if p <= int32(j) {
			t.Fatalf("parent(%d) = %d not above the column", j, p)
		}
	}
	if roots == 0 {
		t.Fatal("no roots in the elimination tree")
	}
}

func TestSupernodesAreRuns(t *testing.T) {
	a := BCSSTK14().Build()
	sy := Analyze(a)
	super := 0
	for j := 0; j < a.N; j++ {
		if sy.Super[j] == int32(j) {
			super++
		}
		if sy.Super[j] > int32(j) {
			t.Fatalf("Super[%d] = %d in the future", j, sy.Super[j])
		}
		if j > 0 && sy.Super[j] != int32(j) && sy.Super[j] != sy.Super[j-1] {
			t.Fatalf("supernode of %d not a contiguous run", j)
		}
	}
	if super == a.N {
		t.Fatal("no amalgamation at all; banded matrices must form supernodes")
	}
	if super < 2 {
		t.Fatal("implausibly few supernodes")
	}
}

// residual computes max |A - L L^T| over A's stored pattern.
func residual(a *Sym, sy *Symbolic, lval []float64) float64 {
	// Dense accumulation is fine at test sizes.
	l := make([][]float64, a.N)
	for i := range l {
		l[i] = make([]float64, a.N)
	}
	for j := 0; j < a.N; j++ {
		for p := sy.ColPtr[j]; p < sy.ColPtr[j+1]; p++ {
			l[sy.RowIdx[p]][j] = lval[p]
		}
	}
	worst := 0.0
	for j := 0; j < a.N; j++ {
		rows, vals := a.Col(j)
		for k, i := range rows {
			sum := 0.0
			for t := 0; t <= j; t++ {
				sum += l[i][t] * l[j][t]
			}
			if d := math.Abs(sum - vals[k]); d > worst {
				worst = d
			}
		}
	}
	return worst
}

func TestFactorReproducesA(t *testing.T) {
	a := Small(150).Build()
	sy := Analyze(a)
	lval := Factor(a, sy)
	if r := residual(a, sy, lval); r > 1e-8 {
		t.Fatalf("||A - LL^T|| = %g", r)
	}
	// Diagonal of L must be positive.
	for j := 0; j < a.N; j++ {
		if lval[sy.ColPtr[j]] <= 0 {
			t.Fatalf("L(%d,%d) = %g", j, j, lval[sy.ColPtr[j]])
		}
	}
}

func TestFactorPropertyOverSizes(t *testing.T) {
	f := func(seed uint8) bool {
		n := 40 + int(seed)%80
		a := Small(n).Build()
		sy := Analyze(a)
		lval := Factor(a, sy)
		return residual(a, sy, lval) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

package apps

import (
	"fmt"
	"math"
	"sort"

	"cni/internal/apps/spmat"
	"cni/internal/cluster"
	"cni/internal/dsm"
)

// Cholesky is the fine-grained benchmark: right-looking supernodal
// sparse Cholesky factorization of a synthetic bcsstk-style SPD
// matrix. Supernodes (maximal runs of columns with nested structure)
// are the schedulable tasks, handed out through the bag-of-tasks;
// cross-supernode column updates are serialized by per-supernode
// locks, and a supernode enters the bag when its last external update
// lands (fan-out scheduling). Pages of the factor migrate from
// releaser to acquirer constantly, which is why the paper calls out
// receive caching as the big win here.
type Cholesky struct {
	Gen spmat.Gen

	A  *spmat.Sym
	Sy *spmat.Symbolic

	// Cost charges.
	UpdateCycles int64 // per modified entry beyond the memory accesses
	DivCycles    int64 // per scaled entry in cdiv
	SearchCycles int64 // per binary-search probe

	lvalBase int // word base of L's values
	nmodBase int // word base of the per-supernode dependency counters

	heads   []int32       // supernode head columns, ascending
	headIdx map[int32]int // head column -> dense supernode index
	nmod0   []int64       // initial external-update counts per supernode

	// oracle, when non-nil, cross-checks the shared dependency
	// counters against ground truth (debug builds of the tests).
	oracle       []int64
	traceCounter int
}

// EnableOracle turns on the counter cross-check (testing aid).
func (ch *Cholesky) EnableOracle() {
	ch.oracle = append([]int64(nil), ch.nmod0...)
	ch.traceCounter = -1
}

// TraceCounter prints every touch of one dependency counter (debug).
func (ch *Cholesky) TraceCounter(s int) { ch.traceCounter = s }

// NewCholesky builds the matrix and its symbolic factorization.
func NewCholesky(gen spmat.Gen) *Cholesky {
	// Per-entry charges for an in-order 166 MHz FP pipeline: a cmod
	// entry is a multiply-subtract plus two indirect loads and a store
	// through the sparse index structure; cdiv adds a divide. These
	// track the computation/communication balance the paper's Table 4
	// reports (computation is a quarter of the 8-processor total).
	ch := &Cholesky{Gen: gen, UpdateCycles: 32, DivCycles: 80, SearchCycles: 2}
	ch.A = gen.Build()
	ch.Sy = spmat.Analyze(ch.A)
	ch.heads = nil
	ch.headIdx = make(map[int32]int)
	for j := 0; j < ch.Sy.N; j++ {
		if ch.Sy.Super[j] == int32(j) {
			ch.headIdx[int32(j)] = len(ch.heads)
			ch.heads = append(ch.heads, int32(j))
		}
	}
	// Count external updates per supernode: one per (source column j,
	// target column i) pair with super(i) != super(j).
	ch.nmod0 = make([]int64, len(ch.heads))
	for j := 0; j < ch.Sy.N; j++ {
		sj := ch.Sy.Super[j]
		for _, i := range ch.Sy.Col(j)[1:] {
			si := ch.Sy.Super[i]
			if si != sj {
				ch.nmod0[ch.headIdx[si]]++
			}
		}
	}
	return ch
}

// Name implements App.
func (ch *Cholesky) Name() string { return fmt.Sprintf("cholesky-%s", ch.Gen.Name) }

// Supernodes reports the task count.
func (ch *Cholesky) Supernodes() int { return len(ch.heads) }

// Setup allocates the factor values and the dependency counters, and
// seeds the bag with the supernodes that have no external updates.
func (ch *Cholesky) Setup(g *dsm.Globals) {
	ch.lvalBase = g.Alloc(ch.Sy.NNZ())
	ch.nmodBase = g.Alloc(len(ch.heads))
	var initial []int
	for s, c := range ch.nmod0 {
		if c == 0 {
			initial = append(initial, s)
		}
	}
	sort.Ints(initial)
	g.SetTasks(initial, len(ch.heads))
}

// Init scatters A into L's structure and preloads the counters.
func (ch *Cholesky) Init(c *cluster.Cluster) {
	sy, a := ch.Sy, ch.A
	for j := 0; j < sy.N; j++ {
		rows, vals := a.Col(j)
		lrows := sy.Col(j)
		p := 0
		for k, i := range rows {
			for lrows[p] != i {
				p++
			}
			c.PreloadF64(ch.lvalBase+int(sy.ColPtr[j])+p, vals[k])
		}
	}
	for s, cnt := range ch.nmod0 {
		c.PreloadU64(ch.nmodBase+s, uint64(cnt))
	}
}

// findPos binary-searches row i in column col's structure and returns
// the value index within the column.
func (ch *Cholesky) findPos(col int32, row int32) int32 {
	lo, hi := ch.Sy.ColPtr[col], ch.Sy.ColPtr[col+1]
	for lo < hi {
		mid := (lo + hi) / 2
		if ch.Sy.RowIdx[mid] < row {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// colOfPos returns the column whose value range contains position p.
func (ch *Cholesky) colOfPos(p int32) int32 {
	lo, hi := int32(0), int32(ch.Sy.N)
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if ch.Sy.ColPtr[mid] <= p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// cmod applies column j's outer-product update to column i; p is the
// position of L(i,j) within column j.
func (ch *Cholesky) cmod(w *dsm.Worker, j, p, i int32) {
	sy := ch.Sy
	cq := sy.ColPtr[j+1]
	lij := w.ReadF64(ch.lvalBase + int(p))
	for q := p; q < cq; q++ {
		r := sy.RowIdx[q]
		t := ch.findPos(i, r)
		w.Compute(ch.SearchCycles * 8)
		v := w.ReadF64(ch.lvalBase+int(t)) - lij*w.ReadF64(ch.lvalBase+int(q))
		w.WriteF64(ch.lvalBase+int(t), v)
		w.Compute(ch.UpdateCycles)
	}
}

// colsOf returns the half-open column range of supernode s.
func (ch *Cholesky) colsOf(s int) (int32, int32) {
	head := ch.heads[s]
	end := int32(ch.Sy.N)
	if s+1 < len(ch.heads) {
		end = ch.heads[s+1]
	}
	return head, end
}

// Body implements App: pull supernode tasks until the factorization
// completes.
func (ch *Cholesky) Body(w *dsm.Worker) {
	sy := ch.Sy
	for {
		s := w.NextTask()
		if s < 0 {
			break
		}
		head, end := ch.colsOf(s)
		// Acquire the supernode's own lock once: the grant carries the
		// write notices of every external updater's release, which is
		// the happens-before edge that makes their cmods visible (the
		// bag of tasks itself carries no consistency).
		w.Lock(int(head))
		w.Unlock(int(head))

		// Phase A: cdiv every column of the supernode and apply the
		// intra-supernode updates (no locks: this task owns them).
		for j := head; j < end; j++ {
			cp, cq := sy.ColPtr[j], sy.ColPtr[j+1]
			d := w.ReadF64(ch.lvalBase + int(cp))
			if d <= 0 {
				panic(fmt.Sprintf("cholesky: lost positive definiteness at column %d (pivot %g)", j, d))
			}
			d = math.Sqrt(d)
			w.WriteF64(ch.lvalBase+int(cp), d)
			w.Compute(ch.DivCycles)
			for p := cp + 1; p < cq; p++ {
				w.WriteF64(ch.lvalBase+int(p), w.ReadF64(ch.lvalBase+int(p))/d)
				w.Compute(ch.DivCycles)
			}
			for p := cp + 1; p < cq; p++ {
				i := sy.RowIdx[p]
				if si := sy.Super[i]; si < head || si >= end {
					continue
				}
				ch.cmod(w, j, p, i)
			}
		}

		// Phase B: external updates, batched per target supernode under
		// one column lock — the supernode-granularity sharing the paper
		// describes ("one page usually contains many columns").
		type batch struct {
			target int32   // target supernode head
			pairs  []int32 // positions p in source columns; RowIdx[p] is the target column
		}
		var batches []batch
		byTarget := map[int32]int{}
		for j := head; j < end; j++ {
			for p := sy.ColPtr[j] + 1; p < sy.ColPtr[j+1]; p++ {
				si := sy.Super[sy.RowIdx[p]]
				if si >= head && si < end {
					continue
				}
				bi, ok := byTarget[si]
				if !ok {
					bi = len(batches)
					byTarget[si] = bi
					batches = append(batches, batch{target: si})
				}
				batches[bi].pairs = append(batches[bi].pairs, p)
			}
		}
		for _, b := range batches {
			w.Lock(int(b.target))
			for _, p := range b.pairs {
				j := ch.colOfPos(p)
				ch.cmod(w, j, p, sy.RowIdx[p])
			}
			sIdx := ch.headIdx[b.target]
			left := w.ReadU64(ch.nmodBase+sIdx) - uint64(len(b.pairs))
			w.WriteU64(ch.nmodBase+sIdx, left)
			if ch.oracle != nil && ch.traceCounter == sIdx {
				fmt.Printf("TRACE t=%d node=%d counter=%d read=%d wrote=%d pairs=%d truth(before)=%d\n",
					w.Proc().Local(), w.Node(), sIdx, int64(left)+int64(len(b.pairs)), int64(left),
					len(b.pairs), ch.oracle[sIdx])
			}
			if ch.oracle != nil {
				ch.oracle[sIdx] -= int64(len(b.pairs))
				if ch.oracle[sIdx] != int64(left) {
					panic(fmt.Sprintf("cholesky: node %d sees counter %d = %d, truth %d (target snode %d)",
						w.Node(), sIdx, int64(left), ch.oracle[sIdx], b.target))
				}
			}
			w.Unlock(int(b.target))
			if left == 0 {
				w.PushTask(0, sIdx)
			}
		}
		w.TaskDone()
	}
	w.Barrier(1 << 20) // drain: everyone sees the completed factor
}

// Verify compares the parallel factor against the sequential
// reference (tolerantly: update order differs).
func (ch *Cholesky) Verify(c *cluster.Cluster) error {
	want := spmat.Factor(ch.A, ch.Sy)
	for p := range want {
		got := c.ReadF64(ch.lvalBase + p)
		if math.Abs(got-want[p]) > 1e-6*(1+math.Abs(want[p])) {
			return fmt.Errorf("cholesky %s: L value %d = %.12g, want %.12g",
				ch.Gen.Name, p, got, want[p])
		}
	}
	return nil
}

package apps

import (
	"testing"

	"cni/internal/apps/spmat"
	"cni/internal/config"
)

// TestCentralOwnershipGoldenTimes pins the default (central-ownership)
// DSM to the exact wall times it produced before the distributed
// organization existed. The distributed code paths are gated on
// Config.DSMOwnership, so the default must stay bit-identical: any
// drift here means the gate leaks into the central protocol.
func TestCentralOwnershipGoldenTimes(t *testing.T) {
	cases := []struct {
		kind  config.NICKind
		mk    func() App
		procs int
		want  int64
	}{
		{config.NICCNI, func() App { return NewJacobi(64, 4) }, 8, 461860},
		{config.NICOsiris, func() App { return NewJacobi(64, 4) }, 8, 731003},
		{config.NICStandard, func() App { return NewJacobi(64, 4) }, 8, 848194},
		{config.NICCNI, func() App { return NewWater(16, 2) }, 4, 421183},
		{config.NICOsiris, func() App { return NewWater(16, 2) }, 4, 657217},
		{config.NICStandard, func() App { return NewWater(16, 2) }, 4, 879269},
	}
	for _, tc := range cases {
		app := tc.mk()
		cfg := config.ForNIC(tc.kind)
		_, res := MustExecute(&cfg, tc.procs, app)
		if int64(res.Time) != tc.want {
			t.Errorf("%s on %d x %v: wall time %d, want golden %d",
				app.Name(), tc.procs, tc.kind, res.Time, tc.want)
		}
	}
}

// TestAppsDistributedOwnership runs each benchmark under distributed
// ownership on every interface and verifies against the sequential
// reference: the ownership organization must never change what the
// program computes.
func TestAppsDistributedOwnership(t *testing.T) {
	apps := []func() App{
		func() App { return NewJacobi(32, 3) },
		func() App { return NewWater(16, 1) },
		func() App { return NewCholesky(spmat.Small(64)) },
	}
	for _, kind := range []config.NICKind{config.NICCNI, config.NICOsiris, config.NICStandard} {
		for _, mk := range apps {
			app := mk()
			cfg := config.ForNIC(kind)
			cfg.DSMOwnership = config.DSMDistributed
			c, res := MustExecute(&cfg, 4, app)
			if err := app.Verify(c); err != nil {
				t.Fatalf("%s on %v distributed: %v", app.Name(), kind, err)
			}
			if res.Time <= 0 {
				t.Fatalf("%s on %v distributed: no time", app.Name(), kind)
			}
		}
	}
}

// Package tenant is the multi-tenant QoS layer of the serving stack:
// token-bucket rate limits, strict and weighted-fair priorities, and
// per-tenant latency accounting. It deliberately knows nothing about
// boards or wire formats — the KV service applies these policies at
// the existing enqueue-time protection point, where an arrival tries
// to claim a descriptor from its tenant's device-channel free queue,
// so protection and QoS are enforced at the same place and the same
// moment, exactly as the ADC design argues they should be.
package tenant

import (
	"fmt"

	"cni/internal/rpc"
	"cni/internal/sim"
)

// Class is one tenant's QoS contract.
type Class struct {
	// ID is the tenant's index; requests carry it on the wire.
	ID int
	// Name labels the tenant in reports ("victim", "aggressor").
	Name string
	// Rate is the token-bucket refill rate in requests per second;
	// 0 means uncontracted (never throttled).
	Rate float64
	// Burst is the bucket depth in requests (defaults to 16 when a
	// rate is set).
	Burst int
	// Priority is the strict level: a queued request of a lower
	// Priority value is always served before any request of a higher
	// one.
	Priority int
	// Weight is the weighted-fair share among tenants at the same
	// Priority (defaults to 1).
	Weight int
}

// WithDefaults fills the zero-value conveniences.
func (c Class) WithDefaults() Class {
	if c.Weight <= 0 {
		c.Weight = 1
	}
	if c.Rate > 0 && c.Burst <= 0 {
		c.Burst = 16
	}
	if c.Name == "" {
		c.Name = fmt.Sprintf("tenant%d", c.ID)
	}
	return c
}

// Stats is one tenant's serving ledger. It is comparable and merges
// across nodes, like rpc.Stats.
type Stats struct {
	Issued    uint64 // requests the workload offered
	Completed uint64 // OK responses received by clients
	OnTime    uint64 // completed within the deadline
	Rejected  uint64 // shed by server admission (queue or buffers)
	Throttled uint64 // shed by the tenant's token bucket
	Expired   uint64 // dropped server-side past their deadline
	Lat       rpc.Hist
}

// Merge folds o into s.
func (s *Stats) Merge(o Stats) {
	s.Issued += o.Issued
	s.Completed += o.Completed
	s.OnTime += o.OnTime
	s.Rejected += o.Rejected
	s.Throttled += o.Throttled
	s.Expired += o.Expired
	s.Lat.Merge(o.Lat)
}

// MergeSlices folds per-tenant stats b into a, growing a as needed.
func MergeSlices(a []Stats, b []Stats) []Stats {
	for len(a) < len(b) {
		a = append(a, Stats{})
	}
	for i := range b {
		a[i].Merge(b[i])
	}
	return a
}

// Bucket is a token bucket evaluated in simulated time. The zero
// bucket (or one built from a zero-rate Class) admits everything.
type Bucket struct {
	rate   float64 // tokens per cycle
	burst  float64
	tokens float64
	last   sim.Time
}

// NewBucket builds the bucket for c, full. cyclesPerSec converts the
// contract's requests-per-second into the simulation's cycle clock.
func NewBucket(c Class, cyclesPerSec float64) Bucket {
	c = c.WithDefaults()
	if c.Rate <= 0 || cyclesPerSec <= 0 {
		return Bucket{}
	}
	return Bucket{
		rate:   c.Rate / cyclesPerSec,
		burst:  float64(c.Burst),
		tokens: float64(c.Burst),
	}
}

// Take refills the bucket up to now and consumes one token, reporting
// whether one was available. An unlimited bucket always admits.
func (b *Bucket) Take(now sim.Time) bool {
	if b.rate <= 0 {
		return true
	}
	if now > b.last {
		b.tokens += float64(now-b.last) * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Sched is the server work-queue scheduler: one bounded FIFO per
// tenant, drained by strict priority first and weighted-fair sharing
// (a virtual-time ledger over served counts) among equal priorities.
// All tie-breaks are by tenant ID, so a given push/pop sequence is
// fully deterministic.
type Sched[T any] struct {
	classes []Class
	queues  [][]T
	served  []float64 // weight-normalized work served per tenant
	cap     int       // per-tenant queue bound (0 = unbounded)
	n       int
}

// NewSched builds a scheduler over the given classes; queueCap bounds
// each tenant's queue (0 = unbounded).
func NewSched[T any](classes []Class, queueCap int) *Sched[T] {
	s := &Sched[T]{
		classes: make([]Class, len(classes)),
		queues:  make([][]T, len(classes)),
		served:  make([]float64, len(classes)),
		cap:     queueCap,
	}
	for i, c := range classes {
		s.classes[i] = c.WithDefaults()
	}
	return s
}

// Push queues v for tenant t, reporting false when t's queue is full.
func (s *Sched[T]) Push(t int, v T) bool {
	if s.cap > 0 && len(s.queues[t]) >= s.cap {
		return false
	}
	s.queues[t] = append(s.queues[t], v)
	s.n++
	return true
}

// Pop dequeues the next request: the lowest strict-priority level with
// work, and within it the tenant furthest behind its weighted share.
func (s *Sched[T]) Pop() (v T, t int, ok bool) {
	if s.n == 0 {
		return v, 0, false
	}
	best := -1
	for i := range s.queues {
		if len(s.queues[i]) == 0 {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		switch {
		case s.classes[i].Priority < s.classes[best].Priority:
			best = i
		case s.classes[i].Priority == s.classes[best].Priority &&
			s.served[i] < s.served[best]:
			best = i
		}
	}
	v = s.queues[best][0]
	s.queues[best] = s.queues[best][1:]
	s.served[best] += 1 / float64(s.classes[best].Weight)
	s.n--
	return v, best, true
}

// Len is the total queued work across tenants.
func (s *Sched[T]) Len() int { return s.n }

// QueueLen is tenant t's queued work.
func (s *Sched[T]) QueueLen(t int) int { return len(s.queues[t]) }

package tenant

import (
	"testing"

	"cni/internal/sim"
)

func TestBucketRefillAndBurst(t *testing.T) {
	// 1000 req/s at 1e6 cycles/s = one token per 1000 cycles.
	b := NewBucket(Class{Rate: 1000, Burst: 2}, 1e6)
	if !b.Take(0) || !b.Take(0) {
		t.Fatal("full bucket must admit its burst")
	}
	if b.Take(0) {
		t.Fatal("empty bucket admitted a third request at t=0")
	}
	if b.Take(999) {
		t.Fatal("admitted before a full token accrued")
	}
	if !b.Take(1001) {
		t.Fatal("refused after a token accrued")
	}
	// A long idle period must cap at the burst, not accrue unboundedly.
	if !b.Take(1e9) || !b.Take(1e9) {
		t.Fatal("burst not available after long idle")
	}
	if b.Take(1e9) {
		t.Fatal("bucket exceeded its burst after long idle")
	}
}

func TestBucketUnlimited(t *testing.T) {
	b := NewBucket(Class{}, 1e6)
	for i := 0; i < 1000; i++ {
		if !b.Take(sim.Time(i)) {
			t.Fatal("uncontracted tenant throttled")
		}
	}
}

func TestSchedStrictPriority(t *testing.T) {
	s := NewSched[int]([]Class{
		{ID: 0, Priority: 1},
		{ID: 1, Priority: 0},
	}, 0)
	s.Push(0, 100)
	s.Push(1, 200)
	s.Push(0, 101)
	s.Push(1, 201)
	want := []int{200, 201, 100, 101}
	for i, w := range want {
		v, _, ok := s.Pop()
		if !ok || v != w {
			t.Fatalf("pop %d: got %d ok=%v, want %d", i, v, ok, w)
		}
	}
}

func TestSchedWeightedFairShare(t *testing.T) {
	// Weight 3 vs weight 1 at equal priority: with both queues backlogged,
	// tenant 0 must receive three of every four services.
	s := NewSched[int]([]Class{
		{ID: 0, Weight: 3},
		{ID: 1, Weight: 1},
	}, 0)
	for i := 0; i < 400; i++ {
		s.Push(i%2, i)
	}
	got := [2]int{}
	for i := 0; i < 200; i++ {
		_, tn, ok := s.Pop()
		if !ok {
			t.Fatal("scheduler ran dry with queued work")
		}
		got[tn]++
	}
	if got[0] < 145 || got[0] > 155 {
		t.Fatalf("weight-3 tenant got %d of 200 services, want ~150", got[0])
	}
}

func TestSchedQueueBound(t *testing.T) {
	s := NewSched[int]([]Class{{ID: 0}}, 2)
	if !s.Push(0, 1) || !s.Push(0, 2) {
		t.Fatal("push below cap refused")
	}
	if s.Push(0, 3) {
		t.Fatal("push above cap admitted")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
}

func TestStatsMerge(t *testing.T) {
	var a, b Stats
	a.Issued, a.Completed = 3, 2
	b.Issued, b.Rejected, b.Throttled = 4, 1, 5
	a.Lat.Add(10)
	b.Lat.Add(20)
	a.Merge(b)
	if a.Issued != 7 || a.Completed != 2 || a.Rejected != 1 || a.Throttled != 5 {
		t.Fatalf("merge wrong: %+v", a)
	}
	if a.Lat.Count != 2 {
		t.Fatalf("latency merge wrong: %+v", a.Lat)
	}
}

// Package msgpass is the message-passing paradigm on the CNI (the
// paper's third design goal: "efficiently supports both the message
// passing and distributed shared memory paradigms for generality in
// programming"). It provides
//
//   - Active Messages (the paper calls Application Interrupt Handlers
//     "an extension of the Active Message Principle to the network
//     interface"): small typed handlers that run on the receiving
//     CNI board — or, on the standard interface, on the host behind an
//     interrupt;
//   - matched send/receive over tags, with the blocking receive the
//     applications the paper's introduction motivates expect; and
//   - the collectives parallel programs are built from: a
//     dissemination barrier and an all-reduce, both implemented purely
//     with messages.
//
// Everything runs over the same boards, fabric and cost model as the
// DSM; a Fabric is the message-passing analogue of cluster.Cluster.
package msgpass

import (
	"fmt"
	"math"

	"cni/internal/atm"
	"cni/internal/collective"
	"cni/internal/config"
	"cni/internal/memsys"
	"cni/internal/nic"
	"cni/internal/sim"
)

// ReduceOp re-exports the collective engine's combining operators so
// message-passing programs need not import internal/collective.
type ReduceOp = collective.ReduceOp

// Combining operators for AllReduceF64 and ReduceF64.
const (
	OpSum  = collective.OpSum
	OpProd = collective.OpProd
	OpMin  = collective.OpMin
	OpMax  = collective.OpMax
)

// Protocol operations. Data messages carry the match tag in the
// payload; active messages are dispatched straight to their handler id.
const (
	opData uint32 = 0x300
	opAM   uint32 = 0x400 // + handler id
)

// HeapBase is the virtual address of each node's send/receive heap.
const HeapBase uint64 = 1 << 28

// HeapBytes is the pinned heap per node.
const HeapBytes = 1 << 20

// Packet is one matched message as the receiver sees it.
type Packet struct {
	From  int
	Tag   int
	Bytes int
	Data  []uint64 // inline payload words (nil for buffer-only transfers)
}

// AMContext is what an active-message handler runs with: where the
// message came from and the board-side reply path (handlers run in
// board context — on the CNI, on the receive processor — and must not
// use the host-side Endpoint.Send).
type AMContext struct {
	Ep   *Endpoint
	From int
	At   sim.Time
}

// Reply invokes handler id on the sender, from board context.
func (c AMContext) Reply(id int, args ...uint64) {
	c.Ep.postAM(c.At, c.From, id, args)
}

// AMHandler is an active-message handler; args are the message's
// inline words.
type AMHandler func(c AMContext, args []uint64)

// Fabric is a message-passing cluster.
type Fabric struct {
	K      *sim.Kernel
	Cfg    *config.Config
	Net    *atm.Network
	Boards []*nic.Board
	Mems   []*memsys.Hierarchy
	Coll   *collective.Engine
	eps    []*Endpoint
}

// Endpoint is one node's message-passing interface.
type Endpoint struct {
	f    *Fabric
	node int
	proc *sim.Proc

	inbox   map[int][]*Packet // by tag
	waitTag int
	waiting bool
	got     *Packet

	handlers map[int]AMHandler
	coll     *collective.Node

	// collSeq sequences the host-message ring baseline so that a fast
	// node's next reduce cannot match a slow node's current one. (The
	// engine-backed collectives sequence themselves.)
	collSeq int

	// Stats
	Sent     uint64
	Received uint64
	AMRuns   uint64
}

func f64bits(v float64) uint64 { return math.Float64bits(v) }

func f64from(b uint64) float64 { return math.Float64frombits(b) }

// NewFabric builds an n-node message-passing cluster. The config and
// node count are user input, so an invalid combination is an error,
// not a panic.
func NewFabric(cfg *config.Config, n int) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("msgpass: %w", err)
	}
	f := &Fabric{K: sim.NewKernel(), Cfg: cfg}
	net, err := atm.New(f.K, cfg, n)
	if err != nil {
		return nil, fmt.Errorf("msgpass: %w", err)
	}
	f.Net = net
	f.Coll = collective.NewEngine(cfg, f.K)
	for i := 0; i < n; i++ {
		mem := memsys.New(cfg)
		b := nic.NewBoard(f.K, cfg, i, f.Net, mem)
		b.MapPages(HeapBase, HeapBytes)
		f.Mems = append(f.Mems, mem)
		f.Boards = append(f.Boards, b)
		ep := &Endpoint{
			f: f, node: i,
			inbox:    make(map[int][]*Packet),
			handlers: make(map[int]AMHandler),
			coll:     f.Coll.Attach(b),
		}
		f.eps = append(f.eps, ep)
		ep.install(b)
	}
	return f, nil
}

// install registers the endpoint's protocol handlers on its board and
// preposts free receive buffers out of the heap (the free-queue half
// of the device-channel discipline).
func (ep *Endpoint) install(b *nic.Board) {
	for i := 0; i < 64; i++ {
		b.PostFree(HeapBase+uint64(i)*4096, 4096)
	}
	// Matched data messages go to the host: the application owns them.
	b.Register(opData, false, func(at sim.Time, m *nic.Message) {
		pkt := m.Payload.(*Packet)
		ep.Received++
		if ep.waiting && ep.waitTag == pkt.Tag {
			ep.waiting = false
			ep.got = pkt
			ep.proc.WakeAt(at)
			return
		}
		ep.inbox[pkt.Tag] = append(ep.inbox[pkt.Tag], pkt)
	})
}

// Run spawns one process per node executing body and runs the
// simulation to completion. It returns the wall time.
func (f *Fabric) Run(body func(ep *Endpoint)) sim.Time {
	var end sim.Time
	for i := range f.eps {
		ep := f.eps[i]
		ep.proc = f.K.Spawn(fmt.Sprintf("mp%d", i), func(p *sim.Proc) {
			body(ep)
			p.Sync()
			if p.Local() > end {
				end = p.Local()
			}
		})
		f.Boards[i].SetHostProc(ep.proc)
	}
	f.K.Run()
	for i, ep := range f.eps {
		if !ep.proc.Finished() {
			f.K.Drain()
			panic(fmt.Sprintf("msgpass: node %d never finished (deadlocked receive?)", i))
		}
	}
	return end
}

// Node reports this endpoint's rank; Nodes the cluster size.
func (ep *Endpoint) Node() int  { return ep.node }
func (ep *Endpoint) Nodes() int { return len(ep.f.eps) }

// Proc exposes the simulated processor (for Compute charges).
func (ep *Endpoint) Proc() *sim.Proc { return ep.proc }

// Compute charges cycles of application computation.
func (ep *Endpoint) Compute(c sim.Time) { ep.proc.Advance(c) }

// Send transmits bytes payload bytes plus the inline words to (to,
// tag). The payload is modeled as living in the node's pinned heap, so
// repeated sends of the same buffer hit the Message Cache — message-
// passing programs get the transmit-caching benefit exactly as
// Section 2.2 describes. Asynchronous.
func (ep *Endpoint) Send(to, tag, bytes int, inline ...uint64) {
	if to < 0 || to >= ep.Nodes() {
		panic(fmt.Sprintf("msgpass: send to node %d of %d", to, ep.Nodes()))
	}
	ep.Sent++
	pkt := &Packet{From: ep.node, Tag: tag, Bytes: bytes, Data: inline}
	m := &nic.Message{
		From: ep.node, To: to, Op: opData,
		Size:    nic.HeaderBytes + 8 + bytes + 8*len(inline),
		Payload: pkt,
	}
	if bytes > 0 {
		// Buffer transfers stream from the heap slot for this tag.
		m.VAddr = HeapBase + uint64(tag%64)*uint64(ep.f.Cfg.PageBytes)
		m.CacheTx = true
		m.DeliverVAddr = m.VAddr
		m.DeliverBytes = bytes
	}
	ep.f.Boards[ep.node].Send(ep.proc, m)
}

// Recv blocks until a message with the given tag arrives and returns
// it. Matching is by tag only (any source), in arrival order.
func (ep *Endpoint) Recv(tag int) *Packet {
	if q := ep.inbox[tag]; len(q) > 0 {
		pkt := q[0]
		ep.inbox[tag] = q[1:]
		return pkt
	}
	ep.waitTag = tag
	ep.waiting = true
	ep.proc.Block()
	pkt := ep.got
	ep.got = nil
	if pkt == nil {
		panic("msgpass: woke without a packet")
	}
	return pkt
}

// RegisterAM installs handler id. On the CNI the handler is an
// Application Interrupt Handler: it runs on the receive processor
// without involving the host CPU.
func (ep *Endpoint) RegisterAM(id int, h AMHandler) {
	if _, dup := ep.handlers[id]; dup {
		panic(fmt.Sprintf("msgpass: AM handler %d already registered", id))
	}
	ep.handlers[id] = h
	op := opAM + uint32(id)
	ep.f.Boards[ep.node].Register(op, true, func(at sim.Time, m *nic.Message) {
		pkt := m.Payload.(*Packet)
		ep.AMRuns++
		h(AMContext{Ep: ep, From: pkt.From, At: at}, pkt.Data)
	})
}

// postAM ships an active message from board context at time at.
func (ep *Endpoint) postAM(at sim.Time, to, id int, args []uint64) {
	ep.Sent++
	pkt := &Packet{From: ep.node, Tag: id, Data: args}
	ep.f.Boards[ep.node].SendAt(at, &nic.Message{
		From: ep.node, To: to, Op: opAM + uint32(id),
		Size:    nic.HeaderBytes + 8*len(args),
		Payload: pkt,
	})
}

// SendAM invokes active-message handler id on node to with the given
// argument words. Asynchronous; the handler runs on the remote board.
func (ep *Endpoint) SendAM(to, id int, args ...uint64) {
	ep.Sent++
	pkt := &Packet{From: ep.node, Tag: id, Data: args}
	ep.f.Boards[ep.node].Send(ep.proc, &nic.Message{
		From: ep.node, To: to, Op: opAM + uint32(id),
		Size:    nic.HeaderBytes + 8*len(args),
		Payload: pkt,
	})
}

// Barrier blocks until every node has entered the barrier. It runs on
// the collective engine: as Application Interrupt Handlers combining in
// board memory on the CNI (Config.NICCollectives), through host
// interrupts and handlers otherwise. tagBase is retained for API
// compatibility with the old message-tag implementation and is unused —
// the engine sequences episodes itself.
func (ep *Endpoint) Barrier(tagBase int) {
	_ = tagBase
	ep.coll.Barrier(ep.proc)
}

// AllReduceF64 combines one float64 from every node with op and
// returns the result on all of them, in O(log n) rounds on the
// collective engine (dissemination exchange for power-of-two clusters
// under the default topology, binomial reduce+broadcast otherwise).
func (ep *Endpoint) AllReduceF64(v float64, op ReduceOp) float64 {
	return ep.coll.AllReduce(ep.proc, v, op)
}

// ReduceF64 combines one float64 from every node with op at root; the
// returned value is meaningful only there.
func (ep *Endpoint) ReduceF64(root int, v float64, op ReduceOp) float64 {
	return ep.coll.Reduce(ep.proc, root, v, op)
}

// BroadcastF64 distributes root's v to every node.
func (ep *Endpoint) BroadcastF64(root int, v float64) float64 {
	return ep.coll.Broadcast(ep.proc, root, v)
}

// CollStats reports this node's collective-engine counters.
func (ep *Endpoint) CollStats() collective.Stats {
	return ep.coll.Stats
}

// AllReduceF64Ring is the pre-engine baseline all-reduce — accumulate
// at rank 0 over tagged host messages, then broadcast — kept as the
// host-side O(n) comparison point for experiment FC1. tagBase
// namespaces its message tags.
func (ep *Endpoint) AllReduceF64Ring(tagBase int, v float64, op func(a, b float64) float64) float64 {
	n := ep.Nodes()
	ep.collSeq++
	base := tagBase + 64*ep.collSeq
	if ep.node == 0 {
		acc := v
		for i := 1; i < n; i++ {
			got := ep.Recv(base)
			acc = op(acc, f64from(got.Data[0]))
		}
		for i := 1; i < n; i++ {
			ep.Send(i, base+1, 0, f64bits(acc))
		}
		return acc
	}
	ep.Send(0, base, 0, f64bits(v))
	return f64from(ep.Recv(base + 1).Data[0])
}

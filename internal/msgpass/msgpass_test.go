package msgpass

import (
	"math"
	"testing"

	"cni/internal/config"
	"cni/internal/sim"
)

func TestPingPong(t *testing.T) {
	for _, kind := range []config.NICKind{config.NICCNI, config.NICStandard} {
		cfg := config.ForNIC(kind)
		f := mustFabric(&cfg, 2)
		var rtt sim.Time
		f.Run(func(ep *Endpoint) {
			const rounds = 5
			if ep.Node() == 0 {
				start := ep.Proc().Local()
				for i := 0; i < rounds; i++ {
					ep.Send(1, 1, 1024)
					ep.Recv(2)
				}
				ep.Proc().Sync()
				rtt = (ep.Proc().Local() - start) / rounds
			} else {
				for i := 0; i < rounds; i++ {
					ep.Recv(1)
					ep.Send(0, 2, 1024)
				}
			}
		})
		if rtt <= 0 {
			t.Fatalf("%v: rtt = %d", kind, rtt)
		}
		t.Logf("%v ping-pong 1KB rtt = %d cycles", kind, rtt)
	}
}

func TestCNIPingPongBeatsStandard(t *testing.T) {
	measure := func(kind config.NICKind) sim.Time {
		cfg := config.ForNIC(kind)
		f := mustFabric(&cfg, 2)
		return f.Run(func(ep *Endpoint) {
			if ep.Node() == 0 {
				for i := 0; i < 10; i++ {
					ep.Send(1, 1, 2048)
					ep.Recv(2)
				}
			} else {
				for i := 0; i < 10; i++ {
					ep.Recv(1)
					ep.Send(0, 2, 2048)
				}
			}
		})
	}
	cni, std := measure(config.NICCNI), measure(config.NICStandard)
	if cni >= std {
		t.Fatalf("CNI ping-pong (%d) not faster than standard (%d)", cni, std)
	}
}

func TestRecvMatchesByTagInArrivalOrder(t *testing.T) {
	cfg := config.Default()
	f := mustFabric(&cfg, 2)
	var got []uint64
	f.Run(func(ep *Endpoint) {
		if ep.Node() == 0 {
			ep.Send(1, 7, 0, 100)
			ep.Send(1, 9, 0, 200)
			ep.Send(1, 7, 0, 101)
		} else {
			// Tag 9 first even though it arrived between the two 7s.
			got = append(got, ep.Recv(9).Data[0])
			got = append(got, ep.Recv(7).Data[0])
			got = append(got, ep.Recv(7).Data[0])
		}
	})
	if len(got) != 3 || got[0] != 200 || got[1] != 100 || got[2] != 101 {
		t.Fatalf("got %v, want [200 100 101]", got)
	}
}

func TestActiveMessageRunsOnBoard(t *testing.T) {
	cfg := config.Default()
	f := mustFabric(&cfg, 2)
	counter := uint64(0)
	f.Run(func(ep *Endpoint) {
		ep.RegisterAM(1, func(c AMContext, args []uint64) {
			counter += args[0]
			c.Reply(2, args[0]*2)
		})
		ep.RegisterAM(2, func(c AMContext, args []uint64) {
			counter += 1000 * args[0]
		})
		if ep.Node() == 0 {
			for i := uint64(1); i <= 3; i++ {
				ep.SendAM(1, 1, i)
			}
			// Wait for the three echo replies to land.
			ep.Proc().Advance(100_000_000)
			ep.Proc().Sync()
		}
	})
	// Node 1's handler summed 1+2+3=6; node 0's reply handler summed
	// 1000*(2+4+6)=12000.
	if counter != 6+12000 {
		t.Fatalf("counter = %d, want 12006", counter)
	}
	// The AIH path must not have involved the host on the CNI.
	if f.Boards[1].Stats.AIHRuns != 3 {
		t.Fatalf("AIHRuns = %d, want 3", f.Boards[1].Stats.AIHRuns)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		cfg := config.Default()
		f := mustFabric(&cfg, n)
		phase := make([]int, n)
		ok := true
		f.Run(func(ep *Endpoint) {
			for it := 0; it < 5; it++ {
				// Stagger the nodes so the barrier actually has to wait.
				ep.Compute(sim.Time(1000 * (ep.Node() + 1)))
				phase[ep.Node()] = it
				ep.Barrier(10_000)
				// After the barrier everyone must be in the same phase.
				for i := 0; i < n; i++ {
					if phase[i] != it {
						ok = false
					}
				}
				ep.Barrier(20_000)
			}
		})
		if !ok {
			t.Fatalf("n=%d: barrier let a node run ahead", n)
		}
	}
}

func TestAllReduce(t *testing.T) {
	for _, n := range []int{2, 4, 8, 3, 5} {
		cfg := config.Default()
		f := mustFabric(&cfg, n)
		results := make([]float64, n)
		f.Run(func(ep *Endpoint) {
			v := float64(ep.Node() + 1)
			results[ep.Node()] = ep.AllReduceF64(v, OpSum)
		})
		want := float64(n*(n+1)) / 2
		for i, r := range results {
			if math.Abs(r-want) > 1e-12 {
				t.Fatalf("n=%d node %d: allreduce = %v, want %v", n, i, r, want)
			}
		}
	}
}

func TestAllReduceMax(t *testing.T) {
	cfg := config.Default()
	f := mustFabric(&cfg, 4)
	var got float64
	f.Run(func(ep *Endpoint) {
		v := float64((ep.Node() * 37) % 11)
		r := ep.AllReduceF64(v, OpMax)
		if ep.Node() == 0 {
			got = r
		}
	})
	if got != 9 { // values: 0, 4, 8, 1... (0*37)%11=0 (1*37)%11=4 (2*37)%11=8 (3*37)%11=1 -> max 8
		if got != 8 {
			t.Fatalf("allreduce max = %v", got)
		}
	}
}

func TestRepeatedSendHitsMessageCache(t *testing.T) {
	cfg := config.Default()
	f := mustFabric(&cfg, 2)
	f.Run(func(ep *Endpoint) {
		if ep.Node() == 0 {
			for i := 0; i < 10; i++ {
				ep.Send(1, 5, 4096) // same tag -> same heap buffer
			}
		} else {
			for i := 0; i < 10; i++ {
				ep.Recv(5)
			}
		}
	})
	mc := f.Boards[0].MC
	if mc.Stats.TxHits < 8 {
		t.Fatalf("TxHits = %d, want >=8 (repeated buffer must hit)", mc.Stats.TxHits)
	}
}

func TestDeadlockedReceivePanicsCleanly(t *testing.T) {
	cfg := config.Default()
	f := mustFabric(&cfg, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("deadlocked receive did not panic")
		}
	}()
	f.Run(func(ep *Endpoint) {
		if ep.Node() == 0 {
			ep.Recv(99) // nobody sends
		}
	})
}

func TestSendToBadRankPanics(t *testing.T) {
	cfg := config.Default()
	f := mustFabric(&cfg, 2)
	caught := false
	f.Run(func(ep *Endpoint) {
		if ep.Node() == 0 {
			defer func() { caught = recover() != nil }()
			ep.Send(5, 1, 0)
		}
	})
	if !caught {
		t.Fatal("send to rank 5 of 2 accepted")
	}
}

func TestFabricDeterministic(t *testing.T) {
	run := func() sim.Time {
		cfg := config.Default()
		f := mustFabric(&cfg, 4)
		return f.Run(func(ep *Endpoint) {
			for i := 0; i < 3; i++ {
				ep.AllReduceF64(float64(ep.Node()), OpSum)
				ep.Barrier(5000)
			}
		})
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %d vs %d", a, b)
	}
}

func TestArrivalsConsumeFreeQueue(t *testing.T) {
	cfg := config.Default()
	f := mustFabric(&cfg, 2)
	f.Run(func(ep *Endpoint) {
		if ep.Node() == 0 {
			for i := 0; i < 5; i++ {
				ep.Send(1, 1, 1024)
			}
		} else {
			for i := 0; i < 5; i++ {
				ep.Recv(1)
			}
		}
	})
	if got := f.Boards[1].Stats.FreeConsumed; got != 5 {
		t.Fatalf("FreeConsumed = %d, want 5", got)
	}
}

// mustFabric builds a fabric the test knows is valid.
func mustFabric(cfg *config.Config, n int) *Fabric {
	f, err := NewFabric(cfg, n)
	if err != nil {
		panic(err)
	}
	return f
}

// Package cluster assembles the simulated machine of the CNI paper:
// n workstation nodes — each a CPU (sim.Proc) with a write-back cache
// hierarchy (memsys), a network adaptor board (nic, either the CNI or
// the standard interface) — connected by the ATM fabric (atm), running
// the lazy-release-consistency DSM (dsm).
//
// A Run executes one application (a function per node, SPMD style) and
// reports the paper's metrics: wall time, the synchronization overhead
// / synchronization delay / computation breakdown of Tables 2-4, the
// network cache hit ratio, and the traffic counters.
package cluster

import (
	"fmt"
	"strings"

	"cni/internal/atm"
	"cni/internal/collective"
	"cni/internal/config"
	"cni/internal/dsm"
	"cni/internal/kv"
	"cni/internal/memsys"
	"cni/internal/nic"
	"cni/internal/rpc"
	"cni/internal/sim"
	"cni/internal/tenant"
	"cni/internal/trace"
)

// Node is one workstation.
type Node struct {
	ID    int
	Mem   *memsys.Hierarchy
	Board *nic.Board
	R     *dsm.Runtime
	W     *dsm.Worker
	Proc  *sim.Proc

	finish sim.Time
}

// Cluster is the whole machine.
type Cluster struct {
	// K is the simulation kernel on single-kernel runs. On sharded runs
	// (SS non-nil) every node lives on its shard's kernel — reach those
	// through Net.NodeKernel — and K aliases shard 0's, for callers that
	// only need construction-time scheduling context.
	K  *sim.Kernel
	SS *sim.ShardSet // non-nil when the run executes as parallel shards
	// ShardClamp records why a SimShards request was reduced to one
	// shard ("" when the request was honored as-is).
	ShardClamp string
	Cfg        *config.Config
	Net        *atm.Network
	G          *dsm.Globals
	Coll       *collective.Engine
	RPC        *rpc.Engine
	KV        *kv.Engine
	Nodes     []*Node
}

// Setup allocates the shared region (identically on every run).
type Setup func(g *dsm.Globals)

// App is the SPMD application body executed by every node's worker.
type App func(w *dsm.Worker)

// New builds a cluster of n nodes. setup runs before the nodes are
// wired so homes can be distributed over the allocated region. The
// config and the node count are user input, so an invalid combination
// (bad knobs, more nodes than the topology can address) is an error,
// not a panic.
func New(cfg *config.Config, n int, setup Setup) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	c := &Cluster{
		Cfg: cfg,
		G:   dsm.NewGlobals(cfg),
	}
	if setup != nil {
		setup(c.G)
	}
	c.G.Freeze(n)
	// DSM page transfers read the serving node's live memory at delivery
	// time (Runtime.copyPageFrom) — a zero-lookahead cross-node access no
	// conservative window can order. Runs that allocate shared pages
	// therefore execute on one kernel regardless of SimShards; everything
	// else (boards, RPC, KV, collectives, DSM locks and barriers) is
	// message-carried and shards.
	shards := cfg.SimShards
	if shards >= 1 && c.G.Pages() > 0 {
		shards = 0
		c.ShardClamp = "DSM pages allocated: page transfers have zero lookahead"
	}
	if shards >= 1 {
		net, ss, err := atm.NewSharded(cfg, n, shards, sim.EngineCalendar)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		c.Net, c.SS = net, ss
		c.K = net.NodeKernel(0)
	} else {
		c.K = sim.NewKernel()
		net, err := atm.New(c.K, cfg, n)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		c.Net = net
	}
	c.Coll = collective.NewEngine(cfg, c.K)
	c.RPC = rpc.NewEngine(cfg, c.K)
	c.KV = kv.NewEngine(cfg, c.K)
	for i := 0; i < n; i++ {
		node := &Node{ID: i}
		node.Mem = memsys.New(cfg)
		k := c.Net.NodeKernel(i)
		node.Board = nic.NewBoard(k, cfg, i, c.Net, node.Mem)
		node.R = dsm.NewRuntime(c.G, k, i, n, node.Board)
		node.R.SetCollective(c.Coll.Attach(node.Board))
		c.RPC.Attach(node.Board)
		c.KV.Attach(node.Board)
		c.Nodes = append(c.Nodes, node)
	}
	return c, nil
}

// Shards reports the effective shard count the run executes on.
func (c *Cluster) Shards() int {
	if c.SS != nil {
		return c.SS.Shards()
	}
	return 1
}

// Executed reports the total number of simulation events executed, over
// every shard kernel.
func (c *Cluster) Executed() uint64 {
	if c.SS != nil {
		return c.SS.Executed()
	}
	return c.K.Executed()
}

// now is the simulation clock for diagnostics: the latest event time
// any shard has reached.
func (c *Cluster) now() sim.Time {
	if c.SS != nil {
		return c.SS.Now()
	}
	return c.K.Now()
}

// EnableTrace attaches a bounded protocol-event log (capacity cap
// events) to every node and returns it; call before Run.
func (c *Cluster) EnableTrace(cap int) *trace.Log {
	if c.SS != nil {
		panic("cluster: tracing needs a single-kernel run (the log is one ordered stream); build with SimShards <= 1")
	}
	l := trace.New(cap)
	for _, n := range c.Nodes {
		n.R.SetTrace(l)
	}
	c.Coll.EnableTrace(l)
	return l
}

// PreloadU64 writes an initial value into every node's copy of the
// shared word, outside simulated time (the memory image the program
// starts from). Nothing is marked dirty and no traffic results.
func (c *Cluster) PreloadU64(idx int, v uint64) {
	for _, n := range c.Nodes {
		n.R.Poke(idx, v)
	}
}

// PreloadF64 is PreloadU64 for float64 values.
func (c *Cluster) PreloadF64(idx int, v float64) {
	for _, n := range c.Nodes {
		n.R.PokeF64(idx, v)
	}
}

// ReadU64 reads the authoritative copy of a shared word after a run;
// valid once the application has ended with a barrier. The
// authoritative copy lives at the page's static home under central
// ownership and follows the current owner under distributed ownership.
func (c *Cluster) ReadU64(idx int) uint64 {
	owner := c.G.OwnerOf(int32(idx * c.Cfg.WordBytes / c.Cfg.PageBytes))
	return c.Nodes[owner].R.Peek(idx)
}

// ReadF64 is ReadU64 for float64 values.
func (c *Cluster) ReadF64(idx int) float64 {
	owner := c.G.OwnerOf(int32(idx * c.Cfg.WordBytes / c.Cfg.PageBytes))
	return c.Nodes[owner].R.PeekF64(idx)
}

// NodeStats is the per-node breakdown in the shape of the paper's
// overhead tables.
type NodeStats struct {
	Total       sim.Time
	Overhead    sim.Time // synchronization overhead: protocol work on the CPU
	Delay       sim.Time // synchronization delay: cycles spent blocked
	Computation sim.Time // Total - Overhead - Delay
	DSM         dsm.Stats
	NIC         nic.Stats
	Coll        collective.Stats
	RPC         rpc.Stats
	KV          kv.Stats
}

// DSMStats is the cluster-level view of the DSM protocol's activity:
// the counters that characterize the ownership organization, promoted
// from the per-node dsm.Stats so consumers (cmd/cnisim, the FD1
// artifact) read one struct instead of walking PerNode.
type DSMStats struct {
	Faults        uint64 // page accesses that stalled or fetched, summed
	Fetches       uint64 // page requests served by homes/owners, summed
	Invalidations uint64 // page invalidations from write notices, summed
	// ManagerMsgs counts protocol messages handled in a manager/owner
	// role (page requests and diffs at the owner, lock/barrier/task
	// traffic at the manager), summed over nodes.
	ManagerMsgs uint64
	// MaxManagerMsgs is the largest per-node manager-role count — the
	// hotspot metric: under central ownership the barrier manager and
	// bag server at node 0 dominate it, under distributed ownership the
	// load spreads.
	MaxManagerMsgs uint64
	// MaxManagerNode is the node holding MaxManagerMsgs.
	MaxManagerNode int
	Forwards       uint64 // probable-owner chain forwards, summed
	Migrations     uint64 // ownership migrations, summed
	// Chain is the chain-length histogram over every completed fetch:
	// bucket i counts fetches forwarded i times (last bucket: longer).
	Chain dsm.ChainHist
}

// MeanChain reports the mean forwarding-chain length over completed
// fetches (0 when no fetch was observed, as under central ownership).
func (d *DSMStats) MeanChain() float64 {
	total := d.Chain.Total()
	if total == 0 {
		return 0
	}
	var weighted uint64
	for i, v := range d.Chain {
		weighted += uint64(i) * v
	}
	return float64(weighted) / float64(total)
}

// Result is the outcome of one Run.
type Result struct {
	Time      sim.Time // wall time: the last worker's finish time
	PerNode   []NodeStats
	Net       atm.Stats
	Coll      collective.Stats // summed over nodes
	RPC       rpc.Stats        // request/response activity summed over nodes
	RPCLat    rpc.Latencies    // exact request-latency samples over all clients
	KV        kv.Stats         // key-value serving activity summed over nodes
	KVLat     rpc.Latencies    // exact KV latency samples (OK/NotFound) over all clients
	KVHit     rpc.Latencies    // KV GET latency, board-cache-served
	KVHost    rpc.Latencies    // KV GET latency, host-served
	Tenants   []tenant.Stats   // per-tenant outcomes and latency, merged over nodes
	TenantLat []rpc.Latencies  // exact per-tenant latency samples
	Rel       nic.RelStats     // reliability activity summed over nodes
	DSM       DSMStats         // DSM protocol activity aggregated over nodes
	HitRatio  float64          // aggregate network cache hit ratio, percent

	// Averages across nodes (the shape Tables 2-4 report).
	AvgOverhead    sim.Time
	AvgDelay       sim.Time
	AvgComputation sim.Time
}

// Run executes app on every node and gathers the metrics. It may be
// called once per Cluster.
func (c *Cluster) Run(app App) *Result {
	for _, n := range c.Nodes {
		n := n
		n.Proc = c.Net.NodeKernel(n.ID).Spawn(fmt.Sprintf("cpu%d", n.ID), func(p *sim.Proc) {
			n.W = n.R.NewWorker(p, n.Mem)
			app(n.W)
			p.Sync()
			n.finish = p.Local()
		})
	}
	if c.SS != nil {
		c.SS.Run()
	} else {
		c.K.Run()
	}
	c.Net.Finish()

	res := &Result{Net: c.Net.Stats}
	var hits, misses uint64
	for _, n := range c.Nodes {
		if !n.Proc.Finished() {
			var states strings.Builder
			for _, m := range c.Nodes {
				fmt.Fprintf(&states, "\n  node %d: finished=%v waiting=%s",
					m.ID, m.Proc.Finished(), m.W.Waiting())
				if cnt, sample := m.R.PendingHomeRequests(); cnt > 0 {
					fmt.Fprintf(&states, " parkedHomeReqs=%d [%s]", cnt, sample)
				}
			}
			if c.SS != nil {
				c.SS.Drain()
			} else {
				c.K.Drain()
			}
			panic(fmt.Sprintf("cluster: node %d never finished (deadlock at t=%d); tasks: %s%s",
				n.ID, c.now(), c.G.TaskDebug(), states.String()))
		}
		if n.finish > res.Time {
			res.Time = n.finish
		}
		overhead := n.R.Stats.Overhead + n.Proc.PenaltyTime
		delay := n.Proc.BlockedTime
		ns := NodeStats{
			Total:       n.finish,
			Overhead:    overhead,
			Delay:       delay,
			Computation: n.finish - overhead - delay,
			DSM:         n.R.Stats,
			NIC:         n.Board.Stats,
			Coll:        c.Coll.Node(n.ID).Stats,
			RPC:         c.RPC.Node(n.ID).Stats,
			KV:          c.KV.Node(n.ID).Stats,
		}
		res.PerNode = append(res.PerNode, ns)
		res.Coll.Merge(ns.Coll)
		res.RPC.Merge(ns.RPC)
		res.RPCLat.Merge(c.RPC.Node(n.ID).Lat)
		kn := c.KV.Node(n.ID)
		res.KV.Merge(kn.Stats)
		res.KVLat.Merge(kn.Lat)
		res.KVHit.Merge(kn.HitLat)
		res.KVHost.Merge(kn.HostLat)
		res.Tenants = tenant.MergeSlices(res.Tenants, kn.TStats)
		for len(res.TenantLat) < len(kn.TLat) {
			res.TenantLat = append(res.TenantLat, rpc.Latencies{})
		}
		for i := range kn.TLat {
			res.TenantLat[i].Merge(kn.TLat[i])
		}
		res.Rel.Merge(ns.NIC.Rel)
		res.DSM.Faults += ns.DSM.PageFaults
		res.DSM.Fetches += ns.DSM.PageFetches
		res.DSM.Invalidations += ns.DSM.Invalidates
		res.DSM.ManagerMsgs += ns.DSM.OwnerMsgs
		if ns.DSM.OwnerMsgs > res.DSM.MaxManagerMsgs {
			res.DSM.MaxManagerMsgs = ns.DSM.OwnerMsgs
			res.DSM.MaxManagerNode = n.ID
		}
		res.DSM.Forwards += ns.DSM.Forwards
		res.DSM.Migrations += ns.DSM.Migrations
		res.DSM.Chain.Merge(ns.DSM.Chain)
		res.AvgOverhead += overhead
		res.AvgDelay += delay
		if n.Board.MC != nil {
			hits += n.Board.MC.Stats.TxHits
			misses += n.Board.MC.Stats.TxMisses
		}
	}
	n := sim.Time(len(c.Nodes))
	res.AvgOverhead /= n
	res.AvgDelay /= n
	res.AvgComputation = res.Time - res.AvgOverhead - res.AvgDelay
	if hits+misses > 0 {
		res.HitRatio = 100 * float64(hits) / float64(hits+misses)
	}
	return res
}

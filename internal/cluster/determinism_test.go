package cluster

import (
	"testing"

	"cni/internal/config"
	"cni/internal/dsm"
)

// workload is a fixed DSM application exercising locks, writes to
// remote homes, and barriers — enough to route traffic through every
// protocol path including the collective barrier.
func workload(w *dsm.Worker) {
	for i := 0; i < 6; i++ {
		w.Lock(1)
		w.WriteU64(0, w.ReadU64(0)+uint64(w.Node()+1))
		w.Unlock(1)
		w.WriteF64(256+w.Node()*32+i, float64(w.Node())*1.5+float64(i))
		w.Barrier(i)
	}
}

func runWorkload(cfg config.Config, n int) (*Cluster, *Result) {
	c := mustNew(&cfg, n, func(g *dsm.Globals) { g.Alloc(2048) })
	res := c.Run(workload)
	return c, res
}

// TestRunDeterministic pins the simulator's core guarantee: the same
// workload under the same configuration produces bit-identical wall
// time and per-node statistics — including the collective engine's
// latency histogram — on every run. NodeStats is comparable by design,
// so plain == covers every counter.
func TestRunDeterministic(t *testing.T) {
	cases := map[string]config.Config{
		"cni":      config.Default(),
		"cni-host": config.Default(),
		"standard": config.Standard(),
	}
	h := cases["cni-host"]
	h.NICCollectives = false
	cases["cni-host"] = h
	for name, cfg := range cases {
		_, a := runWorkload(cfg, 5)
		_, b := runWorkload(cfg, 5)
		if a.Time != b.Time {
			t.Fatalf("%s: wall time %d vs %d across identical runs", name, a.Time, b.Time)
		}
		for i := range a.PerNode {
			if a.PerNode[i] != b.PerNode[i] {
				t.Fatalf("%s node %d: stats differ across identical runs:\n%+v\nvs\n%+v",
					name, i, a.PerNode[i], b.PerNode[i])
			}
		}
		if a.Coll != b.Coll {
			t.Fatalf("%s: collective stats differ across identical runs", name)
		}
	}
}

// barrierWorkload orders every access by barriers only: each node
// writes its own slice, then reads its neighbor's. With no lock races,
// the protocol traffic itself — not just the results — is fully
// determined by the write-notice exchange.
func barrierWorkload(w *dsm.Worker) {
	n := w.Nodes()
	for i := 0; i < 5; i++ {
		base := 256 + w.Node()*32
		for j := 0; j < 8; j++ {
			w.WriteU64(base+j, uint64(w.Node()*1000+i*10+j))
		}
		w.Barrier(i)
		peer := 256 + ((w.Node()+1)%n)*32
		for j := 0; j < 8; j++ {
			w.ReadU64(peer + j)
		}
		w.Barrier(100 + i)
	}
}

// TestNICCollectivesOnOffSameResults: offloading the barrier to the
// board changes where the combining work runs, never what the program
// computes. On a barrier-ordered workload every DSM protocol counter
// except the cycle charge must match with the flag on and off; on a
// lock-racing workload the grant order (and hence fetch counts) may
// shift with timing, but shared memory must still agree.
func TestNICCollectivesOnOffSameResults(t *testing.T) {
	on := config.Default()
	off := config.Default()
	off.NICCollectives = false
	for _, n := range []int{2, 3, 4, 7} {
		cOn, rOn := runWorkload(on, n)
		cOff, _ := runWorkload(off, n)
		for idx := 0; idx < 2048; idx++ {
			if a, b := cOn.ReadU64(idx), cOff.ReadU64(idx); a != b {
				t.Fatalf("n=%d word %d: %d (on) vs %d (off)", n, idx, a, b)
			}
		}
		if rOn.Coll.BoardCombined == 0 || rOn.Coll.HostHandled != 0 {
			t.Fatalf("n=%d: offloaded run combined %d on board, %d on host",
				n, rOn.Coll.BoardCombined, rOn.Coll.HostHandled)
		}

		run := func(cfg config.Config) (*Cluster, *Result) {
			c := mustNew(&cfg, n, func(g *dsm.Globals) { g.Alloc(2048) })
			return c, c.Run(barrierWorkload)
		}
		cbOn, rbOn := run(on)
		cbOff, rbOff := run(off)
		for idx := 0; idx < 2048; idx++ {
			if a, b := cbOn.ReadU64(idx), cbOff.ReadU64(idx); a != b {
				t.Fatalf("n=%d word %d: %d (on) vs %d (off)", n, idx, a, b)
			}
		}
		for i := range rbOn.PerNode {
			a, b := rbOn.PerNode[i].DSM, rbOff.PerNode[i].DSM
			a.Overhead, b.Overhead = 0, 0 // only the cycle accounting may move
			// Offloaded barriers have no manager node, so the
			// manager-role message count legitimately differs.
			a.OwnerMsgs, b.OwnerMsgs = 0, 0
			if a != b {
				t.Fatalf("n=%d node %d: DSM counters differ with NICCollectives on/off:\n%+v\nvs\n%+v",
					n, i, a, b)
			}
		}
		// With the flag off the DSM takes the legacy manager path: the
		// engine must not have run at all.
		if rbOff.Coll.Episodes != 0 {
			t.Fatalf("n=%d: NICCollectives off still ran %d engine episodes", n, rbOff.Coll.Episodes)
		}
	}
}

package cluster

import (
	"testing"

	"cni/internal/config"
	"cni/internal/dsm"
)

func TestPreloadVisibleEverywhereWithoutTraffic(t *testing.T) {
	cfg := config.Default()
	c := mustNew(&cfg, 4, func(g *dsm.Globals) { g.Alloc(1024) })
	for i := 0; i < 1024; i++ {
		c.PreloadF64(i, float64(i)*0.5)
	}
	res := c.Run(func(w *dsm.Worker) {
		// Every node reads its *own* home block: zero faults, zero
		// traffic, preloaded values visible.
		per := 1024 / w.Nodes() // words per home block (page-aligned here)
		lo := w.Node() * per
		for i := lo; i < lo+per; i++ {
			if got := w.ReadF64(i); got != float64(i)*0.5 {
				t.Errorf("node %d: word %d = %v", w.Node(), i, got)
				return
			}
		}
	})
	if res.Net.Messages != 0 {
		t.Fatalf("home-only reads caused %d messages", res.Net.Messages)
	}
}

func TestReadBackFromHomes(t *testing.T) {
	cfg := config.Default()
	c := mustNew(&cfg, 2, func(g *dsm.Globals) { g.Alloc(512) })
	c.Run(func(w *dsm.Worker) {
		if w.Node() == 0 {
			w.WriteU64(3, 42)
			w.WriteF64(300, 2.5) // word 300 is in node 1's home block
		}
		w.Barrier(0)
	})
	if got := c.ReadU64(3); got != 42 {
		t.Fatalf("ReadU64(3) = %d", got)
	}
	if got := c.ReadF64(300); got != 2.5 {
		t.Fatalf("ReadF64(300) = %v", got)
	}
}

func TestResultShape(t *testing.T) {
	cfg := config.Standard()
	c := mustNew(&cfg, 3, func(g *dsm.Globals) { g.Alloc(256) })
	res := c.Run(func(w *dsm.Worker) {
		w.Compute(1000)
		w.Barrier(0)
	})
	if len(res.PerNode) != 3 {
		t.Fatalf("PerNode has %d entries", len(res.PerNode))
	}
	for i, ns := range res.PerNode {
		if ns.Total <= 0 {
			t.Errorf("node %d total = %d", i, ns.Total)
		}
		if ns.Overhead+ns.Delay+ns.Computation != ns.Total {
			t.Errorf("node %d breakdown does not sum", i)
		}
	}
	if res.HitRatio != 0 {
		t.Fatal("standard cluster must report zero hit ratio")
	}
}

func TestInvalidConfigErrors(t *testing.T) {
	cfg := config.Default()
	cfg.LinkMbps = 0
	if _, err := New(&cfg, 2, func(g *dsm.Globals) { g.Alloc(64) }); err == nil {
		t.Fatal("invalid config accepted")
	}
	cfg = config.Default()
	if _, err := New(&cfg, 64, func(g *dsm.Globals) { g.Alloc(64) }); err == nil {
		t.Fatal("64 nodes on the single 32-port switch accepted")
	}
}

func TestTrafficAccountingInvariants(t *testing.T) {
	// Cross-layer bookkeeping: every message sent is received exactly
	// once; on the CNI every arrival is either AIH-handled or host-
	// delivered; wire bytes >= data bytes (cell overhead).
	for _, kind := range []config.NICKind{config.NICCNI, config.NICStandard} {
		cfg := config.ForNIC(kind)
		c := mustNew(&cfg, 4, func(g *dsm.Globals) { g.Alloc(2048) })
		res := c.Run(func(w *dsm.Worker) {
			for i := 0; i < 8; i++ {
				w.Lock(3)
				w.WriteU64(0, w.ReadU64(0)+1)
				w.Unlock(3)
				w.WriteU64(512+w.Node()*64, uint64(i))
				w.Barrier(i)
			}
		})
		var sends, recvs, aih, host uint64
		for _, n := range c.Nodes {
			sends += n.Board.Stats.Sends
			recvs += n.Board.Stats.Receives
			aih += n.Board.Stats.AIHRuns
			host += n.Board.Stats.HostHandlers
		}
		if sends != recvs {
			t.Fatalf("%v: %d sends vs %d receives", kind, sends, recvs)
		}
		if sends != res.Net.Messages {
			t.Fatalf("%v: boards sent %d, fabric carried %d", kind, sends, res.Net.Messages)
		}
		if aih+host != recvs {
			t.Fatalf("%v: %d AIH + %d host != %d receives", kind, aih, host, recvs)
		}
		if kind == config.NICCNI && aih == 0 {
			t.Fatal("CNI ran no Application Interrupt Handlers")
		}
		if kind == config.NICStandard && aih != 0 {
			t.Fatal("standard board ran AIH")
		}
		if res.Net.WireBytes < res.Net.DataBytes {
			t.Fatalf("%v: wire bytes %d below data bytes %d", kind, res.Net.WireBytes, res.Net.DataBytes)
		}
		if res.Net.Cells == 0 {
			t.Fatal("no cells counted")
		}
	}
}

func TestInterruptVsPollSplitByNIC(t *testing.T) {
	// The standard interface must never poll; the CNI must poll under
	// bursty protocol traffic.
	mk := func(kind config.NICKind) *Cluster {
		cfg := config.ForNIC(kind)
		c := mustNew(&cfg, 4, func(g *dsm.Globals) { g.Alloc(4096) })
		c.Run(func(w *dsm.Worker) {
			for i := 0; i < 6; i++ {
				for j := 0; j < 16; j++ {
					w.WriteU64(w.Node()*128+j+512, uint64(i*j))
				}
				w.Barrier(i)
			}
		})
		return c
	}
	std := mk(config.NICStandard)
	var polls uint64
	for _, n := range std.Nodes {
		polls += n.Board.Stats.Polls
	}
	if polls != 0 {
		t.Fatalf("standard interface polled %d times", polls)
	}
}

// mustNew builds a cluster the test knows is valid.
func mustNew(cfg *config.Config, n int, setup Setup) *Cluster {
	c, err := New(cfg, n, setup)
	if err != nil {
		panic(err)
	}
	return c
}

package nic

import (
	"testing"

	"cni/internal/atm"
	"cni/internal/config"
	"cni/internal/memsys"
	"cni/internal/sim"
)

// rig is a two-node test cluster.
type rig struct {
	k      *sim.Kernel
	cfg    config.Config
	net    *atm.Network
	mem    [2]*memsys.Hierarchy
	boards [2]*Board
}

func newRig(t *testing.T, kind config.NICKind, tweak func(*config.Config)) *rig {
	t.Helper()
	r := &rig{k: sim.NewKernel(), cfg: config.ForNIC(kind)}
	if tweak != nil {
		tweak(&r.cfg)
	}
	net, err := atm.New(r.k, &r.cfg, 2)
	if err != nil {
		panic(err)
	}
	r.net = net
	for i := 0; i < 2; i++ {
		r.mem[i] = memsys.New(&r.cfg)
		r.boards[i] = NewBoard(r.k, &r.cfg, i, r.net, r.mem[i])
		r.boards[i].MapPages(0, 1<<20)
	}
	return r
}

const (
	opData  = 1
	opReply = 2
)

func TestCNISecondSendOfSameBufferSkipsDMA(t *testing.T) {
	r := newRig(t, config.NICCNI, nil)
	var arrivals []sim.Time
	r.boards[1].Register(opData, true, func(at sim.Time, m *Message) {
		arrivals = append(arrivals, at)
	})
	page := uint64(0x10000)
	r.k.Spawn("app", func(p *sim.Proc) {
		m := &Message{From: 0, To: 1, Op: opData, Size: 4096, VAddr: page, CacheTx: true}
		r.boards[0].Send(p, m)
		p.Advance(1_000_000)
		p.Sync()
		m2 := &Message{From: 0, To: 1, Op: opData, Size: 4096, VAddr: page, CacheTx: true}
		r.boards[0].Send(p, m2)
	})
	r.k.Run()
	if len(arrivals) != 2 {
		t.Fatalf("%d arrivals, want 2", len(arrivals))
	}
	if r.boards[0].Stats.TxDMAs != 1 {
		t.Fatalf("TxDMAs = %d, want 1 (second send must hit the Message Cache)",
			r.boards[0].Stats.TxDMAs)
	}
	if hr := r.boards[0].HitRatio(); hr != 50 {
		t.Fatalf("hit ratio = %v, want 50", hr)
	}
}

func TestStandardAlwaysDMAs(t *testing.T) {
	r := newRig(t, config.NICStandard, nil)
	r.boards[1].Register(opData, true, func(sim.Time, *Message) {})
	r.k.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 4096, VAddr: 0x10000, CacheTx: true})
			p.Advance(1_000_000)
			p.Sync()
		}
	})
	r.k.Run()
	if r.boards[0].Stats.TxDMAs != 3 {
		t.Fatalf("TxDMAs = %d, want 3", r.boards[0].Stats.TxDMAs)
	}
	if r.boards[0].MC != nil {
		t.Fatal("standard board must not have a Message Cache")
	}
	if r.boards[0].HitRatio() != 0 {
		t.Fatal("standard board hit ratio must be 0")
	}
}

// endToEnd measures send-to-handler latency for one 4 KB page message,
// warmed so the CNI Message Cache hits.
func endToEnd(t *testing.T, kind config.NICKind, tweak func(*config.Config)) sim.Time {
	t.Helper()
	r := newRig(t, kind, tweak)
	var sent, arrived []sim.Time
	onNIC := kind == config.NICCNI
	r.boards[1].Register(opData, onNIC, func(at sim.Time, m *Message) {
		arrived = append(arrived, at)
	})
	r.k.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			p.Sync()
			sent = append(sent, p.Local())
			r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 4096,
				VAddr: 0x10000, CacheTx: true})
			p.Advance(100_000_000) // long gap: measurements independent
		}
	})
	r.k.Run()
	if len(arrived) != 2 {
		t.Fatalf("%d arrivals", len(arrived))
	}
	return arrived[1] - sent[1] // warmed measurement
}

func TestCNILatencyBeatsStandard(t *testing.T) {
	cniLat := endToEnd(t, config.NICCNI, nil)
	stdLat := endToEnd(t, config.NICStandard, nil)
	if cniLat >= stdLat {
		t.Fatalf("CNI latency %d >= standard %d", cniLat, stdLat)
	}
	// The paper's headline microbenchmark: ~33% lower at 4 KB. Accept a
	// broad band here; the calibrated check lives in the experiments
	// package.
	reduction := float64(stdLat-cniLat) / float64(stdLat) * 100
	if reduction < 15 || reduction > 60 {
		t.Fatalf("latency reduction %.1f%%, want within [15,60]", reduction)
	}
}

func TestInterruptPenaltyChargedToComputingHost(t *testing.T) {
	r := newRig(t, config.NICStandard, nil)
	r.boards[1].Register(opData, false, func(sim.Time, *Message) {})
	victim := r.k.Spawn("victim", func(p *sim.Proc) {
		p.Advance(100_000_000)
		p.Sync()
	})
	r.boards[1].SetHostProc(victim)
	r.k.Spawn("sender", func(p *sim.Proc) {
		r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 64, VAddr: 0x1000})
	})
	r.k.Run()
	if victim.PenaltyTime == 0 {
		t.Fatal("interrupt on a computing host must steal CPU time")
	}
	if r.boards[1].Stats.Interrupts != 1 {
		t.Fatalf("Interrupts = %d, want 1", r.boards[1].Stats.Interrupts)
	}
}

func TestBlockedHostAbsorbsInterruptFree(t *testing.T) {
	r := newRig(t, config.NICStandard, nil)
	r.boards[1].Register(opData, false, func(sim.Time, *Message) {})
	blocked := r.k.Spawn("blocked", func(p *sim.Proc) { p.Block() })
	r.boards[1].SetHostProc(blocked)
	r.k.Spawn("sender", func(p *sim.Proc) {
		p.Advance(1000) // let the receiver block first
		p.Sync()
		r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 64, VAddr: 0x1000})
	})
	r.k.Run()
	r.k.Drain()
	if blocked.PenaltyTime != 0 {
		t.Fatal("idle host must not accumulate interrupt penalty")
	}
}

func TestPollInterruptHybrid(t *testing.T) {
	r := newRig(t, config.NICCNI, nil)
	r.boards[1].Register(opData, false, func(sim.Time, *Message) {})
	r.k.Spawn("sender", func(p *sim.Proc) {
		// Burst of 5 back-to-back messages, then a long quiet gap, then
		// one more: the burst tail should be polled, the isolated one
		// interrupted.
		for i := 0; i < 5; i++ {
			r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 64})
			p.Advance(1000)
		}
		p.Advance(10_000_000_000) // ~60 s of cycles: far beyond the window
		p.Sync()
		r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 64})
	})
	r.k.Run()
	s := r.boards[1].Stats
	if s.Polls < 3 {
		t.Fatalf("Polls = %d, want >=3 within the burst", s.Polls)
	}
	if s.Interrupts < 2 {
		t.Fatalf("Interrupts = %d, want >=2 (first arrival + post-gap)", s.Interrupts)
	}
}

func TestPureInterruptAblation(t *testing.T) {
	r := newRig(t, config.NICCNI, func(c *config.Config) { c.PureInterrupt = true })
	r.boards[1].Register(opData, false, func(sim.Time, *Message) {})
	r.k.Spawn("sender", func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 64})
			p.Advance(100)
		}
	})
	r.k.Run()
	if r.boards[1].Stats.Polls != 0 {
		t.Fatal("PureInterrupt must never poll")
	}
	if r.boards[1].Stats.Interrupts != 5 {
		t.Fatalf("Interrupts = %d, want 5", r.boards[1].Stats.Interrupts)
	}
}

func TestAIHRunsWithoutHostInvolvement(t *testing.T) {
	r := newRig(t, config.NICCNI, nil)
	ran := false
	r.boards[1].Register(opData, true, func(at sim.Time, m *Message) { ran = true })
	host := r.k.Spawn("host1", func(p *sim.Proc) {
		p.Advance(100_000_000)
		p.Sync()
	})
	r.boards[1].SetHostProc(host)
	r.k.Spawn("sender", func(p *sim.Proc) {
		r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 128})
	})
	r.k.Run()
	if !ran {
		t.Fatal("AIH handler did not run")
	}
	if host.PenaltyTime != 0 {
		t.Fatal("AIH must not steal host CPU time")
	}
	if r.boards[1].Stats.AIHRuns != 1 || r.boards[1].Stats.Interrupts != 0 {
		t.Fatalf("stats = %+v", r.boards[1].Stats)
	}
}

func TestStandardIgnoresOnNIC(t *testing.T) {
	r := newRig(t, config.NICStandard, nil)
	r.boards[1].Register(opData, true, func(sim.Time, *Message) {})
	r.k.Spawn("sender", func(p *sim.Proc) {
		r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 64})
	})
	r.k.Run()
	s := r.boards[1].Stats
	if s.AIHRuns != 0 || s.HostHandlers != 1 {
		t.Fatalf("standard board ran AIH: %+v", s)
	}
}

func TestReceiveCachingEnablesMigrationHit(t *testing.T) {
	r := newRig(t, config.NICCNI, nil)
	rxBuf := uint64(0x40000)
	r.boards[1].Register(opData, true, func(at sim.Time, m *Message) {})
	r.k.Spawn("sender", func(p *sim.Proc) {
		r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 2048,
			VAddr: 0x10000, DeliverVAddr: rxBuf, DeliverBytes: 2048, CacheRx: true})
	})
	r.k.Run()
	b1 := r.boards[1]
	if b1.MC.Stats.RxBindings != 1 {
		t.Fatalf("RxBindings = %d, want 1", b1.MC.Stats.RxBindings)
	}
	// The migrated page can now leave node 1 without a host DMA.
	if !b1.MC.Resident(rxBuf) {
		t.Fatal("arriving page not resident after receive caching")
	}
}

func TestReceiveCachingAblation(t *testing.T) {
	r := newRig(t, config.NICCNI, func(c *config.Config) { c.ReceiveCaching = false })
	r.boards[1].Register(opData, true, func(sim.Time, *Message) {})
	r.k.Spawn("sender", func(p *sim.Proc) {
		r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 2048,
			VAddr: 0x10000, DeliverVAddr: 0x40000, DeliverBytes: 2048, CacheRx: true})
	})
	r.k.Run()
	if r.boards[1].MC.Stats.RxBindings != 0 {
		t.Fatal("receive caching disabled but a binding appeared")
	}
}

func TestFragmentedPacketUsesFlowState(t *testing.T) {
	r := newRig(t, config.NICCNI, nil)
	r.boards[1].Register(opData, true, func(sim.Time, *Message) {})
	r.k.Spawn("sender", func(p *sim.Proc) {
		r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 4096, VAddr: 0x10000})
	})
	r.k.Run()
	pf := r.boards[1].PF
	if pf.Stats.FragInstalls != 1 {
		t.Fatalf("FragInstalls = %d, want 1", pf.Stats.FragInstalls)
	}
	// 86 cells: 85 routed through the flow state.
	if pf.Stats.FragHits != 85 {
		t.Fatalf("FragHits = %d, want 85", pf.Stats.FragHits)
	}
	if pf.FragmentFlows() != 0 {
		t.Fatal("fragment flow leaked")
	}
}

func TestNoFlushSkipsFlushCost(t *testing.T) {
	r := newRig(t, config.NICCNI, nil)
	r.boards[1].Register(opData, true, func(sim.Time, *Message) {})
	r.k.Spawn("app", func(p *sim.Proc) {
		// Dirty the buffer, then send with NoFlush.
		r.mem[0].WriteRange(0x10000, 2048)
		r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 2048,
			VAddr: 0x10000, NoFlush: true})
	})
	r.k.Run()
	if r.boards[0].Stats.FlushCycles != 0 {
		t.Fatalf("FlushCycles = %d with NoFlush", r.boards[0].Stats.FlushCycles)
	}
}

func TestSendFlushesDirtyBuffer(t *testing.T) {
	r := newRig(t, config.NICCNI, nil)
	r.boards[1].Register(opData, true, func(sim.Time, *Message) {})
	r.k.Spawn("app", func(p *sim.Proc) {
		r.mem[0].WriteRange(0x10000, 2048)
		r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 2048, VAddr: 0x10000})
	})
	r.k.Run()
	if r.boards[0].Stats.FlushCycles == 0 {
		t.Fatal("dirty buffer sent without flush cost")
	}
	if r.mem[0].Stats.FlushedLns == 0 {
		t.Fatal("no lines actually flushed")
	}
}

func TestNoteWriteInvalidatesWithoutSnooping(t *testing.T) {
	r := newRig(t, config.NICCNI, func(c *config.Config) { c.ConsistencySnooping = false })
	r.boards[1].Register(opData, true, func(sim.Time, *Message) {})
	page := uint64(0x10000)
	r.k.Spawn("app", func(p *sim.Proc) {
		m := &Message{From: 0, To: 1, Op: opData, Size: 2048, VAddr: page, CacheTx: true}
		r.boards[0].Send(p, m)
		p.Advance(10_000_000)
		p.Sync()
		r.boards[0].NoteWrite(page + 100) // CPU writes the page
		m2 := &Message{From: 0, To: 1, Op: opData, Size: 2048, VAddr: page, CacheTx: true}
		r.boards[0].Send(p, m2)
	})
	r.k.Run()
	// Without snooping the write killed the binding: both sends DMA.
	if r.boards[0].Stats.TxDMAs != 2 {
		t.Fatalf("TxDMAs = %d, want 2 (binding must die without snooping)",
			r.boards[0].Stats.TxDMAs)
	}
}

func TestSnoopingKeepsBindingThroughWrites(t *testing.T) {
	r := newRig(t, config.NICCNI, nil)
	r.boards[1].Register(opData, true, func(sim.Time, *Message) {})
	page := uint64(0x10000)
	r.k.Spawn("app", func(p *sim.Proc) {
		m := &Message{From: 0, To: 1, Op: opData, Size: 2048, VAddr: page, CacheTx: true}
		r.boards[0].Send(p, m)
		p.Advance(10_000_000)
		p.Sync()
		r.boards[0].NoteWrite(page + 100)
		r.mem[0].WriteRange(page, 2048) // dirty it so the flush snoops
		m2 := &Message{From: 0, To: 1, Op: opData, Size: 2048, VAddr: page, CacheTx: true}
		r.boards[0].Send(p, m2)
	})
	r.k.Run()
	if r.boards[0].Stats.TxDMAs != 1 {
		t.Fatalf("TxDMAs = %d, want 1 (snooping keeps binding valid)", r.boards[0].Stats.TxDMAs)
	}
	if r.boards[0].MC.Stats.SnoopUpdates == 0 {
		t.Fatal("flush of a bound dirty page must register snoop updates")
	}
}

func TestSendAtFromAIHCostsHostNothing(t *testing.T) {
	// Node 1's AIH replies to node 0 directly from the board.
	r := newRig(t, config.NICCNI, nil)
	gotReply := false
	r.boards[1].Register(opData, true, func(at sim.Time, m *Message) {
		r.boards[1].SendAt(at, &Message{From: 1, To: 0, Op: opReply, Size: 64})
	})
	r.boards[0].Register(opReply, true, func(sim.Time, *Message) { gotReply = true })
	host1 := r.k.Spawn("host1", func(p *sim.Proc) { p.Advance(50_000_000); p.Sync() })
	r.boards[1].SetHostProc(host1)
	r.k.Spawn("sender", func(p *sim.Proc) {
		r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 64})
	})
	r.k.Run()
	if !gotReply {
		t.Fatal("AIH reply never arrived")
	}
	if host1.PenaltyTime != 0 {
		t.Fatal("AIH round trip must not touch the remote host CPU")
	}
}

func TestSendAtOnStandardChargesHost(t *testing.T) {
	r := newRig(t, config.NICStandard, nil)
	gotReply := false
	r.boards[1].Register(opData, false, func(at sim.Time, m *Message) {
		r.boards[1].SendAt(at, &Message{From: 1, To: 0, Op: opReply, Size: 64})
	})
	r.boards[0].Register(opReply, false, func(sim.Time, *Message) { gotReply = true })
	host1 := r.k.Spawn("host1", func(p *sim.Proc) { p.Advance(500_000_000); p.Sync() })
	r.boards[1].SetHostProc(host1)
	r.k.Spawn("sender", func(p *sim.Proc) {
		r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 64})
	})
	r.k.Run()
	if !gotReply {
		t.Fatal("reply never arrived")
	}
	if host1.PenaltyTime == 0 {
		t.Fatal("standard protocol service must steal remote host CPU time")
	}
}

func TestSendReturnsOverheadCharged(t *testing.T) {
	r := newRig(t, config.NICCNI, nil)
	r.boards[1].Register(opData, true, func(sim.Time, *Message) {})
	var overhead sim.Time
	r.k.Spawn("app", func(p *sim.Proc) {
		overhead = r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 64, VAddr: 0x1000})
	})
	r.k.Run()
	want := r.cfg.NSToCycles(r.cfg.ADCSendNS)
	if overhead < want {
		t.Fatalf("overhead %d < ADC enqueue cost %d", overhead, want)
	}
}

func TestUnregisteredOpPanics(t *testing.T) {
	r := newRig(t, config.NICCNI, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("delivery to unregistered op did not panic")
		}
	}()
	r.k.Spawn("sender", func(p *sim.Proc) {
		r.boards[0].Send(p, &Message{From: 0, To: 1, Op: 99, Size: 64})
	})
	r.k.Run()
}

package nic

import (
	"testing"

	"cni/internal/config"
	"cni/internal/sim"
)

// latencyWith measures a warmed one-way message with a config tweak.
func latencyWith(t *testing.T, kind config.NICKind, size int, tweak func(*config.Config)) sim.Time {
	t.Helper()
	r := newRig(t, kind, tweak)
	var sent, got []sim.Time
	r.boards[1].Register(opData, false, func(at sim.Time, m *Message) { got = append(got, at) })
	r.k.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			p.Sync()
			sent = append(sent, p.Local())
			r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: size,
				VAddr: 0x10000, CacheTx: true})
			p.Advance(100_000_000)
		}
	})
	r.k.Run()
	return got[2] - sent[2]
}

func TestSoftwareClassifierCostsMore(t *testing.T) {
	hw := latencyWith(t, config.NICCNI, 512, nil)
	sw := latencyWith(t, config.NICCNI, 512, func(c *config.Config) {
		c.UseSoftwareClassifer = true
	})
	if sw <= hw {
		t.Fatalf("software classification (%d) not slower than PATHFINDER (%d)", sw, hw)
	}
	// The gap should be roughly the configured software cost.
	cfg := config.Default()
	want := cfg.NSToCycles(cfg.SoftwareClassifyNS) - cfg.NICToCPU(cfg.PathfinderCycles)
	gap := sw - hw
	if gap < want/2 || gap > want*2 {
		t.Fatalf("classifier gap %d cycles, want about %d", gap, want)
	}
}

func TestLargerCellsReduceLatency(t *testing.T) {
	small := latencyWith(t, config.NICCNI, 4096, nil)
	big := latencyWith(t, config.NICCNI, 4096, func(c *config.Config) {
		c.CellBytes = 261
		c.CellPayloadBytes = 256
	})
	unlimited := latencyWith(t, config.NICCNI, 4096, func(c *config.Config) {
		c.UnrestrictedCell = true
	})
	if big >= small {
		t.Fatalf("256B cells (%d) not faster than 48B cells (%d)", big, small)
	}
	if unlimited >= big {
		t.Fatalf("unlimited cells (%d) not faster than 256B cells (%d)", unlimited, big)
	}
}

func TestTransmitProtectionEnforced(t *testing.T) {
	// A send naming memory outside the pinned regions must be rejected
	// by the enqueue-time check (the only protection on the data path).
	r := newRig(t, config.NICCNI, nil)
	r.boards[1].Register(opData, true, func(sim.Time, *Message) {})
	caught := false
	r.k.Spawn("rogue", func(p *sim.Proc) {
		defer func() { caught = recover() != nil }()
		r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 64,
			VAddr: 0xdead0000})
	})
	r.k.Run()
	if !caught {
		t.Fatal("out-of-region transmit was accepted")
	}
}

func TestEventLimitCatchesLivelock(t *testing.T) {
	// Failure injection: a protocol that ping-pongs forever is caught
	// by the kernel's event limit instead of hanging the test binary.
	r := newRig(t, config.NICCNI, nil)
	r.k.SetEventLimit(10_000)
	r.boards[0].Register(opReply, true, func(at sim.Time, m *Message) {
		r.boards[0].SendAt(at, &Message{From: 0, To: 1, Op: opData, Size: 64})
	})
	r.boards[1].Register(opData, true, func(at sim.Time, m *Message) {
		r.boards[1].SendAt(at, &Message{From: 1, To: 0, Op: opReply, Size: 64})
	})
	defer func() {
		if recover() == nil {
			t.Fatal("livelock not caught by event limit")
		}
	}()
	r.k.Spawn("kick", func(p *sim.Proc) {
		r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 64})
	})
	r.k.Run()
}

func TestDeterministicLatencyAcrossRuns(t *testing.T) {
	a := latencyWith(t, config.NICCNI, 2048, nil)
	b := latencyWith(t, config.NICCNI, 2048, nil)
	if a != b {
		t.Fatalf("latency not deterministic: %d vs %d", a, b)
	}
}

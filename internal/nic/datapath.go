package nic

// This file is the strategy layer the Board delegates every
// kind-specific decision to. Board stays the kind-independent shell —
// queues, AIH dispatch, ATM framing, reliability windows, stats — and a
// Datapath supplies the per-model policy: how a send is launched, how
// an arrival reaches the host, where retransmits come from, and what
// each of those costs the host CPU. One implementation exists per
// registered config.NICKind:
//
//   - cniPath: ADC user-level queues, Message Cache with snooping,
//     PATHFINDER, Application Interrupt Handlers, poll/interrupt hybrid
//     notification. Retransmits relaunch from the board-resident PDU.
//   - osirisPath: the ADC baseline the CNI derives from. User-level
//     queues (sends and dequeues cost the ADC enqueue/dequeue), but no
//     Message Cache, no snooping, no AIHs: every transmit DMAs, every
//     arrival interrupts the host, protocol code runs on the host, and
//     a retransmit re-DMAs the buffer after a host resend.
//   - standardPath: the kernel-mediated interface. Sends pay the kernel
//     send path, arrivals pay an interrupt plus the kernel receive
//     path, and the retransmit machinery is kernel code.
//
// Constructors are looked up in a registry keyed by config.NICKind
// (RegisterDatapath), mirroring the model registry in internal/config;
// a constructor also provisions the board components its model owns
// (Message Cache, PATHFINDER, device channel).
//
// Cost hooks that model an interrupt (Notify, TimeoutHostCycles,
// ControlRxHostCycles) account it in the board's Stats as a side
// effect, so the shell never needs to know which notification policy
// ran.

import (
	"fmt"

	"cni/internal/adc"
	"cni/internal/config"
	"cni/internal/msgcache"
	"cni/internal/pathfinder"
	"cni/internal/sim"
)

// Datapath is the kind-specific half of a Board.
type Datapath interface {
	// Kind identifies the model this datapath implements.
	Kind() config.NICKind

	// --- capabilities: upper layers (dsm, collective, rpc,
	// experiments) ask these instead of switching on the kind ---

	// HandlersOnBoard reports whether registered protocol handlers may
	// run as Application Interrupt Handlers on the receive processor.
	HandlersOnBoard() bool
	// UserLevelQueues reports whether the host reaches the board
	// through ADC queues mapped into user space, so a send costs the
	// ADC enqueue rather than a kernel path.
	UserLevelQueues() bool
	// ProtocolCharged reports whether the receive path already charges
	// the host its protocol-processing cost for host-handled arrivals;
	// when false the protocol layer must account that cost itself.
	ProtocolCharged() bool
	// ProtocolStateOnBoard reports whether per-connection protocol
	// state (the DSM's probable-owner table, parked requests, applied
	// vectors) lives in board memory where the AIHs run, so a handler
	// that forwards or replies never touches host memory. False means
	// the state is host-resident and every handler invocation already
	// paid the host path to reach it.
	ProtocolStateOnBoard() bool

	// --- send launch ---

	// SendCycles is the host cost of Board.Send beyond the cache flush:
	// the ADC enqueue or the kernel send path.
	SendCycles() sim.Time
	// HandlerSendCycles is the host cost of Board.SendAt (the handler
	// reply path). Zero means the reply is issued from the board itself
	// and the host — including the pre-send flush — is never involved.
	HandlerSendCycles() sim.Time

	// --- receive delivery and host notification ---

	// RecvHostCycles is the host-path cost appended to both the notify
	// latency and the host penalty of a host-handled arrival (kernel
	// receive path and/or host protocol processing).
	RecvHostCycles() sim.Time
	// RecvDequeueCycles is the application's cost to pop one completion
	// from its receive queue (zero when the kernel hands the data over
	// inside RecvHostCycles).
	RecvDequeueCycles() sim.Time
	// WakeDelayCycles is the extra latency before a blocked application
	// thread notices a completion (the CNI's poll of the receive queue).
	WakeDelayCycles() sim.Time
	// Notify models how the board gets the host's attention at time at,
	// returning when the host notices and the CPU cycles stolen from
	// it. Implementations account interrupts/polls in Stats.
	Notify(at sim.Time) (notice, penalty sim.Time)

	// --- reliability (go-back-N) hooks ---

	// TimeoutHostCycles is the host cost of a retransmit-timer expiry
	// (a kernel timer interrupt when the protocol runs on the host).
	TimeoutHostCycles() sim.Time
	// RetransmitBoardCycles is the transmit-processor bookkeeping added
	// per PDU relaunched from a board-resident copy.
	RetransmitBoardCycles() sim.Time
	// RelaunchFromHost reports whether a retransmit must re-DMA the
	// buffer from host memory, and the host cycles of the resend path
	// that precedes it. (false, 0) means the board retained the PDU.
	RelaunchFromHost() (redma bool, host sim.Time)
	// ControlRxHostCycles is the host cost of receiving one ACK/NAK
	// control cell.
	ControlRxHostCycles() sim.Time
	// ControlTxHostCycles is the host cost of emitting one ACK/NAK
	// control cell.
	ControlTxHostCycles() sim.Time
}

// datapaths maps each registered model to its constructor. The
// constructor provisions the board components the model owns and
// returns the policy object; it runs once per Board, from NewBoard.
var datapaths = map[config.NICKind]func(*Board) Datapath{}

// RegisterDatapath installs the Datapath constructor for kind.
// Registering a kind twice is a programming error.
func RegisterDatapath(kind config.NICKind, ctor func(*Board) Datapath) {
	if _, dup := datapaths[kind]; dup {
		panic(fmt.Sprintf("nic: datapath for %v registered twice", kind))
	}
	datapaths[kind] = ctor
}

func init() {
	RegisterDatapath(config.NICCNI, newCNIPath)
	RegisterDatapath(config.NICStandard, newStandardPath)
	RegisterDatapath(config.NICOsiris, newOsirisPath)
}

// newDatapath builds the datapath for b's configured kind.
func newDatapath(b *Board) Datapath {
	ctor, ok := datapaths[b.cfg.NIC]
	if !ok {
		panic(fmt.Sprintf("nic: no datapath registered for NIC kind %d", int(b.cfg.NIC)))
	}
	return ctor(b)
}

// openChannel provisions the node's ADC manager and device channel
// (the models with user-level queues share this).
func openChannel(b *Board) {
	b.ADC = adc.NewManager(64, 256)
	ch, err := b.ADC.Open(b.node, uint32(b.node))
	if err != nil {
		panic(fmt.Sprintf("nic: opening device channel: %v", err))
	}
	b.channel = ch
}

// interruptNotify is the notification policy shared by every
// non-polling path: deliver a host interrupt at time at.
func interruptNotify(b *Board, at sim.Time) (notice, penalty sim.Time) {
	b.Stats.Interrupts++
	c := b.cfg.InterruptCycles()
	return at + c, c
}

// --- CNI ---

// cniPath implements the paper's cluster network interface. It owns
// the poll/interrupt hybrid's state: whether the channel has notified
// before, when, and how close together arrivals must land for the host
// to stay in polling mode.
type cniPath struct {
	b              *Board
	lastHostNotify sim.Time
	haveNotified   bool
	pollWindow     sim.Time
}

func newCNIPath(b *Board) Datapath {
	cfg := b.cfg
	b.MC = msgcache.New(cfg.MessageCacheByte, cfg.PageBytes, cfg.ConsistencySnooping)
	b.PF = pathfinder.New()
	openChannel(b)
	p := &cniPath{b: b}
	if cfg.PollSwitchRate > 0 {
		cyclesPerSecond := float64(cfg.CPUFreqMHz) * 1e6
		p.pollWindow = sim.Time(cyclesPerSecond / cfg.PollSwitchRate)
	}
	return p
}

func (p *cniPath) Kind() config.NICKind       { return config.NICCNI }
func (p *cniPath) HandlersOnBoard() bool      { return true }
func (p *cniPath) UserLevelQueues() bool      { return true }
func (p *cniPath) ProtocolCharged() bool      { return false }
func (p *cniPath) ProtocolStateOnBoard() bool { return true }

func (p *cniPath) SendCycles() sim.Time        { return p.b.cfg.NSToCycles(p.b.cfg.ADCSendNS) }
func (p *cniPath) HandlerSendCycles() sim.Time { return 0 }

func (p *cniPath) RecvHostCycles() sim.Time    { return 0 }
func (p *cniPath) RecvDequeueCycles() sim.Time { return p.b.cfg.NSToCycles(p.b.cfg.ADCRecvNS) }
func (p *cniPath) WakeDelayCycles() sim.Time   { return p.b.cfg.NSToCycles(p.b.cfg.PollNS) }

// Notify prefers polling when arrivals are frequent and falls back to
// interrupts when the channel has gone quiet (Section 2.1).
func (p *cniPath) Notify(at sim.Time) (notice, penalty sim.Time) {
	if p.b.cfg.PureInterrupt {
		return interruptNotify(p.b, at)
	}
	polling := p.haveNotified && at-p.lastHostNotify <= p.pollWindow
	p.haveNotified = true
	p.lastHostNotify = at
	if polling {
		p.b.Stats.Polls++
		c := p.b.cfg.NSToCycles(p.b.cfg.PollNS)
		return at + c, c
	}
	return interruptNotify(p.b, at)
}

func (p *cniPath) TimeoutHostCycles() sim.Time { return 0 }
func (p *cniPath) RetransmitBoardCycles() sim.Time {
	return p.b.cfg.NICToCPU(p.b.cfg.NICRetransmitCycles)
}
func (p *cniPath) RelaunchFromHost() (bool, sim.Time) { return false, 0 }
func (p *cniPath) ControlRxHostCycles() sim.Time      { return 0 }
func (p *cniPath) ControlTxHostCycles() sim.Time      { return 0 }

// --- standard ---

// standardPath implements the kernel-mediated baseline.
type standardPath struct {
	b *Board
}

func newStandardPath(b *Board) Datapath { return &standardPath{b: b} }

func (p *standardPath) Kind() config.NICKind       { return config.NICStandard }
func (p *standardPath) HandlersOnBoard() bool      { return false }
func (p *standardPath) UserLevelQueues() bool      { return false }
func (p *standardPath) ProtocolCharged() bool      { return true }
func (p *standardPath) ProtocolStateOnBoard() bool { return false }

func (p *standardPath) SendCycles() sim.Time        { return p.b.cfg.NSToCycles(p.b.cfg.KernelSendNS) }
func (p *standardPath) HandlerSendCycles() sim.Time { return p.b.cfg.NSToCycles(p.b.cfg.KernelSendNS) }

// RecvHostCycles is the kernel receive path plus protocol processing
// on the host CPU.
func (p *standardPath) RecvHostCycles() sim.Time {
	return p.b.cfg.NSToCycles(p.b.cfg.KernelRecvNS + p.b.cfg.HostProtocolNS)
}
func (p *standardPath) RecvDequeueCycles() sim.Time { return 0 }
func (p *standardPath) WakeDelayCycles() sim.Time   { return 0 }

func (p *standardPath) Notify(at sim.Time) (notice, penalty sim.Time) {
	return interruptNotify(p.b, at)
}

// TimeoutHostCycles: the retransmit timer is a host kernel timer, so
// the host takes an interrupt before the kernel can resend anything.
func (p *standardPath) TimeoutHostCycles() sim.Time {
	p.b.Stats.Interrupts++
	return p.b.cfg.InterruptCycles()
}
func (p *standardPath) RetransmitBoardCycles() sim.Time { return 0 }
func (p *standardPath) RelaunchFromHost() (bool, sim.Time) {
	return true, p.b.cfg.NSToCycles(p.b.cfg.KernelSendNS)
}

// ControlRxHostCycles: every control cell interrupts the host and runs
// the kernel receive path.
func (p *standardPath) ControlRxHostCycles() sim.Time {
	p.b.Stats.Interrupts++
	return p.b.cfg.InterruptCycles() + p.b.cfg.NSToCycles(p.b.cfg.KernelRecvNS)
}
func (p *standardPath) ControlTxHostCycles() sim.Time {
	return p.b.cfg.NSToCycles(p.b.cfg.KernelSendNS)
}

// --- OSIRIS ---

// osirisPath implements the ADC baseline: user-level queues without a
// Message Cache, interrupt-driven receive, protocol on the host.
type osirisPath struct {
	b *Board
}

func newOsirisPath(b *Board) Datapath {
	openChannel(b)
	return &osirisPath{b: b}
}

func (p *osirisPath) Kind() config.NICKind       { return config.NICOsiris }
func (p *osirisPath) HandlersOnBoard() bool      { return false }
func (p *osirisPath) UserLevelQueues() bool      { return true }
func (p *osirisPath) ProtocolCharged() bool      { return true }
func (p *osirisPath) ProtocolStateOnBoard() bool { return false }

func (p *osirisPath) SendCycles() sim.Time        { return p.b.cfg.NSToCycles(p.b.cfg.ADCSendNS) }
func (p *osirisPath) HandlerSendCycles() sim.Time { return p.b.cfg.NSToCycles(p.b.cfg.ADCSendNS) }

// RecvHostCycles: the ADC hands the completion to user space without a
// kernel receive path, but the protocol handler still runs on the host.
func (p *osirisPath) RecvHostCycles() sim.Time {
	return p.b.cfg.NSToCycles(p.b.cfg.HostProtocolNS)
}
func (p *osirisPath) RecvDequeueCycles() sim.Time { return p.b.cfg.NSToCycles(p.b.cfg.ADCRecvNS) }
func (p *osirisPath) WakeDelayCycles() sim.Time   { return 0 }

func (p *osirisPath) Notify(at sim.Time) (notice, penalty sim.Time) {
	return interruptNotify(p.b, at)
}

// TimeoutHostCycles: the retransmit timer lives on the host, so an
// expiry interrupts it (the board retains nothing to resend from).
func (p *osirisPath) TimeoutHostCycles() sim.Time {
	p.b.Stats.Interrupts++
	return p.b.cfg.InterruptCycles()
}
func (p *osirisPath) RetransmitBoardCycles() sim.Time { return 0 }
func (p *osirisPath) RelaunchFromHost() (bool, sim.Time) {
	return true, p.b.cfg.NSToCycles(p.b.cfg.ADCSendNS)
}

// ControlRxHostCycles: a control cell interrupts the host, which pops
// it from the user-level receive queue.
func (p *osirisPath) ControlRxHostCycles() sim.Time {
	p.b.Stats.Interrupts++
	return p.b.cfg.InterruptCycles() + p.b.cfg.NSToCycles(p.b.cfg.ADCRecvNS)
}
func (p *osirisPath) ControlTxHostCycles() sim.Time {
	return p.b.cfg.NSToCycles(p.b.cfg.ADCSendNS)
}

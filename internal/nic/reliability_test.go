package nic

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cni/internal/config"
	"cni/internal/sim"
)

// lossyRun drives n sequenced messages (Aux = 0..n-1) from node 0 to
// node 1 over a faulty fabric and returns the rig plus the Aux values
// in the order node 1's handler saw them.
func lossyRun(t *testing.T, kind config.NICKind, n int, tweak func(*config.Config)) (*rig, []uint32) {
	t.Helper()
	r := newRig(t, kind, tweak)
	var got []uint32
	r.boards[1].Register(opData, true, func(at sim.Time, m *Message) { got = append(got, m.Aux) })
	r.k.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Aux: uint32(i), Size: 512})
			p.Advance(2_000)
			p.Sync()
		}
	})
	r.k.Run()
	return r, got
}

// checkDelivery asserts the go-back-N contract: every PDU delivered
// exactly once, in order, and the retention window never grew past its
// configured bound.
func checkDelivery(t *testing.T, r *rig, got []uint32, n int) {
	t.Helper()
	if len(got) != n {
		t.Fatalf("delivered %d PDUs, want %d (stats: %+v)", len(got), n, r.boards[0].Stats.Rel)
	}
	for i, v := range got {
		if v != uint32(i) {
			t.Fatalf("position %d delivered Aux %d: out of order or duplicated", i, v)
		}
	}
	if w := r.boards[0].Stats.Rel.MaxWindow; w > r.cfg.RetransmitWindow {
		t.Fatalf("window reached %d, configured retention is %d", w, r.cfg.RetransmitWindow)
	}
}

// TestGoBackNDeliveryProperty fuzzes the fault pattern with
// testing/quick: for random seeds and fault intensities, on both
// interfaces, the delivered sequence must be 0..n-1 exactly.
func TestGoBackNDeliveryProperty(t *testing.T) {
	rates := []float64{0, 1e-3, 5e-3, 2e-2}
	prop := func(seed uint64, lossSel, corruptSel, dupSel, reorderSel uint8, std bool) bool {
		kind := config.NICCNI
		if std {
			kind = config.NICStandard
		}
		loss := rates[int(lossSel)%len(rates)]
		corrupt := rates[int(corruptSel)%len(rates)]
		dup := rates[int(dupSel)%len(rates)]
		reorder := int(reorderSel) % 4
		if loss == 0 && corrupt == 0 && dup == 0 && reorder == 0 {
			loss = 1e-3 // keep every case on the faulty path
		}
		const n = 30
		r, got := lossyRun(t, kind, n, func(c *config.Config) {
			c.FaultSeed = seed
			c.CellLossRate = loss
			c.CellCorruptRate = corrupt
			c.CellDupRate = dup
			c.ReorderWindow = reorder
			c.RetransmitWindow = 4
		})
		if len(got) != n {
			return false
		}
		for i, v := range got {
			if v != uint32(i) {
				return false
			}
		}
		return r.boards[0].Stats.Rel.MaxWindow <= r.cfg.RetransmitWindow
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(42))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestGoBackNSurvivesSevereLoss pins a deterministic severe case: 5%
// cell loss on multi-cell PDUs loses a large fraction of packets and
// their ACKs, yet both interfaces must deliver everything in order.
func TestGoBackNSurvivesSevereLoss(t *testing.T) {
	for _, kind := range []config.NICKind{config.NICCNI, config.NICStandard} {
		const n = 50
		r, got := lossyRun(t, kind, n, func(c *config.Config) {
			c.FaultSeed = 7
			c.CellLossRate = 0.05
			c.RetransmitWindow = 4
		})
		checkDelivery(t, r, got, n)
		rel := r.boards[0].Stats.Rel
		if rel.Retransmits == 0 {
			t.Fatalf("%v: severe loss with zero retransmits", kind)
		}
		if r.net.Stats.Faults.CellsDropped == 0 {
			t.Fatalf("%v: injector dropped nothing at 5%% loss", kind)
		}
	}
}

// TestGoBackNSameSeedIsBitIdentical runs the same lossy workload twice
// and requires identical board and fabric statistics: the fault pattern
// and the recovery it provokes are a pure function of the Config.
func TestGoBackNSameSeedIsBitIdentical(t *testing.T) {
	run := func() (Stats, Stats) {
		r, got := lossyRun(t, config.NICCNI, 40, func(c *config.Config) {
			c.FaultSeed = 99
			c.CellLossRate = 0.02
			c.CellCorruptRate = 0.01
			c.CellDupRate = 0.01
			c.ReorderWindow = 3
			c.RetransmitWindow = 4
		})
		checkDelivery(t, r, got, 40)
		return r.boards[0].Stats, r.boards[1].Stats
	}
	a0, a1 := run()
	b0, b1 := run()
	if !reflect.DeepEqual(a0, b0) || !reflect.DeepEqual(a1, b1) {
		t.Fatalf("same seed, different stats:\nrun1 tx %+v\nrun2 tx %+v\nrun1 rx %+v\nrun2 rx %+v", a0, b0, a1, b1)
	}
}

// TestLosslessFabricHasNoReliabilityLayer guards the gating contract:
// with every fault knob zero the reliability layer must not exist at
// all, so fault-free runs stay bit-identical to the seed behavior.
func TestLosslessFabricHasNoReliabilityLayer(t *testing.T) {
	r, got := func() (*rig, []uint32) {
		r := newRig(t, config.NICCNI, nil)
		var got []uint32
		r.boards[1].Register(opData, true, func(at sim.Time, m *Message) { got = append(got, m.Aux) })
		r.k.Spawn("app", func(p *sim.Proc) {
			r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Aux: 5, Size: 512})
		})
		r.k.Run()
		return r, got
	}()
	if r.boards[0].rel != nil || r.boards[1].rel != nil {
		t.Fatal("reliability layer exists on a lossless fabric")
	}
	if r.net.Faulty() {
		t.Fatal("fabric reports faulty with all knobs zero")
	}
	if len(got) != 1 || got[0] != 5 {
		t.Fatalf("lossless delivery broken: %v", got)
	}
	var zero RelStats
	if r.boards[0].Stats.Rel != zero || r.boards[1].Stats.Rel != zero {
		t.Fatalf("reliability counters moved on a lossless fabric: %+v", r.boards[0].Stats.Rel)
	}
}

// TestGoBackNRetainsAcrossMessageCachePressure checks the retention
// interaction: pinned transmit bindings survive the clock sweep while
// unacked, and binding new pages fails rather than evicting them.
func TestGoBackNRetainsAcrossMessageCachePressure(t *testing.T) {
	const n = 20
	r := newRig(t, config.NICCNI, func(c *config.Config) {
		c.FaultSeed = 3
		c.CellLossRate = 0.02
		c.RetransmitWindow = 4
		// Two frames of Message Cache: retention pressure is immediate.
		c.MessageCacheByte = 2 * c.PageBytes
	})
	var got []uint32
	r.boards[1].Register(opData, true, func(at sim.Time, m *Message) { got = append(got, m.Aux) })
	r.k.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			// Cycle through more distinct cacheable pages than frames.
			page := uint64(0x10000 + (i%6)*r.cfg.PageBytes)
			r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Aux: uint32(i),
				Size: r.cfg.PageBytes, VAddr: page, CacheTx: true})
			p.Advance(2_000)
			p.Sync()
		}
	})
	r.k.Run()
	checkDelivery(t, r, got, n)
	if r.boards[0].Stats.Rel.Retransmits == 0 {
		t.Fatal("workload provoked no retransmits; pick a hotter seed")
	}
	if r.boards[0].MC.Stats.Pins == 0 {
		t.Fatal("no transmit bindings were pinned under retention")
	}
}

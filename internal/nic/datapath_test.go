package nic

import (
	"testing"

	"cni/internal/config"
	"cni/internal/sim"
)

// TestDatapathRegistryCoversEveryKind: every kind the config registry
// knows must have a datapath constructor, and building a board for it
// must yield a datapath reporting that same kind.
func TestDatapathRegistryCoversEveryKind(t *testing.T) {
	for _, kind := range config.Kinds() {
		if _, ok := datapaths[kind]; !ok {
			t.Errorf("no datapath registered for %v", kind)
			continue
		}
		r := newRig(t, kind, nil)
		dp := r.boards[0].Datapath()
		if dp.Kind() != kind {
			t.Errorf("datapath for %v reports kind %v", kind, dp.Kind())
		}
	}
}

// TestDatapathCostsMatchModelConstants pins each cost hook to the
// configuration constant it stood for before the strategy refactor, so
// the refactor is provably behavior-preserving at the cost level.
func TestDatapathCostsMatchModelConstants(t *testing.T) {
	cfg := config.Default()
	ns := cfg.NSToCycles

	cases := []struct {
		kind config.NICKind

		send, handlerSend     sim.Time
		recvHost, recvDequeue sim.Time
		wake                  sim.Time
		timeout, retxBoard    sim.Time
		redma                 bool
		relaunchHost          sim.Time
		ctrlRx, ctrlTx        sim.Time
	}{
		{
			kind: config.NICCNI,
			send: ns(cfg.ADCSendNS), handlerSend: 0,
			recvHost: 0, recvDequeue: ns(cfg.ADCRecvNS),
			wake:    ns(cfg.PollNS),
			timeout: 0, retxBoard: cfg.NICToCPU(cfg.NICRetransmitCycles),
			redma: false, relaunchHost: 0,
			ctrlRx: 0, ctrlTx: 0,
		},
		{
			kind: config.NICOsiris,
			send: ns(cfg.ADCSendNS), handlerSend: ns(cfg.ADCSendNS),
			recvHost: ns(cfg.HostProtocolNS), recvDequeue: ns(cfg.ADCRecvNS),
			wake:    0,
			timeout: cfg.InterruptCycles(), retxBoard: 0,
			redma: true, relaunchHost: ns(cfg.ADCSendNS),
			ctrlRx: cfg.InterruptCycles() + ns(cfg.ADCRecvNS),
			ctrlTx: ns(cfg.ADCSendNS),
		},
		{
			kind: config.NICStandard,
			send: ns(cfg.KernelSendNS), handlerSend: ns(cfg.KernelSendNS),
			recvHost: ns(cfg.KernelRecvNS + cfg.HostProtocolNS), recvDequeue: 0,
			wake:    0,
			timeout: cfg.InterruptCycles(), retxBoard: 0,
			redma: true, relaunchHost: ns(cfg.KernelSendNS),
			ctrlRx: cfg.InterruptCycles() + ns(cfg.KernelRecvNS),
			ctrlTx: ns(cfg.KernelSendNS),
		},
	}
	for _, tc := range cases {
		r := newRig(t, tc.kind, nil)
		dp := r.boards[0].Datapath()
		check := func(name string, got, want sim.Time) {
			if got != want {
				t.Errorf("%v: %s = %d cycles, want %d", tc.kind, name, got, want)
			}
		}
		check("SendCycles", dp.SendCycles(), tc.send)
		check("HandlerSendCycles", dp.HandlerSendCycles(), tc.handlerSend)
		check("RecvHostCycles", dp.RecvHostCycles(), tc.recvHost)
		check("RecvDequeueCycles", dp.RecvDequeueCycles(), tc.recvDequeue)
		check("WakeDelayCycles", dp.WakeDelayCycles(), tc.wake)
		check("TimeoutHostCycles", dp.TimeoutHostCycles(), tc.timeout)
		check("RetransmitBoardCycles", dp.RetransmitBoardCycles(), tc.retxBoard)
		redma, host := dp.RelaunchFromHost()
		if redma != tc.redma {
			t.Errorf("%v: RelaunchFromHost redma = %v, want %v", tc.kind, redma, tc.redma)
		}
		check("RelaunchFromHost host", host, tc.relaunchHost)
		check("ControlRxHostCycles", dp.ControlRxHostCycles(), tc.ctrlRx)
		check("ControlTxHostCycles", dp.ControlTxHostCycles(), tc.ctrlTx)
	}
}

// TestDatapathCapabilities pins the capability predicates upper layers
// branch on.
func TestDatapathCapabilities(t *testing.T) {
	cases := []struct {
		kind                    config.NICKind
		onBoard, userQ, charged bool
	}{
		{config.NICCNI, true, true, false},
		{config.NICOsiris, false, true, true},
		{config.NICStandard, false, false, true},
	}
	for _, tc := range cases {
		r := newRig(t, tc.kind, nil)
		b := r.boards[0]
		if b.HandlersOnBoard() != tc.onBoard {
			t.Errorf("%v: HandlersOnBoard = %v", tc.kind, b.HandlersOnBoard())
		}
		if b.UserLevelQueues() != tc.userQ {
			t.Errorf("%v: UserLevelQueues = %v", tc.kind, b.UserLevelQueues())
		}
		if b.ProtocolCharged() != tc.charged {
			t.Errorf("%v: ProtocolCharged = %v", tc.kind, b.ProtocolCharged())
		}
	}
}

// TestBoardProvisioningPerKind: each constructor provisions exactly the
// components its model owns — the CNI a Message Cache, PATHFINDER and a
// device channel; OSIRIS only the channel; the standard board none.
func TestBoardProvisioningPerKind(t *testing.T) {
	cases := []struct {
		kind            config.NICKind
		mc, pf, channel bool
	}{
		{config.NICCNI, true, true, true},
		{config.NICOsiris, false, false, true},
		{config.NICStandard, false, false, false},
	}
	for _, tc := range cases {
		r := newRig(t, tc.kind, nil)
		b := r.boards[0]
		if (b.MC != nil) != tc.mc {
			t.Errorf("%v: Message Cache present = %v, want %v", tc.kind, b.MC != nil, tc.mc)
		}
		if (b.PF != nil) != tc.pf {
			t.Errorf("%v: PATHFINDER present = %v, want %v", tc.kind, b.PF != nil, tc.pf)
		}
		if (b.Channel() != nil) != tc.channel {
			t.Errorf("%v: device channel present = %v, want %v", tc.kind, b.Channel() != nil, tc.channel)
		}
	}
}

// TestVCIUses16BitLanes: the virtual-circuit identifier packs From and
// To into disjoint 16-bit lanes; with the old 8-bit packing nodes 258
// and (2,2) collided ((1<<8)|258 == (2<<8)|2).
func TestVCIUses16BitLanes(t *testing.T) {
	a := vci(&Message{From: 1, To: 258})
	b := vci(&Message{From: 2, To: 2})
	if a == b {
		t.Fatalf("vci collision: (1->258) and (2->2) both map to %#x", a)
	}
	if got, want := vci(&Message{From: 3, To: 5}), uint32(3<<16|5); got != want {
		t.Fatalf("vci(3->5) = %#x, want %#x", got, want)
	}
}

// TestOsirisEveryTransmitDMAs: with no Message Cache, resending the
// same warm buffer must DMA every time on OSIRIS, unlike the CNI.
func TestOsirisEveryTransmitDMAs(t *testing.T) {
	r := newRig(t, config.NICOsiris, nil)
	r.boards[1].Register(opData, true, func(sim.Time, *Message) {})
	r.k.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 4096, VAddr: 0x10000, CacheTx: true})
			p.Advance(1_000_000)
			p.Sync()
		}
	})
	r.k.Run()
	if r.boards[0].Stats.TxDMAs != 3 {
		t.Fatalf("TxDMAs = %d, want 3 (OSIRIS has no transmit cache)", r.boards[0].Stats.TxDMAs)
	}
	if r.boards[0].Stats.AIHRuns != 0 || r.boards[1].Stats.AIHRuns != 0 {
		t.Fatal("OSIRIS must not run Application Interrupt Handlers")
	}
}

// TestOsirisReceiveInterrupts: every OSIRIS arrival interrupts the
// host, even under the arrival rates that keep the CNI in polling mode.
func TestOsirisReceiveInterrupts(t *testing.T) {
	const n = 5
	r := newRig(t, config.NICOsiris, func(c *config.Config) { c.PollSwitchRate = 1e9 })
	got := 0
	r.boards[1].Register(opData, false, func(sim.Time, *Message) { got++ })
	r.k.Spawn("app", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			r.boards[0].Send(p, &Message{From: 0, To: 1, Op: opData, Size: 256})
			p.Advance(10_000)
			p.Sync()
		}
	})
	r.k.Run()
	if got != n {
		t.Fatalf("%d of %d messages delivered", got, n)
	}
	if r.boards[1].Stats.Interrupts != n {
		t.Fatalf("Interrupts = %d, want %d (OSIRIS never polls)", r.boards[1].Stats.Interrupts, n)
	}
	if r.boards[1].Stats.Polls != 0 {
		t.Fatalf("Polls = %d, want 0", r.boards[1].Stats.Polls)
	}
}

// TestRegisterDatapathRejectsDuplicates mirrors the config registry's
// duplicate guard.
func TestRegisterDatapathRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterDatapath(config.NICCNI, newCNIPath)
}

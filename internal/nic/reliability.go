package nic

// This file is the per-VC go-back-N reliability layer that sits between
// the transmit/receive processors and the fabric when fault injection is
// enabled (Config.FaultsEnabled). The paper assumes a lossless fabric;
// to compare the two interfaces under loss we give both the same
// protocol — sequence numbers, cumulative ACKs, gap/CRC NAKs, timeout
// retransmission with exponential backoff — but run it where each
// interface would run it:
//
//   - on the CNI the protocol is firmware on the board's transmit and
//     receive processors: unacked PDUs stay resident in board memory
//     (their Message Cache bindings pinned against the clock sweep), a
//     retransmit re-launches from the board copy with no DMA and no
//     host involvement, and control cells are turned around entirely on
//     the board;
//   - on the standard interface the protocol is kernel code: every
//     control cell interrupts the host, the retransmit timer is a host
//     kernel timer, and a retransmit re-DMAs the buffer from host
//     memory after the kernel re-send path.
//
// That asymmetry — not any difference in the protocol itself — is what
// experiment FR1 measures.
//
// The layer is created only when faults are enabled, so the default
// lossless paths are bit-identical to a build without this file.

import (
	"cni/internal/atm"
	"cni/internal/sim"
)

// Reliability control operations, in a range no protocol uses (DSM ops
// are 10..21, msgpass 0x300/0x400+, collectives 0x500/0x501, tests and
// microbenchmarks below 0x5000). They are intercepted by admit before
// PATHFINDER classification, so they need no registered handler. Aux
// carries the sequence number.
const (
	opRelAck uint32 = 0x7A00 // cumulative: everything <= Aux received
	opRelNak uint32 = 0x7A01 // go back: resend everything >= Aux
)

// vcTx is the transmit half of one virtual circuit: the retention
// window of unacked PDUs, the overflow queue waiting for window space,
// and the retransmit timer state. Sequence numbers are never reused
// within a run, so plain uint32 comparison orders them (a VC would need
// 2^32 PDUs to wrap; no simulation gets close).
type vcTx struct {
	peer     int
	nextSeq  uint32
	window   []*Message // unacked, oldest first; len <= RetransmitWindow
	queue    []*Message // sequenced but waiting for window space
	backoff  int64      // current timeout multiplier (1..RetransmitBackoff)
	timerGen uint64     // arming generation; stale timer events no-op
	nakMute  sim.Time   // ignore NAKs until then (a retransmit is in flight)
}

// vcRx is the receive half: the next sequence number this board will
// accept from the peer.
type vcRx struct {
	expect uint32
}

// reliability is one board's go-back-N engine.
type reliability struct {
	b        *Board
	timeout  sim.Time // base retransmit timeout in CPU cycles
	tx       []*vcTx  // indexed by destination node
	rx       []*vcRx  // indexed by source node
	retained int      // bytes currently held in transmit windows
}

func newReliability(b *Board) *reliability {
	r := &reliability{
		b:       b,
		timeout: b.cfg.NSToCycles(b.cfg.RetransmitTimeoutNS),
	}
	if r.timeout <= 0 {
		r.timeout = 1
	}
	n := b.net.Nodes()
	for i := 0; i < n; i++ {
		r.tx = append(r.tx, &vcTx{peer: i, backoff: 1})
		r.rx = append(r.rx, &vcRx{})
	}
	return r
}

// --- transmit side ---

// send stamps m with its VC sequence number and either launches it
// (window space available, PDU retained on the board until acked) or
// parks it on the overflow queue. Called from the transmit processor
// for every non-loopback message.
func (r *reliability) send(at sim.Time, m *Message) {
	s := r.tx[m.To]
	m.relSeq = s.nextSeq
	s.nextSeq++
	if len(s.window) >= r.b.cfg.RetransmitWindow {
		s.queue = append(s.queue, m)
		if len(s.queue) > r.b.Stats.Rel.MaxQueued {
			r.b.Stats.Rel.MaxQueued = len(s.queue)
		}
		return
	}
	wasEmpty := len(s.window) == 0
	r.place(at, s, m)
	if wasEmpty {
		r.rearm(at, s)
	}
}

// place appends m to the retention window, pins its buffer pages in the
// Message Cache so the clock sweep cannot evict a PDU the board may
// still have to retransmit, and launches it.
func (r *reliability) place(at sim.Time, s *vcTx, m *Message) {
	s.window = append(s.window, m)
	if len(s.window) > r.b.Stats.Rel.MaxWindow {
		r.b.Stats.Rel.MaxWindow = len(s.window)
	}
	r.retained += m.Size
	if uint64(r.retained) > r.b.Stats.Rel.RetainedBytes {
		r.b.Stats.Rel.RetainedBytes = uint64(r.retained)
	}
	r.b.launch(at, m)
	// Pin after launch: the transmit path may have just created the
	// binding (BindTransmit after the DMA) that retention must protect.
	r.eachPage(m, r.b.MC.Pin)
}

// eachPage applies fn to every page of m's transmit buffer (CNI board
// with a mapped buffer only).
func (r *reliability) eachPage(m *Message, fn func(vaddr uint64) bool) {
	if r.b.MC == nil || m.VAddr == 0 || m.Size <= 0 {
		return
	}
	pb := uint64(r.b.cfg.PageBytes)
	for v := m.VAddr / pb; v <= (m.VAddr+uint64(m.Size)-1)/pb; v++ {
		fn(v * pb)
	}
}

// popAcked releases every window entry with sequence number below
// bound, unpinning its pages; it reports whether anything was released.
func (r *reliability) popAcked(s *vcTx, bound uint32) bool {
	progress := false
	for len(s.window) > 0 && s.window[0].relSeq < bound {
		m := s.window[0]
		s.window[0] = nil
		s.window = s.window[1:]
		r.retained -= m.Size
		r.eachPage(m, r.b.MC.Unpin)
		progress = true
	}
	return progress
}

// refill promotes queued PDUs into freed window space, launching each.
func (r *reliability) refill(at sim.Time, s *vcTx) {
	for len(s.window) < r.b.cfg.RetransmitWindow && len(s.queue) > 0 {
		m := s.queue[0]
		s.queue[0] = nil
		s.queue = s.queue[1:]
		r.place(at, s, m)
	}
}

// drain returns the link serialization time of everything retained in
// s's window — the floor any sane retransmit timer sits above, because
// the ACK for the window tail cannot arrive before the data ahead of it
// has left the link. Without this term a full window of large PDUs
// outlives the base timeout and every fault snowballs into a spurious
// retransmit storm.
func (r *reliability) drain(s *vcTx) sim.Time {
	var d sim.Time
	for _, m := range s.window {
		d += r.b.cfg.SerializeCycles(m.Size)
	}
	return d
}

// rearm restarts (or, with an empty window, disarms) the retransmit
// timer for s. The generation counter cancels the previously armed
// event without touching the kernel's queue.
func (r *reliability) rearm(at sim.Time, s *vcTx) {
	s.timerGen++
	if len(s.window) == 0 {
		return
	}
	gen := s.timerGen
	r.b.k.At(at+r.drain(s)+r.timeout*sim.Time(s.backoff), func() { r.onTimeout(s, gen) })
}

// onTimeout fires when the oldest unacked PDU's timer expires: go back
// and resend the whole window, then back off exponentially. On the
// standard interface the timer is a host kernel timer, so the host
// takes an interrupt before the kernel can resend anything.
func (r *reliability) onTimeout(s *vcTx, gen uint64) {
	if gen != s.timerGen || len(s.window) == 0 {
		return
	}
	b := r.b
	now := b.k.Now()
	b.Stats.Rel.Timeouts++
	if c := b.dp.TimeoutHostCycles(); c > 0 {
		b.penalizeHost(c)
		now += c
	}
	r.retransmitFrom(now, s, s.window[0].relSeq)
	if s.backoff < b.cfg.RetransmitBackoff {
		s.backoff *= 2
		if s.backoff > b.cfg.RetransmitBackoff {
			s.backoff = b.cfg.RetransmitBackoff
		}
	}
	r.rearm(now, s)
}

// onAck processes a cumulative ACK from peer covering everything up to
// and including upto.
func (r *reliability) onAck(peer int, upto uint32, at sim.Time) {
	s := r.tx[peer]
	if !r.popAcked(s, upto+1) {
		return // stale or duplicate ACK: no new information
	}
	s.backoff = 1
	r.refill(at, s)
	r.rearm(at, s)
}

// onNak processes a go-back request: the peer is missing expect, so
// everything below it is implicitly acked and everything from it on in
// the window is resent — unless a retransmit burst is already in
// flight, in which case piling on would only congest the VC.
func (r *reliability) onNak(peer int, expect uint32, at sim.Time) {
	s := r.tx[peer]
	if r.popAcked(s, expect) {
		s.backoff = 1
	}
	if len(s.window) > 0 {
		if at < s.nakMute {
			r.b.Stats.Rel.NaksMuted++
		} else {
			r.retransmitFrom(at, s, expect)
		}
	}
	r.refill(at, s)
	r.rearm(at, s)
}

// retransmitFrom resends every window entry with sequence number >=
// from and opens the NAK mute window for the burst's flight time. The
// walk is synchronous — the firmware sweeps the retained window inside
// the timeout/NAK activation itself, so the whole go-back-N train is
// relaunched before any other same-cycle event gets to run. (Deferring
// the relaunches to same-timestamp events via AtBatch would reorder
// them after already-queued same-cycle work and perturb the goldens.)
func (r *reliability) retransmitFrom(at sim.Time, s *vcTx, from uint32) {
	n := 0
	var flight sim.Time
	for _, m := range s.window {
		if m.relSeq < from {
			continue
		}
		r.relaunch(at, m)
		flight += r.b.cfg.SerializeCycles(m.Size)
		n++
	}
	if n > 0 {
		r.b.Stats.Rel.Retransmits += uint64(n)
		s.nakMute = at + flight + r.timeout/2
	}
}

// relaunch re-transmits one retained PDU. On the CNI the copy is board
// resident: segmentation work plus the firmware's retransmit bookkeeping
// on the transmit processor, no DMA, no host. On the other interfaces
// the board retained nothing, so the host pays its resend path and the
// buffer is DMAed from host memory all over again.
func (r *reliability) relaunch(at sim.Time, m *Message) {
	b := r.b
	cells := int64(b.cfg.Cells(m.Size))
	work := b.cfg.NICToCPU(b.cfg.NICPacketTxCycles + b.cfg.NICCellTxCycles*cells)
	work += b.dp.RetransmitBoardCycles()
	b.Stats.Rel.RetxCycles += work
	_, end := b.txProc.Use(at, work)
	launch := end
	if redma, host := b.dp.RelaunchFromHost(); redma {
		b.penalizeHost(host)
		if m.VAddr != 0 && m.Size > 0 {
			_, dmaEnd := b.bus.Use(end, b.cfg.DMACycles(m.Size))
			b.Stats.TxDMAs++
			b.Stats.TxDMABytes += uint64(m.Size)
			launch = dmaEnd
		}
	}
	b.net.Send(launch, &atm.Packet{
		Src:    m.From,
		Dst:    m.To,
		VCI:    vci(m),
		Size:   m.Size,
		Header: header(m),
		Meta:   m,
	})
}

// --- receive side ---

// admit is the receive processor's acceptance filter, called for every
// arriving packet before classification. It consumes control cells,
// discards damaged and out-of-sequence PDUs, and generates ACK/NAK
// traffic. It returns true only for the in-sequence, intact PDU the
// normal receive path should go on to process.
func (r *reliability) admit(pkt *atm.Packet, m *Message, at sim.Time) bool {
	b := r.b
	if m.Op == opRelAck || m.Op == opRelNak {
		// One control cell of reassembly work on the receive processor.
		work := b.cfg.NICToCPU(b.cfg.NICPacketRxCycles + b.cfg.NICCellRxCycles)
		_, end := b.rxProc.Use(at, work)
		if pkt.Damaged {
			// A control cell that fails its CRC is just dropped; the
			// sender's timer covers a lost ACK, a re-NAK covers a lost NAK.
			b.Stats.Rel.DropsSeen++
			return false
		}
		if c := b.dp.ControlRxHostCycles(); c > 0 {
			// Host-run protocol: every control cell interrupts the host.
			b.penalizeHost(c)
			end += c
		}
		if m.Op == opRelAck {
			r.onAck(m.From, m.Aux, end)
		} else {
			r.onNak(m.From, m.Aux, end)
		}
		return false
	}

	s := r.rx[m.From]
	if pkt.Damaged {
		// The train's AAL5 CRC cannot pass. The cell headers still name
		// the VC, so the receiver knows whom to ask for a go-back.
		cells := int64(b.cfg.Cells(m.Size))
		work := b.cfg.NICToCPU(b.cfg.NICPacketRxCycles + b.cfg.NICCellRxCycles*cells)
		_, end := b.rxProc.Use(at, work)
		b.Stats.Rel.DropsSeen++
		r.sendControl(end, m.From, opRelNak, s.expect)
		return false
	}
	switch {
	case m.relSeq == s.expect:
		// In sequence: ack it and let the normal receive path (which
		// charges the reassembly work) process it.
		s.expect++
		r.sendControl(at, m.From, opRelAck, m.relSeq)
		return true
	case m.relSeq > s.expect:
		// Gap: a predecessor died. Discard (go-back-N keeps no
		// out-of-order buffer) and ask for the resend.
		cells := int64(b.cfg.Cells(m.Size))
		work := b.cfg.NICToCPU(b.cfg.NICPacketRxCycles + b.cfg.NICCellRxCycles*cells)
		_, end := b.rxProc.Use(at, work)
		b.Stats.Rel.OutOfOrder++
		r.sendControl(end, m.From, opRelNak, s.expect)
		return false
	default:
		// Duplicate of something already delivered (a replayed train or
		// a go-back overshoot): discard and re-ack so the sender's
		// window can advance even if the original ACK died.
		cells := int64(b.cfg.Cells(m.Size))
		work := b.cfg.NICToCPU(b.cfg.NICPacketRxCycles + b.cfg.NICCellRxCycles*cells)
		_, end := b.rxProc.Use(at, work)
		b.Stats.Rel.DupDiscards++
		r.sendControl(end, m.From, opRelAck, s.expect-1)
		return false
	}
}

// sendControl emits one ACK or NAK cell to peer. Control cells are not
// sequenced or retained — loss is recovered by timers and duplicate
// ACKs — so they bypass send() and go straight to the launch path.
// When the protocol runs on the host, the host builds the cell first.
func (r *reliability) sendControl(at sim.Time, peer int, op, seq uint32) {
	b := r.b
	if op == opRelAck {
		b.Stats.Rel.AcksSent++
	} else {
		b.Stats.Rel.NaksSent++
	}
	if kc := b.dp.ControlTxHostCycles(); kc > 0 {
		b.penalizeHost(kc)
		at += kc
	}
	b.launch(at, &Message{From: b.node, To: peer, Op: op, Aux: seq, Size: HeaderBytes})
}

// Package nic models the network adaptor boards of the CNI paper. A
// Board is the kind-independent shell — queues, AIH dispatch, ATM
// framing, go-back-N reliability, stats — and delegates every
// kind-specific decision (send launch, receive delivery, host
// notification, retransmit source, host-penalty accounting) to a
// Datapath strategy looked up by config.NICKind: the CNI board itself
// (Application Device Channels, Message Cache, PATHFINDER
// demultiplexing, Application Interrupt Handlers), the OSIRIS-class
// ADC baseline it derives from (user-level queues, interrupt-driven
// receive, no Message Cache), and the standard kernel-mediated
// interface the evaluation compares against. See datapath.go.
//
// A Board sits between the host (simulated processors, package sim;
// caches, package memsys) and the fabric (package atm). Timing flows
// through three contended resources per node: the transmit processor,
// the receive processor (both clocked at the board's 33 MHz), and the
// host memory bus used by the DMA engine.
package nic

import (
	"encoding/binary"
	"fmt"
	"strconv"

	"cni/internal/adc"
	"cni/internal/atm"
	"cni/internal/config"
	"cni/internal/memsys"
	"cni/internal/msgcache"
	"cni/internal/pathfinder"
	"cni/internal/sim"
)

// PhysPageOffset separates the simulated physical page namespace from
// the virtual one, so that a translation bug cannot masquerade as an
// identity mapping.
const PhysPageOffset uint64 = 1 << 20

// HeaderBytes is the protocol header PATHFINDER classifies on.
const HeaderBytes = 16

// Message is one protocol message between nodes. Size is the modeled
// wire size (protocol header plus data); Payload carries the
// protocol-level Go value by reference, standing in for the bytes the
// real board would copy.
type Message struct {
	From int
	To   int
	Op   uint32 // protocol operation; PATHFINDER patterns match on it
	Aux  uint32 // second classifier word (header bytes 12..16); 0 when unused
	Size int

	// Transmit side: VAddr names the host buffer holding the data
	// (0 means the message is inline control data written into the
	// descriptor by programmed I/O — no DMA, no Message Cache).
	VAddr   uint64
	CacheTx bool // header cache bit: bind after transmit DMA
	NoFlush bool // data already flushed (e.g. flushed at a release)

	// Receive side: if DeliverBytes > 0 the board DMAs that much
	// payload to the host buffer at DeliverVAddr before the handler or
	// application sees it.
	DeliverVAddr uint64
	DeliverBytes int
	CacheRx      bool // header cache bit: bind the arriving page

	Payload any

	// viaChannel marks a message the application posted on its device
	// channel (set by Send); the transmit processor pops the matching
	// descriptor.
	viaChannel bool

	// relSeq is the per-VC go-back-N sequence number stamped by the
	// reliability layer (faulty fabric only; zero otherwise).
	relSeq uint32

	// hdr is the backing store for the classifier-visible header built
	// by header(), inline in the Message so a (re)transmit allocates no
	// header slice. Its contents are a pure function of the fields
	// above, so sharing it between an in-flight copy and a retransmit
	// is harmless.
	hdr [HeaderBytes]byte
}

// Handler is invoked in kernel-event context when a message's
// processing completes; at is the completion time.
type Handler func(at sim.Time, m *Message)

// BoardFilter is a board-resident screening handler that runs on the
// receive processor before host delivery of an op it is installed for.
// It returns true when it consumed the message — typically by replying
// from board memory via SendAt — in which case the host path is skipped
// entirely: no payload DMA, no free-queue descriptor, no notification,
// no host cycles. Returning false falls through to the registered
// handler on the normal path, with the screening cost already paid on
// the receive processor.
type BoardFilter func(at sim.Time, m *Message) bool

type handlerEntry struct {
	fn     Handler
	filter BoardFilter
	onNIC  bool
}

// RelStats counts the per-VC go-back-N reliability machinery's
// activity on one board. All fields stay zero on the default lossless
// fabric.
type RelStats struct {
	DropsSeen     uint64   // damaged PDUs discarded on CRC failure
	Retransmits   uint64   // PDUs retransmitted (timeout- or NAK-driven)
	Timeouts      uint64   // retransmit timer expiries with unacked PDUs
	DupDiscards   uint64   // duplicate PDUs discarded by sequence number
	OutOfOrder    uint64   // PDUs past a gap, discarded pending go-back-N
	AcksSent      uint64   // cumulative ACK cells transmitted
	NaksSent      uint64   // NAK cells transmitted
	NaksMuted     uint64   // NAKs ignored while a retransmit was in flight
	MaxWindow     int      // high-water mark of unacked PDUs on one VC
	MaxQueued     int      // high-water mark of PDUs parked for window space
	RetainedBytes uint64   // peak PDU bytes retained in board memory
	RetxCycles    sim.Time // board cycles spent on retransmission work
}

// Merge folds o into s (cluster-level aggregation).
func (s *RelStats) Merge(o RelStats) {
	s.DropsSeen += o.DropsSeen
	s.Retransmits += o.Retransmits
	s.Timeouts += o.Timeouts
	s.DupDiscards += o.DupDiscards
	s.OutOfOrder += o.OutOfOrder
	s.AcksSent += o.AcksSent
	s.NaksSent += o.NaksSent
	s.NaksMuted += o.NaksMuted
	if o.MaxWindow > s.MaxWindow {
		s.MaxWindow = o.MaxWindow
	}
	if o.MaxQueued > s.MaxQueued {
		s.MaxQueued = o.MaxQueued
	}
	if o.RetainedBytes > s.RetainedBytes {
		s.RetainedBytes = o.RetainedBytes
	}
	s.RetxCycles += o.RetxCycles
}

// Stats counts one board's activity.
type Stats struct {
	Sends        uint64
	Receives     uint64
	TxDMAs       uint64
	TxDMABytes   uint64
	RxDMAs       uint64
	RxDMABytes   uint64
	Interrupts   uint64
	Polls        uint64
	FreeConsumed uint64 // free-queue descriptors consumed by arrivals
	AIHRuns      uint64
	FilterServed uint64 // arrivals consumed by a board filter (never reached the host)
	HostHandlers uint64
	FlushCycles  sim.Time
	Rel          RelStats
}

// Board is one node's network interface: the kind-independent shell
// around a Datapath strategy.
type Board struct {
	kind config.NICKind
	k    *sim.Kernel
	cfg  *config.Config
	node int
	net  *atm.Network
	mem  *memsys.Hierarchy

	// dp supplies every kind-specific policy and cost; its constructor
	// provisioned whichever of the components below the model owns.
	dp Datapath

	bus    *sim.Resource // host memory bus (DMA engine side)
	txProc *sim.Resource
	rxProc *sim.Resource

	// Model-owned components, provisioned by the datapath constructor.
	// MC is exported for experiment harnesses that read hit ratios; it
	// is nil on boards without a Message Cache.
	MC  *msgcache.Cache
	PF  *pathfinder.Classifier
	ADC *adc.Manager

	// channel is the node's device channel: sends enqueue descriptors
	// on its transmit queue (protection verified there and only
	// there), and host-path arrivals enqueue completions on its
	// receive queue for the poller. Nil on the standard board.
	channel *adc.Channel

	// rel is the per-VC go-back-N reliability layer; nil on the
	// default lossless fabric, so the fault-free paths are untouched.
	rel *reliability

	handlers map[uint32]handlerEntry
	hostProc *sim.Proc

	lastHostDeliver sim.Time // host handlers run in receive-queue order

	Stats Stats
}

// NewBoard builds the board for node and attaches it to the fabric.
// The configured NIC kind must have a registered datapath.
func NewBoard(k *sim.Kernel, cfg *config.Config, node int, net *atm.Network, mem *memsys.Hierarchy) *Board {
	b := &Board{
		kind:     cfg.NIC,
		k:        k,
		cfg:      cfg,
		node:     node,
		net:      net,
		mem:      mem,
		bus:      sim.NewResource("bus" + strconv.Itoa(node)),
		txProc:   sim.NewResource("txproc" + strconv.Itoa(node)),
		rxProc:   sim.NewResource("rxproc" + strconv.Itoa(node)),
		handlers: make(map[uint32]handlerEntry),
	}
	b.dp = newDatapath(b)
	if cfg.FaultsEnabled() {
		b.rel = newReliability(b)
	}
	net.Attach(node, b.receive)
	return b
}

// Node reports which node this board serves.
func (b *Board) Node() int { return b.node }

// Kind reports the board variant.
func (b *Board) Kind() config.NICKind { return b.kind }

// Datapath exposes the board's kind-specific policy object (tests and
// cost audits).
func (b *Board) Datapath() Datapath { return b.dp }

// --- capability accessors: the upper layers (dsm, collective, rpc,
// experiments) ask the datapath through these instead of switching on
// the NIC kind ---

// HandlersOnBoard reports whether registered handlers may run as
// Application Interrupt Handlers on the board.
func (b *Board) HandlersOnBoard() bool { return b.dp.HandlersOnBoard() }

// UserLevelQueues reports whether the host reaches this board through
// user-space ADC queues.
func (b *Board) UserLevelQueues() bool { return b.dp.UserLevelQueues() }

// ProtocolCharged reports whether the receive path already charged the
// host its protocol-processing cost for host-handled arrivals.
func (b *Board) ProtocolCharged() bool { return b.dp.ProtocolCharged() }

// ProtocolStateOnBoard reports whether per-connection protocol state
// (probable-owner tables, parked requests) is pinned in board memory
// next to the AIHs, so forwarding decisions never touch host memory.
func (b *Board) ProtocolStateOnBoard() bool { return b.dp.ProtocolStateOnBoard() }

// RecvDequeueCost is the application's cost to pop one completion from
// its receive queue (zero when the kernel hands the data over).
func (b *Board) RecvDequeueCost() sim.Time { return b.dp.RecvDequeueCycles() }

// WakeDelay is the extra latency before a blocked application thread
// notices a completion (the CNI's receive-queue poll; zero elsewhere).
func (b *Board) WakeDelay() sim.Time { return b.dp.WakeDelayCycles() }

// SetHostProc names the host CPU thread charged for interrupt service
// on this node.
func (b *Board) SetHostProc(p *sim.Proc) { b.hostProc = p }

// MapPages pins [vbase, vbase+bytes) for the board: on a board with a
// Message Cache it installs the V<->P translations in the TLB/RTLB,
// and on a board with a device channel it grants the channel access to
// the region (the enqueue-time protection window). No-op on the
// standard board, which has neither.
func (b *Board) MapPages(vbase uint64, bytes int) {
	if b.MC != nil {
		pb := uint64(b.cfg.PageBytes)
		for v := vbase / pb; v <= (vbase+uint64(bytes)-1)/pb; v++ {
			b.MC.MapPage(v, v+PhysPageOffset)
		}
	}
	if b.channel != nil {
		b.channel.AddRegion(adc.Region{Base: vbase, Len: uint64(bytes)})
	}
}

// Register installs the handler for protocol operation op. With onNIC
// set on a CNI board the handler is an Application Interrupt Handler:
// it runs on the board's receive processor and the host CPU is never
// involved. On the standard board onNIC is ignored — there is nowhere
// on the board to run user code — and the handler runs on the host
// after an interrupt.
func (b *Board) Register(op uint32, onNIC bool, h Handler) {
	b.install(op, onNIC, h)
	b.program(op, pathfinder.Pattern{{Offset: 0, Mask: 0xffffffff, Value: op}})
}

// RegisterPattern is Register for protocols that demultiplex on more
// than the operation word: the handler for op is installed once, and a
// PATHFINDER pattern matching op plus the extra field comparisons is
// programmed per call (callers register one pattern per sub-operation,
// e.g. one per collective kind in the Aux word). Patterns for the same
// op share the leading op test in the classifier DAG, so the match
// work grows far slower than the pattern count — the PATHFINDER
// property the paper leans on.
func (b *Board) RegisterPattern(op uint32, extra []pathfinder.Field, onNIC bool, h Handler) {
	b.install(op, onNIC, h)
	pat := pathfinder.Pattern{{Offset: 0, Mask: 0xffffffff, Value: op}}
	pat = append(pat, extra...)
	b.program(op, pat)
}

// install records the handler entry for op; re-installing the same op
// is allowed only for multi-pattern registration of one protocol.
func (b *Board) install(op uint32, onNIC bool, h Handler) {
	if !b.dp.HandlersOnBoard() {
		onNIC = false
	}
	b.handlers[op] = handlerEntry{fn: h, onNIC: onNIC}
}

// RegisterFilter installs f as an Application Interrupt Handler that
// screens arrivals for op before host delivery: the KV service uses it
// to answer repeat GETs from responses pinned in the Message Cache.
// The filter runs on the receive processor at AIHHandlerCycles per
// arrival; when it consumes a message the host never learns the
// message existed. On a board whose datapath cannot run handlers
// (OSIRIS, standard) the call is a no-op, so callers gate features on
// HandlersOnBoard rather than on board internals. op must already have
// a host handler registered — a filter screens a protocol, it does not
// define one.
func (b *Board) RegisterFilter(op uint32, f BoardFilter) {
	if !b.dp.HandlersOnBoard() {
		return
	}
	e, ok := b.handlers[op]
	if !ok {
		panic(fmt.Sprintf("nic: node %d filter for unregistered op %d", b.node, op))
	}
	if e.onNIC {
		panic(fmt.Sprintf("nic: node %d filter for op %d which already runs on the board", b.node, op))
	}
	e.filter = f
	b.handlers[op] = e
}

// program wires a classification pattern routing to op.
func (b *Board) program(op uint32, pat pathfinder.Pattern) {
	if b.PF == nil {
		return
	}
	if err := b.PF.Program(pat, pathfinder.Value(op)); err != nil {
		panic(fmt.Sprintf("nic: programming PATHFINDER for op %d: %v", op, err))
	}
}

// header builds the classifier-visible header for m in the message's
// inline buffer.
func header(m *Message) []byte {
	h := m.hdr[:]
	binary.BigEndian.PutUint32(h[0:], m.Op)
	binary.BigEndian.PutUint32(h[4:], uint32(m.From))
	binary.BigEndian.PutUint32(h[8:], uint32(m.To))
	binary.BigEndian.PutUint32(h[12:], m.Aux)
	return h
}

// vci derives the ATM virtual circuit for m (one VC per node pair in
// this cluster, as the OSIRIS connection setup would allocate). The
// source and destination node ids occupy 16-bit lanes of the 32-bit
// VCI, so clusters up to config.MaxNodes nodes — which the fabric
// constructors enforce via config.ValidateNodes — can never collide
// two circuits.
func vci(m *Message) uint32 { return uint32(m.From)<<16 | uint32(m.To) }

// NoteWrite tells the board the host CPU wrote into the page holding
// vaddr. With consistency snooping the bound buffer absorbs the write
// when it reaches the bus; without it the binding must be dropped so a
// stale buffer is never transmitted. (The snoop itself is observed at
// flush time; see Send.)
func (b *Board) NoteWrite(vaddr uint64) {
	if b.MC == nil || b.cfg.ConsistencySnooping {
		return
	}
	b.MC.Invalidate(vaddr)
}

// flushForSend publishes the host's dirty cache lines for m's buffer to
// memory — mandatory on a write-back machine before the board reads or
// serves that memory — and feeds the resulting bus writes to the
// snooper. Returns the CPU cost.
func (b *Board) flushForSend(m *Message) sim.Time {
	if m.VAddr == 0 || m.Size == 0 || m.NoFlush {
		return 0
	}
	return b.FlushBuffer(m.VAddr, m.Size)
}

// FlushBuffer writes the dirty cache lines of [vaddr, vaddr+size) back
// to memory and lets the board snoop the resulting bus writes. The DSM
// layer calls it at releases to keep home memory (and thus the Message
// Cache copies) current; Send calls it implicitly for unflushed
// buffers. It returns the CPU cost, which belongs to the host.
func (b *Board) FlushBuffer(vaddr uint64, size int) sim.Time {
	cost, flushed := b.mem.FlushRange(vaddr, size)
	b.Stats.FlushCycles += cost
	if flushed > 0 && b.MC != nil && b.cfg.ConsistencySnooping {
		// Each flushed line is a memory write the board snoops; per-page
		// granularity is enough for the buffer map.
		pb := uint64(b.cfg.PageBytes)
		for v := vaddr / pb; v <= (vaddr+uint64(size)-1)/pb; v++ {
			b.MC.SnoopWrite((v + PhysPageOffset) * pb)
		}
	}
	return cost
}

// WriteBuffer models the host CPU composing [vaddr, vaddr+size) — the
// KV server filling a response buffer, for example. It charges the
// cache-hierarchy write cost (which the caller advances on its proc)
// and tells the board about the write, page by page, so a bound
// Message Cache copy is refreshed by the snooper at flush time rather
// than transmitted stale.
func (b *Board) WriteBuffer(vaddr uint64, size int) sim.Time {
	if size <= 0 {
		return 0
	}
	cost := b.mem.WriteRange(vaddr, size)
	pb := uint64(b.cfg.PageBytes)
	for v := vaddr / pb; v <= (vaddr+uint64(size)-1)/pb; v++ {
		b.NoteWrite(v * pb)
	}
	return cost
}

// Send transmits m from the calling host processor's context. It
// charges the host-side send cost (cache flush plus ADC enqueue on the
// CNI, flush plus kernel send path on the standard interface) to p,
// schedules the board-side work, and returns the cycles charged so the
// caller can account them as protocol overhead. The send itself is
// asynchronous.
func (b *Board) Send(p *sim.Proc, m *Message) sim.Time {
	var overhead sim.Time
	overhead += b.flushForSend(m)
	if b.channel != nil && m.VAddr != 0 {
		// User-level send: place the buffer descriptor on the device
		// channel's transmit queue. Protection is verified here — and
		// only here — against the regions pinned at setup.
		d := adc.Descriptor{VAddr: m.VAddr, Len: m.Size, Tag: uint64(m.Op)}
		if m.CacheTx {
			d.Flags |= adc.FlagCache
		}
		if err := b.channel.PostTransmit(d); err != nil {
			panic(fmt.Sprintf("nic: node %d transmit rejected: %v", b.node, err))
		}
		m.viaChannel = true
	}
	overhead += b.dp.SendCycles()
	p.Advance(overhead)
	p.Sync()
	b.transmit(p.Local(), m)
	return overhead
}

// SendAt transmits m from board or handler context at time at. On the
// CNI this is the Application Interrupt Handler reply path and costs
// the host nothing. Elsewhere the "handler" is host code, so the send
// path (kernel or ADC enqueue) and the flush run on — and are charged
// to — the host CPU before the board sees the message.
func (b *Board) SendAt(at sim.Time, m *Message) {
	send := b.dp.HandlerSendCycles()
	if send == 0 {
		b.transmit(at, m)
		return
	}
	cost := b.flushForSend(m) + send
	b.penalizeHost(cost)
	b.transmit(at+cost, m)
}

// transmit is the board transmit processor's entry point: it consumes
// the device-channel descriptor, and hands the message to the
// reliability layer (faulty fabric) or straight to launch (the
// default lossless fabric).
func (b *Board) transmit(at sim.Time, m *Message) {
	b.Stats.Sends++
	if m.viaChannel {
		// The transmit processor consumes the descriptor the
		// application enqueued; the queues are FIFO on both sides, so
		// a mismatch here means the shared-queue protocol broke.
		d, ok := b.channel.Transmit.Pop()
		if !ok || d.VAddr != m.VAddr {
			panic(fmt.Sprintf("nic: node %d transmit queue out of sync", b.node))
		}
	}
	if b.rel != nil && m.To != b.node {
		b.rel.send(at, m)
		return
	}
	b.launch(at, m)
}

// launch is the board transmit processor proper: per-packet and
// per-cell segmentation work, the Message Cache probe, and the DMA
// when needed.
func (b *Board) launch(at sim.Time, m *Message) {
	cells := int64(b.cfg.Cells(m.Size))
	work := b.cfg.NICToCPU(b.cfg.NICPacketTxCycles + b.cfg.NICCellTxCycles*cells)
	_, end := b.txProc.Use(at, work)

	launch := end
	if m.VAddr != 0 && m.Size > 0 {
		hit := false
		if b.MC != nil && b.cfg.TransmitCaching {
			hit = b.MC.LookupTransmit(m.VAddr)
		}
		if !hit {
			_, dmaEnd := b.bus.Use(end, b.cfg.DMACycles(m.Size))
			b.Stats.TxDMAs++
			b.Stats.TxDMABytes += uint64(m.Size)
			if b.MC != nil && b.cfg.TransmitCaching && m.CacheTx {
				b.MC.BindTransmit(m.VAddr)
			}
			launch = dmaEnd
		}
	}

	pkt := &atm.Packet{
		Src:    m.From,
		Dst:    m.To,
		VCI:    vci(m),
		Size:   m.Size,
		Header: header(m),
		Meta:   m,
	}
	b.net.Send(launch, pkt)
}

// receive is the board receive processor, invoked by the fabric at the
// arrival time of a packet's last cell.
func (b *Board) receive(pkt *atm.Packet, at sim.Time) {
	m, ok := pkt.Meta.(*Message)
	if !ok {
		panic("nic: foreign packet on the fabric")
	}
	if b.rel != nil && m.To == b.node && m.From != b.node {
		if !b.rel.admit(pkt, m, at) {
			return
		}
	}
	b.Stats.Receives++
	cells := int64(b.cfg.Cells(m.Size))

	// Reassembly work plus demultiplexing.
	work := b.cfg.NICToCPU(b.cfg.NICPacketRxCycles + b.cfg.NICCellRxCycles*cells)
	entry, registered := b.handlers[m.Op]
	if b.PF != nil {
		v, _, matched := b.PF.Classify(pkt.Header)
		if !matched || uint32(v) != m.Op {
			panic(fmt.Sprintf("nic: PATHFINDER misrouted op %d", m.Op))
		}
		if cells > 1 {
			// Non-first cells route through transient per-VCI flow state.
			b.PF.InstallFragmentFlow(pkt.VCI, v)
			for c := int64(1); c < cells; c++ {
				if _, ok := b.PF.ClassifyFragment(pkt.VCI); !ok {
					panic("nic: fragment flow lost mid-packet")
				}
			}
			b.PF.RemoveFragmentFlow(pkt.VCI)
		}
		if b.cfg.UseSoftwareClassifer {
			work += b.cfg.NSToCycles(b.cfg.SoftwareClassifyNS)
		} else {
			work += b.cfg.NICToCPU(b.cfg.PathfinderCycles)
		}
	}
	if !registered {
		panic(fmt.Sprintf("nic: node %d has no handler for op %d", b.node, m.Op))
	}
	_, end := b.rxProc.Use(at, work)

	if entry.filter != nil {
		// Board-resident screening AIH: the receive processor pays the
		// handler cost to probe, and on a hit the reply leaves from
		// board memory — the host path below never starts.
		_, end = b.rxProc.Use(end, b.cfg.NICToCPU(b.cfg.AIHHandlerCycles))
		b.Stats.AIHRuns++
		if entry.filter(end, m) {
			b.Stats.FilterServed++
			return
		}
	}

	if entry.onNIC {
		// Application Interrupt Handler: protocol runs on the receive
		// processor; data bound for the host is DMAed first.
		_, end = b.rxProc.Use(end, b.cfg.NICToCPU(b.cfg.AIHHandlerCycles))
		b.Stats.AIHRuns++
		end = b.deliverPayload(end, m)
		b.k.At(end, func() { entry.fn(b.k.Now(), m) })
		return
	}

	// Host path: deposit data, enqueue the completion on the device
	// channel's receive queue (CNI), then get the host's attention.
	end = b.deliverPayload(end, m)
	if b.channel != nil {
		// An arrival consumes a free-queue buffer when the application
		// has preposted any (the OSIRIS discipline); protocols that
		// name their destination buffers explicitly (the DSM's page
		// fetches) simply do not prepost.
		if _, ok := b.channel.Free.Pop(); ok {
			b.Stats.FreeConsumed++
		}
		ok := b.channel.Receive.Push(adc.Descriptor{
			VAddr: m.DeliverVAddr, Len: m.DeliverBytes, Tag: uint64(m.Op),
		})
		if !ok {
			// A real board would backpressure into the free queue; the
			// notify path below pops each completion when the handler
			// runs, so more queued completions than slots means the
			// host fell unboundedly behind — a bug, not backpressure.
			panic(fmt.Sprintf("nic: node %d receive queue overflow", b.node))
		}
	}
	notify, penalty := b.dp.Notify(end)
	if extra := b.dp.RecvHostCycles(); extra > 0 {
		// Host receive path and/or protocol processing on the host CPU.
		notify += extra
		penalty += extra
	}
	b.penalizeHost(penalty)
	b.Stats.HostHandlers++
	// The application drains its receive queue in FIFO order, so a
	// later arrival can never be handled before an earlier one even
	// when the earlier one paid an interrupt and the later one only a
	// poll.
	if notify < b.lastHostDeliver {
		notify = b.lastHostDeliver
	}
	b.lastHostDeliver = notify
	b.k.At(notify, func() {
		// The application pops its completion from the user-level
		// receive queue as its handler runs (the dequeue cost is the
		// caller-visible RecvDequeueCost); deliveries are FIFO, so the
		// pop order matches the push order above.
		if b.channel != nil {
			b.channel.PollReceive()
		}
		entry.fn(b.k.Now(), m)
	})
}

// deliverPayload DMAs m's payload to host memory when the message
// carries any, returning the completion time, and binds the arriving
// page into the Message Cache when asked to (receive caching).
func (b *Board) deliverPayload(at sim.Time, m *Message) sim.Time {
	if m.DeliverBytes <= 0 || m.DeliverVAddr == 0 {
		return at
	}
	_, dmaEnd := b.bus.Use(at, b.cfg.DMACycles(m.DeliverBytes))
	b.Stats.RxDMAs++
	b.Stats.RxDMABytes += uint64(m.DeliverBytes)
	if b.MC != nil && b.cfg.ReceiveCaching && m.CacheRx {
		b.MC.BindReceive(m.DeliverVAddr)
	}
	return dmaEnd
}

// PenalizeHost charges cycles of asynchronous host-side work (e.g. a
// kernel-initiated cache flush before a transfer) to the host CPU;
// protocol layers use it for costs they incur on the host outside the
// normal send/receive paths.
func (b *Board) PenalizeHost(c sim.Time) { b.penalizeHost(c) }

// penalizeHost charges cycles of asynchronous service to the host CPU
// if it is actually computing; a blocked (idle) CPU absorbs the work
// for free, but the latency is still paid by the notify path.
func (b *Board) penalizeHost(c sim.Time) {
	if c > 0 && b.hostProc != nil && !b.hostProc.Blocked() && !b.hostProc.Finished() {
		b.hostProc.AddPenalty(c)
	}
}

// PostFree preposts a free receive buffer on the device channel (the
// application-side half of the free queue). No-op on the standard
// board.
func (b *Board) PostFree(vaddr uint64, n int) {
	if b.channel == nil {
		return
	}
	if err := b.channel.PostFree(adc.Descriptor{VAddr: vaddr, Len: n}); err != nil {
		panic(fmt.Sprintf("nic: node %d PostFree: %v", b.node, err))
	}
}

// TryPostFree is PostFree reporting queue-full and protection errors
// to the caller instead of panicking, for protocols that manage the
// free queue as a backpressure signal. No-op (nil) on the standard
// board.
func (b *Board) TryPostFree(vaddr uint64, n int) error {
	if b.channel == nil {
		return nil
	}
	return b.channel.PostFree(adc.Descriptor{VAddr: vaddr, Len: n})
}

// Channel exposes the node's device channel for protocol layers that
// poll the receive queue or read the free-queue depth (nil on the
// standard board).
func (b *Board) Channel() *adc.Channel { return b.channel }

// FreeDepth reports the number of preposted free-queue descriptors
// (0 on the standard board).
func (b *Board) FreeDepth() int {
	if b.channel == nil {
		return 0
	}
	return b.channel.Free.Len()
}

// Bus exposes the node's memory-bus resource (cluster wiring and
// tests).
func (b *Board) Bus() *sim.Resource { return b.bus }

// HitRatio reports the Message Cache transmit hit ratio in percent
// (0 for the standard board).
func (b *Board) HitRatio() float64 {
	if b.MC == nil {
		return 0
	}
	return b.MC.Stats.HitRatio()
}

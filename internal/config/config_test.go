package config

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	for _, c := range []Config{Default(), Standard()} {
		if err := c.Validate(); err != nil {
			t.Errorf("%v config invalid: %v", c.NIC, err)
		}
	}
}

func TestStandardDisablesCNIFeatures(t *testing.T) {
	c := Standard()
	if c.NIC != NICStandard {
		t.Fatalf("NIC = %v", c.NIC)
	}
	if c.TransmitCaching || c.ReceiveCaching || c.ConsistencySnooping {
		t.Fatal("standard interface must not have Message Cache features")
	}
	if ForNIC(NICStandard).NIC != NICStandard || ForNIC(NICCNI).NIC != NICCNI {
		t.Fatal("ForNIC returned wrong kind")
	}
}

func TestValidateCatchesBrokenConfigs(t *testing.T) {
	break1 := func(f func(*Config)) error {
		c := Default()
		f(&c)
		return c.Validate()
	}
	cases := []struct {
		name string
		f    func(*Config)
	}{
		{"zero CPU", func(c *Config) { c.CPUFreqMHz = 0 }},
		{"bus faster than CPU", func(c *Config) { c.BusFreqMHz = 500 }},
		{"zero NIC", func(c *Config) { c.NICFreqMHz = 0 }},
		{"line smaller than word", func(c *Config) { c.CacheLineBytes = 4 }},
		{"L2 smaller than L1", func(c *Config) { c.L2Bytes = 1024 }},
		{"unaligned page", func(c *Config) { c.PageBytes = 1001 }},
		{"payload bigger than cell", func(c *Config) { c.CellPayloadBytes = 100 }},
		{"message cache bigger than board", func(c *Config) { c.MessageCacheByte = 2 << 20 }},
		{"zero link", func(c *Config) { c.LinkMbps = 0 }},
		{"one-port switch", func(c *Config) { c.SwitchPorts = 1 }},
		{"negative loss rate", func(c *Config) { c.CellLossRate = -0.1 }},
		{"certain loss", func(c *Config) { c.CellLossRate = 1 }},
		{"negative corrupt rate", func(c *Config) { c.CellCorruptRate = -1e-6 }},
		{"certain corruption", func(c *Config) { c.CellCorruptRate = 1.5 }},
		{"negative dup rate", func(c *Config) { c.CellDupRate = -0.5 }},
		{"certain duplication", func(c *Config) { c.CellDupRate = 1 }},
		{"negative reorder window", func(c *Config) { c.ReorderWindow = -1 }},
		{"faults with no window", func(c *Config) { c.CellLossRate = 1e-4; c.RetransmitWindow = 0 }},
		{"faults with no timeout", func(c *Config) { c.CellDupRate = 1e-4; c.RetransmitTimeoutNS = 0 }},
		{"faults with zero backoff cap", func(c *Config) { c.ReorderWindow = 2; c.RetransmitBackoff = 0 }},
		{"unknown topology", func(c *Config) { c.Topology = "hypercube" }},
		{"odd clos radix", func(c *Config) { c.ClosRadix = 5 }},
		{"tiny clos radix", func(c *Config) { c.ClosRadix = 2 }},
		{"zero torus dimension", func(c *Config) { c.TorusDims = [3]int{4, 0, 2} }},
	}
	for _, tc := range cases {
		if err := break1(tc.f); err == nil {
			t.Errorf("%s: Validate accepted a broken config", tc.name)
		}
	}
}

func TestFaultsEnabled(t *testing.T) {
	c := Default()
	if c.FaultsEnabled() {
		t.Fatal("default config must have faults off")
	}
	knobs := []func(*Config){
		func(c *Config) { c.CellLossRate = 1e-6 },
		func(c *Config) { c.CellCorruptRate = 1e-6 },
		func(c *Config) { c.CellDupRate = 1e-6 },
		func(c *Config) { c.ReorderWindow = 1 },
	}
	for i, f := range knobs {
		c := Default()
		f(&c)
		if !c.FaultsEnabled() {
			t.Errorf("knob %d did not enable faults", i)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("knob %d: armed default config should validate: %v", i, err)
		}
	}
}

func TestUnitConversions(t *testing.T) {
	c := Default()
	// 166 MHz: 1000 ns = 166 cycles.
	if got := c.NSToCycles(1000); got != 166 {
		t.Errorf("NSToCycles(1000) = %d, want 166", got)
	}
	// Rounds up: 1 ns must cost at least 1 cycle.
	if got := c.NSToCycles(1); got != 1 {
		t.Errorf("NSToCycles(1) = %d, want 1", got)
	}
	if got := c.NSToCycles(0); got != 0 {
		t.Errorf("NSToCycles(0) = %d, want 0", got)
	}
	// One bus cycle at 25 MHz is 166/25 = 6.64 -> 7 CPU cycles.
	if got := c.BusToCPU(1); got != 7 {
		t.Errorf("BusToCPU(1) = %d, want 7", got)
	}
	// 25 bus cycles = exactly 166 CPU cycles.
	if got := c.BusToCPU(25); got != 166 {
		t.Errorf("BusToCPU(25) = %d, want 166", got)
	}
	// One NIC cycle at 33 MHz is ~5.03 -> 6 CPU cycles.
	if got := c.NICToCPU(1); got != 6 {
		t.Errorf("NICToCPU(1) = %d, want 6", got)
	}
	if got := c.CyclesToNS(166); got != 1000 {
		t.Errorf("CyclesToNS(166) = %d, want 1000", got)
	}
}

func TestWordsAndCells(t *testing.T) {
	c := Default()
	if got := c.Words(0); got != 0 {
		t.Errorf("Words(0) = %d", got)
	}
	if got := c.Words(1); got != 1 {
		t.Errorf("Words(1) = %d, want 1", got)
	}
	if got := c.Words(8); got != 1 {
		t.Errorf("Words(8) = %d, want 1", got)
	}
	if got := c.Words(9); got != 2 {
		t.Errorf("Words(9) = %d, want 2", got)
	}
	if got := c.Cells(0); got != 1 {
		t.Errorf("Cells(0) = %d, want 1 (minimum one cell)", got)
	}
	if got := c.Cells(48); got != 1 {
		t.Errorf("Cells(48) = %d, want 1", got)
	}
	if got := c.Cells(49); got != 2 {
		t.Errorf("Cells(49) = %d, want 2", got)
	}
	if got := c.Cells(4096); got != 86 {
		t.Errorf("Cells(4096) = %d, want 86", got)
	}
	c.UnrestrictedCell = true
	if got := c.Cells(1 << 20); got != 1 {
		t.Errorf("unrestricted Cells(1MB) = %d, want 1", got)
	}
}

func TestWireBytesIncludesCellOverhead(t *testing.T) {
	c := Default()
	if got := c.WireBytes(48); got != 53 {
		t.Errorf("WireBytes(48) = %d, want 53", got)
	}
	if got := c.WireBytes(4096); got != 86*53 {
		t.Errorf("WireBytes(4096) = %d, want %d", got, 86*53)
	}
	c.UnrestrictedCell = true
	if got := c.WireBytes(4096); got != 4096+5 {
		t.Errorf("unrestricted WireBytes(4096) = %d, want 4101", got)
	}
}

func TestSerializeCyclesMatchesLinkRate(t *testing.T) {
	c := Default()
	// 4 KB at 622 Mb/s: 86 cells * 53 B * 8 b = 36464 bits -> 58.6 us
	// -> about 9731 CPU cycles at 166 MHz.
	got := c.SerializeCycles(4096)
	ns := c.CyclesToNS(got)
	if ns < 58_000 || ns > 60_000 {
		t.Errorf("SerializeCycles(4096) = %d cycles = %d ns, want ~58.6 us", got, ns)
	}
}

func TestDMACyclesScalesWithSize(t *testing.T) {
	c := Default()
	small := c.DMACycles(64)
	page := c.DMACycles(4096)
	if small <= 0 || page <= small {
		t.Fatalf("DMACycles: 64B=%d, 4KB=%d", small, page)
	}
	// 4 KB = 512 words * 2 bus cycles + 12 overhead = 1036 bus cycles
	// = ~41.4 us. Check within 5%.
	ns := c.CyclesToNS(page)
	if ns < 40_000 || ns > 43_000 {
		t.Errorf("DMACycles(4096) = %d ns, want ~41.4 us", ns)
	}
}

func TestConversionMonotonicityProperty(t *testing.T) {
	c := Default()
	f := func(a, b uint32) bool {
		x, y := int64(a%1_000_000), int64(b%1_000_000)
		if x > y {
			x, y = y, x
		}
		return c.NSToCycles(x) <= c.NSToCycles(y) &&
			c.BusToCPU(x) <= c.BusToCPU(y) &&
			c.NICToCPU(x) <= c.NICToCPU(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripNSCyclesWithinOneCycle(t *testing.T) {
	c := Default()
	f := func(raw uint32) bool {
		ns := int64(raw % 100_000_000)
		cy := c.NSToCycles(ns)
		back := c.CyclesToNS(cy)
		// Round-up to cycles then down to ns: may gain at most one cycle.
		return back >= ns && back-ns <= 1000/c.CPUFreqMHz+7
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Rendering(t *testing.T) {
	c := Default()
	s := c.Table1()
	for _, want := range []string{
		"166 MHz", "32K unified", "1 MB unified", "Direct-mapped",
		"Write-back", "20 cycles", "25 MHz", "500 ns", "33 MHz",
		"20 us", "32 KB",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("Table1 output missing %q:\n%s", want, s)
		}
	}
}

func TestPages(t *testing.T) {
	c := Default()
	if got := c.Pages(0); got != 0 {
		t.Errorf("Pages(0) = %d", got)
	}
	if got := c.Pages(1); got != 1 {
		t.Errorf("Pages(1) = %d", got)
	}
	if got := c.Pages(2048); got != 1 {
		t.Errorf("Pages(2048) = %d", got)
	}
	if got := c.Pages(2049); got != 2 {
		t.Errorf("Pages(2049) = %d", got)
	}
}

func TestNICKindString(t *testing.T) {
	if NICStandard.String() != "standard" || NICCNI.String() != "cni" {
		t.Fatal("NICKind.String broken")
	}
	if NICKind(9).String() == "" {
		t.Fatal("unknown NICKind should still render")
	}
}

func TestKindRegistry(t *testing.T) {
	kinds := Kinds()
	if len(kinds) != 3 {
		t.Fatalf("%d registered kinds, want 3", len(kinds))
	}
	names := KindNames()
	want := map[string]NICKind{"standard": NICStandard, "cni": NICCNI, "osiris": NICOsiris}
	for _, name := range names {
		kind, ok := KindByName(name)
		if !ok || want[name] != kind {
			t.Errorf("KindByName(%q) = %v, %v", name, kind, ok)
		}
	}
	if _, ok := KindByName("myrinet"); ok {
		t.Fatal("KindByName accepted an unregistered name")
	}
	for _, kind := range kinds {
		if !Registered(kind) {
			t.Errorf("%v not Registered", kind)
		}
		cfg := ForNIC(kind)
		if cfg.NIC != kind {
			t.Errorf("ForNIC(%v).NIC = %v", kind, cfg.NIC)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("ForNIC(%v) invalid: %v", kind, err)
		}
	}
	if Registered(NICKind(9)) {
		t.Fatal("NICKind(9) reported as registered")
	}
	c := Default()
	c.NIC = NICKind(9)
	if err := c.Validate(); err == nil {
		t.Fatal("Validate accepted an unregistered NIC kind")
	}
}

func TestKindDisplay(t *testing.T) {
	cases := map[NICKind]string{NICStandard: "Standard", NICCNI: "CNI", NICOsiris: "Osiris"}
	for kind, want := range cases {
		if got := kind.Display(); got != want {
			t.Errorf("%v.Display() = %q, want %q", kind, got, want)
		}
	}
	if NICKind(9).Display() == "" {
		t.Fatal("unknown NICKind should still render a display name")
	}
}

func TestOsirisDisablesCNIFeatures(t *testing.T) {
	c := ForNIC(NICOsiris)
	if c.NIC != NICOsiris {
		t.Fatalf("NIC = %v", c.NIC)
	}
	if c.TransmitCaching || c.ReceiveCaching || c.ConsistencySnooping || c.NICCollectives {
		t.Fatal("OSIRIS baseline must not have Message Cache or collective features")
	}
}

func TestTopologySelection(t *testing.T) {
	c := Default()
	if c.Topology != TopoSingle || c.TopologyOrDefault() != TopoSingle {
		t.Fatalf("default topology = %q", c.Topology)
	}
	c.Topology = ""
	if c.TopologyOrDefault() != TopoSingle {
		t.Fatal("empty topology must resolve to single")
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("empty topology should validate: %v", err)
	}
	for _, name := range TopoNames() {
		c := Default()
		c.Topology = name
		if err := c.Validate(); err != nil {
			t.Errorf("topology %q invalid: %v", name, err)
		}
	}
	c = Default()
	c.Topology = TopoClos
	c.ClosRadix = 8
	c.TorusDims = [3]int{4, 4, 2}
	if err := c.Validate(); err != nil {
		t.Fatalf("pinned clos radix + torus dims should validate: %v", err)
	}
}

func TestValidateNodes(t *testing.T) {
	for _, n := range []int{1, 2, 32, MaxNodes} {
		if err := ValidateNodes(n); err != nil {
			t.Errorf("ValidateNodes(%d): %v", n, err)
		}
	}
	for _, n := range []int{0, -1, MaxNodes + 1} {
		if err := ValidateNodes(n); err == nil {
			t.Errorf("ValidateNodes(%d) accepted an out-of-range count", n)
		}
	}
}

// Package config holds the machine model of the simulated workstation
// cluster: the parameters of Table 1 of the CNI paper, plus the handful
// of calibration constants the paper leaves implicit (per-cell NIC
// processing costs, kernel path costs). Everything downstream — caches,
// bus, ATM network, NIC boards, DSM — reads its costs from here, so a
// single Config fully determines a simulation.
//
// All simulation times are expressed in CPU cycles of the host
// processor (166 MHz in Table 1, so one cycle is ~6 ns); the conversion
// helpers on Config translate nanoseconds, bus cycles and NIC-processor
// cycles into CPU cycles.
package config

import (
	"fmt"
	"strings"

	"cni/internal/sim"
)

// NICKind selects the network interface model under test.
type NICKind int

// CollTopo selects the schedule the collective engine forwards
// contributions along (internal/collective).
type CollTopo int

const (
	// CollDissemination is the symmetric log-round schedule: in round r
	// every node signals rank+2^r and combines the contribution from
	// rank-2^r. Shortest critical path; N messages per round.
	CollDissemination CollTopo = iota
	// CollBinomial is a binomial tree: contributions combine up to a
	// root and the result broadcasts back down. 2(N-1) messages total.
	CollBinomial
)

// String implements fmt.Stringer.
func (t CollTopo) String() string {
	switch t {
	case CollDissemination:
		return "dissemination"
	case CollBinomial:
		return "binomial"
	default:
		return fmt.Sprintf("CollTopo(%d)", int(t))
	}
}

const (
	// NICStandard is the baseline of the paper: a kernel-mediated board
	// without Application Device Channels, Message Cache or Application
	// Interrupt Handlers. Sends go through the kernel, every transfer is
	// DMAed, every arrival raises a host interrupt, and the DSM protocol
	// runs on the host CPU.
	NICStandard NICKind = iota
	// NICCNI is the cluster network interface: ADC user-level queues,
	// Message Cache with snooping, PATHFINDER demultiplexing, and the
	// DSM protocol running in Application Interrupt Handler memory on
	// the board.
	NICCNI
	// NICOsiris is the OSIRIS-class interface the CNI derives from
	// (Druschel et al.'s Application Device Channels): the ADC transmit,
	// receive and free queues are mapped into user space, so sends and
	// dequeues cost the ADC enqueue/dequeue rather than a kernel path,
	// but the board has no Message Cache and no bus snooping — every
	// transmit DMAs — and every arrival interrupts the host.
	NICOsiris
)

// KindSpec describes one registered interface model: the selector, its
// flag-style and display names, and the tune hook that turns the shared
// Table 1 base configuration into that model's defaults. Models are
// registered at init time; ForNIC, Validate and the NICKind string
// methods all consult the registry, so adding a model is one
// RegisterKind call plus a datapath implementation in internal/nic.
type KindSpec struct {
	Kind    NICKind
	Name    string        // flag-style name, e.g. "osiris" (NICKind.String)
	Display string        // series-label capitalization, e.g. "Osiris"
	Tune    func(*Config) // mutates the base Config into this model's defaults (nil = base)
}

// kindRegistry holds the registered models in registration order.
var kindRegistry []KindSpec

// RegisterKind adds an interface model to the registry. Duplicate
// selectors or names are programming errors.
func RegisterKind(s KindSpec) {
	if s.Name == "" {
		panic("config: RegisterKind with empty name")
	}
	for _, have := range kindRegistry {
		if have.Kind == s.Kind || have.Name == s.Name {
			panic(fmt.Sprintf("config: NIC kind %d (%q) registered twice", int(s.Kind), s.Name))
		}
	}
	kindRegistry = append(kindRegistry, s)
}

func init() {
	RegisterKind(KindSpec{Kind: NICStandard, Name: "standard", Display: "Standard",
		Tune: func(c *Config) {
			c.ReceiveCaching = false
			c.TransmitCaching = false
			c.ConsistencySnooping = false
			c.NICResponseCache = false
			c.NICCollectives = false
		}})
	RegisterKind(KindSpec{Kind: NICCNI, Name: "cni", Display: "CNI"})
	RegisterKind(KindSpec{Kind: NICOsiris, Name: "osiris", Display: "Osiris",
		Tune: func(c *Config) {
			c.ReceiveCaching = false
			c.TransmitCaching = false
			c.ConsistencySnooping = false
			c.NICResponseCache = false
			c.NICCollectives = false
		}})
}

// kindSpec looks a registered model up by selector.
func kindSpec(k NICKind) (KindSpec, bool) {
	for _, s := range kindRegistry {
		if s.Kind == k {
			return s, true
		}
	}
	return KindSpec{}, false
}

// Kinds returns the registered model selectors in registration order.
func Kinds() []NICKind {
	out := make([]NICKind, len(kindRegistry))
	for i, s := range kindRegistry {
		out[i] = s.Kind
	}
	return out
}

// KindNames returns the registered flag-style names in registration
// order (for command-line usage strings).
func KindNames() []string {
	out := make([]string, len(kindRegistry))
	for i, s := range kindRegistry {
		out[i] = s.Name
	}
	return out
}

// KindByName resolves a flag-style name ("cni", "standard", "osiris")
// to its selector.
func KindByName(name string) (NICKind, bool) {
	for _, s := range kindRegistry {
		if s.Name == name {
			return s.Kind, true
		}
	}
	return 0, false
}

// Registered reports whether k names a registered interface model.
func Registered(k NICKind) bool {
	_, ok := kindSpec(k)
	return ok
}

// String implements fmt.Stringer.
func (k NICKind) String() string {
	if s, ok := kindSpec(k); ok {
		return s.Name
	}
	return fmt.Sprintf("NICKind(%d)", int(k))
}

// Display returns the model's series-label capitalization ("CNI",
// "Osiris", "Standard") for figures and tables.
func (k NICKind) Display() string {
	if s, ok := kindSpec(k); ok {
		return s.Display
	}
	return fmt.Sprintf("NICKind(%d)", int(k))
}

// Config is the complete machine description. The zero value is not
// valid; start from Default.
type Config struct {
	// --- Host processor and memory hierarchy (Table 1) ---

	CPUFreqMHz          int64 // 166 MHz
	L1AccessCycles      int64 // 1 cycle, primary cache
	L1Bytes             int   // 32 KB unified
	L2AccessCycles      int64 // 10 cycles, secondary cache
	L2Bytes             int   // 1 MB unified
	CacheLineBytes      int   // direct-mapped, write-back
	MemoryLatencyCycles int64 // 20 cycles
	WordBytes           int   // 8 (64-bit Alpha words)

	// --- Memory bus (Table 1) ---

	BusFreqMHz           int64 // 25 MHz
	BusAcquireCycles     int64 // 4 bus cycles to win arbitration
	BusTransferPerWord   int64 // 2 bus cycles per word
	DMASetupBusCycles    int64 // descriptor fetch + engine start, bus cycles
	SnoopLookupNICCycles int64 // buffer-map probe per snooped write, NIC cycles

	// --- ATM interconnect (Table 1 + Section 3.4) ---

	SwitchPorts      int   // 32-port banyan switch
	SwitchLatencyNS  int64 // 500 ns per switch traversal
	LinkMbps         int64 // 622 Mb/s (STS-12)
	WirePropNS       int64 // 150 ns propagation ("network latency")
	CellBytes        int   // 53-byte ATM cells
	CellPayloadBytes int   // 48 bytes of payload per cell
	UnrestrictedCell bool  // Table 5's mythical no-fragmentation ATM

	// --- Fabric topology (internal/topo) ---

	// Topology selects the switching fabric: TopoSingle is the paper's
	// one output-queued banyan switch (the default, capped at
	// SwitchPorts nodes); TopoClos is a three-level k-ary fat-tree with
	// deterministic d-mod-k path selection; TopoTorus is a 3D torus
	// with dimension-order routing. The empty string means TopoSingle.
	Topology string
	// ClosRadix is the fat-tree switch radix k (even, >= 4); the tree
	// supports k^3/4 hosts. 0 picks the smallest radix that fits the
	// node count.
	ClosRadix int
	// TorusDims are the torus dimensions (X, Y, Z); the torus supports
	// X*Y*Z hosts. All zero picks near-cubic dimensions that fit the
	// node count.
	TorusDims [3]int

	// --- Network interface (Table 1 + calibration) ---

	NICFreqMHz       int64 // 33 MHz on-board processor
	InterruptNS      int64 // host interrupt delivery + dispatch cost (20 us)
	MessageCacheByte int   // 32 KB Message Cache
	BoardMemoryBytes int   // 1 MB dual-ported memory on the OSIRIS board

	// Per-message and per-cell firmware costs, in NIC-processor cycles.
	NICCellTxCycles   int64 // segmentation work per transmitted cell
	NICCellRxCycles   int64 // reassembly work per received cell
	NICPacketTxCycles int64 // fixed transmit-path work per packet
	NICPacketRxCycles int64 // fixed receive-path work per packet

	// PATHFINDER hardware classification cost per packet, NIC cycles,
	// and the software-classification alternative used for ablation.
	PathfinderCycles     int64
	SoftwareClassifyNS   int64 // software classifier, poor i-cache case
	UseSoftwareClassifer bool  // ablation: classify in NIC software

	// Host-side path costs, nanoseconds.
	KernelSendNS int64 // syscall + kernel protocol, standard send path
	KernelRecvNS int64 // kernel receive path after interrupt
	ADCSendNS    int64 // user-level enqueue on a device channel
	ADCRecvNS    int64 // user-level dequeue from a device channel
	PollNS       int64 // one poll of the receive/free queues

	// Receive-path policy. The CNI uses a poll/interrupt hybrid: above
	// PollSwitchRate arrivals per second the host polls, below it the
	// board interrupts. PureInterrupt forces interrupts (ablation).
	PollSwitchRate float64
	PureInterrupt  bool

	// --- DSM protocol costs ---

	PageBytes        int   // shared page size (2 KB in Table 2's runs)
	AIHHandlerCycles int64 // protocol handler on the NIC, NIC cycles
	HostProtocolNS   int64 // protocol handler on the host CPU, ns
	LocalOpCycles    int64 // protocol op handled on the local node, CPU cycles
	NoticeCycles     int64 // per-write-notice processing, CPU cycles
	DiffWordCycles   int64 // per-word diff create/apply cost, CPU cycles
	// UpdateProtocol switches the DSM from the paper's lazy invalidate
	// protocol to an eager-update variant: homes forward incoming
	// diffs to every node holding a copy instead of letting copies go
	// stale. The paper chose invalidate "because it has been shown
	// that invalidate protocols work best in low overhead
	// environments"; this knob lets the claim be measured.
	UpdateProtocol bool
	// DSMOwnership selects how page ownership is managed: DSMCentral
	// (the default, empty string included) keeps every page's manager
	// at its static home, while DSMDistributed runs the Li/Hudak
	// dynamic distributed manager — per-page probable-owner chains
	// with request forwarding and ownership migration on write faults,
	// plus manager-free distribution of the barrier metadata. On the
	// CNI the forwarding/ownership handlers run as AIHs on the board;
	// elsewhere they pay the host interrupt + kernel path.
	DSMOwnership string

	ReceiveCaching      bool // CNI receive caching (page migration)
	TransmitCaching     bool // CNI transmit caching
	ConsistencySnooping bool // CNI bus snooping into the Message Cache

	// --- Collective engine (internal/collective) ---

	// --- NIC-resident KV response cache (internal/kv) ---

	// NICResponseCache lets the KV service keep recently served GET
	// responses pinned in the Message Cache and answer repeat GETs
	// from a board-resident screening handler: no DMA, no interrupt,
	// no host server involvement. It needs a Message Cache and
	// board-resident handlers, so the OSIRIS and standard models turn
	// it off and always pay the host path.
	NICResponseCache bool
	// ResponseCacheFrames caps how many Message Cache frames the
	// response cache may pin at once (0 = a quarter of the MC frames),
	// bounding how much of the cache serving can steal from messaging.
	ResponseCacheFrames int

	// NICCollectives runs barrier/broadcast/reduce/all-reduce as
	// Application Interrupt Handlers on the CNI board: arriving
	// contributions are combined in board memory by the receive
	// processor and forwarded without crossing the host bus. It also
	// gates the DSM barrier onto the engine. With it off (or on the
	// standard interface) the identical schedule runs through host
	// interrupts and host handlers.
	NICCollectives bool
	// CollTopology is the schedule barriers and power-of-two
	// all-reduces follow; reduce and broadcast are always binomial.
	CollTopology CollTopo

	// --- Fault injection (internal/atm) and per-VC reliability ---

	// The fabric is lossless by default (all rates zero); the injector
	// and the go-back-N retransmission machinery activate only when a
	// fault knob is nonzero, so fault-free runs are bit-identical to a
	// build without this layer.

	// FaultSeed seeds the per-link fault RNGs; two runs with the same
	// Config (including FaultSeed) inject the identical fault sequence.
	FaultSeed uint64
	// CellLossRate is the probability that one transmitted cell is
	// dropped by the fabric. A lost end-of-PDU cell makes the whole PDU
	// vanish at the receiver; any other lost cell is a CRC-failed PDU.
	CellLossRate float64
	// CellCorruptRate is the probability that one cell's payload is
	// corrupted in flight (detected by the AAL5 CRC-32 at reassembly).
	CellCorruptRate float64
	// CellDupRate is the probability that a cell is duplicated by the
	// fabric, which surfaces as a duplicated PDU the receive side must
	// discard by sequence number.
	CellDupRate float64
	// ReorderWindow bounds delivery reorder: each PDU may slip up to
	// this many cell-times past its nominal arrival. 0 disables.
	ReorderWindow int

	// Go-back-N retransmission (active only when a fault knob is set).
	RetransmitWindow    int   // unacked PDUs retained per VC
	RetransmitTimeoutNS int64 // base retransmit timeout
	RetransmitBackoff   int64 // max timeout multiplier (exponential backoff cap)
	NICRetransmitCycles int64 // board-side cost per retransmitted PDU, NIC cycles

	// --- Simulation ---

	NIC  NICKind
	Seed uint64

	// SimShards splits one run across this many conservative-parallel
	// kernel shards advancing in lock-stepped lookahead windows (see
	// DESIGN.md §2.2). 0 (the default) runs the plain single kernel;
	// 1 runs the sharded driver with one shard, which isolates the
	// windowing overhead from the parallelism. Sharding is a host-side
	// execution strategy only: simulated behavior, all statistics, and
	// rendered output are bit-identical at every shard count. Runs whose
	// model needs zero-lookahead cross-node access (DSM page copies)
	// clamp back to the single kernel.
	SimShards int
}

// FaultsEnabled reports whether any fault-injection knob is nonzero;
// the fabric injector and the NIC reliability layer exist only then.
func (c *Config) FaultsEnabled() bool {
	return c.CellLossRate > 0 || c.CellCorruptRate > 0 || c.CellDupRate > 0 || c.ReorderWindow > 0
}

// Default returns the Table 1 machine with the paper's CNI features
// enabled and the calibration constants documented in DESIGN.md. It is
// shorthand for ForNIC(NICCNI).
func Default() Config { return ForNIC(NICCNI) }

// Standard returns the Table 1 machine with the baseline interface:
// ForNIC(NICStandard).
func Standard() Config { return ForNIC(NICStandard) }

// ForNIC returns the default configuration for the given registered
// interface — the single source of truth Default and Standard wrap.
// All models share every Table 1 parameter and calibration constant;
// they differ only in the NIC selector and the board-feature knobs
// their KindSpec.Tune hook turns off relative to the CNI-flavored
// base: ReceiveCaching, TransmitCaching, ConsistencySnooping (the
// Message Cache and its bus snooper) and NICCollectives (the
// board-resident collective engine).
func ForNIC(kind NICKind) Config {
	c := Config{
		CPUFreqMHz:          166,
		L1AccessCycles:      1,
		L1Bytes:             32 << 10,
		L2AccessCycles:      10,
		L2Bytes:             1 << 20,
		CacheLineBytes:      32,
		MemoryLatencyCycles: 20,
		WordBytes:           8,

		BusFreqMHz:           25,
		BusAcquireCycles:     4,
		BusTransferPerWord:   2,
		DMASetupBusCycles:    8,
		SnoopLookupNICCycles: 2,

		SwitchPorts:      32,
		SwitchLatencyNS:  500,
		LinkMbps:         622,
		WirePropNS:       150,
		CellBytes:        53,
		CellPayloadBytes: 48,

		Topology: TopoSingle,

		NICFreqMHz:       33,
		InterruptNS:      20_000, // 20 us: see DESIGN.md on Table 1's lost prefixes
		MessageCacheByte: 32 << 10,
		BoardMemoryBytes: 1 << 20,

		NICCellTxCycles:   4,
		NICCellRxCycles:   4,
		NICPacketTxCycles: 40,
		NICPacketRxCycles: 40,

		PathfinderCycles:   8,
		SoftwareClassifyNS: 2_000,

		KernelSendNS: 6_000,
		KernelRecvNS: 6_000,
		ADCSendNS:    400,
		ADCRecvNS:    400,
		PollNS:       500,

		PollSwitchRate: 10_000, // arrivals/s above which the host polls

		PageBytes:           2048,
		AIHHandlerCycles:    60,
		HostProtocolNS:      3_000,
		LocalOpCycles:       150,
		NoticeCycles:        40,
		DiffWordCycles:      2,
		ReceiveCaching:      true,
		TransmitCaching:     true,
		ConsistencySnooping: true,

		NICResponseCache: true,

		NICCollectives: true,
		CollTopology:   CollDissemination,

		FaultSeed:           1,
		RetransmitWindow:    8,
		RetransmitTimeoutNS: 200_000, // 200 us, comfortably above a loaded RTT
		RetransmitBackoff:   16,
		NICRetransmitCycles: 24,

		NIC:  NICCNI,
		Seed: 1,
	}
	spec, ok := kindSpec(kind)
	if !ok {
		panic(fmt.Sprintf("config: ForNIC(%v): unregistered NIC kind", kind))
	}
	c.NIC = kind
	if spec.Tune != nil {
		spec.Tune(&c)
	}
	return c
}

// The registered fabric topologies (package topo implements them; the
// names live here so config does not import its consumer).
const (
	// TopoSingle is the paper's fabric: one output-queued banyan switch
	// of SwitchPorts ports.
	TopoSingle = "single"
	// TopoClos is a three-level k-ary fat-tree (k = ClosRadix) with
	// deterministic d-mod-k upward path selection.
	TopoClos = "clos"
	// TopoTorus is a 3D torus (dimensions TorusDims) with
	// deadlock-free dimension-order routing.
	TopoTorus = "torus"
)

// TopoNames lists the registered topology names for command-line usage
// strings.
func TopoNames() []string { return []string{TopoSingle, TopoClos, TopoTorus} }

// TopologyOrDefault resolves the empty topology selector to TopoSingle.
func (c *Config) TopologyOrDefault() string {
	if c.Topology == "" {
		return TopoSingle
	}
	return c.Topology
}

// The registered DSM ownership modes (package dsm implements them; the
// names live here so config does not import its consumer).
const (
	// DSMCentral is the home-based protocol of the paper's runs: every
	// page's manager is its static home node, fixed for the whole run.
	DSMCentral = "central"
	// DSMDistributed is the Li/Hudak dynamic distributed manager:
	// ownership migrates to write-faulting nodes along per-page
	// probable-owner chains, and requests are forwarded hop by hop
	// (with path compression) instead of through a fixed manager.
	DSMDistributed = "distributed"
)

// DSMOwnershipNames lists the registered ownership modes for
// command-line usage strings.
func DSMOwnershipNames() []string { return []string{DSMCentral, DSMDistributed} }

// DSMOwnershipOrDefault resolves the empty ownership selector to
// DSMCentral.
func (c *Config) DSMOwnershipOrDefault() string {
	if c.DSMOwnership == "" {
		return DSMCentral
	}
	return c.DSMOwnership
}

// MaxNodes is the number of nodes the ATM virtual-circuit namespace can
// address: internal/nic packs the source and destination node ids into
// 16-bit lanes of the 32-bit VCI.
const MaxNodes = 1 << 16

// ValidateNodes rejects cluster sizes the VC namespace cannot address.
// Fabric constructors call it so an oversized node id can never
// silently collide two virtual circuits.
func ValidateNodes(n int) error {
	if n < 1 || n > MaxNodes {
		return fmt.Errorf("config: %d nodes outside 1..%d", n, MaxNodes)
	}
	return nil
}

// Validate reports the first inconsistency in the configuration.
func (c *Config) Validate() error {
	switch {
	case !Registered(c.NIC):
		return fmt.Errorf("config: unregistered NIC kind %d", int(c.NIC))
	case c.CPUFreqMHz <= 0:
		return fmt.Errorf("config: CPU frequency %d MHz", c.CPUFreqMHz)
	case c.BusFreqMHz <= 0 || c.BusFreqMHz > c.CPUFreqMHz:
		return fmt.Errorf("config: bus frequency %d MHz vs CPU %d MHz", c.BusFreqMHz, c.CPUFreqMHz)
	case c.NICFreqMHz <= 0:
		return fmt.Errorf("config: NIC frequency %d MHz", c.NICFreqMHz)
	case c.WordBytes <= 0 || c.CacheLineBytes < c.WordBytes:
		return fmt.Errorf("config: %d-byte lines of %d-byte words", c.CacheLineBytes, c.WordBytes)
	case c.L1Bytes <= 0 || c.L2Bytes < c.L1Bytes:
		return fmt.Errorf("config: L1 %d bytes, L2 %d bytes", c.L1Bytes, c.L2Bytes)
	case c.PageBytes <= 0 || c.PageBytes%c.WordBytes != 0:
		return fmt.Errorf("config: page size %d not a multiple of word size %d", c.PageBytes, c.WordBytes)
	case c.CellPayloadBytes <= 0 || c.CellBytes < c.CellPayloadBytes:
		return fmt.Errorf("config: cell %d bytes with %d payload", c.CellBytes, c.CellPayloadBytes)
	case c.MessageCacheByte < 0 || c.MessageCacheByte > c.BoardMemoryBytes:
		return fmt.Errorf("config: message cache %d bytes exceeds board memory %d", c.MessageCacheByte, c.BoardMemoryBytes)
	case c.ResponseCacheFrames < 0:
		return fmt.Errorf("config: response cache frames %d negative", c.ResponseCacheFrames)
	case c.NICResponseCache && c.MessageCacheByte <= 0:
		return fmt.Errorf("config: NIC response cache needs a Message Cache")
	case c.LinkMbps <= 0:
		return fmt.Errorf("config: link rate %d Mb/s", c.LinkMbps)
	case c.SwitchPorts < 2:
		return fmt.Errorf("config: %d-port switch", c.SwitchPorts)
	case c.TopologyOrDefault() != TopoSingle && c.TopologyOrDefault() != TopoClos &&
		c.TopologyOrDefault() != TopoTorus:
		return fmt.Errorf("config: unknown topology %q (%s)", c.Topology, strings.Join(TopoNames(), " | "))
	case c.ClosRadix != 0 && (c.ClosRadix < 4 || c.ClosRadix%2 != 0):
		return fmt.Errorf("config: clos radix %d must be an even number >= 4", c.ClosRadix)
	case c.TorusDims != [3]int{} && (c.TorusDims[0] < 1 || c.TorusDims[1] < 1 || c.TorusDims[2] < 1):
		return fmt.Errorf("config: torus dimensions %v must all be >= 1", c.TorusDims)
	case c.CollTopology != CollDissemination && c.CollTopology != CollBinomial:
		return fmt.Errorf("config: unknown collective topology %d", int(c.CollTopology))
	case c.DSMOwnershipOrDefault() != DSMCentral && c.DSMOwnershipOrDefault() != DSMDistributed:
		return fmt.Errorf("config: unknown DSM ownership %q (%s)", c.DSMOwnership, strings.Join(DSMOwnershipNames(), " | "))
	case c.UpdateProtocol && c.DSMOwnershipOrDefault() == DSMDistributed:
		return fmt.Errorf("config: the eager-update protocol requires central ownership (copysets do not migrate)")
	case c.CellLossRate < 0 || c.CellLossRate >= 1:
		return fmt.Errorf("config: cell loss rate %g outside [0,1)", c.CellLossRate)
	case c.CellCorruptRate < 0 || c.CellCorruptRate >= 1:
		return fmt.Errorf("config: cell corrupt rate %g outside [0,1)", c.CellCorruptRate)
	case c.CellDupRate < 0 || c.CellDupRate >= 1:
		return fmt.Errorf("config: cell dup rate %g outside [0,1)", c.CellDupRate)
	case c.SimShards < 0:
		return fmt.Errorf("config: SimShards %d must be >= 0", c.SimShards)
	case c.ReorderWindow < 0:
		return fmt.Errorf("config: reorder window %d", c.ReorderWindow)
	}
	if c.FaultsEnabled() {
		switch {
		case c.RetransmitWindow <= 0:
			return fmt.Errorf("config: faults enabled with retransmit window %d", c.RetransmitWindow)
		case c.RetransmitTimeoutNS <= 0:
			return fmt.Errorf("config: faults enabled with retransmit timeout %d ns", c.RetransmitTimeoutNS)
		case c.RetransmitBackoff < 1:
			return fmt.Errorf("config: retransmit backoff cap %d below 1", c.RetransmitBackoff)
		}
	}
	return nil
}

// --- Unit conversions. All return host CPU cycles. ---

// NSToCycles converts nanoseconds to CPU cycles, rounding up so that
// no modeled cost silently becomes free.
func (c *Config) NSToCycles(ns int64) sim.Time {
	return sim.Time((ns*c.CPUFreqMHz + 999) / 1000)
}

// CyclesToNS converts CPU cycles to nanoseconds (rounded down).
func (c *Config) CyclesToNS(cy sim.Time) int64 {
	return int64(cy) * 1000 / c.CPUFreqMHz
}

// BusToCPU converts bus cycles to CPU cycles, rounding up.
func (c *Config) BusToCPU(busCycles int64) sim.Time {
	return sim.Time((busCycles*c.CPUFreqMHz + c.BusFreqMHz - 1) / c.BusFreqMHz)
}

// NICToCPU converts NIC-processor cycles to CPU cycles, rounding up.
func (c *Config) NICToCPU(nicCycles int64) sim.Time {
	return sim.Time((nicCycles*c.CPUFreqMHz + c.NICFreqMHz - 1) / c.NICFreqMHz)
}

// Words returns the number of bus words needed to carry b bytes.
func (c *Config) Words(b int) int64 {
	return int64((b + c.WordBytes - 1) / c.WordBytes)
}

// DMACycles returns the CPU cycles a DMA of b bytes occupies the memory
// bus: arbitration, descriptor setup, then the word transfers.
func (c *Config) DMACycles(b int) sim.Time {
	bus := c.BusAcquireCycles + c.DMASetupBusCycles + c.Words(b)*c.BusTransferPerWord
	return c.BusToCPU(bus)
}

// Cells returns the number of ATM cells needed to carry b payload
// bytes (at least one: even an empty message occupies a cell). With
// UnrestrictedCell set, everything fits one mythical cell.
func (c *Config) Cells(b int) int {
	if c.UnrestrictedCell {
		return 1
	}
	n := (b + c.CellPayloadBytes - 1) / c.CellPayloadBytes
	if n == 0 {
		n = 1
	}
	return n
}

// WireBytes returns the bytes actually serialized on the link for a
// b-byte message, including per-cell header overhead.
func (c *Config) WireBytes(b int) int {
	if c.UnrestrictedCell {
		header := c.CellBytes - c.CellPayloadBytes
		return b + header
	}
	return c.Cells(b) * c.CellBytes
}

// SerializeCycles returns the CPU cycles needed to clock b message
// bytes (plus cell overhead) onto the link.
func (c *Config) SerializeCycles(b int) sim.Time {
	bits := int64(c.WireBytes(b)) * 8
	ns := (bits*1000 + c.LinkMbps - 1) / c.LinkMbps
	return c.NSToCycles(ns)
}

// InterruptCycles is the host interrupt cost in CPU cycles.
func (c *Config) InterruptCycles() sim.Time { return c.NSToCycles(c.InterruptNS) }

// Pages returns the number of shared-memory pages covering b bytes.
func (c *Config) Pages(b int) int {
	return (b + c.PageBytes - 1) / c.PageBytes
}

// Table1 renders the configuration in the shape of the paper's Table 1,
// followed by the calibration constants this reproduction adds.
func (c *Config) Table1() string {
	var b strings.Builder
	row := func(k, v string) { fmt.Fprintf(&b, "%-34s %s\n", k, v) }
	row("CPU Frequency", fmt.Sprintf("%d MHz", c.CPUFreqMHz))
	row("Primary Cache Access Time", fmt.Sprintf("%d cycle(s)", c.L1AccessCycles))
	row("Primary Cache Size", fmt.Sprintf("%dK unified", c.L1Bytes>>10))
	row("Secondary Cache Access Time", fmt.Sprintf("%d cycles", c.L2AccessCycles))
	row("Secondary Cache Size", fmt.Sprintf("%d MB unified", c.L2Bytes>>20))
	row("Cache Organization", "Direct-mapped")
	row("Cache Policy", "Write-back")
	row("Memory Latency", fmt.Sprintf("%d cycles", c.MemoryLatencyCycles))
	row("Bus Acquisition Time", fmt.Sprintf("%d cycles", c.BusAcquireCycles))
	row("Bus Transfer Rate", fmt.Sprintf("%d cycles per word", c.BusTransferPerWord))
	row("Bus Frequency", fmt.Sprintf("%d MHz", c.BusFreqMHz))
	row("Switch Latency", fmt.Sprintf("%d ns", c.SwitchLatencyNS))
	row("Network Processor Frequency", fmt.Sprintf("%d MHz", c.NICFreqMHz))
	row("Network Latency", fmt.Sprintf("%d ns", c.WirePropNS))
	row("Interrupt Latency", fmt.Sprintf("%d us", c.InterruptNS/1000))
	row("Message Cache Size", fmt.Sprintf("%d KB", c.MessageCacheByte>>10))
	return b.String()
}

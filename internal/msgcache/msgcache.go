// Package msgcache implements the Message Cache of the CNI paper
// (Section 2.2): a set of page-sized buffers in the network adaptor
// board's memory kept consistent with host memory, so that
//
//   - a transmit of a buffer that is already resident skips the
//     host-to-board DMA (transmit caching),
//   - an arriving DSM page can be bound to its board buffer so a later
//     migration to another node skips the DMA too (receive caching), and
//   - CPU writes observed on the memory bus update the board copy in
//     place (consistency snooping) instead of invalidating it.
//
// Buffers are managed in approximate LRU order (a clock sweep, which is
// what "approximate LRU" meant in period hardware) and the buffer map
// binds host virtual pages to buffer frames. A TLB/RTLB pair translates
// between host virtual and physical pages: the TLB serves virtually
// addressed DMA, and the RTLB turns the physical addresses seen on the
// snooped bus back into virtual pages for the buffer-map probe.
//
// The package tracks bindings and statistics only; page *contents* live
// in the DSM layer (the simulation ships current contents regardless,
// so storing bytes here would add memory without adding fidelity).
package msgcache

import (
	"errors"
	"fmt"
)

// Stats counts Message Cache activity. The paper's "network cache hit
// ratio" is TxHits / (TxHits + TxMisses).
type Stats struct {
	TxHits       uint64 // transmits served from a bound buffer
	TxMisses     uint64 // transmits that needed a host-to-board DMA
	TxBindings   uint64 // bindings created on the transmit path
	RxBindings   uint64 // bindings created by receive caching
	SnoopUpdates uint64 // CPU writes folded into a bound buffer
	SnoopAborts  uint64 // snooped writes with no bound buffer
	SnoopInvals  uint64 // writes that invalidated a binding (snooping off)
	Evictions    uint64 // bindings evicted by the clock sweep
	Invalidates  uint64 // explicit invalidations
	Pins         uint64 // retention pins taken on bound frames
}

// HitRatio returns the network cache hit ratio in percent, or 0 when
// nothing was transmitted.
func (s *Stats) HitRatio() float64 {
	total := s.TxHits + s.TxMisses
	if total == 0 {
		return 0
	}
	return 100 * float64(s.TxHits) / float64(total)
}

// frame is one page-sized board buffer.
type frame struct {
	vpage  uint64
	valid  bool
	ref    bool // clock reference bit
	pinned int  // retention count: >0 exempts the frame from the sweep
}

// Cache is one board's Message Cache.
type Cache struct {
	pageBytes int
	frames    []frame
	byVPage   map[uint64]int // vpage -> frame index
	hand      int            // clock hand
	snooping  bool

	tlb  map[uint64]uint64 // vpage -> ppage
	rtlb map[uint64]uint64 // ppage -> vpage

	Stats Stats
}

// New returns a Message Cache of sizeBytes bytes of board memory cut
// into pageBytes buffers (the paper fixes the buffer size to the host
// page size). snooping selects consistency snooping (true, the CNI
// design) versus invalidate-on-write (false, used for ablation).
func New(sizeBytes, pageBytes int, snooping bool) *Cache {
	if pageBytes <= 0 {
		panic("msgcache: non-positive page size")
	}
	n := sizeBytes / pageBytes
	// byVPage is deliberately not pre-sized to the frame count: it
	// grows with the pages actually bound, and boards in large fabric
	// sweeps bind a handful of pages out of a thousand frames.
	return &Cache{
		pageBytes: pageBytes,
		frames:    make([]frame, n),
		byVPage:   make(map[uint64]int),
		snooping:  snooping,
		tlb:       make(map[uint64]uint64),
		rtlb:      make(map[uint64]uint64),
	}
}

// Frames reports the number of page buffers.
func (c *Cache) Frames() int { return len(c.frames) }

// PageBytes reports the buffer size.
func (c *Cache) PageBytes() int { return c.pageBytes }

// vpageOf truncates a virtual address to its page number.
func (c *Cache) vpageOf(vaddr uint64) uint64 { return vaddr / uint64(c.pageBytes) }

// --- TLB / RTLB ---

// ErrNoMapping is returned by translations with no installed entry.
var ErrNoMapping = errors.New("msgcache: no translation")

// MapPage installs the virtual-to-physical translation for one page in
// both the TLB and the RTLB (the OS does this when it pins a buffer
// for the board).
func (c *Cache) MapPage(vpage, ppage uint64) {
	if old, ok := c.tlb[vpage]; ok && old != ppage {
		delete(c.rtlb, old)
	}
	c.tlb[vpage] = ppage
	c.rtlb[ppage] = vpage
}

// UnmapPage removes the translation for vpage.
func (c *Cache) UnmapPage(vpage uint64) {
	if p, ok := c.tlb[vpage]; ok {
		delete(c.rtlb, p)
		delete(c.tlb, vpage)
	}
}

// V2P translates a virtual page to a physical page (virtually
// addressed DMA path).
func (c *Cache) V2P(vpage uint64) (uint64, error) {
	p, ok := c.tlb[vpage]
	if !ok {
		return 0, fmt.Errorf("%w: vpage %#x", ErrNoMapping, vpage)
	}
	return p, nil
}

// P2V translates a physical page back to the virtual page (snoop path).
func (c *Cache) P2V(ppage uint64) (uint64, error) {
	v, ok := c.rtlb[ppage]
	if !ok {
		return 0, fmt.Errorf("%w: ppage %#x", ErrNoMapping, ppage)
	}
	return v, nil
}

// --- Buffer map operations ---

// LookupTransmit is step 1 of the paper's transmit path: is there a
// valid board buffer for the host buffer at vaddr? A hit touches the
// frame's reference bit.
func (c *Cache) LookupTransmit(vaddr uint64) bool {
	if len(c.frames) == 0 {
		c.Stats.TxMisses++
		return false
	}
	if i, ok := c.byVPage[c.vpageOf(vaddr)]; ok && c.frames[i].valid {
		c.frames[i].ref = true
		c.Stats.TxHits++
		return true
	}
	c.Stats.TxMisses++
	return false
}

// BindTransmit creates a binding after the transmit-path DMA for a
// message whose header had the cache bit set (step 3).
func (c *Cache) BindTransmit(vaddr uint64) {
	if c.bind(c.vpageOf(vaddr)) {
		c.Stats.TxBindings++
	}
}

// BindReceive creates a binding for an arriving page whose header had
// the cache bit set (receive caching, step 2 of the receive path).
func (c *Cache) BindReceive(vaddr uint64) {
	if c.bind(c.vpageOf(vaddr)) {
		c.Stats.RxBindings++
	}
}

// bind installs vpage in a frame, evicting the clock victim if needed.
// It reports whether a new binding was created. With every frame pinned
// there is no victim and the binding silently fails — the board falls
// back to DMA, it never evicts retained data.
func (c *Cache) bind(vpage uint64) bool {
	if len(c.frames) == 0 {
		return false
	}
	if i, ok := c.byVPage[vpage]; ok {
		c.frames[i].valid = true
		c.frames[i].ref = true
		return false
	}
	i := c.victim()
	if i < 0 {
		return false
	}
	f := &c.frames[i]
	if f.valid {
		delete(c.byVPage, f.vpage)
		c.Stats.Evictions++
	}
	f.vpage = vpage
	f.valid = true
	f.ref = true
	c.byVPage[vpage] = i
	return true
}

// victim runs the clock sweep: advance the hand past pinned frames and
// past frames with the reference bit set (clearing it), return the
// first unpinned frame without it. Invalid frames are taken
// immediately. Returns -1 when every frame is pinned.
func (c *Cache) victim() int {
	for sweep := 0; sweep < 2*len(c.frames); sweep++ {
		f := &c.frames[c.hand]
		i := c.hand
		c.hand = (c.hand + 1) % len(c.frames)
		if f.pinned > 0 {
			continue
		}
		if !f.valid {
			return i
		}
		if f.ref {
			f.ref = false
			continue
		}
		return i
	}
	// All frames referenced twice around: fall back to the first
	// unpinned frame at or after the hand.
	for sweep := 0; sweep < len(c.frames); sweep++ {
		i := c.hand
		c.hand = (c.hand + 1) % len(c.frames)
		if c.frames[i].pinned == 0 {
			return i
		}
	}
	return -1
}

// SnoopWrite is the consistency-snooping path: the board observed a CPU
// write to physical address paddr on the memory bus. With snooping on,
// a bound buffer absorbs the write and stays valid; with snooping off
// (ablation), the binding is invalidated so stale data is never
// transmitted. It reports whether a bound buffer was affected.
func (c *Cache) SnoopWrite(paddr uint64) bool {
	vpage, err := c.P2V(paddr / uint64(c.pageBytes))
	if err != nil {
		c.Stats.SnoopAborts++
		return false
	}
	i, ok := c.byVPage[vpage]
	if !ok || !c.frames[i].valid {
		c.Stats.SnoopAborts++
		return false
	}
	if c.snooping {
		c.Stats.SnoopUpdates++
		return true
	}
	c.invalidateFrame(i)
	c.Stats.SnoopInvals++
	return true
}

// Invalidate drops the binding for the page containing vaddr, if any.
func (c *Cache) Invalidate(vaddr uint64) bool {
	i, ok := c.byVPage[c.vpageOf(vaddr)]
	if !ok {
		return false
	}
	c.invalidateFrame(i)
	c.Stats.Invalidates++
	return true
}

func (c *Cache) invalidateFrame(i int) {
	delete(c.byVPage, c.frames[i].vpage)
	c.frames[i].valid = false
	c.frames[i].ref = false
	c.frames[i].pinned = 0
}

// Pin exempts the frame bound to the page containing vaddr from the
// clock sweep (retransmission retention: the board may still have to
// resend this buffer, so the sweep must not evict it). Pins nest.
// Reports whether a bound frame was pinned.
func (c *Cache) Pin(vaddr uint64) bool {
	i, ok := c.byVPage[c.vpageOf(vaddr)]
	if !ok || !c.frames[i].valid {
		return false
	}
	c.frames[i].pinned++
	c.Stats.Pins++
	return true
}

// Unpin releases one Pin on the page containing vaddr. Reports whether
// a pinned frame was released. Unpinning a page whose binding was
// meanwhile invalidated is a harmless no-op.
func (c *Cache) Unpin(vaddr uint64) bool {
	i, ok := c.byVPage[c.vpageOf(vaddr)]
	if !ok || c.frames[i].pinned == 0 {
		return false
	}
	c.frames[i].pinned--
	return true
}

// Pinned reports whether the page containing vaddr is bound and pinned.
func (c *Cache) Pinned(vaddr uint64) bool {
	i, ok := c.byVPage[c.vpageOf(vaddr)]
	return ok && c.frames[i].pinned > 0
}

// Resident reports whether the page containing vaddr is bound, without
// touching reference bits or statistics.
func (c *Cache) Resident(vaddr uint64) bool {
	i, ok := c.byVPage[c.vpageOf(vaddr)]
	return ok && c.frames[i].valid
}

// Residents reports the number of valid bindings.
func (c *Cache) Residents() int { return len(c.byVPage) }

package msgcache

import (
	"testing"
	"testing/quick"
)

const page = 2048

// newCache returns a 4-frame cache with identity-ish V/P mappings for
// the first 64 pages.
func newCache(snooping bool) *Cache {
	c := New(4*page, page, snooping)
	for v := uint64(0); v < 64; v++ {
		c.MapPage(v, v+1000) // physical pages offset to prove translation
	}
	return c
}

func TestTransmitMissThenHit(t *testing.T) {
	c := newCache(true)
	if c.LookupTransmit(0) {
		t.Fatal("cold lookup hit")
	}
	c.BindTransmit(0)
	if !c.LookupTransmit(0) {
		t.Fatal("lookup after bind missed")
	}
	if !c.LookupTransmit(page - 1) {
		t.Fatal("same-page address missed")
	}
	if c.LookupTransmit(page) {
		t.Fatal("next page hit")
	}
	if c.Stats.TxHits != 2 || c.Stats.TxMisses != 2 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestHitRatio(t *testing.T) {
	c := newCache(true)
	var s Stats
	if s.HitRatio() != 0 {
		t.Fatal("empty stats hit ratio not 0")
	}
	c.BindTransmit(0)
	c.LookupTransmit(0)          // hit
	c.LookupTransmit(page)       // miss
	c.LookupTransmit(2 * page)   // miss
	c.LookupTransmit(page - 100) // hit
	if got := c.Stats.HitRatio(); got != 50 {
		t.Fatalf("HitRatio = %v, want 50", got)
	}
}

func TestClockEvictsUnreferenced(t *testing.T) {
	c := newCache(true)
	// Fill all 4 frames.
	for i := uint64(0); i < 4; i++ {
		c.BindTransmit(i * page)
	}
	// Touch pages 1-3 so page 0's reference bit is the only one cleared
	// after one sweep... all ref bits are set by bind; reference pages
	// 1,2,3 again to keep them warm through the sweep.
	c.LookupTransmit(1 * page)
	c.LookupTransmit(2 * page)
	c.LookupTransmit(3 * page)
	// Binding a 5th page must evict one of the four.
	c.BindTransmit(4 * page)
	if c.Stats.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", c.Stats.Evictions)
	}
	if !c.Resident(4 * page) {
		t.Fatal("new page not resident")
	}
	resident := 0
	for i := uint64(0); i < 4; i++ {
		if c.Resident(i * page) {
			resident++
		}
	}
	if resident != 3 {
		t.Fatalf("%d old pages resident, want 3", resident)
	}
}

func TestWorkingSetSmallerThanCacheNeverEvicts(t *testing.T) {
	c := newCache(true)
	for round := 0; round < 100; round++ {
		for i := uint64(0); i < 4; i++ {
			if !c.LookupTransmit(i * page) {
				c.BindTransmit(i * page)
			}
		}
	}
	if c.Stats.Evictions != 0 {
		t.Fatalf("evictions = %d for a fitting working set", c.Stats.Evictions)
	}
	// 400 lookups: 4 cold misses, rest hits.
	if c.Stats.TxMisses != 4 || c.Stats.TxHits != 396 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestWorkingSetLargerThanCacheThrashes(t *testing.T) {
	c := newCache(true)
	// Cyclic sweep over 8 pages in a 4-frame cache: hit ratio collapses.
	for round := 0; round < 50; round++ {
		for i := uint64(0); i < 8; i++ {
			if !c.LookupTransmit(i * page) {
				c.BindTransmit(i * page)
			}
		}
	}
	if c.Stats.HitRatio() > 50 {
		t.Fatalf("hit ratio %v for a thrashing working set", c.Stats.HitRatio())
	}
}

func TestSnoopUpdatesKeepBindingValid(t *testing.T) {
	c := newCache(true)
	c.BindTransmit(0)
	// CPU writes to physical page 1000 (= virtual page 0).
	if !c.SnoopWrite(1000 * page) {
		t.Fatal("snoop did not find the bound buffer")
	}
	if !c.Resident(0) {
		t.Fatal("snooping must keep the binding valid")
	}
	if c.Stats.SnoopUpdates != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	if !c.LookupTransmit(0) {
		t.Fatal("post-snoop transmit should still hit")
	}
}

func TestSnoopWithoutSnoopingInvalidates(t *testing.T) {
	c := newCache(false)
	c.BindTransmit(0)
	if !c.SnoopWrite(1000 * page) {
		t.Fatal("write did not find the bound buffer")
	}
	if c.Resident(0) {
		t.Fatal("without snooping a CPU write must invalidate the binding")
	}
	if c.Stats.SnoopInvals != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestSnoopAbortsOnUnboundPage(t *testing.T) {
	c := newCache(true)
	if c.SnoopWrite(1005 * page) {
		t.Fatal("snoop matched an unbound page")
	}
	if c.SnoopWrite(5 * page) { // physical page with no RTLB entry
		t.Fatal("snoop matched an unmapped physical page")
	}
	if c.Stats.SnoopAborts != 2 {
		t.Fatalf("SnoopAborts = %d, want 2", c.Stats.SnoopAborts)
	}
}

func TestTLBAndRTLB(t *testing.T) {
	c := New(4*page, page, true)
	c.MapPage(7, 1007)
	p, err := c.V2P(7)
	if err != nil || p != 1007 {
		t.Fatalf("V2P = %d, %v", p, err)
	}
	v, err := c.P2V(1007)
	if err != nil || v != 7 {
		t.Fatalf("P2V = %d, %v", v, err)
	}
	if _, err := c.V2P(8); err == nil {
		t.Fatal("V2P of unmapped page succeeded")
	}
	// Remap: old reverse entry must go away.
	c.MapPage(7, 2007)
	if _, err := c.P2V(1007); err == nil {
		t.Fatal("stale RTLB entry survived remap")
	}
	c.UnmapPage(7)
	if _, err := c.V2P(7); err == nil {
		t.Fatal("V2P after unmap succeeded")
	}
	if _, err := c.P2V(2007); err == nil {
		t.Fatal("P2V after unmap succeeded")
	}
}

func TestReceiveCachingBindsArrivals(t *testing.T) {
	c := newCache(true)
	c.BindReceive(3 * page)
	if !c.Resident(3 * page) {
		t.Fatal("receive binding not resident")
	}
	if c.Stats.RxBindings != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	// The whole point: the later transmit of the migrated page hits.
	if !c.LookupTransmit(3 * page) {
		t.Fatal("migration transmit missed after receive caching")
	}
}

func TestInvalidate(t *testing.T) {
	c := newCache(true)
	c.BindTransmit(0)
	if !c.Invalidate(10) { // same page
		t.Fatal("Invalidate missed the binding")
	}
	if c.Resident(0) {
		t.Fatal("binding survived Invalidate")
	}
	if c.Invalidate(0) {
		t.Fatal("double Invalidate returned true")
	}
}

func TestZeroFrameCacheAlwaysMisses(t *testing.T) {
	c := New(0, page, true)
	if c.Frames() != 0 {
		t.Fatalf("Frames = %d", c.Frames())
	}
	if c.LookupTransmit(0) {
		t.Fatal("zero-frame cache hit")
	}
	c.BindTransmit(0) // must not panic
	if c.LookupTransmit(0) {
		t.Fatal("zero-frame cache bound a page")
	}
}

func TestRebindExistingPageIsNotAnEviction(t *testing.T) {
	c := newCache(true)
	c.BindTransmit(0)
	c.BindTransmit(0)
	if c.Stats.Evictions != 0 || c.Stats.TxBindings != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
	if c.Residents() != 1 {
		t.Fatalf("Residents = %d", c.Residents())
	}
}

func TestBufferMapInvariantProperty(t *testing.T) {
	// Property: after any sequence of binds, lookups and invalidates,
	// (1) Residents never exceeds frame count, (2) every resident page
	// round-trips through Resident, (3) hits+misses equals lookups.
	type op struct {
		Kind uint8
		Page uint8
	}
	f := func(ops []op) bool {
		c := New(4*page, page, true)
		lookups := uint64(0)
		for _, o := range ops {
			addr := uint64(o.Page%16) * page
			switch o.Kind % 3 {
			case 0:
				c.BindTransmit(addr)
			case 1:
				c.LookupTransmit(addr)
				lookups++
			case 2:
				c.Invalidate(addr)
			}
			if c.Residents() > c.Frames() {
				return false
			}
		}
		return c.Stats.TxHits+c.Stats.TxMisses == lookups
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClockIsApproximateLRU(t *testing.T) {
	// Sequential sweep with one hot page: the hot page must survive far
	// longer than cold pages.
	c := New(8*page, page, true)
	hot := uint64(100 * page)
	c.BindTransmit(hot)
	evictedHot := 0
	for i := uint64(0); i < 1000; i++ {
		c.LookupTransmit(hot) // keep reference bit set
		addr := (i % 32) * page
		if !c.LookupTransmit(addr) {
			c.BindTransmit(addr)
		}
		if !c.Resident(hot) {
			evictedHot++
			c.BindTransmit(hot)
		}
	}
	if evictedHot > 10 {
		t.Fatalf("hot page evicted %d times; clock not approximating LRU", evictedHot)
	}
}

func TestPinExemptsFrameFromSweep(t *testing.T) {
	c := newCache(true)
	c.BindTransmit(0)
	if !c.Pin(0) {
		t.Fatal("pin of a bound page failed")
	}
	// Flood the other three frames many times over: the pinned page must
	// survive every sweep.
	for i := uint64(1); i <= 30; i++ {
		c.BindTransmit(i * page)
	}
	if !c.Resident(0) {
		t.Fatal("pinned page evicted by the clock sweep")
	}
	if !c.Pinned(0) {
		t.Fatal("pin lost")
	}
	c.Unpin(0)
	if c.Pinned(0) {
		t.Fatal("unpin did not release")
	}
	// Now it is fair game again.
	for i := uint64(1); i <= 30; i++ {
		c.BindTransmit(i * page)
	}
	if c.Resident(0) {
		t.Fatal("unpinned page never evicted under pressure")
	}
}

func TestPinNestsAndAllPinnedFailsBind(t *testing.T) {
	c := newCache(true)
	for i := uint64(0); i < 4; i++ {
		c.BindTransmit(i * page)
		c.Pin(i * page)
	}
	evBefore := c.Stats.Evictions
	// Every frame pinned: a new bind must fail, not evict retained data.
	c.BindTransmit(10 * page)
	if c.Resident(10 * page) {
		t.Fatal("bind succeeded with every frame pinned")
	}
	if c.Stats.Evictions != evBefore {
		t.Fatal("a pinned frame was evicted")
	}
	// Pins nest: one Unpin of a double pin keeps the exemption.
	c.Pin(0)
	c.Unpin(0)
	if !c.Pinned(0) {
		t.Fatal("nested pin released after one unpin")
	}
	c.Unpin(0)
	c.BindTransmit(10 * page)
	if !c.Resident(10 * page) {
		t.Fatal("bind still failing after an unpin freed a frame")
	}
}

func TestPinOfUnboundPageFails(t *testing.T) {
	c := newCache(true)
	if c.Pin(5 * page) {
		t.Fatal("pinned a page with no binding")
	}
	if c.Unpin(5 * page) {
		t.Fatal("unpinned a page with no binding")
	}
	// Invalidation clears the pin state with the binding.
	c.BindTransmit(0)
	c.Pin(0)
	c.Invalidate(0)
	if c.Pinned(0) {
		t.Fatal("pin survived invalidation")
	}
}

func TestPinnedNeverVictimUnderSustainedPressure(t *testing.T) {
	// Two of four frames pinned, then hundreds of binds cycling through a
	// working set far larger than the cache: at no point may a pinned
	// frame be chosen as the clock victim.
	c := newCache(true)
	pinned := []uint64{0, page}
	for _, a := range pinned {
		c.BindTransmit(a)
		if !c.Pin(a) {
			t.Fatal("pin failed on a bound page")
		}
	}
	for i := uint64(0); i < 500; i++ {
		c.BindTransmit((2 + i%60) * page)
		for _, a := range pinned {
			if !c.Resident(a) || !c.Pinned(a) {
				t.Fatalf("iteration %d: pinned page %#x lost (resident=%v pinned=%v)",
					i, a, c.Resident(a), c.Pinned(a))
			}
		}
	}
	if c.Stats.Evictions == 0 {
		t.Fatal("pressure produced no evictions; the test exercised nothing")
	}
}

func TestUnpinStormKeepsBufferMapConsistent(t *testing.T) {
	// Property: arbitrary interleavings of bind, pin, unpin (including
	// excess unpins of never-pinned or invalidated pages), invalidate and
	// lookup must keep the buffer map sound: residency bounded by the
	// frame count and every V<->P translation intact. Afterwards an unpin
	// storm must leave no frame stuck pinned.
	type op struct {
		Kind uint8
		Page uint8
	}
	f := func(ops []op) bool {
		c := New(4*page, page, true)
		for v := uint64(0); v < 16; v++ {
			c.MapPage(v, v+1000)
		}
		for _, o := range ops {
			addr := uint64(o.Page%16) * page
			switch o.Kind % 5 {
			case 0:
				c.BindTransmit(addr)
			case 1:
				c.Pin(addr)
			case 2:
				c.Unpin(addr)
			case 3:
				c.Invalidate(addr)
			case 4:
				c.LookupTransmit(addr)
			}
			if c.Residents() > c.Frames() {
				return false
			}
			for v := uint64(0); v < 16; v++ {
				p, err := c.V2P(v)
				if err != nil || p != v+1000 {
					return false
				}
				v2, err := c.P2V(p)
				if err != nil || v2 != v {
					return false
				}
			}
		}
		// Unpin storm: far more unpins than any pin nesting the ops could
		// have built. All must be harmless, and afterwards nothing may be
		// exempt from the sweep.
		for round := 0; round < 16; round++ {
			for v := uint64(0); v < 16; v++ {
				c.Unpin(v * page)
			}
		}
		for v := uint64(0); v < 16; v++ {
			if c.Pinned(v * page) {
				return false // a pin survived the storm
			}
		}
		for v := uint64(0); v < 4; v++ {
			addr := (10 + v) * page
			c.BindTransmit(addr)
			if !c.Resident(addr) {
				return false // a bind failed: some frame is stuck pinned
			}
		}
		return c.Residents() <= c.Frames()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

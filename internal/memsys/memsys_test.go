package memsys

import (
	"testing"
	"testing/quick"

	"cni/internal/config"
)

func newH() (*Hierarchy, config.Config) {
	cfg := config.Default()
	return New(&cfg), cfg
}

func TestColdReadThenHit(t *testing.T) {
	h, cfg := newH()
	cold := h.Read(0x1000)
	if cold <= cfg.L1AccessCycles {
		t.Fatalf("cold read cost %d should include miss penalties", cold)
	}
	warm := h.Read(0x1000)
	if warm != cfg.L1AccessCycles {
		t.Fatalf("warm read cost %d, want L1 hit cost %d", warm, cfg.L1AccessCycles)
	}
	if h.Stats.L1Hits != 1 || h.Stats.L1Misses != 1 || h.Stats.L2Misses != 1 {
		t.Fatalf("stats = %+v", h.Stats)
	}
}

func TestSameLineSharesHit(t *testing.T) {
	h, cfg := newH()
	h.Read(0x1000)
	// Any address within the same 32-byte line is a hit.
	if got := h.Read(0x1000 + uint64(cfg.CacheLineBytes) - 1); got != cfg.L1AccessCycles {
		t.Fatalf("same-line read cost %d, want %d", got, cfg.L1AccessCycles)
	}
	if got := h.Read(0x1000 + uint64(cfg.CacheLineBytes)); got == cfg.L1AccessCycles {
		t.Fatal("next line should miss")
	}
}

func TestL2CatchesL1Conflict(t *testing.T) {
	h, cfg := newH()
	a := uint64(0x10_0000)
	b := a + uint64(cfg.L1Bytes) // same L1 index, different tag
	h.Read(a)
	h.Read(b) // evicts a from L1; both now in L2 (different L2 indexes? same stride < L2 size, so distinct)
	cost := h.Read(a)
	want := cfg.L1AccessCycles + cfg.L2AccessCycles
	if cost != want {
		t.Fatalf("L1-conflict reread cost %d, want L2 hit %d", cost, want)
	}
	if h.Stats.L2Hits != 1 {
		t.Fatalf("L2Hits = %d, want 1", h.Stats.L2Hits)
	}
}

func TestDirtyEvictionCostsWriteBack(t *testing.T) {
	h, cfg := newH()
	a := uint64(0x20_0000)
	h.Write(a) // dirty in L1
	// Evict through L1 conflict: dirty victim is absorbed by L2 (present
	// there after the fill), so no memory write-back yet.
	h.Read(a + uint64(cfg.L1Bytes))
	if h.Stats.WriteBacks != 0 {
		t.Fatalf("WriteBacks = %d before L2 eviction, want 0", h.Stats.WriteBacks)
	}
	// Now force the dirty line out of L2 as well.
	h.Read(a + uint64(cfg.L2Bytes))
	if h.Stats.WriteBacks == 0 {
		t.Fatal("evicting a dirty L2 line must cost a write-back")
	}
}

func TestWritesDirtyOnlyUntilFlushed(t *testing.T) {
	h, _ := newH()
	base := uint64(0x40_0000)
	h.Write(base)
	h.Write(base + 64)
	cost, flushed := h.FlushRange(base, 128)
	if flushed != 2 {
		t.Fatalf("flushed %d lines, want 2 (wrote 2 distinct lines)", flushed)
	}
	if cost <= 0 {
		t.Fatal("flush of dirty lines must cost cycles")
	}
	// Second flush: everything clean.
	_, flushed = h.FlushRange(base, 128)
	if flushed != 0 {
		t.Fatalf("re-flush flushed %d lines, want 0", flushed)
	}
}

func TestFlushCleanRangeCheap(t *testing.T) {
	h, _ := newH()
	base := uint64(0x50_0000)
	h.ReadRange(base, 2048)
	dirtyCostBase, flushed := h.FlushRange(base, 2048)
	if flushed != 0 {
		t.Fatalf("clean range flushed %d lines", flushed)
	}
	h.WriteRange(base, 2048)
	dirtyCost, flushed := h.FlushRange(base, 2048)
	if flushed != 2048/h.LineBytes() {
		t.Fatalf("flushed %d, want %d", flushed, 2048/h.LineBytes())
	}
	if dirtyCost <= dirtyCostBase {
		t.Fatal("flushing dirty lines should cost more than probing clean ones")
	}
}

func TestInvalidateForcesMiss(t *testing.T) {
	h, cfg := newH()
	a := uint64(0x60_0000)
	h.Read(a)
	h.InvalidateRange(a, cfg.CacheLineBytes)
	if got := h.Read(a); got == cfg.L1AccessCycles {
		t.Fatal("read after invalidate must miss")
	}
}

func TestInvalidateDropsDirtyWithoutWriteback(t *testing.T) {
	h, _ := newH()
	a := uint64(0x70_0000)
	h.Write(a)
	before := h.Stats.WriteBacks
	h.InvalidateRange(a, 32)
	if h.Stats.WriteBacks != before {
		t.Fatal("invalidate must not write back (incoming DMA overwrites memory)")
	}
	_, flushed := h.FlushRange(a, 32)
	if flushed != 0 {
		t.Fatal("invalidated line must not be flushable")
	}
}

func TestRangeOpsCoverPartialLines(t *testing.T) {
	h, _ := newH()
	// A 1-byte range straddling nothing still touches one line.
	if cost := h.ReadRange(0x1001, 1); cost <= 0 {
		t.Fatal("ReadRange of 1 byte should charge one access")
	}
	// A range starting mid-line and ending mid-line covers both lines.
	h2, _ := newH()
	h2.ReadRange(0x1010, 64) // 32-byte lines: touches lines at 0x1000, 0x1020, 0x1040
	if h2.Stats.Reads != 3 {
		t.Fatalf("ReadRange(0x1010, 64) made %d accesses, want 3", h2.Stats.Reads)
	}
}

func TestCacheStatsConservation(t *testing.T) {
	// Property: reads+writes == L1 hits + L1 misses, and L1 misses ==
	// L2 hits + L2 misses, for arbitrary access sequences.
	f := func(ops []uint16) bool {
		h, _ := newH()
		for i, op := range ops {
			addr := uint64(op) * 8
			if i%3 == 0 {
				h.Write(addr)
			} else {
				h.Read(addr)
			}
		}
		s := h.Stats
		return s.Reads+s.Writes == s.L1Hits+s.L1Misses &&
			s.L1Misses == s.L2Hits+s.L2Misses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlushIdempotentProperty(t *testing.T) {
	// Property: after FlushRange, a second FlushRange over the same
	// range flushes zero lines, whatever was written before.
	f := func(writes []uint16, span uint8) bool {
		h, _ := newH()
		base := uint64(0x100000)
		n := (int(span)%64 + 1) * h.LineBytes()
		for _, w := range writes {
			h.Write(base + uint64(w)%uint64(n))
		}
		h.FlushRange(base, n)
		_, again := h.FlushRange(base, n)
		return again == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkingSetFitsInL1(t *testing.T) {
	h, cfg := newH()
	// Touch 16 KB (half of L1) twice; second pass must be all hits.
	for a := uint64(0); a < 16<<10; a += uint64(cfg.CacheLineBytes) {
		h.Read(a)
	}
	missesAfterPass1 := h.Stats.L1Misses
	for a := uint64(0); a < 16<<10; a += uint64(cfg.CacheLineBytes) {
		h.Read(a)
	}
	if h.Stats.L1Misses != missesAfterPass1 {
		t.Fatalf("second pass over resident set missed %d times",
			h.Stats.L1Misses-missesAfterPass1)
	}
}

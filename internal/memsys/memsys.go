// Package memsys models the host workstation's memory system: a
// direct-mapped write-back primary cache, a direct-mapped write-back
// secondary cache, main memory, and the shared memory bus (Table 1 of
// the CNI paper).
//
// The cache model is a cost oracle for the simulated CPU: Read and
// Write return the cycles an access costs, which the caller charges to
// its simulated processor with Proc.Advance. Because the Message Cache
// snoops the *memory bus*, the CPU must flush dirty lines to memory
// before a buffer is handed to the NIC on a write-back machine
// (Section 2.2 of the paper); FlushRange models exactly that, and
// InvalidateRange models the invalidation needed before incoming DMA
// deposits data underneath the caches.
//
// Modeling note: CPU cache-miss traffic does not occupy the bus
// Resource shared with the DMA engines. Charging CPU misses through the
// event queue would force a kernel synchronization on every memory
// access and defeat execution-driven simulation; the paper's simulator
// makes the same simplification. DMA-versus-DMA contention is modeled
// through the per-node bus Resource.
package memsys

import (
	"cni/internal/config"
	"cni/internal/sim"
)

// line is one direct-mapped cache line.
type line struct {
	tag   uint64
	valid bool
	dirty bool
}

// chunkLines is the materialization granularity of a cache's line
// array: 1024 lines (24 KB of model state at 32-byte lines). A nil
// chunk is equivalent to a chunk of invalid lines, so a node that
// never touches most of its modeled 1 MB L2 — every board-level
// experiment at 1024 nodes — never pays to zero it. Before this, cache
// construction dominated large fabric sweeps: 1024 nodes allocated
// ~1.6 GB of line arrays to simulate a few KB of traffic each.
const chunkLines = 1024

// cache is one level of direct-mapped cache, with the line array
// materialized lazily in chunkLines-sized chunks.
type cache struct {
	chunks    [][]line
	nlines    uint64
	lineShift uint
	indexMask uint64
}

func newCache(sizeBytes, lineBytes int) *cache {
	n := sizeBytes / lineBytes
	if n == 0 {
		n = 1
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &cache{
		chunks:    make([][]line, (n+chunkLines-1)/chunkLines),
		nlines:    uint64(n),
		lineShift: shift,
		indexMask: uint64(n - 1),
	}
}

// line returns the line at index idx, materializing its chunk.
func (c *cache) line(idx uint64) *line {
	ci := idx / chunkLines
	ch := c.chunks[ci]
	if ch == nil {
		size := c.nlines - ci*chunkLines
		if size > chunkLines {
			size = chunkLines
		}
		ch = make([]line, size)
		c.chunks[ci] = ch
	}
	return &ch[idx%chunkLines]
}

// probe returns the line for addr and whether it currently holds addr.
// The returned pointer is nil when the line's chunk has never been
// touched (which also means the line cannot hold addr).
func (c *cache) probe(addr uint64) (*line, bool) {
	tag := addr >> c.lineShift
	idx := tag & c.indexMask
	ch := c.chunks[idx/chunkLines]
	if ch == nil {
		return nil, false
	}
	l := &ch[idx%chunkLines]
	return l, l.valid && l.tag == tag
}

// fill installs addr's line, returning the evicted victim's tag and
// whether that victim was dirty. dirty is false when the slot was
// empty or already held addr.
func (c *cache) fill(addr uint64) (victimTag uint64, dirty bool) {
	tag := addr >> c.lineShift
	l := c.line(tag & c.indexMask)
	if l.valid && l.tag != tag {
		victimTag, dirty = l.tag, l.dirty
	}
	l.tag = tag
	l.valid = true
	l.dirty = false
	return victimTag, dirty
}

// Stats counts memory-system events for one hierarchy.
type Stats struct {
	Reads       uint64
	Writes      uint64
	L1Hits      uint64
	L1Misses    uint64
	L2Hits      uint64
	L2Misses    uint64
	WriteBacks  uint64 // dirty evictions + explicit flushes reaching memory
	Flushes     uint64 // FlushRange calls
	FlushedLns  uint64 // dirty lines written back by FlushRange
	Invalidates uint64
}

// Hierarchy is the L1+L2 write-back hierarchy of one workstation node.
type Hierarchy struct {
	cfg   *config.Config
	l1    *cache
	l2    *cache
	Stats Stats

	lineBytes     int
	missToL2      sim.Time // L2 access on an L1 miss
	missToMemory  sim.Time // memory latency + line transfer over the bus
	writeBackCost sim.Time // one dirty line to memory
}

// New returns a hierarchy sized per cfg.
func New(cfg *config.Config) *Hierarchy {
	lineWords := int64((cfg.CacheLineBytes + cfg.WordBytes - 1) / cfg.WordBytes)
	lineBus := cfg.BusAcquireCycles + lineWords*cfg.BusTransferPerWord
	return &Hierarchy{
		cfg:           cfg,
		l1:            newCache(cfg.L1Bytes, cfg.CacheLineBytes),
		l2:            newCache(cfg.L2Bytes, cfg.CacheLineBytes),
		lineBytes:     cfg.CacheLineBytes,
		missToL2:      cfg.L2AccessCycles,
		missToMemory:  cfg.MemoryLatencyCycles + cfg.BusToCPU(lineBus),
		writeBackCost: cfg.BusToCPU(lineBus),
	}
}

// LineBytes reports the cache line size.
func (h *Hierarchy) LineBytes() int { return h.lineBytes }

// Read charges one load from addr and returns its cost in CPU cycles.
func (h *Hierarchy) Read(addr uint64) sim.Time {
	h.Stats.Reads++
	return h.access(addr, false)
}

// Write charges one store to addr (write-allocate, write-back) and
// returns its cost in CPU cycles.
func (h *Hierarchy) Write(addr uint64) sim.Time {
	h.Stats.Writes++
	return h.access(addr, true)
}

func (h *Hierarchy) access(addr uint64, store bool) sim.Time {
	cost := h.cfg.L1AccessCycles
	l1, hit1 := h.l1.probe(addr)
	if hit1 {
		h.Stats.L1Hits++
		if store {
			l1.dirty = true
		}
		return cost
	}
	h.Stats.L1Misses++
	cost += h.missToL2
	if _, hit2 := h.l2.probe(addr); hit2 {
		h.Stats.L2Hits++
	} else {
		h.Stats.L2Misses++
		cost += h.missToMemory
		if _, dirty := h.l2.fill(addr); dirty {
			h.Stats.WriteBacks++
			cost += h.writeBackCost
		}
	}
	// Install in L1. A dirty L1 victim is written down into L2; if the
	// victim is no longer resident in L2 (non-inclusive hierarchy), it
	// goes all the way to memory.
	if victimTag, dirty := h.l1.fill(addr); dirty {
		vaddr := victimTag << h.l1.lineShift
		cost += h.missToL2
		if l2v, ok := h.l2.probe(vaddr); ok {
			l2v.dirty = true
		} else {
			h.Stats.WriteBacks++
			cost += h.writeBackCost
		}
	}
	if store {
		// The line was just installed (or hit) in L1; a write-back cache
		// dirties only the L1 copy, and the dirt trickles down on
		// eviction or flush.
		l1b, _ := h.l1.probe(addr)
		l1b.dirty = true
	}
	return cost
}

// ReadRange charges sequential loads covering [addr, addr+n), one
// access per cache line, and returns the total cost.
func (h *Hierarchy) ReadRange(addr uint64, n int) sim.Time {
	var cost sim.Time
	for a := addr &^ uint64(h.lineBytes-1); a < addr+uint64(n); a += uint64(h.lineBytes) {
		cost += h.Read(a)
	}
	return cost
}

// WriteRange charges sequential stores covering [addr, addr+n).
func (h *Hierarchy) WriteRange(addr uint64, n int) sim.Time {
	var cost sim.Time
	for a := addr &^ uint64(h.lineBytes-1); a < addr+uint64(n); a += uint64(h.lineBytes) {
		cost += h.Write(a)
	}
	return cost
}

// FlushRange writes every dirty line in [addr, addr+n) back to memory
// and cleans it, returning the CPU cost and the number of lines
// written. This is the write-back-architecture consistency action the
// paper requires before an impending message transfer: the Message
// Cache snoops memory writes, so the flush is what publishes CPU stores
// to the snooper.
func (h *Hierarchy) FlushRange(addr uint64, n int) (cost sim.Time, flushed int) {
	h.Stats.Flushes++
	for a := addr &^ uint64(h.lineBytes-1); a < addr+uint64(n); a += uint64(h.lineBytes) {
		dirty := false
		if l, ok := h.l1.probe(a); ok && l.dirty {
			l.dirty = false
			dirty = true
		}
		if l, ok := h.l2.probe(a); ok && l.dirty {
			l.dirty = false
			dirty = true
		}
		cost += h.cfg.L1AccessCycles // probe cost even when clean
		if dirty {
			cost += h.writeBackCost
			flushed++
			h.Stats.WriteBacks++
			h.Stats.FlushedLns++
		}
	}
	return cost, flushed
}

// InvalidateRange drops every line in [addr, addr+n) from both levels
// (without write-back) and returns the CPU cost of the probes. It
// models the cache invalidation before incoming DMA overwrites memory.
func (h *Hierarchy) InvalidateRange(addr uint64, n int) sim.Time {
	var cost sim.Time
	for a := addr &^ uint64(h.lineBytes-1); a < addr+uint64(n); a += uint64(h.lineBytes) {
		if l, ok := h.l1.probe(a); ok {
			l.valid = false
			h.Stats.Invalidates++
		}
		if l, ok := h.l2.probe(a); ok {
			l.valid = false
			h.Stats.Invalidates++
		}
		cost += h.cfg.L1AccessCycles
	}
	return cost
}

// Bus returns a new memory-bus resource for one node.
func Bus(name string) *sim.Resource { return sim.NewResource(name) }

package topo

import (
	"testing"

	"cni/internal/config"
)

func cfgFor(topology string) *config.Config {
	c := config.ForNIC(config.NICCNI)
	c.Topology = topology
	return &c
}

// checkRoutes validates the structural invariants every topology must
// hold: routes end at the destination's delivery port, edge ids are in
// [Nodes, Edges) and unique within a route, route length respects the
// diameter, and ids 0..n-1 are reserved for injection links.
func checkRoutes(t *testing.T, tp Topology) {
	t.Helper()
	n := tp.Nodes()
	var buf []Hop
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			buf = tp.Route(src, dst, buf[:0])
			if len(buf) < 1 || len(buf) > tp.Diameter() {
				t.Fatalf("%s: route %d->%d has %d hops (diameter %d)", tp.Kind(), src, dst, len(buf), tp.Diameter())
			}
			last := tp.Route(src, dst, nil)[len(buf)-1]
			if last.Port != buf[len(buf)-1].Port {
				t.Fatalf("%s: route %d->%d not deterministic", tp.Kind(), src, dst)
			}
			seen := map[int]bool{}
			for _, h := range buf {
				if h.Port == nil {
					t.Fatalf("%s: route %d->%d has nil port", tp.Kind(), src, dst)
				}
				if h.Edge < n || h.Edge >= tp.Edges() {
					t.Fatalf("%s: route %d->%d edge %d out of range [%d,%d)", tp.Kind(), src, dst, h.Edge, n, tp.Edges())
				}
				if seen[h.Edge] {
					t.Fatalf("%s: route %d->%d repeats edge %d", tp.Kind(), src, dst, h.Edge)
				}
				seen[h.Edge] = true
			}
		}
	}
	for i := 0; i < n; i++ {
		if tp.TxLink(i) == nil {
			t.Fatalf("%s: nil injection link %d", tp.Kind(), i)
		}
	}
}

func TestSingleRoutes(t *testing.T) {
	tp, err := New(cfgFor(config.TopoSingle), 8)
	if err != nil {
		t.Fatal(err)
	}
	checkRoutes(t, tp)
	r := tp.Route(3, 5, nil)
	if len(r) != 1 || r[0].Edge != 8+5 {
		t.Fatalf("single route 3->5 = %+v, want one hop on edge 13", r)
	}
	if _, err := New(cfgFor(config.TopoSingle), 64); err == nil {
		t.Fatal("single accepted 64 nodes on a 32-port switch")
	}
}

func TestClosGeometry(t *testing.T) {
	for n, k := range map[int]int{2: 4, 16: 4, 17: 6, 54: 6, 128: 8, 1024: 16} {
		if got := ClosRadixFor(n); got != k {
			t.Fatalf("ClosRadixFor(%d) = %d, want %d", n, got, k)
		}
	}
	if _, err := New(&config.Config{Topology: config.TopoClos, ClosRadix: 4}, 17); err == nil {
		t.Fatal("radix-4 fat-tree accepted 17 nodes (capacity 16)")
	}
}

func TestClosRoutes(t *testing.T) {
	tp, err := New(cfgFor(config.TopoClos), 16) // radix 4: 4 pods of 2x2, capacity 16
	if err != nil {
		t.Fatal(err)
	}
	checkRoutes(t, tp)
	c := tp.(*clos)
	if c.Radix() != 4 {
		t.Fatalf("auto radix = %d, want 4", c.Radix())
	}
	// Path lengths: same edge switch -> 1 hop, same pod -> 3, across
	// pods -> 5. With radix 4, nodes 0,1 share an edge switch; 0,2 share
	// a pod; 0,4 are in different pods.
	for _, tc := range []struct{ src, dst, hops int }{
		{0, 1, 1}, {0, 2, 3}, {0, 3, 3}, {0, 4, 5}, {5, 0, 5}, {15, 14, 1},
	} {
		if got := len(tp.Route(tc.src, tc.dst, nil)); got != tc.hops {
			t.Fatalf("clos route %d->%d: %d hops, want %d", tc.src, tc.dst, got, tc.hops)
		}
	}
}

// TestClosDModKSpread: inter-pod flows from one source to destinations
// with distinct (dst mod k/2, dst/(k/2) mod k/2) signatures must cross
// distinct core switches — that spread is the point of d-mod-k.
func TestClosDModKSpread(t *testing.T) {
	tp, err := New(cfgFor(config.TopoClos), 16)
	if err != nil {
		t.Fatal(err)
	}
	cores := map[int]bool{}
	for dst := 4; dst < 8; dst++ { // pod 1: all four signatures
		r := tp.Route(0, dst, nil)
		if len(r) != 5 {
			t.Fatalf("route 0->%d: %d hops, want 5", dst, len(r))
		}
		core := r[2].Edge // middle hop is the core's down-port
		if cores[core] {
			t.Fatalf("route 0->%d reuses core edge %d", dst, core)
		}
		cores[core] = true
	}
	if len(cores) != 4 {
		t.Fatalf("4 inter-pod flows crossed %d distinct cores, want 4", len(cores))
	}
	// Same flow, same path: a flow must never spread (no reordering).
	a := tp.Route(0, 7, nil)
	b := tp.Route(0, 7, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("clos route not stable across calls")
		}
	}
}

func TestTorusGeometry(t *testing.T) {
	for _, tc := range []struct {
		n    int
		want [3]int
	}{
		{1, [3]int{1, 1, 1}}, {2, [3]int{2, 1, 1}}, {8, [3]int{2, 2, 2}},
		{64, [3]int{4, 4, 4}}, {100, [3]int{5, 5, 4}}, {1024, [3]int{11, 10, 10}},
	} {
		if got := TorusDimsFor(tc.n); got != tc.want {
			t.Fatalf("TorusDimsFor(%d) = %v, want %v", tc.n, got, tc.want)
		}
		if tc.want[0]*tc.want[1]*tc.want[2] < tc.n {
			t.Fatalf("TorusDimsFor(%d) = %v holds fewer than %d routers", tc.n, tc.want, tc.n)
		}
	}
	if _, err := New(&config.Config{Topology: config.TopoTorus, TorusDims: [3]int{2, 2, 2}}, 9); err == nil {
		t.Fatal("2x2x2 torus accepted 9 nodes")
	}
}

// wrapDist is the shortest signed walk from a to b on a ring of extent d.
func wrapDist(a, b, d int) int {
	f := ((b-a)%d + d) % d
	if d-f < f {
		return d - f
	}
	return f
}

func TestTorusRoutes(t *testing.T) {
	cfg := cfgFor(config.TopoTorus)
	cfg.TorusDims = [3]int{4, 3, 2}
	tp, err := New(cfg, 24)
	if err != nil {
		t.Fatal(err)
	}
	checkRoutes(t, tp)
	tr := tp.(*torus)
	for src := 0; src < 24; src++ {
		for dst := 0; dst < 24; dst++ {
			if src == dst {
				continue
			}
			r := tp.Route(src, dst, nil)
			// Minimal: hop count == sum of shortest wrap distances + eject.
			s, d := tr.coords(src), tr.coords(dst)
			want := 1
			for i := 0; i < 3; i++ {
				want += wrapDist(s[i], d[i], tr.dims[i])
			}
			if len(r) != want {
				t.Fatalf("torus route %d->%d: %d hops, want %d", src, dst, len(r), want)
			}
			// Deadlock-free dimension order: the dimension index of each
			// traversed direction port must be non-decreasing, ejection last.
			prev := 0
			for i, h := range r {
				port := (h.Edge - 24) % torusPorts
				if i == len(r)-1 {
					if port != torusEject {
						t.Fatalf("torus route %d->%d does not end with ejection", src, dst)
					}
					continue
				}
				dim := port / 2
				if port >= torusEject || dim < prev {
					t.Fatalf("torus route %d->%d breaks dimension order at hop %d (port %d)", src, dst, i, port)
				}
				prev = dim
			}
		}
	}
	// Shortest wrap direction: on a ring of 4, 0->3 is one negative hop.
	r := tp.Route(0, 3, nil)
	if len(r) != 2 || (r[0].Edge-24)%torusPorts != 1 {
		t.Fatalf("torus 0->3 on extent 4 should wrap negative in one hop, got %+v", r)
	}
	// Ties go positive: 0->2 on extent 4.
	r = tp.Route(0, 2, nil)
	if len(r) != 3 || (r[0].Edge-24)%torusPorts != 0 {
		t.Fatalf("torus 0->2 on extent 4 should go positive on a tie, got %+v", r)
	}
}

func TestNewRejectsUnknown(t *testing.T) {
	if _, err := New(&config.Config{Topology: "hypercube"}, 4); err == nil {
		t.Fatal("unknown topology accepted")
	}
	if _, err := New(cfgFor(config.TopoSingle), 0); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

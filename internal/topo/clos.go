package topo

import (
	"fmt"

	"cni/internal/config"
	"cni/internal/sim"
)

// clos is a three-level k-ary fat-tree (k even): k pods, each with k/2
// edge switches (k/2 hosts apiece) and k/2 aggregation switches, plus
// (k/2)^2 core switches — k^3/4 hosts at full population, with full
// bisection bandwidth when flows spread over the core.
//
// Path selection is deterministic d-mod-k: the destination id alone
// picks the aggregation switch (dst mod k/2) and the core switch
// ((dst / (k/2)) mod k/2 among that aggregation's uplinks). All
// packets of one flow take one path (no reordering), flows to distinct
// destinations spread across distinct spines, and routes are a pure
// function of (src, dst), which keeps runs bit-identical.
//
// The five port planes all have exactly k^3/4 links; with the n
// injection links first, edge ids are dense and stable.
type clos struct {
	nodes int
	k     int // radix
	half  int // k/2: hosts per edge switch, switches per pod layer

	tx []*sim.Resource

	// Port planes, indexed arithmetically (see idx and coreIdx).
	edgeDown []*sim.Resource // edge (p,e) -> host h
	edgeUp   []*sim.Resource // edge (p,e) -> agg a
	aggDown  []*sim.Resource // agg (p,a) -> edge e
	aggUp    []*sim.Resource // agg (p,a) -> core a*half+j
	coreDown []*sim.Resource // core c -> pod p
}

// ClosCapacity reports how many hosts a radix-k fat-tree addresses.
func ClosCapacity(k int) int { return k * k * k / 4 }

// ClosRadixFor picks the smallest even radix >= 4 whose fat-tree
// addresses n hosts.
func ClosRadixFor(n int) int {
	k := 4
	for ClosCapacity(k) < n {
		k += 2
	}
	return k
}

// Partition keeps whole pods together: every intra-pod route (edge or
// aggregation level) stays shard-local and only pod-to-pod traffic —
// which crosses the core anyway — crosses shards. Pods are assigned to
// shards in balanced contiguous runs, so at most min(shards, pods)
// shards are used.
func (c *clos) Partition(shards int) []int {
	perPod := c.half * c.half
	pods := (c.nodes + perPod - 1) / perPod
	podShard := blockPartition(pods, shards)
	out := make([]int, c.nodes)
	for id := range out {
		out[id] = podShard[id/perPod]
	}
	return out
}

func newClos(cfg *config.Config, n int) (*clos, error) {
	k := cfg.ClosRadix
	if k == 0 {
		k = ClosRadixFor(n)
	}
	if k < 4 || k%2 != 0 {
		return nil, fmt.Errorf("topo: clos radix %d must be an even number >= 4", k)
	}
	if n > ClosCapacity(k) {
		return nil, fmt.Errorf("topo: %d nodes exceed the %d-host capacity of a radix-%d fat-tree", n, ClosCapacity(k), k)
	}
	c := &clos{nodes: n, k: k, half: k / 2}
	for i := 0; i < n; i++ {
		c.tx = append(c.tx, sim.NewResource(fmt.Sprintf("txlink%d", i)))
	}
	plane := func(name string) []*sim.Resource {
		r := make([]*sim.Resource, ClosCapacity(k))
		for i := range r {
			r[i] = sim.NewResource(fmt.Sprintf("%s%d", name, i))
		}
		return r
	}
	c.edgeDown = plane("edgedown")
	c.edgeUp = plane("edgeup")
	c.aggDown = plane("aggdown")
	c.aggUp = plane("aggup")
	c.coreDown = plane("coredown")
	return c, nil
}

func (c *clos) Kind() string { return config.TopoClos }

func (c *clos) Nodes() int { return c.nodes }

func (c *clos) Edges() int { return c.nodes + 5*ClosCapacity(c.k) }

func (c *clos) TxLink(node int) *sim.Resource { return c.tx[node] }

// Radix reports the configured (or auto-picked) switch radix.
func (c *clos) Radix() int { return c.k }

// host decomposes a node id into (pod, edge switch, host slot).
func (c *clos) host(id int) (p, e, h int) {
	perPod := c.half * c.half
	return id / perPod, (id % perPod) / c.half, id % c.half
}

// Plane index helpers: within a plane, ports are dense by
// (pod, switch, port) — or (core, pod) for the core plane.
func (c *clos) idx(p, s, q int) int { return (p*c.half+s)*c.half + q }

// hop builds the Hop for slot i of the numbered plane (0 edgeDown,
// 1 edgeUp, 2 aggDown, 3 aggUp, 4 coreDown).
func (c *clos) hop(plane []*sim.Resource, planeNo, i int) Hop {
	return Hop{Port: plane[i], Edge: c.nodes + planeNo*ClosCapacity(c.k) + i}
}

func (c *clos) Route(src, dst int, buf []Hop) []Hop {
	ps, es, _ := c.host(src)
	pd, ed, hd := c.host(dst)
	if ps == pd && es == ed {
		// One edge switch: straight down to the destination host.
		return append(buf, c.hop(c.edgeDown, 0, c.idx(pd, ed, hd)))
	}
	a := dst % c.half // d-mod-k aggregation choice
	if ps == pd {
		// Within the pod: up to aggregation a, back down.
		return append(buf,
			c.hop(c.edgeUp, 1, c.idx(ps, es, a)),
			c.hop(c.aggDown, 2, c.idx(pd, a, ed)),
			c.hop(c.edgeDown, 0, c.idx(pd, ed, hd)))
	}
	// Across pods: up to aggregation a, its j-th core uplink, down into
	// the destination pod. Core a*half+j is wired to aggregation a of
	// every pod, so the downward path is forced.
	j := (dst / c.half) % c.half
	core := a*c.half + j
	return append(buf,
		c.hop(c.edgeUp, 1, c.idx(ps, es, a)),
		c.hop(c.aggUp, 3, c.idx(ps, a, j)),
		c.hop(c.coreDown, 4, c.coreIdx(core, pd)),
		c.hop(c.aggDown, 2, c.idx(pd, a, ed)),
		c.hop(c.edgeDown, 0, c.idx(pd, ed, hd)))
}

// coreIdx indexes the core plane: core c's port toward pod p.
func (c *clos) coreIdx(core, p int) int { return core*c.k + p }

func (c *clos) Diameter() int { return 5 }

func (c *clos) Describe() string {
	return fmt.Sprintf("radix-%d fat-tree (%d pods, %d cores, %d-host capacity), %d nodes",
		c.k, c.k, c.half*c.half, ClosCapacity(c.k), c.nodes)
}

package topo

import (
	"fmt"

	"cni/internal/config"
	"cni/internal/sim"
)

// torus is a 3D torus of per-node routers — the APEnet-style direct
// network. Router (x, y, z) has six neighbor links (+x, -x, +y, -y,
// +z, -z) plus an ejection port toward its attached host; a dimension
// of extent 1 simply never routes. Routing is deadlock-free
// dimension-order: correct X fully, then Y, then Z, each dimension
// traversed in its shorter wrap direction (ties go positive), then
// eject at the destination router. Routes are minimal and a pure
// function of (src, dst).
type torus struct {
	nodes int
	dims  [3]int

	tx    []*sim.Resource
	ports []*sim.Resource // routers * 7, dense by (router, port)
}

// Router port numbering: directions 2*d (positive) and 2*d+1
// (negative) for dimension d, then the ejection port.
const (
	torusPorts = 7
	torusEject = 6
)

// TorusDimsFor picks a near-cubic geometry for n nodes: starting from
// 1x1x1, grow the smallest extent until the torus holds n routers.
func TorusDimsFor(n int) [3]int {
	d := [3]int{1, 1, 1}
	for d[0]*d[1]*d[2] < n {
		min := 0
		for i := 1; i < 3; i++ {
			if d[i] < d[min] {
				min = i
			}
		}
		d[min]++
	}
	return d
}

// Partition cuts the torus into balanced contiguous id blocks; node
// ids are x-major, so a block is a contiguous slab of whole (and
// partial boundary) z/y-planes and shard crossings follow the torus's
// own dimension boundaries.
func (t *torus) Partition(shards int) []int { return blockPartition(t.nodes, shards) }

func newTorus(cfg *config.Config, n int) (*torus, error) {
	dims := cfg.TorusDims
	if dims == [3]int{} {
		dims = TorusDimsFor(n)
	}
	for _, d := range dims {
		if d < 1 {
			return nil, fmt.Errorf("topo: torus dimensions %v must all be >= 1", dims)
		}
	}
	routers := dims[0] * dims[1] * dims[2]
	if n > routers {
		return nil, fmt.Errorf("topo: %d nodes exceed the %d routers of a %dx%dx%d torus", n, routers, dims[0], dims[1], dims[2])
	}
	t := &torus{nodes: n, dims: dims}
	for i := 0; i < n; i++ {
		t.tx = append(t.tx, sim.NewResource(fmt.Sprintf("txlink%d", i)))
	}
	t.ports = make([]*sim.Resource, routers*torusPorts)
	for r := 0; r < routers; r++ {
		for p := 0; p < torusPorts; p++ {
			t.ports[r*torusPorts+p] = sim.NewResource(fmt.Sprintf("torus%d.%d", r, p))
		}
	}
	return t, nil
}

func (t *torus) Kind() string { return config.TopoTorus }

func (t *torus) Nodes() int { return t.nodes }

func (t *torus) Edges() int {
	return t.nodes + t.dims[0]*t.dims[1]*t.dims[2]*torusPorts
}

func (t *torus) TxLink(node int) *sim.Resource { return t.tx[node] }

// Dims reports the configured (or auto-picked) torus extents.
func (t *torus) Dims() [3]int { return t.dims }

// coords decomposes a router id into torus coordinates.
func (t *torus) coords(id int) (c [3]int) {
	c[0] = id % t.dims[0]
	c[1] = (id / t.dims[0]) % t.dims[1]
	c[2] = id / (t.dims[0] * t.dims[1])
	return
}

func (t *torus) router(c [3]int) int {
	return c[0] + t.dims[0]*(c[1]+t.dims[1]*c[2])
}

// hop builds the Hop for the given router's output port.
func (t *torus) hop(router, port int) Hop {
	i := router*torusPorts + port
	return Hop{Port: t.ports[i], Edge: t.nodes + i}
}

func (t *torus) Route(src, dst int, buf []Hop) []Hop {
	cur := t.coords(src)
	want := t.coords(dst)
	for d := 0; d < 3; d++ {
		ext := t.dims[d]
		fwd := ((want[d] - cur[d]) % ext + ext) % ext
		bwd := ext - fwd
		for cur[d] != want[d] {
			if fwd <= bwd {
				// Positive (shorter or tie) wrap direction.
				buf = append(buf, t.hop(t.router(cur), 2*d))
				cur[d] = (cur[d] + 1) % ext
			} else {
				buf = append(buf, t.hop(t.router(cur), 2*d+1))
				cur[d] = (cur[d] - 1 + ext) % ext
			}
		}
	}
	return append(buf, t.hop(t.router(want), torusEject))
}

func (t *torus) Diameter() int {
	return t.dims[0]/2 + t.dims[1]/2 + t.dims[2]/2 + 1
}

func (t *torus) Describe() string {
	return fmt.Sprintf("%dx%dx%d torus (dimension-order routing, diameter %d), %d nodes",
		t.dims[0], t.dims[1], t.dims[2], t.Diameter(), t.nodes)
}

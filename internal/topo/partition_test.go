package topo

import (
	"testing"

	"cni/internal/config"
)

// checkPartition validates the Partition contract: dense shard ids
// from 0, balanced sizes (max-min <= 1 per used shard for block
// partitions is not required in general, but monotone contiguity is),
// and independence from anything but (geometry, shards).
func checkPartition(t *testing.T, name string, part []int, n, shards int) {
	t.Helper()
	if len(part) != n {
		t.Fatalf("%s: partition of %d entries for %d nodes", name, len(part), n)
	}
	eff := 0
	for i, s := range part {
		if s < 0 || s >= shards {
			t.Fatalf("%s: node %d on shard %d (requested %d)", name, i, s, shards)
		}
		if i > 0 && s < part[i-1] {
			t.Fatalf("%s: shard ids not monotone at node %d: %d after %d", name, i, s, part[i-1])
		}
		if i > 0 && s > part[i-1]+1 {
			t.Fatalf("%s: shard id gap at node %d: %d after %d", name, i, s, part[i-1])
		}
		if s+1 > eff {
			eff = s + 1
		}
	}
	if part[0] != 0 {
		t.Fatalf("%s: first node on shard %d", name, part[0])
	}
	if shards <= n && name != "clos" && eff != shards {
		t.Fatalf("%s: %d effective shards, want %d", name, eff, shards)
	}
}

func TestPartitionShapes(t *testing.T) {
	for _, kind := range []string{config.TopoSingle, config.TopoClos, config.TopoTorus} {
		cfg := config.Default()
		cfg.Topology = kind
		n := 16
		if kind == config.TopoTorus || kind == config.TopoClos {
			n = 64
		}
		tp, err := New(&cfg, n)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for _, shards := range []int{1, 2, 3, 4, 8, n, n + 5} {
			checkPartition(t, kind, tp.Partition(shards), n, shards)
		}
	}
}

// TestPartitionClosPods checks pod alignment: two hosts of the same
// pod never land on different shards.
func TestPartitionClosPods(t *testing.T) {
	cfg := config.Default()
	cfg.Topology = config.TopoClos
	const n = 128 // radix 8: 16 hosts per pod, 8 pods
	tp, err := New(&cfg, n)
	if err != nil {
		t.Fatal(err)
	}
	part := tp.Partition(4)
	const perPod = 16
	for id := 0; id < n; id++ {
		if part[id] != part[id-id%perPod] {
			t.Fatalf("pod of node %d split: shard %d vs %d", id, part[id], part[id-id%perPod])
		}
	}
}

// Package topo generalizes the cluster interconnect from the paper's
// single 32-port banyan switch to a routed multi-switch graph. A
// Topology owns the fabric's contended resources — one injection link
// per node and one sim.Resource per switch output port — and computes,
// for every (src, dst) pair, the deterministic sequence of output
// ports a message crosses. The atm.Network walks that route hop by
// hop, charging cut-through pipelining and per-hop contention, so the
// same NIC models and cost calibration run unchanged on fabrics from
// 2 to 1024+ nodes.
//
// Three topologies are implemented:
//
//   - single: the paper's output-queued banyan switch. Routes are one
//     hop (the destination's output port) and the timing is
//     byte-identical to the pre-topology fabric.
//   - clos: a three-level k-ary fat-tree (k even): k pods of k/2 edge
//     and k/2 aggregation switches, (k/2)^2 core switches, k^3/4
//     hosts. Upward path selection is deterministic d-mod-k: the
//     destination id picks the aggregation and core switch, so flows
//     to distinct destinations spread across the core while every
//     packet of one flow takes one path (no reordering).
//   - torus: a 3D torus of per-node routers (the APEnet-style direct
//     network) with deadlock-free dimension-order routing: X, then Y,
//     then Z, each dimension traversed in its shorter wrap direction.
//
// Every link of the graph has a stable integer edge id; ids 0..n-1 are
// always the node injection links, so the fault injector's per-link
// RNG streams are a pure function of the topology and the seed.
package topo

import (
	"fmt"

	"cni/internal/config"
	"cni/internal/sim"
)

// Hop is one switch traversal on a route: the switch output port the
// message must win toward the next element of the path, and the stable
// edge id of the link that port drives.
type Hop struct {
	Port *sim.Resource
	Edge int
}

// Topology is a routed switching fabric.
type Topology interface {
	// Kind reports the registered topology name ("single", "clos",
	// "torus").
	Kind() string
	// Nodes reports the number of attached nodes.
	Nodes() int
	// Edges reports the number of distinct links in the graph,
	// injection links included. Edge ids are dense in [0, Edges()) and
	// ids 0..Nodes()-1 are the injection links.
	Edges() int
	// TxLink returns node's injection link (edge id == node).
	TxLink(node int) *sim.Resource
	// Route appends the switch output ports a message from src to dst
	// crosses, in path order, to buf and returns it. src != dst; the
	// last hop is always the destination's delivery port. Routes are a
	// pure function of (src, dst): deterministic and minimal.
	Route(src, dst int, buf []Hop) []Hop
	// Diameter reports the maximum route length in switch hops.
	Diameter() int
	// Describe returns a one-line human-readable geometry summary.
	Describe() string
	// Partition maps every node to a shard for conservative-parallel
	// execution, using at most shards shards (fewer when the geometry
	// cannot fill them). Shard ids are dense from 0, assignments are
	// balanced, and boundaries respect the topology — contiguous
	// id blocks (coordinate slabs) on the torus, whole pods on the
	// fat-tree — so cross-shard traffic crosses real fabric links.
	// The mapping is a pure function of (geometry, shards); the shard
	// count therefore never leaks into routing, fault streams, or any
	// other simulated behavior.
	Partition(shards int) []int
}

// blockPartition assigns contiguous, balanced blocks of node ids to
// min(shards, n) shards: shard boundaries differ in size by at most
// one node and every shard is non-empty.
func blockPartition(n, shards int) []int {
	eff := shards
	if eff > n {
		eff = n
	}
	if eff < 1 {
		eff = 1
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i * eff / n
	}
	return out
}

// New builds the topology selected by cfg for n nodes. It returns an
// error — not a panic — when the node count exceeds what the topology
// or its configured geometry can address, since that is user input.
func New(cfg *config.Config, n int) (Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topo: %d nodes", n)
	}
	switch cfg.TopologyOrDefault() {
	case config.TopoSingle:
		return newSingle(cfg, n)
	case config.TopoClos:
		return newClos(cfg, n)
	case config.TopoTorus:
		return newTorus(cfg, n)
	default:
		return nil, fmt.Errorf("topo: unknown topology %q", cfg.Topology)
	}
}

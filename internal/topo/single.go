package topo

import (
	"fmt"

	"cni/internal/config"
	"cni/internal/sim"
)

// single is the paper's fabric: every node's injection link feeds one
// output-queued banyan switch, and the only blocking point past the
// source is the destination's output port. Routes are exactly one hop,
// which makes the atm walk arithmetically identical to the original
// closed-form single-switch model (the golden parity test in
// internal/atm pins this).
type single struct {
	tx  []*sim.Resource
	out []*sim.Resource
}

func newSingle(cfg *config.Config, n int) (*single, error) {
	if n > cfg.SwitchPorts {
		return nil, fmt.Errorf("topo: %d nodes on a %d-port switch (use a clos or torus topology to scale past the banyan)", n, cfg.SwitchPorts)
	}
	s := &single{}
	for i := 0; i < n; i++ {
		s.tx = append(s.tx, sim.NewResource(fmt.Sprintf("txlink%d", i)))
		s.out = append(s.out, sim.NewResource(fmt.Sprintf("outport%d", i)))
	}
	return s, nil
}

func (s *single) Kind() string { return config.TopoSingle }

func (s *single) Nodes() int { return len(s.tx) }

// Edges: injection links 0..n-1, then the switch's output-port links
// n..2n-1.
func (s *single) Edges() int { return 2 * len(s.tx) }

func (s *single) TxLink(node int) *sim.Resource { return s.tx[node] }

func (s *single) Route(src, dst int, buf []Hop) []Hop {
	return append(buf, Hop{Port: s.out[dst], Edge: len(s.tx) + dst})
}

func (s *single) Diameter() int { return 1 }

// Partition on the single switch has no geometry to respect: balanced
// contiguous id blocks.
func (s *single) Partition(shards int) []int { return blockPartition(len(s.tx), shards) }

func (s *single) Describe() string {
	return fmt.Sprintf("single output-queued banyan switch, %d nodes", len(s.tx))
}

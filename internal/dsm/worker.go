package dsm

import (
	"fmt"
	"math"
	"sort"

	"cni/internal/memsys"
	"cni/internal/nic"
	"cni/internal/sim"
)

// waitKind says what a blocked worker is waiting for, so a stray wake
// is a loud bug instead of a silent corruption.
type waitKind int

const (
	waitNone waitKind = iota
	waitPage
	waitLock
	waitBarrier
	waitTask
)

func (w waitKind) String() string {
	switch w {
	case waitNone:
		return "nothing"
	case waitPage:
		return "page"
	case waitLock:
		return "lock"
	case waitBarrier:
		return "barrier"
	case waitTask:
		return "task"
	default:
		return fmt.Sprintf("waitKind(%d)", int(w))
	}
}

// Worker is the application-facing DSM interface of one node: typed
// accessors over the shared region, locks, barriers and the task bag.
// Exactly one Worker runs per node, on its own simulated processor.
type Worker struct {
	r    *Runtime
	proc *sim.Proc
	mem  *memsys.Hierarchy

	waiting       waitKind
	pendingCharge sim.Time // handler-computed CPU costs folded at resume
	taskResult    int
}

// NewWorker attaches the application thread p (with its cache
// hierarchy) to the runtime.
func (r *Runtime) NewWorker(p *sim.Proc, mem *memsys.Hierarchy) *Worker {
	w := &Worker{r: r, proc: p, mem: mem}
	r.worker = w
	r.board.SetHostProc(p)
	return w
}

// Proc returns the worker's simulated processor.
func (w *Worker) Proc() *sim.Proc { return w.proc }

// Waiting describes what the worker is currently blocked on
// ("nothing", "page", "lock", "barrier", "task") — deadlock forensics.
func (w *Worker) Waiting() string { return w.waiting.String() }

// Node reports the worker's node id.
func (w *Worker) Node() int { return w.r.node }

// Nodes reports the cluster size.
func (w *Worker) Nodes() int { return len(w.r.G.nodes) }

// Compute charges cycles of pure application computation.
func (w *Worker) Compute(c sim.Time) { w.proc.Advance(c) }

// charge accounts protocol work on the application CPU.
func (w *Worker) charge(c sim.Time) {
	w.proc.Advance(c)
	w.r.Stats.Overhead += c
}

// fold applies costs the protocol handlers computed on this worker's
// behalf (cache invalidations, notice processing) plus, when the
// operation actually waited on the device (waited > 0), the user-level
// receive cost. Manager-local operations answered synchronously never
// touch the board and pay no dequeue.
func (w *Worker) fold(waited sim.Time) {
	c := w.pendingCharge
	w.pendingCharge = 0
	if waited > 0 {
		c += w.r.board.RecvDequeueCost()
	}
	w.charge(c)
}

// block parks the worker until the protocol wakes it, folding charges
// on resume. Returns the blocked time (synchronization delay).
func (w *Worker) block(why waitKind) sim.Time {
	w.waiting = why
	d := w.proc.Block()
	w.waiting = waitNone
	w.fold(d)
	return d
}

// --- shared memory access ---

// ReadF64 reads the shared float64 at word index idx.
func (w *Worker) ReadF64(idx int) float64 {
	return math.Float64frombits(w.ReadU64(idx))
}

// WriteF64 writes the shared float64 at word index idx.
func (w *Worker) WriteF64(idx int, v float64) {
	w.WriteU64(idx, math.Float64bits(v))
}

// ReadU64 reads the shared word at idx, faulting the page in if needed
// and charging the cache-hierarchy cost of the access.
func (w *Worker) ReadU64(idx int) uint64 {
	r := w.r
	page := r.pageOf(idx)
	for r.state[page] != pageValid {
		w.slowPath(page, false)
	}
	w.proc.Advance(w.mem.Read(r.vaddrOfWord(idx)))
	return r.data[idx]
}

// WriteU64 writes the shared word at idx. The first write to a page in
// an interval twins it (multiple-writer support) and marks it dirty for
// the next release.
func (w *Worker) WriteU64(idx int, v uint64) {
	r := w.r
	page := r.pageOf(idx)
	for r.state[page] != pageValid {
		w.slowPath(page, true)
	}
	if !r.dirty[page] {
		w.beginWrite(page)
	}
	w.proc.Advance(w.mem.Write(r.vaddrOfWord(idx)))
	r.data[idx] = v
	r.board.NoteWrite(r.vaddrOfWord(idx))
}

// beginWrite marks page dirty and, for non-home pages, creates the
// twin used for diffing at the next release.
func (w *Worker) beginWrite(page int32) {
	r := w.r
	r.dirty[page] = true
	if r.owner(page) && !r.cfg.UpdateProtocol {
		// Home writes need no twin under the invalidate protocol: the
		// home copy is authoritative and nothing is diffed. The update
		// protocol twins even home pages so the home's own writes can
		// be forwarded to the copyset.
		return
	}
	lo := int(page) * r.G.pageWords
	tw := make([]uint64, r.G.pageWords)
	copy(tw, r.data[lo:lo+r.G.pageWords])
	r.twin[page] = tw
	// Twinning is a page copy on the host CPU.
	w.charge(sim.Time(r.G.pageWords) * r.cfg.DiffWordCycles)
}

// slowPath handles an access to a page that is not plainly valid:
// invalid pages fault and fetch; home-stale pages stall until the
// noticed in-flight diffs land.
func (w *Worker) slowPath(page int32, write bool) {
	if w.r.state[page] == pageHomeStale {
		w.stallHome(page)
		return
	}
	w.fault(page, write)
}

// stallHome blocks the home's own worker until every diff named by the
// write notices it has seen for this page has been applied to its
// authoritative copy. Touching the page earlier could fold a stale
// value into a read-modify-write and silently lose a remote update.
func (w *Worker) stallHome(page int32) {
	r := w.r
	hs := r.homeState(page)
	need := r.needs[page]
	if hs.satisfiedNeeds(need) {
		r.state[page] = pageValid
		delete(r.needs, page)
		return
	}
	if page == DebugPage {
		fmt.Printf("DSMDBG t=%d node=%d stall page=%d needs=%v applied=%v\n",
			w.proc.Local(), r.node, page, need, hs.applied)
	}
	r.Stats.PageFaults++ // it is a fault: the access stalled
	hs.homeStalled = true
	w.block(waitPage)
}

// fault fetches an invalid page from its home (central ownership) or
// its probable owner (distributed), version-gated on the write notices
// this node has seen, preserving any local uncommitted writes across
// the refetch. write marks a write fault, which makes the arriving
// page Message Cache eligible (it is likely to migrate) — and, under
// distributed ownership, migrates the ownership itself when the owner's
// copy is clean.
func (w *Worker) fault(page int32, write bool) {
	r := w.r
	r.Stats.PageFaults++
	if r.owner(page) {
		panic(fmt.Sprintf("dsm: node %d faulted on its own page %d", r.node, page))
	}
	// Preserve uncommitted local writes (concurrent write sharing): the
	// incoming base page must not clobber them.
	if tw, ok := r.twin[page]; ok {
		r.pendingLocal[page] = diffWords(r.data, tw, int(page)*r.G.pageWords)
		write = true
	}
	need := r.sortedNeeds(page)
	target := r.G.homeOf(page)
	if r.distributed {
		target = r.probOwnerOf(page)
		if write {
			// An outstanding write fetch makes this node the probable
			// future owner: racing requests and diffs park here until
			// the reply resolves the ownership (see pendingOwn).
			r.fetchingW[page] = true
		}
	}
	if page == DebugPage {
		fmt.Printf("DSMDBG t=%d node=%d fault page=%d write=%v need=%v target=%d\n",
			w.proc.Local(), r.node, page, write, need, target)
	}
	r.trace.Addf(w.proc.Local(), r.node, "fault", "page %d write=%v need=%d", page, write, len(need))
	req := &pageReqMsg{page: page, from: r.node, write: write, need: need}
	m := &nic.Message{
		From: r.node, To: target, Op: OpPageReq,
		Size:    nic.HeaderBytes + 8 + 12*len(need),
		Payload: req,
	}
	w.charge(r.board.Send(w.proc, m))
	w.block(waitPage)
}

// diffWords returns the entries where cur differs from twin; base is
// the word index of the page start.
func diffWords(cur []uint64, twin []uint64, base int) []diffEntry {
	var out []diffEntry
	for i, tv := range twin {
		if cur[base+i] != tv {
			out = append(out, diffEntry{word: int32(base + i), val: cur[base+i]})
		}
	}
	return out
}

// release is the release half of LRC: create the interval for the
// pages written since the last release, flush them (publishing the
// writes to memory and to the snooping Message Cache), and ship diffs
// of non-home pages to their homes.
func (w *Worker) release() {
	r := w.r
	if len(r.dirty) == 0 {
		return
	}
	pages := make([]int32, 0, len(r.dirty))
	for p := range r.dirty {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })

	r.vc[r.node]++
	idx := r.vc[r.node]
	iv := &Interval{Node: r.node, Idx: idx, Pages: pages}
	r.log[r.node] = append(r.log[r.node], iv)

	for _, page := range pages {
		vaddr := r.vaddrOfPage(page)
		if r.owner(page) {
			// Owner writes are authoritative; advance the version so gated
			// fetches see them. Flush only pages some other node actually
			// fetches — the rest have no impending transfer.
			hs := r.homeState(page)
			if hs.exported {
				w.charge(r.board.FlushBuffer(vaddr, r.cfg.PageBytes))
			}
			hs.applied[r.node] = idx
			w.proc.Sync()
			if page == DebugPage {
				fmt.Printf("DSMDBG t=%d node=%d homerelease page=%d idx=%d twin=%v\n",
					w.proc.Local(), r.node, page, idx, r.twin[page] != nil)
			}
			if r.cfg.UpdateProtocol {
				// Forward the home's own writes to every copy holder,
				// which stalls on the matching write notice otherwise.
				if tw := r.twin[page]; tw != nil {
					entries := diffWords(r.data, tw, int(page)*r.G.pageWords)
					w.charge(sim.Time(r.G.pageWords) + sim.Time(len(entries))*r.cfg.DiffWordCycles)
					r.forwardUpdate(w.proc.Local(), &diffMsg{
						page: page, writer: r.node, idx: idx, entries: entries,
					})
					delete(r.twin, page)
				}
			}
			r.drainWaiting(w.proc.Local(), page)
			if r.distributed {
				// Ownership may have arrived mid-interval, leaving the
				// twin of the pre-ownership writes behind; the owner
				// copy is authoritative, so the twin is dead.
				delete(r.twin, page)
			}
			delete(r.dirty, page)
			continue
		}
		w.charge(r.board.FlushBuffer(vaddr, r.cfg.PageBytes))
		tw := r.twin[page]
		if tw == nil {
			panic(fmt.Sprintf("dsm: node %d dirty non-home page %d without twin", r.node, page))
		}
		entries := diffWords(r.data, tw, int(page)*r.G.pageWords)
		// Diff creation scans the page and encodes the changed words.
		w.charge(sim.Time(r.G.pageWords) + sim.Time(len(entries))*r.cfg.DiffWordCycles)
		// Remember that any refetch must see our own diff applied at
		// the home...
		need := r.needs[page]
		if need == nil {
			need = make(map[int]int32)
			r.needs[page] = need
		}
		need[r.node] = idx
		// ...while this copy trivially contains its own writes, so the
		// local applied tracking (used by the update protocol's stall
		// gate) advances immediately, and the write-ordering guard
		// remembers how recent our writes are.
		r.homeState(page).applied[r.node] = idx
		r.lastWrote[page] = idx

		home := r.G.homeOf(page)
		if r.distributed {
			// Diffs chase the current owner down the probable-owner
			// chain; past owners forward them.
			home = r.probOwnerOf(page)
		}
		d := &diffMsg{page: page, writer: r.node, idx: idx, entries: entries}
		// A dense diff is run-length encoded in practice and never
		// exceeds the page itself.
		diffBytes := 12 * len(entries)
		if diffBytes > r.cfg.PageBytes {
			diffBytes = r.cfg.PageBytes
		}
		m := &nic.Message{
			From: r.node, To: home, Op: OpDiff,
			Size:    nic.HeaderBytes + 12 + diffBytes,
			VAddr:   vaddr, // diff data streams out of the (possibly cached) page buffer
			CacheTx: true,  // a page we keep diffing is worth binding
			NoFlush: true,  // flushed just above
			Payload: d,
		}
		r.trace.Addf(w.proc.Local(), r.node, "diff", "page %d -> home %d (%d words)", page, home, len(entries))
		w.charge(r.board.Send(w.proc, m))
		r.Stats.DiffsSent++
		r.Stats.DiffWords += uint64(len(entries))
		delete(r.twin, page)
		delete(r.dirty, page)
	}
}

// --- synchronization ---

// Lock acquires the distributed lock id, applying the write notices
// that ride on the grant. Returns the cycles spent blocked.
func (w *Worker) Lock(id int) sim.Time {
	r := w.r
	r.Stats.LockOps++
	mgr := id % len(r.G.nodes)
	r.trace.Addf(w.proc.Local(), r.node, "lock", "acquire %d (manager %d)", id, mgr)
	req := &lockAcqMsg{lock: id, from: r.node, vc: append([]int32(nil), r.vc...)}
	m := &nic.Message{
		From: r.node, To: mgr, Op: OpLockAcq,
		Size:    nic.HeaderBytes + 8 + 4*len(req.vc),
		Payload: req,
	}
	if mgr == r.node {
		w.charge(r.cfg.LocalOpCycles)
		w.proc.Sync()
		r.dispatchLocal(w.proc.Local(), m)
	} else {
		w.charge(r.board.Send(w.proc, m))
	}
	return w.block(waitLock)
}

// Unlock releases lock id: the LRC release (interval, flushes, diffs)
// followed by the manager handoff carrying the intervals the manager
// has not seen.
func (w *Worker) Unlock(id int) {
	r := w.r
	r.trace.Addf(w.proc.Local(), r.node, "unlock", "release %d", id)
	w.release()
	mgr := id % len(r.G.nodes)
	sinceVC := r.grantVC[id]
	if sinceVC == nil {
		sinceVC = make([]int32, len(r.vc))
	}
	bundle := r.newIntervalBundleSince(sinceVC)
	rel := &lockRelMsg{lock: id, from: r.node, vc: append([]int32(nil), r.vc...), notices: bundle}
	m := &nic.Message{
		From: r.node, To: mgr, Op: OpLockRel,
		Size:    nic.HeaderBytes + 8 + 4*len(rel.vc) + noticeBytes(bundle),
		Payload: rel,
	}
	if mgr == r.node {
		w.charge(r.cfg.LocalOpCycles)
		w.proc.Sync()
		r.dispatchLocal(w.proc.Local(), m)
		return
	}
	w.charge(r.board.Send(w.proc, m))
}

// Barrier enters global barrier id and returns once every node has
// arrived and the write notices have been exchanged. Returns the
// cycles spent blocked. With Config.NICCollectives (and an attached
// engine) the barrier rides the collective engine; otherwise it goes
// through a manager node — node 0 under central ownership, rotating
// with the barrier id under distributed ownership so no single host
// absorbs every entry message (locks already hash their managers the
// same way).
func (w *Worker) Barrier(id int) sim.Time {
	r := w.r
	if r.coll != nil && r.cfg.NICCollectives {
		return w.barrierColl(id)
	}
	r.Stats.BarrierOps++
	r.trace.Addf(w.proc.Local(), r.node, "barrier", "enter %d", id)
	w.release()
	mgr := 0
	if r.distributed {
		mgr = id % len(r.G.nodes)
	}
	bundle := r.newIntervalBundleSince(r.lastBarVC)
	e := &barEnterMsg{barrier: id, from: r.node, vc: append([]int32(nil), r.vc...), notices: bundle}
	m := &nic.Message{
		From: r.node, To: mgr, Op: OpBarEnter,
		Size:    nic.HeaderBytes + 8 + 4*len(e.vc) + noticeBytes(bundle),
		Payload: e,
	}
	if mgr == r.node {
		w.charge(r.cfg.LocalOpCycles)
		w.proc.Sync()
		r.dispatchLocal(w.proc.Local(), m)
	} else {
		w.charge(r.board.Send(w.proc, m))
	}
	return w.block(waitBarrier)
}

// NextTask pops the next task from the shared bag (the bag-of-tasks
// paradigm Cholesky uses), or -1 when the bag is empty.
func (w *Worker) NextTask() int {
	r := w.r
	const mgr = 0
	req := &taskReqMsg{from: r.node}
	m := &nic.Message{
		From: r.node, To: mgr, Op: OpTaskReq,
		Size:    nic.HeaderBytes + 8,
		Payload: req,
	}
	if mgr == r.node {
		w.charge(r.cfg.LocalOpCycles)
		w.proc.Sync()
		r.dispatchLocal(w.proc.Local(), m)
	} else {
		w.charge(r.board.Send(w.proc, m))
	}
	w.block(waitTask)
	if w.taskResult >= 0 {
		r.Stats.TasksTaken++
	}
	return w.taskResult
}

// PushTask asynchronously adds newly enabled tasks to the bag and
// reports done completed tasks (either may be empty/zero).
func (w *Worker) PushTask(done int, tasks ...int) {
	r := w.r
	const mgr = 0
	push := &taskPushMsg{from: r.node, tasks: tasks, done: done}
	m := &nic.Message{
		From: r.node, To: mgr, Op: OpTaskPush,
		Size:    nic.HeaderBytes + 8 + 8*len(tasks),
		Payload: push,
	}
	if mgr == r.node {
		w.charge(r.cfg.LocalOpCycles)
		w.proc.Sync()
		r.dispatchLocal(w.proc.Local(), m)
		return
	}
	w.charge(r.board.Send(w.proc, m))
}

// TaskDone reports one completed task.
func (w *Worker) TaskDone() { w.PushTask(1) }

// f64bits and f64from centralize the float64 <-> word conversions.
func f64bits(v float64) uint64 { return math.Float64bits(v) }

func f64from(b uint64) float64 { return math.Float64frombits(b) }

package dsm

import (
	"fmt"
	"sort"

	"cni/internal/nic"
	"cni/internal/sim"
)

// This file holds the message handlers. They run in kernel-event
// context: on the CNI board they model Application Interrupt Handlers
// executing on the NIC's receive processor; on the standard interface
// the nic layer has already charged the interrupt, kernel receive and
// host protocol costs before invoking them on the host.

// dispatchLocal routes a message addressed to this node without going
// through the fabric (manager-is-self fast path). The caller has
// already synchronized, so at is the current kernel time.
func (r *Runtime) dispatchLocal(at sim.Time, m *nic.Message) {
	switch m.Op {
	case OpDiff:
		r.onDiff(at, m)
	case OpPageReq:
		r.onPageReq(at, m)
	case OpLockAcq:
		r.onLockAcq(at, m)
	case OpLockGrant:
		r.onLockGrant(at, m)
	case OpLockRel:
		r.onLockRel(at, m)
	case OpBarEnter:
		r.onBarEnter(at, m)
	case OpBarRelease:
		r.onBarRelease(at, m)
	case OpTaskReq:
		r.onTaskReq(at, m)
	case OpTaskReply:
		r.onTaskReply(at, m)
	case OpTaskPush:
		r.onTaskPush(at, m)
	case OpUpdate:
		r.onUpdate(at, m)
	default:
		panic(fmt.Sprintf("dsm: local dispatch of op %d", m.Op))
	}
}

// send routes m: a direct handler call for self-addressed messages, the
// board otherwise. Used from handler context (replies, grants).
func (r *Runtime) send(at sim.Time, m *nic.Message) {
	if m.To == r.node {
		r.dispatchLocal(at, m)
		return
	}
	r.board.SendAt(at, m)
}

// --- diffs and pages ---

// parkOrForward handles a page request or diff that arrived at a
// non-owner under distributed ownership. With a write fetch of our own
// outstanding we are the probable future owner, so the message parks
// here until the fetch resolves; otherwise it is forwarded one hop
// down the probable-owner chain. Forwards are issued by the protocol
// handler — on the CNI that is the board's receive processor and the
// re-send is free to the host (HandlerSendCycles is zero); on
// OSIRIS/standard each hop pays the host interrupt + kernel/ADC path
// the arrival already charged plus the host send.
func (r *Runtime) parkOrForward(at sim.Time, m *nic.Message, page int32) {
	if r.fetchingW[page] {
		r.pendingOwn[page] = append(r.pendingOwn[page], m)
		return
	}
	r.forwardOwn(at, m)
}

// forwardOwn sends a misdelivered page request or diff one hop toward
// the current owner. Write requests compress the chain: the requester
// is about to become the owner, so this node's pointer is rewritten to
// it (Li/Hudak). A hop budget turns a non-converging chain into a loud
// bug instead of a livelock.
func (r *Runtime) forwardOwn(at sim.Time, m *nic.Message) {
	var page int32
	var hops *int
	compressTo := -1
	switch m.Op {
	case OpPageReq:
		req := m.Payload.(*pageReqMsg)
		page, hops = req.page, &req.hops
		if req.write {
			compressTo = req.from
		}
	case OpDiff:
		d := m.Payload.(*diffMsg)
		page, hops = d.page, &d.hops
	default:
		panic(fmt.Sprintf("dsm: node %d forwarding op %d", r.node, m.Op))
	}
	target := r.probOwnerOf(page)
	if target == r.node {
		panic(fmt.Sprintf("dsm: node %d forwarding page %d message to itself", r.node, page))
	}
	*hops++
	if *hops > 4*len(r.G.nodes)+8 {
		panic(fmt.Sprintf("dsm: node %d page %d probable-owner chain did not converge after %d hops",
			r.node, page, *hops))
	}
	if compressTo >= 0 {
		r.probOwner[page] = compressTo
	}
	r.Stats.Forwards++
	if page == DebugPage {
		fmt.Printf("DSMDBG t=%d node=%d forward op=%d page=%d -> node %d hops=%d\n",
			at, r.node, m.Op, page, target, *hops)
	}
	r.send(at, &nic.Message{
		From: r.node, To: target, Op: m.Op, Size: m.Size, Payload: m.Payload,
	})
}

// drainPendingOwn re-dispatches the messages parked across this node's
// write fetch: locally when the fetch won ownership, down the chain to
// the node that served us when the owner declined to migrate.
func (r *Runtime) drainPendingOwn(at sim.Time, page int32) {
	parked := r.pendingOwn[page]
	if parked == nil {
		return
	}
	delete(r.pendingOwn, page)
	for _, pm := range parked {
		if r.owner(page) {
			r.dispatchLocal(at, pm)
		} else {
			r.forwardOwn(at, pm)
		}
	}
}

// onDiff applies a releaser's diff to the home copy and unparks any
// version-gated page requests it satisfies.
func (r *Runtime) onDiff(at sim.Time, m *nic.Message) {
	d := m.Payload.(*diffMsg)
	if !r.owner(d.page) {
		if !r.distributed {
			panic(fmt.Sprintf("dsm: node %d got diff for page %d homed at %d",
				r.node, d.page, r.G.homeOf(d.page)))
		}
		r.parkOrForward(at, m, d.page)
		return
	}
	r.Stats.OwnerMsgs++
	for _, e := range d.entries {
		r.data[e.word] = e.val
	}
	r.Stats.DiffsApplied++
	if d.page == DebugPage {
		fmt.Printf("DSMDBG t=%d node=%d applydiff page=%d writer=%d idx=%d words=%d\n",
			at, r.node, d.page, d.writer, d.idx, len(d.entries))
	}
	hs := r.homeState(d.page)
	if d.idx > hs.applied[d.writer] {
		hs.applied[d.writer] = d.idx
	}
	if r.cfg.UpdateProtocol {
		r.forwardUpdate(at, d)
	}
	r.drainWaiting(at, d.page)
}

// forwardUpdate pushes a just-applied diff to every copy holder (the
// eager-update protocol): their copies stay valid instead of going
// stale, at the price of one message per holder per release.
func (r *Runtime) forwardUpdate(at sim.Time, d *diffMsg) {
	hs := r.homeState(d.page)
	if d.page == DebugPage {
		fmt.Printf("DSMDBG t=%d node=%d forward page=%d writer=%d idx=%d copyset=%v\n",
			at, r.node, d.page, d.writer, d.idx, sortedMembers(hs.copyset))
	}
	for _, member := range sortedMembers(hs.copyset) {
		if member == d.writer || member == r.node {
			continue
		}
		diffBytes := 12 * len(d.entries)
		if diffBytes > r.cfg.PageBytes {
			diffBytes = r.cfg.PageBytes
		}
		r.send(at, &nic.Message{
			From: r.node, To: member, Op: OpUpdate,
			Size:         nic.HeaderBytes + 12 + diffBytes,
			VAddr:        r.vaddrOfPage(d.page),
			NoFlush:      true,
			DeliverVAddr: r.vaddrOfPage(d.page),
			DeliverBytes: diffBytes,
			Payload:      &updateMsg{diff: d, seenOfMember: hs.applied[member]},
		})
	}
}

// sortedMembers renders a copyset deterministically.
func sortedMembers(set map[int]bool) []int {
	out := make([]int, 0, len(set))
	for m := range set {
		out = append(out, m)
	}
	sort.Ints(out)
	return out
}

// onUpdate applies a forwarded diff at a copy holder (update protocol)
// and releases any stalled access.
func (r *Runtime) onUpdate(at sim.Time, m *nic.Message) {
	u := m.Payload.(*updateMsg)
	d := u.diff
	if d.page == DebugPage {
		fmt.Printf("DSMDBG t=%d node=%d onupdate page=%d writer=%d idx=%d state=%d seen=%d\n",
			at, r.node, d.page, d.writer, d.idx, r.state[d.page], u.seenOfMember)
	}
	if r.state[d.page] == pageInvalid {
		// The copy was dropped; the next access refetches, so the
		// update is moot.
		return
	}
	// Write-ordering guard: if this node has written the page more
	// recently than the home had seen when it sent the push, or holds
	// uncommitted writes to it, the pushed values may roll this node's
	// own writes back. Drop the copy and fall back to the (version-
	// gated) fault path, which merges correctly.
	if u.seenOfMember < r.lastWrote[d.page] || r.dirty[d.page] {
		r.state[d.page] = pageInvalid
		r.Stats.Invalidates++
		need := r.needs[d.page]
		if need == nil {
			need = make(map[int]int32)
			r.needs[d.page] = need
		}
		if d.idx > need[d.writer] {
			need[d.writer] = d.idx
		}
		hs := r.homeState(d.page)
		if hs.homeStalled {
			// The worker was waiting for this push; wake it so its
			// access loop refaults instead.
			hs.homeStalled = false
			r.wakeWorker(at, waitPage)
		}
		return
	}
	lo := int(d.page) * r.G.pageWords
	tw := r.twin[d.page]
	for _, e := range d.entries {
		r.data[e.word] = e.val
		if tw != nil {
			// Keep the twin in step so this node's own next diff does
			// not re-ship the forwarded words as its own.
			tw[int(e.word)-lo] = e.val
		}
	}
	hs := r.homeState(d.page)
	if d.idx > hs.applied[d.writer] {
		hs.applied[d.writer] = d.idx
	}
	// The DMA rewrote host memory under the caches.
	if r.worker != nil {
		r.worker.pendingCharge += r.worker.mem.InvalidateRange(
			r.vaddrOfPage(d.page), r.cfg.PageBytes)
	}
	r.drainWaiting(at, d.page)
}

// drainWaiting replies to parked page requests that are now satisfied
// and unstalls the home's own worker if its requirements are met.
func (r *Runtime) drainWaiting(at sim.Time, page int32) {
	hs := r.homeState(page)
	var still []waitReq
	for _, w := range hs.waiting {
		if hs.satisfied(w.req) {
			r.sendPageReply(at, w.req)
		} else {
			still = append(still, w)
		}
	}
	hs.waiting = still
	if hs.homeStalled && hs.satisfiedNeeds(r.needs[page]) {
		hs.homeStalled = false
		r.state[page] = pageValid
		delete(r.needs, page)
		r.wakeWorker(at, waitPage)
	}
}

// onPageReq serves (or parks) a page fetch at the home/owner; under
// distributed ownership a request that lands on a past owner is parked
// or forwarded down the probable-owner chain instead.
func (r *Runtime) onPageReq(at sim.Time, m *nic.Message) {
	req := m.Payload.(*pageReqMsg)
	if !r.owner(req.page) {
		if !r.distributed {
			panic(fmt.Sprintf("dsm: node %d got page request for page %d homed at %d",
				r.node, req.page, r.G.homeOf(req.page)))
		}
		r.parkOrForward(at, m, req.page)
		return
	}
	r.Stats.OwnerMsgs++
	hs := r.homeState(req.page)
	if hs.satisfied(req) {
		r.sendPageReply(at, req)
		return
	}
	hs.waiting = append(hs.waiting, waitReq{req: req, at: at})
}

// canGrant decides whether serving req should also migrate ownership
// to the requester (distributed ownership, write faults only). The
// grant requires a clean, quiescent owner copy: fully caught up on
// noticed diffs, no uncommitted local writes, no parked requests and
// no stalled worker — everything the page's manager state says is
// captured by the applied vector the reply already carries, so the
// grant adds no state transfer beyond the page itself.
func (r *Runtime) canGrant(req *pageReqMsg) bool {
	if !r.distributed || !req.write || req.from == r.node {
		return false
	}
	p := req.page
	hs := r.homeState(p)
	return r.state[p] == pageValid && !r.dirty[p] && !hs.homeStalled &&
		len(hs.waiting) == 0 && hs.satisfiedNeeds(r.needs[p])
}

// sendPageReply ships the owner's (flushed-at-release) copy of the
// page. The page buffer is Message Cache eligible on both ends: the
// home binds it on the transmit path and the requester binds the
// arrival (receive caching), which is what makes later page migrations
// and diff sends cheap. Under distributed ownership a clean write
// fault migrates ownership with the page.
func (r *Runtime) sendPageReply(at sim.Time, req *pageReqMsg) {
	r.Stats.PageFetches++
	r.trace.Addf(at, r.node, "serve", "page %d -> node %d", req.page, req.from)
	vaddr := r.vaddrOfPage(req.page)
	hs := r.homeState(req.page)
	if !hs.exported {
		// First export of this page: the home's CPU flushes it to
		// memory before the board can transfer it; from now on the
		// page is flushed at every release instead.
		hs.exported = true
		cost := r.board.FlushBuffer(vaddr, r.cfg.PageBytes)
		r.board.PenalizeHost(cost)
		at += cost
	}
	if r.cfg.UpdateProtocol {
		if hs.copyset == nil {
			hs.copyset = make(map[int]bool)
		}
		hs.copyset[req.from] = true
	}
	own := r.canGrant(req)
	if own {
		// The requester becomes the page's owner and manager; this
		// node keeps its (still current) copy as an ordinary holder
		// and points its chain at the new owner. The manager state
		// travels as the applied snapshot on the reply.
		delete(r.owned, req.page)
		r.probOwner[req.page] = req.from
		r.G.noteOwner(req.page, req.from)
		if req.page == DebugPage {
			fmt.Printf("DSMDBG t=%d node=%d grant page=%d -> node %d\n", at, r.node, req.page, req.from)
		}
	}
	r.send(at, &nic.Message{
		From:         r.node,
		To:           req.from,
		Op:           OpPageReply,
		Size:         nic.HeaderBytes + r.cfg.PageBytes,
		VAddr:        vaddr,
		CacheTx:      true,
		NoFlush:      true, // home memory was flushed at the writer's release
		DeliverVAddr: vaddr,
		DeliverBytes: r.cfg.PageBytes,
		CacheRx:      req.write,
		Payload: &pageReplyMsg{
			page: req.page, to: req.from, from: r.node, own: own, req: req,
			applied: append([]int32(nil), hs.applied...),
		},
	})
}

// onPageReply installs an arriving page at the requester: copy the
// serving owner's words, reapply any preserved local modifications
// (multiple-writer merge), revalidate, and wake the faulting worker.
// Under distributed ownership the reply also resolves the requester's
// probable-owner pointer and, on a grant, makes it the page's owner.
func (r *Runtime) onPageReply(at sim.Time, m *nic.Message) {
	rep := m.Payload.(*pageReplyMsg)
	page := rep.page
	if page == DebugPage {
		fmt.Printf("DSMDBG t=%d node=%d pagereply page=%d from=%d own=%v pendingLocal=%v\n",
			at, r.node, page, rep.from, rep.own, len(r.pendingLocal[page]))
	}
	r.copyPageFrom(page, rep.from)
	// Preserve this node's own uncommitted writes over the fetched base.
	if local, ok := r.pendingLocal[page]; ok {
		// New twin is the fetched base, so the next diff still carries
		// the local writes forward.
		if tw, twok := r.twin[page]; twok {
			lo := int(page) * r.G.pageWords
			copy(tw, r.data[lo:lo+len(tw)])
		}
		for _, e := range local {
			r.data[e.word] = e.val
		}
		delete(r.pendingLocal, page)
	}
	// Clear only the requirements this reply was gated on. Notices that
	// raced the fetch stay pending, the page stays invalid, and the
	// worker's access loop refaults with the updated requirements.
	if remaining := r.needs[page]; remaining != nil {
		for _, nd := range rep.req.need {
			if remaining[nd.Node] <= nd.Idx {
				delete(remaining, nd.Node)
			}
		}
		if len(remaining) == 0 {
			delete(r.needs, page)
		}
	}
	if r.cfg.UpdateProtocol {
		// Seed this member's applied tracking with the home's state at
		// reply time: diffs already folded into the fetched copy will
		// never be forwarded again.
		hs := r.homeState(page)
		for n, idx := range rep.applied {
			if idx > hs.applied[n] {
				hs.applied[n] = idx
			}
		}
	}
	if r.distributed {
		r.Stats.Chain.observe(rep.req.hops)
		delete(r.fetchingW, page)
		r.probOwner[page] = rep.from
		if rep.own {
			// This node is the page's owner and manager now: merge the
			// old owner's applied vector into the local manager state
			// and keep flushing at releases (the old owner still holds
			// a copy, so transfers are impending).
			r.Stats.Migrations++
			r.owned[page] = true
			r.probOwner[page] = r.node
			hs := r.homeState(page)
			for n, idx := range rep.applied {
				if idx > hs.applied[n] {
					hs.applied[n] = idx
				}
			}
			hs.exported = true
		}
	}
	if len(r.needs[page]) == 0 {
		r.state[page] = pageValid
	} else if r.distributed && r.owned[page] {
		// A new owner never refaults: with noticed diffs still in
		// flight (they are chasing the chain toward us) the page goes
		// home-stale and the worker stalls until they land.
		hs := r.homeState(page)
		if hs.satisfiedNeeds(r.needs[page]) {
			r.state[page] = pageValid
			delete(r.needs, page)
		} else {
			r.state[page] = pageHomeStale
		}
	}
	// The DMA overwrote host memory beneath the caches; the worker pays
	// the invalidation when it resumes.
	inval := r.worker.mem.InvalidateRange(r.vaddrOfPage(page), r.cfg.PageBytes)
	r.worker.pendingCharge += inval
	if r.distributed {
		r.drainPendingOwn(at, page)
	}
	r.wakeWorker(at, waitPage)
}

// --- locks ---

func (r *Runtime) onLockAcq(at sim.Time, m *nic.Message) {
	req := m.Payload.(*lockAcqMsg)
	r.Stats.OwnerMsgs++
	ls := r.locks[req.lock]
	if ls == nil {
		ls = &lockState{}
		r.locks[req.lock] = ls
	}
	if ls.held {
		ls.queue = append(ls.queue, req)
		return
	}
	ls.held = true
	ls.holder = req.from
	r.sendGrant(at, req)
}

func (r *Runtime) sendGrant(at sim.Time, req *lockAcqMsg) {
	bundle := r.newIntervalBundleSince(req.vc)
	nb := noticeBytes(bundle)
	mvc := append([]int32(nil), r.vc...)
	size := nic.HeaderBytes + 4*len(mvc) + nb
	msg := &nic.Message{
		From: r.node, To: req.from, Op: OpLockGrant, Size: size,
		Payload: &lockGrantMsg{lock: req.lock, to: req.from, notices: bundle, managerVC: mvc},
	}
	if nb > 0 && req.from != r.node {
		msg.DeliverVAddr = MailboxBase
		msg.DeliverBytes = nb
	}
	r.send(at, msg)
}

func (r *Runtime) onLockGrant(at sim.Time, m *nic.Message) {
	g := m.Payload.(*lockGrantMsg)
	fresh := r.absorbIntervals(g.notices)
	r.applyWriteNotices(fresh)
	r.grantVC[g.lock] = g.managerVC
	r.worker.pendingCharge += r.cfg.NoticeCycles * sim.Time(len(fresh))
	r.wakeWorker(at, waitLock)
}

func (r *Runtime) onLockRel(at sim.Time, m *nic.Message) {
	rel := m.Payload.(*lockRelMsg)
	r.Stats.OwnerMsgs++
	fresh := r.absorbIntervals(rel.notices)
	r.applyWriteNotices(fresh)
	ls := r.locks[rel.lock]
	if ls == nil || !ls.held || ls.holder != rel.from {
		panic(fmt.Sprintf("dsm: node %d got release of lock %d from non-holder %d",
			r.node, rel.lock, rel.from))
	}
	if len(ls.queue) == 0 {
		ls.held = false
		return
	}
	next := ls.queue[0]
	ls.queue = ls.queue[1:]
	ls.holder = next.from
	r.sendGrant(at, next)
}

// --- barriers ---

func (r *Runtime) onBarEnter(at sim.Time, m *nic.Message) {
	e := m.Payload.(*barEnterMsg)
	r.Stats.OwnerMsgs++
	fresh := r.absorbIntervals(e.notices)
	r.applyWriteNotices(fresh)
	bs := r.bars[e.barrier]
	if bs == nil {
		bs = &barrierState{}
		r.bars[e.barrier] = bs
	}
	bs.arrived++
	bs.enters = append(bs.enters, e)
	if bs.arrived < len(r.G.nodes) {
		return
	}
	// Everyone is here: redistribute what each participant is missing.
	mvc := append([]int32(nil), r.vc...)
	for _, enter := range bs.enters {
		bundle := r.newIntervalBundleSince(enter.vc)
		nb := noticeBytes(bundle)
		msg := &nic.Message{
			From: r.node, To: enter.from, Op: OpBarRelease,
			Size:    nic.HeaderBytes + 4*len(mvc) + nb,
			Payload: &barReleaseMsg{barrier: e.barrier, to: enter.from, notices: bundle, managerVC: mvc},
		}
		if nb > 0 && enter.from != r.node {
			msg.DeliverVAddr = MailboxBase
			msg.DeliverBytes = nb
		}
		r.send(at, msg)
	}
	delete(r.bars, e.barrier)
}

func (r *Runtime) onBarRelease(at sim.Time, m *nic.Message) {
	rel := m.Payload.(*barReleaseMsg)
	fresh := r.absorbIntervals(rel.notices)
	r.applyWriteNotices(fresh)
	copy(r.lastBarVC, rel.managerVC)
	r.worker.pendingCharge += r.cfg.NoticeCycles * sim.Time(len(fresh))
	r.wakeWorker(at, waitBarrier)
}

// --- bag of tasks ---

func (r *Runtime) onTaskReq(at sim.Time, m *nic.Message) {
	req := m.Payload.(*taskReqMsg)
	r.Stats.OwnerMsgs++
	r.trace.Addf(at, r.node, "task", "request from node %d", req.from)
	g := r.G
	switch {
	case g.taskNext < len(g.taskBag):
		task := g.taskBag[g.taskNext]
		g.taskNext++
		r.replyTask(at, req.from, task)
	case g.taskTotal == 0 || g.taskDone >= g.taskTotal:
		r.replyTask(at, req.from, -1)
	default:
		// Bag temporarily empty but work is still in flight: park the
		// requester until a push or the final completion.
		g.taskParked = append(g.taskParked, req)
	}
}

func (r *Runtime) replyTask(at sim.Time, to, task int) {
	r.send(at, &nic.Message{
		From: r.node, To: to, Op: OpTaskReply,
		Size:    nic.HeaderBytes + 8,
		Payload: &taskReplyMsg{to: to, task: task},
	})
}

// onTaskPush absorbs newly enabled tasks and completions, then feeds
// parked requesters.
func (r *Runtime) onTaskPush(at sim.Time, m *nic.Message) {
	push := m.Payload.(*taskPushMsg)
	r.Stats.OwnerMsgs++
	g := r.G
	g.taskBag = append(g.taskBag, push.tasks...)
	g.taskDone += push.done
	finished := g.taskTotal > 0 && g.taskDone >= g.taskTotal
	for len(g.taskParked) > 0 {
		if g.taskNext < len(g.taskBag) {
			req := g.taskParked[0]
			g.taskParked = g.taskParked[1:]
			task := g.taskBag[g.taskNext]
			g.taskNext++
			r.replyTask(at, req.from, task)
			continue
		}
		if finished {
			req := g.taskParked[0]
			g.taskParked = g.taskParked[1:]
			r.replyTask(at, req.from, -1)
			continue
		}
		break
	}
}

func (r *Runtime) onTaskReply(at sim.Time, m *nic.Message) {
	rep := m.Payload.(*taskReplyMsg)
	r.worker.taskResult = rep.task
	r.wakeWorker(at, waitTask)
}

// wakeWorker resumes this node's application thread. On the CNI the
// application learns of the completion by polling its device channel;
// on the standard interface the nic layer already included the
// interrupt and kernel receive latency before the handler ran.
func (r *Runtime) wakeWorker(at sim.Time, why waitKind) {
	w := r.worker
	if w == nil {
		panic(fmt.Sprintf("dsm: node %d woke with no worker", r.node))
	}
	// waiting == waitNone happens when the reply was produced
	// synchronously (local manager fast path) before the worker reached
	// its block; Proc.Block buffers the wake token for that case.
	if w.waiting != why && w.waiting != waitNone {
		panic(fmt.Sprintf("dsm: node %d woke worker for %v while it waits for %v",
			r.node, why, w.waiting))
	}
	at += r.board.WakeDelay()
	w.proc.WakeAt(at)
}

// sortedNeeds renders a page's pending write notices as a deterministic
// requirement list for a version-gated fetch.
func (r *Runtime) sortedNeeds(page int32) []Interval {
	need := r.needs[page]
	if len(need) == 0 {
		return nil
	}
	out := make([]Interval, 0, len(need))
	for n, idx := range need {
		out = append(out, Interval{Node: n, Idx: idx})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

package dsm_test

import (
	"testing"

	"cni/internal/cluster"
	"cni/internal/config"
	"cni/internal/dsm"
)

// run builds an n-node cluster with `words` shared words and executes
// app on every node.
func run(t *testing.T, kind config.NICKind, n, words int, app cluster.App) (*cluster.Cluster, *cluster.Result) {
	t.Helper()
	cfg := config.ForNIC(kind)
	c := mustCluster(&cfg, n, func(g *dsm.Globals) { g.Alloc(words) })
	res := c.Run(app)
	return c, res
}

func TestSingleNodeRunsWithoutTraffic(t *testing.T) {
	c, res := run(t, config.NICCNI, 1, 1024, func(w *dsm.Worker) {
		for i := 0; i < 1024; i++ {
			w.WriteF64(i, float64(i))
		}
		w.Barrier(0)
		sum := 0.0
		for i := 0; i < 1024; i++ {
			sum += w.ReadF64(i)
		}
		if sum != 1023.0*1024/2 {
			t.Errorf("sum = %v", sum)
		}
	})
	if res.Net.Messages != 0 {
		t.Fatalf("single node sent %d messages", res.Net.Messages)
	}
	if res.Time <= 0 {
		t.Fatal("no time elapsed")
	}
	if c.Nodes[0].R.Stats.PageFaults != 0 {
		t.Fatal("single node faulted on its own pages")
	}
}

func TestProducerConsumerAcrossBarrier(t *testing.T) {
	const words = 2048 // spans both nodes' home blocks
	c, res := run(t, config.NICCNI, 2, words, func(w *dsm.Worker) {
		if w.Node() == 0 {
			for i := 0; i < words/2; i++ {
				w.WriteF64(i, float64(i)*1.5)
			}
		}
		w.Barrier(0)
		if w.Node() == 1 {
			for i := 0; i < words/2; i++ {
				if got := w.ReadF64(i); got != float64(i)*1.5 {
					t.Errorf("word %d = %v, want %v", i, got, float64(i)*1.5)
					return
				}
			}
		}
		w.Barrier(1)
	})
	if res.Net.Messages == 0 {
		t.Fatal("cross-node sharing produced no traffic")
	}
	if c.Nodes[1].R.Stats.PageFaults == 0 {
		t.Fatal("consumer never faulted")
	}
}

func TestLockProtectedCounter(t *testing.T) {
	// The classic DSM smoke test: N nodes increment a shared counter K
	// times each under a lock. Exercises diffs, version-gated fetches
	// and the grant-carried write notices.
	const n, k = 4, 25
	for _, kind := range []config.NICKind{config.NICCNI, config.NICStandard} {
		c, _ := run(t, kind, n, 64, func(w *dsm.Worker) {
			for i := 0; i < k; i++ {
				w.Lock(7)
				w.WriteU64(0, w.ReadU64(0)+1)
				w.Unlock(7)
			}
			w.Barrier(0)
		})
		if got := c.ReadU64(0); got != n*k {
			t.Fatalf("%v: counter = %d, want %d", kind, got, n*k)
		}
	}
}

func TestConcurrentWritersOnOnePageMerge(t *testing.T) {
	// Two non-home nodes write disjoint halves of the same page under
	// different locks; the home must end with the merged page.
	const words = 4096 // several pages over 4 nodes; page 0 homed at 0
	c, _ := run(t, config.NICCNI, 4, words, func(w *dsm.Worker) {
		pageWords := 2048 / 8
		switch w.Node() {
		case 1:
			w.Lock(1)
			for i := 0; i < pageWords/2; i++ {
				w.WriteU64(i, uint64(1000+i))
			}
			w.Unlock(1)
		case 2:
			w.Lock(2)
			for i := pageWords / 2; i < pageWords; i++ {
				w.WriteU64(i, uint64(2000+i))
			}
			w.Unlock(2)
		}
		w.Barrier(0)
		// Everyone verifies the merged page.
		for i := 0; i < pageWords; i++ {
			want := uint64(1000 + i)
			if i >= pageWords/2 {
				want = uint64(2000 + i)
			}
			if got := w.ReadU64(i); got != want {
				t.Errorf("node %d: word %d = %d, want %d", w.Node(), i, got, want)
				return
			}
		}
		w.Barrier(1)
	})
	if c.Nodes[0].R.Stats.DiffsApplied < 2 {
		t.Fatalf("home applied %d diffs, want >=2", c.Nodes[0].R.Stats.DiffsApplied)
	}
}

func TestLocalWritesSurviveRefetch(t *testing.T) {
	// Node 1 writes the low half of a page it does not own, then
	// acquires a lock whose notices invalidate that page (node 2 wrote
	// the high half). The refetch must preserve node 1's uncommitted
	// writes.
	const words = 4096
	pageWords := 2048 / 8
	c, _ := run(t, config.NICCNI, 4, words, func(w *dsm.Worker) {
		switch w.Node() {
		case 2:
			w.Lock(9)
			for i := pageWords / 2; i < pageWords; i++ {
				w.WriteU64(i, uint64(7000+i))
			}
			w.Unlock(9)
			w.Barrier(0)
			w.Barrier(1)
		case 1:
			w.Barrier(0) // node 2's writes are released and noticed
			for i := 0; i < pageWords/2; i++ {
				w.WriteU64(i, uint64(5000+i))
			}
			// Fault the page again through an acquire that invalidates:
			// notices for page 0 arrived at barrier 0 already, so the
			// writes above happened on a freshly fetched page... write
			// again after one more sync to force the stale-dirty path.
			w.Lock(9)
			w.Unlock(9)
			if got := w.ReadU64(0); got != 5000 {
				t.Errorf("own write lost: word 0 = %d", got)
			}
			if got := w.ReadU64(pageWords - 1); got != uint64(7000+pageWords-1) {
				t.Errorf("remote write lost: = %d", got)
			}
			w.Barrier(1)
		default:
			w.Barrier(0)
			w.Barrier(1)
		}
	})
	_ = c
}

func TestBarrierSeparatesPhases(t *testing.T) {
	// Ping-pong: alternate writer/reader roles over several phases.
	const words = 2048
	run(t, config.NICCNI, 2, words, func(w *dsm.Worker) {
		me, other := w.Node(), 1-w.Node()
		slot := func(n int) int { return n * (words / 2) }
		for phase := 0; phase < 6; phase++ {
			if phase%2 == me {
				w.WriteU64(slot(me), uint64(100*phase+me))
			}
			w.Barrier(phase)
			if phase%2 == other {
				want := uint64(100*phase + other)
				if got := w.ReadU64(slot(other)); got != want {
					t.Errorf("node %d phase %d: read %d, want %d", me, phase, got, want)
					return
				}
			}
		}
	})
}

func TestTaskBagDistributesEachTaskOnce(t *testing.T) {
	const n = 4
	cfg := config.Default()
	var got [][]int
	c := mustCluster(&cfg, n, func(g *dsm.Globals) {
		g.Alloc(64)
		tasks := make([]int, 40)
		for i := range tasks {
			tasks[i] = i
		}
		g.SetTasks(tasks, 0)
	})
	got = make([][]int, n)
	c.Run(func(w *dsm.Worker) {
		for {
			tk := w.NextTask()
			if tk < 0 {
				break
			}
			got[w.Node()] = append(got[w.Node()], tk)
			w.Compute(10_000)
		}
		w.Barrier(0)
	})
	seen := map[int]int{}
	total := 0
	for node, list := range got {
		if len(list) == 0 {
			t.Errorf("node %d got no tasks", node)
		}
		for _, tk := range list {
			seen[tk]++
			total++
		}
	}
	if total != 40 {
		t.Fatalf("distributed %d tasks, want 40", total)
	}
	for tk, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("task %d handed out %d times", tk, cnt)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	do := func() (int64, uint64) {
		c, res := run(t, config.NICCNI, 4, 4096, func(w *dsm.Worker) {
			for i := 0; i < 20; i++ {
				w.Lock(3)
				w.WriteU64(1, w.ReadU64(1)+uint64(w.Node()+1))
				w.Unlock(3)
				w.Compute(5_000)
				w.Barrier(i)
			}
		})
		return int64(res.Time), c.ReadU64(1)
	}
	t1, v1 := do()
	t2, v2 := do()
	if t1 != t2 {
		t.Fatalf("non-deterministic end times: %d vs %d", t1, t2)
	}
	if v1 != v2 || v1 != 20*(1+2+3+4) {
		t.Fatalf("values %d, %d; want %d", v1, v2, 20*(1+2+3+4))
	}
}

func TestCNIAndStandardComputeSameAnswer(t *testing.T) {
	results := map[config.NICKind]uint64{}
	times := map[config.NICKind]int64{}
	for _, kind := range []config.NICKind{config.NICCNI, config.NICStandard} {
		c, res := run(t, kind, 4, 4096, func(w *dsm.Worker) {
			for i := 0; i < 10; i++ {
				w.Lock(0)
				w.WriteU64(0, w.ReadU64(0)+uint64(w.Node())+1)
				w.Unlock(0)
				w.Barrier(i)
			}
		})
		results[kind] = c.ReadU64(0)
		times[kind] = int64(res.Time)
	}
	if results[config.NICCNI] != results[config.NICStandard] {
		t.Fatalf("answers differ: %v", results)
	}
	if times[config.NICCNI] >= times[config.NICStandard] {
		t.Fatalf("CNI (%d cycles) not faster than standard (%d cycles) on a synchronization-heavy run",
			times[config.NICCNI], times[config.NICStandard])
	}
}

func TestHitRatioRisesWithReuse(t *testing.T) {
	// One hot page bounces between nodes every iteration: after the
	// first round trip, transmits should hit the Message Cache.
	_, res := run(t, config.NICCNI, 2, 512, func(w *dsm.Worker) {
		for i := 0; i < 30; i++ {
			w.Lock(0)
			w.WriteU64(0, w.ReadU64(0)+1)
			w.Unlock(0)
			w.Barrier(i)
		}
	})
	if res.HitRatio < 50 {
		t.Fatalf("hit ratio %.1f%% for a hot bouncing page, want >=50%%", res.HitRatio)
	}
}

func TestOverheadBreakdownAddsUp(t *testing.T) {
	_, res := run(t, config.NICStandard, 4, 4096, func(w *dsm.Worker) {
		for i := 0; i < 5; i++ {
			w.Lock(1)
			w.WriteU64(8, w.ReadU64(8)+1)
			w.Unlock(1)
			w.Compute(100_000)
			w.Barrier(i)
		}
	})
	if res.AvgOverhead <= 0 || res.AvgDelay <= 0 {
		t.Fatalf("breakdown: overhead=%d delay=%d", res.AvgOverhead, res.AvgDelay)
	}
	if res.AvgComputation <= 0 {
		t.Fatalf("computation %d must be positive", res.AvgComputation)
	}
	if res.AvgOverhead+res.AvgDelay+res.AvgComputation != res.Time {
		t.Fatal("breakdown does not sum to total")
	}
	// 5 iterations of 100k cycles of work: computation must dominate
	// plausibly (within 2x of the nominal 500k).
	if res.AvgComputation < 400_000 {
		t.Fatalf("computation %d below the work actually charged", res.AvgComputation)
	}
}

func TestManyNodesBarrierStorm(t *testing.T) {
	// 8 nodes, 20 barriers, no shared writes: pure synchronization.
	_, res := run(t, config.NICCNI, 8, 512, func(w *dsm.Worker) {
		for i := 0; i < 20; i++ {
			w.Barrier(i)
		}
	})
	if res.Time <= 0 {
		t.Fatal("no time elapsed")
	}
	// 8 nodes x 20 barriers: 7 enters + 7 releases each (manager local).
	wantMin := uint64(20 * 7 * 2)
	if res.Net.Messages < wantMin {
		t.Fatalf("messages = %d, want >= %d", res.Net.Messages, wantMin)
	}
}

func TestReadersShareWithoutInvalidating(t *testing.T) {
	// After one producer phase, many readers fetch once and then read
	// repeatedly with no further faults.
	const words = 2048
	c, _ := run(t, config.NICCNI, 4, words, func(w *dsm.Worker) {
		if w.Node() == 0 {
			for i := 0; i < 128; i++ {
				w.WriteU64(i, uint64(i))
			}
		}
		w.Barrier(0)
		for round := 0; round < 10; round++ {
			for i := 0; i < 128; i++ {
				if got := w.ReadU64(i); got != uint64(i) {
					t.Errorf("node %d round %d: word %d = %d", w.Node(), round, i, got)
					return
				}
			}
		}
		w.Barrier(1)
	})
	for _, n := range c.Nodes[1:] {
		if n.R.Stats.PageFaults > 2 {
			t.Fatalf("node %d faulted %d times for a read-only working set of 1 page",
				n.ID, n.R.Stats.PageFaults)
		}
	}
}

func TestUpdateProtocolComputesSameAnswers(t *testing.T) {
	// The eager-update variant must agree with the invalidate protocol
	// on every workload shape: lock counter, producer/consumer,
	// concurrent writers.
	for _, kind := range []config.NICKind{config.NICCNI, config.NICStandard} {
		cfg := config.ForNIC(kind)
		cfg.UpdateProtocol = true
		c := mustCluster(&cfg, 4, func(g *dsm.Globals) { g.Alloc(4096) })
		res := c.Run(func(w *dsm.Worker) {
			for i := 0; i < 15; i++ {
				w.Lock(5)
				w.WriteU64(0, w.ReadU64(0)+uint64(w.Node())+1)
				w.Unlock(5)
				w.Barrier(i)
			}
			// Everyone re-reads the counter after the last barrier.
			if got := w.ReadU64(0); got != 15*(1+2+3+4) {
				t.Errorf("node %d read %d", w.Node(), got)
			}
		})
		if got := c.ReadU64(0); got != 15*(1+2+3+4) {
			t.Fatalf("%v update protocol: counter = %d", kind, got)
		}
		if res.Time <= 0 {
			t.Fatal("no time")
		}
	}
}

func TestUpdateProtocolPushesDiffsToHolders(t *testing.T) {
	cfg := config.Default()
	cfg.UpdateProtocol = true
	c := mustCluster(&cfg, 3, func(g *dsm.Globals) { g.Alloc(512) })
	c.Run(func(w *dsm.Worker) {
		// All nodes read word 300 (homed at node 1) so everyone joins
		// the copyset; then node 0 updates it repeatedly.
		w.ReadU64(300)
		w.Barrier(0)
		for i := 0; i < 5; i++ {
			if w.Node() == 0 {
				w.Lock(2)
				w.WriteU64(300, uint64(i+1))
				w.Unlock(2)
			}
			w.Barrier(1 + i)
			if got := w.ReadU64(300); got != uint64(i+1) {
				t.Errorf("node %d iter %d: read %d", w.Node(), i, got)
				return
			}
		}
	})
	// After the warm-up, readers must NOT refetch the page — updates
	// are pushed. The home (node 1) serves each member's initial fetch
	// and nothing more (stalled accesses wait for pushes, they do not
	// fetch).
	if served := c.Nodes[1].R.Stats.PageFetches; served > 2 {
		t.Fatalf("home served %d page fetches under the update protocol, want the 2 initial ones", served)
	}
}

func TestInvalidateVsUpdateBothCorrectOnSharedSweep(t *testing.T) {
	// A write-heavy sweep with a wide copyset: the update protocol
	// must still be correct (the paper argues invalidate is *faster*
	// in low-overhead environments, not that update is wrong).
	for _, update := range []bool{false, true} {
		cfg := config.Default()
		cfg.UpdateProtocol = update
		c := mustCluster(&cfg, 4, func(g *dsm.Globals) { g.Alloc(2048) })
		c.Run(func(w *dsm.Worker) {
			// Everyone reads everything once (wide copysets).
			for i := 0; i < 1024; i += 64 {
				w.ReadU64(i)
			}
			w.Barrier(0)
			// Each node writes its own stripe under a lock.
			w.Lock(w.Node())
			for i := w.Node() * 256; i < (w.Node()+1)*256; i += 8 {
				w.WriteU64(i, uint64(1000+i))
			}
			w.Unlock(w.Node())
			w.Barrier(1)
			for i := 0; i < 1024; i += 8 {
				if got := w.ReadU64(i); got != uint64(1000+i) {
					t.Errorf("update=%v node %d: word %d = %d", update, w.Node(), i, got)
					return
				}
			}
			w.Barrier(2)
		})
	}
}

// mustCluster builds a cluster the test knows is valid.
func mustCluster(cfg *config.Config, n int, setup cluster.Setup) *cluster.Cluster {
	c, err := cluster.New(cfg, n, setup)
	if err != nil {
		panic(err)
	}
	return c
}

package dsm

import (
	"sort"

	"cni/internal/collective"
	"cni/internal/sim"
)

// This file carries the DSM barrier over the collective engine
// (Config.NICCollectives). The legacy path funnels 2(N-1) host-handled
// messages through a centralized manager at node 0; here the barrier is
// one engine episode whose opaque payload is the write-notice exchange
// itself, combined hop by hop — in board memory by the receive
// processor on the CNI — so the notices reach every node without the
// manager's host CPU ever serializing them (the NIC-combining move of
// Yu et al., PAPERS.md, applied to LRC metadata).

// barPayload is the engine payload of one barrier: the intervals this
// side knows beyond the last barrier, plus its vector clock.
type barPayload struct {
	notices []*Interval
	vc      []int32
}

// mergeBarPayloads combines two barrier payloads. Every node's bundle
// for a writer w is a contiguous run starting at lastBarVC[w]+1 —
// lastBarVC is copied from the same release vector on every node — and
// runs for the same writer are prefixes of one interval sequence, so
// the union is simply the run reaching furthest. That also makes the
// merge idempotent, which the dissemination schedule requires on
// non-power-of-two clusters (a contribution can arrive via two paths).
// The result lists writers in ascending order: the merge is
// order-insensitive, so every node ends the episode with an identical
// payload.
func mergeBarPayloads(a, b any) any {
	pa, pb := a.(*barPayload), b.(*barPayload)
	out := &barPayload{vc: make([]int32, len(pa.vc))}
	for i := range out.vc {
		out.vc[i] = pa.vc[i]
		if pb.vc[i] > out.vc[i] {
			out.vc[i] = pb.vc[i]
		}
	}
	runs := make(map[int][]*Interval)
	bucket := func(ivs []*Interval) {
		for start := 0; start < len(ivs); {
			end := start + 1
			for end < len(ivs) && ivs[end].Node == ivs[start].Node {
				end++
			}
			run := ivs[start:end]
			w := ivs[start].Node
			if cur := runs[w]; cur == nil || run[len(run)-1].Idx > cur[len(cur)-1].Idx {
				runs[w] = run
			}
			start = end
		}
	}
	bucket(pa.notices)
	bucket(pb.notices)
	writers := make([]int, 0, len(runs))
	for w := range runs {
		writers = append(writers, w)
	}
	sort.Ints(writers)
	for _, w := range writers {
		out.notices = append(out.notices, runs[w]...)
	}
	return out
}

func barPayloadBytes(p any) int {
	bp := p.(*barPayload)
	return noticeBytes(bp.notices) + 4*len(bp.vc)
}

// SetCollective points the runtime's barrier at cn. The offload is
// still gated at call time on Config.NICCollectives, so a wired cluster
// can still run the legacy manager path for comparison.
func (r *Runtime) SetCollective(cn *collective.Node) {
	r.coll = cn
	cn.SetPayload(mergeBarPayloads, barPayloadBytes)
}

// barrierColl is Worker.Barrier on the engine. The numerical outcome is
// identical to the manager path: the merged payload holds exactly the
// cluster's intervals beyond lastBarVC, absorbing skips what this node
// already knows (so fresh matches the manager's redistribution), and
// the merged vector clock equals the manager clock the legacy release
// would have carried. Only the message pattern — and therefore the
// cycle accounting — changes.
func (w *Worker) barrierColl(id int) sim.Time {
	r := w.r
	r.Stats.BarrierOps++
	r.trace.Addf(w.proc.Local(), r.node, "barrier", "enter %d (engine)", id)
	w.release()
	bundle := r.newIntervalBundleSince(r.lastBarVC)
	pay := &barPayload{notices: bundle, vc: append([]int32(nil), r.vc...)}
	r.coll.Begin(w.proc, collective.KindBarrier, 0, 0, collective.OpSum, pay,
		func(at sim.Time, _ float64, payload any) {
			p := payload.(*barPayload)
			fresh := r.absorbIntervals(p.notices)
			r.applyWriteNotices(fresh)
			copy(r.lastBarVC, p.vc)
			w.pendingCharge += r.cfg.NoticeCycles * sim.Time(len(fresh))
			r.wakeWorker(at, waitBarrier)
		})
	return w.block(waitBarrier)
}

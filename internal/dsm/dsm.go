// Package dsm implements the distributed shared memory system the CNI
// paper's evaluation runs: a lazy invalidate release consistency
// protocol (Keleher et al. [7], Gharachorloo et al. [6]) with vector
// timestamps, intervals, write notices, and multiple-writer twins and
// diffs, plus the synchronization machinery the three benchmark
// applications need — distributed locks, barriers, and a bag-of-tasks.
//
// The variant implemented is home-based LRC: every shared page has a
// static home node whose copy is authoritative; a releaser sends diffs
// of the pages it wrote to their homes, and a node that invalidated a
// page on an acquire refetches the whole page from the home. Fetches
// are version-gated — a page request names the (writer, interval)
// pairs the requester must observe and the home holds the reply until
// the corresponding diffs have been applied — so the protocol is
// correct regardless of message timing. DESIGN.md discusses why this
// variant preserves the traffic patterns the paper's figures depend on
// (repeated page sends from homes exercise transmit caching; diff
// sends out of received pages exercise receive caching).
//
// On the CNI board the protocol handlers are registered as Application
// Interrupt Handlers and run on the NIC's receive processor; on the
// standard interface the same handlers run on the host CPU behind an
// interrupt, which is exactly the overhead gap Tables 2-4 of the paper
// measure.
//
// Config.DSMOwnership selects between two manager organizations. The
// default ("central") is the home-based protocol above: every page's
// manager is its static home for the whole run. "distributed" is the
// Li/Hudak dynamic distributed manager: ownership migrates to
// write-faulting nodes, every node keeps a per-page probable-owner
// pointer, and requests or diffs that land on a past owner are
// forwarded one hop down the chain (with path compression on write
// requests). Barrier managers rotate with the barrier id and lock
// managers hash over the nodes, so no single host absorbs the
// synchronization metadata either. The forwarding handlers are the
// same AIHs: on the CNI a forward is issued by the board's receive
// processor with the owner table pinned in board memory
// (Board.ProtocolStateOnBoard), while OSIRIS and the standard
// interface pay the host path on every hop.
package dsm

import (
	"fmt"

	"cni/internal/collective"
	"cni/internal/config"
	"cni/internal/nic"
	"cni/internal/sim"
	"cni/internal/trace"
)

// DebugPage, when >= 0, makes the runtime print every protocol event
// touching that page (testing/forensics aid; not for production runs).
var DebugPage int32 = -1

// SharedBase is the virtual address where the shared region is mapped
// on every node (identical everywhere, as the paper's fixed allocation
// of processor address space to DSM prescribes).
const SharedBase uint64 = 1 << 30

// MailboxBase is the per-node buffer where control payloads (write
// notice bundles) are DMAed.
const MailboxBase uint64 = 1 << 29

// Protocol operations (PATHFINDER-visible message kinds).
const (
	OpDiff uint32 = 10 + iota
	OpPageReq
	OpPageReply
	OpLockAcq
	OpLockGrant
	OpLockRel
	OpBarEnter
	OpBarRelease
	OpTaskReq
	OpTaskReply
	OpTaskPush
	OpUpdate
)

// Interval is one release interval: the pages Node wrote between its
// (Idx-1)th and Idx-th releases.
type Interval struct {
	Node  int
	Idx   int32
	Pages []int32
}

// bytes is the modeled wire size of an interval record.
func (iv *Interval) bytes() int { return 12 + 4*len(iv.Pages) }

func noticeBytes(ivs []*Interval) int {
	n := 0
	for _, iv := range ivs {
		n += iv.bytes()
	}
	return n
}

// --- wire payloads (carried by reference through the simulated fabric) ---

type diffEntry struct {
	word int32
	val  uint64
}

type diffMsg struct {
	page    int32
	writer  int
	idx     int32 // writer's interval index
	entries []diffEntry
	// hops counts probable-owner chain forwards (distributed ownership
	// only): a diff that reaches a past owner chases the current one.
	hops int
}

type pageReqMsg struct {
	page int32
	from int
	// write marks a write fault: the page will be modified and so is
	// "likely to migrate" — the home sets the header cache bit on the
	// reply and the requester's board binds it (receive caching).
	// Read-only fetches are not bound, keeping the Message Cache free
	// for pages that will actually be retransmitted.
	write bool
	// need lists the (writer, interval) pairs the home must have
	// applied before replying, sorted by writer for determinism.
	need []Interval // Pages unused here
	// hops counts probable-owner chain forwards (distributed ownership
	// only); the requester folds it into its chain histogram.
	hops int
}

type pageReplyMsg struct {
	page int32
	to   int
	// from is the node that served the request — the static home under
	// central ownership, the current owner under distributed ownership.
	// The requester installs the page from this node's copy and updates
	// its probable-owner pointer to it.
	from int
	// own marks an ownership grant (distributed, write faults on a
	// clean owner copy): the requester becomes the page's owner and
	// manager.
	own bool
	// applied snapshots the home's per-writer applied vector at reply
	// time, seeding the member's own tracking under the update
	// protocol (and the new owner's under distributed ownership).
	applied []int32
	// req is the request this reply answers; the requester clears only
	// the requirements the reply was gated on, because write notices
	// that arrived while the fetch was in flight are NOT covered by it.
	req *pageReqMsg
}

type lockAcqMsg struct {
	lock int
	from int
	vc   []int32
}

type lockGrantMsg struct {
	lock      int
	to        int
	notices   []*Interval
	managerVC []int32
}

type lockRelMsg struct {
	lock    int
	from    int
	vc      []int32
	notices []*Interval // releaser intervals the manager hasn't seen
}

type barEnterMsg struct {
	barrier int
	from    int
	vc      []int32
	notices []*Interval
}

type barReleaseMsg struct {
	barrier   int
	to        int
	notices   []*Interval
	managerVC []int32
}

type taskReqMsg struct{ from int }

type taskReplyMsg struct {
	to   int
	task int // -1 when all tasks are done
}

// taskPushMsg feeds the bag: newly enabled tasks and/or completions
// (the right-looking Cholesky fan-out pushes a column once its last
// update lands, and reports each finished column).
type taskPushMsg struct {
	from  int
	tasks []int
	done  int
}

// updateMsg is one forwarded diff of the eager-update protocol.
// seenOfMember is the home's applied index FOR THE RECEIVER at forward
// time: if the receiver has released a newer interval for this page,
// the push's values may predate the receiver's own writes and must not
// be applied (the receiver falls back to an invalidate+fault).
type updateMsg struct {
	diff         *diffMsg
	seenOfMember int32
}

// ChainHist is a histogram of probable-owner chain lengths observed by
// completed page fetches: bucket i counts fetches forwarded i times,
// with the last bucket absorbing everything longer. A fixed-size array
// keeps Stats comparable (the determinism tests compare with ==).
type ChainHist [8]uint64

// observe records one completed fetch that took hops forwards.
func (h *ChainHist) observe(hops int) {
	if hops >= len(h) {
		hops = len(h) - 1
	}
	h[hops]++
}

// Merge accumulates other into h.
func (h *ChainHist) Merge(other ChainHist) {
	for i, v := range other {
		h[i] += v
	}
}

// Total reports the number of observed fetches.
func (h ChainHist) Total() uint64 {
	var t uint64
	for _, v := range h {
		t += v
	}
	return t
}

// Stats aggregates one node's protocol activity.
type Stats struct {
	PageFaults   uint64 // accesses that stalled or fetched
	PageFetches  uint64 // page requests this node served as home/owner
	DiffsSent    uint64
	DiffWords    uint64
	DiffsApplied uint64
	Invalidates  uint64
	LockOps      uint64
	BarrierOps   uint64
	TasksTaken   uint64
	// OwnerMsgs counts protocol messages this node handled in a
	// manager/owner role: page requests and diffs at the page's
	// home/owner, lock traffic at the lock's manager, barrier entries
	// at the barrier's manager, task traffic at the bag server. The
	// per-node maximum is the manager-hotspot metric FD1 plots.
	OwnerMsgs uint64
	// Forwards counts probable-owner chain forwards this node issued
	// (distributed ownership only).
	Forwards uint64
	// Migrations counts ownerships this node acquired on write faults
	// (distributed ownership only).
	Migrations uint64
	// Chain is the chain-length histogram of this node's completed
	// fetches (distributed ownership only; central fetches take 0 hops).
	Chain    ChainHist
	Overhead sim.Time // protocol cycles charged to the app CPU
}

// pageState is a node's access state for one shared page.
type pageState uint8

const (
	// pageInvalid: the local copy is stale; an access faults and
	// fetches from the home.
	pageInvalid pageState = iota
	// pageValid: the local copy is current as of the node's last
	// acquire; accesses proceed at memory speed.
	pageValid
	// pageHomeStale: this node is the page's home and has seen write
	// notices for diffs that have not arrived yet. The copy stays
	// mapped (homes are never invalidated) but the next access must
	// stall until the noticed diffs are applied — otherwise a home
	// read-modify-write could overwrite an in-flight remote update.
	pageHomeStale
)

// pageHome holds the home-side bookkeeping for one page.
type pageHome struct {
	applied []int32   // per-writer highest applied interval index
	waiting []waitReq // version-gated requests parked here
	// homeStalled marks that this node's worker is blocked waiting
	// for noticed diffs on this page (at the home under either
	// protocol; at any copy holder under the update protocol).
	homeStalled bool
	// copyset lists the nodes holding a copy of this page; under the
	// update protocol the home forwards every diff to them. Maintained
	// only at the home.
	copyset map[int]bool
	// exported marks that some other node has fetched this page: from
	// then on the home flushes it at every release (the "impending
	// message transfer" discipline); never-exported pages skip the
	// flush and pay it once on their first fetch.
	exported bool
}

type waitReq struct {
	req *pageReqMsg
	at  sim.Time
}

// lockState is the manager-side state of one lock.
type lockState struct {
	held   bool
	holder int
	queue  []*lockAcqMsg
}

// barrierState is the manager-side state of one barrier.
type barrierState struct {
	arrived int
	enters  []*barEnterMsg
}

// Runtime is one node's DSM engine. All Runtimes of a cluster share
// the Globals.
type Runtime struct {
	G    *Globals
	node int

	k     *sim.Kernel
	cfg   *config.Config
	board *nic.Board

	data         []uint64    // this node's copy of the whole shared region
	state        []pageState // per page access state
	twin         map[int32][]uint64
	dirty        map[int32]bool
	needs        map[int32]map[int]int32 // page -> writer -> required interval
	pendingLocal map[int32][]diffEntry   // local writes preserved across a refetch
	vc           []int32
	log          [][]*Interval // per node, contiguous by interval index
	homes        map[int32]*pageHome
	locks        map[int]*lockState
	bars         map[int]*barrierState
	grantVC      map[int][]int32 // per lock: manager VC seen at last grant
	lastBarVC    []int32         // manager VC broadcast at the last barrier release
	lastWrote    map[int32]int32 // per page: own interval idx of the last release that diffed it

	// Distributed-ownership state (nil/unused under central ownership).
	distributed bool
	owned       map[int32]bool // pages this node currently owns
	probOwner   map[int32]int  // best guess at the current owner (default: static home)
	fetchingW   map[int32]bool // pages with an outstanding write fetch
	// pendingOwn parks requests and diffs that arrive while this node
	// has a write fetch outstanding for the page: the requester is the
	// probable future owner, so racing traffic funnels here instead of
	// chasing a moving target (the rule that makes Li/Hudak chains
	// terminate).
	pendingOwn map[int32][]*nic.Message
	// pendingIv parks intervals that arrived ahead of a gap in the
	// log. Only the rotating barrier manager can see such a gap: an
	// enter bundle is computed against the previous manager's release
	// clock, and a fast participant's enter can outrun the new
	// manager's own release from that barrier. The missing prefix is
	// that release, already in flight, so the parked run splices the
	// moment it lands — provably before this manager redistributes.
	pendingIv map[int]map[int32]*Interval

	worker *Worker
	trace  *trace.Log // nil when tracing is off

	// coll, when set (and Config.NICCollectives on), carries barriers
	// over the collective engine instead of the centralized manager:
	// write-notice bundles ride the schedule as the engine's opaque
	// payload and are merged hop by hop — in board memory on the CNI.
	coll *collective.Node

	Stats Stats
}

// SetTrace attaches an event log (nil turns tracing off).
func (r *Runtime) SetTrace(l *trace.Log) { r.trace = l }

// Globals is the cluster-wide configuration of the shared region.
type Globals struct {
	cfg          *config.Config
	nodes        []*Runtime
	pageWords    int
	words        int // allocated shared words
	homeOf       func(page int32) int
	homeOverride func(page int32, n int) int

	// ownerMoved records the current owner of every page whose
	// ownership migrated away from its static home (distributed
	// ownership). Post-run reads consult it: the authoritative copy
	// follows the owner.
	ownerMoved map[int32]int

	// Bag of tasks, served by node 0's protocol handler. taskTotal is
	// the number of TaskDone completions after which NextTask returns
	// -1 to everyone; 0 means "the initial bag is everything" and the
	// bag simply drains.
	taskBag    []int
	taskNext   int
	taskTotal  int
	taskDone   int
	taskParked []*taskReqMsg
}

// NewGlobals prepares a cluster-wide DSM of n nodes. Homes are
// distributed by blocks once the region size is known (see Freeze).
func NewGlobals(cfg *config.Config) *Globals {
	return &Globals{cfg: cfg, pageWords: cfg.PageBytes / cfg.WordBytes,
		ownerMoved: make(map[int32]int)}
}

// Alloc reserves words shared words and returns the base word index.
// Call before Freeze, identically on every run.
func (g *Globals) Alloc(words int) int {
	base := g.words
	g.words += words
	// Pad to a page boundary so unrelated arrays never share a page
	// (the apps control false sharing through page size instead).
	if rem := g.words % g.pageWords; rem != 0 {
		g.words += g.pageWords - rem
	}
	return base
}

// AllocUnpadded reserves words without page alignment, for arrays that
// intentionally share pages (false-sharing studies).
func (g *Globals) AllocUnpadded(words int) int {
	base := g.words
	g.words += words
	return base
}

// PageWords reports the shared-page size in words.
func (g *Globals) PageWords() int { return g.pageWords }

// Pages reports the number of shared pages after allocation.
func (g *Globals) Pages() int {
	return (g.words + g.pageWords - 1) / g.pageWords
}

// SetTasks loads the initial bag of tasks (served by node 0). With
// total == 0 the bag is static and NextTask returns -1 once it drains;
// with total > 0 the bag is dynamic (workers may PushTask) and NextTask
// returns -1 only after total TaskDone completions.
func (g *Globals) SetTasks(tasks []int, total int) {
	g.taskBag = append([]int(nil), tasks...)
	g.taskNext = 0
	g.taskTotal = total
	g.taskDone = 0
	g.taskParked = nil
}

// SetHomeOf overrides the home distribution (applications call this in
// their Setup to align page homes with their data partitioning; the
// function must map every page to [0, n)). Takes effect at Freeze.
func (g *Globals) SetHomeOf(fn func(page int32, n int) int) { g.homeOverride = fn }

// Freeze fixes the home distribution: by default pages are distributed
// in contiguous blocks across n nodes, which aligns homes with the
// block-partitioned data of the benchmark applications; a SetHomeOf
// override wins.
func (g *Globals) Freeze(n int) {
	if g.homeOverride != nil {
		fn := g.homeOverride
		g.homeOf = func(page int32) int {
			h := fn(page, n)
			if h < 0 || h >= n {
				panic(fmt.Sprintf("dsm: home override mapped page %d to %d of %d nodes", page, h, n))
			}
			return h
		}
		return
	}
	pages := g.Pages()
	if pages == 0 {
		pages = 1
	}
	per := (pages + n - 1) / n
	g.homeOf = func(page int32) int {
		h := int(page) / per
		if h >= n {
			h = n - 1
		}
		return h
	}
}

// HomeOf reports the home node of a page.
func (g *Globals) HomeOf(page int32) int { return g.homeOf(page) }

// OwnerOf reports the node holding the page's authoritative copy after
// a run: the static home unless ownership migrated away (distributed
// ownership).
func (g *Globals) OwnerOf(page int32) int {
	if o, ok := g.ownerMoved[page]; ok {
		return o
	}
	return g.homeOf(page)
}

// noteOwner records an ownership migration for post-run reads.
func (g *Globals) noteOwner(page int32, node int) { g.ownerMoved[page] = node }

// Migrated reports how many pages are currently owned away from their
// static home (diagnostics and tests).
func (g *Globals) Migrated() int {
	n := 0
	for page, o := range g.ownerMoved {
		if o != g.homeOf(page) {
			n++
		}
	}
	return n
}

// TaskDebug summarizes the bag-of-tasks state for deadlock forensics.
func (g *Globals) TaskDebug() string {
	return fmt.Sprintf("bag=%d/%d done=%d/%d parked=%d",
		g.taskNext, len(g.taskBag), g.taskDone, g.taskTotal, len(g.taskParked))
}

// PendingHomeRequests reports, per runtime, how many version-gated
// page requests are parked at this node's homes (deadlock forensics).
func (r *Runtime) PendingHomeRequests() (n int, sample string) {
	for page, hs := range r.homes {
		if len(hs.waiting) > 0 {
			n += len(hs.waiting)
			if sample == "" {
				req := hs.waiting[0].req
				sample = fmt.Sprintf("page %d from node %d needs %v applied=%v",
					page, req.from, req.need, hs.applied)
			}
		}
	}
	for page, parked := range r.pendingOwn {
		n += len(parked)
		if sample == "" {
			sample = fmt.Sprintf("page %d: %d message(s) parked awaiting ownership", page, len(parked))
		}
	}
	return n, sample
}

// NewRuntime builds the DSM engine for one node and registers its
// protocol handlers on the board. Call after Globals.Freeze.
func NewRuntime(g *Globals, k *sim.Kernel, node, nnodes int, board *nic.Board) *Runtime {
	r := &Runtime{
		G:            g,
		node:         node,
		k:            k,
		cfg:          g.cfg,
		board:        board,
		data:         make([]uint64, g.words+g.pageWords),
		state:        make([]pageState, g.Pages()+1),
		twin:         make(map[int32][]uint64),
		dirty:        make(map[int32]bool),
		needs:        make(map[int32]map[int]int32),
		pendingLocal: make(map[int32][]diffEntry),
		vc:           make([]int32, nnodes),
		log:          make([][]*Interval, nnodes),
		homes:        make(map[int32]*pageHome),
		locks:        make(map[int]*lockState),
		bars:         make(map[int]*barrierState),
		grantVC:      make(map[int][]int32),
		lastBarVC:    make([]int32, nnodes),
		lastWrote:    make(map[int32]int32),
	}
	if g.cfg.DSMOwnershipOrDefault() == config.DSMDistributed {
		r.distributed = true
		r.owned = make(map[int32]bool)
		r.probOwner = make(map[int32]int)
		r.fetchingW = make(map[int32]bool)
		r.pendingOwn = make(map[int32][]*nic.Message)
	}
	for p := range r.state {
		if g.homeOf(int32(p)) == node {
			r.state[p] = pageValid
			if r.distributed {
				// Initial owners are the static homes; probable-owner
				// pointers elsewhere default to the static home too.
				r.owned[int32(p)] = true
			}
		}
	}
	g.nodes = append(g.nodes, r)

	onNIC := board.HandlersOnBoard()
	board.Register(OpDiff, onNIC, r.onDiff)
	board.Register(OpPageReq, onNIC, r.onPageReq)
	board.Register(OpPageReply, onNIC, r.onPageReply)
	board.Register(OpLockAcq, onNIC, r.onLockAcq)
	board.Register(OpLockGrant, onNIC, r.onLockGrant)
	board.Register(OpLockRel, onNIC, r.onLockRel)
	board.Register(OpBarEnter, onNIC, r.onBarEnter)
	board.Register(OpBarRelease, onNIC, r.onBarRelease)
	board.Register(OpTaskReq, onNIC, r.onTaskReq)
	board.Register(OpTaskReply, onNIC, r.onTaskReply)
	board.Register(OpTaskPush, onNIC, r.onTaskPush)
	board.Register(OpUpdate, onNIC, r.onUpdate)
	board.MapPages(SharedBase, g.Pages()*g.cfg.PageBytes)
	return r
}

// Node reports this runtime's node id.
func (r *Runtime) Node() int { return r.node }

// Poke writes a shared word directly into this node's memory image,
// outside simulated time; used to preload initial data.
func (r *Runtime) Poke(idx int, v uint64) { r.data[idx] = v }

// PokeF64 is Poke for float64 values.
func (r *Runtime) PokeF64(idx int, v float64) { r.data[idx] = f64bits(v) }

// Peek reads a shared word directly from this node's memory image,
// outside simulated time; meaningful on the word's home node after the
// application's final barrier.
func (r *Runtime) Peek(idx int) uint64 { return r.data[idx] }

// PeekF64 is Peek for float64 values.
func (r *Runtime) PeekF64(idx int) float64 { return f64from(r.data[idx]) }

// vaddrOfPage returns the host virtual address of a shared page.
func (r *Runtime) vaddrOfPage(page int32) uint64 {
	return SharedBase + uint64(page)*uint64(r.cfg.PageBytes)
}

// vaddrOfWord returns the host virtual address of a shared word.
func (r *Runtime) vaddrOfWord(idx int) uint64 {
	return SharedBase + uint64(idx)*uint64(r.cfg.WordBytes)
}

// pageOf returns the page holding a word index.
func (r *Runtime) pageOf(idx int) int32 { return int32(idx / r.G.pageWords) }

// home reports whether this node is the page's home.
func (r *Runtime) home(page int32) bool { return r.G.homeOf(page) == r.node }

// owner reports whether this node currently manages the page: the
// static home under central ownership, the dynamic owner (initially
// the home, migrating on write faults) under distributed ownership.
func (r *Runtime) owner(page int32) bool {
	if r.distributed {
		return r.owned[page]
	}
	return r.home(page)
}

// probOwnerOf is this node's best guess at the page's current owner
// (distributed ownership). Unvisited pages default to the static home.
func (r *Runtime) probOwnerOf(page int32) int {
	if o, ok := r.probOwner[page]; ok {
		if o == r.node && !r.owned[page] {
			panic(fmt.Sprintf("dsm: node %d probable-owner pointer for page %d is itself but it is not the owner",
				r.node, page))
		}
		return o
	}
	return r.G.homeOf(page)
}

// peer returns the runtime of another node (the simulator's stand-in
// for "the bytes that would be on the wire").
func (r *Runtime) peer(n int) *Runtime { return r.G.nodes[n] }

// copyPageFrom copies the serving node's current words for page into
// this node's region (the serving node is the static home under
// central ownership, the current owner under distributed). Run-ahead
// caveat documented in DESIGN.md: contents may be fresher than the
// request timestamp, which release consistency tolerates for
// data-race-free programs.
func (r *Runtime) copyPageFrom(page int32, from int) {
	h := r.peer(from)
	lo := int(page) * r.G.pageWords
	hi := lo + r.G.pageWords
	if hi > len(r.data) {
		hi = len(r.data)
	}
	copy(r.data[lo:hi], h.data[lo:hi])
}

// newIntervalBundleSince returns this node's known intervals newer than
// the given vector clock, per node, in a deterministic order. Because
// log[n] is contiguous (log[n][k].Idx == k+1), the result is a suffix
// per node — O(len(output)), which matters: bundles are computed on
// every grant, release and barrier.
func (r *Runtime) newIntervalBundleSince(vc []int32) []*Interval {
	var out []*Interval
	for n := range r.log {
		start := 0
		if n < len(vc) {
			start = int(vc[n])
		}
		if start < len(r.log[n]) {
			out = append(out, r.log[n][start:]...)
		}
	}
	return out
}

// absorbIntervals merges foreign intervals into the log and vector
// clock, returning the ones that were actually new. Under central
// ownership every bundle splices contiguously by construction (the
// fixed managers' clocks only grow), so a gap is a protocol bug and
// panics. Under distributed ownership a rotating barrier manager can
// legitimately receive a bundle ahead of its own release from the
// previous barrier; the ahead-of-gap suffix is parked and spliced when
// the release lands. Applying those write notices late is LRC-sound:
// the manager only needs them at its next acquire, and its own
// release — which closes the gap — precedes its own barrier enter.
func (r *Runtime) absorbIntervals(ivs []*Interval) []*Interval {
	var fresh []*Interval
	for _, iv := range ivs {
		if iv.Idx <= r.vc[iv.Node] {
			continue
		}
		if want := int32(len(r.log[iv.Node])) + 1; iv.Idx != want {
			if !r.distributed {
				panic(fmt.Sprintf("dsm: node %d got interval (%d,%d), want idx %d — bundle not contiguous",
					r.node, iv.Node, iv.Idx, want))
			}
			r.parkInterval(iv)
			continue
		}
		r.log[iv.Node] = append(r.log[iv.Node], iv)
		r.vc[iv.Node] = iv.Idx
		fresh = append(fresh, iv)
		fresh = append(fresh, r.spliceParked(iv.Node)...)
	}
	return fresh
}

// parkInterval holds an interval whose log prefix has not arrived yet.
func (r *Runtime) parkInterval(iv *Interval) {
	if r.pendingIv == nil {
		r.pendingIv = make(map[int]map[int32]*Interval)
	}
	pend := r.pendingIv[iv.Node]
	if pend == nil {
		pend = make(map[int32]*Interval)
		r.pendingIv[iv.Node] = pend
	}
	pend[iv.Idx] = iv
	// A gap that never closes would wedge silently; the only legal gap
	// is one in-flight barrier release deep, so a runaway park means a
	// protocol bug.
	if len(pend) > 4*len(r.G.nodes)+64 {
		panic(fmt.Sprintf("dsm: node %d parked %d intervals from node %d — gap never closed",
			r.node, len(pend), iv.Node))
	}
}

// spliceParked appends any parked intervals for node n that are now
// contiguous with the log, returning them in index order.
func (r *Runtime) spliceParked(n int) []*Interval {
	pend := r.pendingIv[n]
	if len(pend) == 0 {
		return nil
	}
	var out []*Interval
	for {
		next := r.vc[n] + 1
		iv, ok := pend[next]
		if !ok {
			break
		}
		delete(pend, next)
		r.log[n] = append(r.log[n], iv)
		r.vc[n] = next
		out = append(out, iv)
	}
	if len(pend) == 0 {
		delete(r.pendingIv, n)
	}
	return out
}

// applyWriteNotices processes the pages named by fresh intervals. A
// node ignores notices about its own writes. Non-home pages are
// invalidated; for its own home pages the node records that diffs are
// in flight (pageHomeStale) so its next access waits for them — the
// home copy stays mapped but must not be read-modify-written early.
func (r *Runtime) applyWriteNotices(ivs []*Interval) int {
	invalidated := 0
	for _, iv := range ivs {
		if iv.Node == r.node {
			continue
		}
		for _, p := range iv.Pages {
			need := r.needs[p]
			if need == nil {
				need = make(map[int]int32)
				r.needs[p] = need
			}
			if iv.Idx > need[iv.Node] {
				need[iv.Node] = iv.Idx
			}
			if p == DebugPage {
				fmt.Printf("DSMDBG t=%d node=%d notice page=%d writer=%d idx=%d state=%d\n",
					r.k.Now(), r.node, p, iv.Node, iv.Idx, r.state[p])
			}
			if r.owner(p) || (r.cfg.UpdateProtocol && r.state[p] != pageInvalid) {
				// The copy stays mapped: the home always, and any copy
				// holder under the update protocol (the diff is on its
				// way). Accesses stall until the diffs land.
				if hs := r.homeState(p); !hs.satisfiedNeeds(need) {
					r.state[p] = pageHomeStale
				}
				continue
			}
			if r.state[p] == pageValid {
				r.state[p] = pageInvalid
				invalidated++
				r.Stats.Invalidates++
			}
		}
	}
	return invalidated
}

// satisfiedNeeds reports whether every (writer, interval) requirement
// has been applied at this home.
func (hs *pageHome) satisfiedNeeds(need map[int]int32) bool {
	for w, idx := range need {
		if hs.applied[w] < idx {
			return false
		}
	}
	return true
}

// homeState returns (creating on demand) the home bookkeeping for page.
func (r *Runtime) homeState(page int32) *pageHome {
	hs := r.homes[page]
	if hs == nil {
		hs = &pageHome{applied: make([]int32, len(r.vc))}
		r.homes[page] = hs
	}
	return hs
}

// satisfied reports whether the home has applied every diff the
// request requires.
func (hs *pageHome) satisfied(req *pageReqMsg) bool {
	for _, need := range req.need {
		if hs.applied[need.Node] < need.Idx {
			return false
		}
	}
	return true
}

package dsm

import "testing"

// Regression for the rotating-barrier-manager race (seen first at 64
// nodes on the Clos in FD1): a participant's barrier enter — whose
// bundle starts just past the previous manager's release clock — can
// reach the next barrier's manager before that manager's own release
// from the previous barrier. Under distributed ownership the
// ahead-of-gap intervals must park and splice once the release lands;
// under central ownership a gap is impossible and must still panic.

func parkRuntime(nodes int, distributed bool) *Runtime {
	return &Runtime{
		node:        nodes - 1,
		distributed: distributed,
		vc:          make([]int32, nodes),
		log:         make([][]*Interval, nodes),
		G:           &Globals{nodes: make([]*Runtime, nodes)},
	}
}

func TestAbsorbParksAheadOfGap(t *testing.T) {
	r := parkRuntime(3, true)
	iv2 := &Interval{Node: 1, Idx: 2, Pages: []int32{7}}
	iv3 := &Interval{Node: 1, Idx: 3, Pages: []int32{9}}

	// The enter bundle arrives first: nothing splices, nothing is lost.
	if fresh := r.absorbIntervals([]*Interval{iv2, iv3}); len(fresh) != 0 {
		t.Fatalf("ahead-of-gap absorb returned %d fresh intervals, want 0", len(fresh))
	}
	if r.vc[1] != 0 || len(r.log[1]) != 0 {
		t.Fatalf("vc/log advanced past a gap: vc=%d log=%d", r.vc[1], len(r.log[1]))
	}

	// The in-flight release lands: the parked run splices in order and
	// every interval is reported fresh exactly once.
	iv1 := &Interval{Node: 1, Idx: 1, Pages: []int32{3}}
	fresh := r.absorbIntervals([]*Interval{iv1})
	if len(fresh) != 3 {
		t.Fatalf("gap-closing absorb returned %d fresh intervals, want 3", len(fresh))
	}
	for i, iv := range fresh {
		if iv.Idx != int32(i+1) {
			t.Fatalf("fresh[%d].Idx = %d, want %d", i, iv.Idx, i+1)
		}
	}
	if r.vc[1] != 3 || len(r.log[1]) != 3 {
		t.Fatalf("after splice vc=%d log=%d, want 3/3", r.vc[1], len(r.log[1]))
	}
	if len(r.pendingIv) != 0 {
		t.Fatalf("pendingIv not drained: %v", r.pendingIv)
	}

	// Re-absorbing the same bundle is a no-op.
	if fresh := r.absorbIntervals([]*Interval{iv2, iv3}); len(fresh) != 0 {
		t.Fatalf("duplicate absorb returned %d fresh intervals, want 0", len(fresh))
	}
}

func TestAbsorbGapPanicsUnderCentral(t *testing.T) {
	r := parkRuntime(3, false)
	defer func() {
		if recover() == nil {
			t.Fatal("central-ownership gap did not panic")
		}
	}()
	r.absorbIntervals([]*Interval{{Node: 1, Idx: 2}})
}

package dsm_test

import (
	"testing"
	"testing/quick"

	"cni/internal/config"
	"cni/internal/dsm"
	"cni/internal/sim"
)

// The protocol fuzzer: random SPMD programs whose final state is
// order-independent, so any lost update, stale read or broken
// happens-before shows up as a wrong sum. Each program is a sequence
// of rounds; within a round every node performs random operations
// (writes to its private stripe, lock-protected commutative increments
// of shared counters), and a global barrier closes the round.

type fuzzProgram struct {
	Nodes     uint8
	PageShift uint8
	Rounds    uint8
	Ops       []uint16 // op stream, interpreted per node per round
	Update    bool
	Standard  bool
	// Distributed selects the probable-owner-chain ownership
	// organization. It forces Update off: eager-update copysets are
	// pinned at static homes and the combination does not validate.
	Distributed bool
}

const (
	fuzzWords    = 2048
	fuzzCounters = 16
)

// runFuzz executes the program and returns (counter deltas applied,
// ok). Expected counter values are accumulated host-side and compared
// after the run.
func runFuzz(t *testing.T, fp fuzzProgram) bool {
	t.Helper()
	nodes := int(fp.Nodes)%4 + 2   // 2..5
	rounds := int(fp.Rounds)%4 + 1 // 1..4
	pageBytes := 512 << (int(fp.PageShift) % 3)

	kind := config.NICCNI
	if fp.Standard {
		kind = config.NICStandard
	}
	cfg := config.ForNIC(kind)
	cfg.PageBytes = pageBytes
	cfg.UpdateProtocol = fp.Update
	if fp.Distributed {
		cfg.DSMOwnership = config.DSMDistributed
		cfg.UpdateProtocol = false
	}

	expectCounter := make([]uint64, fuzzCounters)
	expectStripe := make(map[int]uint64)

	// Pre-plan each node's operations so expectations are computed
	// deterministically host-side.
	type op struct {
		kind    int // 0 = stripe write, 1 = locked counter increment, 2 = read
		word    int
		val     uint64
		counter int
	}
	plan := make([][][]op, nodes) // [node][round][]op
	rng := sim.NewRNG(uint64(len(fp.Ops))*31 + uint64(fp.Nodes))
	stripe := fuzzWords / 2 / nodes
	oi := 0
	nextOp := func() uint16 {
		if len(fp.Ops) == 0 {
			return 0
		}
		v := fp.Ops[oi%len(fp.Ops)]
		oi++
		return v
	}
	for n := 0; n < nodes; n++ {
		plan[n] = make([][]op, rounds)
		for r := 0; r < rounds; r++ {
			nops := int(nextOp())%6 + 1
			for k := 0; k < nops; k++ {
				sel := nextOp()
				switch sel % 3 {
				case 0: // write own stripe (second half of the region)
					w := fuzzWords/2 + n*stripe + int(sel/3)%stripe
					v := rng.Uint64()
					plan[n][r] = append(plan[n][r], op{kind: 0, word: w, val: v})
					expectStripe[w] = v // later rounds overwrite
				case 1: // locked increment of a shared counter
					c := int(sel/3) % fuzzCounters
					plan[n][r] = append(plan[n][r], op{kind: 1, counter: c})
					expectCounter[c]++
				case 2: // read a random shared word (must not wedge)
					plan[n][r] = append(plan[n][r], op{kind: 2, word: int(sel/3) % fuzzWords})
				}
			}
		}
	}

	c := mustCluster(&cfg, nodes, func(g *dsm.Globals) { g.Alloc(fuzzWords) })
	c.Run(func(w *dsm.Worker) {
		for r := 0; r < rounds; r++ {
			for _, o := range plan[w.Node()][r] {
				switch o.kind {
				case 0:
					w.WriteU64(o.word, o.val)
				case 1:
					w.Lock(100 + o.counter)
					w.WriteU64(o.counter, w.ReadU64(o.counter)+1)
					w.Unlock(100 + o.counter)
				case 2:
					w.ReadU64(o.word)
				}
			}
			w.Barrier(r)
		}
	})

	for ci, want := range expectCounter {
		if got := c.ReadU64(ci); got != want {
			t.Logf("program %+v: counter %d = %d, want %d", fp, ci, got, want)
			return false
		}
	}
	// Stripe writes: the last round's value must be visible at the home.
	// (Each stripe word is written by exactly one node, so "last write"
	// is well defined across rounds.)
	for wd, want := range expectStripe {
		if got := c.ReadU64(wd); got != want {
			t.Logf("program %+v: stripe word %d = %d, want %d", fp, wd, got, want)
			return false
		}
	}
	return true
}

func TestProtocolFuzz(t *testing.T) {
	cfgq := &quick.Config{MaxCount: 60}
	if testing.Short() {
		cfgq.MaxCount = 10
	}
	f := func(fp fuzzProgram) bool { return runFuzz(t, fp) }
	if err := quick.Check(f, cfgq); err != nil {
		t.Fatal(err)
	}
}

func TestProtocolFuzzTinyPages(t *testing.T) {
	// Tiny pages maximize cross-page protocol traffic and multi-writer
	// merges; run a few fixed heavy programs on both protocols.
	for _, update := range []bool{false, true} {
		ok := runFuzz(t, fuzzProgram{
			Nodes: 3, PageShift: 0, Rounds: 3, Update: update,
			Ops: []uint16{9, 100, 2001, 302, 4203, 55, 1206, 77, 2408, 999,
				1310, 211, 3412, 413, 514, 6015, 716, 817},
		})
		if !ok {
			t.Fatalf("heavy program failed (update=%v)", update)
		}
	}
}

package dsm_test

import "testing"

// FuzzOwnership drives random order-independent SPMD programs (the
// same shape as the testing/quick protocol fuzzer) through the
// distributed-ownership organization: probable-owner chains,
// forwarding, migration, and the funnel parking rule all get exercised
// by the stripe writes (write-first faults migrate) and the locked
// counters (read faults chase the current owner). Any lost update or
// stale read shows up as a wrong sum; a non-converging chain trips the
// hop-budget panic. CI runs this as the dsm leg of the fuzz smoke.
func FuzzOwnership(f *testing.F) {
	f.Add(uint8(2), uint8(0), uint8(2), []byte{9, 100, 32, 77, 210, 3}, false)
	f.Add(uint8(3), uint8(1), uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}, false)
	f.Add(uint8(5), uint8(2), uint8(4), []byte{255, 254, 128, 64, 33, 17, 99, 200}, true)
	f.Fuzz(func(t *testing.T, nodes, pageShift, rounds uint8, raw []byte, standard bool) {
		ops := make([]uint16, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			ops = append(ops, uint16(raw[i])<<8|uint16(raw[i+1]))
		}
		fp := fuzzProgram{
			Nodes: nodes, PageShift: pageShift, Rounds: rounds,
			Ops: ops, Standard: standard, Distributed: true,
		}
		if !runFuzz(t, fp) {
			t.Fatalf("distributed-ownership program diverged: %+v", fp)
		}
	})
}

package dsm_test

import (
	"testing"

	"cni/internal/cluster"
	"cni/internal/config"
	"cni/internal/dsm"
)

// Tests for the distributed-ownership protocol (Config.DSMOwnership =
// "distributed"): per-page probable-owner chains, forwarding, and
// ownership migration on write faults.

// ownershipWorkload rotates writers over the shared stripes so page
// ownership wants to chase the writes: in round r node j writes the
// stripe of node (j+r)%n, takes a locked turn on a shared counter, and
// barriers. Data-race-free, so central and distributed ownership must
// compute identical memory.
func ownershipWorkload(words, rounds int) cluster.App {
	return func(w *dsm.Worker) {
		n := w.Nodes()
		stripe := words / 2 / n
		for r := 0; r < rounds; r++ {
			target := (w.Node() + r) % n
			lo := words/2 + target*stripe
			for i := lo; i < lo+stripe; i += 3 {
				w.WriteU64(i, uint64(r)<<32|uint64(w.Node())<<16|uint64(i))
			}
			w.Lock(9)
			w.WriteU64(1, w.ReadU64(1)+1)
			w.Unlock(9)
			w.Barrier(r)
		}
	}
}

// TestDistributedMatchesCentral: the ownership organization moves
// protocol messages around but never changes what the program
// computes. Whole-memory equality across the two modes, on all three
// interfaces.
func TestDistributedMatchesCentral(t *testing.T) {
	const words, rounds = 4096, 6
	for _, kind := range []config.NICKind{config.NICCNI, config.NICOsiris, config.NICStandard} {
		for _, n := range []int{2, 4, 5} {
			central := config.ForNIC(kind)
			distributed := config.ForNIC(kind)
			distributed.DSMOwnership = config.DSMDistributed

			cc := mustCluster(&central, n, func(g *dsm.Globals) { g.Alloc(words) })
			cc.Run(ownershipWorkload(words, rounds))
			cd := mustCluster(&distributed, n, func(g *dsm.Globals) { g.Alloc(words) })
			rd := cd.Run(ownershipWorkload(words, rounds))

			for idx := 0; idx < words; idx++ {
				if a, b := cc.ReadU64(idx), cd.ReadU64(idx); a != b {
					t.Fatalf("%v n=%d word %d: central %d vs distributed %d", kind, n, idx, a, b)
				}
			}
			if n > 1 && rd.DSM.Migrations == 0 {
				t.Fatalf("%v n=%d: rotating writers never migrated ownership", kind, n)
			}
		}
	}
}

// TestOwnershipMigratesOnWriteFault: a clean write fault moves the
// ownership (and thus the authoritative copy) to the writer.
func TestOwnershipMigratesOnWriteFault(t *testing.T) {
	cfg := config.ForNIC(config.NICCNI)
	cfg.DSMOwnership = config.DSMDistributed
	c := mustCluster(&cfg, 2, func(g *dsm.Globals) { g.Alloc(1024) })
	res := c.Run(func(w *dsm.Worker) {
		if w.Node() == 1 {
			for i := 0; i < 256; i++ { // exactly page 0, homed at node 0
				w.WriteU64(i, uint64(i)+7)
			}
		}
		w.Barrier(0)
	})
	if res.DSM.Migrations == 0 {
		t.Fatal("write fault on a clean remote page did not migrate ownership")
	}
	if owner := c.G.OwnerOf(0); owner != 1 {
		t.Fatalf("page 0 owned by node %d after node 1's write burst, want 1", owner)
	}
	if c.G.Migrated() == 0 {
		t.Fatal("Migrated() reports no page away from its static home")
	}
	// Post-run reads must follow the owner, not the static home.
	for i := 0; i < 256; i += 31 {
		if got := c.ReadU64(i); got != uint64(i)+7 {
			t.Fatalf("word %d = %d after migration, want %d", i, got, uint64(i)+7)
		}
	}
	// No diff should have been needed: the writer owned the page by the
	// time it released.
	if res.PerNode[1].DSM.Migrations != 1 {
		t.Fatalf("node 1 recorded %d migrations, want 1", res.PerNode[1].DSM.Migrations)
	}
}

// TestProbableOwnerChainsForward: migration happens on write-first
// faults (a read-then-write twins on the valid copy instead, the
// multiple-writer LRC path), so rotate a write-only burst over one
// page. After the first migration the static home's pointer is stale
// and later requesters — who all start at the static home — must be
// forwarded down the probable-owner chain.
func TestProbableOwnerChainsForward(t *testing.T) {
	cfg := config.ForNIC(config.NICCNI)
	cfg.DSMOwnership = config.DSMDistributed
	const n = 4
	c := mustCluster(&cfg, n, func(g *dsm.Globals) { g.Alloc(1024) })
	const rounds = 3 * n
	res := c.Run(func(w *dsm.Worker) {
		for r := 0; r < rounds; r++ {
			if w.Node() == r%n {
				for i := 256; i < 264; i++ { // page 1, homed at node 1
					w.WriteU64(i, uint64(r)<<16|uint64(i))
				}
			}
			w.Barrier(r)
		}
	})
	if res.DSM.Migrations < uint64(n) {
		t.Fatalf("rotating write bursts migrated ownership %d times, want >= %d",
			res.DSM.Migrations, n)
	}
	if res.DSM.Forwards == 0 {
		t.Fatal("stale probable-owner pointers produced no chain forwards")
	}
	if res.DSM.Chain.Total() == 0 {
		t.Fatal("no completed fetch observed a chain length")
	}
	if res.DSM.MeanChain() <= 0 {
		t.Fatalf("mean chain length %v with %d forwards", res.DSM.MeanChain(), res.DSM.Forwards)
	}
	for i := 256; i < 264; i++ {
		if got, want := c.ReadU64(i), uint64(rounds-1)<<16|uint64(i); got != want {
			t.Fatalf("word %d = %#x, want %#x (last round's writer)", i, got, want)
		}
	}
}

// TestChainConvergenceUnderFaults: cell loss and reorder delay and
// retransmit protocol messages, so requests hit stale owners and
// chains stretch — but every chain must still converge (a
// non-converging chain panics via the hop budget) and the memory must
// still be exact.
func TestChainConvergenceUnderFaults(t *testing.T) {
	const words, rounds, n = 2048, 5, 4
	for _, kind := range []config.NICKind{config.NICCNI, config.NICStandard} {
		for seed := uint64(1); seed <= 3; seed++ {
			cfg := config.ForNIC(kind)
			cfg.DSMOwnership = config.DSMDistributed
			cfg.CellLossRate = 0.01
			cfg.ReorderWindow = 4
			cfg.FaultSeed = seed

			c := mustCluster(&cfg, n, func(g *dsm.Globals) { g.Alloc(words) })
			res := c.Run(ownershipWorkload(words, rounds))
			if res.Rel.Retransmits == 0 {
				t.Fatalf("%v seed %d: fault injection produced no retransmits", kind, seed)
			}

			// Reference run: same program, central ownership, no faults.
			ref := config.ForNIC(kind)
			cr := mustCluster(&ref, n, func(g *dsm.Globals) { g.Alloc(words) })
			cr.Run(ownershipWorkload(words, rounds))
			for idx := 0; idx < words; idx++ {
				if a, b := cr.ReadU64(idx), c.ReadU64(idx); a != b {
					t.Fatalf("%v seed %d word %d: reference %d vs faulted-distributed %d",
						kind, seed, idx, a, b)
				}
			}
		}
	}
}

// TestDistributedDeterminism: same config, same program — identical
// wall time and identical per-node protocol counters.
func TestDistributedDeterminism(t *testing.T) {
	const words, rounds, n = 2048, 4, 3
	cfg := config.ForNIC(config.NICCNI)
	cfg.DSMOwnership = config.DSMDistributed
	run := func() *cluster.Result {
		c := mustCluster(&cfg, n, func(g *dsm.Globals) { g.Alloc(words) })
		return c.Run(ownershipWorkload(words, rounds))
	}
	a, b := run(), run()
	if a.Time != b.Time {
		t.Fatalf("wall time %d vs %d across identical runs", a.Time, b.Time)
	}
	for i := range a.PerNode {
		if a.PerNode[i].DSM != b.PerNode[i].DSM {
			t.Fatalf("node %d DSM stats differ:\n%+v\nvs\n%+v", i, a.PerNode[i].DSM, b.PerNode[i].DSM)
		}
	}
}

// TestValidateRejectsUpdateWithDistributed: the eager-update protocol's
// copysets are pinned at static homes and do not migrate.
func TestValidateRejectsUpdateWithDistributed(t *testing.T) {
	cfg := config.Default()
	cfg.UpdateProtocol = true
	cfg.DSMOwnership = config.DSMDistributed
	if err := cfg.Validate(); err == nil {
		t.Fatal("UpdateProtocol + distributed ownership validated")
	}
	cfg.DSMOwnership = "bogus"
	cfg.UpdateProtocol = false
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown ownership mode validated")
	}
}

package kv

import (
	"bytes"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Kind: Get, Key: 42, Conn: 7, ID: 99, From: 3},
		{Kind: Set, Tenant: 5, Key: 1 << 60, Conn: 0, ID: 1, From: 12, Deadline: 123456, ValBytes: 2048},
		{Kind: Del, Tenant: 65535, Key: 0, ID: 1 << 40, From: 1023},
	}
	for _, r := range reqs {
		raw := EncodeRequest(nil, &r)
		if len(raw) != ReqBytes {
			t.Fatalf("encoded %d bytes, want %d", len(raw), ReqBytes)
		}
		got, err := DecodeRequest(raw)
		if err != nil {
			t.Fatalf("decode %+v: %v", r, err)
		}
		if got != r {
			t.Fatalf("round trip: got %+v, want %+v", got, r)
		}
		if !bytes.Equal(EncodeRequest(nil, &got), raw) {
			t.Fatalf("re-encode not byte-identical for %+v", r)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good := EncodeRequest(nil, &Request{Kind: Set, Key: 9, ValBytes: 64})
	cases := []struct {
		name string
		b    []byte
	}{
		{"empty", nil},
		{"short", good[:39]},
		{"long", append(append([]byte{}, good...), 0)},
		{"magic", append([]byte{0x00}, good[1:]...)},
		{"kind", func() []byte { b := append([]byte{}, good...); b[1] = 3; return b }()},
		{"value on GET", func() []byte { b := append([]byte{}, good...); b[1] = byte(Get); return b }()},
		{"huge value", func() []byte {
			b := append([]byte{}, good...)
			b[4], b[5], b[6], b[7] = 0xff, 0xff, 0xff, 0x7f
			return b
		}()},
	}
	for _, c := range cases {
		if _, err := DecodeRequest(c.b); err == nil {
			t.Errorf("%s: decode accepted malformed input", c.name)
		}
	}
}

// FuzzKVDecode feeds arbitrary bytes to the request decoder: it must
// never panic, and anything it accepts must round-trip byte-exactly
// through the encoder (so the board filter and the host always parse
// the same request).
func FuzzKVDecode(f *testing.F) {
	f.Add(EncodeRequest(nil, &Request{Kind: Get, Key: 7, ID: 3, From: 1}))
	f.Add(EncodeRequest(nil, &Request{Kind: Set, Key: 1, ValBytes: 4096, Deadline: 1000}))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x4B}, ReqBytes))
	f.Fuzz(func(t *testing.T, b []byte) {
		r, err := DecodeRequest(b)
		if err != nil {
			return
		}
		raw := EncodeRequest(nil, &r)
		if !bytes.Equal(raw, b) {
			t.Fatalf("accepted input does not round-trip: %x -> %+v -> %x", b, r, raw)
		}
	})
}

// Package kv is a memcached-style key-value service built on the same
// Application Device Channel transport as internal/rpc: GET/SET/DELETE
// requests with a flat 40-byte wire encoding, per-node key-space
// sharding (key mod servers, decided by the client), bounded server
// work queues with admission control derived from free-queue depth,
// and per-request latency measured at the client from the scheduled
// issue time (coordination-omission-free under open loop).
//
// Two things distinguish it from plain RPC serving:
//
// First, multi-tenant QoS (internal/tenant). Every request names its
// tenant; a serving node gives each tenant its own device channel —
// its own free-queue descriptors, preposted at setup — plus a
// token-bucket rate limit and a strict/weighted-fair scheduler slot,
// all enforced at the existing enqueue-time protection point where an
// arrival claims a descriptor. With isolation off the same arrivals
// share one channel, one bucket-less pool and one FIFO, which is the
// ablation the FS2 experiment measures.
//
// Second, the NIC-resident response cache (cache.go). On the CNI a
// serving board keeps recently transmitted GET responses pinned in the
// Message Cache and screens arriving requests with a board filter
// (nic.RegisterFilter): a repeat GET whose response is still pinned is
// answered entirely by the receive processor — no DMA, no interrupt,
// no host cycles, the serving-era analogue of the paper's
// protocol-processing-on-the-board claim. The capability is gated on
// the datapath predicates (HandlersOnBoard) plus the
// config.NICResponseCache knob, so OSIRIS and the standard interface
// always pay the host path.
package kv

import (
	"fmt"

	"cni/internal/adc"
	"cni/internal/config"
	"cni/internal/nic"
	"cni/internal/rpc"
	"cni/internal/sim"
	"cni/internal/tenant"
)

// Protocol operations (the 0x700 block; rpc holds 0x600).
const (
	opRequest  uint32 = 0x700
	opResponse uint32 = 0x701
	opDone     uint32 = 0x702
)

// Response flags.
const (
	flagOK uint32 = iota
	flagNotFound
	flagRejected
	flagThrottled
	flagExpired
)

// HeapBase is the virtual base of each node's pinned KV heap,
// disjoint from the RPC heap at 1<<30. Page layout: page 0 is the
// arrival window, pages 1..63 the per-connection request buffers,
// page 64 the scratch response buffer, and pages 65.. the response
// cache slots on a serving node.
const HeapBase uint64 = 1 << 31

const (
	rxPage      = 0
	reqPage0    = 1
	reqPages    = 63
	scratchPage = 64
	slotPage0   = 65
)

// Outcome is the terminal state of one call.
type Outcome int

// The call outcomes.
const (
	OK Outcome = iota
	NotFound
	Rejected
	Throttled
	Expired
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case NotFound:
		return "notfound"
	case Rejected:
		return "rejected"
	case Throttled:
		return "throttled"
	case Expired:
		return "expired"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Stats counts one node's KV activity (client and server roles). It is
// comparable, like rpc.Stats, so determinism tests can use ==.
type Stats struct {
	// Client side.
	Issued       uint64
	Completed    uint64 // OK + NotFound responses received
	Rejected     uint64
	Throttled    uint64
	Expired      uint64
	DeadlineMiss uint64

	// Server side.
	Served     uint64
	FreeDry    uint64
	QueueFull  uint64
	Delayed    uint64
	Malformed  uint64 // arrivals whose request failed to decode
	QueuePeak  int
	ParkedPeak int

	// NIC-resident response cache (serving CNI boards only).
	BoardServed  uint64 // GETs answered by the board filter
	BoardMissed  uint64 // GETs the filter passed to the host
	Inserts      uint64 // responses retained by the board
	CacheEvicts  uint64 // LRU evictions under the pin budget
	WriteInvals  uint64 // entries killed by an arriving SET/DELETE
	InsertVetoes uint64 // inserts refused during a write window
	PinFails     uint64 // inserts refused for want of an MC frame

	// Lat is the all-tenants OK/NotFound latency histogram; HitLat and
	// HostLat split GET latency by who served it.
	Lat     rpc.Hist
	HitLat  rpc.Hist
	HostLat rpc.Hist
}

// Merge folds o into s (cluster-level aggregation).
func (s *Stats) Merge(o Stats) {
	s.Issued += o.Issued
	s.Completed += o.Completed
	s.Rejected += o.Rejected
	s.Throttled += o.Throttled
	s.Expired += o.Expired
	s.DeadlineMiss += o.DeadlineMiss
	s.Served += o.Served
	s.FreeDry += o.FreeDry
	s.QueueFull += o.QueueFull
	s.Delayed += o.Delayed
	s.Malformed += o.Malformed
	if o.QueuePeak > s.QueuePeak {
		s.QueuePeak = o.QueuePeak
	}
	if o.ParkedPeak > s.ParkedPeak {
		s.ParkedPeak = o.ParkedPeak
	}
	s.BoardServed += o.BoardServed
	s.BoardMissed += o.BoardMissed
	s.Inserts += o.Inserts
	s.CacheEvicts += o.CacheEvicts
	s.WriteInvals += o.WriteInvals
	s.InsertVetoes += o.InsertVetoes
	s.PinFails += o.PinFails
	s.Lat.Merge(o.Lat)
	s.HitLat.Merge(o.HitLat)
	s.HostLat.Merge(o.HostLat)
}

// reqPDU is the wire payload of a request: the encoded bytes, plus the
// decode the first consumer (board filter or host handler) produced so
// the message is parsed once per receiving node.
type reqPDU struct {
	raw []byte
	req *Request
}

// respMsg is the wire payload of a response.
type respMsg struct {
	conn    uint32
	id      uint64
	version uint64
	tenant  uint16
	flag    uint32
	board   bool // served by the NIC-resident cache
}

// call is one outstanding client request.
type call struct {
	issued   sim.Time
	deadline sim.Time
	kind     Kind
	tenant   int
	waiter   *sim.Proc
	outcome  uint32
	version  uint64
	done     bool
}

// parkedReq is one request held back by the Delay policy.
type parkedReq struct {
	req   *Request
	class int
	holds bool
}

// storeVal is one key's state at its home server.
type storeVal struct {
	version uint64
	live    bool
}

// Engine is the cluster-wide KV fabric state: one per simulation,
// attached to every board (cluster.New does this).
type Engine struct {
	cfg   *config.Config
	k     *sim.Kernel
	nodes []*Node
}

// NewEngine returns an engine for a simulation using cfg on kernel k.
func NewEngine(cfg *config.Config, k *sim.Kernel) *Engine {
	return &Engine{cfg: cfg, k: k}
}

// Node returns the endpoint attached for node i.
func (e *Engine) Node(i int) *Node { return e.nodes[i] }

// Attach registers the KV protocol handlers on b and returns the
// node's endpoint. Registration costs nothing at run time; heap
// mapping, channel setup and cache state appear only when a role is
// configured.
func (e *Engine) Attach(b *nic.Board) *Node {
	n := &Node{
		e:       e,
		b:       b,
		node:    b.Node(),
		pending: make(map[uint64]*call),
	}
	b.Register(opRequest, false, n.onRequest)
	b.Register(opResponse, false, n.onResponse)
	b.Register(opDone, false, n.onDone)
	e.nodes = append(e.nodes, n)
	return n
}

// ServerConfig sizes one node's serving state.
type ServerConfig struct {
	// WorkQueue bounds the per-tenant work queue (the shared queue with
	// isolation off).
	WorkQueue int
	// FreeBufs is the total receive-buffer budget; with isolation on it
	// is split evenly across the tenant channels (min 1 each).
	FreeBufs int
	// ServiceGet / ServiceSet are the CPU costs of serving one GET /
	// one SET-or-DELETE, in cycles.
	ServiceGet sim.Time
	ServiceSet sim.Time
	// ValueBytes is the GET response payload size.
	ValueBytes int
	// Policy is what to do with requests that cannot be admitted.
	Policy rpc.Policy
	// Clients is how many client nodes will send a done marker.
	Clients int
	// Tenants are the QoS classes; empty means one uncontracted tenant.
	Tenants []tenant.Class
	// Isolation turns the per-tenant machinery on: per-tenant device
	// channels and buffer splits, token buckets, and the
	// priority/weighted scheduler. Off, every arrival shares one
	// channel, one pool and one FIFO regardless of tenant.
	Isolation bool
}

// Node is one machine's KV endpoint.
type Node struct {
	e    *Engine
	node int
	b    *nic.Board

	mappedPages int

	// Server state.
	serving  bool
	sc       ServerConfig
	classes  []tenant.Class
	store    map[uint64]storeVal
	sched    *tenant.Sched[*Request]
	buckets  []tenant.Bucket
	credits  []int          // per scheduling class (per tenant when isolated)
	chans    []*adc.Channel // per-tenant device channels (nil slots off-ADC)
	parkedq  []parkedReq
	proc     *sim.Proc
	doneSeen int
	bcache   *boardCache

	// Client state.
	conns    []*Conn
	nextConn uint32
	nextID   uint64
	pending  map[uint64]*call
	waiter   *sim.Proc

	Stats Stats
	// Lat/HitLat/HostLat hold the exact samples behind the Stats
	// histograms; TStats/TLat are the per-tenant ledgers (client side:
	// outcomes and latency; sized by the largest tenant id seen).
	Lat     rpc.Latencies
	HitLat  rpc.Latencies
	HostLat rpc.Latencies
	TStats  []tenant.Stats
	TLat    []rpc.Latencies
}

// pageBytes is the node's page size.
func (n *Node) pageBytes() uint64 { return uint64(n.e.cfg.PageBytes) }

// mapHeap pins the first `pages` pages of the node's KV heap (device
// channel region + TLB entries where the board has them).
func (n *Node) mapHeap(pages int) {
	if pages <= n.mappedPages {
		return
	}
	n.b.MapPages(HeapBase+uint64(n.mappedPages)*n.pageBytes(),
		(pages-n.mappedPages)*int(n.pageBytes()))
	n.mappedPages = pages
}

func (n *Node) rxSlot() uint64      { return HeapBase + rxPage*n.pageBytes() }
func (n *Node) scratchSlot() uint64 { return HeapBase + scratchPage*n.pageBytes() }
func (n *Node) reqSlot(c *Conn) uint64 {
	return HeapBase + (reqPage0+uint64(c.id)%reqPages)*n.pageBytes()
}

// tenantAt clamps a wire tenant id to the configured classes.
func (n *Node) tenantAt(t uint16) int {
	if int(t) < len(n.classes) {
		return int(t)
	}
	return -1
}

// class maps a tenant to its scheduling class: itself under isolation,
// the one shared class otherwise.
func (n *Node) class(t int) int {
	if n.sc.Isolation {
		return t
	}
	return 0
}

// growTenant ensures the per-tenant ledgers cover tenant t.
func (n *Node) growTenant(t int) {
	for len(n.TStats) <= t {
		n.TStats = append(n.TStats, tenant.Stats{})
		n.TLat = append(n.TLat, rpc.Latencies{})
	}
}

// StartServer configures the node to serve requests. Call before the
// simulation runs; channels and free buffers are set up outside
// simulated time, the OSIRIS setup discipline.
func (n *Node) StartServer(sc ServerConfig) {
	if sc.WorkQueue <= 0 || sc.FreeBufs <= 0 {
		panic(fmt.Sprintf("kv: node %d server with work queue %d, free bufs %d",
			n.node, sc.WorkQueue, sc.FreeBufs))
	}
	if sc.ServiceGet <= 0 {
		sc.ServiceGet = 1
	}
	if sc.ServiceSet <= 0 {
		sc.ServiceSet = sc.ServiceGet
	}
	if len(sc.Tenants) == 0 {
		sc.Tenants = []tenant.Class{{ID: 0}}
	}
	n.sc = sc
	n.serving = true
	n.store = make(map[uint64]storeVal)
	n.classes = make([]tenant.Class, len(sc.Tenants))
	for i, c := range sc.Tenants {
		n.classes[i] = c.WithDefaults()
	}
	n.growTenant(len(n.classes) - 1)

	cps := float64(n.e.cfg.CPUFreqMHz) * 1e6
	if sc.Isolation {
		n.sched = tenant.NewSched[*Request](n.classes, sc.WorkQueue)
		n.buckets = make([]tenant.Bucket, len(n.classes))
		for i, c := range n.classes {
			n.buckets[i] = tenant.NewBucket(c, cps)
		}
		n.credits = make([]int, len(n.classes))
		per := sc.FreeBufs / len(n.classes)
		if per < 1 {
			per = 1
		}
		for i := range n.credits {
			n.credits[i] = per
		}
	} else {
		// One shared class: no buckets, one FIFO, one pool.
		n.sched = tenant.NewSched[*Request]([]tenant.Class{{ID: 0}}, sc.WorkQueue)
		n.buckets = nil
		n.credits = []int{sc.FreeBufs}
	}

	// The response cache and its slots, where the board can run it.
	nslots := 0
	if n.b.HandlersOnBoard() && n.e.cfg.NICResponseCache && n.b.MC != nil &&
		n.sc.ValueBytes <= int(n.pageBytes()) {
		frames := n.e.cfg.ResponseCacheFrames
		if frames <= 0 {
			frames = n.b.MC.Frames() / 2
		}
		if limit := n.b.MC.Frames() - 2; frames > limit {
			frames = limit
		}
		if frames > 0 {
			nslots = 4 * frames
			if nslots < 64 {
				nslots = 64
			}
			n.bcache = newBoardCache(n.b, HeapBase+slotPage0*n.pageBytes(),
				n.pageBytes(), frames, nslots)
			n.b.RegisterFilter(opRequest, n.boardFilter)
		}
	}
	n.mapHeap(slotPage0 + nslots)

	// Per-tenant device channels: the enqueue-time protection point,
	// one per tenant, each with its own preposted free descriptors.
	n.chans = make([]*adc.Channel, len(n.credits))
	if n.b.ADC != nil {
		region := adc.Region{Base: HeapBase, Len: uint64(slotPage0+nslots) * n.pageBytes()}
		for i := range n.chans {
			ch, err := n.b.ADC.Open(n.node, uint32(0x4B000000)|uint32(i), region)
			if err != nil {
				panic(fmt.Sprintf("kv: node %d opening tenant channel %d: %v", n.node, i, err))
			}
			n.chans[i] = ch
		}
	}
	for i, c := range n.credits {
		n.reconcileFree(i, c)
	}
}

// Preload installs key at version 1 in the serving node's store before
// the simulation runs (a pre-populated dataset, so workload GETs hit
// live keys instead of measuring a miss storm).
func (n *Node) Preload(key uint64) {
	if !n.serving {
		panic(fmt.Sprintf("kv: node %d Preload before StartServer", n.node))
	}
	n.store[key] = storeVal{version: 1, live: true}
}

// reconcileFree settles scheduling class i's free ring to depth d (the
// credits counter is the authority, exactly as in internal/rpc).
func (n *Node) reconcileFree(i, d int) {
	ch := n.chans[i]
	if ch == nil {
		return
	}
	for ch.Free.Len() > d {
		ch.Free.Pop()
	}
	for ch.Free.Len() < d {
		if err := ch.PostFree(adc.Descriptor{VAddr: n.rxSlot(), Len: int(n.pageBytes())}); err != nil {
			panic(fmt.Sprintf("kv: node %d preposting tenant %d free buffer: %v", n.node, i, err))
		}
	}
}

// takeCredit claims a receive buffer from class i's free queue.
func (n *Node) takeCredit(i int) bool {
	if n.credits[i] <= 0 {
		return false
	}
	n.credits[i]--
	n.reconcileFree(i, n.credits[i])
	return true
}

// releaseCredit returns class i's receive buffer.
func (n *Node) releaseCredit(i int) {
	n.credits[i]++
	n.reconcileFree(i, n.credits[i])
}

// Conn is one logical client connection to a server node.
type Conn struct {
	n        *Node
	id       uint32
	server   int
	setBytes int
	deadline sim.Time // relative; 0 = none
}

// Dial opens a logical connection from this node to server. setBytes
// is the SET value payload size; deadline (cycles, 0 = none) bounds
// each request issued on the connection.
func (n *Node) Dial(server int, setBytes int, deadline sim.Time) *Conn {
	if server == n.node {
		panic(fmt.Sprintf("kv: node %d dialing itself", n.node))
	}
	n.mapHeap(scratchPage + 1)
	// Node-local ids, same scheme as rpc: cross-node Dial interleaving
	// must not influence the id (sharded runs dial concurrently).
	c := &Conn{n: n, id: uint32(n.node)<<16 | n.nextConn, server: server, setBytes: setBytes, deadline: deadline}
	n.nextConn++
	n.conns = append(n.conns, c)
	return c
}

// Server reports the node the connection is dialed to.
func (c *Conn) Server() int { return c.server }

// issue builds, encodes and transmits one request from p's context,
// measuring latency from issuedAt (the scheduled arrival under open
// loop — send-path backup is part of the measured latency, no
// coordinated omission).
func (c *Conn) issue(p *sim.Proc, issuedAt sim.Time, kind Kind, tn int, key uint64) *call {
	n := c.n
	id := n.nextID
	n.nextID++
	var deadline sim.Time
	if c.deadline > 0 {
		deadline = issuedAt + c.deadline
	}
	ca := &call{issued: issuedAt, deadline: deadline, kind: kind, tenant: tn}
	n.pending[id] = ca
	n.Stats.Issued++
	n.growTenant(tn)
	n.TStats[tn].Issued++
	req := &Request{
		Kind: kind, Tenant: uint16(tn), Key: key,
		Conn: c.id, ID: id, From: uint32(n.node), Deadline: deadline,
	}
	if kind == Set {
		req.ValBytes = uint32(c.setBytes)
	}
	raw := EncodeRequest(nil, req)
	m := &nic.Message{
		From: n.node, To: c.server, Op: opRequest, Aux: c.id,
		Size:    nic.HeaderBytes + ReqBytes + int(req.ValBytes),
		VAddr:   n.reqSlot(c),
		CacheTx: true,
		Payload: &reqPDU{raw: raw},
	}
	if req.ValBytes > 0 {
		m.DeliverVAddr = n.e.Node(c.server).rxSlot()
		m.DeliverBytes = int(req.ValBytes)
	}
	n.b.Send(p, m)
	return ca
}

// Fire issues one request asynchronously (open loop).
func (c *Conn) Fire(p *sim.Proc, issuedAt sim.Time, kind Kind, tn int, key uint64) {
	c.issue(p, issuedAt, kind, tn, key)
}

// Call issues one request and blocks until its response arrives
// (closed loop), reporting the outcome and the key's version.
func (c *Conn) Call(p *sim.Proc, kind Kind, tn int, key uint64) (Outcome, uint64) {
	p.Sync()
	ca := c.issue(p, p.Local(), kind, tn, key)
	ca.waiter = p
	for !ca.done {
		p.Block()
	}
	ca.waiter = nil
	switch ca.outcome {
	case flagNotFound:
		return NotFound, ca.version
	case flagRejected:
		return Rejected, ca.version
	case flagThrottled:
		return Throttled, ca.version
	case flagExpired:
		return Expired, ca.version
	default:
		return OK, ca.version
	}
}

// Outstanding reports the number of requests awaiting responses.
func (n *Node) Outstanding() int { return len(n.pending) }

// WaitIdle blocks p until every issued request has a terminal outcome.
func (n *Node) WaitIdle(p *sim.Proc) {
	p.Sync()
	for len(n.pending) > 0 {
		n.waiter = p
		p.Block()
		n.waiter = nil
	}
}

// Done tells every dialed server this client is finished.
func (n *Node) Done(p *sim.Proc) {
	sent := map[int]bool{}
	for _, c := range n.conns {
		if sent[c.server] {
			continue
		}
		sent[c.server] = true
		n.b.Send(p, &nic.Message{
			From: n.node, To: c.server, Op: opDone,
			Size:    nic.HeaderBytes + 8,
			Payload: &reqPDU{},
		})
	}
}

// boardFilter is the CNI response-cache screening handler, running on
// the board's receive processor for every arriving KV request (cost:
// AIHHandlerCycles, charged by the receive path). A GET that hits the
// index is answered from its pinned Message Cache page — SendAt from
// board context is free on the CNI, and the transmit probe hits, so
// the reply leaves with no DMA and the host never runs. A SET or
// DELETE invalidates the key's entry right here, at the earliest
// moment the board knows about the write, and opens the insert-veto
// window that closes when the host resolves the write.
func (n *Node) boardFilter(at sim.Time, m *nic.Message) bool {
	pd := m.Payload.(*reqPDU)
	if pd.raw == nil {
		return false // done marker
	}
	req, err := DecodeRequest(pd.raw)
	if err != nil {
		return false // let the host count it
	}
	pd.req = &req
	if n.tenantAt(req.Tenant) < 0 {
		return false
	}
	switch req.Kind {
	case Get:
		e, ok := n.bcache.lookup(req.Key, at)
		if !ok {
			n.Stats.BoardMissed++
			return false
		}
		n.Stats.BoardServed++
		flag := flagOK
		size := nic.HeaderBytes + 24 + n.sc.ValueBytes
		resp := &nic.Message{
			From: n.node, To: int(req.From), Op: opResponse, Aux: req.Conn,
			Size:    size,
			VAddr:   n.bcache.SlotAddr(req.Key),
			CacheTx: true,
			NoFlush: true, // board memory: there are no host cache lines to flush
			Payload: &respMsg{
				conn: req.Conn, id: req.ID, version: e.version,
				tenant: req.Tenant, flag: flag, board: true,
			},
			DeliverVAddr: n.e.Node(int(req.From)).rxSlot(),
			DeliverBytes: n.sc.ValueBytes,
		}
		n.b.SendAt(at, resp)
		return true
	case Set, Del:
		if n.bcache.writeArrived(req.Key) {
			n.Stats.WriteInvals++
		}
		return false
	}
	return false
}

// writeResolved closes the board-side write window for a SET/DELETE
// that reached a terminal outcome on the host.
func (n *Node) writeResolved(req *Request) {
	if n.bcache != nil && req.Kind != Get {
		n.bcache.writeDone(req.Key)
	}
}

// onRequest is the server-side arrival handler, running at host-notify
// time for requests the board filter did not consume. QoS and
// admission run here, in order: the tenant's token bucket, then a
// receive buffer from the tenant's channel, then a work-queue slot.
func (n *Node) onRequest(at sim.Time, m *nic.Message) {
	if !n.serving {
		panic(fmt.Sprintf("kv: node %d received a request but is not serving", n.node))
	}
	pd := m.Payload.(*reqPDU)
	if pd.req == nil {
		req, err := DecodeRequest(pd.raw)
		if err != nil {
			n.Stats.Malformed++
			return
		}
		pd.req = &req
	}
	req := pd.req
	tn := n.tenantAt(req.Tenant)
	if tn < 0 {
		n.Stats.Malformed++
		return
	}
	if n.sc.Isolation && !n.buckets[tn].Take(at) {
		n.reject(at, req, flagThrottled)
		n.writeResolved(req)
		return
	}
	cl := n.class(tn)
	switch {
	case !n.takeCredit(cl):
		n.Stats.FreeDry++
		if n.sc.Policy == rpc.Shed {
			n.reject(at, req, flagRejected)
			n.writeResolved(req)
		} else {
			n.park(req, cl, false)
		}
	case !n.sched.Push(n.schedClass(cl), req):
		n.Stats.QueueFull++
		if n.sc.Policy == rpc.Shed {
			n.reject(at, req, flagRejected)
			n.writeResolved(req)
			n.releaseCredit(cl)
		} else {
			n.park(req, cl, true)
		}
	default:
		if n.proc != nil {
			n.proc.WakeAt(at)
		}
	}
}

// schedClass maps a credit class to its scheduler queue (identity; the
// scheduler is built over the same classes as the credit pools).
func (n *Node) schedClass(cl int) int { return cl }

// park holds req back under the Delay policy.
func (n *Node) park(req *Request, cl int, holds bool) {
	n.parkedq = append(n.parkedq, parkedReq{req: req, class: cl, holds: holds})
	n.Stats.Delayed++
	if len(n.parkedq) > n.Stats.ParkedPeak {
		n.Stats.ParkedPeak = len(n.parkedq)
	}
}

// reject sends an immediate control response from board/handler
// context (no buffer, no DMA).
func (n *Node) reject(at sim.Time, req *Request, flag uint32) {
	n.b.SendAt(at, &nic.Message{
		From: n.node, To: int(req.From), Op: opResponse, Aux: req.Conn,
		Size: nic.HeaderBytes + 24,
		Payload: &respMsg{
			conn: req.Conn, id: req.ID, tenant: req.Tenant, flag: flag,
		},
	})
}

// complete returns a served request's receive buffer to class cl and
// admits parked requests while room exists.
func (n *Node) complete(cl int) {
	n.releaseCredit(cl)
	for len(n.parkedq) > 0 {
		pe := n.parkedq[0]
		if n.sched.QueueLen(n.schedClass(pe.class)) >= n.sc.WorkQueue {
			break
		}
		if !pe.holds {
			if n.credits[pe.class] <= 0 {
				break
			}
			n.takeCredit(pe.class)
		}
		n.parkedq = n.parkedq[1:]
		if !n.sched.Push(n.schedClass(pe.class), pe.req) {
			panic(fmt.Sprintf("kv: node %d parked admit with a full queue", n.node))
		}
	}
}

// apply runs req against the store, returning the response flag and
// the key's (possibly new) version.
func (n *Node) apply(req *Request) (uint32, uint64) {
	v := n.store[req.Key]
	switch req.Kind {
	case Set:
		v.version++
		v.live = true
		n.store[req.Key] = v
		return flagOK, v.version
	case Del:
		v.version++
		v.live = false
		n.store[req.Key] = v
		return flagOK, v.version
	default:
		if !v.live {
			return flagNotFound, v.version
		}
		return flagOK, v.version
	}
}

// Serve runs the server loop on p: pop the scheduler's pick, charge
// dequeue and service, apply the store operation, respond — from the
// key's cache slot page when the response should be retained on the
// board — and return the receive buffer. Returns once every client
// has sent its done marker and the queues are empty.
func (n *Node) Serve(p *sim.Proc) {
	if !n.serving {
		panic(fmt.Sprintf("kv: node %d Serve without StartServer", n.node))
	}
	n.proc = p
	dequeue := n.b.RecvDequeueCost()
	for {
		for n.sched.Len() > 0 {
			req, cl, _ := n.sched.Pop()
			p.Advance(dequeue)
			p.Sync()
			if req.Deadline > 0 && p.Local() > req.Deadline {
				n.Stats.Served++
				n.respondControl(p, req, flagExpired, 0)
				n.writeResolved(req)
				n.complete(cl)
				continue
			}
			service := n.sc.ServiceGet
			if req.Kind != Get {
				service = n.sc.ServiceSet
			}
			p.Advance(service)
			p.Sync()
			flag, version := n.apply(req)
			n.Stats.Served++
			if req.Kind == Get && flag == flagOK {
				n.respondValue(p, req, version)
			} else {
				n.respondControl(p, req, flag, version)
			}
			n.writeResolved(req)
			n.complete(cl)
		}
		if n.doneSeen >= n.sc.Clients && n.sched.Len() == 0 && len(n.parkedq) == 0 {
			return
		}
		p.Block()
	}
}

// respondControl sends a small ack/miss/expired response (no value
// payload, no buffer).
func (n *Node) respondControl(p *sim.Proc, req *Request, flag uint32, version uint64) {
	n.b.Send(p, &nic.Message{
		From: n.node, To: int(req.From), Op: opResponse, Aux: req.Conn,
		Size: nic.HeaderBytes + 24,
		Payload: &respMsg{
			conn: req.Conn, id: req.ID, version: version,
			tenant: req.Tenant, flag: flag,
		},
	})
}

// respondValue sends a GET's value response. The host composes the
// value into the response buffer (WriteBuffer: real cache-hierarchy
// write cost, and the board learns of the write) and transmits with
// CacheTx so the Message Cache binds it. When the board cache wants to
// retain the response it is transmitted from the key's slot page and
// the page pinned after the transmit binds it; otherwise it leaves
// from the shared scratch page, the plain hot-buffer path.
func (n *Node) respondValue(p *sim.Proc, req *Request, version uint64) {
	vaddr := n.scratchSlot()
	retain := false
	if n.bcache != nil {
		if n.bcache.writePending(req.Key) {
			n.Stats.InsertVetoes++
		} else {
			vaddr = n.bcache.SlotAddr(req.Key)
			retain = true
		}
	}
	p.Advance(n.b.WriteBuffer(vaddr, n.sc.ValueBytes))
	p.Sync()
	m := &nic.Message{
		From: n.node, To: int(req.From), Op: opResponse, Aux: req.Conn,
		Size:    nic.HeaderBytes + 24 + n.sc.ValueBytes,
		VAddr:   vaddr,
		CacheTx: true,
		Payload: &respMsg{
			conn: req.Conn, id: req.ID, version: version,
			tenant: req.Tenant, flag: flagOK,
		},
		DeliverVAddr: n.e.Node(int(req.From)).rxSlot(),
		DeliverBytes: n.sc.ValueBytes,
	}
	n.b.Send(p, m)
	if retain {
		evictsBefore := n.bcache.valid
		if n.bcache.insert(req.Key, version, p.Local()) {
			n.Stats.Inserts++
			if n.bcache.valid == evictsBefore {
				// Same occupancy after an insert into a full budget or an
				// occupied slot: something was displaced.
				n.Stats.CacheEvicts++
			}
		} else if n.bcache.writePending(req.Key) {
			n.Stats.InsertVetoes++
		} else {
			n.Stats.PinFails++
		}
	}
}

// onResponse is the client-side arrival handler: match the request id,
// record outcome and latency (split board-served vs host-served for
// GETs), and wake whoever waits.
func (n *Node) onResponse(at sim.Time, m *nic.Message) {
	rm := m.Payload.(*respMsg)
	ca, ok := n.pending[rm.id]
	if !ok {
		panic(fmt.Sprintf("kv: node %d response for unknown request %d", n.node, rm.id))
	}
	delete(n.pending, rm.id)
	ca.done = true
	ca.outcome = rm.flag
	ca.version = rm.version
	n.b.PenalizeHost(n.b.RecvDequeueCost())
	tn := ca.tenant
	n.growTenant(tn)
	ts := &n.TStats[tn]
	switch rm.flag {
	case flagOK, flagNotFound:
		n.Stats.Completed++
		ts.Completed++
		lat := at - ca.issued
		n.Lat.Add(lat)
		n.Stats.Lat = n.Lat.Hist
		n.TLat[tn].Add(lat)
		ts.Lat = n.TLat[tn].Hist
		onTime := ca.deadline == 0 || at <= ca.deadline
		if onTime {
			ts.OnTime++
		} else {
			n.Stats.DeadlineMiss++
		}
		if ca.kind == Get {
			if rm.board {
				n.HitLat.Add(lat)
				n.Stats.HitLat = n.HitLat.Hist
			} else {
				n.HostLat.Add(lat)
				n.Stats.HostLat = n.HostLat.Hist
			}
		}
	case flagRejected:
		n.Stats.Rejected++
		ts.Rejected++
	case flagThrottled:
		n.Stats.Throttled++
		ts.Throttled++
	case flagExpired:
		n.Stats.Expired++
		ts.Expired++
	}
	if ca.waiter != nil {
		ca.waiter.WakeAt(at)
	} else if n.waiter != nil && len(n.pending) == 0 {
		n.waiter.WakeAt(at)
	}
}

// onDone is the server-side client-finished marker.
func (n *Node) onDone(at sim.Time, m *nic.Message) {
	n.doneSeen++
	if n.proc != nil {
		n.proc.WakeAt(at)
	}
}

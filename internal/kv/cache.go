package kv

import (
	"cni/internal/nic"
	"cni/internal/sim"
)

// boardCache is the NIC-resident response cache of a serving CNI
// board: the board-memory index (key, version, response page) over
// GET responses the host recently transmitted, with the response
// pages themselves pinned in the Message Cache so a repeat GET can be
// answered by the board filter with no DMA, no interrupt and no host
// server involvement.
//
// Structure: a set-of-slots index, slot = key mod len(slots), each
// slot naming one fixed virtual response page. At most `frames` slots
// are valid at once — that is the Message Cache budget the cache may
// pin — so inserting into an empty slot at budget evicts the
// least-recently-hit valid slot (Unpin; the clock sweep may then
// reclaim the frame under messaging pressure). Inserting into an
// occupied slot replaces it in place: the page is rewritten by the
// host and rebound on transmit, so the old entry is dead either way.
//
// Invalidation: a SET or DELETE observed by the board filter kills the
// key's slot immediately — before the write is even admitted by the
// host — and opens a write window (pending count) during which GET
// responses for that key refuse to insert, closing the
// populate-behind-a-write race. The window closes when the write
// reaches a terminal outcome on the host (served, shed, or expired).
type boardCache struct {
	mc      *nic.Board
	base    uint64 // first response page vaddr
	pb      uint64 // page size
	frames  int    // max pinned pages
	valid   int
	slots   []bcEntry
	pending map[uint64]int // keys with SET/DELETE in flight
}

// bcEntry is one slot of the index.
type bcEntry struct {
	key     uint64
	version uint64
	lastUse sim.Time
	valid   bool
}

func newBoardCache(b *nic.Board, base uint64, pb uint64, frames, nslots int) *boardCache {
	return &boardCache{
		mc:      b,
		base:    base,
		pb:      pb,
		frames:  frames,
		slots:   make([]bcEntry, nslots),
		pending: make(map[uint64]int),
	}
}

// slotOf maps a key to its slot index.
func (c *boardCache) slotOf(key uint64) int { return int(key % uint64(len(c.slots))) }

// slotAddr is the fixed response page of slot s.
func (c *boardCache) slotAddr(s int) uint64 { return c.base + uint64(s)*c.pb }

// SlotAddr is the response page the host must transmit key's response
// from for the board to be able to retain it.
func (c *boardCache) SlotAddr(key uint64) uint64 { return c.slotAddr(c.slotOf(key)) }

// lookup probes the index for key, refreshing recency on a hit.
func (c *boardCache) lookup(key uint64, at sim.Time) (bcEntry, bool) {
	s := c.slotOf(key)
	e := c.slots[s]
	if !e.valid || e.key != key {
		return bcEntry{}, false
	}
	c.slots[s].lastUse = at
	return e, true
}

// writeArrived records a SET/DELETE for key passing the board:
// whatever the cache holds for the key dies now, and inserts for the
// key are vetoed until writeDone.
func (c *boardCache) writeArrived(key uint64) (invalidated bool) {
	s := c.slotOf(key)
	if e := c.slots[s]; e.valid && e.key == key {
		c.drop(s)
		invalidated = true
	}
	c.pending[key]++
	return invalidated
}

// writeDone closes key's write window.
func (c *boardCache) writeDone(key uint64) {
	if n := c.pending[key]; n > 1 {
		c.pending[key] = n - 1
	} else {
		delete(c.pending, key)
	}
}

// writePending reports whether key has a write in flight.
func (c *boardCache) writePending(key uint64) bool { return c.pending[key] > 0 }

// drop invalidates slot s and releases its pin.
func (c *boardCache) drop(s int) {
	if !c.slots[s].valid {
		return
	}
	c.slots[s] = bcEntry{}
	c.valid--
	if mc := c.mc.MC; mc != nil {
		mc.Unpin(c.slotAddr(s))
	}
}

// insert retains key's just-transmitted response (already bound into
// the Message Cache by the transmit path) for board serving. It
// reports whether the entry was installed; it refuses while a write
// for the key is in flight, and when the page could not be pinned —
// the Message Cache was too pressured to bind it in the first place.
func (c *boardCache) insert(key, version uint64, at sim.Time) bool {
	if c.writePending(key) {
		return false
	}
	s := c.slotOf(key)
	occupied := c.slots[s].valid
	if !occupied && c.valid >= c.frames {
		// At the pin budget: evict the least-recently-hit slot.
		lru := -1
		for i := range c.slots {
			if !c.slots[i].valid {
				continue
			}
			if lru < 0 || c.slots[i].lastUse < c.slots[lru].lastUse {
				lru = i
			}
		}
		c.drop(lru)
	}
	mc := c.mc.MC
	if mc == nil {
		return false
	}
	addr := c.slotAddr(s)
	if occupied {
		// In-place replacement (same slot, possibly a different key):
		// release the old pin first so the pin count stays one per slot.
		mc.Unpin(addr)
		c.slots[s] = bcEntry{}
		c.valid--
	}
	if !mc.Pin(addr) {
		// The transmit could not bind the page (every frame pinned or
		// otherwise unreclaimable): serve from memory, do not index.
		return false
	}
	c.slots[s] = bcEntry{key: key, version: version, lastUse: at, valid: true}
	c.valid++
	return true
}

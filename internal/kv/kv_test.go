package kv_test

import (
	"testing"

	"cni/internal/cluster"
	"cni/internal/config"
	"cni/internal/dsm"
	"cni/internal/kv"
	"cni/internal/nic"
	"cni/internal/rpc"
	"cni/internal/tenant"
)

func mustCluster(cfg *config.Config, n int) *cluster.Cluster {
	c, err := cluster.New(cfg, n, nil)
	if err != nil {
		panic(err)
	}
	return c
}

// threeKinds runs the subtest under all three interface models.
func threeKinds(t *testing.T, f func(t *testing.T, cfg config.Config)) {
	t.Run("cni", func(t *testing.T) { f(t, config.Default()) })
	t.Run("osiris", func(t *testing.T) { f(t, config.ForNIC(config.NICOsiris)) })
	t.Run("standard", func(t *testing.T) { f(t, config.Standard()) })
}

// TestClosedLoopGetSetDelete drives the full operation set against one
// server on every interface and pins the version sequence — which is
// also the basic staleness regression: the GET after each SET must see
// the post-SET version even where the pre-SET response was retained on
// the board.
func TestClosedLoopGetSetDelete(t *testing.T) {
	threeKinds(t, func(t *testing.T, cfg config.Config) {
		c := mustCluster(&cfg, 2)
		res := c.Run(func(w *dsm.Worker) {
			p, id := w.Proc(), w.Node()
			node := c.KV.Node(id)
			if id == 0 {
				node.StartServer(kv.ServerConfig{
					WorkQueue: 8, FreeBufs: 8, ValueBytes: 256, Clients: 1,
				})
				node.Serve(p)
				return
			}
			conn := node.Dial(0, 64, 0)
			steps := []struct {
				kind    kv.Kind
				out     kv.Outcome
				version uint64
			}{
				{kv.Get, kv.NotFound, 0},
				{kv.Set, kv.OK, 1},
				{kv.Get, kv.OK, 1},
				{kv.Get, kv.OK, 1}, // repeat: board-served on the CNI
				{kv.Set, kv.OK, 2},
				{kv.Get, kv.OK, 2}, // must not see the cached v1 response
				{kv.Del, kv.OK, 3},
				{kv.Get, kv.NotFound, 3},
			}
			for i, s := range steps {
				out, v := conn.Call(p, s.kind, 0, 42)
				if out != s.out || v != s.version {
					t.Errorf("step %d %v: got %v v%d, want %v v%d",
						i, s.kind, out, v, s.out, s.version)
				}
			}
			node.WaitIdle(p)
			node.Done(p)
		})
		if res.KV.Issued != 8 || res.KV.Completed != 8 {
			t.Fatalf("issued/completed = %d/%d, want 8/8", res.KV.Issued, res.KV.Completed)
		}
		if res.KV.Served+res.KV.BoardServed != 8 {
			t.Fatalf("served %d + board-served %d != 8 issued",
				res.KV.Served, res.KV.BoardServed)
		}
		if res.KV.Lat.Count != 8 {
			t.Fatalf("latency count = %d, want 8", res.KV.Lat.Count)
		}
	})
}

// TestNICCacheHitZeroHostCost is the acceptance test for the response
// cache's central claim: a repeat GET served by the board filter
// touches nothing on the server's host path. Between the two
// snapshots the only traffic at the server is the repeat GET, so every
// host-side board counter must hold still while the filter counters
// advance.
func TestNICCacheHitZeroHostCost(t *testing.T) {
	cfg := config.Default()
	c := mustCluster(&cfg, 2)
	var before, after nic.Stats
	var servedBefore, servedAfter, boardBefore, boardAfter uint64
	res := c.Run(func(w *dsm.Worker) {
		p, id := w.Proc(), w.Node()
		node := c.KV.Node(id)
		if id == 0 {
			node.StartServer(kv.ServerConfig{
				WorkQueue: 8, FreeBufs: 8, ValueBytes: 512, Clients: 1,
			})
			node.Serve(p)
			return
		}
		conn := node.Dial(0, 64, 0)
		if out, v := conn.Call(p, kv.Set, 0, 7); out != kv.OK || v != 1 {
			t.Errorf("SET: %v v%d", out, v)
		}
		if out, v := conn.Call(p, kv.Get, 0, 7); out != kv.OK || v != 1 {
			t.Errorf("warming GET: %v v%d", out, v)
		}
		srv := c.KV.Node(0)
		before = c.Nodes[0].Board.Stats
		servedBefore, boardBefore = srv.Stats.Served, srv.Stats.BoardServed
		if out, v := conn.Call(p, kv.Get, 0, 7); out != kv.OK || v != 1 {
			t.Errorf("repeat GET: %v v%d", out, v)
		}
		after = c.Nodes[0].Board.Stats
		servedAfter, boardAfter = srv.Stats.Served, srv.Stats.BoardServed
		node.WaitIdle(p)
		node.Done(p)
	})
	zero := []struct {
		name string
		d    uint64
	}{
		{"Interrupts", after.Interrupts - before.Interrupts},
		{"Polls", after.Polls - before.Polls},
		{"HostHandlers", after.HostHandlers - before.HostHandlers},
		{"TxDMAs", after.TxDMAs - before.TxDMAs},
		{"RxDMAs", after.RxDMAs - before.RxDMAs},
	}
	for _, z := range zero {
		if z.d != 0 {
			t.Errorf("cache hit cost %d server %s, want 0", z.d, z.name)
		}
	}
	if d := after.FilterServed - before.FilterServed; d != 1 {
		t.Errorf("FilterServed advanced by %d, want 1", d)
	}
	if servedAfter != servedBefore {
		t.Errorf("host Served advanced by %d on a cache hit", servedAfter-servedBefore)
	}
	if boardAfter != boardBefore+1 {
		t.Errorf("BoardServed advanced by %d, want 1", boardAfter-boardBefore)
	}
	if res.KV.BoardServed != 1 || res.KV.Inserts == 0 {
		t.Fatalf("board served %d (want 1), inserts %d (want >0)",
			res.KV.BoardServed, res.KV.Inserts)
	}
	if res.KVHit.Hist.Count != 1 || res.KVHost.Hist.Count != 1 {
		t.Fatalf("hit/host sample counts %d/%d, want 1/1",
			res.KVHit.Hist.Count, res.KVHost.Hist.Count)
	}
	if hit, host := res.KVHit.Percentile(50), res.KVHost.Percentile(50); hit >= host {
		t.Fatalf("board-served GET latency %d not below host-served %d", hit, host)
	}
}

// TestCacheHitTailBelowHostTail repeats a working set small enough to
// stay pinned: the board-served tail must sit below the host-served
// tail.
func TestCacheHitTailBelowHostTail(t *testing.T) {
	cfg := config.Default()
	c := mustCluster(&cfg, 2)
	const keys = 8
	res := c.Run(func(w *dsm.Worker) {
		p, id := w.Proc(), w.Node()
		node := c.KV.Node(id)
		if id == 0 {
			node.StartServer(kv.ServerConfig{
				WorkQueue: 16, FreeBufs: 16, ValueBytes: 256, ServiceGet: 800, Clients: 1,
			})
			node.Serve(p)
			return
		}
		conn := node.Dial(0, 64, 0)
		for k := 0; k < keys; k++ {
			conn.Call(p, kv.Set, 0, uint64(k))
		}
		for pass := 0; pass < 3; pass++ {
			for k := 0; k < keys; k++ {
				if out, _ := conn.Call(p, kv.Get, 0, uint64(k)); out != kv.OK {
					t.Errorf("pass %d key %d: %v", pass, k, out)
				}
			}
		}
		node.WaitIdle(p)
		node.Done(p)
	})
	if res.KVHost.Hist.Count != keys || res.KVHit.Hist.Count != 2*keys {
		t.Fatalf("host/hit samples %d/%d, want %d/%d: cache did not retain the working set",
			res.KVHost.Hist.Count, res.KVHit.Hist.Count, keys, 2*keys)
	}
	if hit, host := res.KVHit.Percentile(99), res.KVHost.Percentile(99); hit >= host {
		t.Fatalf("hit p99 %d not below host p99 %d", hit, host)
	}
}

// TestNoStaleReadsUnderConcurrentWrites hammers one key with open-loop
// GETs — keeping it board-cached and insert traffic flowing — while a
// second client writes it. The writer's read-after-write must observe
// its own SET/DELETE, never a pre-write response retained on the board.
func TestNoStaleReadsUnderConcurrentWrites(t *testing.T) {
	cfg := config.Default()
	c := mustCluster(&cfg, 3)
	const key = 5
	res := c.Run(func(w *dsm.Worker) {
		p, id := w.Proc(), w.Node()
		node := c.KV.Node(id)
		switch id {
		case 0:
			node.StartServer(kv.ServerConfig{
				WorkQueue: 32, FreeBufs: 16, ValueBytes: 256, ServiceGet: 500, Clients: 2,
			})
			node.Serve(p)
		case 1: // reader: paced open-loop GET stream on the contested key
			conn := node.Dial(0, 64, 0)
			p.Advance(5000)
			for i := 0; i < 300; i++ {
				p.Advance(400)
				p.Sync()
				conn.Fire(p, p.Local(), kv.Get, 0, key)
			}
			node.WaitIdle(p)
			node.Done(p)
		case 2: // writer: read-after-write checks in the middle of the stream
			conn := node.Dial(0, 64, 0)
			if out, v := conn.Call(p, kv.Set, 0, key); out != kv.OK || v != 1 {
				t.Errorf("first SET: %v v%d", out, v)
			}
			p.Advance(40000) // let the readers cache the v1 response
			p.Sync()
			if out, v := conn.Call(p, kv.Set, 0, key); out != kv.OK || v != 2 {
				t.Errorf("second SET: %v v%d", out, v)
			}
			if out, v := conn.Call(p, kv.Get, 0, key); out != kv.OK || v != 2 {
				t.Errorf("read-after-SET: got %v v%d, want ok v2", out, v)
			}
			p.Advance(40000)
			p.Sync()
			if out, v := conn.Call(p, kv.Del, 0, key); out != kv.OK || v != 3 {
				t.Errorf("DELETE: %v v%d", out, v)
			}
			if out, v := conn.Call(p, kv.Get, 0, key); out != kv.NotFound || v != 3 {
				t.Errorf("read-after-DELETE: got %v v%d, want notfound v3", out, v)
			}
			node.WaitIdle(p)
			node.Done(p)
		}
	})
	if res.KV.BoardServed == 0 {
		t.Fatal("cache never engaged: the test exercised nothing")
	}
	if res.KV.WriteInvals == 0 {
		t.Fatal("no write ever invalidated a live cached response")
	}
	if res.KV.Completed+res.KV.Rejected+res.KV.Throttled+res.KV.Expired != res.KV.Issued {
		t.Fatalf("outcomes do not cover the %d issued requests: %+v", res.KV.Issued, res.KV)
	}
}

// runIsolation is the aggressor/victim scenario behind the tenant-QoS
// tests: tenant 1 floods the server open loop while tenant 0 runs a
// modest closed loop.
func runIsolation(t *testing.T, isolation bool) *cluster.Result {
	t.Helper()
	cfg := config.Default()
	c := mustCluster(&cfg, 3)
	const victimCalls = 30
	res := c.Run(func(w *dsm.Worker) {
		p, id := w.Proc(), w.Node()
		node := c.KV.Node(id)
		switch id {
		case 0:
			node.StartServer(kv.ServerConfig{
				WorkQueue: 64, FreeBufs: 32, ServiceGet: 2000, ServiceSet: 2000,
				ValueBytes: 256, Policy: rpc.Delay, Clients: 2, Isolation: isolation,
				Tenants: []tenant.Class{
					{ID: 0, Name: "victim", Priority: 0},
					{ID: 1, Name: "aggressor", Priority: 1, Rate: 2000, Burst: 8},
				},
			})
			node.Serve(p)
		case 1: // victim
			conn := node.Dial(0, 64, 0)
			for i := 0; i < victimCalls; i++ {
				if out, _ := conn.Call(p, kv.Get, 0, uint64(i)); out != kv.NotFound {
					t.Errorf("victim call %d: %v", i, out)
				}
				p.Advance(2000)
			}
			node.WaitIdle(p)
			node.Done(p)
		case 2: // aggressor: open-loop overload, arrivals far above service rate
			conn := node.Dial(0, 64, 0)
			for i := 0; i < 400; i++ {
				p.Advance(150)
				p.Sync()
				conn.Fire(p, p.Local(), kv.Get, 1, uint64(1000+i))
			}
			node.WaitIdle(p)
			node.Done(p)
		}
	})
	if got := res.Tenants[0].Completed; got != victimCalls {
		t.Fatalf("isolation=%v: victim completed %d of %d calls", isolation, got, victimCalls)
	}
	return res
}

// TestTenantIsolationBoundsVictimTail is the acceptance test for the
// QoS machinery: with isolation on, the well-behaved tenant's p99 must
// stay far below what the shared-FIFO ablation gives it under the same
// overload, and the aggressor must be the one paying (throttled by its
// token bucket), which never happens with isolation off.
func TestTenantIsolationBoundsVictimTail(t *testing.T) {
	on := runIsolation(t, true)
	off := runIsolation(t, false)
	if on.Tenants[1].Throttled == 0 {
		t.Fatal("isolation on: aggressor never throttled by its token bucket")
	}
	if off.Tenants[1].Throttled != 0 {
		t.Fatalf("isolation off: %d throttles with no bucket configured",
			off.Tenants[1].Throttled)
	}
	onP99 := on.TenantLat[0].Percentile(99)
	offP99 := off.TenantLat[0].Percentile(99)
	if onP99 <= 0 || offP99 <= 0 {
		t.Fatalf("missing victim tail samples: on %d, off %d", onP99, offP99)
	}
	if 4*onP99 >= offP99 {
		t.Fatalf("victim p99 %d with isolation not well below %d without", onP99, offP99)
	}
}

// TestDeterministicReplay runs the contended multi-tenant scenario
// twice: every counter and every latency sample must be identical.
func TestDeterministicReplay(t *testing.T) {
	a := runIsolation(t, true)
	b := runIsolation(t, true)
	if a.KV != b.KV {
		t.Fatalf("KV stats diverged across identical runs:\n%+v\n%+v", a.KV, b.KV)
	}
	if a.KVLat.Hist.Count != b.KVLat.Hist.Count ||
		a.KVLat.Percentile(50) != b.KVLat.Percentile(50) ||
		a.KVLat.Percentile(99) != b.KVLat.Percentile(99) {
		t.Fatal("latency samples diverged across identical runs")
	}
	for i := range a.Tenants {
		if a.Tenants[i] != b.Tenants[i] {
			t.Fatalf("tenant %d stats diverged:\n%+v\n%+v", i, a.Tenants[i], b.Tenants[i])
		}
	}
}

package kv

import (
	"encoding/binary"
	"errors"
	"fmt"

	"cni/internal/sim"
)

// Kind is a KV operation.
type Kind uint8

// The KV operations.
const (
	Get Kind = iota
	Set
	Del
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Get:
		return "GET"
	case Set:
		return "SET"
	case Del:
		return "DEL"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Request is one decoded KV request. Everything a server (or the board
// filter) needs rides in the request itself, so a request is
// self-describing at whichever processor demultiplexes it.
type Request struct {
	Kind     Kind
	Tenant   uint16
	Key      uint64
	Conn     uint32
	ID       uint64
	From     uint32   // requesting node
	Deadline sim.Time // absolute cycles; 0 = none
	ValBytes uint32   // SET value payload size; 0 for GET/DELETE
}

// The wire format: a fixed 40-byte little-endian record. Requests are
// encoded at the client and decoded wherever they are consumed — by
// the host server, or by the CNI's board filter, which is exactly why
// the format is a flat record a 33 MHz receive processor could parse
// in a handful of cycles.
const (
	reqMagic = 0x4B // 'K'
	// ReqBytes is the encoded size of a Request.
	ReqBytes = 40
	// MaxValBytes bounds a SET value (sanity bound, ~1 MB).
	MaxValBytes = 1 << 20
)

// Errors DecodeRequest can return.
var (
	ErrShort    = errors.New("kv: truncated request")
	ErrMagic    = errors.New("kv: bad magic")
	ErrKind     = errors.New("kv: unknown operation")
	ErrValue    = errors.New("kv: value size out of range")
	ErrDeadline = errors.New("kv: negative deadline")
)

// EncodeRequest appends r's wire form to dst and returns the extended
// slice.
func EncodeRequest(dst []byte, r *Request) []byte {
	var b [ReqBytes]byte
	b[0] = reqMagic
	b[1] = byte(r.Kind)
	binary.LittleEndian.PutUint16(b[2:], r.Tenant)
	binary.LittleEndian.PutUint32(b[4:], r.ValBytes)
	binary.LittleEndian.PutUint64(b[8:], r.Key)
	binary.LittleEndian.PutUint64(b[16:], r.ID)
	binary.LittleEndian.PutUint32(b[24:], r.Conn)
	binary.LittleEndian.PutUint32(b[28:], r.From)
	binary.LittleEndian.PutUint64(b[32:], uint64(r.Deadline))
	return append(dst, b[:]...)
}

// DecodeRequest parses one wire-format request. It never panics on
// arbitrary input; anything it accepts round-trips through
// EncodeRequest byte-identically.
func DecodeRequest(b []byte) (Request, error) {
	var r Request
	if len(b) != ReqBytes {
		return r, ErrShort
	}
	if b[0] != reqMagic {
		return r, ErrMagic
	}
	if b[1] > byte(Del) {
		return r, ErrKind
	}
	r.Kind = Kind(b[1])
	r.Tenant = binary.LittleEndian.Uint16(b[2:])
	r.ValBytes = binary.LittleEndian.Uint32(b[4:])
	r.Key = binary.LittleEndian.Uint64(b[8:])
	r.ID = binary.LittleEndian.Uint64(b[16:])
	r.Conn = binary.LittleEndian.Uint32(b[24:])
	r.From = binary.LittleEndian.Uint32(b[28:])
	d := binary.LittleEndian.Uint64(b[32:])
	if d > 1<<62 {
		return r, ErrDeadline
	}
	r.Deadline = sim.Time(d)
	if r.ValBytes > MaxValBytes {
		return r, ErrValue
	}
	if r.Kind != Set && r.ValBytes != 0 {
		return r, ErrValue
	}
	return r, nil
}

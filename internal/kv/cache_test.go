package kv

import (
	"testing"

	"cni/internal/atm"
	"cni/internal/config"
	"cni/internal/memsys"
	"cni/internal/nic"
	"cni/internal/sim"
)

// testCache builds a standalone CNI board and a board cache over it
// with the given pin budget and slot count. When bind is set every slot
// page is pre-bound into the Message Cache, as the transmit path would
// have done before any insert.
func testCache(t *testing.T, frames, nslots int, bind bool) (*boardCache, *nic.Board) {
	t.Helper()
	cfg := config.Default()
	k := sim.NewKernel()
	net, err := atm.New(k, &cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := nic.NewBoard(k, &cfg, 0, net, memsys.New(&cfg))
	pb := uint64(cfg.PageBytes)
	base := HeapBase + slotPage0*pb
	b.MapPages(HeapBase, (slotPage0+nslots)*int(pb))
	c := newBoardCache(b, base, pb, frames, nslots)
	if bind {
		for s := 0; s < nslots; s++ {
			b.MC.BindTransmit(base + uint64(s)*pb)
		}
	}
	return c, b
}

func TestBoardCacheLRUEvictionAtBudget(t *testing.T) {
	c, b := testCache(t, 2, 8, true)
	if !c.insert(0, 1, 10) || !c.insert(1, 1, 20) {
		t.Fatal("inserts under budget refused")
	}
	if !b.MC.Pinned(c.SlotAddr(0)) || !b.MC.Pinned(c.SlotAddr(1)) {
		t.Fatal("inserted slots not pinned")
	}
	// Touch key 0 so key 1 is the LRU entry.
	if _, ok := c.lookup(0, 30); !ok {
		t.Fatal("lookup missed a cached key")
	}
	if !c.insert(2, 1, 40) {
		t.Fatal("insert at budget refused")
	}
	if c.valid != 2 {
		t.Fatalf("valid = %d after eviction, want 2", c.valid)
	}
	if _, ok := c.lookup(1, 50); ok {
		t.Fatal("LRU key survived an at-budget insert")
	}
	if b.MC.Pinned(c.SlotAddr(1)) {
		t.Fatal("evicted slot still pinned")
	}
	for _, k := range []uint64{0, 2} {
		if _, ok := c.lookup(k, 50); !ok {
			t.Fatalf("key %d lost by eviction of another key", k)
		}
	}
}

func TestBoardCacheCollisionReplacesInPlace(t *testing.T) {
	c, b := testCache(t, 4, 8, true)
	if !c.insert(3, 1, 10) {
		t.Fatal("insert refused")
	}
	// Key 11 shares slot 3 mod 8: the insert must replace, not stack.
	if !c.insert(11, 5, 20) {
		t.Fatal("colliding insert refused")
	}
	if c.valid != 1 {
		t.Fatalf("valid = %d after in-place replacement, want 1", c.valid)
	}
	if _, ok := c.lookup(3, 30); ok {
		t.Fatal("displaced key still indexed")
	}
	e, ok := c.lookup(11, 30)
	if !ok || e.version != 5 {
		t.Fatalf("replacement entry: ok=%v version=%d, want version 5", ok, e.version)
	}
	// Exactly one pin on the shared page: a single Unpin must fully
	// release it (a leaked pin from the displaced entry would survive).
	addr := c.SlotAddr(11)
	if !b.MC.Unpin(addr) {
		t.Fatal("slot page not pinned")
	}
	if b.MC.Pinned(addr) {
		t.Fatal("slot page pinned twice after in-place replacement")
	}
}

func TestBoardCacheWriteWindowVeto(t *testing.T) {
	c, b := testCache(t, 4, 8, true)
	if !c.insert(5, 1, 10) {
		t.Fatal("insert refused")
	}
	if !c.writeArrived(5) {
		t.Fatal("writeArrived did not report killing a live entry")
	}
	if _, ok := c.lookup(5, 20); ok {
		t.Fatal("entry survived a SET observed by the board")
	}
	if b.MC.Pinned(c.SlotAddr(5)) {
		t.Fatal("invalidated entry left its page pinned")
	}
	if c.insert(5, 2, 30) {
		t.Fatal("insert admitted during a write window")
	}
	// A second in-flight write: the window stays open until both resolve.
	if c.writeArrived(5) {
		t.Fatal("writeArrived reported a kill with nothing cached")
	}
	c.writeDone(5)
	if c.insert(5, 2, 40) {
		t.Fatal("insert admitted with one of two writes unresolved")
	}
	c.writeDone(5)
	if !c.insert(5, 3, 50) {
		t.Fatal("insert refused after the write window closed")
	}
	if e, ok := c.lookup(5, 60); !ok || e.version != 3 {
		t.Fatalf("post-window entry: ok=%v version=%d, want version 3", ok, e.version)
	}
}

func TestBoardCachePinFailureServesFromMemory(t *testing.T) {
	// Slot pages never bound: Pin must fail and the insert must refuse
	// rather than index an unpinnable page.
	c, _ := testCache(t, 4, 8, false)
	if c.insert(2, 1, 10) {
		t.Fatal("insert succeeded with no Message Cache binding")
	}
	if c.valid != 0 {
		t.Fatalf("valid = %d after a failed insert, want 0", c.valid)
	}
	if _, ok := c.lookup(2, 20); ok {
		t.Fatal("failed insert left an index entry")
	}
}

// Package rpc is a request/response messaging subsystem multiplexing
// many logical connections over the per-node Application Device
// Channel queues of the CNI paper — the serving-style workload the
// ADCs exist for: applications sending and receiving on the critical
// path with no OS involvement.
//
// One Engine attaches to every board of a simulated cluster (the same
// pattern as internal/collective); a Node is one machine's endpoint,
// acting as server, client or both. Requests carry per-connection
// request ids and absolute deadlines; servers run a bounded work queue
// and derive admission control from the depth of the ADC free queue:
// when the free queue runs dry (no receive buffer for the arrival) the
// request is shed with an immediate reject or delayed in board memory
// until a buffer frees, by policy. On the standard interface — which
// has no device channels — the identical admission logic runs against
// a kernel buffer pool of the same size, so the two interfaces differ
// only in their per-request notification and data-path costs, exactly
// the comparison the paper's evaluation makes.
//
// Per-request latency lands in a log2 histogram plus the exact sample
// set (hist.go), so p50/p99/p999 extraction is exact; cluster.Result
// aggregates the Stats across nodes.
package rpc

import (
	"fmt"

	"cni/internal/config"
	"cni/internal/nic"
	"cni/internal/sim"
)

// Protocol operations (the 0x600 block; DSM uses 0x1xx/0x2xx, message
// passing 0x3xx/0x4xx, collectives 0x5xx).
const (
	opRequest  uint32 = 0x600
	opResponse uint32 = 0x601
	opDone     uint32 = 0x602
)

// Response flags.
const (
	flagOK uint32 = iota
	flagRejected
	flagExpired
)

// HeapBase is the virtual base of each node's pinned RPC heap: the hot
// response buffer, per-connection request buffers and the receive
// window live here, registered with the device channel at attach time
// so the enqueue-time protection check passes.
const HeapBase uint64 = 1 << 30

// HeapBytes is the pinned RPC heap per node.
const HeapBytes = 1 << 20

// Policy selects what a server does with a request it cannot admit
// (free queue dry, or work queue full).
type Policy int

const (
	// Shed rejects the request immediately: the board sends a small
	// reject response and the client counts it as Rejected.
	Shed Policy = iota
	// Delay parks the request (the board retains the PDU in its memory;
	// the kernel, in an sk_buff, on the standard interface) and admits
	// it when a buffer and a queue slot free up.
	Delay
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Shed:
		return "shed"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Stats counts one node's RPC activity (client and server roles).
type Stats struct {
	// Client side.
	Issued       uint64 // requests sent
	Completed    uint64 // OK responses received
	Rejected     uint64 // requests shed by a server
	Expired      uint64 // requests whose deadline passed before service
	DeadlineMiss uint64 // OK responses that arrived after the deadline

	// Server side.
	Served     uint64 // requests serviced (including expired ones)
	FreeDry    uint64 // arrivals that found the free queue dry
	QueueFull  uint64 // arrivals that found the work queue full
	Delayed    uint64 // arrivals parked under the Delay policy
	QueuePeak  int    // work-queue high-water mark
	ParkedPeak int    // parked-request high-water mark

	// Lat is the log2 histogram of request latency (issue to response
	// receipt) in CPU cycles, recorded on the client that issued the
	// request. Stats stays a plain comparable value so determinism
	// tests can use ==; the exact sample set behind the percentiles
	// lives in Node.Lat and cluster.Result.RPCLat.
	Lat Hist
}

// Merge folds o into s (cluster-level aggregation).
func (s *Stats) Merge(o Stats) {
	s.Issued += o.Issued
	s.Completed += o.Completed
	s.Rejected += o.Rejected
	s.Expired += o.Expired
	s.DeadlineMiss += o.DeadlineMiss
	s.Served += o.Served
	s.FreeDry += o.FreeDry
	s.QueueFull += o.QueueFull
	s.Delayed += o.Delayed
	if o.QueuePeak > s.QueuePeak {
		s.QueuePeak = o.QueuePeak
	}
	if o.ParkedPeak > s.ParkedPeak {
		s.ParkedPeak = o.ParkedPeak
	}
	s.Lat.Merge(o.Lat)
}

// reqMsg is the wire payload of a request.
type reqMsg struct {
	conn     uint32
	id       uint64
	from     int
	deadline sim.Time // absolute; 0 = none
}

// respMsg is the wire payload of a response.
type respMsg struct {
	conn uint32
	id   uint64
	flag uint32
}

// parked is one request held back by the Delay policy. holds records
// whether the arrival got a receive buffer (and so owns a free-queue
// credit) before the work queue turned it away; a dry-queue arrival
// waits for a credit as well as a work-queue slot.
type parked struct {
	rm    *reqMsg
	holds bool
}

// call is one outstanding client request.
type call struct {
	issued   sim.Time
	deadline sim.Time
	waiter   *sim.Proc // closed-loop caller blocked on this request
	outcome  uint32
	done     bool
}

// Engine is the cluster-wide RPC fabric state: one per simulation,
// attached to every board.
type Engine struct {
	cfg   *config.Config
	k     *sim.Kernel
	nodes []*Node
}

// NewEngine returns an engine for a simulation using cfg on kernel k.
func NewEngine(cfg *config.Config, k *sim.Kernel) *Engine {
	return &Engine{cfg: cfg, k: k}
}

// Node returns the endpoint attached for node i.
func (e *Engine) Node(i int) *Node { return e.nodes[i] }

// Attach registers the RPC protocol handlers on b and returns the
// node's endpoint. Registration alone costs nothing at run time; the
// heap mapping and free-buffer preposting happen only when a role is
// configured (StartServer / Dial), so clusters that never speak RPC
// are untouched.
func (e *Engine) Attach(b *nic.Board) *Node {
	n := &Node{
		e:       e,
		b:       b,
		node:    b.Node(),
		pending: make(map[uint64]*call),
	}
	b.Register(opRequest, false, n.onRequest)
	b.Register(opResponse, false, n.onResponse)
	b.Register(opDone, false, n.onDone)
	e.nodes = append(e.nodes, n)
	return n
}

// ServerConfig sizes one node's serving state.
type ServerConfig struct {
	// WorkQueue bounds the server-side queue of admitted requests.
	WorkQueue int
	// FreeBufs is the number of receive buffers preposted on the ADC
	// free queue (the kernel buffer pool on the standard interface);
	// admission control runs against this depth. At most the channel
	// queue capacity (256) on the CNI.
	FreeBufs int
	// Service is the CPU cost of serving one request, in cycles.
	Service sim.Time
	// RespBytes is the response payload size.
	RespBytes int
	// Policy is what to do with requests that cannot be admitted.
	Policy Policy
	// Clients is how many client nodes will send a done marker; Serve
	// returns once all of them have and the queues are empty.
	Clients int
}

// Node is one machine's RPC endpoint.
type Node struct {
	e    *Engine
	node int
	b    *nic.Board

	mapped bool

	// Server state. credits mirrors the ADC free-queue depth on the
	// CNI (asserted in assertFreeMirror) and models the same-size
	// kernel buffer pool on the standard interface.
	serving  bool
	sc       ServerConfig
	credits  int
	workq    []*reqMsg
	parkedq  []parked
	proc     *sim.Proc
	doneSeen int

	// Client state.
	conns    []*Conn
	nextConn uint32
	nextID   uint64
	pending  map[uint64]*call
	waiter   *sim.Proc // client blocked in WaitIdle

	Stats Stats
	// Lat holds the exact latency samples behind Stats.Lat, for exact
	// percentile extraction (Lat.Hist always equals Stats.Lat).
	Lat Latencies
}

// mapHeap pins the node's RPC heap on first use (device-channel region
// registration plus TLB entries on the CNI; no-op on the standard
// board).
func (n *Node) mapHeap() {
	if n.mapped {
		return
	}
	n.mapped = true
	n.b.MapPages(HeapBase, HeapBytes)
}

// respSlot returns the hot response buffer of a serving node: every OK
// response transmits from the same page, so on the CNI the Message
// Cache binds it once and later responses are transmit hits with no
// DMA — the hot-buffer serving benefit of transmit caching.
func (n *Node) respSlot() uint64 { return HeapBase }

// reqSlot returns the request buffer of connection c on the client:
// one page per connection (reused across the connection's requests, so
// it too caches hot), after the response page.
func (n *Node) reqSlot(c *Conn) uint64 {
	pb := uint64(n.e.cfg.PageBytes)
	return HeapBase + pb + uint64(c.id%63)*pb
}

// rxSlot returns the receive window where arriving payloads land (a
// fixed window keeps the model simple; arrival buffers are not
// receive-cached).
func (n *Node) rxSlot() uint64 { return HeapBase + HeapBytes/2 }

// StartServer configures the node to serve requests. Call before the
// simulation runs; the free buffers are preposted outside simulated
// time, the OSIRIS setup discipline.
func (n *Node) StartServer(sc ServerConfig) {
	if sc.WorkQueue <= 0 || sc.FreeBufs <= 0 {
		panic(fmt.Sprintf("rpc: node %d server with work queue %d, free bufs %d",
			n.node, sc.WorkQueue, sc.FreeBufs))
	}
	n.mapHeap()
	n.serving = true
	n.sc = sc
	n.credits = sc.FreeBufs
	for i := 0; i < sc.FreeBufs; i++ {
		if err := n.b.TryPostFree(n.rxSlot(), n.e.cfg.PageBytes); err != nil {
			panic(fmt.Sprintf("rpc: node %d preposting free buffer %d: %v", n.node, i, err))
		}
	}
}

// Conn is one logical client connection to a server node. Many
// connections multiplex over the node's single device channel; the
// connection id rides in the header's Aux word, so PATHFINDER could
// demultiplex per connection if a handler asked it to.
type Conn struct {
	n        *Node
	id       uint32
	server   int
	reqBytes int
	deadline sim.Time // relative; 0 = none
}

// Dial opens a logical connection from this node to server. reqBytes
// is the request payload size; deadline (cycles, 0 = none) bounds each
// request issued on the connection.
func (n *Node) Dial(server int, reqBytes int, deadline sim.Time) *Conn {
	if server == n.node {
		panic(fmt.Sprintf("rpc: node %d dialing itself", n.node))
	}
	n.mapHeap()
	// Connection ids are node-local (dialing node in the high half, the
	// node's dial sequence in the low): a cluster-global counter would
	// make ids depend on the cross-node interleaving of Dial calls,
	// which sharded runs execute concurrently.
	c := &Conn{n: n, id: uint32(n.node)<<16 | n.nextConn, server: server, reqBytes: reqBytes, deadline: deadline}
	n.nextConn++
	n.conns = append(n.conns, c)
	return c
}

// Server reports the node the connection is dialed to.
func (c *Conn) Server() int { return c.server }

// issue builds and transmits one request from p's context, measuring
// latency from issuedAt. For open-loop clients issuedAt is the
// scheduled arrival, which may be earlier than the proc's clock when
// the send path itself is backed up — that backup is part of the
// measured latency (no coordinated omission).
func (c *Conn) issue(p *sim.Proc, issuedAt sim.Time) *call {
	n := c.n
	id := n.nextID
	n.nextID++
	var deadline sim.Time
	if c.deadline > 0 {
		deadline = issuedAt + c.deadline
	}
	ca := &call{issued: issuedAt, deadline: deadline}
	n.pending[id] = ca
	n.Stats.Issued++
	m := &nic.Message{
		From: n.node, To: c.server, Op: opRequest, Aux: c.id,
		Size:    nic.HeaderBytes + 16 + c.reqBytes,
		VAddr:   n.reqSlot(c),
		CacheTx: true,
		Payload: &reqMsg{conn: c.id, id: id, from: n.node, deadline: deadline},
	}
	if c.reqBytes > 0 {
		m.DeliverVAddr = n.e.Node(c.server).rxSlot()
		m.DeliverBytes = c.reqBytes
	}
	n.b.Send(p, m)
	return ca
}

// Fire issues one request asynchronously (open loop): the response is
// recorded when it arrives; latency is measured from issuedAt.
func (c *Conn) Fire(p *sim.Proc, issuedAt sim.Time) {
	c.issue(p, issuedAt)
}

// Outcome is the terminal state of one call.
type Outcome int

// The call outcomes.
const (
	OK Outcome = iota
	Rejected
	Expired
)

// Call issues one request and blocks until its response arrives
// (closed loop). It reports the outcome; the latency sample is
// recorded by the response handler.
func (c *Conn) Call(p *sim.Proc) Outcome {
	p.Sync()
	ca := c.issue(p, p.Local())
	ca.waiter = p
	for !ca.done {
		p.Block()
	}
	ca.waiter = nil
	switch ca.outcome {
	case flagRejected:
		return Rejected
	case flagExpired:
		return Expired
	default:
		return OK
	}
}

// Outstanding reports the number of requests awaiting responses.
func (n *Node) Outstanding() int { return len(n.pending) }

// WaitIdle blocks p until every issued request has a terminal outcome.
func (n *Node) WaitIdle(p *sim.Proc) {
	p.Sync()
	for len(n.pending) > 0 {
		n.waiter = p
		p.Block()
		n.waiter = nil
	}
}

// Done tells every dialed server this client is finished; servers
// exit once all clients are done and their queues drain. Call after
// WaitIdle.
func (n *Node) Done(p *sim.Proc) {
	sent := map[int]bool{}
	for _, c := range n.conns {
		if sent[c.server] {
			continue
		}
		sent[c.server] = true
		n.b.Send(p, &nic.Message{
			From: n.node, To: c.server, Op: opDone,
			Size:    nic.HeaderBytes + 8,
			Payload: &reqMsg{from: n.node},
		})
	}
}

// reconcileFreeQueue settles the ADC free queue against the credits
// counter on a serving CNI node. The board pops one descriptor per
// host-path arrival at arrival time while the protocol's accounting
// runs at handler-notify time, so the two views diverge transiently
// (back-to-back arrivals, control messages consuming a descriptor);
// the credits counter is the authority — it is what admission control
// reads — and after every handler the ring is brought back to exactly
// that depth, so free-queue exhaustion on the wire and in the
// accounting coincide.
func (n *Node) reconcileFreeQueue() {
	ch := n.b.Channel()
	if ch == nil || !n.serving {
		return
	}
	for ch.Free.Len() > n.credits {
		ch.Free.Pop()
	}
	for ch.Free.Len() < n.credits {
		if err := n.b.TryPostFree(n.rxSlot(), n.e.cfg.PageBytes); err != nil {
			panic(fmt.Sprintf("rpc: node %d replenishing free queue: %v", n.node, err))
		}
	}
}

// onRequest is the server-side arrival handler, running at host-notify
// time. Admission control happens here: a request is admitted only if
// a receive buffer was available for it (the ADC free queue was not
// dry) and the bounded work queue has room; otherwise it is shed or
// parked by policy.
func (n *Node) onRequest(at sim.Time, m *nic.Message) {
	if !n.serving {
		panic(fmt.Sprintf("rpc: node %d received a request but is not serving", n.node))
	}
	rm := m.Payload.(*reqMsg)
	// A receive buffer is consumed if one is available; the free queue
	// itself is settled against the counter below.
	consumed := n.credits > 0
	if consumed {
		n.credits--
	}
	switch {
	case !consumed:
		// Free queue dry: the request data has no receive buffer.
		n.Stats.FreeDry++
		if n.sc.Policy == Shed {
			n.reject(at, rm)
		} else {
			n.park(rm, false)
		}
	case len(n.workq) >= n.sc.WorkQueue:
		n.Stats.QueueFull++
		if n.sc.Policy == Shed {
			n.reject(at, rm)
			n.releaseCredit()
		} else {
			// The parked request keeps its receive buffer.
			n.park(rm, true)
		}
	default:
		n.enqueueWork(rm)
		if n.proc != nil {
			n.proc.WakeAt(at)
		}
	}
	n.reconcileFreeQueue()
}

// park holds rm back under the Delay policy.
func (n *Node) park(rm *reqMsg, holds bool) {
	n.parkedq = append(n.parkedq, parked{rm: rm, holds: holds})
	n.Stats.Delayed++
	if len(n.parkedq) > n.Stats.ParkedPeak {
		n.Stats.ParkedPeak = len(n.parkedq)
	}
}

// enqueueWork queues rm for the server loop.
func (n *Node) enqueueWork(rm *reqMsg) {
	n.workq = append(n.workq, rm)
	if len(n.workq) > n.Stats.QueuePeak {
		n.Stats.QueuePeak = len(n.workq)
	}
}

// releaseCredit returns one receive buffer: the credit comes back and
// the ADC free queue is replenished.
func (n *Node) releaseCredit() {
	n.credits++
	n.reconcileFreeQueue()
}

// reject sends an immediate shed response from board/handler context:
// a small inline control message (no buffer, no DMA). On the standard
// interface SendAt charges the kernel send path to the host CPU, as a
// kernel-issued reject would.
func (n *Node) reject(at sim.Time, rm *reqMsg) {
	n.b.SendAt(at, &nic.Message{
		From: n.node, To: rm.from, Op: opResponse, Aux: rm.conn,
		Size:    nic.HeaderBytes + 16,
		Payload: &respMsg{conn: rm.conn, id: rm.id, flag: flagRejected},
	})
}

// complete returns the served request's receive buffer and admits
// parked requests while a work-queue slot (and, for buffer-less parks,
// a credit) is available.
func (n *Node) complete() {
	n.releaseCredit()
	for len(n.parkedq) > 0 && len(n.workq) < n.sc.WorkQueue {
		pe := n.parkedq[0]
		if !pe.holds {
			if n.credits <= 0 {
				break
			}
			// The parked request finally gets its receive buffer; the
			// free queue is settled to the new depth below.
			n.credits--
			n.reconcileFreeQueue()
		}
		n.parkedq = n.parkedq[1:]
		n.enqueueWork(pe.rm)
	}
}

// Serve runs the server loop on p: pop one admitted request, charge
// the dequeue and service costs, respond from the hot response buffer,
// and return the receive buffer. It returns once every client has sent
// its done marker and the queues are empty.
func (n *Node) Serve(p *sim.Proc) {
	if !n.serving {
		panic(fmt.Sprintf("rpc: node %d Serve without StartServer", n.node))
	}
	n.proc = p
	dequeue := n.b.RecvDequeueCost()
	for {
		for len(n.workq) > 0 {
			rm := n.workq[0]
			n.workq = n.workq[1:]
			p.Advance(dequeue)
			p.Sync()
			flag := flagOK
			size := nic.HeaderBytes + 16 + n.sc.RespBytes
			var vaddr uint64
			if rm.deadline > 0 && p.Local() > rm.deadline {
				// The deadline passed while the request sat queued: skip
				// the service work, answer with a small expired marker.
				flag = flagExpired
				size = nic.HeaderBytes + 16
			} else {
				p.Advance(n.sc.Service)
				p.Sync()
				vaddr = n.respSlot()
			}
			n.Stats.Served++
			m := &nic.Message{
				From: n.node, To: rm.from, Op: opResponse, Aux: rm.conn,
				Size:    size,
				VAddr:   vaddr,
				CacheTx: vaddr != 0,
				Payload: &respMsg{conn: rm.conn, id: rm.id, flag: flag},
			}
			if flag == flagOK && n.sc.RespBytes > 0 {
				m.DeliverVAddr = n.e.Node(rm.from).rxSlot()
				m.DeliverBytes = n.sc.RespBytes
			}
			n.b.Send(p, m)
			n.complete()
		}
		if n.doneSeen >= n.sc.Clients && len(n.workq) == 0 && len(n.parkedq) == 0 {
			return
		}
		p.Block()
	}
}

// onResponse is the client-side arrival handler: match the request id,
// record the outcome and the latency sample, and wake whoever waits.
func (n *Node) onResponse(at sim.Time, m *nic.Message) {
	n.reconcileFreeQueue()
	rm := m.Payload.(*respMsg)
	ca, ok := n.pending[rm.id]
	if !ok {
		panic(fmt.Sprintf("rpc: node %d response for unknown request %d", n.node, rm.id))
	}
	delete(n.pending, rm.id)
	ca.done = true
	ca.outcome = rm.flag
	// The application-side dequeue (ADC receive-queue pop) costs the
	// host CPU if it is busy; a blocked (waiting) client absorbs it in
	// its wake-up latency like the notify costs.
	n.b.PenalizeHost(n.b.RecvDequeueCost())
	switch rm.flag {
	case flagOK:
		n.Stats.Completed++
		n.Lat.Add(at - ca.issued)
		n.Stats.Lat = n.Lat.Hist
		if ca.deadline > 0 && at > ca.deadline {
			n.Stats.DeadlineMiss++
		}
	case flagRejected:
		n.Stats.Rejected++
	case flagExpired:
		n.Stats.Expired++
	}
	if ca.waiter != nil {
		ca.waiter.WakeAt(at)
	} else if n.waiter != nil && len(n.pending) == 0 {
		n.waiter.WakeAt(at)
	}
}

// onDone is the server-side client-finished marker.
func (n *Node) onDone(at sim.Time, m *nic.Message) {
	n.reconcileFreeQueue()
	n.doneSeen++
	if n.proc != nil {
		n.proc.WakeAt(at)
	}
}

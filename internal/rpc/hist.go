package rpc

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"cni/internal/sim"
)

// Hist is a log2 latency histogram. Like collective.Hist it is a plain
// comparable value (fixed-size bucket array, no pointers) so whole
// histograms can be compared with == in determinism tests; 26 buckets
// cover per-request latencies up to 2^25 cycles (~200 ms at 166 MHz),
// far beyond anything a loaded server produces.
type Hist struct {
	Count   uint64
	Sum     uint64 // total cycles, for the mean
	Min     uint64 // smallest sample (meaningful only when Count > 0)
	Max     uint64 // largest sample
	Buckets [26]uint64
}

// Add records one latency sample in cycles.
func (h *Hist) Add(c sim.Time) {
	if c < 0 {
		c = 0
	}
	v := uint64(c)
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	i := bits.Len64(v)
	if i >= len(h.Buckets) {
		i = len(h.Buckets) - 1
	}
	h.Buckets[i]++
}

// Merge folds o into h.
func (h *Hist) Merge(o Hist) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// Mean reports the mean sample in cycles (0 when empty).
func (h Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// String renders the occupied buckets, e.g. "4k:12 8k:3" meaning 12
// samples in [4096,8192) cycles.
func (h Hist) String() string {
	var b strings.Builder
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		lo := uint64(0)
		if i > 0 {
			lo = 1 << (i - 1)
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		switch {
		case lo >= 1<<20:
			fmt.Fprintf(&b, "%dM:%d", lo>>20, c)
		case lo >= 1<<10:
			fmt.Fprintf(&b, "%dk:%d", lo>>10, c)
		default:
			fmt.Fprintf(&b, "%d:%d", lo, c)
		}
	}
	if b.Len() == 0 {
		return "-"
	}
	return b.String()
}

// Latencies records per-request latency twice over: into a log2 Hist
// for compact display and ==-comparison, and as the exact sample set so
// that p50/p99/p999 come out exact (nearest-rank over the recorded
// samples) rather than bucket-resolution estimates. One int64 per
// request is cheap at the request counts the workloads here run.
type Latencies struct {
	Hist    Hist
	Samples []sim.Time

	sorted bool
}

// Add records one latency sample in cycles.
func (l *Latencies) Add(c sim.Time) {
	l.Hist.Add(c)
	l.Samples = append(l.Samples, c)
	l.sorted = false
}

// Merge folds o into l.
func (l *Latencies) Merge(o Latencies) {
	l.Hist.Merge(o.Hist)
	l.Samples = append(l.Samples, o.Samples...)
	l.sorted = false
}

// Percentile returns the exact q-th percentile (q in (0,100]) of the
// recorded samples by the nearest-rank definition: the smallest sample
// such that at least q% of samples are <= it. Empty latencies report 0.
func (l *Latencies) Percentile(q float64) sim.Time {
	n := len(l.Samples)
	if n == 0 {
		return 0
	}
	if !l.sorted {
		sort.Slice(l.Samples, func(i, j int) bool { return l.Samples[i] < l.Samples[j] })
		l.sorted = true
	}
	// Ceil with a tolerance so that float artifacts in q/100*n (e.g.
	// 99% of 1000 computing as 990.0000000000001) cannot shift the rank.
	t := q / 100 * float64(n)
	rank := int(t)
	if float64(rank) < t-1e-9 {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return l.Samples[rank-1]
}

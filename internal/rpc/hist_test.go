package rpc

import (
	"strings"
	"testing"

	"cni/internal/sim"
)

// TestPercentileExactNearestRank pins the nearest-rank definition on a
// fully known sample set: with samples 1..1000, the q-th percentile is
// exactly sample ceil(q*10) — no bucket rounding, no interpolation.
func TestPercentileExactNearestRank(t *testing.T) {
	var l Latencies
	// Insert in a scrambled order so the lazy sort is exercised.
	for i := 0; i < 1000; i++ {
		l.Add(sim.Time((i*619)%1000 + 1))
	}
	cases := map[float64]sim.Time{
		50:   500,
		90:   900,
		99:   990,
		99.9: 999,
		100:  1000,
	}
	for q, want := range cases {
		if got := l.Percentile(q); got != want {
			t.Errorf("p%v = %d, want %d", q, got, want)
		}
	}
	// Tiny sets: 1 sample is every percentile.
	var one Latencies
	one.Add(42)
	for _, q := range []float64{0.1, 50, 99.9, 100} {
		if got := one.Percentile(q); got != 42 {
			t.Errorf("single-sample p%v = %d, want 42", q, got)
		}
	}
	var empty Latencies
	if got := empty.Percentile(99); got != 0 {
		t.Errorf("empty p99 = %d, want 0", got)
	}
}

// TestPercentileFloatArtifact guards the rank computation against
// float rounding: 99% of 1000 computes as 990.0000000000001 in
// float64, which a naive ceil turns into rank 991.
func TestPercentileFloatArtifact(t *testing.T) {
	var l Latencies
	for i := 1; i <= 1000; i++ {
		l.Add(sim.Time(i))
	}
	if got := l.Percentile(99); got != 990 {
		t.Fatalf("p99 over 1000 samples = %d, want exactly 990", got)
	}
}

// TestHistAddMergeAndComparability covers the log2 bucketing, the
// Min/Max/Sum bookkeeping, Merge, and the comparable-value property
// the determinism tests rely on.
func TestHistAddMergeAndComparability(t *testing.T) {
	var a, b Hist
	for _, v := range []sim.Time{1, 2, 3, 4095, 4096, 1 << 24, -5} {
		a.Add(v)
	}
	if a.Count != 7 || a.Min != 0 || a.Max != 1<<24 {
		t.Fatalf("count/min/max = %d/%d/%d", a.Count, a.Min, a.Max)
	}
	for _, v := range []sim.Time{10, 20} {
		b.Add(v)
	}
	merged := a
	merged.Merge(b)
	if merged.Count != 9 || merged.Sum != a.Sum+b.Sum {
		t.Fatalf("merge count=%d sum=%d", merged.Count, merged.Sum)
	}
	var a2 Hist
	for _, v := range []sim.Time{1, 2, 3, 4095, 4096, 1 << 24, -5} {
		a2.Add(v)
	}
	if a != a2 {
		t.Fatal("identical insertion orders produced unequal hists")
	}
	if a == merged {
		t.Fatal("different hists compare equal")
	}
	if s := merged.String(); !strings.Contains(s, ":") {
		t.Fatalf("String() = %q, want occupied buckets", s)
	}
	var empty Hist
	if empty.String() != "-" || empty.Mean() != 0 {
		t.Fatalf("empty hist renders %q mean %v", empty.String(), empty.Mean())
	}
}

// TestLatenciesMerge checks that merged sample sets yield the same
// percentiles as a single combined set.
func TestLatenciesMerge(t *testing.T) {
	var a, b, all Latencies
	for i := 1; i <= 100; i++ {
		if i%2 == 0 {
			a.Add(sim.Time(i))
		} else {
			b.Add(sim.Time(i))
		}
		all.Add(sim.Time(i))
	}
	a.Merge(b)
	for _, q := range []float64{50, 90, 99} {
		if a.Percentile(q) != all.Percentile(q) {
			t.Fatalf("p%v: merged %d vs combined %d", q, a.Percentile(q), all.Percentile(q))
		}
	}
	if a.Hist != all.Hist {
		t.Fatal("merged hist differs from combined hist")
	}
}

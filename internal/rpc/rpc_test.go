package rpc_test

import (
	"errors"
	"testing"

	"cni/internal/adc"
	"cni/internal/cluster"
	"cni/internal/config"
	"cni/internal/dsm"
	"cni/internal/rpc"
	"cni/internal/sim"
)

// run builds a fresh cluster under cfg and executes app on every node.
func run(cfg config.Config, n int, app cluster.App) (*cluster.Cluster, *cluster.Result) {
	c := mustCluster(&cfg, n, nil)
	return c, c.Run(app)
}

// bothKinds runs the subtest under the CNI and the standard interface.
func bothKinds(t *testing.T, f func(t *testing.T, cfg config.Config)) {
	t.Run("cni", func(t *testing.T) { f(t, config.Default()) })
	t.Run("standard", func(t *testing.T) { f(t, config.Standard()) })
}

// TestClosedLoopRequestResponse drives a 1-server 2-client cluster
// with blocking calls on both NIC models: every call completes OK,
// every latency sample is recorded, and the CNI run must beat the
// standard run's mean latency (poll + ADC vs interrupt + kernel).
func TestClosedLoopRequestResponse(t *testing.T) {
	const calls = 20
	means := map[string]float64{}
	for name, cfg := range map[string]config.Config{"cni": config.Default(), "standard": config.Standard()} {
		var c *cluster.Cluster
		c = mustCluster(&cfg, 3, nil)
		res := c.Run(func(w *dsm.Worker) {
			p, id := w.Proc(), w.Node()
			node := c.RPC.Node(id)
			if id == 0 {
				node.StartServer(rpc.ServerConfig{
					WorkQueue: 8, FreeBufs: 8, Service: 500, RespBytes: 256, Clients: 2,
				})
				node.Serve(p)
				return
			}
			conn := node.Dial(0, 64, 0)
			for i := 0; i < calls; i++ {
				if out := conn.Call(p); out != rpc.OK {
					t.Errorf("%s node %d call %d: outcome %v", name, id, i, out)
				}
			}
			node.WaitIdle(p)
			node.Done(p)
		})
		if res.RPC.Issued != 2*calls || res.RPC.Completed != 2*calls || res.RPC.Served != 2*calls {
			t.Fatalf("%s: issued/completed/served = %d/%d/%d, want %d each",
				name, res.RPC.Issued, res.RPC.Completed, res.RPC.Served, 2*calls)
		}
		if res.RPC.Lat.Count != 2*calls || res.RPCLat.Percentile(50) <= 0 {
			t.Fatalf("%s: latency histogram count %d p50 %d", name, res.RPC.Lat.Count, res.RPCLat.Percentile(50))
		}
		means[name] = res.RPC.Lat.Mean()
	}
	if means["cni"] >= means["standard"] {
		t.Fatalf("CNI mean latency %.0f not below standard %.0f", means["cni"], means["standard"])
	}
}

// burst fires n requests back-to-back from one client node (node 1)
// against the server on node 0 configured with sc.
func burst(cfg config.Config, n int, sc rpc.ServerConfig, deadline sim.Time) (*cluster.Cluster, *cluster.Result) {
	var c *cluster.Cluster
	c = mustCluster(&cfg, 2, nil)
	sc.Clients = 1
	res := c.Run(func(w *dsm.Worker) {
		p, id := w.Proc(), w.Node()
		node := c.RPC.Node(id)
		if id == 0 {
			node.StartServer(sc)
			node.Serve(p)
			return
		}
		conn := node.Dial(0, 64, deadline)
		for i := 0; i < n; i++ {
			p.Sync()
			conn.Fire(p, p.Local())
		}
		node.WaitIdle(p)
		node.Done(p)
	})
	return c, res
}

// TestFreeQueueExhaustionShed is the regression test for ADC
// free-queue exhaustion under the Shed policy: a burst far deeper than
// the preposted free buffers must drive the free queue dry, and every
// request that finds it dry is rejected immediately — the documented
// backpressure behavior — on both NIC models. On the CNI the board's
// own counters must corroborate: arrivals consumed real free-queue
// descriptors, and the queue refills to its configured depth once the
// burst drains.
func TestFreeQueueExhaustionShed(t *testing.T) {
	bothKinds(t, func(t *testing.T, cfg config.Config) {
		const reqs = 12
		c, res := burst(cfg, reqs, rpc.ServerConfig{
			WorkQueue: 16, FreeBufs: 2, Service: 200000, RespBytes: 64, Policy: rpc.Shed,
		}, 0)
		if res.RPC.FreeDry == 0 {
			t.Fatal("burst never found the free queue dry")
		}
		if res.RPC.Rejected == 0 {
			t.Fatal("shed policy rejected nothing at exhaustion")
		}
		if got := res.RPC.Completed + res.RPC.Rejected; got != reqs {
			t.Fatalf("completed %d + rejected %d != %d issued",
				res.RPC.Completed, res.RPC.Rejected, reqs)
		}
		if res.RPC.Delayed != 0 {
			t.Fatalf("shed policy parked %d requests", res.RPC.Delayed)
		}
		board := c.Nodes[0].Board
		if cfg.NIC == config.NICCNI {
			if board.Stats.FreeConsumed == 0 {
				t.Fatal("no free-queue descriptors were consumed on the CNI board")
			}
			if got := board.FreeDepth(); got != 2 {
				t.Fatalf("free queue holds %d descriptors after drain, want 2", got)
			}
		} else if board.FreeDepth() != 0 {
			t.Fatal("standard board reports a free queue")
		}
	})
}

// TestFreeQueueExhaustionDelay is the same burst under the Delay
// policy: exhaustion parks requests instead of shedding them, and all
// of them eventually complete once buffers free up.
func TestFreeQueueExhaustionDelay(t *testing.T) {
	bothKinds(t, func(t *testing.T, cfg config.Config) {
		const reqs = 12
		_, res := burst(cfg, reqs, rpc.ServerConfig{
			WorkQueue: 16, FreeBufs: 2, Service: 200000, RespBytes: 64, Policy: rpc.Delay,
		}, 0)
		if res.RPC.FreeDry == 0 {
			t.Fatal("burst never found the free queue dry")
		}
		if res.RPC.Delayed == 0 || res.RPC.ParkedPeak == 0 {
			t.Fatalf("delay policy parked nothing (delayed=%d peak=%d)",
				res.RPC.Delayed, res.RPC.ParkedPeak)
		}
		if res.RPC.Completed != reqs || res.RPC.Rejected != 0 {
			t.Fatalf("completed %d rejected %d, want all %d completed",
				res.RPC.Completed, res.RPC.Rejected, reqs)
		}
	})
}

// TestWorkQueueBackpressure exhausts the bounded work queue (free
// buffers plentiful) and checks the same two policies key off it.
func TestWorkQueueBackpressure(t *testing.T) {
	bothKinds(t, func(t *testing.T, cfg config.Config) {
		const reqs = 12
		_, res := burst(cfg, reqs, rpc.ServerConfig{
			WorkQueue: 2, FreeBufs: 64, Service: 200000, RespBytes: 64, Policy: rpc.Shed,
		}, 0)
		if res.RPC.QueueFull == 0 || res.RPC.Rejected == 0 {
			t.Fatalf("queueFull=%d rejected=%d, want both > 0", res.RPC.QueueFull, res.RPC.Rejected)
		}
		if got := res.RPC.Completed + res.RPC.Rejected; got != reqs {
			t.Fatalf("completed+rejected = %d, want %d", got, reqs)
		}
	})
}

// TestEnqueueTimeProtection pins the documented ADC protection model
// on a live board: free-queue descriptors naming memory outside the
// registered regions are refused at enqueue time with ErrProtection,
// and overfilling the free queue reports ErrQueueFull to the caller.
func TestEnqueueTimeProtection(t *testing.T) {
	cfg := config.Default()
	c := mustCluster(&cfg, 2, nil)
	srv := c.RPC.Node(0)
	srv.StartServer(rpc.ServerConfig{WorkQueue: 4, FreeBufs: 4, Service: 100, Clients: 1})
	board := c.Nodes[0].Board
	if err := board.TryPostFree(0xdead000, 64); !errors.Is(err, adc.ErrProtection) {
		t.Fatalf("unregistered buffer accepted: err=%v", err)
	}
	var full error
	for i := 0; i < 1024; i++ {
		if full = board.TryPostFree(rpc.HeapBase, 64); full != nil {
			break
		}
	}
	if !errors.Is(full, adc.ErrQueueFull) {
		t.Fatalf("free queue never filled: err=%v", full)
	}
	// The standard board has no channel: posting is a silent no-op.
	scfg := config.Standard()
	cs := mustCluster(&scfg, 2, nil)
	if err := cs.Nodes[0].Board.TryPostFree(0xdead000, 64); err != nil {
		t.Fatalf("standard board TryPostFree = %v, want nil", err)
	}
}

// TestDeadlines covers both expiry paths: a request whose deadline
// passes while queued is answered with a cheap expired marker, and an
// OK response landing after the deadline counts as a deadline miss.
func TestDeadlines(t *testing.T) {
	bothKinds(t, func(t *testing.T, cfg config.Config) {
		const reqs = 6
		// Service dwarfs the deadline: the burst's head-of-line request
		// is in service when its deadline passes (a miss), the queued
		// ones expire at dequeue.
		_, res := burst(cfg, reqs, rpc.ServerConfig{
			WorkQueue: 16, FreeBufs: 16, Service: 500000, RespBytes: 64, Policy: rpc.Delay,
		}, 100000)
		if res.RPC.Expired == 0 {
			t.Fatal("no queued request expired")
		}
		if res.RPC.DeadlineMiss == 0 {
			t.Fatal("the in-service request's late response was not counted as a miss")
		}
		if got := res.RPC.Completed + res.RPC.Expired; got != reqs {
			t.Fatalf("completed %d + expired %d != %d", res.RPC.Completed, res.RPC.Expired, reqs)
		}
	})
}

// TestManyConnectionsMultiplex opens several logical connections per
// client over the single device channel and checks requests on all of
// them complete and are accounted per node.
func TestManyConnectionsMultiplex(t *testing.T) {
	cfg := config.Default()
	var c *cluster.Cluster
	c = mustCluster(&cfg, 3, nil)
	const perConn = 5
	res := c.Run(func(w *dsm.Worker) {
		p, id := w.Proc(), w.Node()
		node := c.RPC.Node(id)
		if id == 0 {
			node.StartServer(rpc.ServerConfig{
				WorkQueue: 32, FreeBufs: 32, Service: 300, RespBytes: 128, Clients: 2,
			})
			node.Serve(p)
			return
		}
		conns := []*rpc.Conn{node.Dial(0, 32, 0), node.Dial(0, 64, 0), node.Dial(0, 128, 0)}
		for i := 0; i < perConn; i++ {
			for _, conn := range conns {
				if out := conn.Call(p); out != rpc.OK {
					t.Errorf("node %d: outcome %v", id, out)
				}
			}
		}
		node.WaitIdle(p)
		node.Done(p)
	})
	want := uint64(2 * 3 * perConn)
	if res.RPC.Completed != want || res.RPC.Served != want {
		t.Fatalf("completed/served = %d/%d, want %d", res.RPC.Completed, res.RPC.Served, want)
	}
	for id := 1; id <= 2; id++ {
		if got := res.PerNode[id].RPC.Completed; got != 3*perConn {
			t.Fatalf("node %d completed %d, want %d", id, got, 3*perConn)
		}
	}
}

// mustCluster builds a cluster the test knows is valid.
func mustCluster(cfg *config.Config, n int, setup cluster.Setup) *cluster.Cluster {
	c, err := cluster.New(cfg, n, setup)
	if err != nil {
		panic(err)
	}
	return c
}

// Package adc implements Application Device Channels (Section 2.1 of
// the CNI paper): per-connection triplets of transmit, receive and free
// queues carved out of the board's dual-ported memory and mapped into
// the application's address space. The kernel is involved only at
// connection setup and teardown; sends and receives are queue
// manipulations that rely solely on the atomicity of loads and stores,
// so no locks are taken and no gang scheduling is required.
//
// Protection is verified only when an application places a buffer in a
// queue — the descriptor's buffer must lie inside a region the kernel
// registered for the channel at setup — which removes verification from
// the per-message critical path exactly as the paper describes.
package adc

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// DescFlags mark properties of a queued buffer.
type DescFlags uint32

const (
	// FlagCache is the header bit that asks the board to bind this
	// buffer into the Message Cache (transmit or receive caching).
	FlagCache DescFlags = 1 << iota
	// FlagInterrupt asks the board to interrupt the host when this
	// receive buffer is filled even if the poller is active.
	FlagInterrupt
)

// Descriptor names one host buffer in a channel queue.
type Descriptor struct {
	VAddr uint64 // host virtual address
	Len   int
	Flags DescFlags
	// Tag is opaque to the board; the DSM layer uses it to match
	// completions to requests.
	Tag uint64
}

// Queue is a bounded single-producer single-consumer ring. Head and
// tail are single words updated with atomic stores, mirroring the
// lock-free shared-queue layout in the OSIRIS/CNI dual-ported memory.
// The ring's backing array materializes on the first Push: a channel
// opens three queues, and workloads that never touch one (no preposted
// free buffers, AIH-consumed receives) should not pay for its slots —
// at 1024 nodes the untouched rings used to dominate setup allocation.
type Queue struct {
	buf  []Descriptor
	size uint64
	mask uint64
	head atomic.Uint64 // next slot to pop
	tail atomic.Uint64 // next slot to push
}

// NewQueue returns a queue with capacity rounded up to a power of two.
func NewQueue(capacity int) *Queue {
	if capacity <= 0 {
		capacity = 1
	}
	n := 1
	for n < capacity {
		n <<= 1
	}
	return &Queue{size: uint64(n)}
}

// Cap reports the queue capacity.
func (q *Queue) Cap() int { return int(q.size) }

// Len reports the number of queued descriptors.
func (q *Queue) Len() int {
	return int(q.tail.Load() - q.head.Load())
}

// Push appends d and reports whether there was room.
func (q *Queue) Push(d Descriptor) bool {
	t := q.tail.Load()
	h := q.head.Load()
	if t-h >= q.size {
		return false
	}
	if t-h >= uint64(len(q.buf)) {
		q.grow(h, t)
	}
	q.buf[t&q.mask] = d
	q.tail.Store(t + 1)
	return true
}

// grow widens the materialized ring toward the configured capacity,
// preserving FIFO contents across the re-indexing. (The simulation
// kernel is strictly sequential, so the producer and consumer never
// actually race the reallocation.)
func (q *Queue) grow(h, t uint64) {
	n := uint64(len(q.buf)) * 2
	if n == 0 {
		n = 16
	}
	if n > q.size {
		n = q.size
	}
	nb := make([]Descriptor, n)
	nm := n - 1
	for i := h; i < t; i++ {
		nb[i&nm] = q.buf[i&q.mask]
	}
	q.buf = nb
	q.mask = nm
}

// Pop removes and returns the head descriptor, reporting whether the
// queue was non-empty.
func (q *Queue) Pop() (Descriptor, bool) {
	h := q.head.Load()
	if h == q.tail.Load() {
		return Descriptor{}, false
	}
	d := q.buf[h&q.mask]
	q.head.Store(h + 1)
	return d, true
}

// Peek returns the head descriptor without removing it.
func (q *Queue) Peek() (Descriptor, bool) {
	h := q.head.Load()
	if h == q.tail.Load() {
		return Descriptor{}, false
	}
	return q.buf[h&q.mask], true
}

// Region is a kernel-registered window of the owner's address space
// that the channel may name in descriptors.
type Region struct {
	Base uint64
	Len  uint64
}

func (r Region) contains(addr uint64, n int) bool {
	return addr >= r.Base && addr+uint64(n) <= r.Base+r.Len && n >= 0
}

// Channel is one application device channel: the queue triplet plus the
// protection state fixed at setup.
type Channel struct {
	ID    int
	Owner int    // application (node-local process) id
	VCI   uint32 // the connection's virtual circuit

	Transmit *Queue
	Receive  *Queue
	Free     *Queue

	regions []Region

	// Stats
	Sends    uint64
	Receives uint64
	Denied   uint64
}

// ErrProtection is returned when a descriptor names memory outside the
// channel's registered regions.
var ErrProtection = errors.New("adc: buffer outside registered region")

// ErrQueueFull is returned when a queue has no room.
var ErrQueueFull = errors.New("adc: queue full")

// AddRegion grants the channel access to another window of its
// owner's address space (kernel path, at buffer-pinning time).
func (ch *Channel) AddRegion(r Region) { ch.regions = append(ch.regions, r) }

// CheckAccess verifies d against the registered regions. This is the
// only protection check on the data path.
func (ch *Channel) CheckAccess(d Descriptor) error {
	for _, r := range ch.regions {
		if r.contains(d.VAddr, d.Len) {
			return nil
		}
	}
	ch.Denied++
	return fmt.Errorf("%w: %#x+%d on channel %d", ErrProtection, d.VAddr, d.Len, ch.ID)
}

// PostTransmit validates d and places it on the transmit queue; the
// board's transmit processor will pick it up.
func (ch *Channel) PostTransmit(d Descriptor) error {
	if err := ch.CheckAccess(d); err != nil {
		return err
	}
	if !ch.Transmit.Push(d) {
		return ErrQueueFull
	}
	ch.Sends++
	return nil
}

// PostFree validates d and hands the board an empty buffer for future
// arrivals.
func (ch *Channel) PostFree(d Descriptor) error {
	if err := ch.CheckAccess(d); err != nil {
		return err
	}
	if !ch.Free.Push(d) {
		return ErrQueueFull
	}
	return nil
}

// PollReceive removes one completed arrival, if any. Called by the
// application (polling mode) or its interrupt handler.
func (ch *Channel) PollReceive() (Descriptor, bool) {
	d, ok := ch.Receive.Pop()
	if ok {
		ch.Receives++
	}
	return d, ok
}

// Manager is the board-side channel table: the kernel entry points for
// connection setup and teardown.
type Manager struct {
	channels  map[int]*Channel
	nextID    int
	maxOpen   int
	queueSlot int
}

// NewManager returns a manager that will allow up to maxOpen channels
// with queueCap-entry queues (both board-memory limits).
func NewManager(maxOpen, queueCap int) *Manager {
	return &Manager{
		channels:  make(map[int]*Channel),
		maxOpen:   maxOpen,
		queueSlot: queueCap,
	}
}

// ErrNoChannels is returned when the board's channel table is full.
var ErrNoChannels = errors.New("adc: channel table full")

// Open creates a channel triplet for owner on vci, granting access to
// the given regions. This is the kernel-mediated setup path.
func (m *Manager) Open(owner int, vci uint32, regions ...Region) (*Channel, error) {
	if len(m.channels) >= m.maxOpen {
		return nil, ErrNoChannels
	}
	ch := &Channel{
		ID:       m.nextID,
		Owner:    owner,
		VCI:      vci,
		Transmit: NewQueue(m.queueSlot),
		Receive:  NewQueue(m.queueSlot),
		Free:     NewQueue(m.queueSlot),
		regions:  regions,
	}
	m.nextID++
	m.channels[ch.ID] = ch
	return ch, nil
}

// Close tears the channel down (kernel path). It reports whether the
// channel existed.
func (m *Manager) Close(id int) bool {
	_, ok := m.channels[id]
	delete(m.channels, id)
	return ok
}

// Get returns the channel with the given id.
func (m *Manager) Get(id int) (*Channel, bool) {
	ch, ok := m.channels[id]
	return ch, ok
}

// Len reports the number of open channels.
func (m *Manager) Len() int { return len(m.channels) }

package adc

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestQueuePushPop(t *testing.T) {
	q := NewQueue(4)
	if _, ok := q.Pop(); ok {
		t.Fatal("pop on empty queue succeeded")
	}
	for i := 0; i < 4; i++ {
		if !q.Push(Descriptor{Tag: uint64(i)}) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.Push(Descriptor{}) {
		t.Fatal("push on full queue succeeded")
	}
	if q.Len() != 4 {
		t.Fatalf("Len = %d, want 4", q.Len())
	}
	for i := 0; i < 4; i++ {
		d, ok := q.Pop()
		if !ok || d.Tag != uint64(i) {
			t.Fatalf("pop %d = %v,%v", i, d.Tag, ok)
		}
	}
}

func TestQueueCapacityRoundsUp(t *testing.T) {
	if got := NewQueue(3).Cap(); got != 4 {
		t.Fatalf("Cap = %d, want 4", got)
	}
	if got := NewQueue(0).Cap(); got != 1 {
		t.Fatalf("Cap(0) = %d, want 1", got)
	}
}

func TestQueuePeek(t *testing.T) {
	q := NewQueue(2)
	if _, ok := q.Peek(); ok {
		t.Fatal("peek on empty succeeded")
	}
	q.Push(Descriptor{Tag: 42})
	d, ok := q.Peek()
	if !ok || d.Tag != 42 {
		t.Fatal("peek did not see head")
	}
	if q.Len() != 1 {
		t.Fatal("peek consumed the descriptor")
	}
}

func TestQueueWrapAroundProperty(t *testing.T) {
	// Property: any interleaving of pushes and pops that respects
	// capacity preserves FIFO order across wrap-around.
	f := func(ops []bool) bool {
		q := NewQueue(4)
		next, expect := uint64(0), uint64(0)
		for _, push := range ops {
			if push {
				if q.Push(Descriptor{Tag: next}) {
					next++
				}
			} else if d, ok := q.Pop(); ok {
				if d.Tag != expect {
					return false
				}
				expect++
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQueueIsLockFreeSPSC(t *testing.T) {
	// One real producer goroutine, one real consumer goroutine: the
	// atomic head/tail protocol must deliver every descriptor in order.
	// (The simulator never runs two agents at once, but the queue layout
	// mirrors the real shared-memory design, so prove it.)
	q := NewQueue(8)
	const n = 100000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; {
			if q.Push(Descriptor{Tag: i}) {
				i++
			} else {
				runtime.Gosched() // queue full: let the consumer run
			}
		}
	}()
	var bad bool
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; {
			if d, ok := q.Pop(); ok {
				if d.Tag != i {
					bad = true
					return
				}
				i++
			} else {
				runtime.Gosched() // queue empty: let the producer run
			}
		}
	}()
	wg.Wait()
	if bad {
		t.Fatal("SPSC ordering violated")
	}
}

func newChannel(t *testing.T) *Channel {
	t.Helper()
	m := NewManager(8, 16)
	ch, err := m.Open(1, 0x42, Region{Base: 0x10000, Len: 0x10000})
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestProtectionCheckedAtEnqueueOnly(t *testing.T) {
	ch := newChannel(t)
	ok := Descriptor{VAddr: 0x10000, Len: 4096}
	if err := ch.PostTransmit(ok); err != nil {
		t.Fatalf("in-region transmit rejected: %v", err)
	}
	bad := Descriptor{VAddr: 0x30000, Len: 64}
	if err := ch.PostTransmit(bad); !errors.Is(err, ErrProtection) {
		t.Fatalf("out-of-region transmit: err = %v", err)
	}
	if err := ch.PostFree(bad); !errors.Is(err, ErrProtection) {
		t.Fatalf("out-of-region free: err = %v", err)
	}
	if ch.Denied != 2 {
		t.Fatalf("Denied = %d, want 2", ch.Denied)
	}
}

func TestRegionBoundaryExact(t *testing.T) {
	ch := newChannel(t)
	// Ends exactly at the region end: allowed.
	if err := ch.PostTransmit(Descriptor{VAddr: 0x1fff0, Len: 0x10}); err != nil {
		t.Fatalf("exact-fit buffer rejected: %v", err)
	}
	// One byte over: denied.
	if err := ch.PostTransmit(Descriptor{VAddr: 0x1fff0, Len: 0x11}); !errors.Is(err, ErrProtection) {
		t.Fatal("overhanging buffer accepted")
	}
	// Negative length: denied.
	if err := ch.PostTransmit(Descriptor{VAddr: 0x10000, Len: -1}); !errors.Is(err, ErrProtection) {
		t.Fatal("negative length accepted")
	}
}

func TestQueueFullSurfaces(t *testing.T) {
	m := NewManager(1, 2)
	ch, err := m.Open(0, 1, Region{Base: 0, Len: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ch.Transmit.Cap(); i++ {
		if err := ch.PostTransmit(Descriptor{VAddr: 64, Len: 8}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ch.PostTransmit(Descriptor{VAddr: 64, Len: 8}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
}

func TestPollReceive(t *testing.T) {
	ch := newChannel(t)
	if _, ok := ch.PollReceive(); ok {
		t.Fatal("poll on empty receive queue succeeded")
	}
	// Board side fills the receive queue directly.
	ch.Receive.Push(Descriptor{Tag: 7})
	d, ok := ch.PollReceive()
	if !ok || d.Tag != 7 {
		t.Fatalf("poll = %v,%v", d.Tag, ok)
	}
	if ch.Receives != 1 {
		t.Fatalf("Receives = %d", ch.Receives)
	}
}

func TestManagerLimitsAndClose(t *testing.T) {
	m := NewManager(2, 4)
	a, err := m.Open(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Open(0, 3); !errors.Is(err, ErrNoChannels) {
		t.Fatalf("third open: err = %v", err)
	}
	if got, ok := m.Get(a.ID); !ok || got != a {
		t.Fatal("Get lost the channel")
	}
	if !m.Close(a.ID) {
		t.Fatal("Close returned false")
	}
	if m.Close(a.ID) {
		t.Fatal("double Close returned true")
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d, want 1", m.Len())
	}
	if _, err := m.Open(0, 4); err != nil {
		t.Fatalf("open after close failed: %v", err)
	}
}

func TestChannelIDsUnique(t *testing.T) {
	m := NewManager(16, 4)
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		ch, err := m.Open(i, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		if seen[ch.ID] {
			t.Fatalf("duplicate channel id %d", ch.ID)
		}
		seen[ch.ID] = true
	}
}

func TestMultipleRegions(t *testing.T) {
	m := NewManager(1, 4)
	ch, _ := m.Open(0, 1,
		Region{Base: 0x1000, Len: 0x1000},
		Region{Base: 0x8000, Len: 0x1000})
	if err := ch.PostTransmit(Descriptor{VAddr: 0x8800, Len: 16}); err != nil {
		t.Fatalf("second region rejected: %v", err)
	}
	if err := ch.PostTransmit(Descriptor{VAddr: 0x5000, Len: 16}); !errors.Is(err, ErrProtection) {
		t.Fatal("gap between regions accepted")
	}
}

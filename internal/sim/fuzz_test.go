package sim_test

// FuzzKernelSchedule interprets an arbitrary byte stream as a schedule
// program — (op, delta) pairs choosing between the kernel's scheduling
// and run operations — executes it on the calendar-queue engine and on
// the reference heap engine, and requires the two executions to be
// identical. The fuzzer therefore searches directly for any schedule
// on which the production engine diverges from the seed's.

import (
	"testing"

	"cni/internal/sim"
)

// fuzzMachine interprets one byte stream against one kernel. Event
// bodies consume bytes from the same stream (re-entrant scheduling), so
// the program a kernel sees depends on its execution order — which is
// exactly the property under test: identical order, identical program,
// identical trace.
type fuzzMachine struct {
	k      *sim.Kernel
	data   []byte
	pos    int
	trace  []traceEntry
	nextID uint64
	events int
}

// fuzzMaxEvents bounds the run so adversarial inputs terminate.
const fuzzMaxEvents = 1 << 14

// fuzzDeltas maps a delta byte to a time offset: tie-heavy, straddling
// the calendar's bucket (32) and window (32768) boundaries, with a few
// far-future rungs for the overflow ladder.
var fuzzDeltas = [16]sim.Time{
	0, 0, 1, 7, 25, 31, 32, 33, 150, 1000, 4095, 32767, 32768, 65536, 1 << 20, 1 << 26,
}

func (m *fuzzMachine) next() (byte, bool) {
	if m.pos >= len(m.data) {
		return 0, false
	}
	b := m.data[m.pos]
	m.pos++
	return b, true
}

func (m *fuzzMachine) delta(b byte) sim.Time { return fuzzDeltas[b&15] }

// schedule enqueues one event whose body records itself and interprets
// up to two more stream bytes as child schedules.
func (m *fuzzMachine) schedule(at sim.Time, useCall bool) {
	if m.events >= fuzzMaxEvents {
		return
	}
	m.events++
	id := m.nextID
	m.nextID++
	if useCall {
		m.k.AtCall(at, m.eventBody, id)
		return
	}
	m.k.At(at, func() { m.eventBody(id) })
}

func (m *fuzzMachine) eventBody(arg any) {
	m.trace = append(m.trace, traceEntry{t: m.k.Now(), id: arg.(uint64)})
	for i := 0; i < 2; i++ {
		b, ok := m.next()
		if !ok || b&3 == 0 {
			return
		}
		m.schedule(m.k.Now()+m.delta(b>>2), b&4 != 0)
	}
}

// run interprets the top-level stream. Ops: schedule (At / AtCall /
// AtBatch), RunUntil a horizon, Run to empty, and Stop-then-resume.
func (m *fuzzMachine) run() {
	for {
		op, ok := m.next()
		if !ok {
			break
		}
		d, ok := m.next()
		if !ok {
			break
		}
		at := m.k.Now() + m.delta(d)
		switch op % 6 {
		case 0, 1:
			m.schedule(at, false)
		case 2:
			m.schedule(at, true)
		case 3: // batch of 1..4 same-timestamp events
			n := int(d>>4)%4 + 1
			fns := make([]func(), 0, n)
			for i := 0; i < n && m.events < fuzzMaxEvents; i++ {
				id := m.nextID
				m.nextID++
				m.events++
				fns = append(fns, func() { m.eventBody(id) })
			}
			m.k.AtBatch(at, fns)
		case 4:
			m.k.RunUntil(at)
		case 5: // stop mid-run, then resume
			if m.events < fuzzMaxEvents {
				m.k.At(at, m.k.Stop)
			}
			m.k.Run()
		}
	}
	m.k.Run()
	m.k.Drain()
}

func runFuzzSchedule(engine sim.Engine, data []byte) *fuzzMachine {
	m := &fuzzMachine{k: sim.NewKernelWith(engine), data: data}
	m.run()
	return m
}

func FuzzKernelSchedule(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 2, 1, 3, 255})
	f.Add([]byte{1, 11, 1, 11, 1, 11, 4, 9, 0, 0, 5, 3})
	// Window-boundary and overflow-heavy seeds.
	f.Add([]byte{0, 12, 0, 13, 0, 14, 0, 15, 4, 15, 2, 0, 3, 55, 5, 1})
	f.Add([]byte{3, 0x71, 3, 0x72, 3, 0x73, 4, 11, 0, 4, 2, 4, 5, 8, 1, 15})
	f.Fuzz(func(t *testing.T, data []byte) {
		cal := runFuzzSchedule(sim.EngineCalendar, data)
		ref := runFuzzSchedule(sim.EngineHeap, data)
		if len(cal.trace) != len(ref.trace) {
			t.Fatalf("calendar executed %d events, heap %d", len(cal.trace), len(ref.trace))
		}
		for i := range cal.trace {
			if cal.trace[i] != ref.trace[i] {
				t.Fatalf("divergence at event %d: calendar (t=%d id=%d), heap (t=%d id=%d)",
					i, cal.trace[i].t, cal.trace[i].id, ref.trace[i].t, ref.trace[i].id)
			}
		}
		if cal.k.Now() != ref.k.Now() || cal.k.Executed() != ref.k.Executed() {
			t.Fatalf("final state differs: calendar (now=%d executed=%d), heap (now=%d executed=%d)",
				cal.k.Now(), cal.k.Executed(), ref.k.Now(), ref.k.Executed())
		}
	})
}

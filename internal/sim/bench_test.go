package sim_test

// Kernel microbenchmarks, each run on both engines so `go test -bench
// Kernel` prints the calendar-versus-heap comparison directly:
//
//   - Sparse: events spread widely in time (little bucket sharing),
//   - Tied: bursts of same-timestamp events (the hop-walk pattern the
//     AtBatch API exists for),
//   - FarFuture: timers landing beyond the calendar window, exercising
//     the overflow ladder (retransmit-timer pattern).
//
// TestCalendarSteadyStateAllocs pins down the "allocation-free hot
// loop" claim: after warm-up, scheduling and draining events on the
// calendar engine allocates nothing.

import (
	"testing"

	"cni/internal/sim"
)

var benchSink sim.Time

func nopEvent() {}

func benchEngines(b *testing.B, run func(b *testing.B, engine sim.Engine)) {
	for _, eng := range []sim.Engine{sim.EngineCalendar, sim.EngineHeap} {
		b.Run(string(eng), func(b *testing.B) { run(b, eng) })
	}
}

// BenchmarkKernelSparse schedules batches of events spread across many
// buckets and drains them.
func BenchmarkKernelSparse(b *testing.B) {
	benchEngines(b, func(b *testing.B, eng sim.Engine) {
		k := sim.NewKernelWith(eng)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			now := k.Now()
			for j := sim.Time(0); j < 64; j++ {
				k.At(now+1+j*37, nopEvent)
			}
			benchSink = k.Run()
		}
	})
}

// BenchmarkKernelTied schedules bursts of simultaneous events via
// AtBatch — the cells-of-one-PDU pattern — and drains them.
func BenchmarkKernelTied(b *testing.B) {
	var fns [64]func()
	for i := range fns {
		fns[i] = nopEvent
	}
	benchEngines(b, func(b *testing.B, eng sim.Engine) {
		k := sim.NewKernelWith(eng)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			now := k.Now()
			k.AtBatch(now+25, fns[:])
			k.AtBatch(now+25, fns[:])
			benchSink = k.Run()
		}
	})
}

// BenchmarkKernelFarFuture mixes near events with timers far past the
// calendar window, forcing the overflow ladder and its migrations.
func BenchmarkKernelFarFuture(b *testing.B) {
	benchEngines(b, func(b *testing.B, eng sim.Engine) {
		k := sim.NewKernelWith(eng)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			now := k.Now()
			for j := sim.Time(0); j < 32; j++ {
				k.At(now+1+j, nopEvent)
				k.At(now+1_000_000+j*50_000, nopEvent)
			}
			benchSink = k.Run()
		}
	})
}

// TestCalendarSteadyStateAllocs asserts the calendar engine's
// schedule-and-run loop is allocation-free once its bucket slabs are
// warm, for the plain, pre-bound, and batch scheduling forms.
func TestCalendarSteadyStateAllocs(t *testing.T) {
	k := sim.NewKernel()
	var fns [8]func()
	for i := range fns {
		fns[i] = nopEvent
	}
	nopCall := func(any) {}
	work := func() {
		now := k.Now()
		for j := sim.Time(0); j < 16; j++ {
			k.At(now+1+j*25, nopEvent)
			k.AtCall(now+2+j*25, nopCall, nil)
		}
		k.AtBatch(now+150, fns[:])
		k.Run()
	}
	// Warm the bucket slabs. Slab capacities keep growing for a while:
	// the clock advance per run is not a multiple of the bucket width,
	// so the event pattern cycles through alignment phases and each
	// phase's worst-case bucket must be seen before its slab stops
	// growing. Warm in rounds until a whole measured round allocates
	// nothing, then hold the kernel to it.
	avg := -1.0
	for round := 0; round < 40 && avg != 0; round++ {
		avg = testing.AllocsPerRun(2000, work)
	}
	if avg != 0 {
		t.Fatalf("calendar scheduling still allocating %.1f objects/run after warm-up, want 0", avg)
	}
	if avg = testing.AllocsPerRun(2000, work); avg != 0 {
		t.Fatalf("calendar steady-state scheduling allocated %.1f objects/run, want 0", avg)
	}
}

package sim

// Resource models a FIFO-served exclusive resource with deterministic
// queuing delay: a memory bus, a DMA engine, a NIC processor, a network
// link. A request arriving at time at is served as soon as the resource
// is free, occupying it for dur cycles.
type Resource struct {
	Name   string
	freeAt Time

	// Busy accumulates cycles the resource spent serving requests, and
	// Waited accumulates cycles requests spent queued, for utilization
	// statistics.
	Busy   Time
	Waited Time
	Uses   uint64
}

// NewResource returns an idle resource.
func NewResource(name string) *Resource { return &Resource{Name: name} }

// Use reserves the resource for dur cycles for a request arriving at
// time at, and returns the service start and completion times.
func (r *Resource) Use(at, dur Time) (start, end Time) {
	if dur < 0 {
		panic("sim: negative resource occupancy")
	}
	start = at
	if r.freeAt > start {
		start = r.freeAt
	}
	end = start + dur
	r.freeAt = end
	r.Busy += dur
	r.Waited += start - at
	r.Uses++
	return start, end
}

// FreeAt reports when the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Reset returns the resource to idle at time zero and clears statistics.
func (r *Resource) Reset() { *r = Resource{Name: r.Name} }

// WaitQueue is a FIFO of blocked processes, used to build locks,
// condition variables and barriers in the protocol models. It dequeues
// from a moving head instead of shifting the slice, so Pop is O(1) and
// a drained queue's backing array is reused by later Pushes.
type WaitQueue struct {
	procs []*Proc
	head  int
}

// Push appends p to the queue.
func (q *WaitQueue) Push(p *Proc) {
	if q.head == len(q.procs) && q.head > 0 {
		// Fully drained: rewind so the backing array is reused.
		q.procs = q.procs[:0]
		q.head = 0
	}
	q.procs = append(q.procs, p)
}

// Pop removes and returns the process at the head, or nil if empty.
func (q *WaitQueue) Pop() *Proc {
	if q.head == len(q.procs) {
		return nil
	}
	p := q.procs[q.head]
	q.procs[q.head] = nil
	q.head++
	return p
}

// Len reports the number of queued processes.
func (q *WaitQueue) Len() int { return len(q.procs) - q.head }

package sim

import "testing"

func TestProcAdvanceAndSync(t *testing.T) {
	k := NewKernel()
	var mid, end Time
	k.Spawn("p", func(p *Proc) {
		p.Advance(100)
		p.Sync()
		mid = k.Now()
		p.Advance(50)
		p.Sync()
		end = k.Now()
	})
	k.Run()
	if mid != 100 || end != 150 {
		t.Fatalf("sync times = %d, %d; want 100, 150", mid, end)
	}
}

func TestProcSyncExecutesInterveningEvents(t *testing.T) {
	k := NewKernel()
	var order []string
	k.At(50, func() { order = append(order, "event@50") })
	k.Spawn("p", func(p *Proc) {
		p.Advance(100)
		p.Sync()
		order = append(order, "proc@100")
	})
	k.Run()
	if len(order) != 2 || order[0] != "event@50" || order[1] != "proc@100" {
		t.Fatalf("order = %v", order)
	}
}

func TestProcBlockWake(t *testing.T) {
	k := NewKernel()
	var blockedFor, resumedAt Time
	p := k.Spawn("sleeper", func(p *Proc) {
		p.Advance(10)
		blockedFor = p.Block()
		resumedAt = k.Now()
	})
	k.At(500, func() { p.Wake() })
	k.Run()
	if resumedAt != 500 {
		t.Fatalf("resumed at %d, want 500", resumedAt)
	}
	if blockedFor != 490 {
		t.Fatalf("Block returned %d, want 490", blockedFor)
	}
	if p.BlockedTime != 490 {
		t.Fatalf("BlockedTime = %d, want 490", p.BlockedTime)
	}
}

func TestProcWakeBeforeBlockIsBuffered(t *testing.T) {
	// A reply that arrives while the proc is still syncing toward its
	// block point must not be lost.
	k := NewKernel()
	var blockedFor Time = -1
	p := k.Spawn("p", func(p *Proc) {
		p.Advance(1000) // runs ahead; the wake event fires at t=10
		blockedFor = p.Block()
	})
	k.At(10, func() { p.Wake() })
	k.Run()
	if blockedFor != 0 {
		t.Fatalf("Block returned %d, want 0 (wake token buffered)", blockedFor)
	}
	if !p.Finished() {
		t.Fatal("proc did not finish")
	}
}

func TestProcWakeAtClampsToProcClock(t *testing.T) {
	k := NewKernel()
	var resumedAt Time
	p := k.Spawn("p", func(p *Proc) {
		p.Block()
		resumedAt = k.Now()
	})
	// Wake stamped in the past relative to kernel time at the wake event.
	k.At(100, func() { p.WakeAt(5) })
	k.Run()
	if resumedAt != 100 {
		t.Fatalf("resumed at %d, want clamp to 100", resumedAt)
	}
}

func TestProcPenaltyFoldsAtSync(t *testing.T) {
	k := NewKernel()
	var end Time
	p := k.Spawn("victim", func(p *Proc) {
		p.Advance(1000)
		p.Sync()
		end = k.Now()
	})
	// An interrupt at t=200 steals 40 cycles from the CPU; the victim's
	// 1000-cycle computation must finish at 1040.
	k.At(200, func() { p.AddPenalty(40) })
	k.Run()
	if end != 1040 {
		t.Fatalf("computation finished at %d, want 1040", end)
	}
	if p.PenaltyTime != 40 {
		t.Fatalf("PenaltyTime = %d, want 40", p.PenaltyTime)
	}
}

func TestProcWaitUntil(t *testing.T) {
	k := NewKernel()
	var at1, at2 Time
	k.Spawn("p", func(p *Proc) {
		p.WaitUntil(300)
		at1 = k.Now()
		p.WaitUntil(100) // already past: no-op
		at2 = k.Now()
	})
	k.Run()
	if at1 != 300 || at2 != 300 {
		t.Fatalf("WaitUntil times = %d, %d; want 300, 300", at1, at2)
	}
}

func TestTwoProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var order []string
		for _, n := range []string{"a", "b"} {
			n := n
			step := Time(10)
			if n == "b" {
				step = 15
			}
			k.Spawn(n, func(p *Proc) {
				for i := 0; i < 4; i++ {
					p.Advance(step)
					p.Sync()
					order = append(order, n)
				}
			})
		}
		k.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != 8 || len(b) != 8 {
		t.Fatalf("runs produced %d and %d steps, want 8", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic interleaving: %v vs %v", a, b)
		}
	}
	// a syncs at 10,20,30,40; b at 15,30,45,60. At t=30 b wins the tie:
	// b scheduled its resume event at t=15, before a scheduled its at 20.
	want := []string{"a", "b", "a", "b", "a", "a", "b", "b"}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("interleaving = %v, want %v", a, want)
		}
	}
}

func TestSpawnAt(t *testing.T) {
	k := NewKernel()
	var started Time = -1
	k.SpawnAt("late", 777, func(p *Proc) { started = k.Now() })
	k.Run()
	if started != 777 {
		t.Fatalf("proc started at %d, want 777", started)
	}
}

func TestDrainUnblocksParkedProcs(t *testing.T) {
	k := NewKernel()
	finished := false
	p := k.Spawn("stuck", func(p *Proc) {
		p.Block() // nobody will wake it
		finished = true
	})
	k.At(100, func() { k.Stop() })
	k.Run()
	if p.Finished() {
		t.Fatal("proc should still be blocked before drain")
	}
	k.Drain()
	if finished {
		t.Fatal("killed proc must not run its continuation")
	}
	if !p.Finished() {
		t.Fatal("drained proc should be marked finished")
	}
}

func TestProcBlockedAccountingAcrossMultipleBlocks(t *testing.T) {
	k := NewKernel()
	p := k.Spawn("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Block()
		}
	})
	k.At(10, func() { p.Wake() })
	k.At(30, func() { p.Wake() })
	k.At(60, func() { p.Wake() })
	k.Run()
	if p.BlockedTime != 60 {
		t.Fatalf("BlockedTime = %d, want 60 (10+20+30)", p.BlockedTime)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	k := NewKernel()
	panicked := false
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		p.Advance(-1)
	})
	k.Run()
	if !panicked {
		t.Fatal("Advance(-1) did not panic")
	}
}

package sim

import "math/bits"

// This file implements the default scheduler engine: a calendar queue
// (bucketed event scheduling) with an overflow ladder.
//
// The dominant inter-event gaps in this simulator are short and
// clustered: the 150 ns link-propagation delta is 25 CPU cycles at the
// paper's 166 MHz, head-cell pipelining offsets are ~114 cycles, and
// per-message serialization times a few thousand. Bucket width is
// therefore 2^5 = 32 cycles — the propagation delta rounded up to a
// power of two — and the calendar spans calBuckets of them, a window of
// 32768 cycles (~13 max-size-PDU serialization times). Events inside
// the window go to the bucket covering their timestamp; events beyond
// it (retransmit timers, far-future application timers) go to the
// overflow ladder, a plain binary min-heap, and migrate into buckets
// when the window advances past its old end. An occupancy bitmap over
// the buckets makes "find the next non-empty bucket" a
// TrailingZeros64 scan, so sparse schedules do not pay a linear walk.
//
// Ordering contract: pops come out in exactly (at, seq) lexicographic
// order — identical to the reference heap engine, which is what keeps
// artifact output bit-identical across the engine swap. Within the
// window only the bucket currently being drained needs internal order,
// so buckets stay unsorted until the cursor reaches them, then get
// heapified once (curIdx); re-entrant insertions into that live bucket
// sift into its heap, insertions into later buckets just append.
// Events are stored by value in bucket slices whose backing arrays are
// reused for the life of the kernel — scheduling allocates nothing in
// steady state (the free-list/pool of the classic recipe, realized as
// reusable slabs instead of linked records).

const (
	calLogWidth = 5 // 32-cycle buckets: NSToCycles(150ns) = 25, rounded up
	calWidth    = 1 << calLogWidth
	calBuckets  = 1024 // window = 32768 cycles
	calWindow   = calBuckets * calWidth
	calOccWords = calBuckets / 64
)

type calendarQueue struct {
	base   Time // window start, multiple of calWidth; invariant: base <= kernel now at API boundaries
	cursor int  // lowest possibly-occupied bucket index this window
	curIdx int  // bucket currently heapified and draining, -1 if none
	inWin  int  // events stored in buckets
	n      int  // total events (buckets + overflow)

	buckets  [calBuckets][]event
	occ      [calOccWords]uint64 // bit b set <=> buckets[b] non-empty
	overflow []event             // binary min-heap by (at, seq): at >= base+calWindow
}

func newCalendarQueue() *calendarQueue {
	return &calendarQueue{curIdx: -1}
}

func (c *calendarQueue) len() int { return c.n }

// bucketFor maps an in-window timestamp to its bucket index.
func (c *calendarQueue) bucketFor(at Time) int {
	return int((at - c.base) >> calLogWidth)
}

func (c *calendarQueue) setOcc(i int) { c.occ[i>>6] |= 1 << (uint(i) & 63) }
func (c *calendarQueue) clrOcc(i int) { c.occ[i>>6] &^= 1 << (uint(i) & 63) }

// nextOcc returns the first occupied bucket index >= from, or -1.
func (c *calendarQueue) nextOcc(from int) int {
	w := from >> 6
	if w >= calOccWords {
		return -1
	}
	if rem := c.occ[w] >> (uint(from) & 63); rem != 0 {
		return from + bits.TrailingZeros64(rem)
	}
	for w++; w < calOccWords; w++ {
		if c.occ[w] != 0 {
			return w<<6 + bits.TrailingZeros64(c.occ[w])
		}
	}
	return -1
}

func (c *calendarQueue) push(e event) {
	c.n++
	if e.at-c.base < calWindow {
		idx := c.bucketFor(e.at)
		c.inWin++
		if idx == c.curIdx {
			// The bucket is live (heapified, being drained): keep its
			// heap order so the next pop still sees the exact minimum.
			heapUp(append(c.buckets[idx], e), &c.buckets[idx])
			return
		}
		c.buckets[idx] = append(c.buckets[idx], e)
		c.setOcc(idx)
		c.rewind(idx)
		return
	}
	heapUp(append(c.overflow, e), &c.overflow)
}

func (c *calendarQueue) pushBatch(at Time, seq uint64, fns []func()) {
	if at-c.base < calWindow {
		idx := c.bucketFor(at)
		c.n += len(fns)
		c.inWin += len(fns)
		if idx == c.curIdx {
			for _, fn := range fns {
				heapUp(append(c.buckets[idx], event{at: at, seq: seq, fn: fn}), &c.buckets[idx])
				seq++
			}
			return
		}
		b := c.buckets[idx]
		for _, fn := range fns {
			b = append(b, event{at: at, seq: seq, fn: fn})
			seq++
		}
		c.buckets[idx] = b
		c.setOcc(idx)
		c.rewind(idx)
		return
	}
	for _, fn := range fns {
		c.push(event{at: at, seq: seq, fn: fn})
		seq++
	}
}

// rewind backs the cursor up when an insertion lands in a bucket the
// scan position has already passed. That happens when RunUntil stops
// short of the earliest pending event: peekAt settles the cursor (and
// possibly a heapified live bucket) on that event's bucket, the clock
// parks below it, and a subsequent push may legally target any bucket
// from the clock's onward. Without the rewind the occupancy scan would
// never look back — events would run out of order, and the
// inWin/occupancy bookkeeping would strand settle on an empty scan.
// The abandoned live bucket keeps its (valid) heap prefix plus any
// appended tail; settle re-heapifies it when the cursor returns.
func (c *calendarQueue) rewind(idx int) {
	if idx < c.cursor {
		c.cursor = idx
		c.curIdx = -1
	}
}

// rebase slides the window forward when every bucketed event has been
// consumed: the new window starts at the overflow minimum's bucket
// boundary, and every overflow event now inside it migrates to its
// bucket. Caller guarantees inWin == 0 and len(overflow) > 0.
func (c *calendarQueue) rebase() {
	c.base = c.overflow[0].at &^ (calWidth - 1)
	c.cursor = 0
	c.curIdx = -1
	for len(c.overflow) > 0 && c.overflow[0].at-c.base < calWindow {
		e := heapPop(&c.overflow)
		idx := c.bucketFor(e.at)
		c.buckets[idx] = append(c.buckets[idx], e)
		c.setOcc(idx)
		c.inWin++
	}
}

// settle positions curIdx on the bucket holding the earliest event,
// heapifying it if the cursor just arrived, and returns false when the
// queue is empty. After settle returns true, the minimum event is
// buckets[curIdx][0] (or, if inWin is somehow 0, never: rebase filled
// the window).
func (c *calendarQueue) settle() bool {
	if c.n == 0 {
		return false
	}
	if c.inWin == 0 {
		c.rebase()
	}
	if c.curIdx >= 0 {
		return true
	}
	idx := c.nextOcc(c.cursor)
	c.cursor = idx
	c.curIdx = idx
	heapify(c.buckets[idx])
	return true
}

func (c *calendarQueue) pop() (event, bool) {
	if !c.settle() {
		return event{}, false
	}
	b := c.buckets[c.curIdx]
	e := heapPop(&b)
	c.buckets[c.curIdx] = b
	if len(b) == 0 {
		c.clrOcc(c.curIdx)
		// Stay on this bucket index: the event about to run may
		// schedule back into it (ties at now), re-entering via push's
		// curIdx path — but it is no longer heap-draining, so reset.
		c.curIdx = -1
	}
	c.inWin--
	c.n--
	return e, true
}

func (c *calendarQueue) peekAt() (Time, bool) {
	if c.n == 0 {
		return 0, false
	}
	if c.inWin == 0 {
		// Everything pending lives in the overflow ladder. Do not
		// rebase here: RunUntil may stop short of these events, and the
		// window must never advance past the kernel clock.
		return c.overflow[0].at, true
	}
	c.settle()
	return c.buckets[c.curIdx][0].at, true
}

func (c *calendarQueue) clear() {
	for i := range c.buckets {
		c.buckets[i] = nil
	}
	c.occ = [calOccWords]uint64{}
	c.overflow = nil
	c.base = 0
	c.cursor = 0
	c.curIdx = -1
	c.inWin = 0
	c.n = 0
}

// --- value-typed binary min-heap by (at, seq), shared by the bucket
// being drained and the overflow ladder ---

// heapify establishes the heap invariant over h in place.
func heapify(h []event) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i)
	}
}

// heapUp takes the slice with the new element already appended at the
// end, sifts it up, and stores the result.
func heapUp(h []event, dst *[]event) {
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].before(&h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	*dst = h
}

// heapPop removes and returns the minimum, zeroing the vacated slot so
// the executed closure is not retained by the backing array.
func heapPop(h *[]event) event {
	s := *h
	e := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s[last] = event{}
	s = s[:last]
	siftDown(s, 0)
	*h = s
	return e
}

func siftDown(h []event, i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && h[r].before(&h[l]) {
			min = r
		}
		if !h[min].before(&h[i]) {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

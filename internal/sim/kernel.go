// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel. It plays the role the Proteus simulator plays in the
// CNI paper: application code runs natively as Go code on simulated
// processors and charges virtual cycles for computation, while all
// inter-processor interaction (messages, DMA, bus traffic, interrupts)
// flows through timestamped events.
//
// The kernel is strictly sequential: at any instant either the kernel or
// exactly one process goroutine is running, handed off through unbuffered
// channels. Events with equal timestamps execute in scheduling order.
// Two runs of the same program therefore produce identical event orders,
// identical statistics, and identical virtual end times.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual time measured in host CPU cycles.
type Time = int64

// event is a scheduled closure. seq breaks timestamp ties so that the
// execution order of simultaneous events is the order they were scheduled.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is the simulation event loop. The zero value is not usable; call
// NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	events  eventHeap
	procs   []*Proc
	stopped bool
	// executed counts events run, for diagnostics and runaway detection.
	executed uint64
	// limit aborts the run when more than limit events execute (0 = none).
	limit uint64
}

// NewKernel returns an empty kernel at time zero.
func NewKernel() *Kernel {
	return &Kernel{}
}

// Now reports the current virtual time. While a process goroutine is
// running, Now is the time at which that process was resumed; processes
// track the cycles they have charged since then in their local clocks.
func (k *Kernel) Now() Time { return k.now }

// Executed reports how many events have run so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// SetEventLimit makes Run panic after n events, as a guard against
// protocol livelock in tests. Zero disables the limit.
func (k *Kernel) SetEventLimit(n uint64) { k.limit = n }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past is a programming error and panics, because it would silently break
// the causal order every model in this repository relies on.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, k.now))
	}
	k.seq++
	heap.Push(&k.events, &event{at: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Stop makes Run return after the current event completes. Pending events
// remain queued; a subsequent Run continues from where Stop left off.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the event queue is empty
// or Stop is called. It returns the final virtual time.
func (k *Kernel) Run() Time {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		e := heap.Pop(&k.events).(*event)
		k.now = e.at
		k.executed++
		if k.limit != 0 && k.executed > k.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%d", k.limit, k.now))
		}
		e.fn()
	}
	return k.now
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (k *Kernel) RunUntil(t Time) {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped && k.events[0].at <= t {
		e := heap.Pop(&k.events).(*event)
		k.now = e.at
		k.executed++
		if k.limit != 0 && k.executed > k.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%d", k.limit, k.now))
		}
		e.fn()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return len(k.events) }

// Drain abandons all pending events and unblocks every process goroutine
// so that no goroutines leak when a simulation is cut short (tests,
// -quick runs). After Drain the kernel must not be reused.
func (k *Kernel) Drain() {
	k.events = nil
	for _, p := range k.procs {
		if !p.finished {
			p.kill()
		}
	}
}

// Package sim provides a deterministic, process-oriented discrete-event
// simulation kernel. It plays the role the Proteus simulator plays in the
// CNI paper: application code runs natively as Go code on simulated
// processors and charges virtual cycles for computation, while all
// inter-processor interaction (messages, DMA, bus traffic, interrupts)
// flows through timestamped events.
//
// The kernel is strictly sequential: at any instant either the kernel or
// exactly one process goroutine is running, handed off through unbuffered
// channels. Events with equal timestamps execute in scheduling order.
// Two runs of the same program therefore produce identical event orders,
// identical statistics, and identical virtual end times.
//
// Two scheduler engines implement that contract. The default is a
// calendar queue (calendar.go): events live by value in width-2^5-cycle
// buckets with an overflow ladder for far-future timers, so the hot
// loop neither allocates nor chases heap pointers. The seed's binary
// heap survives as EngineHeap (refheap.go), the reference
// implementation the differential and fuzz tests replay every schedule
// against — the two engines must agree on the exact (time, seq)
// execution order, which is what keeps same-seed runs bit-identical
// across the engine swap.
package sim

import "fmt"

// Time is virtual time measured in host CPU cycles.
type Time = int64

// event is a scheduled activation. seq breaks timestamp ties so that the
// execution order of simultaneous events is the order they were
// scheduled. An event carries either a plain closure fn, or a pre-bound
// call(arg) pair — the allocation-free form hot paths use so that
// scheduling does not create a closure per event (see Kernel.AtCall).
// Events are stored by value inside the scheduler engines; only the
// reference heap engine boxes them.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	call func(any)
	arg  any
}

// run executes the event's activation.
func (e *event) run() {
	if e.fn != nil {
		e.fn()
		return
	}
	e.call(e.arg)
}

// before reports whether e executes before o: (at, seq) lexicographic
// order, the total order both engines must realize exactly.
func (e *event) before(o *event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// scheduler is a pending-event set ordered by (at, seq). The kernel
// owns time and sequence numbering; engines only store and order.
type scheduler interface {
	// push inserts one event.
	push(e event)
	// pushBatch inserts len(fns) events at the same timestamp with
	// consecutive sequence numbers starting at seq, equivalent to (but
	// cheaper than) len(fns) push calls.
	pushBatch(at Time, seq uint64, fns []func())
	// pop removes and returns the earliest event, or ok=false when
	// empty.
	pop() (e event, ok bool)
	// peekAt reports the earliest pending timestamp without removing
	// the event, or ok=false when empty.
	peekAt() (at Time, ok bool)
	// len reports the number of pending events.
	len() int
	// clear discards all pending events (Kernel.Drain).
	clear()
}

// Engine selects the scheduler implementation backing a Kernel. Both
// engines realize the identical (time, seq) execution order; they
// differ only in speed.
type Engine string

const (
	// EngineCalendar is the default: a bucketed calendar queue with an
	// overflow ladder, O(1) amortized and allocation-free in steady
	// state.
	EngineCalendar Engine = "calendar"
	// EngineHeap is the seed's container/heap binary heap, kept as the
	// reference implementation ("refKernel") that differential and
	// fuzz tests replay schedules against.
	EngineHeap Engine = "heap"
)

// Kernel is the simulation event loop. The zero value is not usable; call
// NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	q       scheduler
	procs   []*Proc
	stopped bool
	drained bool
	// executed counts events run, for diagnostics and runaway detection.
	executed uint64
	// limit aborts the run when more than limit events execute (0 = none).
	limit uint64
	// lastAt is the timestamp of the most recently executed event. Run
	// leaves now there, but RunUntil advances now to the window edge, so
	// sharded drivers need the real end-of-activity time separately.
	lastAt Time
}

// NewKernel returns an empty kernel at time zero, backed by the default
// calendar-queue engine.
func NewKernel() *Kernel { return NewKernelWith(EngineCalendar) }

// NewKernelWith returns an empty kernel at time zero backed by the
// given engine. Experiment harnesses use it to benchmark the engines
// against each other; tests use it to build the reference kernel.
func NewKernelWith(engine Engine) *Kernel {
	switch engine {
	case EngineCalendar, "":
		return &Kernel{q: newCalendarQueue()}
	case EngineHeap:
		return &Kernel{q: &heapQueue{}}
	default:
		panic(fmt.Sprintf("sim: unknown kernel engine %q", engine))
	}
}

// Now reports the current virtual time. While a process goroutine is
// running, Now is the time at which that process was resumed; processes
// track the cycles they have charged since then in their local clocks.
func (k *Kernel) Now() Time { return k.now }

// Executed reports how many events have run so far.
func (k *Kernel) Executed() uint64 { return k.executed }

// LastEventAt reports the timestamp of the most recently executed
// event (zero if none ran). After Run it equals Now; after RunUntil it
// may lag Now, which RunUntil pins to the requested horizon.
func (k *Kernel) LastEventAt() Time { return k.lastAt }

// SetEventLimit makes Run panic after n events, as a guard against
// protocol livelock in tests. Zero disables the limit.
func (k *Kernel) SetEventLimit(n uint64) { k.limit = n }

// checkAt validates a scheduling request. Scheduling in the past is a
// programming error and panics, because it would silently break the
// causal order every model in this repository relies on; so is
// scheduling on a drained kernel (see Drain).
func (k *Kernel) checkAt(t Time) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, k.now))
	}
	if k.drained {
		panic("sim: kernel reused after Drain")
	}
}

// At schedules fn to run at absolute virtual time t.
func (k *Kernel) At(t Time, fn func()) {
	k.checkAt(t)
	k.seq++
	k.q.push(event{at: t, seq: k.seq, fn: fn})
}

// AtCall schedules fn(arg) at absolute virtual time t. It is the
// allocation-free form of At for hot paths: fn is a long-lived
// pre-bound function (typically created once per component) and arg a
// pointer carrying the per-event state, so scheduling one event does
// not allocate a closure.
func (k *Kernel) AtCall(t Time, fn func(any), arg any) {
	k.checkAt(t)
	k.seq++
	k.q.push(event{at: t, seq: k.seq, call: fn, arg: arg})
}

// AtBatch schedules every fn in fns at absolute virtual time t, in
// slice order — exactly equivalent to calling At(t, fn) for each, but
// the engine locates the destination bucket once, so a burst of
// same-timestamp events (the cells of one PDU, the simultaneous wakes
// of a barrier) pays the insertion bookkeeping once.
func (k *Kernel) AtBatch(t Time, fns []func()) {
	if len(fns) == 0 {
		return
	}
	k.checkAt(t)
	k.q.pushBatch(t, k.seq+1, fns)
	k.seq += uint64(len(fns))
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Stop makes Run return after the current event completes. Pending events
// remain queued; a subsequent Run continues from where Stop left off.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in timestamp order until the event queue is empty
// or Stop is called. It returns the final virtual time.
func (k *Kernel) Run() Time {
	k.checkRunnable()
	k.stopped = false
	for !k.stopped {
		e, ok := k.q.pop()
		if !ok {
			break
		}
		k.now = e.at
		k.lastAt = e.at
		k.executed++
		if k.limit != 0 && k.executed > k.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%d", k.limit, k.now))
		}
		e.run()
	}
	return k.now
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (k *Kernel) RunUntil(t Time) {
	k.checkRunnable()
	k.stopped = false
	for !k.stopped {
		at, ok := k.q.peekAt()
		if !ok || at > t {
			break
		}
		e, _ := k.q.pop()
		k.now = e.at
		k.lastAt = e.at
		k.executed++
		if k.limit != 0 && k.executed > k.limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at t=%d", k.limit, k.now))
		}
		e.run()
	}
	if !k.stopped && k.now < t {
		k.now = t
	}
}

// checkRunnable panics when the kernel has been drained: Drain is
// terminal, and silently running a half-torn-down simulation would be
// far worse than the panic.
func (k *Kernel) checkRunnable() {
	if k.drained {
		panic("sim: kernel reused after Drain")
	}
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return k.q.len() }

// Drain abandons all pending events and unblocks every process goroutine
// so that no goroutines leak when a simulation is cut short (tests,
// -quick runs).
//
// Drain is terminal: the kernel's clock and counters (Now, Executed,
// Pending) remain readable, and Drain itself is idempotent, but any
// attempt to schedule or run afterwards — At, AtCall, AtBatch, After,
// Spawn, Run, RunUntil — panics with "kernel reused after Drain".
// Killed processes left the model in an arbitrary intermediate state,
// so a "fresh" run on the same kernel could never be trusted; build a
// new Kernel instead.
func (k *Kernel) Drain() {
	k.q.clear()
	for _, p := range k.procs {
		if !p.finished {
			p.kill()
		}
	}
	k.drained = true
}

// Drained reports whether Drain has been called.
func (k *Kernel) Drained() bool { return k.drained }

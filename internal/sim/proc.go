package sim

import "fmt"

// errKilled is panicked inside a process goroutine to unwind it when the
// kernel is drained. It never escapes the package.
type killedError struct{}

func (killedError) Error() string { return "sim: process killed" }

// Proc is a simulated processor (or any other active agent, such as a NIC
// firmware thread). Its body is ordinary Go code running on its own
// goroutine; the kernel and the goroutine hand control back and forth so
// that exactly one of them runs at a time.
//
// A Proc keeps a local clock that may run ahead of kernel time between
// interaction points: Advance charges cycles locally without touching the
// kernel, and Sync publishes the local clock by yielding until global
// time catches up. This is the Proteus optimization that makes
// execution-driven simulation of computation-heavy programs affordable.
type Proc struct {
	k    *Kernel
	ID   int
	Name string

	local   Time // proc-local clock, >= kernel time whenever the proc runs
	penalty Time // asynchronous time charged to this CPU (e.g. interrupt service)

	toProc   chan struct{}
	toKernel chan struct{}
	quit     chan struct{}

	// resumeFn and wakeFn are the pre-bound event bodies Sync and
	// WakeAt schedule. Binding them once at spawn keeps the hot
	// synchronization path allocation-free: scheduling a Sync or a wake
	// does not create a fresh closure per event.
	resumeFn func()
	wakeFn   func()

	started     bool
	finished    bool
	blocked     bool
	wakePending bool
	blockStart  Time
	lastBlocked Time

	// BlockedTime accumulates cycles spent in Block, i.e. synchronization
	// and communication delay as the paper's tables report it.
	BlockedTime Time
	// PenaltyTime accumulates cycles folded in from AddPenalty, i.e. time
	// stolen from this CPU by asynchronous work such as interrupt service.
	PenaltyTime Time
}

// Spawn creates a process that begins executing fn at time zero.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	return k.SpawnAt(name, 0, fn)
}

// SpawnAt creates a process that begins executing fn at time start.
func (k *Kernel) SpawnAt(name string, start Time, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:        k,
		ID:       len(k.procs),
		Name:     name,
		toProc:   make(chan struct{}),
		toKernel: make(chan struct{}),
		quit:     make(chan struct{}),
	}
	p.resumeFn = p.resumeAndWait
	p.wakeFn = p.wakeEvent
	k.procs = append(k.procs, p)
	k.At(start, func() {
		p.local = k.now
		p.started = true
		go p.run(fn)
		p.resumeAndWait()
	})
	return p
}

// run is the goroutine body: wait for the first resume, execute fn, then
// signal completion back to the kernel.
func (p *Proc) run(fn func(*Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killedError); ok {
				return // kernel drained; unwind silently
			}
			panic(r)
		}
	}()
	p.waitResume()
	fn(p)
	p.finished = true
	p.toKernel <- struct{}{}
}

// resumeAndWait transfers control to the process goroutine and blocks the
// kernel until the process yields or finishes. Kernel-side only.
func (p *Proc) resumeAndWait() {
	p.toProc <- struct{}{}
	<-p.toKernel
}

// yield transfers control back to the kernel and blocks the goroutine
// until the next resume. Process-side only.
func (p *Proc) yield() {
	p.toKernel <- struct{}{}
	p.waitResume()
}

func (p *Proc) waitResume() {
	select {
	case <-p.toProc:
	case <-p.quit:
		panic(killedError{})
	}
}

// kill unblocks a parked process goroutine during Kernel.Drain.
func (p *Proc) kill() {
	if p.started && !p.finished {
		close(p.quit)
	}
	p.finished = true
}

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Advance charges c cycles of local computation. It never yields; the
// cycles become globally visible at the next Sync, Block or WaitUntil.
func (p *Proc) Advance(c Time) {
	if c < 0 {
		panic(fmt.Sprintf("sim: Advance(%d) negative", c))
	}
	p.local += c
}

// Local reports the process's local clock, which is >= Kernel.Now while
// the process is running.
func (p *Proc) Local() Time { return p.local }

// AddPenalty charges c cycles of asynchronous work (interrupt service,
// bus stalls caused by other agents) to this CPU. The charge is folded
// into the local clock at the process's next synchronization, which is
// exact for the pure-computation intervals between synchronizations.
// Kernel-side callers only.
func (p *Proc) AddPenalty(c Time) {
	p.penalty += c
	p.PenaltyTime += c
}

// Sync publishes the local clock: it folds in pending penalties, yields,
// and returns once kernel time has reached the local clock, with every
// intervening event executed.
func (p *Proc) Sync() {
	for {
		p.local += p.penalty
		p.penalty = 0
		if p.local <= p.k.now {
			p.local = p.k.now
			return
		}
		p.k.At(p.local, p.resumeFn)
		p.yield()
		p.local = p.k.now
		// A penalty that arrived while we were waiting (an interrupt
		// delivered mid-computation) must still delay this sync; loop
		// until no new penalty appears.
		if p.penalty == 0 {
			return
		}
	}
}

// WaitUntil advances the local clock to at least t and syncs.
func (p *Proc) WaitUntil(t Time) {
	if t > p.local {
		p.local = t
	}
	p.Sync()
}

// Block suspends the process until another agent calls Wake or WakeAt.
// It returns the number of cycles spent blocked. If a Wake arrived while
// the process was syncing (a zero-latency reply), Block returns 0
// immediately. One wake token is buffered at most.
func (p *Proc) Block() Time {
	p.Sync()
	if p.wakePending {
		p.wakePending = false
		p.lastBlocked = 0
		return 0
	}
	p.blocked = true
	p.blockStart = p.local
	p.yield()
	p.local = p.k.now
	return p.lastBlocked
}

// Wake resumes a process blocked in Block at the current kernel time, or
// buffers one wake token if the process has not blocked yet. Kernel-side
// callers only (event handlers, other processes may not call it directly;
// they schedule an event that does).
func (p *Proc) Wake() { p.WakeAt(p.k.now) }

// WakeAt resumes the process at time t (clamped to now and to the
// process's own clock).
func (p *Proc) WakeAt(t Time) {
	if p.finished {
		return
	}
	if !p.blocked {
		p.wakePending = true
		return
	}
	p.blocked = false
	at := t
	if at < p.k.now {
		at = p.k.now
	}
	if at < p.local {
		at = p.local
	}
	p.k.At(at, p.wakeFn)
}

// wakeEvent is the pre-bound event body WakeAt schedules: account the
// blocked interval, then hand control to the process.
func (p *Proc) wakeEvent() {
	p.local = p.k.now
	p.lastBlocked = p.local - p.blockStart
	p.BlockedTime += p.lastBlocked
	p.resumeAndWait()
}

// Finished reports whether the process body has returned.
func (p *Proc) Finished() bool { return p.finished }

// Blocked reports whether the process is suspended in Block.
func (p *Proc) Blocked() bool { return p.blocked }

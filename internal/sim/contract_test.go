package sim_test

// API-contract tests for the scheduling forms added with the calendar
// engine (AtCall, AtBatch) and for the terminal Drain contract, on both
// engines.

import (
	"testing"

	"cni/internal/sim"
)

// TestAtBatchOrdering verifies AtBatch is exactly equivalent to
// repeated At: slice order within the batch, interleaved correctly with
// events scheduled before and after at the same timestamp.
func TestAtBatchOrdering(t *testing.T) {
	for _, eng := range []sim.Engine{sim.EngineCalendar, sim.EngineHeap} {
		k := sim.NewKernelWith(eng)
		var got []int
		note := func(i int) func() { return func() { got = append(got, i) } }
		k.At(10, note(0))
		k.AtBatch(10, []func(){note(1), note(2), note(3)})
		k.At(10, note(4))
		k.AtBatch(5, []func(){note(5)})
		k.AtBatch(10, nil) // empty batch is a no-op
		k.Run()
		want := []int{5, 0, 1, 2, 3, 4}
		if len(got) != len(want) {
			t.Fatalf("%s: ran %v, want %v", eng, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: ran %v, want %v", eng, got, want)
			}
		}
	}
}

// TestAtCall verifies the pre-bound form delivers the argument at the
// right time and orders with At by scheduling sequence.
func TestAtCall(t *testing.T) {
	for _, eng := range []sim.Engine{sim.EngineCalendar, sim.EngineHeap} {
		k := sim.NewKernelWith(eng)
		var got []string
		k.AtCall(7, func(a any) { got = append(got, "call:"+a.(string)) }, "x")
		k.At(7, func() { got = append(got, "fn") })
		k.AtCall(3, func(a any) { got = append(got, a.(string)) }, "early")
		k.Run()
		if len(got) != 3 || got[0] != "early" || got[1] != "call:x" || got[2] != "fn" {
			t.Fatalf("%s: ran %v", eng, got)
		}
		if k.Now() != 7 {
			t.Fatalf("%s: final time %d, want 7", eng, k.Now())
		}
	}
}

// TestDrainTerminal pins the post-Drain contract: Drain is idempotent,
// observers stay readable, and every scheduling or running entry point
// panics explicitly rather than silently running a half-torn-down
// simulation.
func TestDrainTerminal(t *testing.T) {
	for _, eng := range []sim.Engine{sim.EngineCalendar, sim.EngineHeap} {
		k := sim.NewKernelWith(eng)
		k.At(5, func() {})
		k.At(900000, func() {}) // parked on the calendar's overflow ladder
		p := k.SpawnAt("blocked", 0, func(pp *sim.Proc) {
			pp.WakeAt(1 << 40)
		})
		k.RunUntil(2)
		if k.Pending() == 0 {
			t.Fatalf("%s: expected pending events before Drain", eng)
		}
		k.Drain()
		if !k.Drained() {
			t.Fatalf("%s: Drained() false after Drain", eng)
		}
		if k.Pending() != 0 {
			t.Fatalf("%s: %d events survived Drain", eng, k.Pending())
		}
		k.Drain() // idempotent
		_, _, _ = k.Now(), k.Executed(), p.Name

		mustPanic(t, string(eng)+": At", func() { k.At(k.Now()+1, func() {}) })
		mustPanic(t, string(eng)+": AtCall", func() { k.AtCall(k.Now()+1, func(any) {}, nil) })
		mustPanic(t, string(eng)+": AtBatch", func() { k.AtBatch(k.Now()+1, []func(){func() {}}) })
		mustPanic(t, string(eng)+": After", func() { k.After(1, func() {}) })
		mustPanic(t, string(eng)+": Run", func() { k.Run() })
		mustPanic(t, string(eng)+": RunUntil", func() { k.RunUntil(k.Now() + 10) })
	}
}

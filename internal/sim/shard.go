// Conservative-parallel sharded execution: a ShardSet runs N kernels
// over lock-stepped time windows of width equal to the model's
// lookahead (for the ATM fabric, the minimum single-hop delivery
// delay). Within a window the shards run concurrently and must not
// touch each other's state; everything that crosses shards is deferred
// by the model into a ledger and applied single-threaded at the window
// barrier, in a canonical order that does not depend on the shard
// count. That discipline — not anything in this file — is what keeps
// sharded runs bit-identical to the sequential kernel; this file only
// supplies the window loop, the barrier hook, and the worker pool.
package sim

import "fmt"

// ShardSet drives a fixed set of per-shard kernels through
// lock-stepped windows [T, T+lookahead): T is the earliest pending
// timestamp across all shards, every kernel executes its events up to
// the window edge in parallel, and the registered barrier runs
// single-threaded between windows.
type ShardSet struct {
	kernels   []*Kernel
	lookahead Time
	barrier   func()
	edge      Time // edge of the most recently executed window

	start  []chan Time
	done   chan struct{}
	panics []any
}

// NewShardSet returns n independent kernels (all at time zero, backed
// by engine) under one window driver.
func NewShardSet(n int, engine Engine) *ShardSet {
	if n < 1 {
		panic(fmt.Sprintf("sim: shard set of %d kernels", n))
	}
	ss := &ShardSet{kernels: make([]*Kernel, n), edge: -1}
	for i := range ss.kernels {
		ss.kernels[i] = NewKernelWith(engine)
	}
	return ss
}

// Shards reports the number of kernels in the set.
func (ss *ShardSet) Shards() int { return len(ss.kernels) }

// Kernel returns shard i's kernel. Model components belonging to a
// node schedule exclusively on their node's shard kernel.
func (ss *ShardSet) Kernel(i int) *Kernel { return ss.kernels[i] }

// SetLookahead fixes the window width: no event executed in a window
// starting at T may cause an event on another shard before T+w. The
// model layer (the fabric) computes w from its minimum cross-shard
// delivery delay and must panic if a delivery ever lands at or before
// a window edge.
func (ss *ShardSet) SetLookahead(w Time) {
	if w < 1 {
		panic(fmt.Sprintf("sim: shard lookahead %d", w))
	}
	ss.lookahead = w
}

// OnBarrier registers fn to run single-threaded before each window's
// horizon is computed (and once more after the last window): the
// model drains its cross-shard ledger here, scheduling deliveries on
// destination kernels.
func (ss *ShardSet) OnBarrier(fn func()) { ss.barrier = fn }

// WindowEdge reports the edge of the most recently executed window
// (-1 before the first). During a barrier every kernel's clock sits at
// this edge, and any delivery scheduled at or before it would execute
// out of causal order.
func (ss *ShardSet) WindowEdge() Time { return ss.edge }

// Run executes windows until every kernel is idle and the barrier
// produces no further work, then returns the final virtual time (the
// latest event timestamp executed on any shard, matching what
// Kernel.Run would have returned for the merged run).
func (ss *ShardSet) Run() Time {
	if ss.lookahead < 1 {
		panic("sim: ShardSet.Run before SetLookahead")
	}
	ss.startWorkers()
	defer ss.stopWorkers()
	for {
		if ss.barrier != nil {
			ss.barrier()
		}
		horizon, ok := ss.minPending()
		if !ok {
			break
		}
		ss.runWindow(horizon + ss.lookahead - 1)
	}
	return ss.Now()
}

// minPending reports the earliest pending timestamp across shards.
func (ss *ShardSet) minPending() (Time, bool) {
	var min Time
	found := false
	for _, k := range ss.kernels {
		if at, ok := k.q.peekAt(); ok && (!found || at < min) {
			min, found = at, true
		}
	}
	return min, found
}

// runWindow advances every kernel to edge in parallel. A model panic
// on any shard is re-raised here — after all workers have finished the
// window, and lowest shard first, so the surfaced failure does not
// depend on goroutine timing.
func (ss *ShardSet) runWindow(edge Time) {
	for i := range ss.start {
		ss.panics[i] = nil
		ss.start[i] <- edge
	}
	for range ss.kernels {
		<-ss.done
	}
	ss.edge = edge
	for i, r := range ss.panics {
		if r != nil {
			panic(fmt.Sprintf("sim: shard %d: %v", i, r))
		}
	}
}

// startWorkers launches one persistent goroutine per shard; each
// executes its kernel's windows so that proc goroutine handoffs stay
// confined to a single worker.
func (ss *ShardSet) startWorkers() {
	ss.start = make([]chan Time, len(ss.kernels))
	ss.done = make(chan struct{}, len(ss.kernels))
	ss.panics = make([]any, len(ss.kernels))
	for i := range ss.kernels {
		ss.start[i] = make(chan Time)
		go func(i int) {
			for edge := range ss.start[i] {
				func() {
					defer func() {
						if r := recover(); r != nil {
							ss.panics[i] = r
						}
						ss.done <- struct{}{}
					}()
					ss.kernels[i].RunUntil(edge)
				}()
			}
		}(i)
	}
}

// stopWorkers retires the worker goroutines (they park on their start
// channels between windows, so without this each Run would leak one
// goroutine per shard).
func (ss *ShardSet) stopWorkers() {
	for _, c := range ss.start {
		close(c)
	}
	ss.start = nil
}

// Now reports the final virtual time: the latest event timestamp
// executed on any shard. (Kernel clocks themselves sit at the last
// window edge, which overshoots real activity.)
func (ss *ShardSet) Now() Time {
	var max Time
	for _, k := range ss.kernels {
		if k.LastEventAt() > max {
			max = k.LastEventAt()
		}
	}
	return max
}

// Executed reports the total number of events run across all shards.
func (ss *ShardSet) Executed() uint64 {
	var n uint64
	for _, k := range ss.kernels {
		n += k.Executed()
	}
	return n
}

// Pending reports the total number of queued events across all shards.
func (ss *ShardSet) Pending() int {
	n := 0
	for _, k := range ss.kernels {
		n += k.Pending()
	}
	return n
}

// Drain abandons all pending events on every shard and unblocks their
// process goroutines; like Kernel.Drain it is terminal.
func (ss *ShardSet) Drain() {
	for _, k := range ss.kernels {
		k.Drain()
	}
}

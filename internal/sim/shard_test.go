package sim

import (
	"strings"
	"testing"
)

// TestShardSetWindows drives a toy cross-shard model: two shards play
// ping-pong through a barrier-drained ledger, exactly the discipline
// the fabric layer uses. The run must terminate, deliver every
// message, and report the final time of the last delivery.
func TestShardSetWindows(t *testing.T) {
	const lookahead = 10
	ss := NewShardSet(2, EngineCalendar)
	ss.SetLookahead(lookahead)

	type msg struct {
		at   Time // send time
		dst  int
		hops int // replies left after this delivery
	}
	ledger := make([][]msg, 2) // one slice per source shard
	delivered := 0
	var lastAt Time

	ss.OnBarrier(func() {
		for src := 0; src < 2; src++ {
			for _, m := range ledger[src] {
				m := m
				deliver := m.at + lookahead // exactly one lookahead out
				if deliver <= ss.WindowEdge() {
					t.Fatalf("delivery at %d within window edge %d", deliver, ss.WindowEdge())
				}
				ss.Kernel(m.dst).At(deliver, func() {
					delivered++
					if m.hops > 0 {
						k := ss.Kernel(m.dst)
						ledger[m.dst] = append(ledger[m.dst],
							msg{at: k.Now(), dst: 1 - m.dst, hops: m.hops - 1})
					}
				})
				if deliver > lastAt {
					lastAt = deliver
				}
			}
			ledger[src] = ledger[src][:0]
		}
	})

	// Kick off: shard 0 posts the first message at t=3, 6 replies follow.
	ss.Kernel(0).At(3, func() {
		ledger[0] = append(ledger[0], msg{at: ss.Kernel(0).Now(), dst: 1, hops: 6})
	})

	end := ss.Run()
	if delivered != 7 {
		t.Fatalf("delivered %d messages, want 7", delivered)
	}
	if end != lastAt {
		t.Fatalf("final time %d, want %d", end, lastAt)
	}
	if ss.Pending() != 0 {
		t.Fatalf("%d events still pending after Run", ss.Pending())
	}
}

// TestShardSetPanic checks that a model panic inside a window is
// re-raised deterministically, labeled with the lowest panicking
// shard.
func TestShardSetPanic(t *testing.T) {
	ss := NewShardSet(3, EngineCalendar)
	ss.SetLookahead(5)
	for i := 0; i < 3; i++ {
		i := i
		ss.Kernel(i).At(1, func() {
			if i >= 1 {
				panic("boom")
			}
		})
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic")
		}
		msg, _ := r.(string)
		if !strings.HasPrefix(msg, "sim: shard 1:") {
			t.Fatalf("panic %q, want it attributed to shard 1", msg)
		}
	}()
	ss.Run()
}

// TestShardSetMatchesKernel runs the same independent per-shard
// workload on a ShardSet and on plain kernels and checks event counts
// and final times agree.
func TestShardSetMatchesKernel(t *testing.T) {
	build := func(k *Kernel, seed Time) {
		var step func()
		n := 0
		step = func() {
			n++
			if n < 50 {
				k.After(seed, step)
			}
		}
		k.At(seed, step)
	}
	ss := NewShardSet(2, EngineHeap)
	ss.SetLookahead(7)
	build(ss.Kernel(0), 3)
	build(ss.Kernel(1), 5)
	end := ss.Run()

	k0, k1 := NewKernelWith(EngineHeap), NewKernelWith(EngineHeap)
	build(k0, 3)
	build(k1, 5)
	e0, e1 := k0.Run(), k1.Run()
	want := e0
	if e1 > want {
		want = e1
	}
	if end != want {
		t.Fatalf("sharded end %d, sequential end %d", end, want)
	}
	if ss.Executed() != k0.Executed()+k1.Executed() {
		t.Fatalf("sharded executed %d, sequential %d", ss.Executed(), k0.Executed()+k1.Executed())
	}
}

package sim

import "container/heap"

// This file is the seed's binary-heap scheduler, preserved verbatim in
// structure as EngineHeap: the reference kernel ("refKernel") that the
// differential property test and FuzzKernelSchedule replay every
// schedule against. It deliberately keeps the original boxed-event,
// container/heap implementation — slower, but independently simple —
// so a bug in the calendar engine cannot hide in shared code.

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool { return h[i].before(h[j]) }

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// heapQueue adapts eventHeap to the scheduler interface.
type heapQueue struct {
	h eventHeap
}

func (q *heapQueue) push(e event) {
	boxed := e
	heap.Push(&q.h, &boxed)
}

func (q *heapQueue) pushBatch(at Time, seq uint64, fns []func()) {
	for _, fn := range fns {
		q.push(event{at: at, seq: seq, fn: fn})
		seq++
	}
}

func (q *heapQueue) pop() (event, bool) {
	if len(q.h) == 0 {
		return event{}, false
	}
	return *heap.Pop(&q.h).(*event), true
}

func (q *heapQueue) peekAt() (Time, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

func (q *heapQueue) len() int { return len(q.h) }

func (q *heapQueue) clear() { q.h = nil }

package sim_test

// Differential tests: every randomized schedule is replayed on both
// scheduler engines — the calendar queue that production kernels run
// on, and the seed's binary heap kept as the reference implementation —
// and the two executions must agree on the exact (time, scheduling
// order) event sequence. This is the proof obligation behind swapping
// the engine without re-blessing the golden artifacts: if arbitrary
// adversarial schedules execute identically, the experiment suite's
// schedules do too.

import (
	"fmt"
	"math/rand"
	"testing"

	"cni/internal/sim"
)

// traceEntry records one executed event: the virtual time it ran at and
// the identity it was assigned when scheduled (ids are handed out in
// scheduling order, so equal traces mean equal (at, seq) total orders).
type traceEntry struct {
	t  sim.Time
	id uint64
}

// diffProgram drives one kernel through a pseudo-random schedule. All
// randomness is drawn in event-execution order from a seeded PRNG, so
// two engines that execute events in the same order see the same
// program; any divergence shows up as differing traces.
type diffProgram struct {
	k      *sim.Kernel
	rng    *rand.Rand
	trace  []traceEntry
	nextID uint64
	budget int // events still allowed to be scheduled
}

// tieDeltas is the delta menu: heavy on ties (0) and on the 25-cycle
// link-propagation quantum the calendar's bucket width was derived
// from, plus values straddling bucket (32) and window (32768)
// boundaries and far-future timers that must ride the overflow ladder.
var tieDeltas = []sim.Time{
	0, 0, 0, 0, 1, 25, 25, 31, 32, 33, 150, 1023, 1024, 4096,
	32767, 32768, 32769, 100000, 1 << 21,
}

func (p *diffProgram) delta() sim.Time {
	return tieDeltas[p.rng.Intn(len(tieDeltas))]
}

// scheduleOne schedules a single future event via a randomly chosen API
// form (At, AtCall, AtBatch) and returns how many events it enqueued.
func (p *diffProgram) scheduleOne() int {
	if p.budget <= 0 {
		return 0
	}
	at := p.k.Now() + p.delta()
	switch p.rng.Intn(4) {
	case 0: // plain closure
		id := p.nextID
		p.nextID++
		p.budget--
		p.k.At(at, func() { p.onEvent(id) })
		return 1
	case 1: // pre-bound call form
		id := p.nextID
		p.nextID++
		p.budget--
		p.k.AtCall(at, p.onEventAny, id)
		return 1
	default: // batch of 1..6 same-timestamp events
		n := 1 + p.rng.Intn(6)
		if n > p.budget {
			n = p.budget
		}
		fns := make([]func(), n)
		for i := range fns {
			id := p.nextID
			p.nextID++
			fns[i] = func() { p.onEvent(id) }
		}
		p.budget -= n
		p.k.AtBatch(at, fns)
		return n
	}
}

func (p *diffProgram) onEventAny(arg any) { p.onEvent(arg.(uint64)) }

// onEvent is every event's body: record the execution, then re-entrantly
// schedule 0..3 more events so the queue is mutated while draining
// (including inserts into the bucket currently being popped).
func (p *diffProgram) onEvent(id uint64) {
	p.trace = append(p.trace, traceEntry{t: p.k.Now(), id: id})
	for n := p.rng.Intn(4); n > 0; n-- {
		p.scheduleOne()
	}
}

// runSchedule executes the seeded program on the given engine and
// returns the trace plus the kernel's final clock and event count.
func runSchedule(engine sim.Engine, seed int64, budget int) ([]traceEntry, sim.Time, uint64) {
	p := &diffProgram{
		k:      sim.NewKernelWith(engine),
		rng:    rand.New(rand.NewSource(seed)),
		budget: budget,
	}
	for i := 0; i < 64; i++ {
		p.scheduleOne()
	}
	// Interleave RunUntil horizons with full Runs, with a Stop thrown
	// into the middle of one drain, before running to empty.
	p.k.RunUntil(p.k.Now() + 5000)
	p.k.At(p.k.Now()+7500, func() { p.k.Stop() })
	p.k.Run() // returns at the Stop event
	p.k.RunUntil(p.k.Now() + 40000)
	p.k.Run()
	return p.trace, p.k.Now(), p.k.Executed()
}

func compareTraces(t *testing.T, label string, cal, ref []traceEntry) {
	t.Helper()
	if len(cal) != len(ref) {
		t.Fatalf("%s: calendar executed %d events, heap %d", label, len(cal), len(ref))
	}
	for i := range cal {
		if cal[i] != ref[i] {
			t.Fatalf("%s: divergence at event %d: calendar ran (t=%d id=%d), heap ran (t=%d id=%d)",
				label, i, cal[i].t, cal[i].id, ref[i].t, ref[i].id)
		}
	}
	for i := 1; i < len(cal); i++ {
		if cal[i].t < cal[i-1].t {
			t.Fatalf("%s: time went backwards at event %d: %d after %d", label, i, cal[i].t, cal[i-1].t)
		}
	}
}

// TestDifferentialRandomSchedules replays large randomized schedules —
// heavy timestamp ties, re-entrant scheduling from event bodies, all
// three scheduling forms, RunUntil/Stop interleavings — on both engines
// and requires bit-identical execution.
func TestDifferentialRandomSchedules(t *testing.T) {
	seeds := 20
	budget := 12000
	if testing.Short() {
		seeds = 4
	}
	for s := 0; s < seeds; s++ {
		seed := int64(0x5EED + 7919*s)
		label := fmt.Sprintf("seed=%#x", seed)
		cal, calNow, calExec := runSchedule(sim.EngineCalendar, seed, budget)
		ref, refNow, refExec := runSchedule(sim.EngineHeap, seed, budget)
		compareTraces(t, label, cal, ref)
		if calNow != refNow || calExec != refExec {
			t.Fatalf("%s: final state differs: calendar (now=%d executed=%d), heap (now=%d executed=%d)",
				label, calNow, calExec, refNow, refExec)
		}
		if len(cal) < budget {
			t.Fatalf("%s: schedule too small: %d events (want %d)", label, len(cal), budget)
		}
	}
}

// TestDifferentialEventLimit verifies that SetEventLimit aborts both
// engines at the same event, with the identical trace prefix.
func TestDifferentialEventLimit(t *testing.T) {
	run := func(engine sim.Engine) (trace []traceEntry, panicked bool) {
		p := &diffProgram{
			k:      sim.NewKernelWith(engine),
			rng:    rand.New(rand.NewSource(99)),
			budget: 4000,
		}
		for i := 0; i < 64; i++ {
			p.scheduleOne()
		}
		p.k.SetEventLimit(500)
		func() {
			defer func() { panicked = recover() != nil }()
			p.k.Run()
		}()
		return p.trace, panicked
	}
	cal, calPanic := run(sim.EngineCalendar)
	ref, refPanic := run(sim.EngineHeap)
	if !calPanic || !refPanic {
		t.Fatalf("event limit: calendar panicked=%v, heap panicked=%v (want both)", calPanic, refPanic)
	}
	compareTraces(t, "event-limit", cal, ref)
}

// TestDifferentialDrain cuts a run short on both engines and verifies
// the engines agree on the abandoned state, that Drain is idempotent,
// and that both kernels reject reuse identically.
func TestDifferentialDrain(t *testing.T) {
	run := func(engine sim.Engine) (trace []traceEntry, pending int, k *sim.Kernel) {
		p := &diffProgram{
			k:      sim.NewKernelWith(engine),
			rng:    rand.New(rand.NewSource(7)),
			budget: 3000,
		}
		for i := 0; i < 64; i++ {
			p.scheduleOne()
		}
		p.k.At(p.k.Now()+20000, func() { p.k.Stop() })
		p.k.Run()
		return p.trace, p.k.Pending(), p.k
	}
	cal, calPend, calK := run(sim.EngineCalendar)
	ref, refPend, refK := run(sim.EngineHeap)
	compareTraces(t, "drain", cal, ref)
	if calPend != refPend {
		t.Fatalf("pending after Stop: calendar %d, heap %d", calPend, refPend)
	}
	if calPend == 0 {
		t.Fatal("schedule drained before Stop; Drain test needs pending events")
	}
	for _, k := range []*sim.Kernel{calK, refK} {
		k.Drain()
		k.Drain() // idempotent
		if !k.Drained() {
			t.Fatal("Drained() false after Drain")
		}
		if k.Pending() != 0 {
			t.Fatalf("pending %d after Drain", k.Pending())
		}
		// Clock and counters stay readable; scheduling and running panic.
		_ = k.Now()
		_ = k.Executed()
		mustPanic(t, "At after Drain", func() { k.At(k.Now(), func() {}) })
		mustPanic(t, "Run after Drain", func() { k.Run() })
		mustPanic(t, "RunUntil after Drain", func() { k.RunUntil(k.Now() + 1) })
	}
}

func mustPanic(t *testing.T, label string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", label)
		}
	}()
	fn()
}

package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64) used everywhere the models need randomness, so that
// simulation results are reproducible across runs and platforms and do
// not depend on math/rand's global state.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the
// same seed produce identical sequences.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a pseudo-random int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomly permutes n elements using the provided swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel()
	var got []Time
	for _, at := range []Time{50, 10, 30, 20, 40} {
		at := at
		k.At(at, func() { got = append(got, at) })
	}
	end := k.Run()
	if end != 50 {
		t.Fatalf("end time = %d, want 50", end)
	}
	want := []Time{10, 20, 30, 40, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order %v, want %v", got, want)
		}
	}
}

func TestKernelTieBreaksBySchedulingOrder(t *testing.T) {
	k := NewKernel()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(100, func() { got = append(got, i) })
	}
	k.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("simultaneous events ran out of order: %v", got)
		}
	}
}

func TestKernelAfterIsRelative(t *testing.T) {
	k := NewKernel()
	var at Time
	k.At(100, func() {
		k.After(25, func() { at = k.Now() })
	})
	k.Run()
	if at != 125 {
		t.Fatalf("After fired at %d, want 125", at)
	}
}

func TestKernelPanicsOnPastEvent(t *testing.T) {
	k := NewKernel()
	k.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(50, func() {})
	})
	k.Run()
}

func TestKernelStopAndResume(t *testing.T) {
	k := NewKernel()
	var ran []Time
	k.At(10, func() { ran = append(ran, 10); k.Stop() })
	k.At(20, func() { ran = append(ran, 20) })
	k.Run()
	if len(ran) != 1 {
		t.Fatalf("after Stop ran %v, want just [10]", ran)
	}
	k.Run()
	if len(ran) != 2 || ran[1] != 20 {
		t.Fatalf("resumed run executed %v, want [10 20]", ran)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel()
	var ran []Time
	for _, at := range []Time{10, 20, 30} {
		at := at
		k.At(at, func() { ran = append(ran, at) })
	}
	k.RunUntil(25)
	if len(ran) != 2 {
		t.Fatalf("RunUntil(25) ran %v, want [10 20]", ran)
	}
	if k.Now() != 25 {
		t.Fatalf("Now() = %d after RunUntil(25)", k.Now())
	}
	if k.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", k.Pending())
	}
}

func TestKernelEventLimit(t *testing.T) {
	k := NewKernel()
	k.SetEventLimit(10)
	var bounce func()
	bounce = func() { k.After(1, bounce) }
	k.After(1, bounce)
	defer func() {
		if recover() == nil {
			t.Error("event limit did not panic")
		}
	}()
	k.Run()
}

func TestKernelDeterminismProperty(t *testing.T) {
	// Property: the same schedule of events produces the same execution
	// trace regardless of how many times it is run.
	run := func(times []uint16) []Time {
		k := NewKernel()
		var trace []Time
		for _, raw := range times {
			at := Time(raw % 1000)
			k.At(at, func() { trace = append(trace, k.Now()) })
		}
		k.Run()
		return trace
	}
	f := func(times []uint16) bool {
		a, b := run(times), run(times)
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		// Trace must be sorted: time never goes backwards.
		for i := 1; i < len(a); i++ {
			if a[i] < a[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResourceQueuesFIFO(t *testing.T) {
	r := NewResource("bus")
	s1, e1 := r.Use(0, 10)
	if s1 != 0 || e1 != 10 {
		t.Fatalf("first use = [%d,%d], want [0,10]", s1, e1)
	}
	// Second request arrives while busy: queued until 10.
	s2, e2 := r.Use(5, 10)
	if s2 != 10 || e2 != 20 {
		t.Fatalf("queued use = [%d,%d], want [10,20]", s2, e2)
	}
	// Third request arrives after idle: served immediately.
	s3, e3 := r.Use(100, 5)
	if s3 != 100 || e3 != 105 {
		t.Fatalf("idle use = [%d,%d], want [100,105]", s3, e3)
	}
	if r.Busy != 25 {
		t.Fatalf("Busy = %d, want 25", r.Busy)
	}
	if r.Waited != 5 {
		t.Fatalf("Waited = %d, want 5", r.Waited)
	}
	if r.Uses != 3 {
		t.Fatalf("Uses = %d, want 3", r.Uses)
	}
}

func TestResourceOccupancyProperty(t *testing.T) {
	// Property: service intervals never overlap and starts never precede
	// arrivals, for arbitrary arrival/duration sequences.
	f := func(reqs []struct {
		Gap uint8
		Dur uint8
	}) bool {
		r := NewResource("x")
		var at, lastEnd Time
		for _, q := range reqs {
			at += Time(q.Gap)
			s, e := r.Use(at, Time(q.Dur))
			if s < at || s < lastEnd || e != s+Time(q.Dur) {
				return false
			}
			lastEnd = e
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWaitQueueFIFO(t *testing.T) {
	k := NewKernel()
	var q WaitQueue
	if q.Pop() != nil {
		t.Fatal("Pop on empty queue should return nil")
	}
	p1 := k.Spawn("a", func(p *Proc) {})
	p2 := k.Spawn("b", func(p *Proc) {})
	q.Push(p1)
	q.Push(p2)
	if q.Len() != 2 {
		t.Fatalf("Len = %d, want 2", q.Len())
	}
	if q.Pop() != p1 || q.Pop() != p2 || q.Pop() != nil {
		t.Fatal("WaitQueue did not pop in FIFO order")
	}
	k.Run()
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if b.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/1000 identical values", same)
	}
}

func TestRNGBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of range", v)
		}
		if v := r.Int63n(1e12); v < 0 || v >= 1e12 {
			t.Fatalf("Int63n = %d out of range", v)
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(99)
	f := func(n uint8) bool {
		m := int(n%64) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGFloat64RoughlyUniform(t *testing.T) {
	r := NewRNG(1234)
	const n = 100000
	var buckets [10]int
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Fatalf("bucket %d has %d of %d samples; distribution badly skewed", i, c, n)
		}
	}
}

package workload

import (
	"fmt"
	"math"
	"sort"

	"cni/internal/sim"
)

// Zipf draws keys with rank-frequency popularity P(rank k) ∝ 1/k^s
// over a finite key space, by table-based inversion: the cumulative
// weights are precomputed once and each draw binary-searches them with
// one uniform variate. Unlike the rejection samplers in the standard
// library this supports any s >= 0 (s < 1 included, the "mild skew"
// regime serving studies care about) and is a pure function of the RNG
// stream, so workload runs stay bit-reproducible.
type Zipf struct {
	cum []float64 // cum[k] = sum of 1/(i+1)^s for i <= k
	s   float64
}

// NewZipf builds the table for n keys with exponent s. Key 0 is the
// most popular (rank 1); s = 0 degenerates to uniform.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic(fmt.Sprintf("workload: zipf over %d keys", n))
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		panic(fmt.Sprintf("workload: zipf exponent %g", s))
	}
	z := &Zipf{cum: make([]float64, n), s: s}
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), s)
		z.cum[k] = total
	}
	return z
}

// N reports the key-space size.
func (z *Zipf) N() int { return len(z.cum) }

// Next draws one key in [0, N) using a single uniform variate from rng.
func (z *Zipf) Next(rng *sim.RNG) uint64 {
	u := rng.Float64() * z.cum[len(z.cum)-1]
	return uint64(sort.SearchFloat64s(z.cum, u))
}

package workload

import (
	"fmt"
	"strings"

	"cni/internal/cluster"
	"cni/internal/config"
	"cni/internal/dsm"
	"cni/internal/kv"
	"cni/internal/rpc"
	"cni/internal/sim"
	"cni/internal/tenant"
)

// KVTenant is one tenant's traffic and QoS contract in a KV run.
type KVTenant struct {
	// Class is the server-side QoS contract (rate limit, priority,
	// weight). Class.ID must equal the tenant's index in KVSpec.Tenants.
	Class tenant.Class
	// Rate is the tenant's offered load per client node, requests/second,
	// driving a Poisson open-loop arrival stream.
	Rate float64
	// Requests is how many requests each client node issues for this
	// tenant.
	Requests int
	// GetFrac is the GET fraction of the stream; the rest are SETs.
	GetFrac float64
}

// KVSpec describes one multi-tenant KV serving run. Nodes
// 0..Servers-1 serve a store pre-populated with the whole key space
// (sharded key mod Servers); the remaining nodes each run every
// tenant's arrival stream, aggregated open loop: all streams merge
// into one time-ordered schedule per client, and requests fire at
// their scheduled instants no matter how the server is keeping up, so
// queueing delay lands in the measured tail instead of thinning the
// load (no coordinated omission).
type KVSpec struct {
	Servers int
	Clients int
	Seed    uint64

	Keys  int     // key-space size (default 1024)
	ZipfS float64 // key popularity skew, P(rank k) ∝ 1/k^s

	SetBytes   int      // SET value payload (default 64)
	ValueBytes int      // GET response payload (default 256)
	Deadline   sim.Time // per-request deadline, cycles (0 = none)

	Tenants   []KVTenant // default: one uncontracted tenant, 500 req
	Isolation bool       // per-tenant channels, buckets and scheduling

	// Server knobs (kv.ServerConfig).
	WorkQueue  int
	FreeBufs   int
	ServiceGet sim.Time
	ServiceSet sim.Time
	Policy     rpc.Policy
}

// withDefaults fills the zero values a caller may omit.
func (s KVSpec) withDefaults() KVSpec {
	if s.Servers == 0 {
		s.Servers = 1
	}
	if s.Clients == 0 {
		s.Clients = 1
	}
	if s.Keys == 0 {
		s.Keys = 1024
	}
	if s.SetBytes == 0 {
		s.SetBytes = 64
	}
	if s.ValueBytes == 0 {
		s.ValueBytes = 256
	}
	if len(s.Tenants) == 0 {
		s.Tenants = []KVTenant{{Rate: 20000, Requests: 500, GetFrac: 0.9}}
	}
	ts := make([]KVTenant, len(s.Tenants))
	copy(ts, s.Tenants)
	s.Tenants = ts
	for i := range s.Tenants {
		t := &s.Tenants[i]
		t.Class.ID = i
		if t.Requests == 0 {
			t.Requests = 500
		}
		if t.GetFrac == 0 {
			t.GetFrac = 0.9
		}
	}
	if s.WorkQueue == 0 {
		s.WorkQueue = 64
	}
	if s.FreeBufs == 0 {
		s.FreeBufs = 64
	}
	if s.ServiceGet == 0 {
		s.ServiceGet = 1000
	}
	if s.ServiceSet == 0 {
		s.ServiceSet = s.ServiceGet
	}
	return s
}

// Validate rejects specs the generator cannot run.
func (s KVSpec) Validate() error {
	s = s.withDefaults()
	if s.Servers < 1 || s.Clients < 1 {
		return fmt.Errorf("workload: need at least 1 server and 1 client, have %d/%d", s.Servers, s.Clients)
	}
	if s.Keys < 1 {
		return fmt.Errorf("workload: key space %d", s.Keys)
	}
	if s.ZipfS < 0 {
		return fmt.Errorf("workload: zipf skew %g", s.ZipfS)
	}
	for i, t := range s.Tenants {
		if t.Rate <= 0 {
			return fmt.Errorf("workload: tenant %d open-loop rate %g", i, t.Rate)
		}
		if t.GetFrac < 0 || t.GetFrac > 1 {
			return fmt.Errorf("workload: tenant %d GET fraction %g", i, t.GetFrac)
		}
	}
	return nil
}

// KVReport is the outcome of one KV run.
type KVReport struct {
	Res   *cluster.Result
	Stats kv.Stats

	Lat     rpc.Latencies // all completed requests
	HitLat  rpc.Latencies // GETs served by the NIC-resident cache
	HostLat rpc.Latencies // GETs served by the host

	Tenants   []tenant.Stats
	TenantLat []rpc.Latencies

	Wall    sim.Time
	Seconds float64

	Offered float64 // total offered load, requests/second
	Goodput float64 // on-time completed responses per second

	P50, P99, P999 sim.Time
	HitRatio       float64 // board-served fraction of completed GETs
}

// String renders the report in the style of the repo's CLI output.
func (r *KVReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b,
		"requests issued=%d completed=%d rejected=%d throttled=%d expired=%d\n"+
			"offered %.0f req/s, goodput %.0f req/s over %.3f ms\n"+
			"latency p50=%d p99=%d p999=%d cycles (mean %.0f)\n"+
			"server: served=%d freeDry=%d queueFull=%d delayed=%d malformed=%d",
		r.Stats.Issued, r.Stats.Completed, r.Stats.Rejected, r.Stats.Throttled, r.Stats.Expired,
		r.Offered, r.Goodput, r.Seconds*1e3,
		r.P50, r.P99, r.P999, r.Stats.Lat.Mean(),
		r.Stats.Served, r.Stats.FreeDry, r.Stats.QueueFull, r.Stats.Delayed, r.Stats.Malformed)
	if hits := r.Stats.HitLat.Count + r.Stats.HostLat.Count; hits > 0 {
		fmt.Fprintf(&b,
			"\nnic cache: board-served=%d host-served=%d (hit ratio %.3f) "+
				"hit-p99=%d host-p99=%d inserts=%d evicts=%d invals=%d vetoes=%d",
			r.Stats.BoardServed, r.Stats.HostLat.Count, r.HitRatio,
			r.HitLat.Percentile(99), r.HostLat.Percentile(99),
			r.Stats.Inserts, r.Stats.CacheEvicts, r.Stats.WriteInvals, r.Stats.InsertVetoes)
	}
	for i := range r.Tenants {
		ts := r.Tenants[i]
		var p99 sim.Time
		if i < len(r.TenantLat) {
			p99 = r.TenantLat[i].Percentile(99)
		}
		fmt.Fprintf(&b,
			"\ntenant %d: issued=%d completed=%d onTime=%d rejected=%d throttled=%d expired=%d p99=%d",
			i, ts.Issued, ts.Completed, ts.OnTime, ts.Rejected, ts.Throttled, ts.Expired, p99)
	}
	return b.String()
}

// RunKV executes the spec on a fresh cluster under cfg. Whether the
// serving boards grow a NIC-resident response cache is entirely the
// config's business (NICResponseCache, CNI only); the workload is
// identical either way, which is what makes the FS2 comparison fair.
func RunKV(cfg *config.Config, s KVSpec) *KVReport {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		panic(err)
	}
	n := s.Servers + s.Clients
	c, err := cluster.New(cfg, n, nil)
	if err != nil {
		panic(err)
	}

	classes := make([]tenant.Class, len(s.Tenants))
	for i, t := range s.Tenants {
		classes[i] = t.Class
	}
	cyclesPerSec := float64(cfg.CPUFreqMHz) * 1e6

	res := c.Run(func(w *dsm.Worker) {
		p, id := w.Proc(), w.Node()
		node := c.KV.Node(id)
		if id < s.Servers {
			node.StartServer(kv.ServerConfig{
				WorkQueue:  s.WorkQueue,
				FreeBufs:   s.FreeBufs,
				ServiceGet: s.ServiceGet,
				ServiceSet: s.ServiceSet,
				ValueBytes: s.ValueBytes,
				Policy:     s.Policy,
				Clients:    s.Clients, // every client dials every server
				Tenants:    classes,
				Isolation:  s.Isolation,
			})
			for key := id; key < s.Keys; key += s.Servers {
				node.Preload(uint64(key))
			}
			node.Serve(p)
			return
		}
		rng := sim.NewRNG(clientSeed(s.Seed, id))
		conns := make([]*kv.Conn, s.Servers)
		for i := range conns {
			conns[i] = node.Dial(i, s.SetBytes, s.Deadline)
		}
		zipf := NewZipf(s.Keys, s.ZipfS)

		// The aggregated arrival stream: every tenant keeps its own
		// Poisson schedule and the client plays the merged order, always
		// firing the earliest pending arrival next.
		type stream struct {
			next sim.Time
			left int
			gap  float64
		}
		streams := make([]stream, len(s.Tenants))
		for i, t := range s.Tenants {
			gap := cyclesPerSec / t.Rate
			streams[i] = stream{next: exp(rng, gap), left: t.Requests, gap: gap}
		}
		for {
			tn := -1
			for i := range streams {
				if streams[i].left > 0 && (tn < 0 || streams[i].next < streams[tn].next) {
					tn = i
				}
			}
			if tn < 0 {
				break
			}
			st := &streams[tn]
			p.WaitUntil(st.next)
			key := zipf.Next(rng)
			kind := kv.Set
			if rng.Float64() < s.Tenants[tn].GetFrac {
				kind = kv.Get
			}
			conns[key%uint64(s.Servers)].Fire(p, st.next, kind, tn, key)
			st.left--
			st.next += exp(rng, st.gap)
		}
		node.WaitIdle(p)
		node.Done(p)
	})

	rep := &KVReport{
		Res:       res,
		Stats:     res.KV,
		Lat:       res.KVLat,
		HitLat:    res.KVHit,
		HostLat:   res.KVHost,
		Tenants:   res.Tenants,
		TenantLat: res.TenantLat,
		Wall:      res.Time,
	}
	rep.Seconds = float64(res.Time) / cyclesPerSec
	for _, t := range s.Tenants {
		rep.Offered += t.Rate * float64(s.Clients)
	}
	if rep.Seconds > 0 {
		rep.Goodput = float64(rep.Stats.Completed-rep.Stats.DeadlineMiss) / rep.Seconds
	}
	if gets := rep.Stats.HitLat.Count + rep.Stats.HostLat.Count; gets > 0 {
		rep.HitRatio = float64(rep.Stats.HitLat.Count) / float64(gets)
	}
	rep.P50 = rep.Lat.Percentile(50)
	rep.P99 = rep.Lat.Percentile(99)
	rep.P999 = rep.Lat.Percentile(99.9)
	return rep
}

package workload

import (
	"reflect"
	"testing"

	"cni/internal/config"
	"cni/internal/rpc"
)

// TestSameSeedBitIdentical is the determinism gate the harness relies
// on: the same (Config, Spec) pair produces bit-identical RPC latency
// histograms, exact sample sequences, and wall time on every run —
// under both NIC models, in both loop modes.
func TestSameSeedBitIdentical(t *testing.T) {
	specs := map[string]Spec{
		"open-poisson": {Servers: 1, Clients: 3, Open: true, Poisson: true, Rate: 8000,
			Requests: 60, ReqBytes: 128, RespBytes: 512, Seed: 42, Policy: rpc.Delay},
		"open-fixed": {Servers: 1, Clients: 2, Open: true, Rate: 5000,
			Requests: 40, ReqBytes: 64, RespBytes: 256, Seed: 42},
		"closed-think": {Servers: 2, Clients: 4, Poisson: true, Think: 3000,
			Requests: 30, ReqBytes: 64, RespBytes: 256, Seed: 42, Conns: 2},
	}
	for name, s := range specs {
		for kind, mk := range map[string]func() config.Config{
			"cni": config.Default, "standard": config.Standard,
		} {
			cfg1, cfg2 := mk(), mk()
			a := Run(&cfg1, s)
			b := Run(&cfg2, s)
			if a.Wall != b.Wall {
				t.Fatalf("%s/%s: wall %d vs %d across identical runs", name, kind, a.Wall, b.Wall)
			}
			if a.Stats != b.Stats {
				t.Fatalf("%s/%s: stats differ across identical runs:\n%+v\nvs\n%+v",
					name, kind, a.Stats, b.Stats)
			}
			if a.Stats.Lat != b.Stats.Lat {
				t.Fatalf("%s/%s: latency histograms differ across identical runs", name, kind)
			}
			if !reflect.DeepEqual(a.Lat.Samples, b.Lat.Samples) {
				t.Fatalf("%s/%s: exact sample sequences differ across identical runs", name, kind)
			}
		}
	}
}

// TestSeedChangesTraffic: a different seed must actually change the
// arrival process (otherwise the generator is not seeded at all).
func TestSeedChangesTraffic(t *testing.T) {
	base := Spec{Servers: 1, Clients: 2, Open: true, Poisson: true, Rate: 8000,
		Requests: 50, ReqBytes: 128, RespBytes: 512, Seed: 1}
	other := base
	other.Seed = 2
	cfg1, cfg2 := config.Default(), config.Default()
	a, b := Run(&cfg1, base), Run(&cfg2, other)
	if a.Wall == b.Wall && reflect.DeepEqual(a.Lat.Samples, b.Lat.Samples) {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestCNISustainsMoreAtLowerTail is the PR's headline acceptance
// criterion: at high offered load the CNI sustains strictly higher
// throughput at strictly lower p99 than the standard interface. The
// rate is chosen well past the standard interface's per-request host
// cost (interrupt + kernel receive/send + protocol) capacity and
// within the CNI's (poll + ADC enqueue/dequeue) capacity.
func TestCNISustainsMoreAtLowerTail(t *testing.T) {
	s := Spec{Servers: 1, Clients: 4, Open: true, Poisson: true, Rate: 10000,
		Requests: 300, ReqBytes: 128, RespBytes: 1024, Seed: 7, Policy: rpc.Delay}
	cniCfg, stdCfg := config.Default(), config.Standard()
	cni, std := Run(&cniCfg, s), Run(&stdCfg, s)
	if cni.Sustained <= std.Sustained {
		t.Fatalf("CNI sustained %.0f req/s, standard %.0f — want strictly higher",
			cni.Sustained, std.Sustained)
	}
	if cni.P99 >= std.P99 {
		t.Fatalf("CNI p99 %d cycles, standard %d — want strictly lower", cni.P99, std.P99)
	}
	// Under the Delay policy nothing is shed: every request completes.
	for name, r := range map[string]*Report{"cni": cni, "standard": std} {
		if want := uint64(4 * 300); r.Stats.Completed != want {
			t.Fatalf("%s: completed %d of %d", name, r.Stats.Completed, want)
		}
	}
}

// TestClosedLoopAccounting checks the closed-loop mode: exactly
// Requests calls per client, all complete, and think time shows up as
// a longer wall clock.
func TestClosedLoopAccounting(t *testing.T) {
	s := Spec{Servers: 1, Clients: 3, Requests: 25, ReqBytes: 64, RespBytes: 128, Seed: 3}
	cfg := config.Default()
	noThink := Run(&cfg, s)
	s.Think = 50000
	cfg2 := config.Default()
	withThink := Run(&cfg2, s)
	for name, r := range map[string]*Report{"no-think": noThink, "think": withThink} {
		if want := uint64(3 * 25); r.Stats.Issued != want || r.Stats.Completed != want {
			t.Fatalf("%s: issued/completed = %d/%d, want %d", name, r.Stats.Issued, r.Stats.Completed, want)
		}
	}
	if withThink.Wall <= noThink.Wall {
		t.Fatalf("think time did not lengthen the run: %d vs %d", withThink.Wall, noThink.Wall)
	}
}

// TestMultiServerSharding: clients shard round-robin over several
// servers and every server sees traffic.
func TestMultiServerSharding(t *testing.T) {
	s := Spec{Servers: 2, Clients: 4, Open: true, Rate: 5000,
		Requests: 20, ReqBytes: 64, RespBytes: 256, Seed: 9}
	cfg := config.Default()
	r := Run(&cfg, s)
	if want := uint64(4 * 20); r.Stats.Completed != want {
		t.Fatalf("completed %d, want %d", r.Stats.Completed, want)
	}
	for id := 0; id < 2; id++ {
		if got := r.Res.PerNode[id].RPC.Served; got != 2*20 {
			t.Fatalf("server %d served %d, want %d", id, got, 2*20)
		}
	}
}

// TestValidate rejects malformed specs.
func TestValidate(t *testing.T) {
	for _, bad := range []Spec{
		{Servers: 1, Clients: 1, Open: true},   // open loop without a rate
		{Servers: 1, Clients: 1, ReqBytes: -1}, // negative size
		{Servers: 1, Clients: 1, Requests: -1}, // negative count
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("spec %+v accepted", bad)
		}
	}
	ok := Spec{Open: true, Rate: 100}
	if err := ok.Validate(); err != nil {
		t.Fatalf("defaulted spec rejected: %v", err)
	}
}

// Package workload is a seeded synthetic traffic generator for the
// internal/rpc subsystem: it drives an N-node cluster of client and
// server nodes under either NIC model and reports sustained throughput
// plus exact latency percentiles.
//
// Clients run open loop (requests fire at seeded scheduled times —
// Poisson or fixed-rate arrivals — and latency is measured from the
// scheduled time, so queueing behind a saturated server is charged to
// the tail rather than silently thinning the arrival stream) or closed
// loop (blocking calls separated by think time). Every random draw
// comes from a per-client splitmix64 stream derived from Spec.Seed, so
// a run is a pure function of (Config, Spec): bit-identical histograms
// on every execution.
package workload

import (
	"fmt"
	"math"

	"cni/internal/cluster"
	"cni/internal/config"
	"cni/internal/dsm"
	"cni/internal/rpc"
	"cni/internal/sim"
)

// Spec describes one synthetic serving run. Nodes 0..Servers-1 serve;
// nodes Servers..Servers+Clients-1 issue requests, client i dialing
// server i mod Servers over Conns logical connections.
type Spec struct {
	Servers int // server nodes (>= 1)
	Clients int // client nodes (>= 1)
	Conns   int // logical connections per client (default 1)
	Seed    uint64

	Open    bool     // open loop (scheduled arrivals) vs closed loop
	Poisson bool     // exponential interarrivals/think times vs fixed
	Rate    float64  // per-client offered load, requests/second (open loop)
	Think   sim.Time // mean think time between calls, cycles (closed loop)

	Requests  int // requests per client
	ReqBytes  int
	RespBytes int

	Deadline sim.Time // per-request deadline, cycles (0 = none)

	// Server knobs (rpc.ServerConfig).
	Service   sim.Time // service cycles per request
	WorkQueue int
	FreeBufs  int
	Policy    rpc.Policy
}

// withDefaults fills the zero values a caller may omit.
func (s Spec) withDefaults() Spec {
	if s.Servers == 0 {
		s.Servers = 1
	}
	if s.Clients == 0 {
		s.Clients = 1
	}
	if s.Conns == 0 {
		s.Conns = 1
	}
	if s.Requests == 0 {
		s.Requests = 100
	}
	if s.WorkQueue == 0 {
		s.WorkQueue = 64
	}
	if s.FreeBufs == 0 {
		s.FreeBufs = 64
	}
	if s.Service == 0 {
		s.Service = 1000
	}
	return s
}

// Validate rejects specs the generator cannot run.
func (s Spec) Validate() error {
	s = s.withDefaults()
	if s.Servers < 1 || s.Clients < 1 {
		return fmt.Errorf("workload: need at least 1 server and 1 client, have %d/%d", s.Servers, s.Clients)
	}
	if s.Open && s.Rate <= 0 {
		return fmt.Errorf("workload: open-loop spec needs Rate > 0, have %g", s.Rate)
	}
	if s.ReqBytes < 0 || s.RespBytes < 0 || s.Requests < 0 {
		return fmt.Errorf("workload: negative size or count")
	}
	return nil
}

// Report is the outcome of one run.
type Report struct {
	Res   *cluster.Result
	Stats rpc.Stats     // aggregate over all nodes (== Res.RPC)
	Lat   rpc.Latencies // exact samples (== Res.RPCLat)

	Wall    sim.Time // wall time in cycles
	Seconds float64  // wall time in seconds at cfg.CPUFreqMHz

	Offered   float64 // total offered load, requests/second
	Sustained float64 // completed responses per second over the wall time

	P50, P99, P999 sim.Time // exact latency percentiles, cycles
}

// String renders the report in the style of the repo's CLI output.
func (r *Report) String() string {
	return fmt.Sprintf(
		"requests issued=%d completed=%d rejected=%d expired=%d\n"+
			"offered %.0f req/s, sustained %.0f req/s over %.3f ms\n"+
			"latency p50=%d p99=%d p999=%d cycles (mean %.0f)\n"+
			"server: served=%d freeDry=%d queueFull=%d delayed=%d qPeak=%d parkedPeak=%d",
		r.Stats.Issued, r.Stats.Completed, r.Stats.Rejected, r.Stats.Expired,
		r.Offered, r.Sustained, r.Seconds*1e3,
		r.P50, r.P99, r.P999, r.Stats.Lat.Mean(),
		r.Stats.Served, r.Stats.FreeDry, r.Stats.QueueFull, r.Stats.Delayed,
		r.Stats.QueuePeak, r.Stats.ParkedPeak)
}

// clientSeed derives the per-client splitmix64 stream seed.
func clientSeed(seed uint64, node int) uint64 {
	return seed + uint64(node+1)*0x9E3779B97F4A7C15
}

// exp draws an exponential variate with the given mean in cycles.
func exp(rng *sim.RNG, mean float64) sim.Time {
	u := rng.Float64()
	d := -math.Log(1-u) * mean
	if d < 1 {
		d = 1
	}
	return sim.Time(d)
}

// Run executes the spec on a fresh cluster under cfg and gathers the
// report. The cluster carries no DSM traffic: the RPC engine attached
// to every board is the only protocol speaking.
func Run(cfg *config.Config, s Spec) *Report {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		panic(err)
	}
	n := s.Servers + s.Clients
	c, err := cluster.New(cfg, n, nil)
	if err != nil {
		panic(err)
	}

	// Per-server client counts, so each server knows how many done
	// markers to wait for.
	clientsOf := make([]int, s.Servers)
	for i := 0; i < s.Clients; i++ {
		clientsOf[i%s.Servers]++
	}

	cyclesPerSec := float64(cfg.CPUFreqMHz) * 1e6
	meanGap := 0.0
	if s.Open {
		meanGap = cyclesPerSec / s.Rate
	}

	res := c.Run(func(w *dsm.Worker) {
		p, id := w.Proc(), w.Node()
		if id < s.Servers {
			srv := c.RPC.Node(id)
			srv.StartServer(rpc.ServerConfig{
				WorkQueue: s.WorkQueue,
				FreeBufs:  s.FreeBufs,
				Service:   s.Service,
				RespBytes: s.RespBytes,
				Policy:    s.Policy,
				Clients:   clientsOf[id],
			})
			srv.Serve(p)
			return
		}
		cl := c.RPC.Node(id)
		server := (id - s.Servers) % s.Servers
		rng := sim.NewRNG(clientSeed(s.Seed, id))
		conns := make([]*rpc.Conn, s.Conns)
		for i := range conns {
			conns[i] = cl.Dial(server, s.ReqBytes, s.Deadline)
		}
		if s.Open {
			// Open loop: fire at scheduled times regardless of responses.
			var next sim.Time
			for k := 0; k < s.Requests; k++ {
				if s.Poisson {
					next += exp(rng, meanGap)
				} else {
					next += sim.Time(meanGap)
				}
				p.WaitUntil(next)
				conns[k%s.Conns].Fire(p, next)
			}
		} else {
			// Closed loop: one call at a time, separated by think time.
			for k := 0; k < s.Requests; k++ {
				if s.Think > 0 {
					if s.Poisson {
						p.Advance(exp(rng, float64(s.Think)))
					} else {
						p.Advance(s.Think)
					}
				}
				conns[k%s.Conns].Call(p)
			}
		}
		cl.WaitIdle(p)
		cl.Done(p)
	})

	rep := &Report{
		Res:   res,
		Stats: res.RPC,
		Lat:   res.RPCLat,
		Wall:  res.Time,
	}
	rep.Seconds = float64(res.Time) / cyclesPerSec
	if s.Open {
		rep.Offered = s.Rate * float64(s.Clients)
	} else if rep.Seconds > 0 {
		rep.Offered = float64(rep.Stats.Issued) / rep.Seconds
	}
	if rep.Seconds > 0 {
		rep.Sustained = float64(rep.Stats.Completed) / rep.Seconds
	}
	rep.P50 = rep.Lat.Percentile(50)
	rep.P99 = rep.Lat.Percentile(99)
	rep.P999 = rep.Lat.Percentile(99.9)
	return rep
}

package workload

import (
	"math"
	"testing"

	"cni/internal/config"
	"cni/internal/sim"
)

func TestZipfDeterministic(t *testing.T) {
	z := NewZipf(1000, 1.1)
	a, b := sim.NewRNG(7), sim.NewRNG(7)
	for i := 0; i < 10000; i++ {
		x, y := z.Next(a), z.Next(b)
		if x != y {
			t.Fatalf("draw %d diverged: %d vs %d under the same seed", i, x, y)
		}
		if x >= 1000 {
			t.Fatalf("draw %d out of range: %d", i, x)
		}
	}
}

// TestZipfEmpiricalSkew checks the generator against the law it claims:
// the frequency ratio between rank 1 and rank 10 must be 10^s, for
// exponents on both sides of s = 1 (the rejection samplers in common
// libraries cannot do s < 1; the table inversion must).
func TestZipfEmpiricalSkew(t *testing.T) {
	const draws = 200000
	for _, s := range []float64{0.9, 1.1, 1.3} {
		z := NewZipf(1000, s)
		rng := sim.NewRNG(42)
		counts := make([]int, 1000)
		for i := 0; i < draws; i++ {
			counts[z.Next(rng)]++
		}
		want := math.Pow(10, s)
		got := float64(counts[0]) / float64(counts[9])
		if got < want*0.75 || got > want*1.33 {
			t.Errorf("s=%g: rank1/rank10 frequency ratio %.2f, want ~%.2f", s, got, want)
		}
		if counts[0] <= counts[49] {
			t.Errorf("s=%g: rank 1 (%d draws) not above rank 50 (%d)", s, counts[0], counts[49])
		}
	}
}

func TestZipfUniformAtZeroSkew(t *testing.T) {
	z := NewZipf(10, 0)
	rng := sim.NewRNG(3)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Next(rng)]++
	}
	for k, c := range counts {
		if c < 9000 || c > 11000 {
			t.Fatalf("s=0 key %d drawn %d of 100000, want ~10000", k, c)
		}
	}
}

// TestKVOpenLoopIsCoordinationOmissionFree pins the property the
// aggregated stream exists for: the arrival schedule is a function of
// the seed alone, so a slow server receives exactly the load a fast
// one does and the queueing shows up in the measured tail — it does
// not silently thin the stream the way a closed loop would.
func TestKVOpenLoopIsCoordinationOmissionFree(t *testing.T) {
	spec := KVSpec{
		Seed: 11, Keys: 64, ZipfS: 1.1,
		Tenants: []KVTenant{{Rate: 4000, Requests: 120, GetFrac: 1.0}},
	}
	cfg := config.Standard() // host path only: service time dominates
	fastSpec, slowSpec := spec, spec
	fastSpec.ServiceGet = 200
	slowSpec.ServiceGet = 120000 // far above the mean arrival gap
	fast := RunKV(&cfg, fastSpec)
	slow := RunKV(&cfg, slowSpec)
	if fast.Stats.Issued != slow.Stats.Issued {
		t.Fatalf("offered load thinned by server speed: %d vs %d issued",
			fast.Stats.Issued, slow.Stats.Issued)
	}
	if slow.P99 < 10*fast.P99 {
		t.Fatalf("overload queueing missing from the tail: slow p99 %d vs fast p99 %d",
			slow.P99, fast.P99)
	}
	if slow.P99 < slowSpec.ServiceGet {
		t.Fatalf("slow p99 %d below a single service time %d: latency not measured from the scheduled issue",
			slow.P99, slowSpec.ServiceGet)
	}
}

func TestKVRunDeterministicAndSharded(t *testing.T) {
	spec := KVSpec{
		Servers: 2, Clients: 2, Seed: 5, Keys: 256, ZipfS: 0.9,
		Tenants: []KVTenant{
			{Rate: 30000, Requests: 120, GetFrac: 0.8},
			{Rate: 10000, Requests: 40, GetFrac: 0.5},
		},
		Isolation: true,
	}
	cfg := config.Default()
	a := RunKV(&cfg, spec)
	b := RunKV(&cfg, spec)
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged across identical runs:\n%+v\n%+v", a.Stats, b.Stats)
	}
	if a.Wall != b.Wall {
		t.Fatalf("wall time diverged: %d vs %d", a.Wall, b.Wall)
	}
	want := uint64(2 * (120 + 40))
	if a.Stats.Issued != want {
		t.Fatalf("issued %d, want %d", a.Stats.Issued, want)
	}
	if a.Stats.Completed+a.Stats.Rejected+a.Stats.Throttled+a.Stats.Expired != want {
		t.Fatalf("outcomes do not cover issued: %+v", a.Stats)
	}
	if len(a.Tenants) < 2 || a.Tenants[0].Issued == 0 || a.Tenants[1].Issued == 0 {
		t.Fatalf("per-tenant accounting missing: %+v", a.Tenants)
	}
	// Both servers must have seen work (the key space is sharded).
	perServed := a.Stats.Served + a.Stats.BoardServed
	if perServed == 0 || a.Res.PerNode[0].KV.Served == 0 || a.Res.PerNode[1].KV.Served == 0 {
		t.Fatal("sharding left a server idle")
	}
}

// Package trace is a bounded in-memory event log for protocol
// forensics: the DSM and board layers emit one line per interesting
// event (fault, fetch, diff, lock, barrier, task) and cnisim -trace
// prints the timeline. A nil *Log is a valid no-op sink, so the hot
// paths pay one branch when tracing is off.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"cni/internal/sim"
)

// Event is one timeline entry.
type Event struct {
	At     sim.Time
	Node   int
	Kind   string
	Detail string
}

// Log is a bounded event recorder. The zero value records nothing;
// use New.
type Log struct {
	cap     int
	events  []Event
	dropped int
}

// New returns a log that keeps at most cap events (older events are
// kept, later ones dropped and counted — the interesting part of a
// protocol bug is almost always its beginning).
func New(cap int) *Log {
	if cap <= 0 {
		cap = 1 << 16
	}
	return &Log{cap: cap}
}

// Add records an event. Safe on a nil log.
func (l *Log) Add(at sim.Time, node int, kind, detail string) {
	if l == nil {
		return
	}
	if len(l.events) >= l.cap {
		l.dropped++
		return
	}
	l.events = append(l.events, Event{At: at, Node: node, Kind: kind, Detail: detail})
}

// Addf is Add with formatting, evaluated only when the log records.
func (l *Log) Addf(at sim.Time, node int, kind, format string, args ...any) {
	if l == nil {
		return
	}
	l.Add(at, node, kind, fmt.Sprintf(format, args...))
}

// Events returns the recorded events in order.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	return l.events
}

// Dropped reports how many events did not fit.
func (l *Log) Dropped() int {
	if l == nil {
		return 0
	}
	return l.dropped
}

// String renders the timeline ordered by virtual time. (Events are
// recorded in execution order, but worker-side events carry run-ahead
// local clocks, so recording order and time order differ slightly.)
func (l *Log) String() string {
	if l == nil {
		return ""
	}
	ordered := append([]Event(nil), l.events...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].At < ordered[j].At })
	var b strings.Builder
	for _, e := range ordered {
		fmt.Fprintf(&b, "%12d  n%-2d %-10s %s\n", e.At, e.Node, e.Kind, e.Detail)
	}
	if l.dropped > 0 {
		fmt.Fprintf(&b, "... %d later events dropped (capacity %d)\n", l.dropped, l.cap)
	}
	return b.String()
}

package trace

import (
	"strings"
	"testing"
)

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(1, 0, "x", "y")
	l.Addf(2, 0, "x", "%d", 3)
	if l.Events() != nil || l.Dropped() != 0 || l.String() != "" {
		t.Fatal("nil log misbehaved")
	}
}

func TestBoundedCapacityKeepsEarliest(t *testing.T) {
	l := New(3)
	for i := 0; i < 10; i++ {
		l.Addf(int64(i), 0, "e", "event %d", i)
	}
	if len(l.Events()) != 3 {
		t.Fatalf("%d events kept", len(l.Events()))
	}
	if l.Events()[0].Detail != "event 0" {
		t.Fatal("did not keep the earliest events")
	}
	if l.Dropped() != 7 {
		t.Fatalf("Dropped = %d", l.Dropped())
	}
	if !strings.Contains(l.String(), "7 later events dropped") {
		t.Fatal("drop count not rendered")
	}
}

func TestStringOrdersByTime(t *testing.T) {
	l := New(10)
	l.Add(50, 1, "b", "second")
	l.Add(10, 0, "a", "first")
	s := l.String()
	if strings.Index(s, "first") > strings.Index(s, "second") {
		t.Fatalf("timeline out of order:\n%s", s)
	}
}

func TestDefaultCapacity(t *testing.T) {
	l := New(0)
	l.Add(1, 0, "k", "d")
	if len(l.Events()) != 1 {
		t.Fatal("default-capacity log dropped an event")
	}
}

package atm

// This file is the fabric's deterministic fault-injection layer. The
// paper assumes a lossless fabric; real ATM links drop, corrupt,
// duplicate and (across retransmitting switches) reorder cells. The
// injector holds one sim.RNG per topology edge, seeded from
// Config.FaultSeed and the edge's stable id, and decides the fate of
// every cell a packet clocks across that edge. Because the simulation
// kernel is strictly sequential and edge ids are a pure function of
// the topology, the sequence of draws on each link depends only on the
// Config, so two runs with the same FaultSeed inject bit-identical
// fault patterns — including on multi-hop routes, where the injection
// link and every intermediate switch link draw independently.
//
// The fabric carries messages at message granularity, so cell faults
// surface at PDU granularity, exactly as AAL5 reassembly would see
// them:
//
//   - a dropped or corrupted non-final cell leaves a train whose CRC
//     cannot pass: the PDU arrives Damaged (detected, discarded by the
//     reliability layer in package nic);
//   - a dropped end-of-PDU cell leaves reassembly waiting forever: the
//     PDU never arrives at all (recovered only by a retransmit timer or
//     a successor's gap NAK);
//   - a duplicated cell re-terminates reassembly and replays the train:
//     the PDU is delivered twice (the duplicate discarded by sequence
//     number);
//   - reorder slips a PDU's delivery by a bounded number of cell-times,
//     so successive PDUs on one VC can arrive out of order.

import (
	"cni/internal/config"
	"cni/internal/sim"
)

// FaultStats counts what the injector did to the traffic.
type FaultStats struct {
	CellsDropped   uint64
	CellsCorrupted uint64
	CellsDuped     uint64
	PacketsLost    uint64 // end-of-PDU cell dropped: PDU never delivered
	PacketsDamaged uint64 // delivered with a failing CRC
	PacketsDuped   uint64 // delivered twice
	PacketsDelayed uint64 // delivery slipped by the reorder window
}

// injector holds one RNG per topology edge so that the draw sequence
// on a link depends only on that link's traffic. RNGs are materialized
// lazily: a large fabric has many edges, but traffic touches few.
type injector struct {
	loss    float64
	corrupt float64
	dup     float64
	reorder int
	seed    uint64
	rng     []*sim.RNG
}

// newInjector builds the fault layer for a graph of edges links, or
// returns nil when every fault knob is zero (the lossless default:
// zero overhead, and fault-free runs stay bit-identical).
func newInjector(cfg *config.Config, edges int) *injector {
	if !cfg.FaultsEnabled() {
		return nil
	}
	return &injector{
		loss:    cfg.CellLossRate,
		corrupt: cfg.CellCorruptRate,
		dup:     cfg.CellDupRate,
		reorder: cfg.ReorderWindow,
		seed:    cfg.FaultSeed,
		rng:     make([]*sim.RNG, edges),
	}
}

// edgeRNG returns edge e's RNG, decorrelated from its neighbors with a
// splitmix-style per-edge seed.
func (inj *injector) edgeRNG(e int) *sim.RNG {
	if inj.rng[e] == nil {
		inj.rng[e] = sim.NewRNG(inj.seed*0x9e3779b97f4a7c15 + uint64(e) + 1)
	}
	return inj.rng[e]
}

// verdict is the fate the injector hands one packet.
type verdict struct {
	lost    bool     // never delivered (end-of-PDU cell dropped)
	damaged bool     // delivered with a failing CRC
	duped   bool     // delivered twice
	delay   sim.Time // extra delivery delay (bounded reorder)
}

// merge folds the verdict of one more traversed link into v: a packet
// mangled anywhere on its path is mangled, and reorder slips add up.
func (v *verdict) merge(o verdict) {
	v.lost = v.lost || o.lost
	v.damaged = v.damaged || o.damaged
	v.duped = v.duped || o.duped
	v.delay += o.delay
}

// judge draws the per-cell fates for a packet of cells cells crossing
// edge, with cellTime the serialization time of one cell (the reorder
// slip unit).
func (inj *injector) judge(edge, cells int, cellTime sim.Time, st *FaultStats) verdict {
	r := inj.edgeRNG(edge)
	var v verdict
	for i := 0; i < cells; i++ {
		if inj.loss > 0 && r.Float64() < inj.loss {
			st.CellsDropped++
			if i == cells-1 {
				v.lost = true
			} else {
				v.damaged = true
			}
			continue
		}
		if inj.corrupt > 0 && r.Float64() < inj.corrupt {
			st.CellsCorrupted++
			v.damaged = true
		}
		if inj.dup > 0 && r.Float64() < inj.dup {
			st.CellsDuped++
			v.duped = true
		}
	}
	if inj.reorder > 0 {
		if slip := r.Intn(inj.reorder + 1); slip > 0 {
			v.delay = sim.Time(slip) * cellTime
			st.PacketsDelayed++
		}
	}
	return v
}

package atm

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// This file implements AAL5-style segmentation and reassembly at the
// byte level: the convergence sublayer that turns a protocol data unit
// into a train of 53-byte cells and back. The performance model in
// this package works at message granularity with cell-accurate costs;
// Segment/Reassemble are the functional substrate — they define
// exactly what the transmit and receive processors' per-cell work *is*
// (padding, trailer, CRC) and let tests pin the cell math the cost
// model uses.

// CellPayload is the payload capacity of one ATM cell; CellHeader the
// 5-byte header in front of it.
const (
	CellPayload = 48
	CellHeader  = 5
	trailerLen  = 8 // UU, CPI, Length(2), CRC-32(4)
)

// Cell is one ATM cell: the header fields the fabric and PATHFINDER
// care about, plus the 48-byte payload.
type Cell struct {
	VCI     uint32
	Last    bool // AAL5 end-of-PDU marker (PTI bit)
	Payload [CellPayload]byte
}

// crc32AAL5 computes the AAL5 CRC-32 (polynomial 0x04C11DB7,
// MSB-first, initial value all-ones, final complement).
func crc32AAL5(data []byte) uint32 {
	const poly = 0x04C11DB7
	crc := uint32(0xFFFFFFFF)
	for _, b := range data {
		crc ^= uint32(b) << 24
		for i := 0; i < 8; i++ {
			if crc&0x80000000 != 0 {
				crc = crc<<1 ^ poly
			} else {
				crc <<= 1
			}
		}
	}
	return ^crc
}

// Segment turns a PDU into its AAL5 cell train on the given VCI: the
// PDU is padded so that payload+trailer fills a whole number of cells,
// the 8-byte trailer (UU/CPI zero, big-endian length, CRC-32 over
// everything before the CRC) goes at the very end, and the final cell
// carries the end-of-PDU mark.
func Segment(vci uint32, pdu []byte) []Cell {
	total := len(pdu) + trailerLen
	ncells := (total + CellPayload - 1) / CellPayload
	if ncells == 0 {
		ncells = 1
	}
	buf := make([]byte, ncells*CellPayload)
	copy(buf, pdu)
	// Trailer occupies the last 8 bytes of the last cell.
	tr := buf[len(buf)-trailerLen:]
	binary.BigEndian.PutUint16(tr[2:], uint16(len(pdu)))
	crc := crc32AAL5(buf[:len(buf)-4])
	binary.BigEndian.PutUint32(tr[4:], crc)

	cells := make([]Cell, ncells)
	for i := range cells {
		cells[i].VCI = vci
		copy(cells[i].Payload[:], buf[i*CellPayload:])
	}
	cells[ncells-1].Last = true
	return cells
}

// MaxPDUCells bounds reassembly: the AAL5 length field is 16 bits, so
// no valid PDU spans more cells than 65535 payload bytes plus the
// trailer. A train that runs longer without an end-of-PDU mark can
// only be a lost-Last-cell train bleeding into the next PDU, and
// reassembly must abort rather than accumulate it.
const MaxPDUCells = (65535 + trailerLen + CellPayload - 1) / CellPayload

// Reassembly errors.
var (
	ErrNoCells    = errors.New("atm: reassembly of zero cells")
	ErrNotLast    = errors.New("atm: end-of-PDU cell in mid-train")
	ErrIncomplete = errors.New("atm: PDU missing its end-of-PDU cell")
	ErrMixedVCI   = errors.New("atm: cells from different VCs in one PDU")
	ErrBadLength  = errors.New("atm: AAL5 length field out of range")
	ErrBadCRC     = errors.New("atm: AAL5 CRC mismatch")
)

// Reassemble rebuilds the PDU from a cell train, verifying the VCI
// uniformity, the end-of-PDU marker, the length field and the CRC. A
// train with no end-of-PDU cell fails with ErrIncomplete after at most
// MaxPDUCells cells, however long the train, so a lost Last cell can
// never make reassembly buffer unboundedly.
func Reassemble(cells []Cell) ([]byte, error) {
	if len(cells) == 0 {
		return nil, ErrNoCells
	}
	vci := cells[0].VCI
	n := len(cells)
	if n > MaxPDUCells {
		n = MaxPDUCells + 1 // inspect one past the bound, buffer none of it
	}
	buf := make([]byte, 0, n*CellPayload)
	for i, c := range cells[:n] {
		if i >= MaxPDUCells {
			return nil, fmt.Errorf("%w: no end mark within %d cells", ErrIncomplete, MaxPDUCells)
		}
		if c.VCI != vci {
			return nil, fmt.Errorf("%w: %d then %d", ErrMixedVCI, vci, c.VCI)
		}
		if c.Last != (i == len(cells)-1) {
			if c.Last {
				return nil, ErrNotLast
			}
			return nil, ErrIncomplete
		}
		buf = append(buf, c.Payload[:]...)
	}
	tr := buf[len(buf)-trailerLen:]
	pduLen := int(binary.BigEndian.Uint16(tr[2:]))
	if pduLen > len(buf)-trailerLen || len(buf)-pduLen-trailerLen >= CellPayload {
		return nil, fmt.Errorf("%w: %d bytes in %d cells", ErrBadLength, pduLen, len(cells))
	}
	want := binary.BigEndian.Uint32(tr[4:])
	if got := crc32AAL5(buf[:len(buf)-4]); got != want {
		return nil, fmt.Errorf("%w: %#x != %#x", ErrBadCRC, got, want)
	}
	return buf[:pduLen], nil
}

// CellCount reports how many cells Segment produces for a PDU of n
// bytes (the exact AAL5 count, trailer included; the cost model's
// config.Cells approximates it without the trailer).
func CellCount(n int) int {
	c := (n + trailerLen + CellPayload - 1) / CellPayload
	if c == 0 {
		c = 1
	}
	return c
}

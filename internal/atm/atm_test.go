package atm

import (
	"testing"
	"testing/quick"

	"cni/internal/config"
	"cni/internal/sim"
)

func build(t *testing.T, n int) (*sim.Kernel, *Network, *config.Config) {
	t.Helper()
	k := sim.NewKernel()
	cfg := config.Default()
	nw := mustNew(k, &cfg, n)
	return k, nw, &cfg
}

func TestSendDeliversOnce(t *testing.T) {
	k, nw, _ := build(t, 4)
	var got []*Packet
	var at sim.Time
	for i := 0; i < 4; i++ {
		i := i
		nw.Attach(i, func(p *Packet, t sim.Time) {
			if i != p.Dst {
				panic("delivered to wrong node")
			}
			got = append(got, p)
			at = t
		})
	}
	pkt := &Packet{Src: 0, Dst: 2, Size: 100}
	want := nw.Send(0, pkt)
	k.Run()
	if len(got) != 1 || got[0] != pkt {
		t.Fatalf("delivered %d packets", len(got))
	}
	if at != want {
		t.Fatalf("delivered at %d, Send predicted %d", at, want)
	}
}

func TestLatencyGrowsWithSize(t *testing.T) {
	k, nw, _ := build(t, 2)
	nw.Attach(0, func(*Packet, sim.Time) {})
	nw.Attach(1, func(*Packet, sim.Time) {})
	small := nw.Send(0, &Packet{Src: 0, Dst: 1, Size: 48})
	k.Run()
	k2 := sim.NewKernel()
	cfg := config.Default()
	nw2 := mustNew(k2, &cfg, 2)
	nw2.Attach(0, func(*Packet, sim.Time) {})
	nw2.Attach(1, func(*Packet, sim.Time) {})
	large := nw2.Send(0, &Packet{Src: 0, Dst: 1, Size: 4096})
	k2.Run()
	if large <= small {
		t.Fatalf("4KB latency %d <= 48B latency %d", large, small)
	}
	// 4 KB is 86 cells vs 1: the gap must be roughly 85 cell times.
	if large < small+80*683/6 { // ~85 cells * 0.68us each, loosely
		t.Fatalf("4KB latency %d implausibly close to 48B latency %d", large, small)
	}
}

func TestCutThroughBeatsStoreAndForward(t *testing.T) {
	// End-to-end latency of an uncontended message must be about one
	// serialization time plus constants, not two.
	k, nw, cfg := build(t, 2)
	nw.Attach(0, func(*Packet, sim.Time) {})
	nw.Attach(1, func(*Packet, sim.Time) {})
	d := nw.Send(0, &Packet{Src: 0, Dst: 1, Size: 4096})
	k.Run()
	ser := cfg.SerializeCycles(4096)
	if d > ser+ser/4 {
		t.Fatalf("delivery %d cycles for ser %d: looks store-and-forward", d, ser)
	}
	if d < ser {
		t.Fatalf("delivery %d cycles can't beat serialization %d", d, ser)
	}
}

func TestOutputPortContentionQueues(t *testing.T) {
	// Two senders converge on node 2: the second message must arrive
	// roughly one serialization later than the first.
	k, nw, cfg := build(t, 3)
	var arrivals []sim.Time
	for i := 0; i < 3; i++ {
		nw.Attach(i, func(_ *Packet, at sim.Time) { arrivals = append(arrivals, at) })
	}
	nw.Send(0, &Packet{Src: 0, Dst: 2, Size: 4096})
	nw.Send(0, &Packet{Src: 1, Dst: 2, Size: 4096})
	k.Run()
	if len(arrivals) != 2 {
		t.Fatalf("%d arrivals", len(arrivals))
	}
	gap := arrivals[1] - arrivals[0]
	ser := cfg.SerializeCycles(4096)
	if gap < ser*9/10 || gap > ser*11/10 {
		t.Fatalf("arrival gap %d, want about one serialization %d", gap, ser)
	}
	if nw.Stats.PortWaits == 0 {
		t.Fatal("contention must be visible in PortWaits")
	}
}

func TestDistinctDestinationsDontContend(t *testing.T) {
	k, nw, _ := build(t, 4)
	var arrivals []sim.Time
	for i := 0; i < 4; i++ {
		nw.Attach(i, func(_ *Packet, at sim.Time) { arrivals = append(arrivals, at) })
	}
	nw.Send(0, &Packet{Src: 0, Dst: 2, Size: 4096})
	nw.Send(0, &Packet{Src: 1, Dst: 3, Size: 4096})
	k.Run()
	if arrivals[0] != arrivals[1] {
		t.Fatalf("parallel transfers arrived at %v, want simultaneous", arrivals)
	}
}

func TestSameSourceSerializesOnAccessLink(t *testing.T) {
	k, nw, cfg := build(t, 3)
	var arrivals []sim.Time
	for i := 0; i < 3; i++ {
		nw.Attach(i, func(_ *Packet, at sim.Time) { arrivals = append(arrivals, at) })
	}
	nw.Send(0, &Packet{Src: 0, Dst: 1, Size: 4096})
	nw.Send(0, &Packet{Src: 0, Dst: 2, Size: 4096})
	k.Run()
	gap := arrivals[1] - arrivals[0]
	ser := cfg.SerializeCycles(4096)
	if gap < ser*9/10 {
		t.Fatalf("second send from same source arrived only %d cycles later (ser=%d)", gap, ser)
	}
}

func TestLoopbackBypassesSwitch(t *testing.T) {
	k, nw, cfg := build(t, 2)
	var at sim.Time
	nw.Attach(0, func(_ *Packet, t sim.Time) { at = t })
	nw.Attach(1, func(*Packet, sim.Time) {})
	nw.Send(0, &Packet{Src: 0, Dst: 0, Size: 4096})
	k.Run()
	if at >= cfg.SerializeCycles(4096) {
		t.Fatalf("loopback at %d took a fabric-like time", at)
	}
}

func TestUnrestrictedCellReducesWireBytes(t *testing.T) {
	k := sim.NewKernel()
	cfg := config.Default()
	cfg.UnrestrictedCell = true
	nw := mustNew(k, &cfg, 2)
	nw.Attach(0, func(*Packet, sim.Time) {})
	nw.Attach(1, func(*Packet, sim.Time) {})
	d := nw.Send(0, &Packet{Src: 0, Dst: 1, Size: 4096})
	k.Run()

	k2, nw2, cfg2 := build(t, 2)
	nw2.Attach(0, func(*Packet, sim.Time) {})
	nw2.Attach(1, func(*Packet, sim.Time) {})
	d2 := nw2.Send(0, &Packet{Src: 0, Dst: 1, Size: 4096})
	k2.Run()
	_ = cfg2

	if nw.Stats.Cells != 1 {
		t.Fatalf("unrestricted cells = %d, want 1", nw.Stats.Cells)
	}
	if nw.Stats.WireBytes >= nw2.Stats.WireBytes {
		t.Fatal("unrestricted cell size must shed header overhead")
	}
	if d >= d2 {
		t.Fatalf("unrestricted delivery %d not faster than cells %d", d, d2)
	}
}

func TestPacketBytes(t *testing.T) {
	p := &Packet{Header: make([]byte, 16), Payload: make([]byte, 100)}
	if p.Bytes() != 116 {
		t.Fatalf("Bytes() = %d, want 116", p.Bytes())
	}
	p.Size = 4096
	if p.Bytes() != 4096 {
		t.Fatalf("Bytes() with Size = %d, want 4096", p.Bytes())
	}
}

func TestStatsAccounting(t *testing.T) {
	k, nw, _ := build(t, 2)
	nw.Attach(0, func(*Packet, sim.Time) {})
	nw.Attach(1, func(*Packet, sim.Time) {})
	nw.Send(0, &Packet{Src: 0, Dst: 1, Size: 100}) // 3 cells
	nw.Send(0, &Packet{Src: 1, Dst: 0, Size: 48})  // 1 cell
	k.Run()
	if nw.Stats.Messages != 2 || nw.Stats.DataBytes != 148 {
		t.Fatalf("stats = %+v", nw.Stats)
	}
	if nw.Stats.Cells != 4 {
		t.Fatalf("cells = %d, want 4", nw.Stats.Cells)
	}
	if nw.Stats.WireBytes != 4*53 {
		t.Fatalf("wire bytes = %d, want %d", nw.Stats.WireBytes, 4*53)
	}
}

func TestBadDestinationPanics(t *testing.T) {
	k, nw, _ := build(t, 2)
	nw.Attach(0, func(*Packet, sim.Time) {})
	nw.Attach(1, func(*Packet, sim.Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range destination did not panic")
		}
	}()
	nw.Send(0, &Packet{Src: 0, Dst: 7, Size: 1})
	k.Run()
}

func TestTooManyNodesErrors(t *testing.T) {
	// The node count is user input: exceeding the single switch's port
	// count is an error, not a panic, and the clos/torus topologies
	// accept the same count.
	k := sim.NewKernel()
	cfg := config.Default()
	if _, err := New(k, &cfg, 33); err == nil {
		t.Fatal("33 nodes on a 32-port switch did not error")
	}
	cfg.Topology = config.TopoClos
	if _, err := New(k, &cfg, 33); err != nil {
		t.Fatalf("33 nodes on a clos fabric: %v", err)
	}
	cfg.Topology = config.TopoTorus
	if _, err := New(k, &cfg, 33); err != nil {
		t.Fatalf("33 nodes on a torus fabric: %v", err)
	}
}

func TestDeliveryOrderPreservedPerPair(t *testing.T) {
	// Property: messages between the same pair arrive in send order
	// (FIFO links and ports guarantee it).
	f := func(sizes []uint16) bool {
		k := sim.NewKernel()
		cfg := config.Default()
		nw := mustNew(k, &cfg, 2)
		var order []int
		nw.Attach(0, func(*Packet, sim.Time) {})
		nw.Attach(1, func(p *Packet, _ sim.Time) { order = append(order, p.Size) })
		want := make([]int, 0, len(sizes))
		for i, s := range sizes {
			size := int(s)%8192 + 1 + i // distinct, positive
			want = append(want, size)
			nw.Send(0, &Packet{Src: 0, Dst: 1, Size: size})
		}
		k.Run()
		if len(order) != len(want) {
			return false
		}
		for i := range want {
			if order[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// mustNew builds a fabric that the test knows is addressable.
func mustNew(k *sim.Kernel, cfg *config.Config, n int) *Network {
	nw, err := New(k, cfg, n)
	if err != nil {
		panic(err)
	}
	return nw
}

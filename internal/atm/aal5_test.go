package atm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"cni/internal/sim"
)

func TestSegmentReassembleRoundTrip(t *testing.T) {
	rng := sim.NewRNG(7)
	for _, n := range []int{0, 1, 39, 40, 41, 47, 48, 49, 96, 1000, 4096} {
		pdu := make([]byte, n)
		for i := range pdu {
			pdu[i] = byte(rng.Uint64())
		}
		cells := Segment(0x42, pdu)
		got, err := Reassemble(cells)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, pdu) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
		if len(cells) != CellCount(n) {
			t.Fatalf("n=%d: %d cells, CellCount says %d", n, len(cells), CellCount(n))
		}
	}
}

func TestSegmentTrailerEdge(t *testing.T) {
	// 40 payload bytes + 8 trailer = exactly one cell; 41 spills into two.
	if got := len(Segment(1, make([]byte, 40))); got != 1 {
		t.Fatalf("40B PDU used %d cells, want 1", got)
	}
	if got := len(Segment(1, make([]byte, 41))); got != 2 {
		t.Fatalf("41B PDU used %d cells, want 2", got)
	}
	// Only the final cell carries the end-of-PDU mark.
	cells := Segment(1, make([]byte, 100))
	for i, c := range cells {
		if c.Last != (i == len(cells)-1) {
			t.Fatalf("cell %d Last=%v", i, c.Last)
		}
	}
}

func TestReassembleDetectsCorruption(t *testing.T) {
	pdu := []byte("the quick brown fox jumps over the lazy dog, twice over")
	cells := Segment(9, pdu)

	flip := func(mut func([]Cell)) error {
		cp := make([]Cell, len(cells))
		copy(cp, cells)
		mut(cp)
		_, err := Reassemble(cp)
		return err
	}

	if err := flip(func(c []Cell) { c[0].Payload[3] ^= 0x10 }); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("payload corruption: err = %v, want CRC failure", err)
	}
	if err := flip(func(c []Cell) { c[1].VCI = 10 }); !errors.Is(err, ErrMixedVCI) {
		t.Fatalf("VCI mix: err = %v", err)
	}
	if err := flip(func(c []Cell) { c[len(c)-1].Last = false }); !errors.Is(err, ErrNotLast) {
		t.Fatalf("missing end mark: err = %v", err)
	}
	if err := flip(func(c []Cell) { c[0].Last = true }); !errors.Is(err, ErrNotLast) {
		t.Fatalf("early end mark: err = %v", err)
	}
	if _, err := Reassemble(nil); !errors.Is(err, ErrNoCells) {
		t.Fatalf("empty train: err = %v", err)
	}
	// Truncated train (last cell alone): length field points past data.
	short := cells[len(cells)-1:]
	if _, err := Reassemble(short); err == nil {
		t.Fatal("truncated train accepted")
	}
}

func TestAAL5RoundTripProperty(t *testing.T) {
	f := func(pdu []byte) bool {
		if len(pdu) > 65000 {
			pdu = pdu[:65000]
		}
		got, err := Reassemble(Segment(7, pdu))
		return err == nil && bytes.Equal(got, pdu)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRCIsOrderSensitive(t *testing.T) {
	a := crc32AAL5([]byte{1, 2, 3, 4})
	b := crc32AAL5([]byte{4, 3, 2, 1})
	if a == b {
		t.Fatal("CRC insensitive to byte order")
	}
	// Known property: appending the (complemented) CRC of a message
	// yields a constant residue; just pin determinism here.
	if a != crc32AAL5([]byte{1, 2, 3, 4}) {
		t.Fatal("CRC not deterministic")
	}
}

func TestCellCountTracksCostModel(t *testing.T) {
	// The cost model's config.Cells (payload-only) may undercount by at
	// most one cell versus the exact AAL5 count (trailer).
	for n := 0; n < 5000; n += 97 {
		exact := CellCount(n)
		approx := (n + CellPayload - 1) / CellPayload
		if approx == 0 {
			approx = 1
		}
		if exact < approx || exact > approx+1 {
			t.Fatalf("n=%d: exact %d vs approx %d", n, exact, approx)
		}
	}
}

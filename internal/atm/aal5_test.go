package atm

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"cni/internal/sim"
)

func TestSegmentReassembleRoundTrip(t *testing.T) {
	rng := sim.NewRNG(7)
	for _, n := range []int{0, 1, 39, 40, 41, 47, 48, 49, 96, 1000, 4096} {
		pdu := make([]byte, n)
		for i := range pdu {
			pdu[i] = byte(rng.Uint64())
		}
		cells := Segment(0x42, pdu)
		got, err := Reassemble(cells)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !bytes.Equal(got, pdu) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
		if len(cells) != CellCount(n) {
			t.Fatalf("n=%d: %d cells, CellCount says %d", n, len(cells), CellCount(n))
		}
	}
}

func TestSegmentTrailerEdge(t *testing.T) {
	// 40 payload bytes + 8 trailer = exactly one cell; 41 spills into two.
	if got := len(Segment(1, make([]byte, 40))); got != 1 {
		t.Fatalf("40B PDU used %d cells, want 1", got)
	}
	if got := len(Segment(1, make([]byte, 41))); got != 2 {
		t.Fatalf("41B PDU used %d cells, want 2", got)
	}
	// Only the final cell carries the end-of-PDU mark.
	cells := Segment(1, make([]byte, 100))
	for i, c := range cells {
		if c.Last != (i == len(cells)-1) {
			t.Fatalf("cell %d Last=%v", i, c.Last)
		}
	}
}

func TestReassembleDetectsCorruption(t *testing.T) {
	pdu := []byte("the quick brown fox jumps over the lazy dog, twice over")
	cells := Segment(9, pdu)

	flip := func(mut func([]Cell)) error {
		cp := make([]Cell, len(cells))
		copy(cp, cells)
		mut(cp)
		_, err := Reassemble(cp)
		return err
	}

	if err := flip(func(c []Cell) { c[0].Payload[3] ^= 0x10 }); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("payload corruption: err = %v, want CRC failure", err)
	}
	if err := flip(func(c []Cell) { c[1].VCI = 10 }); !errors.Is(err, ErrMixedVCI) {
		t.Fatalf("VCI mix: err = %v", err)
	}
	if err := flip(func(c []Cell) { c[len(c)-1].Last = false }); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("missing end mark: err = %v", err)
	}
	if err := flip(func(c []Cell) { c[0].Last = true }); !errors.Is(err, ErrNotLast) {
		t.Fatalf("early end mark: err = %v", err)
	}
	if _, err := Reassemble(nil); !errors.Is(err, ErrNoCells) {
		t.Fatalf("empty train: err = %v", err)
	}
	// Truncated train (last cell alone): length field points past data.
	short := cells[len(cells)-1:]
	if _, err := Reassemble(short); err == nil {
		t.Fatal("truncated train accepted")
	}
}

func TestReassembleIncompleteIsBounded(t *testing.T) {
	// A train that never carries the end-of-PDU mark — what a lost Last
	// cell leaves behind — must fail with ErrIncomplete after at most
	// MaxPDUCells cells, not accumulate the whole train.
	long := make([]Cell, MaxPDUCells+500)
	for i := range long {
		long[i].VCI = 3
	}
	if _, err := Reassemble(long); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("unterminated %d-cell train: err = %v, want ErrIncomplete", len(long), err)
	}
	// The bound itself: a valid maximal PDU still reassembles...
	big := make([]byte, 65535)
	cells := Segment(3, big)
	if len(cells) != MaxPDUCells {
		t.Fatalf("maximal PDU used %d cells, want MaxPDUCells=%d", len(cells), MaxPDUCells)
	}
	if _, err := Reassemble(cells); err != nil {
		t.Fatalf("maximal PDU: %v", err)
	}
	// ...and a short unterminated train fails the same typed way.
	short := Segment(3, []byte("hello"))
	short[0].Last = false
	if _, err := Reassemble(short); !errors.Is(err, ErrIncomplete) {
		t.Fatalf("short unterminated train: err = %v, want ErrIncomplete", err)
	}
}

func TestReassembleRejectsTriviallyZeroTrain(t *testing.T) {
	// An all-zero train with an end mark has length 0 and CRC field 0;
	// the CRC of the zero buffer is not 0, so it must be rejected, not
	// accepted as an empty PDU.
	z := make([]Cell, 1)
	z[0].Last = true
	if _, err := Reassemble(z); !errors.Is(err, ErrBadCRC) {
		t.Fatalf("zero train: err = %v, want ErrBadCRC", err)
	}
	// Two zero cells instead overstate the padding and die on the
	// length check — either way, never accepted.
	z2 := make([]Cell, 2)
	z2[1].Last = true
	if _, err := Reassemble(z2); err == nil {
		t.Fatal("two-cell zero train accepted")
	}
}

func TestAAL5RoundTripProperty(t *testing.T) {
	f := func(pdu []byte) bool {
		if len(pdu) > 65000 {
			pdu = pdu[:65000]
		}
		got, err := Reassemble(Segment(7, pdu))
		return err == nil && bytes.Equal(got, pdu)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCRCIsOrderSensitive(t *testing.T) {
	a := crc32AAL5([]byte{1, 2, 3, 4})
	b := crc32AAL5([]byte{4, 3, 2, 1})
	if a == b {
		t.Fatal("CRC insensitive to byte order")
	}
	// Known property: appending the (complemented) CRC of a message
	// yields a constant residue; just pin determinism here.
	if a != crc32AAL5([]byte{1, 2, 3, 4}) {
		t.Fatal("CRC not deterministic")
	}
}

func TestCellCountTracksCostModel(t *testing.T) {
	// The cost model's config.Cells (payload-only) may undercount by at
	// most one cell versus the exact AAL5 count (trailer).
	for n := 0; n < 5000; n += 97 {
		exact := CellCount(n)
		approx := (n + CellPayload - 1) / CellPayload
		if approx == 0 {
			approx = 1
		}
		if exact < approx || exact > approx+1 {
			t.Fatalf("n=%d: exact %d vs approx %d", n, exact, approx)
		}
	}
}

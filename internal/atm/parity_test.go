package atm

// Golden parity: the route-walking fabric on topo=single must
// reproduce the pre-topology single-switch model bit-identically. The
// reference below is the original closed-form arithmetic — freeAt
// bookkeeping in place of sim.Resource, the original per-source-link
// fault injector — and seeded random traffic must produce identical
// delivery times, identical port-wait totals and identical fault
// verdicts. This is the contract that keeps every pre-topology
// artifact byte-identical.

import (
	"testing"

	"cni/internal/config"
	"cni/internal/sim"
)

// refFabric is the original single-switch model in closed form.
type refFabric struct {
	cfg      *config.Config
	txFree   []sim.Time
	portFree []sim.Time
	rng      []*sim.RNG // per source link, old injector layout

	portWaits sim.Time
	faults    FaultStats
}

func newRef(cfg *config.Config, n int) *refFabric {
	r := &refFabric{cfg: cfg, txFree: make([]sim.Time, n), portFree: make([]sim.Time, n)}
	if cfg.FaultsEnabled() {
		for i := 0; i < n; i++ {
			r.rng = append(r.rng, sim.NewRNG(cfg.FaultSeed*0x9e3779b97f4a7c15+uint64(i)+1))
		}
	}
	return r
}

func (r *refFabric) headCell() sim.Time {
	bits := int64(r.cfg.CellBytes) * 8
	ns := (bits*1000 + r.cfg.LinkMbps - 1) / r.cfg.LinkMbps
	return r.cfg.NSToCycles(ns)
}

func use(free *sim.Time, at, dur sim.Time) (sim.Time, sim.Time) {
	start := at
	if *free > start {
		start = *free
	}
	*free = start + dur
	return start, *free
}

func (r *refFabric) send(at sim.Time, src, dst, bytes int) sim.Time {
	ser := r.cfg.SerializeCycles(bytes)
	cells := r.cfg.Cells(bytes)
	if src == dst {
		return at + r.headCell()
	}
	txStart, _ := use(&r.txFree[src], at, ser)
	headAt := txStart + r.headCell() +
		r.cfg.NSToCycles(r.cfg.WirePropNS) +
		r.cfg.NSToCycles(r.cfg.SwitchLatencyNS)
	portStart, portEnd := use(&r.portFree[dst], headAt, ser)
	r.portWaits += portStart - headAt
	deliver := portEnd + r.cfg.NSToCycles(r.cfg.WirePropNS)
	if r.rng == nil {
		return deliver
	}
	// The original per-packet judgement, verbatim.
	rng := r.rng[src]
	var lost, damaged, duped bool
	var delay sim.Time
	for i := 0; i < cells; i++ {
		if r.cfg.CellLossRate > 0 && rng.Float64() < r.cfg.CellLossRate {
			r.faults.CellsDropped++
			if i == cells-1 {
				lost = true
			} else {
				damaged = true
			}
			continue
		}
		if r.cfg.CellCorruptRate > 0 && rng.Float64() < r.cfg.CellCorruptRate {
			r.faults.CellsCorrupted++
			damaged = true
		}
		if r.cfg.CellDupRate > 0 && rng.Float64() < r.cfg.CellDupRate {
			r.faults.CellsDuped++
			duped = true
		}
	}
	if r.cfg.ReorderWindow > 0 {
		if slip := rng.Intn(r.cfg.ReorderWindow + 1); slip > 0 {
			delay = sim.Time(slip) * r.headCell()
			r.faults.PacketsDelayed++
		}
	}
	if lost {
		r.faults.PacketsLost++
		return deliver
	}
	deliver += delay
	if damaged {
		r.faults.PacketsDamaged++
	}
	if duped {
		r.faults.PacketsDuped++
	}
	return deliver
}

func runParity(t *testing.T, cfg config.Config, trafficSeed uint64) {
	t.Helper()
	const n, messages = 16, 4000
	k := sim.NewKernel()
	nw := mustNew(k, &cfg, n)
	if nw.Topology().Kind() != config.TopoSingle {
		t.Fatalf("default topology = %q, want single", nw.Topology().Kind())
	}
	for i := 0; i < n; i++ {
		nw.Attach(i, func(*Packet, sim.Time) {})
	}
	ref := newRef(&cfg, n)

	rng := sim.NewRNG(trafficSeed)
	var at sim.Time
	for m := 0; m < messages; m++ {
		at += sim.Time(rng.Intn(300))
		src := rng.Intn(n)
		dst := rng.Intn(n)
		bytes := 1 + rng.Intn(6000)
		got := nw.Send(at, &Packet{Src: src, Dst: dst, Size: bytes})
		want := ref.send(at, src, dst, bytes)
		if got != want {
			t.Fatalf("message %d (%d->%d, %d B at %d): deliver %d, reference %d",
				m, src, dst, bytes, at, got, want)
		}
	}
	if nw.Stats.PortWaits != ref.portWaits {
		t.Fatalf("PortWaits %d, reference %d", nw.Stats.PortWaits, ref.portWaits)
	}
	if nw.Stats.LinkWaits != 0 {
		t.Fatalf("single topology accumulated LinkWaits %d", nw.Stats.LinkWaits)
	}
	if nw.Stats.Faults != ref.faults {
		t.Fatalf("fault stats %+v, reference %+v", nw.Stats.Faults, ref.faults)
	}
}

func TestSingleTopologyParityLossless(t *testing.T) {
	runParity(t, config.Default(), 11)
}

func TestSingleTopologyParityFaulty(t *testing.T) {
	cfg := config.Default()
	cfg.CellLossRate = 0.002
	cfg.CellCorruptRate = 0.001
	cfg.CellDupRate = 0.001
	cfg.ReorderWindow = 3
	cfg.FaultSeed = 42
	runParity(t, cfg, 17)
}

package atm

import (
	"fmt"
	"reflect"
	"testing"

	"cni/internal/config"
	"cni/internal/sim"
)

// delivery is one observed packet arrival, everything the model can
// see: who, when, and in what condition.
type delivery struct {
	Src, Dst int
	At       sim.Time
	Damaged  bool
}

// shardTraffic drives a fixed deterministic workload — every node runs
// a periodic event chain sending to a rotating partner, with
// intentional same-cycle ties across nodes — and returns the per-node
// delivery traces plus the folded fabric stats. shards == 0 runs the
// plain single-kernel fabric.
func shardTraffic(t *testing.T, cfg *config.Config, n, shards int, engine sim.Engine) ([][]delivery, Stats) {
	t.Helper()
	var nw *Network
	var kernelOf func(i int) *sim.Kernel
	var run func()
	if shards == 0 {
		k := sim.NewKernelWith(engine)
		var err error
		nw, err = New(k, cfg, n)
		if err != nil {
			t.Fatal(err)
		}
		kernelOf = func(int) *sim.Kernel { return k }
		run = func() { k.Run() }
	} else {
		var ss *sim.ShardSet
		var err error
		nw, ss, err = NewSharded(cfg, n, shards, engine)
		if err != nil {
			t.Fatal(err)
		}
		kernelOf = nw.NodeKernel
		run = func() { ss.Run() }
	}

	got := make([][]delivery, n)
	for i := 0; i < n; i++ {
		i := i
		nw.Attach(i, func(p *Packet, at sim.Time) {
			got[i] = append(got[i], delivery{Src: p.Src, Dst: p.Dst, At: at, Damaged: p.Damaged})
		})
	}
	// Chains are installed in node order, so same-cycle sends execute
	// in node order on the plain kernel — the canonical (time, source)
	// tie-break the sharded ledger replays.
	const rounds = 40
	for i := 0; i < n; i++ {
		i := i
		k := kernelOf(i)
		round := 0
		var step func()
		step = func() {
			sz := 48 + 100*(round%7)
			dst := (i + 1 + round%(n-1)) % n
			nw.Send(k.Now()+2, &Packet{Src: i, Dst: dst, Size: sz})
			round++
			if round < rounds {
				k.After(97, step)
			}
		}
		// (i%4)*50: nodes i, i+4, i+8 … send at identical cycles.
		k.At(sim.Time(1+(i%4)*50), step)
	}
	run()
	nw.Finish()
	return got, nw.Stats
}

// TestShardedFabricParity pins the tentpole invariant at the fabric
// layer: delivery traces and stats are bit-identical between the plain
// kernel and every shard count, on every topology, with faults off and
// on, for both engines.
func TestShardedFabricParity(t *testing.T) {
	for _, topoKind := range []string{config.TopoSingle, config.TopoClos, config.TopoTorus} {
		for _, faulty := range []bool{false, true} {
			for _, engine := range []sim.Engine{sim.EngineCalendar, sim.EngineHeap} {
				name := fmt.Sprintf("%s/faults=%v/%s", topoKind, faulty, engine)
				t.Run(name, func(t *testing.T) {
					cfg := config.Default()
					cfg.Topology = topoKind
					if faulty {
						cfg.CellLossRate = 0.002
						cfg.CellCorruptRate = 0.002
						cfg.CellDupRate = 0.002
						cfg.ReorderWindow = 3
						cfg.RetransmitWindow = 8
						cfg.RetransmitTimeoutNS = 500000
						cfg.RetransmitBackoff = 8
					}
					const n = 12
					want, wantStats := shardTraffic(t, &cfg, n, 0, engine)
					for _, shards := range []int{1, 2, 4, n} {
						got, gotStats := shardTraffic(t, &cfg, n, shards, engine)
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("shards=%d: delivery traces diverge from plain kernel", shards)
						}
						if gotStats != wantStats {
							t.Fatalf("shards=%d: stats diverge:\n got %+v\nwant %+v", shards, gotStats, wantStats)
						}
					}
				})
			}
		}
	}
}

// TestShardedLookaheadHolds exercises the R4 guard indirectly: a large
// all-to-all burst on the torus must complete without tripping the
// delivery-before-edge panic, even with reorder delays in play.
func TestShardedLookaheadHolds(t *testing.T) {
	cfg := config.Default()
	cfg.Topology = config.TopoTorus
	cfg.CellLossRate = 0.01
	cfg.CellDupRate = 0.01
	cfg.ReorderWindow = 5
	cfg.RetransmitWindow = 8
	cfg.RetransmitTimeoutNS = 500000
	cfg.RetransmitBackoff = 8
	const n = 27
	nw, ss, err := NewSharded(&cfg, n, 4, sim.EngineCalendar)
	if err != nil {
		t.Fatal(err)
	}
	delivered := make([]int, n)
	for i := 0; i < n; i++ {
		i := i
		nw.Attach(i, func(p *Packet, at sim.Time) { delivered[i]++ })
	}
	for i := 0; i < n; i++ {
		i := i
		k := nw.NodeKernel(i)
		k.At(1, func() {
			for d := 0; d < n; d++ {
				if d != i {
					nw.Send(k.Now(), &Packet{Src: i, Dst: d, Size: 200})
				}
			}
		})
	}
	ss.Run()
	total := 0
	for _, c := range delivered {
		total += c
	}
	if total == 0 {
		t.Fatal("no deliveries")
	}
}

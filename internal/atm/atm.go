// Package atm models the cluster interconnect of the CNI paper: a
// 622 Mb/s (STS-12) ATM fabric carrying 53-byte cells with 48-byte
// payloads. The paper's fabric is a single 32-port banyan switch with
// 500 ns latency; via internal/topo the same model also runs on routed
// multi-switch graphs (Clos/fat-tree, 3D torus) at 128-1024+ nodes.
//
// Messages are simulated at message granularity with cell-accurate
// costs: a b-byte packet occupies its source link for the serialization
// time of ceil(b/48) full cells, then cut-through pipelines along its
// route — at every switch the head cell arrives one cell-time plus
// propagation plus switch latency after the message won the previous
// port, and the message occupies each output port for its full
// serialization time, queuing behind other traffic converging there.
// On the single output-queued banyan the only such port is the
// destination's, which reproduces the paper's timings exactly; on
// multi-switch fabrics intermediate hops contend too (Stats.LinkWaits).
// Per-cell firmware costs (segmentation and reassembly work) belong to
// the NIC model, not to the fabric, and are charged in package nic.
//
// Table 5's "mythical networking technology ... with unlimited cell
// size" is config.UnrestrictedCell: one cell carries the whole message
// and the per-cell costs collapse.
package atm

import (
	"fmt"
	"sort"

	"cni/internal/config"
	"cni/internal/sim"
	"cni/internal/topo"
)

// Packet is one message in flight between two NICs. Header carries the
// protocol bytes the PATHFINDER classifies on; Payload is the data the
// receive path deposits (for DSM, page contents). Size is the modeled
// wire size in bytes and may exceed len(Header)+len(Payload) when the
// model does not materialize every byte.
type Packet struct {
	Src     int
	Dst     int
	VCI     uint32
	Size    int
	Header  []byte
	Payload []byte
	// Meta carries the in-simulator protocol object by reference; the
	// real board would see only the serialized bytes.
	Meta any
	// Damaged marks a PDU whose cell train was dropped or corrupted in
	// flight: it arrives, but its AAL5 CRC cannot pass, so the receive
	// processor must discard it. Only the fault injector sets it.
	Damaged bool
}

// Bytes returns the modeled size of the packet on the wire before
// cell overhead.
func (p *Packet) Bytes() int {
	if p.Size > 0 {
		return p.Size
	}
	return len(p.Header) + len(p.Payload)
}

// Stats counts fabric activity.
type Stats struct {
	Messages  uint64
	DataBytes uint64 // pre-cell-overhead bytes
	WireBytes uint64 // bytes actually clocked onto links
	Cells     uint64
	HopCount  uint64   // switch output ports crossed, all messages
	PortWaits sim.Time // cycles queued on destination delivery ports
	LinkWaits sim.Time // cycles queued on intermediate switch ports
	Faults    FaultStats
}

// Network is the routed fabric plus the per-node access links.
type Network struct {
	k    *sim.Kernel
	cfg  *config.Config
	topo topo.Topology

	rx    []func(pkt *Packet, at sim.Time)
	inj   *injector  // nil on the (default) lossless fabric
	route []topo.Hop // scratch, reused across Send calls

	// deliverFn is the pre-bound delivery event body handed to
	// sim.Kernel.AtCall with the packet as argument, so scheduling a
	// delivery allocates no closure — the fabric's contribution to the
	// allocation-free hot loop.
	deliverFn func(any)

	// Sharded-mode state (see NewSharded); all nil/unused on the plain
	// single-kernel path.
	ss       *sim.ShardSet
	shardOf  []int       // node id -> shard id
	perShard []*netShard // ledgers and send-phase counters, one per shard
	drainBuf []walkItem  // barrier scratch, reused across windows

	Stats Stats
}

// walkItem is one deferred fabric walk: a Send recorded during a
// window, applied at the next barrier. The canonical order —
// (send-call kernel time, source node, per-node call order) — is a
// pure function of simulated behavior, so the resource-reservation
// sequence, and with it every timing and fault verdict, is identical
// at every shard count.
type walkItem struct {
	now sim.Time // kernel time of the Send call: first canonical key
	at  sim.Time // launch time passed to Send
	pkt *Packet
}

// netShard is the slice of fabric state one shard may touch during a
// window without synchronization: its own ledger and its nodes'
// send-phase counters (pure sums, folded into Stats by Finish).
type netShard struct {
	ledger    []walkItem
	messages  uint64
	dataBytes uint64
	wireBytes uint64
	cells     uint64
}

// New builds the fabric selected by cfg.Topology for n nodes. The node
// count is user input, so an unaddressable n (more nodes than the
// topology's geometry, or than the 16-bit VCI lanes, can carry) is an
// error, not a panic.
func New(k *sim.Kernel, cfg *config.Config, n int) (*Network, error) {
	if err := config.ValidateNodes(n); err != nil {
		// More nodes than the 16-bit VCI lanes can address would
		// silently collide virtual circuits in the nic layer.
		return nil, fmt.Errorf("atm: %w", err)
	}
	tp, err := topo.New(cfg, n)
	if err != nil {
		return nil, fmt.Errorf("atm: %w", err)
	}
	nw := &Network{k: k, cfg: cfg, topo: tp}
	nw.deliverFn = nw.deliver
	nw.rx = make([]func(*Packet, sim.Time), n)
	nw.inj = newInjector(cfg, tp.Edges())
	return nw, nil
}

// NewSharded builds the same fabric split across conservative-parallel
// kernel shards: the topology's Partition assigns every node to one of
// at most shards shards (clamped by the geometry), each with its own
// kernel, and the returned ShardSet drives them through lock-stepped
// windows of width Lookahead. During a window every fabric walk is
// deferred into the sending shard's ledger; the barrier drains all
// ledgers single-threaded in canonical (send time, source node) order,
// so port reservations and fault draws replay the sequential fabric
// exactly and deliveries land on the destination's shard kernel.
//
// Node components (boards, procs) must schedule exclusively on their
// node's shard kernel — NodeKernel(i) — and must not touch another
// node's state except through messages.
func NewSharded(cfg *config.Config, n, shards int, engine sim.Engine) (*Network, *sim.ShardSet, error) {
	if err := config.ValidateNodes(n); err != nil {
		return nil, nil, fmt.Errorf("atm: %w", err)
	}
	tp, err := topo.New(cfg, n)
	if err != nil {
		return nil, nil, fmt.Errorf("atm: %w", err)
	}
	part := tp.Partition(shards)
	eff := 0
	for _, s := range part {
		if s+1 > eff {
			eff = s + 1
		}
	}
	ss := sim.NewShardSet(eff, engine)
	nw := &Network{k: ss.Kernel(0), cfg: cfg, topo: tp, ss: ss, shardOf: part}
	nw.deliverFn = nw.shardDeliver
	nw.rx = make([]func(*Packet, sim.Time), n)
	nw.inj = newInjector(cfg, tp.Edges())
	nw.perShard = make([]*netShard, eff)
	for i := range nw.perShard {
		nw.perShard[i] = &netShard{}
	}
	ss.SetLookahead(nw.Lookahead())
	ss.OnBarrier(nw.drainLedger)
	return nw, ss, nil
}

// Lookahead is the fabric's conservative window width: no Send made at
// kernel time t can deliver before t + Lookahead, because even a
// zero-wait minimal walk pays the head-cell pipeline offset, the
// switch latency, both propagation legs, and at least the final-hop
// serialization. Fault verdicts only add delay (and duplicate
// deliveries land one serialization later still), so the bound holds
// on lossy fabrics too; shardSchedule panics if it is ever violated.
func (nw *Network) Lookahead() sim.Time {
	return nw.headCellCycles() +
		2*nw.cfg.NSToCycles(nw.cfg.WirePropNS) +
		nw.cfg.NSToCycles(nw.cfg.SwitchLatencyNS)
}

// Sharded reports whether the fabric runs on a ShardSet.
func (nw *Network) Sharded() bool { return nw.ss != nil }

// Shards reports the effective shard count (1 on the plain path).
func (nw *Network) Shards() int {
	if nw.ss == nil {
		return 1
	}
	return len(nw.perShard)
}

// ShardOf reports node i's shard (0 on the plain path).
func (nw *Network) ShardOf(i int) int {
	if nw.ss == nil {
		return 0
	}
	return nw.shardOf[i]
}

// NodeKernel returns the kernel node i's components must schedule on:
// the shard kernel in sharded mode, the single kernel otherwise.
func (nw *Network) NodeKernel(i int) *sim.Kernel {
	if nw.ss == nil {
		return nw.k
	}
	return nw.ss.Kernel(nw.shardOf[i])
}

// Faulty reports whether the fabric injects faults.
func (nw *Network) Faulty() bool { return nw.inj != nil }

// Nodes reports the number of attached nodes.
func (nw *Network) Nodes() int { return len(nw.rx) }

// Topology exposes the routed graph underneath the fabric.
func (nw *Network) Topology() topo.Topology { return nw.topo }

// Attach registers the receive handler for node i; the fabric calls it
// once per packet at the arrival time of the packet's last cell.
func (nw *Network) Attach(i int, handler func(pkt *Packet, at sim.Time)) {
	nw.rx[i] = handler
}

// headCellCycles is the serialization time of the first cell, which
// determines the cut-through pipeline offset.
func (nw *Network) headCellCycles() sim.Time {
	bits := int64(nw.cfg.CellBytes) * 8
	ns := (bits*1000 + nw.cfg.LinkMbps - 1) / nw.cfg.LinkMbps
	return nw.cfg.NSToCycles(ns)
}

// Send injects pkt into the fabric at time at (the moment the source
// NIC starts clocking the first cell out) and returns the delivery
// time at which the destination's handler will run. Sending to self is
// legal and bypasses the fabric.
//
// In sharded mode the walk is deferred to the next window barrier, so
// the delivery time is not yet known and Send returns 0; callers must
// not act on the return value (none in this repository do).
func (nw *Network) Send(at sim.Time, pkt *Packet) sim.Time {
	if pkt.Dst < 0 || pkt.Dst >= len(nw.rx) || pkt.Src < 0 || pkt.Src >= len(nw.rx) {
		panic(fmt.Sprintf("atm: packet %d->%d outside fabric of %d nodes", pkt.Src, pkt.Dst, len(nw.rx)))
	}
	if nw.ss != nil {
		return nw.sendSharded(at, pkt)
	}
	b := pkt.Bytes()

	nw.Stats.Messages++
	nw.Stats.DataBytes += uint64(b)
	nw.Stats.WireBytes += uint64(nw.cfg.WireBytes(b))
	nw.Stats.Cells += uint64(nw.cfg.Cells(b))

	if pkt.Dst == pkt.Src {
		// Loopback inside the board: no fabric involvement.
		deliver := at + nw.headCellCycles()
		nw.schedule(pkt, deliver)
		return deliver
	}

	deliver, redeliver, lost := nw.walk(at, pkt)
	if lost {
		return deliver
	}
	nw.schedule(pkt, deliver)
	if redeliver != 0 {
		nw.schedule(pkt, redeliver)
	}
	return deliver
}

// walk occupies the source access link for the whole serialization,
// then walks the route. At each switch the head cell arrives one
// cell-time plus propagation plus switch latency after the message won
// the previous stage, and the message holds the output port for its
// serialization time — cut-through pipelining with per-hop contention.
// Queuing on the final port is the paper's output-port contention
// (PortWaits); queuing at intermediate switches only exists on
// multi-hop fabrics (LinkWaits). On faulty fabrics the injector judges
// the cell train; lost reports a dead PDU (never delivered), and
// redeliver is nonzero when a duplicated train replays one PDU-time
// later.
//
// The walk order is the fabric's serialization point: ports are
// contended resources, so calling walk in a different order changes
// timings. The plain path walks in Send-call order; the sharded path
// replays the identical order from its ledger.
func (nw *Network) walk(at sim.Time, pkt *Packet) (deliver, redeliver sim.Time, lost bool) {
	b := pkt.Bytes()
	cells := nw.cfg.Cells(b)
	ser := nw.cfg.SerializeCycles(b)
	head := nw.headCellCycles()
	prop := nw.cfg.NSToCycles(nw.cfg.WirePropNS)
	swLat := nw.cfg.NSToCycles(nw.cfg.SwitchLatencyNS)

	txStart, _ := nw.topo.TxLink(pkt.Src).Use(at, ser)
	nw.route = nw.topo.Route(pkt.Src, pkt.Dst, nw.route[:0])
	t := txStart
	var portEnd sim.Time
	for i, hop := range nw.route {
		headAt := t + head + prop + swLat
		var portStart sim.Time
		portStart, portEnd = hop.Port.Use(headAt, ser)
		if i == len(nw.route)-1 {
			nw.Stats.PortWaits += portStart - headAt
		} else {
			nw.Stats.LinkWaits += portStart - headAt
		}
		t = portStart
	}
	nw.Stats.HopCount += uint64(len(nw.route))

	deliver = portEnd + prop
	if nw.inj != nil {
		// Judge the injection link, then every link the route crosses
		// short of the final delivery hop: a fault anywhere on the path
		// mangles the same cell train. On the single switch the route
		// is one hop, so only the injection link draws — bit-identical
		// to the single-switch injector.
		v := nw.inj.judge(pkt.Src, cells, head, &nw.Stats.Faults)
		for _, hop := range nw.route[:len(nw.route)-1] {
			v.merge(nw.inj.judge(hop.Edge, cells, head, &nw.Stats.Faults))
		}
		if v.lost {
			// The end-of-PDU cell died: reassembly never terminates and
			// the receive processor never learns the PDU existed.
			nw.Stats.Faults.PacketsLost++
			return deliver, 0, true
		}
		deliver += v.delay
		if v.damaged {
			nw.Stats.Faults.PacketsDamaged++
			pkt.Damaged = true
		}
		if v.duped {
			// The duplicated cell replays the train one PDU-time later.
			nw.Stats.Faults.PacketsDuped++
			redeliver = deliver + ser
		}
	}
	return deliver, redeliver, false
}

// sendSharded is Send during a window: charge the sending shard's
// counters, deliver loopbacks on the node's own kernel, and defer
// everything that touches shared fabric state into the shard's ledger.
func (nw *Network) sendSharded(at sim.Time, pkt *Packet) sim.Time {
	shard := nw.shardOf[pkt.Src]
	s := nw.perShard[shard]
	b := pkt.Bytes()
	s.messages++
	s.dataBytes += uint64(b)
	s.wireBytes += uint64(nw.cfg.WireBytes(b))
	s.cells += uint64(nw.cfg.Cells(b))

	k := nw.ss.Kernel(shard)
	if pkt.Dst == pkt.Src {
		// Loopback inside the board: shard-local, no fabric state.
		deliver := at + nw.headCellCycles()
		if nw.rx[pkt.Dst] == nil {
			panic(fmt.Sprintf("atm: node %d has no receive handler", pkt.Dst))
		}
		k.AtCall(deliver, nw.deliverFn, pkt)
		return deliver
	}
	s.ledger = append(s.ledger, walkItem{now: k.Now(), at: at, pkt: pkt})
	return 0
}

// drainLedger is the window barrier: it gathers every shard's deferred
// walks, restores the canonical global order, and applies them
// single-threaded. Stable sort by (send time, source node) plus the
// per-shard append order — each node's sends sit in one shard's ledger
// in call order, and kernel time is monotone within a shard — yields
// an order independent of the shard count, so the ports see the exact
// reservation sequence of the sequential fabric.
func (nw *Network) drainLedger() {
	buf := nw.drainBuf[:0]
	for _, s := range nw.perShard {
		buf = append(buf, s.ledger...)
		s.ledger = s.ledger[:0]
	}
	nw.drainBuf = buf[:0] // keep the (possibly grown) backing array
	if len(buf) == 0 {
		return
	}
	sort.SliceStable(buf, func(i, j int) bool {
		if buf[i].now != buf[j].now {
			return buf[i].now < buf[j].now
		}
		return buf[i].pkt.Src < buf[j].pkt.Src
	})
	for i := range buf {
		it := &buf[i]
		deliver, redeliver, lost := nw.walk(it.at, it.pkt)
		if lost {
			continue
		}
		nw.shardSchedule(it.pkt, deliver)
		if redeliver != 0 {
			nw.shardSchedule(it.pkt, redeliver)
		}
	}
}

// shardSchedule lands a delivery on the destination node's shard
// kernel. Every kernel's clock sits at the window edge during a
// barrier, so a delivery at or before the edge would execute out of
// causal order — that would mean the lookahead bound is wrong, and
// nothing downstream could be trusted, hence the loud panic.
func (nw *Network) shardSchedule(pkt *Packet, deliver sim.Time) {
	if edge := nw.ss.WindowEdge(); deliver <= edge {
		panic(fmt.Sprintf("atm: delivery %d->%d at t=%d not after window edge %d: lookahead %d is unsound",
			pkt.Src, pkt.Dst, deliver, edge, nw.Lookahead()))
	}
	if nw.rx[pkt.Dst] == nil {
		panic(fmt.Sprintf("atm: node %d has no receive handler", pkt.Dst))
	}
	nw.ss.Kernel(nw.shardOf[pkt.Dst]).AtCall(deliver, nw.deliverFn, pkt)
}

// shardDeliver is the sharded delivery event body: it runs on the
// destination's shard kernel and hands the packet to the node's
// receive handler at that kernel's clock.
func (nw *Network) shardDeliver(arg any) {
	pkt := arg.(*Packet)
	nw.rx[pkt.Dst](pkt, nw.ss.Kernel(nw.shardOf[pkt.Dst]).Now())
}

// Finish folds the per-shard send-phase counters into Stats; call it
// after the ShardSet has run and before reading Stats. The counters
// are pure sums, so the fold is order-independent and the totals equal
// the sequential fabric's exactly. No-op (and safe) on the plain path.
func (nw *Network) Finish() {
	if nw.ss == nil {
		return
	}
	for _, s := range nw.perShard {
		nw.Stats.Messages += s.messages
		nw.Stats.DataBytes += s.dataBytes
		nw.Stats.WireBytes += s.wireBytes
		nw.Stats.Cells += s.cells
		s.messages, s.dataBytes, s.wireBytes, s.cells = 0, 0, 0, 0
	}
}

func (nw *Network) schedule(pkt *Packet, deliver sim.Time) {
	if nw.rx[pkt.Dst] == nil {
		panic(fmt.Sprintf("atm: node %d has no receive handler", pkt.Dst))
	}
	nw.k.AtCall(deliver, nw.deliverFn, pkt)
}

// deliver is the delivery event body: it runs at the arrival time of
// the packet's last cell and hands the packet to the destination's
// receive handler.
func (nw *Network) deliver(arg any) {
	pkt := arg.(*Packet)
	nw.rx[pkt.Dst](pkt, nw.k.Now())
}

// CellsOf reports how many cells pkt occupies under the current
// configuration; the NIC model charges per-cell firmware work with it.
func (nw *Network) CellsOf(pkt *Packet) int { return nw.cfg.Cells(pkt.Bytes()) }

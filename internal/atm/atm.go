// Package atm models the cluster interconnect of the CNI paper: a
// 622 Mb/s (STS-12) ATM fabric built around a 32-port banyan switch
// with 500 ns latency, carrying 53-byte cells with 48-byte payloads.
//
// Messages are simulated at message granularity with cell-accurate
// costs: a b-byte packet occupies its source link for the serialization
// time of ceil(b/48) full cells, flows through the switch cut-through
// (the head cell reaches the destination one cell-time plus switch
// latency plus propagation after transmission starts), and contends
// with other traffic for the destination's output port, which is the
// blocking point of an output-queued banyan fabric. Per-cell firmware
// costs (segmentation and reassembly work) belong to the NIC model, not
// to the fabric, and are charged in package nic.
//
// Table 5's "mythical networking technology ... with unlimited cell
// size" is config.UnrestrictedCell: one cell carries the whole message
// and the per-cell costs collapse.
package atm

import (
	"fmt"

	"cni/internal/config"
	"cni/internal/sim"
)

// Packet is one message in flight between two NICs. Header carries the
// protocol bytes the PATHFINDER classifies on; Payload is the data the
// receive path deposits (for DSM, page contents). Size is the modeled
// wire size in bytes and may exceed len(Header)+len(Payload) when the
// model does not materialize every byte.
type Packet struct {
	Src     int
	Dst     int
	VCI     uint32
	Size    int
	Header  []byte
	Payload []byte
	// Meta carries the in-simulator protocol object by reference; the
	// real board would see only the serialized bytes.
	Meta any
	// Damaged marks a PDU whose cell train was dropped or corrupted in
	// flight: it arrives, but its AAL5 CRC cannot pass, so the receive
	// processor must discard it. Only the fault injector sets it.
	Damaged bool
}

// Bytes returns the modeled size of the packet on the wire before
// cell overhead.
func (p *Packet) Bytes() int {
	if p.Size > 0 {
		return p.Size
	}
	return len(p.Header) + len(p.Payload)
}

// Stats counts fabric activity.
type Stats struct {
	Messages  uint64
	DataBytes uint64 // pre-cell-overhead bytes
	WireBytes uint64 // bytes actually clocked onto links
	Cells     uint64
	PortWaits sim.Time // cycles messages spent queued on output ports
	Faults    FaultStats
}

// Network is the switch plus the per-node access links.
type Network struct {
	k   *sim.Kernel
	cfg *config.Config

	txLink  []*sim.Resource // node -> switch
	outPort []*sim.Resource // switch output port -> node
	rx      []func(pkt *Packet, at sim.Time)
	inj     *injector // nil on the (default) lossless fabric

	Stats Stats
}

// New builds a fabric for n nodes. n must not exceed the switch port
// count.
func New(k *sim.Kernel, cfg *config.Config, n int) *Network {
	if err := config.ValidateNodes(n); err != nil {
		// More nodes than the 16-bit VCI lanes can address would
		// silently collide virtual circuits in the nic layer.
		panic(fmt.Sprintf("atm: %v", err))
	}
	if n <= 0 || n > cfg.SwitchPorts {
		panic(fmt.Sprintf("atm: %d nodes on a %d-port switch", n, cfg.SwitchPorts))
	}
	nw := &Network{k: k, cfg: cfg}
	for i := 0; i < n; i++ {
		nw.txLink = append(nw.txLink, sim.NewResource(fmt.Sprintf("txlink%d", i)))
		nw.outPort = append(nw.outPort, sim.NewResource(fmt.Sprintf("outport%d", i)))
	}
	nw.rx = make([]func(*Packet, sim.Time), n)
	nw.inj = newInjector(cfg, n)
	return nw
}

// Faulty reports whether the fabric injects faults.
func (nw *Network) Faulty() bool { return nw.inj != nil }

// Nodes reports the number of attached nodes.
func (nw *Network) Nodes() int { return len(nw.rx) }

// Attach registers the receive handler for node i; the fabric calls it
// once per packet at the arrival time of the packet's last cell.
func (nw *Network) Attach(i int, handler func(pkt *Packet, at sim.Time)) {
	nw.rx[i] = handler
}

// headCellCycles is the serialization time of the first cell, which
// determines the cut-through pipeline offset.
func (nw *Network) headCellCycles() sim.Time {
	bits := int64(nw.cfg.CellBytes) * 8
	ns := (bits*1000 + nw.cfg.LinkMbps - 1) / nw.cfg.LinkMbps
	return nw.cfg.NSToCycles(ns)
}

// Send injects pkt into the fabric at time at (the moment the source
// NIC starts clocking the first cell out) and returns the delivery
// time at which the destination's handler will run. Sending to self is
// legal and bypasses the switch.
func (nw *Network) Send(at sim.Time, pkt *Packet) sim.Time {
	if pkt.Dst < 0 || pkt.Dst >= len(nw.rx) || pkt.Src < 0 || pkt.Src >= len(nw.rx) {
		panic(fmt.Sprintf("atm: packet %d->%d outside fabric of %d nodes", pkt.Src, pkt.Dst, len(nw.rx)))
	}
	b := pkt.Bytes()
	cells := nw.cfg.Cells(b)
	ser := nw.cfg.SerializeCycles(b)

	nw.Stats.Messages++
	nw.Stats.DataBytes += uint64(b)
	nw.Stats.WireBytes += uint64(nw.cfg.WireBytes(b))
	nw.Stats.Cells += uint64(cells)

	if pkt.Dst == pkt.Src {
		// Loopback inside the board: no fabric involvement.
		deliver := at + nw.headCellCycles()
		nw.schedule(pkt, deliver)
		return deliver
	}

	// Occupy the source access link for the whole serialization.
	txStart, _ := nw.txLink[pkt.Src].Use(at, ser)

	// Cut-through: the head cell reaches the switch output port one
	// cell-time plus propagation plus switch latency after txStart; the
	// message then occupies the output port for its serialization time,
	// queuing behind other messages converging on the same destination.
	headAt := txStart + nw.headCellCycles() +
		nw.cfg.NSToCycles(nw.cfg.WirePropNS) +
		nw.cfg.NSToCycles(nw.cfg.SwitchLatencyNS)
	portStart, portEnd := nw.outPort[pkt.Dst].Use(headAt, ser)
	nw.Stats.PortWaits += portStart - headAt

	deliver := portEnd + nw.cfg.NSToCycles(nw.cfg.WirePropNS)
	if nw.inj != nil {
		v := nw.inj.judge(pkt.Src, cells, nw.headCellCycles(), &nw.Stats.Faults)
		if v.lost {
			// The end-of-PDU cell died: reassembly never terminates and
			// the receive processor never learns the PDU existed.
			nw.Stats.Faults.PacketsLost++
			return deliver
		}
		deliver += v.delay
		if v.damaged {
			nw.Stats.Faults.PacketsDamaged++
			pkt.Damaged = true
		}
		nw.schedule(pkt, deliver)
		if v.duped {
			// The duplicated cell replays the train one PDU-time later.
			nw.Stats.Faults.PacketsDuped++
			nw.schedule(pkt, deliver+ser)
		}
		return deliver
	}
	nw.schedule(pkt, deliver)
	return deliver
}

func (nw *Network) schedule(pkt *Packet, deliver sim.Time) {
	handler := nw.rx[pkt.Dst]
	if handler == nil {
		panic(fmt.Sprintf("atm: node %d has no receive handler", pkt.Dst))
	}
	nw.k.At(deliver, func() { handler(pkt, deliver) })
}

// CellsOf reports how many cells pkt occupies under the current
// configuration; the NIC model charges per-cell firmware work with it.
func (nw *Network) CellsOf(pkt *Packet) int { return nw.cfg.Cells(pkt.Bytes()) }

// Package atm models the cluster interconnect of the CNI paper: a
// 622 Mb/s (STS-12) ATM fabric carrying 53-byte cells with 48-byte
// payloads. The paper's fabric is a single 32-port banyan switch with
// 500 ns latency; via internal/topo the same model also runs on routed
// multi-switch graphs (Clos/fat-tree, 3D torus) at 128-1024+ nodes.
//
// Messages are simulated at message granularity with cell-accurate
// costs: a b-byte packet occupies its source link for the serialization
// time of ceil(b/48) full cells, then cut-through pipelines along its
// route — at every switch the head cell arrives one cell-time plus
// propagation plus switch latency after the message won the previous
// port, and the message occupies each output port for its full
// serialization time, queuing behind other traffic converging there.
// On the single output-queued banyan the only such port is the
// destination's, which reproduces the paper's timings exactly; on
// multi-switch fabrics intermediate hops contend too (Stats.LinkWaits).
// Per-cell firmware costs (segmentation and reassembly work) belong to
// the NIC model, not to the fabric, and are charged in package nic.
//
// Table 5's "mythical networking technology ... with unlimited cell
// size" is config.UnrestrictedCell: one cell carries the whole message
// and the per-cell costs collapse.
package atm

import (
	"fmt"

	"cni/internal/config"
	"cni/internal/sim"
	"cni/internal/topo"
)

// Packet is one message in flight between two NICs. Header carries the
// protocol bytes the PATHFINDER classifies on; Payload is the data the
// receive path deposits (for DSM, page contents). Size is the modeled
// wire size in bytes and may exceed len(Header)+len(Payload) when the
// model does not materialize every byte.
type Packet struct {
	Src     int
	Dst     int
	VCI     uint32
	Size    int
	Header  []byte
	Payload []byte
	// Meta carries the in-simulator protocol object by reference; the
	// real board would see only the serialized bytes.
	Meta any
	// Damaged marks a PDU whose cell train was dropped or corrupted in
	// flight: it arrives, but its AAL5 CRC cannot pass, so the receive
	// processor must discard it. Only the fault injector sets it.
	Damaged bool
}

// Bytes returns the modeled size of the packet on the wire before
// cell overhead.
func (p *Packet) Bytes() int {
	if p.Size > 0 {
		return p.Size
	}
	return len(p.Header) + len(p.Payload)
}

// Stats counts fabric activity.
type Stats struct {
	Messages  uint64
	DataBytes uint64 // pre-cell-overhead bytes
	WireBytes uint64 // bytes actually clocked onto links
	Cells     uint64
	HopCount  uint64   // switch output ports crossed, all messages
	PortWaits sim.Time // cycles queued on destination delivery ports
	LinkWaits sim.Time // cycles queued on intermediate switch ports
	Faults    FaultStats
}

// Network is the routed fabric plus the per-node access links.
type Network struct {
	k    *sim.Kernel
	cfg  *config.Config
	topo topo.Topology

	rx    []func(pkt *Packet, at sim.Time)
	inj   *injector  // nil on the (default) lossless fabric
	route []topo.Hop // scratch, reused across Send calls

	// deliverFn is the pre-bound delivery event body handed to
	// sim.Kernel.AtCall with the packet as argument, so scheduling a
	// delivery allocates no closure — the fabric's contribution to the
	// allocation-free hot loop.
	deliverFn func(any)

	Stats Stats
}

// New builds the fabric selected by cfg.Topology for n nodes. The node
// count is user input, so an unaddressable n (more nodes than the
// topology's geometry, or than the 16-bit VCI lanes, can carry) is an
// error, not a panic.
func New(k *sim.Kernel, cfg *config.Config, n int) (*Network, error) {
	if err := config.ValidateNodes(n); err != nil {
		// More nodes than the 16-bit VCI lanes can address would
		// silently collide virtual circuits in the nic layer.
		return nil, fmt.Errorf("atm: %w", err)
	}
	tp, err := topo.New(cfg, n)
	if err != nil {
		return nil, fmt.Errorf("atm: %w", err)
	}
	nw := &Network{k: k, cfg: cfg, topo: tp}
	nw.deliverFn = nw.deliver
	nw.rx = make([]func(*Packet, sim.Time), n)
	nw.inj = newInjector(cfg, tp.Edges())
	return nw, nil
}

// Faulty reports whether the fabric injects faults.
func (nw *Network) Faulty() bool { return nw.inj != nil }

// Nodes reports the number of attached nodes.
func (nw *Network) Nodes() int { return len(nw.rx) }

// Topology exposes the routed graph underneath the fabric.
func (nw *Network) Topology() topo.Topology { return nw.topo }

// Attach registers the receive handler for node i; the fabric calls it
// once per packet at the arrival time of the packet's last cell.
func (nw *Network) Attach(i int, handler func(pkt *Packet, at sim.Time)) {
	nw.rx[i] = handler
}

// headCellCycles is the serialization time of the first cell, which
// determines the cut-through pipeline offset.
func (nw *Network) headCellCycles() sim.Time {
	bits := int64(nw.cfg.CellBytes) * 8
	ns := (bits*1000 + nw.cfg.LinkMbps - 1) / nw.cfg.LinkMbps
	return nw.cfg.NSToCycles(ns)
}

// Send injects pkt into the fabric at time at (the moment the source
// NIC starts clocking the first cell out) and returns the delivery
// time at which the destination's handler will run. Sending to self is
// legal and bypasses the fabric.
func (nw *Network) Send(at sim.Time, pkt *Packet) sim.Time {
	if pkt.Dst < 0 || pkt.Dst >= len(nw.rx) || pkt.Src < 0 || pkt.Src >= len(nw.rx) {
		panic(fmt.Sprintf("atm: packet %d->%d outside fabric of %d nodes", pkt.Src, pkt.Dst, len(nw.rx)))
	}
	b := pkt.Bytes()
	cells := nw.cfg.Cells(b)
	ser := nw.cfg.SerializeCycles(b)

	nw.Stats.Messages++
	nw.Stats.DataBytes += uint64(b)
	nw.Stats.WireBytes += uint64(nw.cfg.WireBytes(b))
	nw.Stats.Cells += uint64(cells)

	if pkt.Dst == pkt.Src {
		// Loopback inside the board: no fabric involvement.
		deliver := at + nw.headCellCycles()
		nw.schedule(pkt, deliver)
		return deliver
	}

	// Occupy the source access link for the whole serialization, then
	// walk the route. At each switch the head cell arrives one
	// cell-time plus propagation plus switch latency after the message
	// won the previous stage, and the message holds the output port for
	// its serialization time — cut-through pipelining with per-hop
	// contention. Queuing on the final port is the paper's output-port
	// contention (PortWaits); queuing at intermediate switches only
	// exists on multi-hop fabrics (LinkWaits).
	head := nw.headCellCycles()
	prop := nw.cfg.NSToCycles(nw.cfg.WirePropNS)
	swLat := nw.cfg.NSToCycles(nw.cfg.SwitchLatencyNS)

	txStart, _ := nw.topo.TxLink(pkt.Src).Use(at, ser)
	nw.route = nw.topo.Route(pkt.Src, pkt.Dst, nw.route[:0])
	t := txStart
	var portEnd sim.Time
	for i, hop := range nw.route {
		headAt := t + head + prop + swLat
		var portStart sim.Time
		portStart, portEnd = hop.Port.Use(headAt, ser)
		if i == len(nw.route)-1 {
			nw.Stats.PortWaits += portStart - headAt
		} else {
			nw.Stats.LinkWaits += portStart - headAt
		}
		t = portStart
	}
	nw.Stats.HopCount += uint64(len(nw.route))

	deliver := portEnd + prop
	if nw.inj != nil {
		// Judge the injection link, then every link the route crosses
		// short of the final delivery hop: a fault anywhere on the path
		// mangles the same cell train. On the single switch the route
		// is one hop, so only the injection link draws — bit-identical
		// to the single-switch injector.
		v := nw.inj.judge(pkt.Src, cells, head, &nw.Stats.Faults)
		for _, hop := range nw.route[:len(nw.route)-1] {
			v.merge(nw.inj.judge(hop.Edge, cells, head, &nw.Stats.Faults))
		}
		if v.lost {
			// The end-of-PDU cell died: reassembly never terminates and
			// the receive processor never learns the PDU existed.
			nw.Stats.Faults.PacketsLost++
			return deliver
		}
		deliver += v.delay
		if v.damaged {
			nw.Stats.Faults.PacketsDamaged++
			pkt.Damaged = true
		}
		nw.schedule(pkt, deliver)
		if v.duped {
			// The duplicated cell replays the train one PDU-time later.
			nw.Stats.Faults.PacketsDuped++
			nw.schedule(pkt, deliver+ser)
		}
		return deliver
	}
	nw.schedule(pkt, deliver)
	return deliver
}

func (nw *Network) schedule(pkt *Packet, deliver sim.Time) {
	if nw.rx[pkt.Dst] == nil {
		panic(fmt.Sprintf("atm: node %d has no receive handler", pkt.Dst))
	}
	nw.k.AtCall(deliver, nw.deliverFn, pkt)
}

// deliver is the delivery event body: it runs at the arrival time of
// the packet's last cell and hands the packet to the destination's
// receive handler.
func (nw *Network) deliver(arg any) {
	pkt := arg.(*Packet)
	nw.rx[pkt.Dst](pkt, nw.k.Now())
}

// CellsOf reports how many cells pkt occupies under the current
// configuration; the NIC model charges per-cell firmware work with it.
func (nw *Network) CellsOf(pkt *Packet) int { return nw.cfg.Cells(pkt.Bytes()) }

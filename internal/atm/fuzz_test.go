package atm

import (
	"bytes"
	"testing"

	"cni/internal/sim"
)

// mutateTrain applies n deterministic mutations (drawn from rng) of the
// kinds the fault injector models — truncation, cell drop, duplication,
// payload corruption, end-mark and VCI tampering — and reports whether
// the train was actually changed.
func mutateTrain(rng *sim.RNG, cells []Cell, n int) ([]Cell, bool) {
	mutated := false
	for i := 0; i < n && len(cells) > 0; i++ {
		switch rng.Intn(6) {
		case 0: // corrupt a payload byte
			c := rng.Intn(len(cells))
			b := rng.Intn(CellPayload)
			cells[c].Payload[b] ^= byte(1 + rng.Intn(255))
			mutated = true
		case 1: // truncate the tail
			cells = cells[:rng.Intn(len(cells))]
			mutated = true
		case 2: // drop one cell
			c := rng.Intn(len(cells))
			cells = append(cells[:c], cells[c+1:]...)
			mutated = true
		case 3: // duplicate one cell in place
			c := rng.Intn(len(cells))
			cells = append(cells, Cell{})
			copy(cells[c+1:], cells[c:])
			mutated = true
		case 4: // toggle an end-of-PDU mark
			c := rng.Intn(len(cells))
			cells[c].Last = !cells[c].Last
			mutated = true
		case 5: // retag a cell onto another VC
			c := rng.Intn(len(cells))
			cells[c].VCI++
			mutated = true
		}
	}
	return cells, mutated
}

// FuzzReassemble feeds Reassemble cell trains derived from an arbitrary
// PDU and an arbitrary mutation schedule. The contract under test:
// never panic, never return a PDU longer than the AAL5 length field
// allows, and return the original bytes exactly when the train was not
// tampered with.
func FuzzReassemble(f *testing.F) {
	f.Add([]byte(nil), uint64(1), uint8(0))
	f.Add([]byte("hello, fabric"), uint64(2), uint8(3))
	f.Add(bytes.Repeat([]byte{0xA5}, 4096), uint64(3), uint8(8))
	f.Add(bytes.Repeat([]byte{0}, 96), uint64(4), uint8(1))
	f.Fuzz(func(t *testing.T, pdu []byte, seed uint64, nmut uint8) {
		// Cap the PDU so the bit-serial CRC doesn't dominate fuzz
		// throughput; TestReassembleIncompleteIsBounded covers the
		// maximal-size path.
		if len(pdu) > 8192 {
			pdu = pdu[:8192]
		}
		cells := Segment(7, pdu)
		rng := sim.NewRNG(seed | 1)
		cells, mutated := mutateTrain(rng, cells, int(nmut%16))

		got, err := Reassemble(cells)
		if err != nil {
			return // typed rejection is always acceptable for a mutated train
		}
		if len(got) > 65535 {
			t.Fatalf("reassembled %d bytes, beyond the AAL5 length field", len(got))
		}
		if !mutated && !bytes.Equal(got, pdu) {
			t.Fatalf("untampered train round-tripped wrong: %d bytes in, %d out", len(pdu), len(got))
		}
		// A mutated train that still reassembles must have produced a
		// train whose CRC genuinely passes — trust but verify by
		// re-segmenting the result.
		if mutated {
			back, err := Reassemble(Segment(cells[0].VCI, got))
			if err != nil || !bytes.Equal(back, got) {
				t.Fatalf("accepted PDU does not survive re-segmentation: %v", err)
			}
		}
	})
}

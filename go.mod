module cni

go 1.24
